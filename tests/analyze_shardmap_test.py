#!/usr/bin/env python3
"""Pins the shard-map contract (DESIGN.md section 12).

Three things must hold for scripts/analyze_shardmap.json to be a
trustworthy planning input for the sharding refactor:

  1. Round-trip: shardmap_text() is valid JSON that parses back to
     exactly build_shardmap()'s object, and regenerating from the same
     tree is byte-identical (determinism is what makes CI's drift check
     meaningful).
  2. The committed artifact matches the committed schema and enumerates
     the known core lock domains and atomics (wal, queue_manager,
     event_ring, metrics) -- a regression here means the extractor
     stopped seeing real shared state.
  3. The builtin frontend extracts GUARDED_BY domains from the seeded
     fixtures: class -> mutex -> guarded fields, the relation every
     domain entry in the shard map is built from.
"""

import json
import os
import sys
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))

import analyze  # noqa: E402  (scripts/ is not a package)

SHARDMAP = os.path.join(REPO_ROOT, "scripts", "analyze_shardmap.json")
FIXTURES = os.path.join(REPO_ROOT, "scripts", "analyze_fixtures")


def build(paths):
    model = analyze.build_model("builtin", paths, None)
    return model, analyze.Analyzer(model)


class ShardmapRoundTripTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.model, cls.analyzer = build([os.path.join(REPO_ROOT, "src")])

    def test_text_parses_back_to_the_same_object(self):
        text = analyze.shardmap_text(self.model, self.analyzer)
        self.assertTrue(text.endswith("\n"))
        self.assertEqual(json.loads(text),
                         analyze.build_shardmap(self.model, self.analyzer))

    def test_regeneration_is_deterministic(self):
        first = analyze.shardmap_text(self.model, self.analyzer)
        model2, analyzer2 = build([os.path.join(REPO_ROOT, "src")])
        self.assertEqual(first, analyze.shardmap_text(model2, analyzer2))

    def test_committed_artifact_is_current(self):
        with open(SHARDMAP, encoding="utf-8") as f:
            committed = f.read()
        self.assertEqual(committed,
                         analyze.shardmap_text(self.model, self.analyzer),
                         "scripts/analyze_shardmap.json is stale -- "
                         "regenerate with scripts/analyze.py "
                         "--write-shardmap")


class CommittedShardmapContentTest(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        with open(SHARDMAP, encoding="utf-8") as f:
            cls.doc = json.load(f)
        cls.domains = {d["class"]: d for d in cls.doc["domains"]}
        cls.atomics = {a["var"]: a for a in cls.doc["atomics"]}

    def test_schema(self):
        self.assertEqual(self.doc["schema"], "edadb-shardmap-v1")
        for key in ("domains", "atomics", "globals", "cross_domain_edges"):
            self.assertIn(key, self.doc)

    def test_core_lock_domains_present(self):
        wal = self.domains["WalWriter"]
        self.assertIn("WalWriter::wal_mu_", wal["mutexes"])
        self.assertIn("next_lsn_", wal["atomic_fields"])

        qm = self.domains["QueueManager"]
        self.assertIn("QueueManager::mu_", qm["mutexes"])
        queues = qm["guarded_fields"]["queues_"]
        self.assertEqual(queues["mutex"], "QueueManager::mu_")
        self.assertIn("EnqueueSpan", queues["methods"])

        ring = self.domains["EventRing"]
        self.assertIn("EventRing::writer_mu_", ring["mutexes"])
        self.assertIn("head_", ring["atomic_fields"])
        # The seqlock words are intentionally mutex-free (suppressed,
        # not guarded) and must show up as such.
        self.assertIn("stamps_", ring["unguarded_fields"])

    def test_atomics_carry_ordering_observations(self):
        head = self.atomics["EventRing::head_"]
        self.assertGreater(head["sites"], 0)
        self.assertTrue(any(o.startswith("load:") or o.startswith("store:")
                            for o in head["orderings"]))

    def test_no_non_src_entries(self):
        for d in self.doc["domains"]:
            self.assertTrue(d["file"].startswith("src/"), d["file"])
        for g in self.doc["globals"]:
            self.assertTrue(g["file"].startswith("src/"), g["file"])


class FixtureGuardedDomainTest(unittest.TestCase):
    """The GUARDED_BY relation the shard map's domain entries are built
    from, extracted from the seeded fixtures by the builtin frontend."""

    @classmethod
    def setUpClass(cls):
        cls.model, _ = build([FIXTURES])

    def test_escape_cache_domain(self):
        cache = self.model.classes["EscapeCache"]
        self.assertEqual(cache.mutexes, {"cache_mu_": "EscapeCache::cache_mu_"})
        self.assertEqual(cache.guarded,
                         {"entries_": "cache_mu_",
                          "cursor_": "cache_mu_",
                          "total_": "cache_mu_"})

    def test_locked_box_domain(self):
        box = self.model.classes["LockedBox"]
        self.assertEqual(box.guarded, {"last_": "box_mu_"})
        self.assertEqual(box.mutexes, {"box_mu_": "LockedBox::box_mu_"})

    def test_lockless_fixture_class_has_no_domain(self):
        bag = self.model.classes["BareBag"]
        self.assertEqual(bag.mutexes, {})
        self.assertEqual(bag.guarded, {})


if __name__ == "__main__":
    unittest.main()
