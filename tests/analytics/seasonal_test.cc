#include <cmath>

#include "analytics/detector.h"
#include "analytics/forecaster.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

/// Daily shape: base + evening peak, period 24.
double DiurnalSignal(int hour_of_day) {
  return 10.0 + (hour_of_day >= 18 && hour_of_day <= 22 ? 8.0 : 0.0) +
         2.0 * std::sin(hour_of_day / 24.0 * 2 * M_PI);
}

TEST(SeasonalForecasterTest, NotReadyUntilOneFullPeriod) {
  SeasonalForecaster model(0.3, 0.1, 0.3, 24);
  for (int i = 0; i < 23; ++i) {
    EXPECT_FALSE(model.Predict(i).ready) << i;
    model.Observe(i, DiurnalSignal(i));
  }
  model.Observe(23, DiurnalSignal(23));
  EXPECT_TRUE(model.Predict(24).ready);
}

TEST(SeasonalForecasterTest, LearnsTheDailyShape) {
  SeasonalForecaster model(0.3, 0.05, 0.3, 24);
  // Train on four clean days.
  for (int t = 0; t < 96; ++t) {
    model.Observe(t, DiurnalSignal(t % 24));
  }
  // Fifth day: one-step-ahead predictions track the shape closely,
  // including the evening step the non-seasonal models smear.
  double worst = 0;
  for (int t = 96; t < 120; ++t) {
    const double expected = DiurnalSignal(t % 24);
    const double predicted = model.Predict(t).expected;
    worst = std::max(worst, std::fabs(predicted - expected));
    model.Observe(t, expected);
  }
  EXPECT_LT(worst, 1.0);
}

TEST(SeasonalForecasterTest, OutperformsEwmaOnSeasonalSignal) {
  SeasonalForecaster seasonal(0.3, 0.05, 0.3, 24);
  EwmaForecaster ewma(0.3);
  Random rng(5);
  double seasonal_err = 0;
  double ewma_err = 0;
  int scored = 0;
  for (int t = 0; t < 24 * 10; ++t) {
    const double value = DiurnalSignal(t % 24) + rng.Normal(0, 0.2);
    if (t >= 48) {  // Skip both models' warm-up.
      seasonal_err += std::fabs(seasonal.Predict(t).expected - value);
      ewma_err += std::fabs(ewma.Predict(t).expected - value);
      ++scored;
    }
    seasonal.Observe(t, value);
    ewma.Observe(t, value);
  }
  ASSERT_GT(scored, 0);
  // The evening step makes EWMA's one-step error several times larger.
  EXPECT_LT(seasonal_err * 2, ewma_err);
}

TEST(SeasonalForecasterTest, DetectsAnomalyAgainstSeasonalExpectation) {
  DeviationDetector::Options options;
  options.threshold_sigmas = 6.0;
  options.min_uncertainty = 0.3;
  DeviationDetector detector(
      std::make_unique<SeasonalForecaster>(0.3, 0.05, 0.3, 24), options);
  Random rng(6);
  int false_alarms = 0;
  for (int t = 0; t < 24 * 8; ++t) {
    const auto result =
        detector.Process(t, DiurnalSignal(t % 24) + rng.Normal(0, 0.2));
    if (result.is_anomaly) ++false_alarms;
  }
  EXPECT_LE(false_alarms, 3);  // The peak itself must NOT alert.
  // An 18:00-sized load at 03:00 is the anomaly a static band misses.
  const auto spike = detector.Process(24 * 8 + 3, DiurnalSignal(19));
  EXPECT_TRUE(spike.is_anomaly);
}

TEST(SeasonalForecasterTest, AdaptsWhenTheShapeChanges) {
  SeasonalForecaster model(0.3, 0.05, 0.5, 4);
  // Old pattern: [0, 10, 0, 10].
  for (int t = 0; t < 40; ++t) {
    model.Observe(t, t % 2 == 0 ? 0.0 : 10.0);
  }
  // New pattern: flat 5s. Gamma folds the seasonal profile toward 0.
  for (int t = 40; t < 200; ++t) {
    model.Observe(t, 5.0);
  }
  EXPECT_NEAR(model.Predict(200).expected, 5.0, 1.0);
}

}  // namespace
}  // namespace edadb
