#include <algorithm>
#include <cmath>

#include "analytics/detector.h"
#include "analytics/forecaster.h"
#include "analytics/stats.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(StreamingStatsTest, MatchesClosedForm) {
  StreamingStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(i);
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 100.0);
  // Population variance of 1..100 = (n^2 - 1) / 12.
  EXPECT_NEAR(stats.variance(), (100.0 * 100.0 - 1) / 12.0, 1e-9);
}

TEST(StreamingStatsTest, NumericallyStableAtLargeOffsets) {
  StreamingStats stats;
  for (int i = 0; i < 1000; ++i) {
    stats.Add(1e9 + (i % 2));  // Variance 0.25 around 1e9 + 0.5.
  }
  EXPECT_NEAR(stats.variance(), 0.25, 1e-6);
}

TEST(P2QuantileTest, ExactForSmallSamples) {
  P2Quantile q(0.5);
  q.Add(3);
  q.Add(1);
  q.Add(2);
  EXPECT_EQ(q.value(), 2.0);
}

TEST(P2QuantileTest, ApproximatesTrueQuantiles) {
  Random rng(17);
  for (const double target : {0.5, 0.9, 0.99}) {
    P2Quantile sketch(target);
    std::vector<double> exact;
    for (int i = 0; i < 20000; ++i) {
      const double v = rng.Normal(100, 15);
      sketch.Add(v);
      exact.push_back(v);
    }
    std::sort(exact.begin(), exact.end());
    const double truth =
        exact[static_cast<size_t>(target * (exact.size() - 1))];
    // Within a modest absolute band of the true quantile.
    EXPECT_NEAR(sketch.value(), truth, 1.5)
        << "quantile " << target;
  }
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0, 10, 10);
  h.Add(-1);   // Underflow.
  h.Add(0);    // Bucket 0.
  h.Add(9.99); // Bucket 9.
  h.Add(10);   // Overflow.
  h.Add(5.5);  // Bucket 5.
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.bucket_count(9), 1u);
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1.5);
}

TEST(EwmaTest, ConvergesToConstant) {
  Ewma ewma(0.2);
  EXPECT_FALSE(ewma.initialized());
  for (int i = 0; i < 100; ++i) ewma.Add(42.0);
  EXPECT_TRUE(ewma.initialized());
  EXPECT_DOUBLE_EQ(ewma.value(), 42.0);
  EXPECT_DOUBLE_EQ(ewma.variance(), 0.0);
}

TEST(EwmaTest, TracksShift) {
  Ewma ewma(0.3);
  for (int i = 0; i < 50; ++i) ewma.Add(10.0);
  for (int i = 0; i < 50; ++i) ewma.Add(20.0);
  EXPECT_NEAR(ewma.value(), 20.0, 0.01);
}

TEST(ForecasterTest, StaticNeverAdapts) {
  StaticForecaster model(100.0, 5.0);
  auto before = model.Predict(0);
  for (int i = 0; i < 100; ++i) model.Observe(i, 500.0);
  auto after = model.Predict(100);
  EXPECT_EQ(before.expected, after.expected);
  EXPECT_TRUE(after.ready);
}

TEST(ForecasterTest, EwmaTracksLevel) {
  EwmaForecaster model(0.3);
  EXPECT_FALSE(model.Predict(0).ready);
  for (int i = 0; i < 100; ++i) model.Observe(i, 50.0);
  auto p = model.Predict(100);
  EXPECT_TRUE(p.ready);
  EXPECT_NEAR(p.expected, 50.0, 0.01);
}

TEST(ForecasterTest, HoltTracksTrend) {
  HoltForecaster model(0.5, 0.3);
  // Linear ramp: level i, so next is ~i+1.
  for (int i = 0; i < 200; ++i) {
    model.Observe(i, static_cast<double>(i));
  }
  auto p = model.Predict(200);
  EXPECT_TRUE(p.ready);
  EXPECT_NEAR(p.expected, 200.0, 1.0);

  // EWMA on the same ramp lags badly.
  EwmaForecaster lagging(0.1);
  for (int i = 0; i < 200; ++i) {
    lagging.Observe(i, static_cast<double>(i));
  }
  EXPECT_LT(lagging.Predict(200).expected, 195.0);
}

TEST(DetectorTest, FlagsSpikesNotNoise) {
  Random rng(7);
  DeviationDetector::Options options;
  options.threshold_sigmas = 4.0;
  DeviationDetector detector(std::make_unique<EwmaForecaster>(0.2), options);
  int false_alarms = 0;
  for (int i = 0; i < 500; ++i) {
    auto result = detector.Process(i, rng.Normal(100, 2));
    if (result.is_anomaly) ++false_alarms;
  }
  EXPECT_LT(false_alarms, 10);
  // A giant spike is flagged.
  auto spike = detector.Process(500, 200.0);
  EXPECT_TRUE(spike.is_anomaly);
  EXPECT_GT(spike.score, 4.0);
}

TEST(DetectorTest, RobustModeDoesNotLearnAnomalies) {
  DeviationDetector::Options options;
  options.threshold_sigmas = 3.0;
  options.exclude_anomalies_from_model = true;
  DeviationDetector detector(std::make_unique<EwmaForecaster>(0.3), options);
  Random rng(8);
  for (int i = 0; i < 200; ++i) {
    detector.Process(i, rng.Normal(10, 1));
  }
  const double before = detector.model().Predict(200).expected;
  // A burst of anomalies must not drag the model.
  for (int i = 200; i < 210; ++i) {
    EXPECT_TRUE(detector.Process(i, 1000.0).is_anomaly);
  }
  const double after = detector.model().Predict(210).expected;
  EXPECT_NEAR(after, before, 0.5);
}

TEST(ConfusionMatrixTest, RatesComputed) {
  ConfusionMatrix cm;
  for (int i = 0; i < 8; ++i) cm.Add(true, true);    // TP.
  for (int i = 0; i < 2; ++i) cm.Add(false, true);   // FN.
  for (int i = 0; i < 5; ++i) cm.Add(true, false);   // FP.
  for (int i = 0; i < 85; ++i) cm.Add(false, false); // TN.
  EXPECT_EQ(cm.total(), 100u);
  EXPECT_NEAR(cm.precision(), 8.0 / 13.0, 1e-12);
  EXPECT_NEAR(cm.recall(), 0.8, 1e-12);
  EXPECT_NEAR(cm.false_positive_rate(), 5.0 / 90.0, 1e-12);
  EXPECT_GT(cm.f1(), 0.6);
}

TEST(RocTest, PerfectDetectorHasAucOne) {
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 50; ++i) scored.push_back({1.0 + i * 0.01, true});
  for (int i = 0; i < 50; ++i) scored.push_back({0.0 + i * 0.01, false});
  const auto roc = ComputeRoc(scored);
  EXPECT_NEAR(RocAuc(roc), 1.0, 1e-9);
}

TEST(RocTest, RandomScoresNearHalf) {
  Random rng(11);
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 5000; ++i) {
    scored.push_back({rng.NextDouble(), rng.OneIn(2)});
  }
  const auto roc = ComputeRoc(scored);
  EXPECT_NEAR(RocAuc(roc), 0.5, 0.05);
}

TEST(RocTest, MonotonicOperatingPoints) {
  Random rng(12);
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 1000; ++i) {
    const bool anomaly = rng.OneIn(10);
    scored.push_back(
        {rng.Normal(anomaly ? 5 : 0, 2), anomaly});
  }
  const auto roc = ComputeRoc(scored);
  ASSERT_GT(roc.size(), 2u);
  for (size_t i = 1; i < roc.size(); ++i) {
    EXPECT_GE(roc[i].false_positive_rate, roc[i - 1].false_positive_rate);
    EXPECT_GE(roc[i].true_positive_rate, roc[i - 1].true_positive_rate);
  }
  EXPECT_GT(RocAuc(roc), 0.8);  // Separated distributions.
}

TEST(RocTest, DegenerateInputsGiveEmptyCurve) {
  EXPECT_TRUE(ComputeRoc({}).empty());
  EXPECT_TRUE(ComputeRoc({{1.0, true}}).empty());   // No negatives.
  EXPECT_TRUE(ComputeRoc({{1.0, false}}).empty());  // No positives.
}

}  // namespace
}  // namespace edadb
