#include "core/audit.h"

#include "core/processor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class AuditTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    clock_.SetMicros(1000);
    db_ = *Database::Open(std::move(options));
    audit_ = *AuditLog::Attach(db_.get());
  }

  TempDir dir_;
  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<AuditLog> audit_;
};

TEST_F(AuditTest, AppendAndQueryNewestFirst) {
  ASSERT_OK(audit_->Append("alice", "rule.add", "r1", "condition=x>1"));
  clock_.AdvanceMicros(10);
  ASSERT_OK(audit_->Append("bob", "queue.drop", "q1"));
  clock_.AdvanceMicros(10);
  ASSERT_OK(audit_->Append("alice", "rule.remove", "r1"));
  EXPECT_EQ(*audit_->count(), 3u);

  auto entries = *audit_->Query();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].action, "rule.remove");  // Newest first.
  EXPECT_EQ(entries[2].action, "rule.add");
  EXPECT_EQ(entries[2].detail, "condition=x>1");
  EXPECT_EQ(entries[2].timestamp, 1000);
}

TEST_F(AuditTest, FilteredQuery) {
  ASSERT_OK(audit_->Append("alice", "rule.add", "r1"));
  ASSERT_OK(audit_->Append("bob", "rule.add", "r2"));
  ASSERT_OK(audit_->Append("alice", "queue.create", "q1"));
  auto by_actor = *audit_->Query("actor = 'alice'");
  EXPECT_EQ(by_actor.size(), 2u);
  auto by_action = *audit_->Query("action LIKE 'rule.%'");
  EXPECT_EQ(by_action.size(), 2u);
  auto none = *audit_->Query("actor = 'mallory'");
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(audit_->Query("bad >>> filter").ok());
}

TEST_F(AuditTest, LimitApplies) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_OK(audit_->Append("a", "tick", std::to_string(i)));
    clock_.AdvanceMicros(1);
  }
  auto entries = *audit_->Query("", 5);
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].object, "19");
}

TEST_F(AuditTest, SurvivesReopen) {
  ASSERT_OK(audit_->Append("alice", "rule.add", "r1"));
  audit_.reset();
  db_.reset();
  DatabaseOptions options;
  options.dir = dir_.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  db_ = *Database::Open(std::move(options));
  audit_ = *AuditLog::Attach(db_.get());
  EXPECT_EQ(*audit_->count(), 1u);
}

TEST(AuditRoutingTest, ProcessorRecordsRoutingDecisions) {
  TempDir dir;
  EventProcessorOptions options;
  options.data_dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  options.audit_routing = true;
  auto processor = *EventProcessor::Open(std::move(options));
  ASSERT_OK(processor->rules()->AddRule("crit", "severity >= 7",
                                        "queue:alerts"));
  Event event;
  event.type = "x";
  event.Set("severity", Value::Int64(9));
  ASSERT_OK(processor->Ingest(std::move(event)));
  auto entries = *processor->audit()->Query("action = 'route.queue'");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].actor, "processor");
  EXPECT_EQ(entries[0].object, "alerts");
  EXPECT_NE(entries[0].detail.find("rule=crit"), std::string::npos);
}

}  // namespace
}  // namespace edadb
