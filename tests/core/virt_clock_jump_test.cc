#include "common/clock.h"
#include "common/random.h"
#include "core/virt.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

// Regression tests for the first real bug the clock-domain analysis
// surfaced (scripts/analyze.py, check `clock-domain`): VirtFilter used
// to measure token-bucket refill and dedup windows on the WALL clock
// (NowMicros), so a wall step forward instantly refilled every bucket
// and expired every suppression window, and a step backward froze
// refill and extended suppression indefinitely. Both bookkeeping sites
// are now SteadyMicros (src/core/virt.h ConsumerState); these tests
// step the wall clock hard in both directions and assert the gates
// only respond to elapsed (steady) time.
//
// SimulatedClock::SetMicros steps ONLY the wall domain;
// AdvanceMicros moves both. The steady domain also accrues real host
// time between calls — negligible (milliseconds at most) against the
// one-second-scale windows used here.

Event MakeEvent(const std::string& type, int64_t severity) {
  Event event;
  event.id = NextEventId();
  event.type = type;
  event.source = "jump-test";
  event.timestamp = 1000;
  event.Set("severity", Value::Int64(severity));
  return event;
}

class VirtClockJumpTest : public ::testing::Test {
 protected:
  SimulatedClock clock_{1000 * kMicrosPerSecond};
  VirtFilter filter_{&clock_};
};

TEST_F(VirtClockJumpTest, ForwardWallStepDoesNotRefillTokenBucket) {
  VirtFilter::ConsumerOptions options;
  options.rate_limit_per_second = 1.0;
  options.rate_burst = 2.0;
  ASSERT_TRUE(filter_.RegisterConsumer("ops", options).ok());

  // Drain the burst.
  for (int i = 0; i < 2; ++i) {
    auto decision = filter_.Evaluate("ops", MakeEvent("alarm", 9));
    ASSERT_TRUE(decision.ok());
    EXPECT_EQ(decision->verdict, VirtFilter::Verdict::kDeliver);
  }
  auto limited = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->verdict, VirtFilter::Verdict::kRateLimited);

  // A +30-day wall step used to refill the bucket to full burst.
  clock_.SetMicros(clock_.NowMicros() + 30LL * 24 * kMicrosPerHour);
  auto after_jump = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(after_jump.ok());
  EXPECT_EQ(after_jump->verdict, VirtFilter::Verdict::kRateLimited);

  // Genuine elapsed time still refills.
  clock_.AdvanceMicros(2 * kMicrosPerSecond);
  auto refilled = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(refilled.ok());
  EXPECT_EQ(refilled->verdict, VirtFilter::Verdict::kDeliver);
}

TEST_F(VirtClockJumpTest, BackwardWallStepDoesNotFreezeTokenBucket) {
  VirtFilter::ConsumerOptions options;
  options.rate_limit_per_second = 1.0;
  options.rate_burst = 1.0;
  ASSERT_TRUE(filter_.RegisterConsumer("ops", options).ok());

  auto first = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->verdict, VirtFilter::Verdict::kDeliver);

  // Step the wall clock a day into the past. The wall-domain bug made
  // `now - last_refill` negative here, so the bucket never refilled
  // until the wall caught back up (a day of silence).
  clock_.SetMicros(clock_.NowMicros() - 24 * kMicrosPerHour);
  clock_.AdvanceMicros(2 * kMicrosPerSecond);
  auto refilled = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(refilled.ok());
  EXPECT_EQ(refilled->verdict, VirtFilter::Verdict::kDeliver);
}

TEST_F(VirtClockJumpTest, ForwardWallStepDoesNotExpireDedupWindow) {
  VirtFilter::ConsumerOptions options;
  options.dedup_window_micros = 10 * kMicrosPerSecond;
  ASSERT_TRUE(filter_.RegisterConsumer("ops", options).ok());

  auto first = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->verdict, VirtFilter::Verdict::kDeliver);

  // A +1-day wall step used to mature the window instantly.
  clock_.SetMicros(clock_.NowMicros() + 24 * kMicrosPerHour);
  auto after_jump = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(after_jump.ok());
  EXPECT_EQ(after_jump->verdict, VirtFilter::Verdict::kDuplicate);
}

TEST_F(VirtClockJumpTest, BackwardWallStepDoesNotExtendDedupWindow) {
  VirtFilter::ConsumerOptions options;
  options.dedup_window_micros = 10 * kMicrosPerSecond;
  ASSERT_TRUE(filter_.RegisterConsumer("ops", options).ok());

  auto first = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->verdict, VirtFilter::Verdict::kDeliver);

  // Step back a day, then let the window genuinely mature. The
  // wall-domain bug kept the key suppressed until the wall clock
  // re-crossed delivery time + window.
  clock_.SetMicros(clock_.NowMicros() - 24 * kMicrosPerHour);
  clock_.AdvanceMicros(11 * kMicrosPerSecond);
  auto matured = filter_.Evaluate("ops", MakeEvent("alarm", 9));
  ASSERT_TRUE(matured.ok());
  EXPECT_EQ(matured->verdict, VirtFilter::Verdict::kDeliver);
}

}  // namespace
}  // namespace edadb
