#include "core/event.h"
#include "core/event_bus.h"
#include "core/monitor.h"
#include "core/responder.h"
#include "core/virt.h"

#include "common/random.h"
#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "test_util.h"

namespace edadb {
namespace {

Event MakeEvent(const std::string& type, int64_t severity,
                const std::string& source = "test") {
  Event event;
  event.id = NextEventId();
  event.type = type;
  event.source = source;
  event.timestamp = 1000;
  event.Set("severity", Value::Int64(severity));
  return event;
}

TEST(EventTest, AttributeAccessors) {
  Event event = MakeEvent("alarm", 7);
  EXPECT_EQ(event.Get("severity")->int64_value(), 7);
  EXPECT_FALSE(event.Get("missing").has_value());
  event.Set("severity", Value::Int64(9));  // Overwrite, not append.
  EXPECT_EQ(event.attributes.size(), 1u);
  EXPECT_EQ(event.Get("severity")->int64_value(), 9);
}

TEST(EventTest, ViewExposesReservedNames) {
  Event event = MakeEvent("alarm", 7, "sensor-1");
  EventView view(event);
  EXPECT_EQ(view.GetAttribute("event_type")->string_value(), "alarm");
  EXPECT_EQ(view.GetAttribute("source")->string_value(), "sensor-1");
  EXPECT_EQ(view.GetAttribute("timestamp")->timestamp_value(), 1000);
  EXPECT_EQ(view.GetAttribute("severity")->int64_value(), 7);
}

TEST(EventTest, IdsAreUnique) {
  const uint64_t a = NextEventId();
  const uint64_t b = NextEventId();
  EXPECT_NE(a, b);
}

TEST(EventBusTest, FanoutAndFilters) {
  EventBus bus;
  int all = 0;
  int severe = 0;
  const uint64_t h1 = *bus.Subscribe([&](const Event&) { ++all; });
  ASSERT_OK(bus.Subscribe([&](const Event&) { ++severe; },
                          "severity >= 5"));
  EXPECT_EQ(bus.Publish(MakeEvent("a", 3)), 1u);
  EXPECT_EQ(bus.Publish(MakeEvent("a", 8)), 2u);
  EXPECT_EQ(all, 2);
  EXPECT_EQ(severe, 1);
  ASSERT_OK(bus.Unsubscribe(h1));
  EXPECT_TRUE(bus.Unsubscribe(h1).IsNotFound());
  EXPECT_EQ(bus.Publish(MakeEvent("a", 9)), 1u);
  EXPECT_EQ(bus.num_subscribers(), 1u);
  EXPECT_EQ(bus.published_count(), 3u);
}

TEST(EventBusTest, BadFilterRejected) {
  EventBus bus;
  EXPECT_FALSE(bus.Subscribe([](const Event&) {}, "bad >>> filter").ok());
}

TEST(EventBusTest, HandlersMaySubscribeReentrantly) {
  EventBus bus;
  int late_hits = 0;
  ASSERT_OK(bus.Subscribe([&](const Event&) {
    EDADB_IGNORE_STATUS(
        bus.Subscribe([&](const Event&) { ++late_hits; }),
        "test only cares that the late subscriber misses this event");
  }));
  bus.Publish(MakeEvent("a", 1));
  bus.Publish(MakeEvent("a", 1));
  EXPECT_EQ(late_hits, 1);  // Subscriber added during first publish.
}

// ---------------------------------------------------------------------------
// VIRT

class VirtTest : public testing::Test {
 protected:
  SimulatedClock clock_{0};
  VirtFilter filter_{&clock_};
};

TEST_F(VirtTest, RelevanceGate) {
  VirtFilter::ConsumerOptions options;
  options.interest = *Predicate::Compile("event_type = 'hazmat'");
  ASSERT_OK(filter_.RegisterConsumer("ops", options));
  EXPECT_EQ(filter_.Evaluate("ops", MakeEvent("hazmat", 5))->verdict,
            VirtFilter::Verdict::kDeliver);
  EXPECT_EQ(filter_.Evaluate("ops", MakeEvent("weather", 5))->verdict,
            VirtFilter::Verdict::kNotRelevant);
}

TEST_F(VirtTest, ValueGateUsesSeverityByDefault) {
  VirtFilter::ConsumerOptions options;
  options.min_value_score = 0.6;
  ASSERT_OK(filter_.RegisterConsumer("exec", options));
  EXPECT_EQ(filter_.Evaluate("exec", MakeEvent("x", 8))->verdict,
            VirtFilter::Verdict::kDeliver);  // 0.8 >= 0.6.
  auto low = *filter_.Evaluate("exec", MakeEvent("x", 3));
  EXPECT_EQ(low.verdict, VirtFilter::Verdict::kBelowValue);
  EXPECT_DOUBLE_EQ(low.value_score, 0.3);
}

TEST_F(VirtTest, ExplicitValueScoreAttribute) {
  VirtFilter::ConsumerOptions options;
  options.min_value_score = 0.5;
  ASSERT_OK(filter_.RegisterConsumer("c", options));
  Event event = MakeEvent("x", 1);
  event.Set("value_score", Value::Double(0.95));
  EXPECT_EQ(filter_.Evaluate("c", event)->verdict,
            VirtFilter::Verdict::kDeliver);
}

TEST_F(VirtTest, DedupWindowSuppressesRepeats) {
  VirtFilter::ConsumerOptions options;
  options.dedup_window_micros = 60 * kMicrosPerSecond;
  ASSERT_OK(filter_.RegisterConsumer("c", options));
  const Event event = MakeEvent("leak", 5, "sensor-3");
  EXPECT_EQ(filter_.Evaluate("c", event)->verdict,
            VirtFilter::Verdict::kDeliver);
  EXPECT_EQ(filter_.Evaluate("c", event)->verdict,
            VirtFilter::Verdict::kDuplicate);
  clock_.AdvanceMicros(61 * kMicrosPerSecond);
  EXPECT_EQ(filter_.Evaluate("c", event)->verdict,
            VirtFilter::Verdict::kDeliver);
}

TEST_F(VirtTest, DedupKeyAttributeOverridesDefaultIdentity) {
  VirtFilter::ConsumerOptions options;
  options.dedup_window_micros = kMicrosPerMinute;
  ASSERT_OK(filter_.RegisterConsumer("c", options));
  Event a = MakeEvent("alert", 5, "s1");
  a.Set("dedup_key", Value::String("incident-42"));
  Event b = MakeEvent("alert", 5, "s2");  // Different source...
  b.Set("dedup_key", Value::String("incident-42"));  // ...same incident.
  EXPECT_EQ(filter_.Evaluate("c", a)->verdict,
            VirtFilter::Verdict::kDeliver);
  EXPECT_EQ(filter_.Evaluate("c", b)->verdict,
            VirtFilter::Verdict::kDuplicate);
}

TEST_F(VirtTest, RateLimitTokenBucket) {
  VirtFilter::ConsumerOptions options;
  options.rate_limit_per_second = 1.0;
  options.rate_burst = 2.0;
  ASSERT_OK(filter_.RegisterConsumer("c", options));
  // Burst of 2 allowed, third limited.
  EXPECT_EQ(filter_.Evaluate("c", MakeEvent("a", 5, "s1"))->verdict,
            VirtFilter::Verdict::kDeliver);
  EXPECT_EQ(filter_.Evaluate("c", MakeEvent("b", 5, "s2"))->verdict,
            VirtFilter::Verdict::kDeliver);
  EXPECT_EQ(filter_.Evaluate("c", MakeEvent("c", 5, "s3"))->verdict,
            VirtFilter::Verdict::kRateLimited);
  // Refills at 1/sec.
  clock_.AdvanceMicros(kMicrosPerSecond);
  EXPECT_EQ(filter_.Evaluate("c", MakeEvent("d", 5, "s4"))->verdict,
            VirtFilter::Verdict::kDeliver);
}

TEST_F(VirtTest, RateLimitedEventDoesNotPoisonDedup) {
  VirtFilter::ConsumerOptions options;
  options.dedup_window_micros = kMicrosPerMinute;
  options.rate_limit_per_second = 1.0;
  options.rate_burst = 1.0;
  ASSERT_OK(filter_.RegisterConsumer("c", options));
  EXPECT_EQ(filter_.Evaluate("c", MakeEvent("a", 5, "s1"))->verdict,
            VirtFilter::Verdict::kDeliver);
  const Event other = MakeEvent("b", 5, "s2");
  EXPECT_EQ(filter_.Evaluate("c", other)->verdict,
            VirtFilter::Verdict::kRateLimited);
  clock_.AdvanceMicros(2 * kMicrosPerSecond);
  // The rate-limited one was never delivered, so it is not a duplicate.
  EXPECT_EQ(filter_.Evaluate("c", other)->verdict,
            VirtFilter::Verdict::kDeliver);
}

TEST_F(VirtTest, StatsAccumulate) {
  VirtFilter::ConsumerOptions options;
  options.min_value_score = 0.5;
  options.dedup_window_micros = kMicrosPerMinute;
  ASSERT_OK(filter_.RegisterConsumer("c", options));
  EDADB_IGNORE_STATUS(filter_.Evaluate("c", MakeEvent("a", 8, "s1")),
                      "deliver; outcomes asserted via GetStats below");
  EDADB_IGNORE_STATUS(filter_.Evaluate("c", MakeEvent("a", 8, "s1")),
                      "duplicate; outcomes asserted via GetStats below");
  EDADB_IGNORE_STATUS(filter_.Evaluate("c", MakeEvent("b", 1, "s2")),
                      "below value; outcomes asserted via GetStats below");
  const auto stats = *filter_.GetStats("c");
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.duplicate, 1u);
  EXPECT_EQ(stats.below_value, 1u);
  EXPECT_EQ(stats.suppressed(), 2u);
}

TEST_F(VirtTest, ConsumerAdmin) {
  ASSERT_OK(filter_.RegisterConsumer("a", {}));
  EXPECT_TRUE(filter_.RegisterConsumer("a", {}).IsAlreadyExists());
  EXPECT_TRUE(filter_.Evaluate("ghost", MakeEvent("x", 1)).status()
                  .IsNotFound());
  ASSERT_OK(filter_.UnregisterConsumer("a"));
  EXPECT_TRUE(filter_.UnregisterConsumer("a").IsNotFound());
}

// ---------------------------------------------------------------------------
// ExpectationMonitor

TEST(ExpectationMonitorTest, PerEntityModelsAndAlerts) {
  std::vector<std::string> alerts;
  // The uncertainty floor keeps EWMA warm-up from flagging ordinary
  // noise as anomalous while the variance estimate is still tiny.
  DeviationDetector::Options detector_options;
  detector_options.threshold_sigmas = 4.0;
  detector_options.min_uncertainty = 5.0;
  ExpectationMonitor monitor(
      [] { return std::make_unique<EwmaForecaster>(0.3); },
      detector_options,
      [&](const std::string& entity, TimestampMicros, double,
          const DetectionResult&) { alerts.push_back(entity); });
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(monitor.Process("meter-1", i, rng.Normal(50, 1)).ok());
    ASSERT_TRUE(monitor.Process("meter-2", i, rng.Normal(900, 5)).ok());
  }
  EXPECT_EQ(monitor.num_entities(), 2u);
  EXPECT_TRUE(alerts.empty());
  // meter-1 spikes to meter-2's normal level: only meter-1 alerts,
  // proving models are per-entity.
  ASSERT_TRUE(monitor.Process("meter-1", 200, 900.0).ok());
  ASSERT_TRUE(monitor.Process("meter-2", 200, 900.0).ok());
  EXPECT_EQ(alerts, (std::vector<std::string>{"meter-1"}));
  EXPECT_EQ(monitor.alerts_raised(), 1u);
}

TEST(ExpectationMonitorTest, ResetRelearns) {
  ExpectationMonitor monitor(
      [] { return std::make_unique<EwmaForecaster>(0.5); },
      {.threshold_sigmas = 3.0},
      nullptr);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(monitor.Process("e", i, 10.0).ok());
  }
  ASSERT_TRUE(monitor.ResetEntity("e").ok());
  EXPECT_TRUE(monitor.ResetEntity("e").IsNotFound());
  // Fresh model: the first observation after reset is not an anomaly.
  auto result = *monitor.Process("e", 100, 99999.0);
  EXPECT_FALSE(result.is_anomaly);
}

// ---------------------------------------------------------------------------
// ResponderRegistry

class ResponderTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    registry_ = std::make_unique<ResponderRegistry>(queues_.get());
  }

  Responder MakeResponder(const std::string& id,
                          std::set<std::string> roles,
                          std::set<std::string> capabilities,
                          const std::string& region) {
    Responder r;
    r.id = id;
    r.roles = std::move(roles);
    r.capabilities = std::move(capabilities);
    r.region = region;
    return r;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<ResponderRegistry> registry_;
};

TEST_F(ResponderTest, AuthorizedAvailableAbleFiltering) {
  ASSERT_OK(registry_->RegisterResponder(
      MakeResponder("r1", {"hazmat"}, {"chemical"}, "zone-1")));
  ASSERT_OK(registry_->RegisterResponder(
      MakeResponder("r2", {"medic"}, {"chemical"}, "zone-1")));
  ASSERT_OK(registry_->RegisterResponder(
      MakeResponder("r3", {"hazmat"}, {"fire"}, "zone-1")));
  ResponseCriteria criteria;
  criteria.required_role = "hazmat";         // Authorized...
  criteria.required_capability = "chemical"; // ...and able.
  criteria.max_responders = 10;
  auto found = registry_->FindResponders(criteria);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, "r1");
  // Availability gate.
  ASSERT_OK(registry_->SetAvailable("r1", false));
  EXPECT_TRUE(registry_->FindResponders(criteria).empty());
}

TEST_F(ResponderTest, RegionPreferenceOrdersResults) {
  ASSERT_OK(registry_->RegisterResponder(
      MakeResponder("far", {"hazmat"}, {}, "zone-9")));
  ASSERT_OK(registry_->RegisterResponder(
      MakeResponder("near", {"hazmat"}, {}, "zone-1")));
  ResponseCriteria criteria;
  criteria.required_role = "hazmat";
  criteria.region = "zone-1";
  criteria.max_responders = 1;
  auto found = registry_->FindResponders(criteria);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].id, "near");
}

TEST_F(ResponderTest, DispatchDeliversToQueues) {
  ASSERT_OK(registry_->RegisterResponder(
      MakeResponder("r1", {"hazmat"}, {}, "zone-1")));
  Event event = MakeEvent("spill", 9);
  event.payload = "valve 3 leaking";
  ResponseCriteria criteria;
  criteria.required_role = "hazmat";
  auto notified = *registry_->Dispatch(event, criteria);
  EXPECT_EQ(notified, (std::vector<std::string>{"r1"}));
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("__responder_r1", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "valve 3 leaking");
  bool has_type = false;
  for (const auto& [name, value] : msg->attributes) {
    if (name == "event_type") {
      has_type = true;
      EXPECT_EQ(value.string_value(), "spill");
    }
  }
  EXPECT_TRUE(has_type);
}

TEST_F(ResponderTest, DispatchFailsWhenNobodyQualifies) {
  ResponseCriteria criteria;
  criteria.required_role = "hazmat";
  EXPECT_TRUE(
      registry_->Dispatch(MakeEvent("x", 1), criteria).status().IsNotFound());
}

TEST_F(ResponderTest, AdminLifecycle) {
  ASSERT_OK(registry_->RegisterResponder(MakeResponder("r", {}, {}, "")));
  EXPECT_TRUE(registry_->RegisterResponder(MakeResponder("r", {}, {}, ""))
                  .IsAlreadyExists());
  EXPECT_EQ(registry_->num_responders(), 1u);
  ASSERT_OK(registry_->UnregisterResponder("r"));
  EXPECT_TRUE(registry_->UnregisterResponder("r").IsNotFound());
  EXPECT_TRUE(registry_->SetAvailable("r", true).IsNotFound());
  Responder nameless;
  EXPECT_TRUE(registry_->RegisterResponder(nameless).IsInvalidArgument());
}

}  // namespace
}  // namespace edadb
