// PublishBatch coverage: delivery counts, filters, ordering, and the
// one-snapshot-per-batch contract (handlers that mutate subscriptions
// mid-batch only affect the NEXT publish).

#include "core/event_bus.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

Event Ev(const std::string& type, int64_t severity) {
  Event event;
  event.id = 1;  // Any non-zero id; the bus does not normalize.
  event.type = type;
  event.Set("severity", Value::Int64(severity));
  return event;
}

TEST(EventBusBatchTest, DeliversEveryEventToEverySubscriber) {
  EventBus bus;
  std::vector<std::string> seen_a, seen_b;
  ASSERT_OK(bus.Subscribe(
      [&](const Event& e) { seen_a.push_back(e.type); }).status());
  ASSERT_OK(bus.Subscribe(
      [&](const Event& e) { seen_b.push_back(e.type); }).status());

  const size_t delivered = bus.PublishBatch({Ev("x", 1), Ev("y", 2)});
  EXPECT_EQ(delivered, 4u);
  EXPECT_EQ(seen_a, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(seen_b, (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(bus.published_count(), 2u);
}

TEST(EventBusBatchTest, EmptyBatchIsANoOp) {
  EventBus bus;
  int calls = 0;
  ASSERT_OK(bus.Subscribe([&](const Event&) { ++calls; }).status());
  EXPECT_EQ(bus.PublishBatch({}), 0u);
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(bus.published_count(), 0u);
}

TEST(EventBusBatchTest, FiltersApplyPerEvent) {
  EventBus bus;
  std::vector<int64_t> severities;
  ASSERT_OK(bus.Subscribe(
                   [&](const Event& e) {
                     severities.push_back(e.Get("severity")->int64_value());
                   },
                   "severity >= 5")
                .status());
  const size_t delivered =
      bus.PublishBatch({Ev("a", 3), Ev("b", 7), Ev("c", 9), Ev("d", 1)});
  EXPECT_EQ(delivered, 2u);
  EXPECT_EQ(severities, (std::vector<int64_t>{7, 9}));
}

TEST(EventBusBatchTest, PublishIsEquivalentToOneEventBatch) {
  EventBus bus;
  int calls = 0;
  ASSERT_OK(bus.Subscribe([&](const Event&) { ++calls; }).status());
  EXPECT_EQ(bus.Publish(Ev("solo", 1)), 1u);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(bus.published_count(), 1u);
}

TEST(EventBusBatchTest, MidBatchSubscribeTakesEffectNextPublish) {
  EventBus bus;
  int late_calls = 0;
  int trigger_calls = 0;
  ASSERT_OK(bus.Subscribe([&](const Event&) {
                 ++trigger_calls;
                 if (trigger_calls == 1) {
                   // Re-entrant subscribe from a handler: must not
                   // deadlock, and must not see this batch's remainder.
                   ASSERT_OK(bus.Subscribe(
                                  [&](const Event&) { ++late_calls; })
                                 .status());
                 }
               }).status());
  bus.PublishBatch({Ev("a", 1), Ev("b", 1), Ev("c", 1)});
  EXPECT_EQ(trigger_calls, 3);
  EXPECT_EQ(late_calls, 0);
  bus.Publish(Ev("d", 1));
  EXPECT_EQ(late_calls, 1);
}

TEST(EventBusBatchTest, MidBatchUnsubscribeStillDeliversWholeBatch) {
  EventBus bus;
  int calls = 0;
  uint64_t handle = 0;
  handle = *bus.Subscribe([&](const Event&) {
    ++calls;
    if (calls == 1) ASSERT_OK(bus.Unsubscribe(handle));
  });
  bus.PublishBatch({Ev("a", 1), Ev("b", 1)});
  // The snapshot taken at batch start keeps delivering: at-least-once
  // within the batch, gone afterwards.
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(bus.Publish(Ev("c", 1)), 0u);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace edadb
