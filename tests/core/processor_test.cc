#include "core/processor.h"

#include "common/failpoint.h"
#include "core/sources.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

Event MakeEvent(const std::string& type, int64_t severity,
                const std::string& region = "east") {
  Event event;
  event.type = type;
  event.Set("severity", Value::Int64(severity));
  event.Set("region", Value::String(region));
  return event;
}

class ProcessorTest : public testing::Test {
 protected:
  void SetUp() override {
    EventProcessorOptions options;
    options.data_dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    processor_ = *EventProcessor::Open(std::move(options));
  }

  TempDir dir_;
  std::unique_ptr<EventProcessor> processor_;
};

TEST_F(ProcessorTest, OpensAllSubsystems) {
  EXPECT_NE(processor_->db(), nullptr);
  EXPECT_NE(processor_->queues(), nullptr);
  EXPECT_NE(processor_->rules(), nullptr);
  EXPECT_NE(processor_->broker(), nullptr);
  EXPECT_NE(processor_->propagator(), nullptr);
  EXPECT_NE(processor_->virt(), nullptr);
  EXPECT_NE(processor_->responders(), nullptr);
}

TEST_F(ProcessorTest, QueueActionRoutesMatchingEvents) {
  ASSERT_OK(processor_->rules()->AddRule(
      "critical", "severity >= 7", "queue:alerts"));
  ASSERT_OK(processor_->Ingest(MakeEvent("reading", 3)));
  ASSERT_OK(processor_->Ingest(MakeEvent("reading", 9)));
  DequeueRequest dq;
  auto msg = *processor_->queues()->Dequeue("alerts", dq);
  ASSERT_TRUE(msg.has_value());
  bool has_rule_tag = false;
  for (const auto& [name, value] : msg->attributes) {
    if (name == "matched_rule") {
      has_rule_tag = true;
      EXPECT_EQ(value.string_value(), "critical");
    }
  }
  EXPECT_TRUE(has_rule_tag);
  EXPECT_FALSE(processor_->queues()->Dequeue("alerts", dq)->has_value());
  const auto stats = processor_->GetStats();
  EXPECT_EQ(stats.ingested, 2u);
  EXPECT_EQ(stats.rules_matched, 1u);
  EXPECT_EQ(stats.routed_to_queues, 1u);
}

TEST_F(ProcessorTest, TopicActionPublishes) {
  int received = 0;
  SubscriptionSpec spec;
  spec.subscriber = "dash";
  spec.topic_pattern = "dashboard";
  spec.handler = [&](const Publication&) { ++received; };
  ASSERT_OK(processor_->broker()->Subscribe(std::move(spec)).status());
  ASSERT_OK(processor_->rules()->AddRule("to_dash", "severity >= 5",
                                         "topic:dashboard"));
  ASSERT_OK(processor_->Ingest(MakeEvent("r", 6)));
  EXPECT_EQ(received, 1);
  EXPECT_EQ(processor_->GetStats().routed_to_topics, 1u);
}

TEST_F(ProcessorTest, RespondActionDispatchesByRoleAndRegion) {
  Responder responder;
  responder.id = "east-crew";
  responder.roles = {"hazmat"};
  responder.region = "east";
  ASSERT_OK(processor_->responders()->RegisterResponder(responder));
  ASSERT_OK(processor_->rules()->AddRule("dispatch", "severity >= 8",
                                         "respond:hazmat"));
  ASSERT_OK(processor_->Ingest(MakeEvent("spill", 9, "east")));
  EXPECT_EQ(processor_->GetStats().dispatched_to_responders, 1u);
  DequeueRequest dq;
  EXPECT_TRUE(
      processor_->queues()->Dequeue("__responder_east-crew", dq)
          ->has_value());
}

TEST_F(ProcessorTest, PlainActionsGoToRegisteredHandlers) {
  int called = 0;
  processor_->rules()->RegisterActionHandler(
      "custom", [&](const Rule&, const RowAccessor&) { ++called; });
  ASSERT_OK(processor_->rules()->AddRule("r", "severity > 0", "custom"));
  ASSERT_OK(processor_->Ingest(MakeEvent("x", 5)));
  EXPECT_EQ(called, 1);
}

TEST_F(ProcessorTest, PumpOnceDrivesPropagationAndDispatch) {
  // alerts --propagate--> downstream --dispatch--> handler.
  ASSERT_OK(processor_->queues()->CreateQueue("alerts"));
  ASSERT_OK(processor_->queues()->CreateQueue("downstream"));
  ASSERT_OK(processor_->rules()->AddRule("crit", "severity >= 7",
                                         "queue:alerts"));
  PropagationRule hop;
  hop.name = "hop";
  hop.source_queue = "alerts";
  hop.destination_queue = "downstream";
  ASSERT_OK(processor_->propagator()->AddRule(std::move(hop)));
  int handled = 0;
  QueueDispatcher::Binding binding;
  binding.queue = "downstream";
  binding.handler = [&](const Message&) {
    ++handled;
    return Status::OK();
  };
  ASSERT_OK(processor_->dispatcher()->Bind(std::move(binding)));

  ASSERT_OK(processor_->Ingest(MakeEvent("spill", 9)));
  // Tick 1 propagates; tick 2 dispatches (single-pass pump ordering:
  // propagation runs before dispatch each tick, so one tick suffices
  // when the message is already staged).
  EXPECT_EQ(*processor_->PumpOnce(), 2u);  // 1 propagated + 1 handled.
  EXPECT_EQ(handled, 1);
  EXPECT_EQ(*processor_->PumpOnce(), 0u);  // Drained.
}

TEST_F(ProcessorTest, BusSubscribersSeeIngestedEvents) {
  int seen = 0;
  ASSERT_OK(processor_->bus()->Subscribe([&](const Event&) { ++seen; }));
  ASSERT_OK(processor_->Ingest(MakeEvent("x", 1)));
  ASSERT_OK(processor_->Ingest(MakeEvent("y", 2)));
  EXPECT_EQ(seen, 2);
}

TEST_F(ProcessorTest, AttachedCapturesFeedThePipeline) {
  Database* db = processor_->db();
  auto schema = Schema::Make({{"sensor", ValueType::kString, false},
                              {"severity", ValueType::kInt64, false}});
  ASSERT_TRUE(db->CreateTable("readings", schema).ok());
  ASSERT_OK(processor_->rules()->AddRule(
      "crit", "event_type = 'reading' AND severity >= 7", "queue:alerts"));
  ASSERT_OK(processor_->queues()->CreateQueue("alerts"));

  // Trigger capture: synchronous.
  ASSERT_OK(processor_->AttachTriggerCapture("readings", "reading"));
  ASSERT_TRUE(db->Insert("readings", Record(schema, {Value::String("s1"),
                                                     Value::Int64(9)}))
                  .ok());
  EXPECT_EQ(*processor_->queues()->Depth("alerts", ""), 1u);

  // Journal capture on a second table: drained by PumpOnce.
  ASSERT_TRUE(db->CreateTable("readings2", schema).ok());
  ASSERT_OK(processor_->rules()->AddRule(
      "crit2", "event_type = 'reading2' AND severity >= 7",
      "queue:alerts"));
  ASSERT_OK(processor_->AttachJournalCapture("readings2", "reading2"));
  ASSERT_TRUE(db->Insert("readings2", Record(schema, {Value::String("s2"),
                                                      Value::Int64(8)}))
                  .ok());
  EXPECT_EQ(*processor_->queues()->Depth("alerts", ""), 1u);  // Not yet.
  ASSERT_OK(processor_->PumpOnce().status());
  EXPECT_EQ(*processor_->queues()->Depth("alerts", ""), 2u);

  // Query capture: result-set change events on the next pump.
  Query query = QueryBuilder("readings").Where("severity >= 7").Build();
  ASSERT_OK(processor_->AttachQueryCapture(std::move(query), {"sensor"},
                                           "hot_sensor"));
  ASSERT_OK(processor_->rules()->AddRule(
      "hot", "event_type = 'hot_sensor'", "queue:alerts"));
  ASSERT_TRUE(db->Insert("readings", Record(schema, {Value::String("s3"),
                                                     Value::Int64(9)}))
                  .ok());
  ASSERT_OK(processor_->PumpOnce().status());
  // s3's insert fired the trigger capture (reading) AND the query
  // capture (hot_sensor): alerts gained 2.
  EXPECT_EQ(*processor_->queues()->Depth("alerts", ""), 4u);
}

// ---------------------------------------------------------------------------
// Capture sources (§2.2.a)

SchemaPtr MeterSchema() {
  return Schema::Make({
      {"meter", ValueType::kString, false},
      {"kwh", ValueType::kDouble, false},
  });
}

Record MeterRow(const std::string& meter, double kwh) {
  return Record(MeterSchema(), {Value::String(meter), Value::Double(kwh)});
}

class SourcesTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ASSERT_TRUE(db_->CreateTable("meters", MeterSchema()).ok());
    sink_ = [this](const Event& event) { captured_.push_back(event); };
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  EventSink sink_;
  std::vector<Event> captured_;
};

TEST_F(SourcesTest, TriggerSourceCapturesSynchronously) {
  auto source = *TriggerEventSource::Create(db_.get(), sink_, "meters",
                                            "cap_meters", "meter_change");
  const RowId id = *db_->Insert("meters", MeterRow("m1", 5.5));
  ASSERT_EQ(captured_.size(), 1u);  // No polling needed.
  EXPECT_EQ(captured_[0].type, "meter_change");
  EXPECT_EQ(captured_[0].source, "trigger:meters");
  EXPECT_EQ(captured_[0].Get("op")->string_value(), "INSERT");
  EXPECT_EQ(captured_[0].Get("meter")->string_value(), "m1");
  EXPECT_EQ(captured_[0].Get("kwh")->double_value(), 5.5);
  ASSERT_OK(db_->DeleteRow("meters", id));
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[1].Get("op")->string_value(), "DELETE");
  EXPECT_EQ(captured_[1].Get("meter")->string_value(), "m1");
  EXPECT_EQ(source->captured(), 2u);
}

TEST_F(SourcesTest, TriggerSourceUnregistersOnDestruction) {
  {
    auto source = *TriggerEventSource::Create(db_.get(), sink_, "meters",
                                              "cap_meters", "meter_change");
  }
  ASSERT_OK(db_->Insert("meters", MeterRow("m1", 1)).status());
  EXPECT_TRUE(captured_.empty());
}

TEST_F(SourcesTest, JournalSourceCapturesOnPoll) {
  JournalEventSource source(db_.get(), sink_, "meters", "meter_change");
  ASSERT_OK(db_->Insert("meters", MeterRow("m1", 5.5)).status());
  EXPECT_TRUE(captured_.empty());  // Asynchronous: nothing until Poll.
  EXPECT_EQ(*source.Poll(), 1u);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].source, "journal:meters");
  EXPECT_EQ(captured_[0].Get("meter")->string_value(), "m1");
  EXPECT_TRUE(captured_[0].Get("lsn").has_value());
  EXPECT_EQ(*source.Poll(), 0u);  // Incremental.
}

TEST_F(SourcesTest, QuerySourceCapturesResultSetChanges) {
  Query query = QueryBuilder("meters").Where("kwh > 10").Build();
  QueryEventSource source(db_.get(), sink_, std::move(query), {"meter"},
                          "overload");
  ASSERT_OK(source.Poll().status());  // Prime.
  ASSERT_OK(db_->Insert("meters", MeterRow("m1", 5)).status());
  EXPECT_EQ(*source.Poll(), 0u);  // Below threshold: not in result set.
  ASSERT_OK(db_->Insert("meters", MeterRow("m2", 15)).status());
  EXPECT_EQ(*source.Poll(), 1u);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].type, "overload");
  EXPECT_EQ(captured_[0].Get("op")->string_value(), "ADDED");
}

TEST_F(SourcesTest, PushSourceStampsDefaults) {
  PushEventSource source(sink_, "scada-gateway");
  Event event;
  event.type = "external";
  source.Push(event);
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].source, "scada-gateway");
  EXPECT_NE(captured_[0].id, 0u);
  EXPECT_NE(captured_[0].timestamp, 0);
  EXPECT_EQ(source.captured(), 1u);
}

TEST_F(SourcesTest, AllThreeCapturePathsSeeTheSameChange) {
  auto trigger_source = *TriggerEventSource::Create(
      db_.get(), sink_, "meters", "trig", "via_trigger");
  JournalEventSource journal_source(db_.get(), sink_, "meters",
                                    "via_journal");
  QueryEventSource query_source(db_.get(), sink_,
                                QueryBuilder("meters").Build(), {"meter"},
                                "via_query");
  ASSERT_OK(query_source.Poll().status());

  ASSERT_OK(db_->Insert("meters", MeterRow("m9", 1.0)).status());
  ASSERT_OK(journal_source.Poll().status());
  ASSERT_OK(query_source.Poll().status());

  std::set<std::string> types;
  for (const Event& event : captured_) types.insert(event.type);
  EXPECT_EQ(types, (std::set<std::string>{"via_trigger", "via_journal",
                                          "via_query"}));
}

#if EDADB_FAILPOINTS_ENABLED
// Regression: a capture-source delivery whose Ingest() fails must not
// vanish. Sources deliver on a void callback, so there is no caller to
// propagate to — the processor logs the failure and bumps
// Stats::ingest_failures instead of silently dropping the event.
TEST_F(ProcessorTest, CaptureIngestFailuresAreCountedNotSilentlyDropped) {
  Database* db = processor_->db();
  auto schema = Schema::Make({{"sensor", ValueType::kString, false},
                              {"severity", ValueType::kInt64, false}});
  ASSERT_OK(db->CreateTable("readings", schema));
  ASSERT_OK(processor_->AttachTriggerCapture("readings", "reading"));

  // Default Action injects IOError at the top of Ingest().
  failpoint::Arm("core.ingest", failpoint::Action{});
  // The insert itself still succeeds: the trigger capture hands the
  // event to a void callback, so an ingest failure cannot fail the
  // committing transaction.
  ASSERT_OK(db->Insert("readings", Record(schema, {Value::String("s1"),
                                                   Value::Int64(9)}))
                .status());
  failpoint::DisarmAll();

  EventProcessor::Stats stats = processor_->GetStats();
  EXPECT_EQ(stats.ingest_failures, 1u);
  EXPECT_EQ(stats.ingested, 0u);  // rejected before counting as ingested

  ASSERT_OK(db->Insert("readings", Record(schema, {Value::String("s2"),
                                                   Value::Int64(3)}))
                .status());
  stats = processor_->GetStats();
  EXPECT_EQ(stats.ingest_failures, 1u);
  EXPECT_EQ(stats.ingested, 1u);
}
#endif  // EDADB_FAILPOINTS_ENABLED

}  // namespace
}  // namespace edadb
