// Multithreaded stress for the EventBus: publishers, subscribers and
// unsubscribers hammer the bus concurrently. Run under
// EDADB_SANITIZE=thread these tests are the data-race gate for the
// in-process fanout path.

#include <atomic>
#include <thread>
#include <vector>

#include "core/event_bus.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

Event MakeEvent(int seq) {
  Event event;
  event.id = static_cast<uint64_t>(seq) + 1;
  event.type = "stress";
  event.source = "test";
  event.attributes = {{"seq", Value::Int64(seq)}};
  return event;
}

TEST(EventBusConcurrencyTest, ParallelPublishSubscribeUnsubscribe) {
  EventBus bus;
  constexpr int kPublishers = 4;
  constexpr int kChurners = 2;
  constexpr int kPerPublisher = 400;
  constexpr int kChurnRounds = 200;

  // A stable subscriber that must see every event published while the
  // churn is going on.
  std::atomic<uint64_t> stable_seen{0};
  const uint64_t stable = *bus.Subscribe(
      [&](const Event&) { stable_seen.fetch_add(1); });

  std::vector<std::thread> threads;
  threads.reserve(kPublishers + kChurners);
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        bus.Publish(MakeEvent(p * kPerPublisher + i));
      }
    });
  }
  // Churners subscribe (half of them with a content filter), receive a
  // few events, then unsubscribe, racing the publishers.
  for (int c = 0; c < kChurners; ++c) {
    threads.emplace_back([&, c] {
      for (int round = 0; round < kChurnRounds; ++round) {
        std::atomic<int> local{0};
        auto handle = bus.Subscribe(
            [&](const Event&) { local.fetch_add(1); },
            (c + round) % 2 == 0 ? std::optional<std::string>("seq >= 0")
                                 : std::nullopt);
        ASSERT_OK(handle.status());
        EXPECT_OK(bus.Unsubscribe(*handle));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(stable_seen.load(),
            static_cast<uint64_t>(kPublishers * kPerPublisher));
  EXPECT_EQ(bus.published_count(),
            static_cast<uint64_t>(kPublishers * kPerPublisher));
  EXPECT_OK(bus.Unsubscribe(stable));
  EXPECT_EQ(bus.num_subscribers(), 0u);
}

TEST(EventBusConcurrencyTest, HandlersMayResubscribeWhilePublishersRace) {
  EventBus bus;
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 200;

  // A handler that re-subscribes from inside delivery — the snapshot in
  // Publish() must make this safe against concurrent publishers.
  std::atomic<int> resubs{0};
  std::atomic<uint64_t> self_handle{0};
  self_handle = *bus.Subscribe([&](const Event&) {
    if (resubs.fetch_add(1) % 50 == 0) {
      EDADB_IGNORE_STATUS(
          bus.Unsubscribe(self_handle.load()),
          "racing unsubscribe; stress test only exercises liveness");
      auto renewed = bus.Subscribe([](const Event&) {});
      if (renewed.ok()) self_handle = *renewed;
    }
  });

  std::vector<std::thread> threads;
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        bus.Publish(MakeEvent(p * kPerPublisher + i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bus.published_count(),
            static_cast<uint64_t>(kPublishers * kPerPublisher));
}

}  // namespace
}  // namespace edadb
