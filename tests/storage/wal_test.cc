#include "storage/wal.h"

#include <fstream>

#include "common/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

WalOptions Opts(const std::string& dir,
                uint64_t segment_size = 16 * 1024 * 1024) {
  WalOptions options;
  options.dir = dir;
  options.segment_size_bytes = segment_size;
  options.sync_policy = WalSyncPolicy::kNever;
  return options;
}

TEST(WalSegmentNameTest, RoundTrip) {
  EXPECT_EQ(ParseWalSegmentName(WalSegmentName(0)), 0u);
  EXPECT_EQ(ParseWalSegmentName(WalSegmentName(123456789)), 123456789u);
  EXPECT_EQ(ParseWalSegmentName("not-a-segment"), kInvalidLsn);
  EXPECT_EQ(ParseWalSegmentName("wal-.log"), kInvalidLsn);
  EXPECT_EQ(ParseWalSegmentName("wal-12x.log"), kInvalidLsn);
}

TEST(WalTest, AppendAndReadBack) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path()));
  const Lsn lsn1 = *writer->Append(1, "first");
  const Lsn lsn2 = *writer->Append(2, "second");
  EXPECT_EQ(lsn1, 0u);
  EXPECT_EQ(lsn2, kWalHeaderSize + 5);

  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.lsn, lsn1);
  EXPECT_EQ(entry.type, 1);
  EXPECT_EQ(entry.payload, "first");
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.lsn, lsn2);
  EXPECT_EQ(entry.payload, "second");
  EXPECT_FALSE(*cursor.Next(&entry));  // Caught up.
}

TEST(WalTest, EmptyPayloadAndBinaryPayload) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path()));
  ASSERT_OK(writer->Append(7, ""));
  const std::string binary("\x00\xff\x00 payload", 12);
  ASSERT_OK(writer->Append(8, binary));
  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "");
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, binary);
}

TEST(WalTest, CursorTailsLiveWrites) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path()));
  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  EXPECT_FALSE(*cursor.Next(&entry));  // Nothing yet.
  ASSERT_OK(writer->Append(1, "late arrival"));
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "late arrival");
  EXPECT_FALSE(*cursor.Next(&entry));
  ASSERT_OK(writer->Append(1, "even later"));
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "even later");
}

TEST(WalTest, RollsSegmentsAndCursorFollows) {
  TempDir dir;
  // Tiny segments force several rolls.
  auto writer = *WalWriter::Open(Opts(dir.path(), 64));
  std::vector<Lsn> lsns;
  for (int i = 0; i < 50; ++i) {
    lsns.push_back(*writer->Append(3, "payload-" + std::to_string(i)));
  }
  // More than one segment must exist.
  size_t segments = 0;
  const std::vector<std::string> names = *ListDir(dir.path());
  for (const std::string& name : names) {
    if (ParseWalSegmentName(name) != kInvalidLsn) ++segments;
  }
  EXPECT_GT(segments, 3u);

  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(*cursor.Next(&entry)) << i;
    EXPECT_EQ(entry.lsn, lsns[static_cast<size_t>(i)]);
    EXPECT_EQ(entry.payload, "payload-" + std::to_string(i));
  }
  EXPECT_FALSE(*cursor.Next(&entry));
}

TEST(WalTest, CursorStartsFromWatermark) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path(), 64));
  Lsn middle = 0;
  for (int i = 0; i < 20; ++i) {
    const Lsn lsn = *writer->Append(1, "rec" + std::to_string(i));
    if (i == 10) middle = lsn;
  }
  WalCursor cursor(dir.path(), middle);
  WalEntry entry;
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "rec10");
}

TEST(WalTest, ReopenContinuesLsnSequence) {
  TempDir dir;
  Lsn next;
  {
    auto writer = *WalWriter::Open(Opts(dir.path()));
    ASSERT_OK(writer->Append(1, "before reopen"));
    next = writer->next_lsn();
  }
  auto writer = *WalWriter::Open(Opts(dir.path()));
  EXPECT_EQ(writer->next_lsn(), next);
  const Lsn lsn = *writer->Append(1, "after reopen");
  EXPECT_EQ(lsn, next);

  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "before reopen");
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "after reopen");
}

TEST(WalTest, TornTailIsTruncatedOnReopen) {
  TempDir dir;
  Lsn keep_end;
  {
    auto writer = *WalWriter::Open(Opts(dir.path()));
    ASSERT_OK(writer->Append(1, "keep me"));
    keep_end = writer->next_lsn();
    ASSERT_OK(writer->Append(1, "torn record"));
  }
  // Chop bytes off the tail, simulating a crash mid-write.
  const std::string seg = dir.path() + "/" + WalSegmentName(0);
  std::string data = *ReadFileToString(seg);
  data.resize(data.size() - 5);
  ASSERT_OK(WriteStringToFile(seg, data, false));

  auto writer = *WalWriter::Open(Opts(dir.path()));
  EXPECT_EQ(writer->next_lsn(), keep_end);  // Tail dropped.
  ASSERT_OK(writer->Append(1, "replacement"));

  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "keep me");
  ASSERT_TRUE(*cursor.Next(&entry));
  EXPECT_EQ(entry.payload, "replacement");
  EXPECT_FALSE(*cursor.Next(&entry));
}

TEST(WalTest, CorruptMiddleRecordIsDetectedOnReopen) {
  TempDir dir;
  {
    auto writer = *WalWriter::Open(Opts(dir.path()));
    ASSERT_OK(writer->Append(1, "aaaa"));
    ASSERT_OK(writer->Append(1, "bbbb"));
  }
  // Flip a payload byte of the first record.
  const std::string seg = dir.path() + "/" + WalSegmentName(0);
  std::string data = *ReadFileToString(seg);
  data[kWalHeaderSize] ^= 0x40;
  ASSERT_OK(WriteStringToFile(seg, data, false));

  // Reopen treats everything from the corrupt record on as torn tail.
  auto writer = *WalWriter::Open(Opts(dir.path()));
  EXPECT_EQ(writer->next_lsn(), 0u);
}

TEST(WalTest, TruncateBeforeDropsWholeOldSegments) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path(), 64));
  Lsn late = 0;
  for (int i = 0; i < 40; ++i) {
    late = *writer->Append(1, "record-" + std::to_string(i));
  }
  ASSERT_OK(writer->TruncateBefore(late));
  // A cursor from the surviving segment boundary still reads the tail.
  Lsn first_surviving = kInvalidLsn;
  const std::vector<std::string> names = *ListDir(dir.path());
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start != kInvalidLsn && start < first_surviving) {
      first_surviving = start;
    }
  }
  EXPECT_GT(first_surviving, 0u);  // Some prefix was removed.
  WalCursor cursor(dir.path(), first_surviving);
  WalEntry entry;
  size_t read = 0;
  while (*cursor.Next(&entry)) ++read;
  EXPECT_GT(read, 0u);
  EXPECT_EQ(cursor.position(), writer->next_lsn());
}

TEST(WalTest, SyncPoliciesWriteIdenticalContent) {
  for (const WalSyncPolicy policy :
       {WalSyncPolicy::kNever, WalSyncPolicy::kOnCommit,
        WalSyncPolicy::kEveryAppend}) {
    TempDir dir;
    WalOptions options = Opts(dir.path());
    options.sync_policy = policy;
    auto writer = *WalWriter::Open(std::move(options));
    ASSERT_OK(writer->Append(1, "alpha"));
    ASSERT_OK(writer->Sync());
    WalCursor cursor(dir.path(), 0);
    WalEntry entry;
    ASSERT_TRUE(*cursor.Next(&entry));
    EXPECT_EQ(entry.payload, "alpha");
  }
}

TEST(WalTest, RandomizedAppendReadBack) {
  TempDir dir;
  Random rng(777);
  auto writer = *WalWriter::Open(Opts(dir.path(), 512));
  std::vector<std::pair<uint8_t, std::string>> written;
  for (int i = 0; i < 500; ++i) {
    const uint8_t type = static_cast<uint8_t>(rng.Uniform(250) + 1);
    std::string payload = rng.NextString(rng.Uniform(100));
    ASSERT_OK(writer->Append(type, payload));
    written.emplace_back(type, std::move(payload));
  }
  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  for (size_t i = 0; i < written.size(); ++i) {
    ASSERT_TRUE(*cursor.Next(&entry)) << i;
    EXPECT_EQ(entry.type, written[i].first);
    EXPECT_EQ(entry.payload, written[i].second);
  }
  EXPECT_FALSE(*cursor.Next(&entry));
}

}  // namespace
}  // namespace edadb
