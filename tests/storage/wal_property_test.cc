// WAL property tests: across random append/reopen/truncate/corruption
// histories, a cursor always reads exactly the surviving valid prefix
// (plus everything appended afterwards), in order, with correct
// payloads.

#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/wal.h"
#include "test_util.h"

namespace edadb {
namespace {

WalOptions Opts(const std::string& dir, uint64_t segment_size) {
  WalOptions options;
  options.dir = dir;
  options.segment_size_bytes = segment_size;
  options.sync_policy = WalSyncPolicy::kNever;
  return options;
}

TEST(WalProperty, ReopenCyclesPreserveEveryRecord) {
  Random rng(20070607);
  for (int trial = 0; trial < 10; ++trial) {
    TempDir dir;
    const uint64_t segment_size = 64 + rng.Uniform(512);
    std::vector<std::string> written;
    // Several writer lifetimes, each appending a random batch.
    for (int session = 0; session < 5; ++session) {
      auto writer = *WalWriter::Open(Opts(dir.path(), segment_size));
      const size_t batch = rng.Uniform(40) + 1;
      for (size_t i = 0; i < batch; ++i) {
        std::string payload = rng.NextString(rng.Uniform(60));
        ASSERT_TRUE(writer->Append(1, payload).ok());
        written.push_back(std::move(payload));
      }
    }
    WalCursor cursor(dir.path(), 0);
    WalEntry entry;
    for (size_t i = 0; i < written.size(); ++i) {
      ASSERT_TRUE(*cursor.Next(&entry))
          << "trial " << trial << " record " << i;
      ASSERT_EQ(entry.payload, written[i]);
    }
    EXPECT_FALSE(*cursor.Next(&entry));
  }
}

TEST(WalProperty, RandomTailCutsRecoverLongestValidPrefix) {
  Random rng(424243);
  for (int trial = 0; trial < 15; ++trial) {
    TempDir dir;
    std::vector<Lsn> lsns;
    Lsn end_lsn = 0;
    {
      auto writer = *WalWriter::Open(Opts(dir.path(), 4096));
      for (int i = 0; i < 30; ++i) {
        lsns.push_back(*writer->Append(1, "record-" + std::to_string(i)));
      }
      end_lsn = writer->next_lsn();
    }
    // Cut a random number of bytes off the single segment's tail.
    const std::string segment = dir.path() + "/" + WalSegmentName(0);
    std::string bytes = *ReadFileToString(segment);
    const size_t cut = rng.Uniform(bytes.size()) + 1;
    bytes.resize(bytes.size() - cut);
    ASSERT_TRUE(WriteStringToFile(segment, bytes, false).ok());

    auto writer = *WalWriter::Open(Opts(dir.path(), 4096));
    // The writer resumed at some record boundary <= the cut point.
    const Lsn resumed = writer->next_lsn();
    EXPECT_LE(resumed, end_lsn - cut + lsns.size() * 0);  // <= old end.
    // It must be one of the original record boundaries (or 0).
    bool boundary = resumed == 0;
    for (const Lsn lsn : lsns) boundary = boundary || resumed == lsn;
    boundary = boundary || resumed == end_lsn;
    EXPECT_TRUE(boundary) << "resumed at " << resumed;

    // Cursor sees exactly the surviving prefix, then new appends.
    ASSERT_TRUE(writer->Append(2, "appended after cut").ok());
    WalCursor cursor(dir.path(), 0);
    WalEntry entry;
    size_t index = 0;
    while (*cursor.Next(&entry)) {
      if (entry.type == 1) {
        ASSERT_LT(index, lsns.size());
        ASSERT_EQ(entry.lsn, lsns[index]);
        ASSERT_EQ(entry.payload, "record-" + std::to_string(index));
        ++index;
      } else {
        ASSERT_EQ(entry.payload, "appended after cut");
      }
    }
    EXPECT_EQ(index, static_cast<size_t>(
                         std::count_if(lsns.begin(), lsns.end(),
                                       [&](Lsn lsn) {
                                         return lsn < resumed;
                                       })));
  }
}

TEST(WalProperty, InterleavedWriteAndTailReads) {
  // The journal-miner pattern: a cursor interleaved with appends must
  // deliver every record exactly once, regardless of batch boundaries.
  Random rng(777777);
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path(), 256));
  WalCursor cursor(dir.path(), 0);
  size_t written = 0;
  size_t read = 0;
  WalEntry entry;
  for (int round = 0; round < 200; ++round) {
    const size_t appends = rng.Uniform(5);
    for (size_t i = 0; i < appends; ++i) {
      ASSERT_TRUE(
          writer->Append(1, "n" + std::to_string(written)).ok());
      ++written;
    }
    const size_t reads = rng.Uniform(7);
    for (size_t i = 0; i < reads; ++i) {
      auto more = cursor.Next(&entry);
      ASSERT_TRUE(more.ok());
      if (!*more) break;
      ASSERT_EQ(entry.payload, "n" + std::to_string(read));
      ++read;
    }
  }
  while (*cursor.Next(&entry)) {
    ASSERT_EQ(entry.payload, "n" + std::to_string(read));
    ++read;
  }
  EXPECT_EQ(read, written);
}

}  // namespace
}  // namespace edadb
