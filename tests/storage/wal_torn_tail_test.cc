// Torn-tail regression sweep: a crash can cut a WAL segment at ANY byte
// of the frame being written. Recovery must drop exactly the torn final
// record — never a preceding intact one, never accept a partial frame.

#include <string>

#include "common/failpoint.h"
#include "gtest/gtest.h"
#include "storage/file.h"
#include "storage/wal.h"
#include "test_util.h"

namespace edadb {
namespace {

WalOptions Opts(const std::string& dir) {
  WalOptions options;
  options.dir = dir;
  options.sync_policy = WalSyncPolicy::kNever;
  return options;
}

// Truncates the single segment at every byte offset within the final
// frame and reopens. Each cut must drop exactly the torn record: the
// two intact records survive, next_lsn rewinds to the pre-torn end.
TEST(WalTornTailTest, EveryCutOffsetOfFinalFrameDropsExactlyThatRecord) {
  TempDir dir;
  Lsn keep_end = 0;
  size_t base_size = 0;
  std::string full;
  const std::string seg = dir.path() + "/" + WalSegmentName(0);
  {
    auto writer = *WalWriter::Open(Opts(dir.path()));
    ASSERT_OK(writer->Append(1, "first intact record"));
    ASSERT_OK(writer->Append(2, "second intact record"));
    keep_end = writer->next_lsn();
    base_size = ReadFileToString(seg)->size();
    ASSERT_OK(writer->Append(3, "the record that gets torn"));
    full = *ReadFileToString(seg);
  }
  const size_t frame_bytes = full.size() - base_size;
  ASSERT_GT(frame_bytes, kWalHeaderSize);  // Sanity: header + payload.

  for (size_t cut = 0; cut < frame_bytes; ++cut) {
    ASSERT_OK(WriteStringToFile(seg, full.substr(0, base_size + cut),
                                /*sync=*/false));
    auto reopened = WalWriter::Open(Opts(dir.path()));
    ASSERT_TRUE(reopened.ok()) << "cut at offset " << cut;
    EXPECT_EQ((*reopened)->next_lsn(), keep_end)
        << "cut at offset " << cut << " of " << frame_bytes
        << " did not drop exactly the torn record";

    WalCursor cursor(dir.path(), 0);
    WalEntry entry;
    ASSERT_TRUE(*cursor.Next(&entry)) << "cut at offset " << cut;
    EXPECT_EQ(entry.payload, "first intact record");
    ASSERT_TRUE(*cursor.Next(&entry)) << "cut at offset " << cut;
    EXPECT_EQ(entry.payload, "second intact record");
    EXPECT_FALSE(*cursor.Next(&entry)) << "cut at offset " << cut;
  }
}

// Same property driven through the failpoint instead of manual file
// surgery: "wal.append.torn" persists only the first `arg` bytes of the
// frame and fails the append, exactly like a crash mid-write.
TEST(WalTornTailTest, TornAppendFailpointLeavesRecoverablePrefix) {
  for (const int64_t prefix : {0, 1, 8, 9, 13, 1000}) {
    TempDir dir;
    Lsn keep_end = 0;
    {
      auto writer = *WalWriter::Open(Opts(dir.path()));
      ASSERT_OK(writer->Append(1, "durable"));
      keep_end = writer->next_lsn();

      failpoint::Action torn;
      torn.kind = failpoint::ActionKind::kReturnStatus;
      torn.arg = prefix;
      torn.max_fires = 1;
      failpoint::Arm("wal.append.torn", torn);
      const Status s = writer->Append(2, "doomed write").status();
      failpoint::DisarmAll();
      ASSERT_FALSE(s.ok()) << "prefix " << prefix;
      // Writer state must not have advanced past the failed append.
      EXPECT_EQ(writer->next_lsn(), keep_end);
    }
    auto reopened = WalWriter::Open(Opts(dir.path()));
    ASSERT_TRUE(reopened.ok()) << "prefix " << prefix;
    // A prefix >= the full frame persists a complete, valid record; the
    // caller saw a failure, and recovery keeping the record is the
    // standard "commit reported as error but actually durable" case.
    // Any shorter prefix must be dropped.
    const Lsn recovered = (*reopened)->next_lsn();
    if (recovered != keep_end) {
      EXPECT_EQ(prefix, 1000) << "short torn prefix survived recovery";
    }

    WalCursor cursor(dir.path(), 0);
    WalEntry entry;
    ASSERT_TRUE(*cursor.Next(&entry)) << "prefix " << prefix;
    EXPECT_EQ(entry.payload, "durable");
  }
}

}  // namespace
}  // namespace edadb
