#include "storage/heap.h"
#include "storage/log_record.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(TableHeapTest, InsertAssignsMonotonicIds) {
  TableHeap heap;
  EXPECT_EQ(heap.Insert("a"), 1u);
  EXPECT_EQ(heap.Insert("b"), 2u);
  EXPECT_EQ(heap.size(), 2u);
  EXPECT_EQ(*heap.Get(1), "a");
  EXPECT_EQ(*heap.Get(2), "b");
  EXPECT_EQ(heap.Get(3), nullptr);
}

TEST(TableHeapTest, AllocateReservesWithoutInserting) {
  TableHeap heap;
  const RowId id = heap.AllocateRowId();
  EXPECT_EQ(id, 1u);
  EXPECT_EQ(heap.Get(id), nullptr);
  EXPECT_EQ(heap.Insert("x"), 2u);  // Never reuses the reserved id.
}

TEST(TableHeapTest, InsertWithIdAdvancesAllocator) {
  TableHeap heap;
  ASSERT_TRUE(heap.InsertWithId(10, "ten").ok());
  EXPECT_TRUE(heap.InsertWithId(10, "dup").IsAlreadyExists());
  EXPECT_EQ(heap.Insert("next"), 11u);
}

TEST(TableHeapTest, UpdateAndDelete) {
  TableHeap heap;
  const RowId id = heap.Insert("v1");
  ASSERT_TRUE(heap.Update(id, "v2").ok());
  EXPECT_EQ(*heap.Get(id), "v2");
  EXPECT_TRUE(heap.Update(99, "x").IsNotFound());
  ASSERT_TRUE(heap.Delete(id).ok());
  EXPECT_EQ(heap.Get(id), nullptr);
  EXPECT_TRUE(heap.Delete(id).IsNotFound());
}

TEST(TableHeapTest, ScanInIdOrderWithEarlyStop) {
  TableHeap heap;
  heap.Insert("a");
  heap.Insert("b");
  heap.Insert("c");
  ASSERT_TRUE(heap.Delete(2).ok());
  std::vector<RowId> seen;
  heap.Scan([&](RowId id, const std::string&) {
    seen.push_back(id);
    return true;
  });
  EXPECT_EQ(seen, (std::vector<RowId>{1, 3}));
  seen.clear();
  heap.Scan([&](RowId id, const std::string&) {
    seen.push_back(id);
    return false;
  });
  EXPECT_EQ(seen, (std::vector<RowId>{1}));
}

LogRecord RoundTrip(const LogRecord& rec) {
  const std::string payload = rec.EncodePayload();
  auto decoded =
      LogRecord::Decode(static_cast<uint8_t>(rec.type), payload);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  return decoded.ok() ? *decoded : LogRecord{};
}

TEST(LogRecordTest, TxnControlRecords) {
  for (const LogRecordType type :
       {LogRecordType::kBeginTxn, LogRecordType::kCommitTxn,
        LogRecordType::kAbortTxn}) {
    LogRecord rec;
    rec.type = type;
    rec.txn_id = 987654321;
    const LogRecord decoded = RoundTrip(rec);
    EXPECT_EQ(decoded.type, type);
    EXPECT_EQ(decoded.txn_id, 987654321u);
  }
}

TEST(LogRecordTest, InsertRecord) {
  LogRecord rec;
  rec.type = LogRecordType::kInsert;
  rec.txn_id = 5;
  rec.table_id = 3;
  rec.row_id = 42;
  rec.new_row = std::string("\x01\x02\x00\x03", 4);
  const LogRecord decoded = RoundTrip(rec);
  EXPECT_EQ(decoded.table_id, 3u);
  EXPECT_EQ(decoded.row_id, 42u);
  EXPECT_EQ(decoded.new_row, rec.new_row);
}

TEST(LogRecordTest, UpdateRecordCarriesBothImages) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  rec.txn_id = 5;
  rec.table_id = 3;
  rec.row_id = 42;
  rec.old_row = "old-bytes";
  rec.new_row = "new-bytes";
  const LogRecord decoded = RoundTrip(rec);
  EXPECT_EQ(decoded.old_row, "old-bytes");
  EXPECT_EQ(decoded.new_row, "new-bytes");
}

TEST(LogRecordTest, DeleteRecord) {
  LogRecord rec;
  rec.type = LogRecordType::kDelete;
  rec.txn_id = 1;
  rec.table_id = 2;
  rec.row_id = 3;
  rec.old_row = "goodbye";
  const LogRecord decoded = RoundTrip(rec);
  EXPECT_EQ(decoded.old_row, "goodbye");
}

TEST(LogRecordTest, CreateTableCarriesSchema) {
  LogRecord rec;
  rec.type = LogRecordType::kCreateTable;
  rec.table_id = 9;
  rec.table_name = "orders";
  rec.schema_fields = {{"id", ValueType::kInt64, false},
                       {"note", ValueType::kString, true}};
  const LogRecord decoded = RoundTrip(rec);
  EXPECT_EQ(decoded.table_name, "orders");
  ASSERT_EQ(decoded.schema_fields.size(), 2u);
  EXPECT_EQ(decoded.schema_fields[0].name, "id");
  EXPECT_EQ(decoded.schema_fields[0].type, ValueType::kInt64);
  EXPECT_FALSE(decoded.schema_fields[0].nullable);
  EXPECT_TRUE(decoded.schema_fields[1].nullable);
}

TEST(LogRecordTest, CreateIndexRecord) {
  LogRecord rec;
  rec.type = LogRecordType::kCreateIndex;
  rec.table_id = 4;
  rec.index_column = "price";
  rec.index_unique = true;
  const LogRecord decoded = RoundTrip(rec);
  EXPECT_EQ(decoded.index_column, "price");
  EXPECT_TRUE(decoded.index_unique);
}

TEST(LogRecordTest, CheckpointRecord) {
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  rec.checkpoint_lsn = 0xabcdef;
  rec.snapshot_file = "snapshot-000001.ckpt";
  const LogRecord decoded = RoundTrip(rec);
  EXPECT_EQ(decoded.checkpoint_lsn, 0xabcdefu);
  EXPECT_EQ(decoded.snapshot_file, "snapshot-000001.ckpt");
}

TEST(LogRecordTest, DecodeRejectsGarbage) {
  EXPECT_TRUE(LogRecord::Decode(200, "junk").status().IsCorruption());
  // Truncated insert payload.
  LogRecord rec;
  rec.type = LogRecordType::kInsert;
  rec.txn_id = 1;
  rec.table_id = 1;
  rec.row_id = 1;
  rec.new_row = "some payload bytes";
  const std::string payload = rec.EncodePayload();
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_TRUE(
        LogRecord::Decode(static_cast<uint8_t>(LogRecordType::kInsert),
                          payload.substr(0, cut))
            .status()
            .IsCorruption())
        << cut;
  }
  // Trailing junk.
  EXPECT_TRUE(
      LogRecord::Decode(static_cast<uint8_t>(LogRecordType::kInsert),
                        payload + "x")
          .status()
          .IsCorruption());
}

}  // namespace
}  // namespace edadb
