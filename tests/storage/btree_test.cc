#include "storage/btree.h"

#include <map>
#include <set>

#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(BTreeTest, EmptyTree) {
  BTreeIndex index(/*unique=*/false);
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.height(), 1);
  EXPECT_TRUE(index.Lookup(Value::Int64(1)).empty());
}

TEST(BTreeTest, InsertLookup) {
  BTreeIndex index(false);
  ASSERT_TRUE(index.Insert(Value::Int64(5), 100).ok());
  ASSERT_TRUE(index.Insert(Value::Int64(5), 101).ok());
  ASSERT_TRUE(index.Insert(Value::Int64(7), 102).ok());
  EXPECT_EQ(index.size(), 3u);
  EXPECT_EQ(index.Lookup(Value::Int64(5)),
            (std::vector<RowId>{100, 101}));
  EXPECT_EQ(index.Lookup(Value::Int64(7)), (std::vector<RowId>{102}));
  EXPECT_TRUE(index.Lookup(Value::Int64(6)).empty());
}

TEST(BTreeTest, ReinsertSameEntryIsIdempotent) {
  BTreeIndex index(false);
  ASSERT_TRUE(index.Insert(Value::Int64(5), 100).ok());
  ASSERT_TRUE(index.Insert(Value::Int64(5), 100).ok());
  EXPECT_EQ(index.size(), 1u);
}

TEST(BTreeTest, UniqueIndexRejectsSecondRow) {
  BTreeIndex index(/*unique=*/true);
  ASSERT_TRUE(index.Insert(Value::String("key"), 1).ok());
  EXPECT_TRUE(index.Insert(Value::String("key"), 2).IsAlreadyExists());
  // Same row again is fine.
  EXPECT_TRUE(index.Insert(Value::String("key"), 1).ok());
  EXPECT_EQ(index.size(), 1u);
}

TEST(BTreeTest, Erase) {
  BTreeIndex index(false);
  ASSERT_TRUE(index.Insert(Value::Int64(1), 10).ok());
  ASSERT_TRUE(index.Insert(Value::Int64(1), 11).ok());
  EXPECT_TRUE(index.Erase(Value::Int64(1), 10));
  EXPECT_EQ(index.Lookup(Value::Int64(1)), (std::vector<RowId>{11}));
  EXPECT_FALSE(index.Erase(Value::Int64(1), 10));  // Already gone.
  EXPECT_FALSE(index.Erase(Value::Int64(99), 1));  // Never existed.
  EXPECT_TRUE(index.Erase(Value::Int64(1), 11));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Lookup(Value::Int64(1)).empty());
}

TEST(BTreeTest, SplitsGrowHeight) {
  BTreeIndex index(false);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(index.Insert(Value::Int64(i), static_cast<RowId>(i)).ok());
  }
  EXPECT_EQ(index.size(), 10000u);
  EXPECT_GE(index.height(), 3);
  for (int i = 0; i < 10000; i += 997) {
    EXPECT_EQ(index.Lookup(Value::Int64(i)),
              (std::vector<RowId>{static_cast<RowId>(i)}));
  }
}

TEST(BTreeTest, ScanFullRangeInOrder) {
  BTreeIndex index(false);
  // Insert in reverse to prove ordering comes from the tree.
  for (int i = 99; i >= 0; --i) {
    ASSERT_TRUE(index.Insert(Value::Int64(i), static_cast<RowId>(i)).ok());
  }
  std::vector<int64_t> keys;
  index.Scan(std::nullopt, true, std::nullopt, true,
             [&](const Value& key, RowId) {
               keys.push_back(key.int64_value());
               return true;
             });
  ASSERT_EQ(keys.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(keys[static_cast<size_t>(i)], i);
}

TEST(BTreeTest, ScanBoundsAndInclusivity) {
  BTreeIndex index(false);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(index.Insert(Value::Int64(i), static_cast<RowId>(i)).ok());
  }
  auto collect = [&](std::optional<Value> lo, bool lo_inc,
                     std::optional<Value> hi, bool hi_inc) {
    std::vector<int64_t> keys;
    index.Scan(lo, lo_inc, hi, hi_inc, [&](const Value& key, RowId) {
      keys.push_back(key.int64_value());
      return true;
    });
    return keys;
  };
  EXPECT_EQ(collect(Value::Int64(5), true, Value::Int64(8), true),
            (std::vector<int64_t>{5, 6, 7, 8}));
  EXPECT_EQ(collect(Value::Int64(5), false, Value::Int64(8), false),
            (std::vector<int64_t>{6, 7}));
  EXPECT_EQ(collect(std::nullopt, true, Value::Int64(2), true),
            (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(collect(Value::Int64(17), true, std::nullopt, true),
            (std::vector<int64_t>{17, 18, 19}));
  EXPECT_TRUE(collect(Value::Int64(50), true, std::nullopt, true).empty());
}

TEST(BTreeTest, ScanEarlyStop) {
  BTreeIndex index(false);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(index.Insert(Value::Int64(i), static_cast<RowId>(i)).ok());
  }
  int visited = 0;
  index.Scan(std::nullopt, true, std::nullopt, true,
             [&](const Value&, RowId) { return ++visited < 10; });
  EXPECT_EQ(visited, 10);
}

TEST(BTreeTest, MixedTypeKeysFollowTotalOrder) {
  BTreeIndex index(false);
  ASSERT_TRUE(index.Insert(Value::String("zz"), 1).ok());
  ASSERT_TRUE(index.Insert(Value::Int64(5), 2).ok());
  ASSERT_TRUE(index.Insert(Value::Bool(true), 3).ok());
  ASSERT_TRUE(index.Insert(Value::Double(2.5), 4).ok());
  std::vector<RowId> rows;
  index.Scan(std::nullopt, true, std::nullopt, true,
             [&](const Value&, RowId row) {
               rows.push_back(row);
               return true;
             });
  // bool < numeric(2.5 < 5) < string.
  EXPECT_EQ(rows, (std::vector<RowId>{3, 4, 2, 1}));
}

/// Property: after a random workload, the B+tree agrees with a
/// std::multimap reference model on lookups, full scans and ranges.
TEST(BTreeProperty, AgreesWithReferenceModel) {
  Random rng(31337);
  BTreeIndex index(false);
  std::multimap<int64_t, RowId> model;
  std::set<std::pair<int64_t, RowId>> present;

  for (int op = 0; op < 20000; ++op) {
    const int64_t key = rng.UniformInt(0, 500);
    const RowId row = rng.Uniform(50);
    if (rng.OneIn(3) && !present.empty()) {
      // Erase: sometimes an existing entry, sometimes random.
      std::pair<int64_t, RowId> victim = {key, row};
      if (rng.OneIn(2)) {
        auto it = present.lower_bound({key, 0});
        if (it == present.end()) it = present.begin();
        victim = *it;
      }
      const bool expected = present.erase(victim) > 0;
      if (expected) {
        for (auto it = model.lower_bound(victim.first);
             it != model.end() && it->first == victim.first; ++it) {
          if (it->second == victim.second) {
            model.erase(it);
            break;
          }
        }
      }
      EXPECT_EQ(index.Erase(Value::Int64(victim.first), victim.second),
                expected);
    } else {
      const bool fresh = present.insert({key, row}).second;
      if (fresh) model.emplace(key, row);
      ASSERT_TRUE(index.Insert(Value::Int64(key), row).ok());
    }
  }

  ASSERT_EQ(index.size(), model.size());

  // Point lookups.
  for (int64_t key = 0; key <= 500; ++key) {
    std::set<RowId> expected;
    for (auto it = model.lower_bound(key);
         it != model.end() && it->first == key; ++it) {
      expected.insert(it->second);
    }
    const std::vector<RowId> got = index.Lookup(Value::Int64(key));
    EXPECT_EQ(std::set<RowId>(got.begin(), got.end()), expected)
        << "key=" << key;
  }

  // Random range scans.
  for (int trial = 0; trial < 50; ++trial) {
    int64_t lo = rng.UniformInt(0, 500);
    int64_t hi = rng.UniformInt(0, 500);
    if (lo > hi) std::swap(lo, hi);
    size_t expected = 0;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first <= hi; ++it) {
      ++expected;
    }
    size_t got = 0;
    int64_t last_key = lo - 1;
    index.Scan(Value::Int64(lo), true, Value::Int64(hi), true,
               [&](const Value& key, RowId) {
                 EXPECT_GE(key.int64_value(), last_key);  // Ordered.
                 last_key = key.int64_value();
                 ++got;
                 return true;
               });
    EXPECT_EQ(got, expected) << "range [" << lo << "," << hi << "]";
  }
}

}  // namespace
}  // namespace edadb
