// AppendBatch / SyncTo / group-commit coverage: the batch path must be
// byte-identical to sequential Append calls, roll segments mid-batch,
// and honor the durable watermark contract under concurrent committers.

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/wal.h"
#include "test_util.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

WalOptions Opts(const std::string& dir,
                uint64_t segment_size = 16 * 1024 * 1024,
                WalSyncPolicy policy = WalSyncPolicy::kNever) {
  WalOptions options;
  options.dir = dir;
  options.segment_size_bytes = segment_size;
  options.sync_policy = policy;
  return options;
}

std::string DirBytes(const std::string& dir) {
  std::string all;
  const std::vector<std::string> names = *ListDir(dir);
  std::vector<std::string> segments;
  for (const std::string& name : names) {
    if (ParseWalSegmentName(name) != kInvalidLsn) segments.push_back(name);
  }
  std::sort(segments.begin(), segments.end(),
            [](const std::string& a, const std::string& b) {
              return ParseWalSegmentName(a) < ParseWalSegmentName(b);
            });
  for (const std::string& name : segments) {
    all += *ReadFileToString(dir + "/" + name);
  }
  return all;
}

TEST(WalBatchTest, BatchIsByteIdenticalToSequentialAppends) {
  testing::SeededRng rng;
  for (const uint64_t segment_size : {64u, 256u, 4096u}) {
    TempDir batch_dir;
    TempDir loop_dir;
    std::vector<std::pair<uint8_t, std::string>> records;
    for (int i = 0; i < 40; ++i) {
      records.emplace_back(static_cast<uint8_t>(rng.Uniform(200) + 1),
                           rng.NextString(rng.Uniform(90)));
    }

    auto batch_writer = *WalWriter::Open(Opts(batch_dir.path(), segment_size));
    std::vector<WalRecordRef> batch;
    for (const auto& [type, payload] : records) {
      batch.push_back(WalRecordRef{type, payload});
    }
    const WalBatchResult result = *batch_writer->AppendBatch(batch);
    EXPECT_EQ(result.first_lsn, 0u);
    EXPECT_EQ(result.end_lsn, batch_writer->next_lsn());

    auto loop_writer = *WalWriter::Open(Opts(loop_dir.path(), segment_size));
    for (const auto& [type, payload] : records) {
      ASSERT_OK(loop_writer->Append(type, payload));
    }

    EXPECT_EQ(loop_writer->next_lsn(), batch_writer->next_lsn());
    EXPECT_EQ(DirBytes(batch_dir.path()), DirBytes(loop_dir.path()))
        << "segment_size=" << segment_size;
  }
}

TEST(WalBatchTest, EmptyBatchIsANoOp) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path()));
  const WalBatchResult result = *writer->AppendBatch({});
  EXPECT_EQ(result.first_lsn, 0u);
  EXPECT_EQ(result.end_lsn, 0u);
  EXPECT_EQ(writer->next_lsn(), 0u);
}

TEST(WalBatchTest, RollsSegmentMidBatchAndReadsBack) {
  TempDir dir;
  auto writer = *WalWriter::Open(Opts(dir.path(), 64));
  std::vector<std::string> payloads;
  std::vector<WalRecordRef> batch;
  for (int i = 0; i < 30; ++i) {
    payloads.push_back("mid-roll-payload-" + std::to_string(i));
  }
  for (const std::string& payload : payloads) {
    batch.push_back(WalRecordRef{5, payload});
  }
  ASSERT_OK(writer->AppendBatch(batch));

  size_t segments = 0;
  const std::vector<std::string> names = *ListDir(dir.path());
  for (const std::string& name : names) {
    if (ParseWalSegmentName(name) != kInvalidLsn) ++segments;
  }
  EXPECT_GT(segments, 2u);

  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  for (size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_TRUE(*cursor.Next(&entry)) << i;
    EXPECT_EQ(entry.type, 5);
    EXPECT_EQ(entry.payload, payloads[i]);
  }
  EXPECT_FALSE(*cursor.Next(&entry));
}

TEST(WalBatchTest, SyncToAdvancesDurableWatermark) {
  TempDir dir;
  auto writer =
      *WalWriter::Open(Opts(dir.path(), 16 * 1024 * 1024,
                            WalSyncPolicy::kOnCommit));
  EXPECT_EQ(writer->durable_lsn(), 0u);
  std::vector<WalRecordRef> batch;
  const std::string payload = "durability target";
  for (int i = 0; i < 4; ++i) batch.push_back(WalRecordRef{1, payload});
  const WalBatchResult result = *writer->AppendBatch(batch);
  EXPECT_LT(writer->durable_lsn(), result.end_lsn);
  ASSERT_OK(writer->SyncTo(result.end_lsn));
  EXPECT_GE(writer->durable_lsn(), result.end_lsn);
  // A second barrier for an already-durable target is a fast no-op.
  ASSERT_OK(writer->SyncTo(result.first_lsn));
}

TEST(WalBatchTest, EveryAppendPolicySyncsTheBatch) {
  TempDir dir;
  auto writer =
      *WalWriter::Open(Opts(dir.path(), 16 * 1024 * 1024,
                            WalSyncPolicy::kEveryAppend));
  const std::string payload = "synced on append";
  ASSERT_OK(writer->AppendBatch({WalRecordRef{1, payload}}));
  EXPECT_EQ(writer->durable_lsn(), writer->next_lsn());
}

TEST(WalBatchTest, ConcurrentCommittersAllBecomeDurable) {
  TempDir dir;
  auto writer =
      *WalWriter::Open(Opts(dir.path(), 16 * 1024 * 1024,
                            WalSyncPolicy::kOnCommit));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string payload =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        auto appended = writer->AppendBatch({WalRecordRef{2, payload}});
        if (!appended.ok()) {
          failures.fetch_add(1);
          return;
        }
        // The group-commit rendezvous: every thread demands its own
        // record durable; leaders' fdatasyncs cover followers.
        if (!writer->SyncTo(appended->end_lsn).ok() ||
            writer->durable_lsn() < appended->end_lsn) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);

  WalCursor cursor(dir.path(), 0);
  WalEntry entry;
  size_t read = 0;
  while (*cursor.Next(&entry)) ++read;
  EXPECT_EQ(read, static_cast<size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace edadb
