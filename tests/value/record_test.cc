#include "value/record.h"

#include "gtest/gtest.h"
#include "value/schema.h"

namespace edadb {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({
      {"id", ValueType::kInt64, /*nullable=*/false},
      {"name", ValueType::kString, true},
      {"score", ValueType::kDouble, true},
  });
}

TEST(SchemaTest, FieldLookup) {
  SchemaPtr schema = TestSchema();
  EXPECT_EQ(schema->num_fields(), 3u);
  EXPECT_EQ(schema->FieldIndex("id"), 0);
  EXPECT_EQ(schema->FieldIndex("score"), 2);
  EXPECT_EQ(schema->FieldIndex("missing"), -1);
  EXPECT_TRUE(schema->HasField("name"));
  EXPECT_FALSE(schema->HasField("NAME"));  // Case-sensitive.
  EXPECT_EQ(*schema->FieldType("score"), ValueType::kDouble);
  EXPECT_TRUE(schema->FieldType("missing").status().IsNotFound());
}

TEST(SchemaTest, ToStringShowsNotNull) {
  EXPECT_EQ(TestSchema()->ToString(),
            "(id INT64 NOT NULL, name STRING, score DOUBLE)");
}

TEST(SchemaTest, Equality) {
  EXPECT_TRUE(*TestSchema() == *TestSchema());
  SchemaPtr other = Schema::Make({{"id", ValueType::kInt64, false}});
  EXPECT_FALSE(*TestSchema() == *other);
}

TEST(RecordTest, GetSetByName) {
  Record record(TestSchema(), {Value::Int64(1), Value::String("a"),
                               Value::Double(0.5)});
  EXPECT_EQ(record.Get("id")->int64_value(), 1);
  EXPECT_EQ(record.Get("name")->string_value(), "a");
  ASSERT_TRUE(record.Set("name", Value::String("b")).ok());
  EXPECT_EQ(record.Get("name")->string_value(), "b");
  EXPECT_TRUE(record.Get("missing").status().IsNotFound());
  EXPECT_TRUE(record.Set("missing", Value::Null()).IsNotFound());
}

TEST(RecordTest, RowAccessorView) {
  Record record(TestSchema(), {Value::Int64(1), Value::Null(),
                               Value::Double(0.5)});
  const RowAccessor& row = record;
  ASSERT_TRUE(row.GetAttribute("id").has_value());
  EXPECT_EQ(row.GetAttribute("id")->int64_value(), 1);
  // Present-but-NULL differs from absent.
  ASSERT_TRUE(row.GetAttribute("name").has_value());
  EXPECT_TRUE(row.GetAttribute("name")->is_null());
  EXPECT_FALSE(row.GetAttribute("missing").has_value());
}

TEST(RecordTest, ValidateChecksNullability) {
  Record bad(TestSchema(), {Value::Null(), Value::Null(), Value::Null()});
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
  Record good(TestSchema(), {Value::Int64(1), Value::Null(), Value::Null()});
  EXPECT_TRUE(good.Validate().ok());
}

TEST(RecordTest, ValidateChecksTypes) {
  Record bad(TestSchema(),
             {Value::Int64(1), Value::Int64(2), Value::Null()});
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());
}

TEST(RecordTest, ToStringIsReadable) {
  Record record(TestSchema(), {Value::Int64(1), Value::String("a"),
                               Value::Null()});
  EXPECT_EQ(record.ToString(), "{id: 1, name: 'a', score: NULL}");
}

TEST(RecordTest, Equality) {
  Record a(TestSchema(), {Value::Int64(1), Value::Null(), Value::Null()});
  Record b(TestSchema(), {Value::Int64(1), Value::Null(), Value::Null()});
  Record c(TestSchema(), {Value::Int64(2), Value::Null(), Value::Null()});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(RecordBuilderTest, BuildsWithDefaults) {
  auto record = RecordBuilder(TestSchema())
                    .SetInt64("id", 9)
                    .SetString("name", "x")
                    .Build();
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->Get("id")->int64_value(), 9);
  EXPECT_TRUE(record->Get("score")->is_null());  // Unset -> NULL.
}

TEST(RecordBuilderTest, UnknownFieldFailsBuild) {
  auto record = RecordBuilder(TestSchema())
                    .SetInt64("id", 1)
                    .SetInt64("typo_field", 2)
                    .Build();
  EXPECT_TRUE(record.status().IsNotFound());
}

TEST(RecordBuilderTest, ValidationFailurePropagates) {
  // Missing NOT NULL id.
  auto record = RecordBuilder(TestSchema()).SetString("name", "x").Build();
  EXPECT_TRUE(record.status().IsInvalidArgument());
}

TEST(RecordBuilderTest, TypedSetters) {
  SchemaPtr schema = Schema::Make({
      {"b", ValueType::kBool},
      {"i", ValueType::kInt64},
      {"d", ValueType::kDouble},
      {"s", ValueType::kString},
      {"t", ValueType::kTimestamp},
  });
  auto record = RecordBuilder(schema)
                    .SetBool("b", true)
                    .SetInt64("i", 4)
                    .SetDouble("d", 0.25)
                    .SetString("s", "str")
                    .SetTimestamp("t", 777)
                    .Build();
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->Get("t")->timestamp_value(), 777);
}

}  // namespace
}  // namespace edadb
