#include "value/value.h"

#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).bool_value(), true);
  EXPECT_EQ(Value::Int64(-7).int64_value(), -7);
  EXPECT_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::String("hi").string_value(), "hi");
  EXPECT_EQ(Value::Timestamp(123456).timestamp_value(), 123456);
  EXPECT_TRUE(Value::Int64(1).is_numeric());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::String("1").is_numeric());
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_EQ(*Value::Int64(3).AsDouble(), 3.0);
  EXPECT_EQ(*Value::Double(3.5).AsDouble(), 3.5);
  EXPECT_EQ(*Value::Bool(true).AsDouble(), 1.0);
  EXPECT_EQ(*Value::Timestamp(1000).AsDouble(), 1000.0);
  EXPECT_FALSE(Value::String("x").AsDouble().ok());
  EXPECT_FALSE(Value::Null().AsDouble().ok());
}

TEST(ValueTest, AsInt64Coercions) {
  EXPECT_EQ(*Value::Int64(3).AsInt64(), 3);
  EXPECT_EQ(*Value::Double(4.0).AsInt64(), 4);
  EXPECT_FALSE(Value::Double(4.5).AsInt64().ok());
  EXPECT_EQ(*Value::Bool(true).AsInt64(), 1);
  EXPECT_FALSE(Value::String("4").AsInt64().ok());
}

TEST(ValueTest, AsBoolCoercions) {
  EXPECT_TRUE(*Value::Bool(true).AsBool());
  EXPECT_TRUE(*Value::Int64(5).AsBool());
  EXPECT_FALSE(*Value::Int64(0).AsBool());
  EXPECT_TRUE(*Value::Double(0.1).AsBool());
  EXPECT_FALSE(Value::String("true").AsBool().ok());
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(*Value::Compare(Value::Int64(2), Value::Double(2.0)), 0);
  EXPECT_LT(*Value::Compare(Value::Int64(2), Value::Double(2.5)), 0);
  EXPECT_GT(*Value::Compare(Value::Double(3.5), Value::Int64(3)), 0);
  EXPECT_EQ(*Value::Compare(Value::Timestamp(5), Value::Int64(5)), 0);
}

TEST(ValueTest, CompareLargeInt64PreservesPrecision) {
  // Values beyond double's 53-bit mantissa must still compare exactly
  // when both sides are integer-ish.
  const int64_t big = (int64_t{1} << 60) + 1;
  EXPECT_GT(*Value::Compare(Value::Int64(big), Value::Int64(big - 1)), 0);
  EXPECT_EQ(*Value::Compare(Value::Timestamp(big), Value::Int64(big)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(*Value::Compare(Value::String("abc"), Value::String("abd")), 0);
  EXPECT_EQ(*Value::Compare(Value::String("x"), Value::String("x")), 0);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_FALSE(Value::Compare(Value::String("1"), Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Compare(Value::Bool(true), Value::Int64(1)).ok());
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int64(1)).ok());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // null < bool < numeric < string.
  EXPECT_LT(Value::CompareTotalOrder(Value::Null(), Value::Bool(false)), 0);
  EXPECT_LT(Value::CompareTotalOrder(Value::Bool(true), Value::Int64(-5)), 0);
  EXPECT_LT(Value::CompareTotalOrder(Value::Int64(5), Value::String("")), 0);
  EXPECT_EQ(Value::CompareTotalOrder(Value::Int64(2), Value::Double(2.0)), 0);
  EXPECT_EQ(Value::CompareTotalOrder(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, EqualityAndHashConsistent) {
  // Values that compare equal must hash equal (index/eq-matcher rely on
  // this).
  const Value a = Value::Int64(7);
  const Value b = Value::Double(7.0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_TRUE(Value::Null() == Value::Null());
  EXPECT_FALSE(Value::Null() == Value::Int64(0));
  EXPECT_FALSE(Value::String("1") == Value::Int64(1));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int64(-3).ToString(), "-3");
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  const Value cases[] = {
      Value::Null(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int64(0),
      Value::Int64(-1234567),
      Value::Int64(INT64_MAX),
      Value::Int64(INT64_MIN),
      Value::Double(3.14159),
      Value::Double(-0.0),
      Value::String(""),
      Value::String("with \0 byte inside"),
      Value::Timestamp(1700000000000000),
  };
  for (const Value& original : cases) {
    std::string buf;
    original.EncodeTo(&buf);
    std::string_view in = buf;
    Value decoded;
    ASSERT_TRUE(Value::DecodeFrom(&in, &decoded)) << original.ToString();
    EXPECT_TRUE(in.empty());
    EXPECT_EQ(decoded.type(), original.type());
    EXPECT_EQ(Value::CompareTotalOrder(decoded, original), 0);
  }
}

TEST(ValueTest, DecodeRejectsTruncation) {
  std::string buf;
  Value::String("hello world").EncodeTo(&buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    Value v;
    EXPECT_FALSE(Value::DecodeFrom(&in, &v)) << "cut=" << cut;
  }
}

TEST(ValueTest, DecodeRejectsUnknownTag) {
  std::string buf = "\x7f";
  std::string_view in = buf;
  Value v;
  EXPECT_FALSE(Value::DecodeFrom(&in, &v));
}

TEST(ValueTest, RandomizedEncodeDecode) {
  Random rng(99);
  for (int i = 0; i < 500; ++i) {
    Value v;
    switch (rng.Uniform(5)) {
      case 0: v = Value::Null(); break;
      case 1: v = Value::Bool(rng.OneIn(2)); break;
      case 2: v = Value::Int64(static_cast<int64_t>(rng.Next())); break;
      case 3: v = Value::Double(rng.Normal(0, 1e6)); break;
      case 4: v = Value::String(rng.NextString(rng.Uniform(64))); break;
    }
    std::string buf;
    v.EncodeTo(&buf);
    std::string_view in = buf;
    Value decoded;
    ASSERT_TRUE(Value::DecodeFrom(&in, &decoded));
    EXPECT_EQ(Value::CompareTotalOrder(decoded, v), 0);
  }
}

}  // namespace
}  // namespace edadb
