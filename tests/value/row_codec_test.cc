#include "value/row_codec.h"

#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({
      {"id", ValueType::kInt64, false},
      {"name", ValueType::kString, true},
      {"score", ValueType::kDouble, true},
      {"active", ValueType::kBool, true},
      {"seen", ValueType::kTimestamp, true},
  });
}

TEST(RowCodecTest, RoundTrip) {
  SchemaPtr schema = TestSchema();
  Record original(schema, {Value::Int64(42), Value::String("alice"),
                           Value::Double(0.75), Value::Bool(true),
                           Value::Timestamp(1234567890)});
  std::string buf;
  EncodeRow(original, &buf);
  auto decoded = DecodeRow(schema, buf);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(*decoded == original);
}

TEST(RowCodecTest, NullsRoundTrip) {
  SchemaPtr schema = TestSchema();
  Record original(schema, {Value::Int64(1), Value::Null(), Value::Null(),
                           Value::Null(), Value::Null()});
  std::string buf;
  EncodeRow(original, &buf);
  auto decoded = DecodeRow(schema, buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->Get("name")->is_null());
}

TEST(RowCodecTest, ArityMismatchIsCorruption) {
  SchemaPtr narrow = Schema::Make({{"only", ValueType::kInt64}});
  Record original(narrow, {Value::Int64(1)});
  std::string buf;
  EncodeRow(original, &buf);
  auto decoded = DecodeRow(TestSchema(), buf);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(RowCodecTest, TruncationIsCorruption) {
  SchemaPtr schema = TestSchema();
  Record original(schema, {Value::Int64(42), Value::String("alice"),
                           Value::Double(0.75), Value::Bool(true),
                           Value::Timestamp(1)});
  std::string buf;
  EncodeRow(original, &buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    auto decoded = DecodeRow(schema, std::string_view(buf.data(), cut));
    EXPECT_TRUE(decoded.status().IsCorruption()) << "cut=" << cut;
  }
}

TEST(RowCodecTest, TrailingBytesAreCorruption) {
  SchemaPtr schema = Schema::Make({{"x", ValueType::kInt64}});
  Record original(schema, {Value::Int64(1)});
  std::string buf;
  EncodeRow(original, &buf);
  buf += "junk";
  EXPECT_TRUE(DecodeRow(schema, buf).status().IsCorruption());
}

TEST(AttributeCodecTest, RoundTripMixedAttributes) {
  AttributeList attrs = {
      {"severity", Value::Int64(7)},
      {"region", Value::String("east")},
      {"ratio", Value::Double(0.5)},
      {"ok", Value::Bool(false)},
      {"", Value::Null()},  // Empty names allowed at this layer.
  };
  std::string buf;
  EncodeAttributes(attrs, &buf);
  auto decoded = DecodeAttributes(buf);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), attrs.size());
  for (size_t i = 0; i < attrs.size(); ++i) {
    EXPECT_EQ((*decoded)[i].first, attrs[i].first);
    EXPECT_EQ(Value::CompareTotalOrder((*decoded)[i].second,
                                       attrs[i].second),
              0);
  }
}

TEST(AttributeCodecTest, EmptyList) {
  std::string buf;
  EncodeAttributes({}, &buf);
  auto decoded = DecodeAttributes(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(AttributeCodecTest, TruncationIsCorruption) {
  AttributeList attrs = {{"key", Value::String("value")}};
  std::string buf;
  EncodeAttributes(attrs, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_TRUE(DecodeAttributes(std::string_view(buf.data(), cut))
                    .status()
                    .IsCorruption());
  }
}

TEST(RowCodecTest, RandomizedRoundTrip) {
  Random rng(4242);
  SchemaPtr schema = TestSchema();
  for (int i = 0; i < 300; ++i) {
    Record original(
        schema,
        {Value::Int64(static_cast<int64_t>(rng.Next())),
         rng.OneIn(4) ? Value::Null()
                      : Value::String(rng.NextString(rng.Uniform(32))),
         rng.OneIn(4) ? Value::Null() : Value::Double(rng.Normal()),
         rng.OneIn(4) ? Value::Null() : Value::Bool(rng.OneIn(2)),
         rng.OneIn(4) ? Value::Null()
                      : Value::Timestamp(static_cast<int64_t>(
                            rng.Uniform(1ULL << 50)))});
    std::string buf;
    EncodeRow(original, &buf);
    auto decoded = DecodeRow(schema, buf);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(*decoded == original);
  }
}

}  // namespace
}  // namespace edadb
