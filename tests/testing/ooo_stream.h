#ifndef EDADB_TESTS_TESTING_OOO_STREAM_H_
#define EDADB_TESTS_TESTING_OOO_STREAM_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace edadb {
namespace testing {

/// Late/out-of-order workload generator for the event-time layer
/// (gtest-free on purpose: bench_cq uses it for E11 and the property
/// tests use it under SeededRng).
///
/// Model: events are born in event-time order (ts = start + i * step,
/// round-robin across sources), then each is independently delayed
/// with probability `lateness_fraction` by Uniform(1, max_delay)
/// microseconds of *arrival* lag. The stream is delivered in arrival
/// time order, so a delayed event surfaces after up to
/// max_delay / step newer ones — exactly the §2.2 sensor-feed failure
/// mode the watermark/retraction machinery exists for.
struct OooStreamOptions {
  int64_t num_events = 1000;
  TimestampMicros start_ts = 0;
  /// Event-time spacing between consecutive events.
  TimestampMicros step_micros = 1000;
  /// Probability an event is delayed in arrival.
  double lateness_fraction = 0.1;
  /// Max arrival lag of a delayed event.
  TimestampMicros max_delay_micros = 50 * 1000;
  /// Events are attributed round-robin to this many named sources
  /// ("s0", "s1", ...), exercising the per-source watermark merge.
  int num_sources = 1;
};

struct OooEvent {
  TimestampMicros ts = 0;       // Event time.
  TimestampMicros arrival = 0;  // Delivery time (sort key).
  int64_t seq = 0;              // In-order index (ts order).
  int source = 0;               // Index into source names.
  bool delayed = false;
};

inline std::string OooSourceName(int source) {
  return "s" + std::to_string(source);
}

/// Generates the arrival-ordered stream. Deterministic given the rng
/// state. The returned events are sorted by arrival time (stable, so
/// undelayed events keep their event-time order among themselves).
inline std::vector<OooEvent> GenerateOooStream(const OooStreamOptions& options,
                                               Random* rng) {
  std::vector<OooEvent> events;
  events.reserve(static_cast<size_t>(options.num_events));
  for (int64_t i = 0; i < options.num_events; ++i) {
    OooEvent event;
    event.ts = options.start_ts + i * options.step_micros;
    event.seq = i;
    event.source =
        options.num_sources > 1
            ? static_cast<int>(i % options.num_sources)
            : 0;
    event.delayed = rng->UniformDouble(0.0, 1.0) < options.lateness_fraction;
    event.arrival =
        event.ts +
        (event.delayed && options.max_delay_micros > 0
             ? 1 + static_cast<TimestampMicros>(rng->Uniform(
                       static_cast<uint64_t>(options.max_delay_micros)))
             : 0);
    events.push_back(event);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const OooEvent& a, const OooEvent& b) {
                     return a.arrival < b.arrival;
                   });
  return events;
}

}  // namespace testing
}  // namespace edadb

#endif  // EDADB_TESTS_TESTING_OOO_STREAM_H_
