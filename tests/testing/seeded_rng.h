#ifndef EDADB_TESTS_TESTING_SEEDED_RNG_H_
#define EDADB_TESTS_TESTING_SEEDED_RNG_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>

#include <gtest/gtest.h>

#include "common/random.h"

namespace edadb {
namespace testing {

/// The one seed behind all test randomness. Fixed by default so CI is
/// byte-for-byte deterministic; export EDADB_TEST_SEED=<n> to replay a
/// reported failure (or to explore new schedules).
inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("EDADB_TEST_SEED");
    if (env != nullptr && *env != '\0') {
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 0));
    }
    return uint64_t{20070612};  // The source paper's SIGMOD date.
  }();
  return seed;
}

/// Drop-in Random for tests, seeded from EDADB_TEST_SEED. `stream`
/// decorrelates generators within one binary (two SeededRng{0} in
/// different tests see identical sequences; give each call site its
/// own stream id). When the owning test fails, the destructor prints
/// the seed so the exact run can be reproduced.
class SeededRng : public Random {
 public:
  explicit SeededRng(uint64_t stream = 0)
      : Random(TestSeed() ^ (stream * 0x9E3779B97F4A7C15ULL)),
        stream_(stream) {}

  SeededRng(const SeededRng&) = delete;
  SeededRng& operator=(const SeededRng&) = delete;

  ~SeededRng() {
    if (::testing::Test::HasFailure()) {
      std::cerr << "[   SEED   ] reproduce with EDADB_TEST_SEED="
                << TestSeed() << " (rng stream " << stream_ << ")"
                << std::endl;
    }
  }

  uint64_t stream() const { return stream_; }

 private:
  const uint64_t stream_;
};

}  // namespace testing
}  // namespace edadb

#endif  // EDADB_TESTS_TESTING_SEEDED_RNG_H_
