#ifndef EDADB_TESTS_TESTING_CRASH_HARNESS_H_
#define EDADB_TESTS_TESTING_CRASH_HARNESS_H_

#include <iostream>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "common/status.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace testing {

/// Thrown by the test crash handler when an armed kCrash failpoint
/// fires. Unwinding back to the fixture is the "kill -9": the fixture
/// drops the Database without any shutdown sync, so the on-disk state
/// is frozen exactly as it was at the failpoint.
struct SimulatedCrash {
  std::string site;
};

/// Scoped failpoint environment for a test: seeds the registry from
/// EDADB_TEST_SEED, installs the throwing crash handler, and guarantees
/// everything is disarmed and restored on exit (even if the test body
/// throws or fails). Prints the seed when the test fails.
class FailpointGuard {
 public:
  FailpointGuard() {
    failpoint::SetSeed(TestSeed());
    failpoint::SetCrashHandler(
        [](const char* site) { throw SimulatedCrash{site}; });
  }

  FailpointGuard(const FailpointGuard&) = delete;
  FailpointGuard& operator=(const FailpointGuard&) = delete;

  ~FailpointGuard() {
    failpoint::DisarmAll();
    failpoint::SetCrashHandler(nullptr);
    failpoint::ResetHitCounts();
    if (::testing::Test::HasFailure()) {
      std::cerr << "[   SEED   ] reproduce with EDADB_TEST_SEED="
                << TestSeed() << std::endl;
    }
  }
};

/// Arms `site` to simulate a crash on its (skip+1)-th hit.
inline void ArmCrash(const std::string& site, uint64_t skip = 0,
                     int64_t arg = 0) {
  failpoint::Action action;
  action.kind = failpoint::ActionKind::kCrash;
  action.skip = skip;
  action.max_fires = 1;
  action.arg = arg;
  failpoint::Arm(site, action);
}

/// Arms `site` to return an injected error on its (skip+1)-th hit.
inline void ArmError(const std::string& site,
                     Status status = Status::IOError("injected fault"),
                     uint64_t skip = 0, int64_t max_fires = 1) {
  failpoint::Action action;
  action.kind = failpoint::ActionKind::kReturnStatus;
  action.status = std::move(status);
  action.skip = skip;
  action.max_fires = max_fires;
  failpoint::Arm(site, action);
}

}  // namespace testing
}  // namespace edadb

#endif  // EDADB_TESTS_TESTING_CRASH_HARNESS_H_
