// The one place tests are allowed to really sleep (scripts/lint.py's
// raw-sleep rule exempts tests/testing/ and nothing else under tests/).
//
// A raw sleep in a test is a race against the scheduler: too short and
// the test is flaky, too long and the suite crawls. Prefer a CondVar
// rendezvous or a SimulatedClock; reach for these helpers only when the
// test genuinely needs wall time to pass — yielding to a real
// background thread whose progress has no completion signal, or backing
// off inside a bounded poll loop.
#ifndef EDADB_TESTS_TESTING_SLEEP_H_
#define EDADB_TESTS_TESTING_SLEEP_H_

#include <chrono>
#include <cstdint>
#include <thread>

namespace edadb {
namespace testing {

// Backoff step inside a bounded poll loop (the loop's deadline, not the
// step, bounds the total wait).
inline void SleepForMillis(int64_t millis) {
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

// Handoff pause: gives real background threads a scheduling quantum
// when there is no completion signal to wait on. Named differently from
// SleepForMillis so grep can tell deliberate handoffs from poll
// backoffs.
inline void YieldBriefly(int64_t millis = 1) {
  std::this_thread::sleep_for(std::chrono::milliseconds(millis));
}

}  // namespace testing
}  // namespace edadb

#endif  // EDADB_TESTS_TESTING_SLEEP_H_
