// Parameterized subscription matrix: delivery mode × topic pattern kind
// × content filtering must all agree on WHICH publications match; only
// the delivery mechanics differ.

#include <tuple>

#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "pubsub/broker.h"
#include "test_util.h"

namespace edadb {
namespace {

enum class TopicKind { kAll, kExact, kGlob };

// (durable, topic kind, content-filtered)
using BrokerCase = std::tuple<bool, TopicKind, bool>;

std::string CaseName(const testing::TestParamInfo<BrokerCase>& info) {
  const auto& [durable, topic, filtered] = info.param;
  std::string name = durable ? "Durable" : "Handler";
  switch (topic) {
    case TopicKind::kAll: name += "_AllTopics"; break;
    case TopicKind::kExact: name += "_ExactTopic"; break;
    case TopicKind::kGlob: name += "_GlobTopic"; break;
  }
  name += filtered ? "_Filtered" : "_Unfiltered";
  return name;
}

class BrokerParamTest : public testing::TestWithParam<BrokerCase> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    broker_ = *Broker::Attach(db_.get(), queues_.get());
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<Broker> broker_;
};

TEST_P(BrokerParamTest, MatchingSemanticsIndependentOfDeliveryMode) {
  const auto& [durable, topic_kind, filtered] = GetParam();

  std::vector<std::string> received;
  SubscriptionSpec spec;
  spec.subscriber = "matrix";
  switch (topic_kind) {
    case TopicKind::kAll: spec.topic_pattern = ""; break;
    case TopicKind::kExact: spec.topic_pattern = "alpha/one"; break;
    case TopicKind::kGlob: spec.topic_pattern = "alpha/*"; break;
  }
  if (filtered) spec.content_filter = "severity >= 5";
  spec.durable = durable;
  if (!durable) {
    spec.handler = [&](const Publication& pub) {
      received.push_back(pub.payload);
    };
  }
  const std::string id = *broker_->Subscribe(std::move(spec));

  struct Case {
    const char* topic;
    int64_t severity;
    const char* payload;
  };
  const Case cases[] = {
      {"alpha/one", 9, "a1-high"},
      {"alpha/one", 2, "a1-low"},
      {"alpha/two", 9, "a2-high"},
      {"beta/one", 9, "b1-high"},
  };
  for (const Case& c : cases) {
    Publication pub;
    pub.topic = c.topic;
    pub.payload = c.payload;
    pub.attributes = {{"severity", Value::Int64(c.severity)}};
    ASSERT_OK(broker_->Publish(pub).status());
  }
  if (durable) {
    for (;;) {
      auto pub = *broker_->Fetch(id);
      if (!pub.has_value()) break;
      received.push_back(pub->payload);
    }
  }

  std::vector<std::string> expected;
  for (const Case& c : cases) {
    bool topic_ok = false;
    switch (topic_kind) {
      case TopicKind::kAll: topic_ok = true; break;
      case TopicKind::kExact:
        topic_ok = std::string(c.topic) == "alpha/one";
        break;
      case TopicKind::kGlob:
        topic_ok = std::string(c.topic).rfind("alpha/", 0) == 0;
        break;
    }
    if (topic_ok && (!filtered || c.severity >= 5)) {
      expected.push_back(c.payload);
    }
  }
  EXPECT_EQ(received, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BrokerParamTest,
    testing::Combine(testing::Bool(),
                     testing::Values(TopicKind::kAll, TopicKind::kExact,
                                     TopicKind::kGlob),
                     testing::Bool()),
    CaseName);

}  // namespace
}  // namespace edadb
