// Multithreaded stress for the Broker: concurrent publishers race
// subscribers that churn (subscribe, fetch, unsubscribe) on the same
// database. Run under EDADB_SANITIZE=thread this is the data-race gate
// for the pubsub path, including the durable-queue handoff into
// QueueManager.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "pubsub/broker.h"
#include "test_util.h"

namespace edadb {
namespace {

class BrokerConcurrencyTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    broker_ = *Broker::Attach(db_.get(), queues_.get());
  }

  Publication Pub(const std::string& topic, const std::string& payload,
                  int64_t severity = 5) {
    Publication pub;
    pub.topic = topic;
    pub.payload = payload;
    pub.attributes = {{"severity", Value::Int64(severity)}};
    return pub;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<Broker> broker_;
};

TEST_F(BrokerConcurrencyTest, ParallelPublishSubscribeUnsubscribe) {
  constexpr int kPublishers = 4;
  constexpr int kChurners = 2;
  constexpr int kPerPublisher = 60;
  constexpr int kChurnRounds = 25;

  // One stable non-durable subscription that must survive the churn and
  // see every matching publication.
  std::atomic<uint64_t> stable_seen{0};
  SubscriptionSpec stable;
  stable.subscriber = "stable";
  stable.topic_pattern = "stress/*";
  stable.handler = [&](const Publication&) { stable_seen.fetch_add(1); };
  ASSERT_OK(broker_->Subscribe(std::move(stable)).status());

  std::atomic<int> publish_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kPublishers + kChurners);
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        auto delivered = broker_->Publish(
            Pub("stress/" + std::to_string(p), "m" + std::to_string(i),
                /*severity=*/i % 10));
        if (!delivered.ok()) publish_failures.fetch_add(1);
      }
    });
  }
  // Churners add and remove subscriptions (alternating durable and
  // handler-based, with content filters) while publishers run.
  std::atomic<int> churn_failures{0};
  for (int c = 0; c < kChurners; ++c) {
    threads.emplace_back([&, c] {
      for (int round = 0; round < kChurnRounds; ++round) {
        SubscriptionSpec spec;
        spec.subscriber = "churn-" + std::to_string(c);
        spec.topic_pattern = "stress/*";
        spec.content_filter = "severity >= 5";
        spec.durable = (round % 2 == 0);
        if (!spec.durable) {
          spec.handler = [](const Publication&) {};
        }
        auto id = broker_->Subscribe(std::move(spec));
        if (!id.ok()) {
          churn_failures.fetch_add(1);
          continue;
        }
        if (round % 2 == 0) {
          auto fetched = broker_->Fetch(*id);
          if (!fetched.ok()) churn_failures.fetch_add(1);
        }
        if (!broker_->Unsubscribe(*id).ok()) churn_failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(publish_failures.load(), 0);
  EXPECT_EQ(churn_failures.load(), 0);
  EXPECT_EQ(stable_seen.load(),
            static_cast<uint64_t>(kPublishers * kPerPublisher));
  // All churned subscriptions are gone; only the stable one remains.
  EXPECT_EQ(broker_->num_subscriptions(), 1u);
}

TEST_F(BrokerConcurrencyTest, DurableSubscribersFetchWhilePublishersRace) {
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 40;
  constexpr int kDurables = 2;

  std::vector<std::string> sub_ids;
  for (int d = 0; d < kDurables; ++d) {
    SubscriptionSpec spec;
    spec.subscriber = "drain-" + std::to_string(d);
    spec.topic_pattern = "feed";
    spec.durable = true;
    sub_ids.push_back(*broker_->Subscribe(std::move(spec)));
  }

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::atomic<int>> drained(kDurables);
  std::vector<std::thread> threads;
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        auto delivered =
            broker_->Publish(Pub("feed", std::to_string(p * 1000 + i)));
        if (!delivered.ok()) failures.fetch_add(1);
      }
    });
  }
  // Each durable subscriber drains its queue concurrently with the
  // publishers, then finishes the remainder after they stop.
  for (int d = 0; d < kDurables; ++d) {
    threads.emplace_back([&, d] {
      while (true) {
        auto fetched = broker_->Fetch(sub_ids[d]);
        if (!fetched.ok()) {
          failures.fetch_add(1);
          return;
        }
        if (fetched->has_value()) {
          drained[d].fetch_add(1);
        } else if (done.load()) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kPublishers; ++p) threads[p].join();
  done.store(true);
  for (size_t t = kPublishers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(failures.load(), 0);
  for (int d = 0; d < kDurables; ++d) {
    EXPECT_EQ(drained[d].load(), kPublishers * kPerPublisher);
    EXPECT_EQ(*broker_->PendingCount(sub_ids[d]), 0u);
  }
}

}  // namespace
}  // namespace edadb
