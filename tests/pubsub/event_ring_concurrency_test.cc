// TSan torture for the event ring's seqlock: one writer overwriting a
// deliberately tiny ring as fast as it can, versus 64 wait-free readers
// — some of them deliberately slow — plus live subscribe/unsubscribe
// churn through the Broker. Run under EDADB_SANITIZE=thread this is the
// data-race gate for the ring protocol (scripts/check.sh CHECK_TSAN=1).
//
// The correctness claims, asserted per reader after the dust settles:
//   - no torn slot read is ever OBSERVED: every delivered payload
//     passes its sequence-derived content check (the ring additionally
//     CRC-validates each stamp-valid copy; torn_count() must stay 0);
//   - delivered + missed == exactly the events published while the
//     reader was subscribed — misses are counted, never silent;
//   - delivered sequences are strictly increasing (no double delivery).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "pubsub/broker.h"
#include "pubsub/event_ring.h"
#include "test_util.h"
#include "testing/sleep.h"

namespace edadb {
namespace {

Publication SeqPub(uint64_t seq) {
  Publication pub;
  pub.topic = "stress/" + std::to_string(seq % 3);
  pub.payload = "payload-" + std::to_string(seq);
  pub.attributes = {{"seq", Value::Int64(static_cast<int64_t>(seq))}};
  return pub;
}

// Validates one delivered event against its sequence number; returns
// false (and fails the test) on any mismatch — a torn read that slipped
// through stamp validation would trip this.
bool CheckEvent(uint64_t seq, const Publication& pub) {
  EXPECT_EQ(pub.payload, "payload-" + std::to_string(seq));
  EXPECT_EQ(pub.topic, "stress/" + std::to_string(seq % 3));
  if (pub.attributes.size() != 1u) {
    ADD_FAILURE() << "attrs for seq " << seq;
    return false;
  }
  EXPECT_EQ(pub.attributes[0].second.int64_value(),
            static_cast<int64_t>(seq));
  return pub.payload == "payload-" + std::to_string(seq);
}

TEST(EventRingConcurrencyTest, WriterVsSixtyFourWaitFreeReaders) {
  constexpr int kReaders = 64;
  constexpr uint64_t kEvents = 3000;
  // Tiny ring: the writer laps slow readers constantly, so the test
  // exercises mid-copy overwrites, not just the happy path.
  EventRing ring({.capacity = 16, .slot_bytes = 256});

  std::atomic<bool> writer_done{false};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);

  struct ReaderResult {
    uint64_t start = 0;
    uint64_t delivered = 0;
    uint64_t missed = 0;
    uint64_t end_next = 0;
    bool sequences_ok = true;
  };
  std::vector<ReaderResult> results(kReaders);

  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      RingCursor cursor(&ring);
      ReaderResult& result = results[r];
      result.start = cursor.start_seq();
      uint64_t prev_plus_one = result.start;
      std::vector<std::pair<uint64_t, Publication>> got;
      while (true) {
        const bool done = writer_done.load(std::memory_order_acquire);
        got.clear();
        const size_t n = cursor.Poll(32, &got);
        for (const auto& [seq, pub] : got) {
          if (!CheckEvent(seq, pub)) result.sequences_ok = false;
          if (seq < prev_plus_one) result.sequences_ok = false;
          prev_plus_one = seq + 1;
        }
        if (done && n == 0 && cursor.lag() == 0) break;
        // Every fourth reader is deliberately slow: it sleeps between
        // polls so the writer laps it and it accumulates misses.
        if (r % 4 == 0) testing::SleepForMillis(1);
      }
      result.delivered = cursor.delivered();
      result.missed = cursor.missed();
      result.end_next = cursor.next_seq();
    });
  }

  threads.emplace_back([&] {
    std::vector<Publication> batch;
    uint64_t seq = 0;
    while (seq < kEvents) {
      const size_t n = 1 + seq % 7;  // Mixed single/batch publishes.
      batch.clear();
      for (size_t i = 0; i < n && seq + i < kEvents; ++i) {
        batch.push_back(SeqPub(seq + i));
      }
      ring.PublishBatch(batch.data(), batch.size());
      seq += batch.size();
    }
    writer_done.store(true, std::memory_order_release);
  });

  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ring.head(), kEvents);
  EXPECT_EQ(ring.torn_count(), 0u);
  uint64_t total_missed = 0;
  for (int r = 0; r < kReaders; ++r) {
    const ReaderResult& result = results[r];
    EXPECT_TRUE(result.sequences_ok) << "reader " << r;
    EXPECT_EQ(result.end_next, kEvents) << "reader " << r;
    EXPECT_EQ(result.delivered + result.missed, kEvents - result.start)
        << "reader " << r;
    total_missed += result.missed;
  }
  // The tiny ring plus slow readers guarantees real misses happened,
  // i.e. the overwrite-detection path was actually exercised.
  EXPECT_GT(total_missed, 0u);
}

TEST(EventRingConcurrencyTest, BrokerLiveChurnUnderConcurrentPublish) {
  constexpr int kPollers = 8;
  constexpr int kChurners = 4;
  constexpr int kChurnRounds = 30;
  constexpr uint64_t kEvents = 2000;

  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  auto queues = *QueueManager::Attach(db.get());
  auto broker = *Broker::Attach(db.get(), queues.get(),
                                {.capacity = 32, .slot_bytes = 512});

  std::atomic<bool> publisher_done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;

  // Stable pollers: subscribe up front, poll (with integrity checks)
  // until the publisher stops and they have drained.
  std::vector<std::shared_ptr<LiveSubscription>> pollers;
  for (int p = 0; p < kPollers; ++p) {
    auto sub = broker->SubscribeLive(
        {.subscriber = "poller-" + std::to_string(p),
         .topic_pattern = "",
         .content_filter = ""});
    ASSERT_OK(sub.status());
    pollers.push_back(*sub);
  }
  for (int p = 0; p < kPollers; ++p) {
    threads.emplace_back([&, p] {
      LiveSubscription* sub = pollers[p].get();
      std::vector<std::pair<uint64_t, Publication>> got;
      while (true) {
        const bool done = publisher_done.load(std::memory_order_acquire);
        got.clear();
        const size_t n = sub->Poll(64, &got);
        for (const auto& [seq, pub] : got) {
          if (!CheckEvent(seq, pub)) failures.fetch_add(1);
        }
        if (done && n == 0 && sub->lag() == 0) break;
        if (p % 2 == 0) testing::SleepForMillis(1);  // Slow half.
      }
    });
  }

  // Churners: live subscriptions come and go mid-stream (with filters,
  // so the reader-side predicate path runs concurrently too).
  for (int c = 0; c < kChurners; ++c) {
    threads.emplace_back([&, c] {
      for (int round = 0; round < kChurnRounds; ++round) {
        auto sub = broker->SubscribeLive(
            {.subscriber = "churn-" + std::to_string(c),
             .topic_pattern = "stress/*",
             .content_filter = "seq >= 0"});
        if (!sub.ok()) {
          failures.fetch_add(1);
          continue;
        }
        std::vector<std::pair<uint64_t, Publication>> got;
        (void)(*sub)->Poll(16, &got);
        for (const auto& [seq, pub] : got) {
          if (!CheckEvent(seq, pub)) failures.fetch_add(1);
        }
        if (!broker->UnsubscribeLive((*sub)->id()).ok()) {
          failures.fetch_add(1);
        }
        // Keep polling after unsubscribe: the shared_ptr keeps the
        // cursor alive, by contract.
        got.clear();
        (void)(*sub)->Poll(4, &got);
      }
    });
  }

  threads.emplace_back([&] {
    std::vector<Publication> batch;
    uint64_t seq = 0;
    while (seq < kEvents) {
      batch.clear();
      for (size_t i = 0; i < 5 && seq + i < kEvents; ++i) {
        batch.push_back(SeqPub(seq + i));
      }
      auto delivered = broker->PublishBatch(batch);
      if (!delivered.ok()) failures.fetch_add(1);
      seq += batch.size();
    }
    publisher_done.store(true, std::memory_order_release);
  });

  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(broker->ring()->head(), kEvents);
  EXPECT_EQ(broker->ring()->torn_count(), 0u);
  EXPECT_EQ(broker->num_live_subscriptions(), kPollers);
  for (int p = 0; p < kPollers; ++p) {
    EXPECT_EQ(pollers[p]->delivered() + pollers[p]->missed(), kEvents)
        << "poller " << p;
  }
}

}  // namespace
}  // namespace edadb
