// Seeded property tests for the event ring's miss-accounting contract
// (DESIGN.md §13). For every reader, across randomized ring sizes,
// batch shapes, reader paces and many wraparounds:
//
//   delivered + missed == published-since-subscribe   (once drained)
//
// and the delivered sequences are strictly increasing, with gaps in the
// sequence stream exactly equal to the accounted misses — a miss is
// counted, never silent, and an event is never double-delivered.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "pubsub/broker.h"
#include "pubsub/event_ring.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

Publication SeqPub(uint64_t seq) {
  Publication pub;
  pub.topic = "prop/" + std::to_string(seq % 7);
  pub.payload = "p-" + std::to_string(seq);
  pub.attributes = {{"seq", Value::Int64(static_cast<int64_t>(seq))}};
  return pub;
}

struct Reader {
  std::unique_ptr<RingCursor> cursor;
  uint64_t subscribed_at = 0;       // Ring head at subscribe time.
  uint64_t poll_cap = 1;            // Events per poll (its "pace").
  std::vector<uint64_t> sequences;  // Every delivered sequence, in order.
};

void DrainAndCheck(const EventRing& ring, Reader* reader, size_t max_events) {
  std::vector<std::pair<uint64_t, Publication>> got;
  const size_t n = reader->cursor->Poll(max_events, &got);
  ASSERT_EQ(n, got.size());
  for (const auto& [seq, pub] : got) {
    // Payload integrity: the event read at sequence s IS event s.
    ASSERT_EQ(pub.payload, "p-" + std::to_string(seq));
    ASSERT_EQ(pub.attributes.size(), 1u);
    ASSERT_EQ(pub.attributes[0].second.int64_value(),
              static_cast<int64_t>(seq));
    reader->sequences.push_back(seq);
  }
  ASSERT_EQ(ring.torn_count(), 0u);
}

TEST(EventRingPropertyTest, AccountingHoldsAcrossRandomizedSchedules) {
  testing::SeededRng rng(/*stream=*/71);
  constexpr int kTrials = 40;

  for (int trial = 0; trial < kTrials; ++trial) {
    EventRingOptions options;
    options.capacity = 4u << rng.Uniform(6);          // 4..128.
    options.slot_bytes = 64 + 8 * rng.Uniform(16);    // All pubs fit.
    EventRing ring(options);

    std::vector<Reader> readers;
    uint64_t published = 0;
    // Interleave publishes (single/batch) with reader polls and
    // mid-stream subscriptions; enough volume to wrap several times.
    const uint64_t target = options.capacity * (3 + rng.Uniform(5));
    while (published < target || !readers.empty()) {
      const uint64_t action = rng.Uniform(10);
      if (action < 4 && published < target) {
        // Publish a batch of 1..8.
        const size_t batch = 1 + rng.Uniform(8);
        std::vector<Publication> pubs;
        for (size_t i = 0; i < batch; ++i) pubs.push_back(SeqPub(published + i));
        ASSERT_EQ(ring.PublishBatch(pubs.data(), pubs.size()), published);
        published += batch;
      } else if (action < 6 && readers.size() < 8) {
        Reader reader;
        reader.cursor = std::make_unique<RingCursor>(&ring);
        reader.subscribed_at = ring.head();
        reader.poll_cap = 1 + rng.Uniform(2 * options.capacity);
        ASSERT_EQ(reader.cursor->start_seq(), reader.subscribed_at);
        readers.push_back(std::move(reader));
      } else if (!readers.empty()) {
        Reader& reader = readers[rng.Uniform(readers.size())];
        DrainAndCheck(ring, &reader, reader.poll_cap);
        if (published >= target && rng.OneIn(3)) {
          // Final drain, then retire the reader after checking the
          // whole-run properties.
          while (reader.cursor->lag() > 0) {
            DrainAndCheck(ring, &reader, reader.poll_cap);
          }
          const uint64_t seen_window = ring.head() - reader.subscribed_at;
          EXPECT_EQ(reader.cursor->delivered() + reader.cursor->missed(),
                    seen_window)
              << "trial " << trial << " cap " << options.capacity;
          EXPECT_EQ(reader.cursor->delivered(), reader.sequences.size());
          // Strictly increasing, never before subscription, and gaps
          // exactly equal to the accounted misses.
          uint64_t gaps = 0;
          uint64_t prev = reader.subscribed_at;  // First expected seq.
          for (const uint64_t seq : reader.sequences) {
            ASSERT_GE(seq, prev);
            gaps += seq - prev;
            prev = seq + 1;
          }
          gaps += ring.head() - prev;  // Tail the reader never saw.
          EXPECT_EQ(gaps, reader.cursor->missed());
          readers.erase(readers.begin() +
                        (&reader - readers.data()));
        }
      }
    }
    ASSERT_EQ(ring.torn_count(), 0u);
  }
}

TEST(EventRingPropertyTest, SingleSlotRingStillAccountsEverything) {
  testing::SeededRng rng(/*stream=*/72);
  EventRing ring({.capacity = 1, .slot_bytes = 64});
  RingCursor cursor(&ring);
  uint64_t published = 0;
  for (int round = 0; round < 200; ++round) {
    const size_t batch = 1 + rng.Uniform(4);
    for (size_t i = 0; i < batch; ++i) ring.Publish(SeqPub(published++));
    std::vector<std::pair<uint64_t, Publication>> got;
    const size_t polled = cursor.Poll(1 + rng.Uniform(3), &got);
    for (const auto& [seq, pub] : got) {
      ASSERT_EQ(pub.payload, "p-" + std::to_string(seq));
    }
    ASSERT_EQ(polled, got.size());
  }
  while (cursor.lag() > 0) {
    std::vector<std::pair<uint64_t, Publication>> got;
    ASSERT_GT(cursor.Poll(8, &got) + cursor.missed(), 0u);
  }
  EXPECT_EQ(cursor.delivered() + cursor.missed(), published);
  EXPECT_EQ(ring.torn_count(), 0u);
}

}  // namespace
}  // namespace edadb
