// Unit tests for the broadcast event ring (DESIGN.md §13): slot codec,
// publish/read/poll mechanics, oversize and wraparound miss accounting,
// and the Broker::SubscribeLive integration surface.

#include "mq/queue_manager.h"
#include "pubsub/event_ring.h"

#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "pubsub/broker.h"
#include "test_util.h"

namespace edadb {
namespace {

Publication MakePub(uint64_t n, const std::string& topic = "t") {
  Publication pub;
  pub.topic = topic;
  pub.payload = "payload-" + std::to_string(n);
  pub.attributes = {{"n", Value::Int64(static_cast<int64_t>(n))}};
  return pub;
}

TEST(PublicationCodecTest, RoundTrip) {
  Publication pub;
  pub.topic = "alerts/fire";
  pub.payload = std::string("bytes\0with\0nuls", 15);
  pub.retain = true;
  pub.attributes = {{"severity", Value::Int64(7)},
                    {"region", Value::String("east")}};

  std::string encoded;
  EncodePublication(pub, &encoded);
  auto decoded = DecodePublication(encoded);
  ASSERT_OK(decoded.status());
  EXPECT_EQ(decoded->topic, pub.topic);
  EXPECT_EQ(decoded->payload, pub.payload);
  EXPECT_TRUE(decoded->retain);
  ASSERT_EQ(decoded->attributes.size(), 2u);
  EXPECT_EQ(decoded->attributes[0].first, "severity");
  EXPECT_EQ(decoded->attributes[0].second.int64_value(), 7);
  EXPECT_EQ(decoded->attributes[1].second.string_value(), "east");
}

TEST(PublicationCodecTest, TruncationIsCorruption) {
  std::string encoded;
  EncodePublication(MakePub(1), &encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodePublication(std::string_view(encoded).substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(EventRingTest, PublishThenRead) {
  EventRing ring({.capacity = 8, .slot_bytes = 256});
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_EQ(ring.Publish(MakePub(0)), 0u);
  EXPECT_EQ(ring.Publish(MakePub(1)), 1u);
  EXPECT_EQ(ring.head(), 2u);

  Publication out;
  ASSERT_EQ(ring.Read(0, &out), RingRead::kOk);
  EXPECT_EQ(out.payload, "payload-0");
  ASSERT_EQ(ring.Read(1, &out), RingRead::kOk);
  EXPECT_EQ(out.payload, "payload-1");
  EXPECT_EQ(ring.Read(2, &out), RingRead::kNotReady);
  EXPECT_EQ(ring.torn_count(), 0u);
}

TEST(EventRingTest, OverwrittenSequenceIsMissed) {
  EventRing ring({.capacity = 4, .slot_bytes = 256});
  for (uint64_t i = 0; i < 10; ++i) ring.Publish(MakePub(i));
  Publication out;
  // Events 0..5 were lapped (capacity 4, head 10): slots recycled.
  for (uint64_t seq = 0; seq < 6; ++seq) {
    EXPECT_EQ(ring.Read(seq, &out), RingRead::kMissed) << seq;
  }
  for (uint64_t seq = 6; seq < 10; ++seq) {
    ASSERT_EQ(ring.Read(seq, &out), RingRead::kOk) << seq;
    EXPECT_EQ(out.payload, "payload-" + std::to_string(seq));
  }
}

TEST(EventRingTest, OversizePublicationIsACountedMiss) {
  EventRing ring({.capacity = 8, .slot_bytes = 32});
  RingCursor cursor(&ring);
  ring.Publish(MakePub(0));  // Fits.
  Publication big = MakePub(1);
  big.payload.assign(1000, 'x');  // Encodes past 32 bytes.
  ring.Publish(big);
  ring.Publish(MakePub(2));  // Fits.

  EXPECT_EQ(ring.oversize_count(), 1u);
  Publication out;
  EXPECT_EQ(ring.Read(1, &out), RingRead::kOversize);

  // The oversize event still consumed sequence 1; the cursor accounts
  // it as a miss, never silently skips it.
  std::vector<std::pair<uint64_t, Publication>> got;
  EXPECT_EQ(cursor.Poll(16, &got), 2u);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 0u);
  EXPECT_EQ(got[1].first, 2u);
  EXPECT_EQ(cursor.delivered(), 2u);
  EXPECT_EQ(cursor.missed(), 1u);
  EXPECT_EQ(cursor.delivered() + cursor.missed(),
            cursor.next_seq() - cursor.start_seq());
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EventRing ring({.capacity = 5, .slot_bytes = 64});
  EXPECT_EQ(ring.capacity(), 8u);
}

TEST(EventRingTest, BatchPublishPreservesOrder) {
  EventRing ring({.capacity = 16, .slot_bytes = 256});
  std::vector<Publication> pubs;
  for (uint64_t i = 0; i < 5; ++i) pubs.push_back(MakePub(i));
  EXPECT_EQ(ring.PublishBatch(pubs.data(), pubs.size()), 0u);
  EXPECT_EQ(ring.PublishBatch(pubs.data(), pubs.size()), 5u);
  EXPECT_EQ(ring.head(), 10u);
  Publication out;
  for (uint64_t seq = 0; seq < 10; ++seq) {
    ASSERT_EQ(ring.Read(seq, &out), RingRead::kOk);
    EXPECT_EQ(out.payload, "payload-" + std::to_string(seq % 5));
  }
}

TEST(EventRingTest, SlowCursorFastForwardsOverLappedRange) {
  EventRing ring({.capacity = 4, .slot_bytes = 256});
  RingCursor cursor(&ring);
  for (uint64_t i = 0; i < 100; ++i) ring.Publish(MakePub(i));

  std::vector<std::pair<uint64_t, Publication>> got;
  const size_t n = cursor.Poll(1000, &got);
  EXPECT_EQ(n, 4u);  // Only the live window survives.
  EXPECT_EQ(cursor.delivered(), 4u);
  EXPECT_EQ(cursor.missed(), 96u);
  EXPECT_EQ(cursor.delivered() + cursor.missed(), 100u);
  EXPECT_EQ(cursor.next_seq(), ring.head());
  EXPECT_EQ(cursor.lag(), 0u);
  for (const auto& [seq, pub] : got) {
    EXPECT_EQ(pub.payload, "payload-" + std::to_string(seq));
  }
}

TEST(EventRingTest, LateCursorStartsAtHead) {
  EventRing ring({.capacity = 8, .slot_bytes = 256});
  for (uint64_t i = 0; i < 5; ++i) ring.Publish(MakePub(i));
  RingCursor cursor(&ring);
  EXPECT_EQ(cursor.start_seq(), 5u);
  std::vector<std::pair<uint64_t, Publication>> got;
  EXPECT_EQ(cursor.Poll(16, &got), 0u);  // Nothing before subscribing.
  ring.Publish(MakePub(5));
  EXPECT_EQ(cursor.Poll(16, &got), 1u);
  EXPECT_EQ(got[0].first, 5u);
}

class BrokerLiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    broker_ = *Broker::Attach(db_.get(), queues_.get(),
                              {.capacity = 16, .slot_bytes = 512});
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<Broker> broker_;
};

TEST_F(BrokerLiveTest, SubscribeLivePollsPublishedEvents) {
  auto sub = broker_->SubscribeLive(
      {.subscriber = "dash", .topic_pattern = "", .content_filter = ""});
  ASSERT_OK(sub.status());
  EXPECT_EQ(broker_->num_live_subscriptions(), 1u);

  ASSERT_OK(broker_->Publish(MakePub(0, "jobs")).status());
  ASSERT_OK(broker_->Publish(MakePub(1, "alerts")).status());

  std::vector<std::pair<uint64_t, Publication>> got;
  EXPECT_EQ((*sub)->Poll(16, &got), 2u);
  EXPECT_EQ((*sub)->delivered(), 2u);
  EXPECT_EQ((*sub)->missed(), 0u);

  ASSERT_OK(broker_->UnsubscribeLive((*sub)->id()));
  EXPECT_EQ(broker_->num_live_subscriptions(), 0u);
  EXPECT_TRUE(broker_->UnsubscribeLive((*sub)->id()).IsNotFound());
}

TEST_F(BrokerLiveTest, LiveFilterCountsNonMatchesAsFiltered) {
  auto sub = broker_->SubscribeLive({.subscriber = "dash",
                                     .topic_pattern = "jobs",
                                     .content_filter = "n >= 2"});
  ASSERT_OK(sub.status());
  ASSERT_OK(broker_->Publish(MakePub(1, "jobs")).status());   // Filtered: n.
  ASSERT_OK(broker_->Publish(MakePub(5, "other")).status());  // Filtered: topic.
  ASSERT_OK(broker_->Publish(MakePub(7, "jobs")).status());   // Match.

  std::vector<std::pair<uint64_t, Publication>> got;
  EXPECT_EQ((*sub)->Poll(16, &got), 1u);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].second.payload, "payload-7");
  EXPECT_EQ((*sub)->delivered(), 1u);
  EXPECT_EQ((*sub)->filtered(), 2u);
  EXPECT_EQ((*sub)->missed(), 0u);
}

TEST_F(BrokerLiveTest, SlowLiveSubscriberMissesAreAccounted) {
  auto sub = broker_->SubscribeLive(
      {.subscriber = "slow", .topic_pattern = "", .content_filter = ""});
  ASSERT_OK(sub.status());
  std::vector<Publication> batch;
  for (uint64_t i = 0; i < 100; ++i) batch.push_back(MakePub(i));
  ASSERT_OK(broker_->PublishBatch(batch).status());  // Ring capacity 16.

  std::vector<std::pair<uint64_t, Publication>> got;
  EXPECT_EQ((*sub)->Poll(1000, &got), 16u);
  EXPECT_EQ((*sub)->missed(), 84u);
  EXPECT_EQ((*sub)->delivered() + (*sub)->missed(), 100u);
  EXPECT_EQ(broker_->ring()->torn_count(), 0u);
}

}  // namespace
}  // namespace edadb
