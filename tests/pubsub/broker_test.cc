#include "mq/queue_manager.h"
#include "pubsub/broker.h"

#include <atomic>
#include <stdexcept>
#include <thread>

#include "common/metrics.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/sleep.h"

namespace edadb {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override { Reopen(); }

  void Reopen() {
    broker_.reset();
    queues_.reset();
    db_.reset();
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    broker_ = *Broker::Attach(db_.get(), queues_.get());
  }

  Publication Pub(const std::string& topic, const std::string& payload,
                  int64_t severity = 5) {
    Publication pub;
    pub.topic = topic;
    pub.payload = payload;
    pub.attributes = {{"severity", Value::Int64(severity)}};
    return pub;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<Broker> broker_;
};

TEST_F(BrokerTest, TopicSubscriptionDeliversToHandler) {
  std::vector<std::string> received;
  SubscriptionSpec spec;
  spec.subscriber = "app";
  spec.topic_pattern = "alerts";
  spec.handler = [&](const Publication& pub) {
    received.push_back(pub.payload);
  };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  EXPECT_EQ(*broker_->Publish(Pub("alerts", "a1")), 1u);
  EXPECT_EQ(*broker_->Publish(Pub("other", "skip")), 0u);
  EXPECT_EQ(received, (std::vector<std::string>{"a1"}));
}

TEST_F(BrokerTest, GlobTopicPatterns) {
  int hits = 0;
  SubscriptionSpec spec;
  spec.subscriber = "app";
  spec.topic_pattern = "sensors/*/temp";
  spec.handler = [&](const Publication&) { ++hits; };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  ASSERT_OK(broker_->Publish(Pub("sensors/3/temp", "x")).status());
  ASSERT_OK(broker_->Publish(Pub("sensors/wing-b/temp", "x")).status());
  ASSERT_OK(broker_->Publish(Pub("sensors/3/humidity", "x")).status());
  EXPECT_EQ(hits, 2);
}

TEST_F(BrokerTest, ContentFilterSelectsByAttributes) {
  int hits = 0;
  SubscriptionSpec spec;
  spec.subscriber = "oncall";
  spec.content_filter = "severity >= 7";
  spec.handler = [&](const Publication&) { ++hits; };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  ASSERT_OK(broker_->Publish(Pub("any", "low", 2)).status());
  ASSERT_OK(broker_->Publish(Pub("any", "high", 9)).status());
  EXPECT_EQ(hits, 1);
}

TEST_F(BrokerTest, TopicAndContentCombined) {
  int hits = 0;
  SubscriptionSpec spec;
  spec.subscriber = "east-ops";
  spec.topic_pattern = "alarms";
  spec.content_filter = "severity >= 5";
  spec.handler = [&](const Publication&) { ++hits; };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  ASSERT_OK(broker_->Publish(Pub("alarms", "yes", 6)).status());
  ASSERT_OK(broker_->Publish(Pub("alarms", "no", 2)).status());
  ASSERT_OK(broker_->Publish(Pub("news", "no", 9)).status());
  EXPECT_EQ(hits, 1);
}

TEST_F(BrokerTest, NonDurableRequiresHandler) {
  SubscriptionSpec spec;
  spec.subscriber = "x";
  EXPECT_TRUE(broker_->Subscribe(std::move(spec)).status()
                  .IsInvalidArgument());
}

TEST_F(BrokerTest, FanoutCountsDeliveries) {
  for (int i = 0; i < 5; ++i) {
    SubscriptionSpec spec;
    spec.subscriber = "s" + std::to_string(i);
    spec.handler = [](const Publication&) {};
    ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  }
  EXPECT_EQ(broker_->num_subscriptions(), 5u);
  EXPECT_EQ(*broker_->Publish(Pub("t", "x")), 5u);
}

TEST_F(BrokerTest, DurableSubscriptionBuffersAndFetches) {
  SubscriptionSpec spec;
  spec.subscriber = "worker";
  spec.topic_pattern = "jobs";
  spec.durable = true;
  const std::string id = *broker_->Subscribe(std::move(spec));
  ASSERT_OK(broker_->Publish(Pub("jobs", "j1")).status());
  ASSERT_OK(broker_->Publish(Pub("jobs", "j2")).status());
  EXPECT_EQ(*broker_->PendingCount(id), 2u);
  auto p1 = *broker_->Fetch(id);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->payload, "j1");
  EXPECT_EQ(p1->topic, "jobs");
  auto p2 = *broker_->Fetch(id);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->payload, "j2");
  EXPECT_FALSE((*broker_->Fetch(id)).has_value());
}

TEST_F(BrokerTest, DurableSubscriptionSurvivesRestart) {
  std::string id;
  {
    SubscriptionSpec spec;
    spec.subscriber = "worker";
    spec.topic_pattern = "jobs";
    spec.durable = true;
    id = *broker_->Subscribe(std::move(spec));
    ASSERT_OK(broker_->Publish(Pub("jobs", "pending job")).status());
  }
  Reopen();
  EXPECT_EQ(broker_->num_subscriptions(), 1u);
  // Buffered message survived.
  auto pub = *broker_->Fetch(id);
  ASSERT_TRUE(pub.has_value());
  EXPECT_EQ(pub->payload, "pending job");
  // New publications keep flowing to the reloaded subscription.
  ASSERT_OK(broker_->Publish(Pub("jobs", "fresh job")).status());
  EXPECT_EQ((*broker_->Fetch(id))->payload, "fresh job");
}

TEST_F(BrokerTest, UnsubscribeStopsDeliveryAndCleansUp) {
  SubscriptionSpec spec;
  spec.subscriber = "worker";
  spec.durable = true;
  const std::string id = *broker_->Subscribe(std::move(spec));
  ASSERT_OK(broker_->Unsubscribe(id));
  EXPECT_TRUE(broker_->Unsubscribe(id).IsNotFound());
  EXPECT_EQ(*broker_->Publish(Pub("t", "x")), 0u);
  EXPECT_TRUE(broker_->Fetch(id).status().IsNotFound());
  Reopen();
  EXPECT_EQ(broker_->num_subscriptions(), 0u);
}

TEST_F(BrokerTest, FetchOnNonDurableFails) {
  SubscriptionSpec spec;
  spec.subscriber = "cb";
  spec.handler = [](const Publication&) {};
  const std::string id = *broker_->Subscribe(std::move(spec));
  EXPECT_TRUE(broker_->Fetch(id).status().IsFailedPrecondition());
}

TEST_F(BrokerTest, RetainedPublicationServedToNewSubscriber) {
  Publication last_value = Pub("config/threshold", "42");
  last_value.retain = true;
  ASSERT_OK(broker_->Publish(last_value).status());

  // Subscribe-to-publish: the newcomer immediately receives the retained
  // message.
  std::vector<std::string> received;
  SubscriptionSpec spec;
  spec.subscriber = "late-joiner";
  spec.topic_pattern = "config/*";
  spec.handler = [&](const Publication& pub) {
    received.push_back(pub.payload);
  };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  EXPECT_EQ(received, (std::vector<std::string>{"42"}));
}

TEST_F(BrokerTest, RetainedValueIsReplaced) {
  Publication v1 = Pub("state", "old");
  v1.retain = true;
  Publication v2 = Pub("state", "new");
  v2.retain = true;
  ASSERT_OK(broker_->Publish(v1).status());
  ASSERT_OK(broker_->Publish(v2).status());
  std::vector<std::string> received;
  SubscriptionSpec spec;
  spec.subscriber = "joiner";
  spec.topic_pattern = "state";
  spec.handler = [&](const Publication& pub) {
    received.push_back(pub.payload);
  };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  EXPECT_EQ(received, (std::vector<std::string>{"new"}));
}

TEST_F(BrokerTest, RetainedFilteredByContent) {
  Publication noisy = Pub("alerts", "minor", 1);
  noisy.retain = true;
  ASSERT_OK(broker_->Publish(noisy).status());
  int hits = 0;
  SubscriptionSpec spec;
  spec.subscriber = "picky";
  spec.content_filter = "severity >= 5";
  spec.handler = [&](const Publication&) { ++hits; };
  ASSERT_OK(broker_->Subscribe(std::move(spec)).status());
  EXPECT_EQ(hits, 0);
}

// Regression: a throwing handler must not abort the fan-out — every
// other subscriber still gets its deliveries, the publish succeeds, and
// the failure is surfaced via the pubsub.handler_errors counter.
TEST_F(BrokerTest, ThrowingHandlerDoesNotAbortFanout) {
  metrics::Counter* errors =
      metrics::Registry::Default()->GetCounter("pubsub.handler_errors");
  const uint64_t errors_before = errors->Value();

  SubscriptionSpec bad;
  bad.subscriber = "bad";
  bad.topic_pattern = "t";
  bad.handler = [](const Publication&) {
    throw std::runtime_error("handler bug");
  };
  ASSERT_OK(broker_->Subscribe(std::move(bad)).status());

  std::vector<std::string> good_seen;
  SubscriptionSpec good;
  good.subscriber = "good";
  good.topic_pattern = "t";
  good.handler = [&](const Publication& pub) {
    good_seen.push_back(pub.payload);
  };
  ASSERT_OK(broker_->Subscribe(std::move(good)).status());

  auto delivered =
      broker_->PublishBatch({Pub("t", "m1"), Pub("t", "m2")});
  ASSERT_OK(delivered.status());
  EXPECT_EQ(*delivered, 2u);  // The good subscriber's two deliveries.
  EXPECT_EQ(good_seen, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(errors->Value() - errors_before, 2u);
}

// Regression: an Unsubscribe issued mid-fan-out (here, from inside the
// handler itself) stops all SUBSEQUENT deliveries of the already
// snapshotted batch to that subscription.
TEST_F(BrokerTest, UnsubscribeInsideFanoutStopsSubsequentDeliveries) {
  int calls = 0;
  std::string id;
  SubscriptionSpec spec;
  spec.subscriber = "self-removing";
  spec.topic_pattern = "t";
  spec.handler = [&](const Publication&) {
    ++calls;
    if (calls == 1) EXPECT_OK(broker_->Unsubscribe(id));
  };
  id = *broker_->Subscribe(std::move(spec));

  auto delivered =
      broker_->PublishBatch({Pub("t", "m1"), Pub("t", "m2"), Pub("t", "m3")});
  ASSERT_OK(delivered.status());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(*delivered, 1u);
  EXPECT_EQ(broker_->num_subscriptions(), 0u);
}

// Regression: Unsubscribe never waits on a slow handler already in
// flight — and once it returns, no NEW invocation starts. If
// Unsubscribe blocked on the handler this test would deadlock (the
// handler is only released after Unsubscribe returns).
TEST_F(BrokerTest, UnsubscribeDoesNotWaitOnSlowHandler) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<int> calls{0};
  std::string id;
  SubscriptionSpec spec;
  spec.subscriber = "slow";
  spec.topic_pattern = "t";
  spec.handler = [&](const Publication&) {
    calls.fetch_add(1);
    entered.store(true);
    while (!release.load()) testing::YieldBriefly();
  };
  id = *broker_->Subscribe(std::move(spec));

  std::thread publisher([&] {
    EXPECT_OK(broker_->PublishBatch({Pub("t", "m1"), Pub("t", "m2")}).status());
  });
  while (!entered.load()) testing::YieldBriefly();
  ASSERT_OK(broker_->Unsubscribe(id));
  release.store(true);
  publisher.join();
  EXPECT_EQ(calls.load(), 1);  // m2 never reached the handler.
}

TEST_F(BrokerTest, PublicationMessageRoundTrip) {
  Publication pub = Pub("t/x", "payload", 7);
  EnqueueRequest request;
  PublicationToEnqueueRequest(pub, &request);
  Message message;
  message.payload = request.payload;
  message.attributes = request.attributes;
  Publication back = MessageToPublication(message);
  EXPECT_EQ(back.topic, "t/x");
  EXPECT_EQ(back.payload, "payload");
  ASSERT_EQ(back.attributes.size(), 1u);
  EXPECT_EQ(back.attributes[0].first, "severity");
}

}  // namespace
}  // namespace edadb
