// Interval CEP operators on the event-time machinery (DESIGN.md §15):
// "A then B within T" closed by watermarks, and absence-of-C (trailing
// negation), which can only emit once the watermark proves the
// forbidden event is not coming.
#include "cq/pattern.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace edadb {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({
      {"kind", ValueType::kString, false},
      {"symbol", ValueType::kString, true},
      {"value", ValueType::kDouble, true},
  });
}

Record Ev(const std::string& kind, double value = 0,
          const std::string& symbol = "S") {
  return Record(EventSchema(), {Value::String(kind), Value::String(symbol),
                                Value::Double(value)});
}

PatternStep Step(const std::string& name, const std::string& condition,
                 bool negated = false) {
  PatternStep step;
  step.name = name;
  step.condition = *Predicate::Compile(condition);
  step.negated = negated;
  return step;
}

class IntervalCepTest : public ::testing::Test {
 protected:
  std::unique_ptr<PatternMatcher> Make(PatternSpec spec) {
    auto matcher = PatternMatcher::Create(
        std::move(spec),
        [this](const PatternMatch& match) { matches_.push_back(match); });
    EXPECT_TRUE(matcher.ok()) << matcher.status();
    return std::move(matcher).value();
  }

  /// "order then absence of payment-failure within 1000": the §2.2
  /// canonical interval-negation pattern.
  PatternSpec AbsenceSpec() {
    PatternSpec spec;
    spec.name = "paid_clean";
    spec.steps = {Step("order", "kind = 'ORDER'"),
                  Step("no_fail", "kind = 'FAIL'", /*negated=*/true)};
    spec.within_micros = 1000;
    return spec;
  }

  std::vector<PatternMatch> matches_;
};

TEST_F(IntervalCepTest, AbsenceEmitsOnlyWhenWatermarkClosesInterval) {
  auto matcher = Make(AbsenceSpec());
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  EXPECT_EQ(matches_.size(), 0u);
  EXPECT_EQ(matcher->pending_absences(), 1u);
  // Inside the interval nothing can be concluded yet.
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 900).ok());
  EXPECT_EQ(matches_.size(), 0u);
  // The frontier passing start + within proves the absence.
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 1200).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].pattern, "paid_clean");
  EXPECT_EQ(matches_[0].kind, ResultKind::kFinal);
  EXPECT_EQ(matches_[0].start_ts, 100);
  EXPECT_EQ(matches_[0].end_ts, 1100);  // start + within.
  EXPECT_EQ(matcher->pending_absences(), 0u);
}

TEST_F(IntervalCepTest, ForbiddenEventInsideIntervalSuppressesMatch) {
  auto matcher = Make(AbsenceSpec());
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  ASSERT_TRUE(matcher->Push(Ev("FAIL"), 600).ok());  // Inside [100, 1100].
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 5000).ok());
  EXPECT_EQ(matches_.size(), 0u);
  EXPECT_EQ(matcher->pending_absences(), 0u);
}

TEST_F(IntervalCepTest, ForbiddenEventAfterDeadlineDoesNotSuppress) {
  auto matcher = Make(AbsenceSpec());
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  // FAIL lands outside the interval (1100 < 1500): absence still holds.
  ASSERT_TRUE(matcher->Push(Ev("FAIL"), 1500).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].kind, ResultKind::kFinal);
}

TEST_F(IntervalCepTest, PunctuationClosesAbsenceWithoutNewEvents) {
  auto matcher = Make(AbsenceSpec());
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  EXPECT_EQ(matches_.size(), 0u);
  // The source promises it is past the deadline: absence confirmed with
  // no further payload events — the reason negation needs watermarks.
  ASSERT_TRUE(matcher->Punctuate("", 2000).ok());
  ASSERT_EQ(matches_.size(), 1u);
}

TEST_F(IntervalCepTest, FlushConfirmsPendingAbsences) {
  auto matcher = Make(AbsenceSpec());
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  ASSERT_TRUE(matcher->Flush().ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].kind, ResultKind::kFinal);
}

TEST_F(IntervalCepTest, SequenceThenAbsence) {
  // A then B then absence-of-C within T: positive prefix plus trailing
  // negation on one machinery.
  PatternSpec spec;
  spec.name = "abc";
  spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'"),
                Step("no_c", "kind = 'C'", /*negated=*/true)};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 0).ok());
  ASSERT_TRUE(matcher->Push(Ev("B"), 200).ok());
  EXPECT_EQ(matcher->pending_absences(), 1u);
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 1500).ok());
  ASSERT_EQ(matches_.size(), 1u);
  ASSERT_EQ(matches_[0].bindings.size(), 2u);
  EXPECT_EQ(matches_[0].bindings[0].first, "a");
  EXPECT_EQ(matches_[0].bindings[1].first, "b");
}

TEST_F(IntervalCepTest, SpeculativeAbsenceRetractsOnStraggler) {
  PatternSpec spec = AbsenceSpec();
  spec.consistency = ConsistencyLevel::kSpeculative;
  spec.allowed_lateness_micros = 500;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  // Frontier passes the deadline (1100): speculative insert, but the
  // low watermark (1200 - 500) has not sealed it.
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 1200).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].kind, ResultKind::kInsert);
  // A straggler FAIL inside the interval refutes the speculation.
  ASSERT_TRUE(matcher->Push(Ev("FAIL"), 800).ok());
  ASSERT_EQ(matches_.size(), 2u);
  EXPECT_EQ(matches_[1].kind, ResultKind::kRetract);
  EXPECT_EQ(matcher->retractions_emitted(), 1u);
  // Nothing further: the match is gone for good.
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 5000).ok());
  ASSERT_TRUE(matcher->Flush().ok());
  EXPECT_EQ(matches_.size(), 2u);
}

TEST_F(IntervalCepTest, SpeculativeAbsenceSealsWhenLatenessExpires) {
  PatternSpec spec = AbsenceSpec();
  spec.consistency = ConsistencyLevel::kSpeculative;
  spec.allowed_lateness_micros = 500;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("ORDER"), 100).ok());
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 1200).ok());  // kInsert.
  // Low watermark passes the deadline: the speculation was right.
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 2000).ok());
  ASSERT_EQ(matches_.size(), 2u);
  EXPECT_EQ(matches_[0].kind, ResultKind::kInsert);
  EXPECT_EQ(matches_[1].kind, ResultKind::kFinal);
}

TEST_F(IntervalCepTest, CorrectLevelReordersOutOfOrderSequence) {
  // B arrives before A in wall time but after in event time; kFast
  // misses the match, kCorrect's reorder buffer finds it.
  for (const auto consistency :
       {ConsistencyLevel::kFast, ConsistencyLevel::kCorrect}) {
    PatternSpec spec;
    spec.name = "ab";
    spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'")};
    spec.within_micros = 1000;
    spec.consistency = consistency;
    spec.allowed_lateness_micros = 300;
    matches_.clear();
    auto matcher = Make(std::move(spec));
    ASSERT_TRUE(matcher->Push(Ev("B"), 200).ok());  // Arrives first.
    ASSERT_TRUE(matcher->Push(Ev("A"), 100).ok());  // Event-time earlier.
    ASSERT_TRUE(matcher->Push(Ev("OTHER"), 2000).ok());
    ASSERT_TRUE(matcher->Flush().ok());
    if (consistency == ConsistencyLevel::kCorrect) {
      ASSERT_EQ(matches_.size(), 1u) << "kCorrect must reorder";
      EXPECT_EQ(matches_[0].start_ts, 100);
      EXPECT_EQ(matches_[0].end_ts, 200);
    } else {
      EXPECT_EQ(matches_.size(), 0u) << "kFast processes arrival order";
    }
  }
}

TEST_F(IntervalCepTest, PartitionedAbsenceIsIndependent) {
  PatternSpec spec = AbsenceSpec();
  spec.partition_by = "symbol";
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("ORDER", 0, "AAA"), 100).ok());
  ASSERT_TRUE(matcher->Push(Ev("ORDER", 0, "BBB"), 110).ok());
  ASSERT_TRUE(matcher->Push(Ev("FAIL", 0, "AAA"), 500).ok());  // Kills AAA.
  ASSERT_TRUE(matcher->Push(Ev("OTHER"), 3000).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].partition_key.string_value(), "BBB");
}

TEST_F(IntervalCepTest, PureAbsencePatternRejected) {
  PatternSpec spec;
  spec.name = "nothing";
  spec.steps = {Step("no_c", "kind = 'C'", /*negated=*/true)};
  EXPECT_TRUE(PatternMatcher::Create(spec, [](const PatternMatch&) {})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace edadb
