// The event-time consistency invariant (DESIGN.md §15): for every
// consistency level, applying the emitted revision stream — inserts,
// minus retractions, finals last — to a per-(window, key) map converges
// to exactly what an in-order batch run over the same accepted events
// produces. Randomized lateness via the shared OOO workload generator;
// reproduce failures with EDADB_TEST_SEED.
#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cq/window.h"
#include "gtest/gtest.h"
#include "testing/ooo_stream.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

SchemaPtr TickSchema() {
  return Schema::Make({
      {"symbol", ValueType::kString, false},
      {"value", ValueType::kDouble, false},
  });
}

/// Deterministic payload per in-order index, so the shuffled stream and
/// the batch oracle see identical data.
Record TickForSeq(const SchemaPtr& schema, int64_t seq) {
  return Record(schema,
                {Value::String("S" + std::to_string(seq % 3)),
                 Value::Double(static_cast<double>((seq * 37) % 100))});
}

WindowAggregatorOptions BaseOpts() {
  WindowAggregatorOptions options;
  options.window_size_micros = 10 * 1000;
  options.key_column = "symbol";
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kSum, "value", "sum"},
                        {Aggregate::Func::kMax, "value", "mx"}};
  return options;
}

struct Entry {
  int64_t rows = 0;
  std::vector<std::pair<std::string, Value>> aggregates;
  bool frozen = false;

  bool SameValues(const WindowResult& r) const {
    return rows == r.rows && aggregates == r.aggregates;
  }
};

using ResultMap = std::map<std::pair<TimestampMicros, std::string>, Entry>;

/// Applies one emission to the converging map, asserting the revision
/// protocol along the way.
void Apply(const WindowResult& r, ResultMap* map) {
  const auto key = std::make_pair(r.window_start, r.key.ToString());
  auto it = map->find(key);
  switch (r.kind) {
    case ResultKind::kInsert:
      // An insert may only land where nothing stands (fresh window or
      // just retracted).
      ASSERT_TRUE(it == map->end()) << r.ToString();
      (*map)[key] = {r.rows, r.aggregates, false};
      break;
    case ResultKind::kRetract:
      // A retraction must withdraw exactly what was published.
      ASSERT_TRUE(it != map->end()) << r.ToString();
      ASSERT_FALSE(it->second.frozen) << r.ToString();
      ASSERT_TRUE(it->second.SameValues(r)) << r.ToString();
      map->erase(it);
      break;
    case ResultKind::kFinal:
      // A final seals; if a speculative insert is standing it must
      // carry the same values (every change was revised immediately).
      if (it != map->end()) {
        ASSERT_FALSE(it->second.frozen) << r.ToString();
        ASSERT_TRUE(it->second.SameValues(r)) << r.ToString();
      }
      (*map)[key] = {r.rows, r.aggregates, true};
      break;
  }
}

/// In-order batch run over `accepted` (already ts-sorted) — the oracle.
void BatchOracle(const SchemaPtr& schema,
                 const std::vector<testing::OooEvent>& accepted,
                 ResultMap* oracle) {
  WindowedAggregator agg(BaseOpts(), [&](const WindowResult& r) {
    EXPECT_EQ(r.kind, ResultKind::kFinal);
    (*oracle)[{r.window_start, r.key.ToString()}] = {r.rows, r.aggregates,
                                                     true};
  });
  for (const auto& event : accepted) {
    ASSERT_TRUE(agg.Push(TickForSeq(schema, event.seq), event.ts).ok());
  }
  ASSERT_TRUE(agg.Flush().ok());
}

class RetractionPropertyTest
    : public ::testing::TestWithParam<ConsistencyLevel> {};

TEST_P(RetractionPropertyTest, ConvergesToBatchOracle) {
  const ConsistencyLevel level = GetParam();
  testing::SeededRng rng(/*stream=*/1100 + static_cast<uint64_t>(level));
  const SchemaPtr schema = TickSchema();

  testing::OooStreamOptions stream_options;
  stream_options.num_events = 3000;
  stream_options.step_micros = 1000;
  stream_options.lateness_fraction = 0.25;
  stream_options.max_delay_micros = 30 * 1000;
  // kFast closes at the frontier, so the accepted set depends on the
  // drop rule; a single source keeps that rule reproducible below.
  stream_options.num_sources = level == ConsistencyLevel::kFast ? 1 : 3;
  const std::vector<testing::OooEvent> stream =
      GenerateOooStream(stream_options, &rng);

  WindowAggregatorOptions options = BaseOpts();
  options.consistency = level;
  // Lateness covering the max delay means kCorrect/kSpeculative drop
  // nothing (proved below); kFast ignores lateness by design.
  options.allowed_lateness_micros = stream_options.max_delay_micros;

  ResultMap converged;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { Apply(r, &converged); });

  // Replicate the drop rule to know the accepted set: an event is late
  // iff its ts is behind the close watermark at arrival.
  std::vector<testing::OooEvent> accepted;
  TimestampMicros frontier = INT64_MIN;
  for (const auto& event : stream) {
    const bool dropped =
        level == ConsistencyLevel::kFast && event.ts < frontier;
    frontier = std::max(frontier, event.ts);
    if (!dropped) accepted.push_back(event);
    ASSERT_TRUE(agg.Push(TickForSeq(schema, event.seq), event.ts,
                         testing::OooSourceName(event.source))
                    .ok());
  }
  if (level != ConsistencyLevel::kFast) {
    ASSERT_EQ(agg.late_dropped(), 0u)
        << "lateness covers max delay: nothing may drop";
  } else {
    ASSERT_EQ(agg.late_dropped(), stream.size() - accepted.size());
  }
  ASSERT_TRUE(agg.Flush().ok());

  // Everything must be sealed after Flush.
  for (const auto& [key, entry] : converged) {
    ASSERT_TRUE(entry.frozen)
        << "unfinalized (window " << key.first << ", key " << key.second
        << ")";
  }

  std::sort(accepted.begin(), accepted.end(),
            [](const testing::OooEvent& a, const testing::OooEvent& b) {
              return a.ts != b.ts ? a.ts < b.ts : a.seq < b.seq;
            });
  ResultMap oracle;
  BatchOracle(schema, accepted, &oracle);
  ASSERT_EQ(converged.size(), oracle.size());
  for (const auto& [key, entry] : oracle) {
    auto it = converged.find(key);
    ASSERT_TRUE(it != converged.end())
        << "missing (window " << key.first << ", key " << key.second << ")";
    EXPECT_EQ(it->second.rows, entry.rows) << "window " << key.first;
    EXPECT_EQ(it->second.aggregates, entry.aggregates)
        << "window " << key.first << ", key " << key.second;
  }

  if (level == ConsistencyLevel::kSpeculative) {
    // The shuffle is aggressive enough that speculation must have been
    // wrong at least once — otherwise this test proves nothing.
    EXPECT_GT(agg.retractions_emitted(), 0u);
    EXPECT_GT(agg.speculative_emitted(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllLevels, RetractionPropertyTest,
                         ::testing::Values(ConsistencyLevel::kFast,
                                           ConsistencyLevel::kSpeculative,
                                           ConsistencyLevel::kCorrect),
                         [](const auto& info) {
                           return std::string(
                               ConsistencyLevelName(info.param));
                         });

}  // namespace
}  // namespace edadb
