#include "cq/pattern.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({
      {"kind", ValueType::kString, false},
      {"symbol", ValueType::kString, true},
      {"value", ValueType::kDouble, true},
  });
}

Record Ev(const std::string& kind, double value = 0,
          const std::string& symbol = "S") {
  return Record(EventSchema(), {Value::String(kind), Value::String(symbol),
                                Value::Double(value)});
}

PatternStep Step(const std::string& name, const std::string& condition,
                 bool negated = false, bool one_or_more = false) {
  PatternStep step;
  step.name = name;
  step.condition = *Predicate::Compile(condition);
  step.negated = negated;
  step.one_or_more = one_or_more;
  return step;
}

class PatternTest : public testing::Test {
 protected:
  std::unique_ptr<PatternMatcher> Make(PatternSpec spec) {
    auto matcher = PatternMatcher::Create(
        std::move(spec),
        [this](const PatternMatch& match) { matches_.push_back(match); });
    EXPECT_TRUE(matcher.ok()) << matcher.status();
    return std::move(matcher).value();
  }

  std::vector<PatternMatch> matches_;
};

TEST_F(PatternTest, SimpleSequence) {
  PatternSpec spec;
  spec.name = "ab";
  spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'")};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 1).ok());
  EXPECT_EQ(matcher->matches_emitted(), 0u);
  ASSERT_TRUE(matcher->Push(Ev("B"), 2).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].pattern, "ab");
  EXPECT_EQ(matches_[0].start_ts, 1);
  EXPECT_EQ(matches_[0].end_ts, 2);
  ASSERT_EQ(matches_[0].bindings.size(), 2u);
  EXPECT_EQ(matches_[0].bindings[0].first, "a");
  EXPECT_EQ(matches_[0].bindings[0].second.size(), 1u);
}

TEST_F(PatternTest, SkipTillNextMatchIgnoresIrrelevantEvents) {
  PatternSpec spec;
  spec.name = "ab";
  spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'")};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("X"), 2).ok());
  ASSERT_TRUE(matcher->Push(Ev("Y"), 3).ok());
  ASSERT_TRUE(matcher->Push(Ev("B"), 4).ok());
  EXPECT_EQ(matches_.size(), 1u);
}

TEST_F(PatternTest, WithinWindowExpiresRuns) {
  PatternSpec spec;
  spec.name = "ab";
  spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'")};
  spec.within_micros = 10;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("B"), 20).ok());  // Too late.
  EXPECT_TRUE(matches_.empty());
  EXPECT_EQ(matcher->active_runs(), 0u);
}

TEST_F(PatternTest, OverlappingMatches) {
  PatternSpec spec;
  spec.name = "ab";
  spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'")};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("A"), 2).ok());
  ASSERT_TRUE(matcher->Push(Ev("B"), 3).ok());
  // Both open runs complete on the same B.
  EXPECT_EQ(matches_.size(), 2u);
}

TEST_F(PatternTest, NegationKillsRun) {
  // A (no C between) B.
  PatternSpec spec;
  spec.name = "a_notc_b";
  spec.steps = {Step("a", "kind = 'A'"),
                Step("no_c", "kind = 'C'", /*negated=*/true),
                Step("b", "kind = 'B'")};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("C"), 2).ok());  // Kills the run.
  ASSERT_TRUE(matcher->Push(Ev("B"), 3).ok());
  EXPECT_TRUE(matches_.empty());
  // Without the C it matches.
  ASSERT_TRUE(matcher->Push(Ev("A"), 4).ok());
  ASSERT_TRUE(matcher->Push(Ev("B"), 5).ok());
  EXPECT_EQ(matches_.size(), 1u);
}

TEST_F(PatternTest, KleenePlusFoldsConsecutiveEvents) {
  // A B+ C: all Bs bind to the middle step.
  PatternSpec spec;
  spec.name = "abc";
  spec.steps = {Step("a", "kind = 'A'"),
                Step("bs", "kind = 'B'", false, /*one_or_more=*/true),
                Step("c", "kind = 'C'")};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("A"), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("B", 1), 2).ok());
  ASSERT_TRUE(matcher->Push(Ev("B", 2), 3).ok());
  ASSERT_TRUE(matcher->Push(Ev("B", 3), 4).ok());
  ASSERT_TRUE(matcher->Push(Ev("C"), 5).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].bindings[1].second.size(), 3u);
}

TEST_F(PatternTest, PartitionsTrackIndependently) {
  PatternSpec spec;
  spec.name = "rise";
  spec.steps = {Step("low", "value < 10"), Step("high", "value > 20")};
  spec.within_micros = 1000;
  spec.partition_by = "symbol";
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("t", 5, "AAPL"), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("t", 5, "MSFT"), 2).ok());
  // Cross-partition events must not complete each other's runs.
  ASSERT_TRUE(matcher->Push(Ev("t", 25, "MSFT"), 3).ok());
  ASSERT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matches_[0].partition_key.string_value(), "MSFT");
  ASSERT_TRUE(matcher->Push(Ev("t", 30, "AAPL"), 4).ok());
  ASSERT_EQ(matches_.size(), 2u);
  EXPECT_EQ(matches_[1].partition_key.string_value(), "AAPL");
}

TEST_F(PatternTest, MaxActiveRunsBounds) {
  PatternSpec spec;
  spec.name = "ab";
  spec.steps = {Step("a", "kind = 'A'"), Step("b", "kind = 'B'")};
  spec.within_micros = 100000;
  spec.max_active_runs = 5;
  auto matcher = Make(std::move(spec));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(matcher->Push(Ev("A"), i + 1).ok());
  }
  EXPECT_EQ(matcher->active_runs(), 5u);
}

TEST_F(PatternTest, SingleStepPatternMatchesImmediately) {
  PatternSpec spec;
  spec.name = "spike";
  spec.steps = {Step("s", "value > 100")};
  spec.within_micros = 1;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("t", 50), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("t", 150), 2).ok());
  EXPECT_EQ(matches_.size(), 1u);
  EXPECT_EQ(matcher->active_runs(), 0u);
}

TEST_F(PatternTest, SpecValidation) {
  auto no_steps = PatternMatcher::Create({}, [](const PatternMatch&) {});
  EXPECT_TRUE(no_steps.status().IsInvalidArgument());

  PatternSpec leading_not;
  leading_not.steps = {Step("n", "TRUE", true), Step("a", "TRUE")};
  EXPECT_TRUE(PatternMatcher::Create(leading_not, [](const PatternMatch&) {})
                  .status()
                  .IsInvalidArgument());

  PatternSpec bad_within;
  bad_within.steps = {Step("a", "TRUE")};
  bad_within.within_micros = 0;
  EXPECT_TRUE(PatternMatcher::Create(bad_within, [](const PatternMatch&) {})
                  .status()
                  .IsInvalidArgument());

  PatternSpec negated_kleene;
  negated_kleene.steps = {Step("a", "TRUE"),
                          Step("x", "TRUE", true, true),
                          Step("b", "TRUE")};
  EXPECT_TRUE(
      PatternMatcher::Create(negated_kleene, [](const PatternMatch&) {})
          .status()
          .IsInvalidArgument());
}

TEST_F(PatternTest, ReluctantKleeneAdvancesOnAmbiguousEvent) {
  // B+ then "value > 20": an event matching both should advance.
  PatternSpec spec;
  spec.name = "accel";
  spec.steps = {Step("start", "value > 0", false, true),
                Step("peak", "value > 20")};
  spec.within_micros = 1000;
  auto matcher = Make(std::move(spec));
  ASSERT_TRUE(matcher->Push(Ev("t", 5), 1).ok());
  ASSERT_TRUE(matcher->Push(Ev("t", 25), 2).ok());  // Matches both steps.
  EXPECT_EQ(matches_.size(), 1u);
}

}  // namespace
}  // namespace edadb
