#include "cq/join.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

SchemaPtr TickSchema() {
  return Schema::Make({
      {"symbol", ValueType::kString, false},
      {"price", ValueType::kDouble, false},
  });
}

Record Tick(const std::string& symbol, double price) {
  return Record(TickSchema(),
                {Value::String(symbol), Value::Double(price)});
}

class StreamTableJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ref_schema_ = Schema::Make({
        {"symbol", ValueType::kString, false},
        {"exchange", ValueType::kString, true},
    });
    ASSERT_TRUE(db_->CreateTable("listings", ref_schema_).ok());
    ASSERT_TRUE(db_->CreateIndex("listings", "symbol", false).ok());
    ASSERT_TRUE(
        db_->Insert("listings",
                    Record(ref_schema_, {Value::String("ACME"),
                                         Value::String("NYSE")}))
            .ok());
    ASSERT_TRUE(
        db_->Insert("listings",
                    Record(ref_schema_, {Value::String("GLOBEX"),
                                         Value::String("CME")}))
            .ok());
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  SchemaPtr ref_schema_;
};

TEST_F(StreamTableJoinTest, EnrichesEventsViaIndex) {
  std::vector<Record> out;
  auto join = *StreamTableJoin::Create(
      db_.get(), TickSchema(),
      {.stream_key = "symbol", .table = "listings", .table_key = "symbol"},
      [&](const Record& joined) { out.push_back(joined); });
  // Output schema qualifies the colliding "symbol" column.
  EXPECT_TRUE(join->output_schema()->HasField("listings.symbol"));
  EXPECT_TRUE(join->output_schema()->HasField("exchange"));

  ASSERT_TRUE(join->Push(Tick("ACME", 101.5)).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("price")->double_value(), 101.5);
  EXPECT_EQ(out[0].Get("exchange")->string_value(), "NYSE");

  // Inner join: unknown symbol emits nothing.
  ASSERT_TRUE(join->Push(Tick("UNLISTED", 1.0)).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(StreamTableJoinTest, LeftOuterEmitsNulls) {
  std::vector<Record> out;
  auto join = *StreamTableJoin::Create(
      db_.get(), TickSchema(),
      {.stream_key = "symbol", .table = "listings",
       .table_key = "symbol", .left_outer = true},
      [&](const Record& joined) { out.push_back(joined); });
  ASSERT_TRUE(join->Push(Tick("UNLISTED", 1.0)).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].Get("exchange")->is_null());
}

TEST_F(StreamTableJoinTest, SeesLiveTableUpdates) {
  std::vector<Record> out;
  auto join = *StreamTableJoin::Create(
      db_.get(), TickSchema(),
      {.stream_key = "symbol", .table = "listings", .table_key = "symbol"},
      [&](const Record& joined) { out.push_back(joined); });
  ASSERT_TRUE(join->Push(Tick("INITECH", 1)).ok());
  EXPECT_TRUE(out.empty());
  // Reference data arrives later; the next event joins.
  ASSERT_TRUE(db_->Insert("listings",
                          Record(ref_schema_, {Value::String("INITECH"),
                                               Value::String("NASDAQ")}))
                  .ok());
  ASSERT_TRUE(join->Push(Tick("INITECH", 2)).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("exchange")->string_value(), "NASDAQ");
}

TEST_F(StreamTableJoinTest, WorksWithoutIndexViaScan) {
  ASSERT_TRUE(db_->CreateTable("unindexed", ref_schema_).ok());
  ASSERT_TRUE(db_->Insert("unindexed",
                          Record(ref_schema_, {Value::String("ACME"),
                                               Value::String("LSE")}))
                  .ok());
  std::vector<Record> out;
  auto join = *StreamTableJoin::Create(
      db_.get(), TickSchema(),
      {.stream_key = "symbol", .table = "unindexed",
       .table_key = "symbol"},
      [&](const Record& joined) { out.push_back(joined); });
  ASSERT_TRUE(join->Push(Tick("ACME", 5)).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("exchange")->string_value(), "LSE");
}

TEST_F(StreamTableJoinTest, CreateValidation) {
  EXPECT_FALSE(StreamTableJoin::Create(
                   db_.get(), TickSchema(),
                   {.stream_key = "nope", .table = "listings",
                    .table_key = "symbol"},
                   [](const Record&) {})
                   .ok());
  EXPECT_TRUE(StreamTableJoin::Create(
                  db_.get(), TickSchema(),
                  {.stream_key = "symbol", .table = "ghost",
                   .table_key = "symbol"},
                  [](const Record&) {})
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------------
// IntervalJoin

SchemaPtr OrderSchema() {
  return Schema::Make({
      {"order_id", ValueType::kInt64, false},
      {"amount", ValueType::kDouble, true},
  });
}

Record Order(int64_t id, double amount) {
  return Record(OrderSchema(), {Value::Int64(id), Value::Double(amount)});
}

TEST(IntervalJoinTest, PairsWithinWindow) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [&](const Record& l, const Record& r, TimestampMicros) {
        pairs.emplace_back(l.Get("order_id")->int64_value(),
                           r.Get("order_id")->int64_value());
      });
  ASSERT_TRUE(join.PushLeft(Order(1, 10), 0).ok());
  ASSERT_TRUE(join.PushRight(Order(1, 10), 50).ok());   // Within.
  ASSERT_TRUE(join.PushRight(Order(1, 10), 90).ok());   // Also within.
  ASSERT_TRUE(join.PushRight(Order(2, 5), 95).ok());    // Key mismatch.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<int64_t, int64_t>{1, 1}));
}

TEST(IntervalJoinTest, WindowExpiryPreventsPairing) {
  int pairs = 0;
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [&](const Record&, const Record&, TimestampMicros) { ++pairs; });
  ASSERT_TRUE(join.PushLeft(Order(1, 10), 0).ok());
  ASSERT_TRUE(join.PushRight(Order(1, 10), 201).ok());  // Too late.
  EXPECT_EQ(pairs, 0);
  EXPECT_EQ(join.buffered_left(), 0u);  // Evicted by watermark.
}

TEST(IntervalJoinTest, RightBeforeLeftAlsoPairs) {
  int pairs = 0;
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [&](const Record&, const Record&, TimestampMicros ts) {
        ++pairs;
        EXPECT_EQ(ts, 80);
      });
  ASSERT_TRUE(join.PushRight(Order(7, 1), 30).ok());
  ASSERT_TRUE(join.PushLeft(Order(7, 1), 80).ok());
  EXPECT_EQ(pairs, 1);
}

TEST(IntervalJoinTest, ManyToManyWithinKey) {
  int pairs = 0;
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 1000},
      [&](const Record&, const Record&, TimestampMicros) { ++pairs; });
  ASSERT_TRUE(join.PushLeft(Order(1, 1), 0).ok());
  ASSERT_TRUE(join.PushLeft(Order(1, 2), 10).ok());
  ASSERT_TRUE(join.PushRight(Order(1, 3), 20).ok());  // Pairs with both.
  ASSERT_TRUE(join.PushRight(Order(1, 4), 30).ok());  // Pairs with both.
  EXPECT_EQ(pairs, 4);
  EXPECT_EQ(join.emitted(), 4u);
}

TEST(IntervalJoinTest, NullKeysNeverJoin) {
  int pairs = 0;
  IntervalJoin join(
      {.left_key = "amount", .right_key = "amount",
       .window_micros = 1000},
      [&](const Record&, const Record&, TimestampMicros) { ++pairs; });
  Record null_amount(OrderSchema(), {Value::Int64(1), Value::Null()});
  ASSERT_TRUE(join.PushLeft(null_amount, 0).ok());
  ASSERT_TRUE(join.PushRight(null_amount, 1).ok());
  EXPECT_EQ(pairs, 0);
}

TEST(IntervalJoinTest, MemoryBoundedByWindow) {
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [](const Record&, const Record&, TimestampMicros) {});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(join.PushLeft(Order(i, 1), i * 10).ok());
  }
  // Only events within the last window (10 ticks of 10) stay buffered.
  EXPECT_LE(join.buffered_left(), 12u);
}

// Regression for the seed's arrival-order eviction deque: one
// out-of-order event desynchronized the deque from the per-key buffers
// and stranded entries forever. The min-heap evicts by timestamp, so a
// shuffled stream stays bounded.
TEST(IntervalJoinTest, ShuffledStreamMemoryStaysBounded) {
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [](const Record&, const Record&, TimestampMicros) {});
  testing::SeededRng rng(0xA11CE);
  std::vector<TimestampMicros> ts;
  for (int i = 0; i < 2000; ++i) ts.push_back(i * 10);
  // Shuffle within a bounded disorder horizon so events stay pairable.
  for (size_t i = 0; i + 8 < ts.size(); ++i) {
    std::swap(ts[i], ts[i + rng.Uniform(8)]);
  }
  for (size_t i = 0; i < ts.size(); ++i) {
    ASSERT_TRUE(join.PushLeft(Order(static_cast<int64_t>(i), 1), ts[i]).ok());
  }
  // Window holds ~10 ticks; disorder adds a few in flight. The seed bug
  // ended this run with hundreds of stranded entries.
  EXPECT_LE(join.buffered_left(), 32u);
}

TEST(IntervalJoinTest, OutOfOrderEventStillPairs) {
  std::vector<TimestampMicros> pair_ts;
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [&](const Record&, const Record&, TimestampMicros ts) {
        pair_ts.push_back(ts);
      });
  ASSERT_TRUE(join.PushLeft(Order(1, 1), 50).ok());
  ASSERT_TRUE(join.PushLeft(Order(1, 2), 120).ok());
  // Right event arrives out of order (ts 60 after seeing 120): pairs
  // with both lefts within |dt| <= 100.
  ASSERT_TRUE(join.PushRight(Order(1, 3), 60).ok());
  ASSERT_EQ(pair_ts.size(), 2u);
  EXPECT_EQ(pair_ts[0], 60);
  EXPECT_EQ(pair_ts[1], 120);
}

// Under kCorrect the eviction watermark is the min across sides (minus
// lateness), so a fast left side cannot evict the buffer a slow right
// side still needs.
TEST(IntervalJoinTest, CorrectLevelHoldsBufferForSlowSide) {
  int pairs = 0;
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100,
       .consistency = ConsistencyLevel::kCorrect},
      [&](const Record&, const Record&, TimestampMicros) { ++pairs; });
  ASSERT_TRUE(join.PushLeft(Order(1, 1), 0).ok());
  ASSERT_TRUE(join.PushLeft(Order(2, 1), 500).ok());  // Left races ahead.
  // Right is slow: its ts 80 partner must still be buffered, even
  // though the frontier (500) is far past 0 + window.
  ASSERT_TRUE(join.PushRight(Order(1, 1), 80).ok());
  EXPECT_EQ(pairs, 1);
  // The same stream under kFast evicts at the frontier and misses it.
  int fast_pairs = 0;
  IntervalJoin fast(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100},
      [&](const Record&, const Record&, TimestampMicros) { ++fast_pairs; });
  ASSERT_TRUE(fast.PushLeft(Order(1, 1), 0).ok());
  ASSERT_TRUE(fast.PushLeft(Order(2, 1), 500).ok());
  ASSERT_TRUE(fast.PushRight(Order(1, 1), 80).ok());
  EXPECT_EQ(fast_pairs, 0);
  EXPECT_EQ(fast.late_dropped(), 1u);
}

TEST(IntervalJoinTest, PunctuationAdvancesEviction) {
  IntervalJoin join(
      {.left_key = "order_id", .right_key = "order_id",
       .window_micros = 100,
       .consistency = ConsistencyLevel::kCorrect},
      [](const Record&, const Record&, TimestampMicros) {});
  ASSERT_TRUE(join.PushLeft(Order(1, 1), 0).ok());
  ASSERT_TRUE(join.PushLeft(Order(2, 1), 1000).ok());
  // Left alone cannot evict (right side unknown ⇒ low watermark unset).
  EXPECT_EQ(join.buffered_left(), 2u);
  // Right promises it is past 1000 without sending an event.
  join.PunctuateRight(1000);
  EXPECT_EQ(join.buffered_left(), 1u);  // ts 0 gone, ts 1000 kept.
}

}  // namespace
}  // namespace edadb
