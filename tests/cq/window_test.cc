#include "cq/window.h"

#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(SlidingWindowStatsTest, BasicAccumulation) {
  SlidingWindowStats stats(100);
  stats.Add(10, 1.0);
  stats.Add(20, 2.0);
  stats.Add(30, 3.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_EQ(stats.sum(), 6.0);
  EXPECT_EQ(stats.mean(), 2.0);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 3.0);
  EXPECT_NEAR(stats.variance(), 2.0 / 3.0, 1e-12);
}

TEST(SlidingWindowStatsTest, EvictsOldValues) {
  SlidingWindowStats stats(100);
  stats.Add(0, 100.0);
  stats.Add(50, 2.0);
  stats.Add(101, 4.0);  // ts 0 now outside (101 - 100 = 1 > 0).
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.sum(), 6.0);
  EXPECT_EQ(stats.max(), 4.0);
  stats.Add(200, 8.0);  // Evicts ts 50 (and 101? 200-100=100 >= 101? no).
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.min(), 4.0);
}

TEST(SlidingWindowStatsTest, MinMaxMonotonicDequeCorrectness) {
  // Decreasing then increasing sequence exercises both deques.
  SlidingWindowStats stats(1000);
  const double values[] = {5, 3, 8, 1, 9, 2, 7};
  for (int i = 0; i < 7; ++i) {
    stats.Add(i + 1, values[i]);
  }
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(SlidingWindowStatsTest, AgreesWithBruteForceOnRandomStream) {
  Random rng(99);
  const TimestampMicros width = 50;
  SlidingWindowStats stats(width);
  std::vector<std::pair<TimestampMicros, double>> all;
  TimestampMicros ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += static_cast<TimestampMicros>(rng.Uniform(5));
    const double v = rng.Normal(10, 4);
    stats.Add(ts, v);
    all.emplace_back(ts, v);

    // Brute force over the retained window (t > ts - width).
    double sum = 0, mn = 1e300, mx = -1e300;
    size_t count = 0;
    for (const auto& [t, value] : all) {
      if (t > ts - width) {
        sum += value;
        mn = std::min(mn, value);
        mx = std::max(mx, value);
        ++count;
      }
    }
    ASSERT_EQ(stats.count(), count) << i;
    ASSERT_NEAR(stats.sum(), sum, 1e-6);
    ASSERT_EQ(stats.min(), mn);
    ASSERT_EQ(stats.max(), mx);
  }
}

// ---------------------------------------------------------------------------
// WindowedAggregator

SchemaPtr TickSchema() {
  return Schema::Make({
      {"symbol", ValueType::kString, false},
      {"price", ValueType::kDouble, false},
  });
}

Record Tick(const std::string& symbol, double price) {
  return Record(TickSchema(),
                {Value::String(symbol), Value::Double(price)});
}

WindowAggregatorOptions TumblingOpts(TimestampMicros size) {
  WindowAggregatorOptions options;
  options.window_size_micros = size;
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kAvg, "price", "avg_price"},
                        {Aggregate::Func::kMax, "price", "max_price"}};
  return options;
}

TEST(WindowedAggregatorTest, TumblingWindowsEmitOnWatermark) {
  std::vector<WindowResult> results;
  WindowedAggregator agg(TumblingOpts(100),
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 10), 10).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 20), 50).ok());
  EXPECT_TRUE(results.empty());  // Window [0,100) still open.
  ASSERT_TRUE(agg.Push(Tick("A", 70), 110).ok());  // Closes [0,100).
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[0].window_end, 100);
  EXPECT_EQ(results[0].rows, 2);
  EXPECT_EQ(results[0].aggregates[0].second, Value::Int64(2));
  EXPECT_EQ(results[0].aggregates[1].second, Value::Double(15.0));
  EXPECT_EQ(results[0].aggregates[2].second, Value::Double(20.0));
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);  // [100,200) flushed.
  EXPECT_EQ(results[1].rows, 1);
}

TEST(WindowedAggregatorTest, EmptyWindowsAreNotEmitted) {
  std::vector<WindowResult> results;
  WindowedAggregator agg(TumblingOpts(100),
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 10).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 510).ok());  // Gap of 4 windows.
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[1].window_start, 500);
}

TEST(WindowedAggregatorTest, SlidingWindowsOverlap) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.slide_micros = 50;
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  // Event at ts=60 belongs to windows [0,100) and [50,150).
  ASSERT_TRUE(agg.Push(Tick("A", 5), 60).ok());
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[1].window_start, 50);
  EXPECT_EQ(results[0].rows, 1);
  EXPECT_EQ(results[1].rows, 1);
}

TEST(WindowedAggregatorTest, KeyedWindowsGroupSeparately) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.key_column = "symbol";
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 10), 10).ok());
  ASSERT_TRUE(agg.Push(Tick("B", 99), 20).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 20), 30).ok());
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  // Keys in encoded order; find each.
  const WindowResult* a = nullptr;
  const WindowResult* b = nullptr;
  for (const auto& r : results) {
    if (r.key.string_value() == "A") a = &r;
    if (r.key.string_value() == "B") b = &r;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->rows, 2);
  EXPECT_EQ(b->rows, 1);
  EXPECT_EQ(b->aggregates[2].second, Value::Double(99.0));
}

TEST(WindowedAggregatorTest, LateEventsDroppedAndCounted) {
  WindowAggregatorOptions options = TumblingOpts(100);
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 150).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 50).ok());  // ts < watermark 150.
  EXPECT_EQ(agg.late_dropped(), 1u);
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rows, 1);
}

TEST(WindowedAggregatorTest, AllowedLatenessAdmitsStragglers) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.allowed_lateness_micros = 100;
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 150).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 60).ok());  // Within lateness.
  EXPECT_EQ(agg.late_dropped(), 0u);
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].rows, 1);  // [0,100) holds ts=60.
}

TEST(WindowedAggregatorTest, RecomputeModeMatchesIncremental) {
  Random rng(5);
  for (const bool recompute : {false, true}) {
    WindowAggregatorOptions options = TumblingOpts(100);
    options.slide_micros = 50;
    options.key_column = "symbol";
    options.recompute_at_close = recompute;
    std::vector<std::string> rendered;
    WindowedAggregator agg(options, [&](const WindowResult& r) {
      rendered.push_back(r.ToString());
    });
    Random stream_rng(2026);
    TimestampMicros ts = 0;
    for (int i = 0; i < 500; ++i) {
      ts += static_cast<TimestampMicros>(stream_rng.Uniform(10));
      const char* symbol = stream_rng.OneIn(2) ? "A" : "B";
      ASSERT_TRUE(
          agg.Push(Tick(symbol, stream_rng.Normal(100, 10)), ts).ok());
    }
    ASSERT_TRUE(agg.Flush().ok());
    static std::vector<std::string> baseline;
    if (!recompute) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline);
    }
  }
}

TEST(WindowedAggregatorTest, MissingAggregateColumnErrors) {
  WindowAggregatorOptions options;
  options.window_size_micros = 100;
  options.aggregates = {{Aggregate::Func::kSum, "nope", "s"}};
  WindowedAggregator agg(options, [](const WindowResult&) {});
  EXPECT_FALSE(agg.Push(Tick("A", 1), 10).ok());
}

}  // namespace
}  // namespace edadb
