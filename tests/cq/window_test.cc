#include "cq/window.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(SlidingWindowStatsTest, BasicAccumulation) {
  SlidingWindowStats stats(100);
  stats.Add(10, 1.0);
  stats.Add(20, 2.0);
  stats.Add(30, 3.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_EQ(stats.sum(), 6.0);
  EXPECT_EQ(stats.mean(), 2.0);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 3.0);
  EXPECT_NEAR(stats.variance(), 2.0 / 3.0, 1e-12);
}

TEST(SlidingWindowStatsTest, EvictsOldValues) {
  SlidingWindowStats stats(100);
  stats.Add(0, 100.0);
  stats.Add(50, 2.0);
  stats.Add(101, 4.0);  // ts 0 now outside (101 - 100 = 1 > 0).
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.sum(), 6.0);
  EXPECT_EQ(stats.max(), 4.0);
  stats.Add(200, 8.0);  // Evicts ts 50 (and 101? 200-100=100 >= 101? no).
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.min(), 4.0);
}

TEST(SlidingWindowStatsTest, MinMaxMonotonicDequeCorrectness) {
  // Decreasing then increasing sequence exercises both deques.
  SlidingWindowStats stats(1000);
  const double values[] = {5, 3, 8, 1, 9, 2, 7};
  for (int i = 0; i < 7; ++i) {
    stats.Add(i + 1, values[i]);
  }
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(SlidingWindowStatsTest, AgreesWithBruteForceOnRandomStream) {
  Random rng(99);
  const TimestampMicros width = 50;
  SlidingWindowStats stats(width);
  std::vector<std::pair<TimestampMicros, double>> all;
  TimestampMicros ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ts += static_cast<TimestampMicros>(rng.Uniform(5));
    const double v = rng.Normal(10, 4);
    stats.Add(ts, v);
    all.emplace_back(ts, v);

    // Brute force over the retained window (t > ts - width).
    double sum = 0, mn = 1e300, mx = -1e300;
    size_t count = 0;
    for (const auto& [t, value] : all) {
      if (t > ts - width) {
        sum += value;
        mn = std::min(mn, value);
        mx = std::max(mx, value);
        ++count;
      }
    }
    ASSERT_EQ(stats.count(), count) << i;
    ASSERT_NEAR(stats.sum(), sum, 1e-6);
    ASSERT_EQ(stats.min(), mn);
    ASSERT_EQ(stats.max(), mx);
  }
}

// ---------------------------------------------------------------------------
// WindowedAggregator

SchemaPtr TickSchema() {
  return Schema::Make({
      {"symbol", ValueType::kString, false},
      {"price", ValueType::kDouble, false},
  });
}

Record Tick(const std::string& symbol, double price) {
  return Record(TickSchema(),
                {Value::String(symbol), Value::Double(price)});
}

WindowAggregatorOptions TumblingOpts(TimestampMicros size) {
  WindowAggregatorOptions options;
  options.window_size_micros = size;
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kAvg, "price", "avg_price"},
                        {Aggregate::Func::kMax, "price", "max_price"}};
  return options;
}

TEST(WindowedAggregatorTest, TumblingWindowsEmitOnWatermark) {
  std::vector<WindowResult> results;
  WindowedAggregator agg(TumblingOpts(100),
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 10), 10).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 20), 50).ok());
  EXPECT_TRUE(results.empty());  // Window [0,100) still open.
  ASSERT_TRUE(agg.Push(Tick("A", 70), 110).ok());  // Closes [0,100).
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[0].window_end, 100);
  EXPECT_EQ(results[0].rows, 2);
  EXPECT_EQ(results[0].aggregates[0].second, Value::Int64(2));
  EXPECT_EQ(results[0].aggregates[1].second, Value::Double(15.0));
  EXPECT_EQ(results[0].aggregates[2].second, Value::Double(20.0));
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);  // [100,200) flushed.
  EXPECT_EQ(results[1].rows, 1);
}

TEST(WindowedAggregatorTest, EmptyWindowsAreNotEmitted) {
  std::vector<WindowResult> results;
  WindowedAggregator agg(TumblingOpts(100),
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 10).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 510).ok());  // Gap of 4 windows.
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[1].window_start, 500);
}

TEST(WindowedAggregatorTest, SlidingWindowsOverlap) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.slide_micros = 50;
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  // Event at ts=60 belongs to windows [0,100) and [50,150).
  ASSERT_TRUE(agg.Push(Tick("A", 5), 60).ok());
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[1].window_start, 50);
  EXPECT_EQ(results[0].rows, 1);
  EXPECT_EQ(results[1].rows, 1);
}

TEST(WindowedAggregatorTest, KeyedWindowsGroupSeparately) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.key_column = "symbol";
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 10), 10).ok());
  ASSERT_TRUE(agg.Push(Tick("B", 99), 20).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 20), 30).ok());
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  // Keys in encoded order; find each.
  const WindowResult* a = nullptr;
  const WindowResult* b = nullptr;
  for (const auto& r : results) {
    if (r.key.string_value() == "A") a = &r;
    if (r.key.string_value() == "B") b = &r;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->rows, 2);
  EXPECT_EQ(b->rows, 1);
  EXPECT_EQ(b->aggregates[2].second, Value::Double(99.0));
}

TEST(WindowedAggregatorTest, LateEventsDroppedAndCounted) {
  WindowAggregatorOptions options = TumblingOpts(100);
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 150).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 50).ok());  // ts < watermark 150.
  EXPECT_EQ(agg.late_dropped(), 1u);
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rows, 1);
}

TEST(WindowedAggregatorTest, AllowedLatenessAdmitsStragglers) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.allowed_lateness_micros = 100;
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 150).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 60).ok());  // Within lateness.
  EXPECT_EQ(agg.late_dropped(), 0u);
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].rows, 1);  // [0,100) holds ts=60.
}

TEST(WindowedAggregatorTest, RecomputeModeMatchesIncremental) {
  Random rng(5);
  for (const bool recompute : {false, true}) {
    WindowAggregatorOptions options = TumblingOpts(100);
    options.slide_micros = 50;
    options.key_column = "symbol";
    options.recompute_at_close = recompute;
    std::vector<std::string> rendered;
    WindowedAggregator agg(options, [&](const WindowResult& r) {
      rendered.push_back(r.ToString());
    });
    Random stream_rng(2026);
    TimestampMicros ts = 0;
    for (int i = 0; i < 500; ++i) {
      ts += static_cast<TimestampMicros>(stream_rng.Uniform(10));
      const char* symbol = stream_rng.OneIn(2) ? "A" : "B";
      ASSERT_TRUE(
          agg.Push(Tick(symbol, stream_rng.Normal(100, 10)), ts).ok());
    }
    ASSERT_TRUE(agg.Flush().ok());
    static std::vector<std::string> baseline;
    if (!recompute) {
      baseline = rendered;
    } else {
      EXPECT_EQ(rendered, baseline);
    }
  }
}

TEST(WindowedAggregatorTest, MissingAggregateColumnErrors) {
  WindowAggregatorOptions options;
  options.window_size_micros = 100;
  options.aggregates = {{Aggregate::Func::kSum, "nope", "s"}};
  WindowedAggregator agg(options, [](const WindowResult&) {});
  EXPECT_FALSE(agg.Push(Tick("A", 1), 10).ok());
}

// ---------------------------------------------------------------------------
// Out-of-order regression (the seed asserted non-decreasing timestamps
// and silently corrupted the deques in Release builds)

TEST(SlidingWindowStatsTest, OutOfOrderInsertKeepsAggregatesExact) {
  SlidingWindowStats stats(1000);
  stats.Add(10, 5.0);
  stats.Add(30, 1.0);
  stats.Add(20, 9.0);  // Backward timestamp: the seed corrupted here.
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_EQ(stats.sum(), 15.0);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.out_of_order(), 1u);
  EXPECT_EQ(stats.late_dropped(), 0u);
  // Eviction still works off the max retained timestamp.
  stats.Add(1025, 2.0);  // Evicts ts 10, 20 (<= 1025 - 1000).
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_EQ(stats.sum(), 3.0);
  EXPECT_EQ(stats.max(), 2.0);
}

TEST(SlidingWindowStatsTest, TooOldObservationRejectedWithAccounting) {
  SlidingWindowStats stats(100);
  stats.Add(200, 1.0);  // Eviction horizon now 100.
  stats.Add(50, 42.0);  // Behind the horizon: rejected, not corrupted.
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.sum(), 1.0);
  EXPECT_EQ(stats.late_dropped(), 1u);
  EXPECT_EQ(stats.out_of_order(), 0u);
}

TEST(SlidingWindowStatsTest, ShuffledStreamAgreesWithBruteForce) {
  Random rng(77);
  const TimestampMicros width = 50;
  SlidingWindowStats stats(width);
  // In-order reference stream, then bounded local shuffling.
  std::vector<std::pair<TimestampMicros, double>> events;
  TimestampMicros ts = 0;
  for (int i = 0; i < 1500; ++i) {
    ts += static_cast<TimestampMicros>(rng.Uniform(5));
    events.emplace_back(ts, rng.Normal(10, 4));
  }
  for (size_t i = 0; i + 6 < events.size(); ++i) {
    std::swap(events[i], events[i + rng.Uniform(6)]);
  }
  std::vector<std::pair<TimestampMicros, double>> accepted;
  TimestampMicros max_ts = INT64_MIN;
  for (const auto& [t, v] : events) {
    const uint64_t dropped_before = stats.late_dropped();
    stats.Add(t, v);
    max_ts = std::max(max_ts, t);
    if (stats.late_dropped() == dropped_before) accepted.emplace_back(t, v);
    // Brute force over accepted events still inside the window.
    double sum = 0, mn = 1e300, mx = -1e300;
    size_t count = 0;
    for (const auto& [at, av] : accepted) {
      if (at > max_ts - width) {
        sum += av;
        mn = std::min(mn, av);
        mx = std::max(mx, av);
        ++count;
      }
    }
    ASSERT_EQ(stats.count(), count);
    ASSERT_NEAR(stats.sum(), sum, 1e-6);
    if (count > 0) {
      ASSERT_EQ(stats.min(), mn);
      ASSERT_EQ(stats.max(), mx);
    }
  }
}

// ---------------------------------------------------------------------------
// Speculative consistency: the insert/retract/final revision protocol

WindowAggregatorOptions SpeculativeOpts() {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.consistency = ConsistencyLevel::kSpeculative;
  options.allowed_lateness_micros = 100;
  return options;
}

TEST(WindowedAggregatorTest, SpeculativeEmitsInsertThenFinal) {
  std::vector<WindowResult> results;
  WindowedAggregator agg(SpeculativeOpts(),
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 10), 50).ok());
  EXPECT_TRUE(results.empty());
  // Frontier passes 100: [0,100) speculates immediately instead of
  // waiting out the lateness allowance.
  ASSERT_TRUE(agg.Push(Tick("A", 20), 120).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].kind, ResultKind::kInsert);
  EXPECT_EQ(results[0].revision, 0);
  EXPECT_EQ(results[0].rows, 1);
  // Low watermark (250 - 100) passes 100: the same result is sealed.
  ASSERT_TRUE(agg.Push(Tick("A", 30), 250).ok());
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(results[1].kind, ResultKind::kFinal);
  EXPECT_EQ(results[1].window_start, 0);
  EXPECT_EQ(results[1].rows, 1);
  EXPECT_EQ(results[1].revision, 0);  // Never revised.
}

TEST(WindowedAggregatorTest, StragglerRetractsAndRevises) {
  std::vector<WindowResult> results;
  WindowedAggregator agg(SpeculativeOpts(),
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 10), 50).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 20), 120).ok());  // Speculative insert.
  ASSERT_EQ(results.size(), 1u);
  // Straggler into the already-emitted [0,100): retract + revised insert.
  ASSERT_TRUE(agg.Push(Tick("A", 30), 60).ok());
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[1].kind, ResultKind::kRetract);
  EXPECT_EQ(results[1].revision, 0);
  EXPECT_EQ(results[1].rows, 1);
  EXPECT_EQ(results[1].aggregates[1].second, Value::Double(10.0));  // Stale.
  EXPECT_EQ(results[2].kind, ResultKind::kInsert);
  EXPECT_EQ(results[2].revision, 1);
  EXPECT_EQ(results[2].rows, 2);
  EXPECT_EQ(results[2].aggregates[1].second, Value::Double(20.0));  // Revised.
  EXPECT_EQ(agg.retractions_emitted(), 1u);
  // The final seals the revised value.
  ASSERT_TRUE(agg.Push(Tick("A", 1), 250).ok());
  const WindowResult* final_result = nullptr;
  for (const auto& r : results) {
    if (r.kind == ResultKind::kFinal && r.window_start == 0) {
      final_result = &r;
    }
  }
  ASSERT_NE(final_result, nullptr);
  EXPECT_EQ(final_result->rows, 2);
  EXPECT_EQ(final_result->revision, 1);
}

TEST(WindowedAggregatorTest, FastLevelClosesAtFrontier) {
  WindowAggregatorOptions options = TumblingOpts(100);
  options.consistency = ConsistencyLevel::kFast;
  options.allowed_lateness_micros = 100;  // Ignored by kFast.
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  ASSERT_TRUE(agg.Push(Tick("A", 1), 150).ok());
  // kCorrect would admit this (lateness 100); kFast already closed.
  ASSERT_TRUE(agg.Push(Tick("A", 2), 60).ok());
  EXPECT_EQ(agg.late_dropped(), 1u);
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].rows, 1);
}

TEST(WindowedAggregatorTest, SlowSourceHoldsWindowsOpen) {
  WindowAggregatorOptions options = TumblingOpts(100);
  std::vector<WindowResult> results;
  WindowedAggregator agg(options,
                         [&](const WindowResult& r) { results.push_back(r); });
  // A source holds the merge back from its first appearance on.
  ASSERT_TRUE(agg.Push(Tick("A", 3), 20, "slow_feed").ok());
  ASSERT_TRUE(agg.Push(Tick("A", 1), 50, "fast_feed").ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 500, "fast_feed").ok());
  // The low watermark is the min across sources: slow_feed at 20 keeps
  // [0,100) open even though fast_feed raced to 500.
  EXPECT_TRUE(results.empty());
  EXPECT_GT(agg.watermarks().lag_micros(), 0);
  // slow_feed catches up via punctuation; [0,100) closes.
  ASSERT_TRUE(agg.Punctuate("slow_feed", 500).ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].window_start, 0);
  EXPECT_EQ(results[0].rows, 2);  // ts 20 and ts 50.
}

TEST(WindowedAggregatorTest, LatenessMetricsReachRegistry) {
  metrics::Counter* const counter =
      metrics::Registry::Default()->GetCounter("cq.late_dropped");
  const uint64_t before = counter->Value();
  WindowedAggregator agg(TumblingOpts(100), [](const WindowResult&) {});
  ASSERT_TRUE(agg.Push(Tick("A", 1), 150).ok());
  ASSERT_TRUE(agg.Push(Tick("A", 2), 50).ok());  // Dropped.
  EXPECT_EQ(counter->Value(), before + 1);
}

}  // namespace
}  // namespace edadb
