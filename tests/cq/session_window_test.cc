#include <vector>

#include "cq/window.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

SchemaPtr S() {
  return Schema::Make({
      {"user", ValueType::kString, false},
      {"bytes", ValueType::kInt64, false},
  });
}

Record Hit(const std::string& user, int64_t bytes) {
  return Record(S(), {Value::String(user), Value::Int64(bytes)});
}

SessionAggregatorOptions Opts(TimestampMicros gap, bool keyed = true) {
  SessionAggregatorOptions options;
  options.gap_micros = gap;
  if (keyed) options.key_column = "user";
  options.aggregates = {{Aggregate::Func::kCount, "", "hits"},
                        {Aggregate::Func::kSum, "bytes", "bytes"}};
  return options;
}

TEST(SessionAggregatorTest, GapSplitsSessions) {
  std::vector<WindowResult> sessions;
  SessionAggregator agg(Opts(100),
                        [&](const WindowResult& r) { sessions.push_back(r); });
  ASSERT_TRUE(agg.Push(Hit("u1", 10), 0).ok());
  ASSERT_TRUE(agg.Push(Hit("u1", 20), 50).ok());   // Same session.
  ASSERT_TRUE(agg.Push(Hit("u1", 30), 149).ok());  // Gap 99 <= 100: same.
  ASSERT_TRUE(agg.Push(Hit("u1", 40), 260).ok());  // Gap 111: new session.
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].window_start, 0);
  EXPECT_EQ(sessions[0].window_end, 249);  // last(149) + gap(100).
  EXPECT_EQ(sessions[0].rows, 3);
  EXPECT_EQ(sessions[0].aggregates[1].second, Value::Int64(60));
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[1].rows, 1);
  EXPECT_EQ(sessions[1].window_start, 260);
}

TEST(SessionAggregatorTest, KeysTrackIndependentSessions) {
  std::vector<WindowResult> sessions;
  SessionAggregator agg(Opts(100),
                        [&](const WindowResult& r) { sessions.push_back(r); });
  ASSERT_TRUE(agg.Push(Hit("a", 1), 0).ok());
  ASSERT_TRUE(agg.Push(Hit("b", 2), 10).ok());
  // a stays active via regular hits; b goes idle and closes.
  ASSERT_TRUE(agg.Push(Hit("a", 1), 90).ok());
  ASSERT_TRUE(agg.Push(Hit("a", 1), 180).ok());  // b's last=10+100 <= 180.
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].key.string_value(), "b");
  EXPECT_EQ(agg.open_sessions(), 1u);
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[1].key.string_value(), "a");
  EXPECT_EQ(sessions[1].rows, 3);
}

TEST(SessionAggregatorTest, GlobalSessionWhenUnkeyed) {
  std::vector<WindowResult> sessions;
  SessionAggregator agg(Opts(100, /*keyed=*/false),
                        [&](const WindowResult& r) { sessions.push_back(r); });
  ASSERT_TRUE(agg.Push(Hit("a", 1), 0).ok());
  ASSERT_TRUE(agg.Push(Hit("b", 2), 50).ok());  // Same global session.
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].rows, 2);
  EXPECT_TRUE(sessions[0].key.is_null());
}

TEST(SessionAggregatorTest, BackToBackSessionsBoundaryExactGap) {
  std::vector<WindowResult> sessions;
  SessionAggregator agg(Opts(100),
                        [&](const WindowResult& r) { sessions.push_back(r); });
  ASSERT_TRUE(agg.Push(Hit("u", 1), 0).ok());
  // Exactly at last + gap: the session is considered closed (watermark
  // test is <=), so this starts a new one.
  ASSERT_TRUE(agg.Push(Hit("u", 1), 100).ok());
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_EQ(sessions.size(), 2u);
}

TEST(SessionAggregatorTest, FlushIsIdempotent) {
  std::vector<WindowResult> sessions;
  SessionAggregator agg(Opts(100),
                        [&](const WindowResult& r) { sessions.push_back(r); });
  ASSERT_TRUE(agg.Push(Hit("u", 1), 0).ok());
  ASSERT_TRUE(agg.Flush().ok());
  ASSERT_TRUE(agg.Flush().ok());
  EXPECT_EQ(sessions.size(), 1u);
  EXPECT_EQ(agg.open_sessions(), 0u);
}

TEST(SessionAggregatorTest, MissingAggregateColumnErrors) {
  SessionAggregatorOptions options;
  options.gap_micros = 10;
  options.aggregates = {{Aggregate::Func::kSum, "nope", "s"}};
  SessionAggregator agg(options, [](const WindowResult&) {});
  EXPECT_FALSE(agg.Push(Hit("u", 1), 0).ok());
}

}  // namespace
}  // namespace edadb
