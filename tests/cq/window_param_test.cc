// Parameterized window-geometry sweep: for every (size, slide, keyed,
// recompute) combination, the emitted windows must agree with a brute
// force reference computed from the raw event log.

#include <map>
#include <tuple>

#include "common/random.h"
#include "cq/window.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({
      {"key", ValueType::kString, false},
      {"v", ValueType::kDouble, false},
  });
}

// (window size, slide, keyed, recompute_at_close)
using WindowCase = std::tuple<int64_t, int64_t, bool, bool>;

std::string CaseName(const testing::TestParamInfo<WindowCase>& info) {
  const auto& [size, slide, keyed, recompute] = info.param;
  return "Size" + std::to_string(size) + "_Slide" + std::to_string(slide) +
         (keyed ? "_Keyed" : "_Global") +
         (recompute ? "_Recompute" : "_Incremental");
}

class WindowParamTest : public testing::TestWithParam<WindowCase> {};

TEST_P(WindowParamTest, AgreesWithBruteForce) {
  const auto& [size, slide, keyed, recompute] = GetParam();

  WindowAggregatorOptions options;
  options.window_size_micros = size;
  options.slide_micros = slide;
  if (keyed) options.key_column = "key";
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kSum, "v", "total"},
                        {Aggregate::Func::kMin, "v", "lo"},
                        {Aggregate::Func::kMax, "v", "hi"}};
  options.recompute_at_close = recompute;

  struct Emitted {
    int64_t n;
    double total;
    double lo;
    double hi;
  };
  // (window_start, key) -> result.
  std::map<std::pair<TimestampMicros, std::string>, Emitted> emitted;
  WindowedAggregator agg(options, [&](const WindowResult& r) {
    Emitted e;
    e.n = r.aggregates[0].second.int64_value();
    e.total = r.aggregates[1].second.is_null()
                  ? 0
                  : r.aggregates[1].second.double_value();
    e.lo = r.aggregates[2].second.double_value();
    e.hi = r.aggregates[3].second.double_value();
    const std::string key =
        r.key.is_null() ? "" : r.key.string_value();
    ASSERT_TRUE(emitted.emplace(std::make_pair(r.window_start, key), e)
                    .second)
        << "duplicate window emission";
  });

  // Random event stream with strictly increasing timestamps.
  Random rng(static_cast<uint64_t>(size * 131 + slide * 17 + keyed * 3 +
                                   recompute));
  SchemaPtr schema = EventSchema();
  std::vector<std::tuple<TimestampMicros, std::string, double>> log;
  TimestampMicros ts = 0;
  for (int i = 0; i < 1500; ++i) {
    ts += 1 + static_cast<TimestampMicros>(rng.Uniform(9));
    const std::string key = keyed ? std::string(1, 'a' + rng.Uniform(3))
                                  : std::string("");
    const double v = rng.Normal(10, 4);
    log.emplace_back(ts, key, v);
    Record row(schema, {Value::String(key), Value::Double(v)});
    ASSERT_TRUE(agg.Push(row, ts).ok());
  }
  ASSERT_TRUE(agg.Flush().ok());

  // Brute force: every (window_start, key) bucket present in the log.
  std::map<std::pair<TimestampMicros, std::string>, Emitted> expected;
  for (const auto& [event_ts, key, v] : log) {
    TimestampMicros start = (event_ts / slide) * slide;
    for (; start > event_ts - size; start -= slide) {
      const std::string bucket_key = keyed ? key : "";
      auto [it, fresh] = expected.try_emplace(
          {start, bucket_key}, Emitted{0, 0, v, v});
      it->second.n += 1;
      it->second.total += v;
      it->second.lo = std::min(it->second.lo, v);
      it->second.hi = std::max(it->second.hi, v);
    }
  }

  ASSERT_EQ(emitted.size(), expected.size());
  for (const auto& [bucket, want] : expected) {
    auto it = emitted.find(bucket);
    ASSERT_NE(it, emitted.end())
        << "missing window start=" << bucket.first << " key="
        << bucket.second;
    EXPECT_EQ(it->second.n, want.n);
    EXPECT_NEAR(it->second.total, want.total, 1e-6);
    EXPECT_EQ(it->second.lo, want.lo);
    EXPECT_EQ(it->second.hi, want.hi);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WindowParamTest,
    testing::Combine(testing::Values<int64_t>(100, 400),
                     testing::Values<int64_t>(100, 50, 25),
                     testing::Bool(),   // Keyed.
                     testing::Bool()),  // Recompute ablation.
    CaseName);

}  // namespace
}  // namespace edadb
