#include "cq/watermark.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(WatermarkTrackerTest, UnsetUntilFirstObservation) {
  WatermarkTracker tracker;
  EXPECT_EQ(tracker.low_watermark(), WatermarkTracker::kUnset);
  EXPECT_EQ(tracker.frontier(), WatermarkTracker::kUnset);
  EXPECT_EQ(tracker.lag_micros(), 0);
  EXPECT_EQ(tracker.num_sources(), 0u);
}

TEST(WatermarkTrackerTest, SingleSourceTracksMax) {
  WatermarkTracker tracker;
  EXPECT_EQ(tracker.Observe("a", 100), 100);
  EXPECT_EQ(tracker.Observe("a", 300), 300);
  // Out-of-order observation never moves a source backwards.
  EXPECT_EQ(tracker.Observe("a", 200), 300);
  EXPECT_EQ(tracker.frontier(), 300);
  EXPECT_EQ(tracker.source_watermark("a"), 300);
}

TEST(WatermarkTrackerTest, LowWatermarkIsMinAcrossSources) {
  WatermarkTracker tracker;
  tracker.Observe("fast", 1000);
  tracker.Observe("slow", 100);
  EXPECT_EQ(tracker.low_watermark(), 100);
  EXPECT_EQ(tracker.frontier(), 1000);
  EXPECT_EQ(tracker.lag_micros(), 900);
  // The slow source advancing moves the merge.
  tracker.Observe("slow", 800);
  EXPECT_EQ(tracker.low_watermark(), 800);
  // The previous min holder advancing recomputes correctly.
  tracker.Observe("slow", 2000);
  EXPECT_EQ(tracker.low_watermark(), 1000);  // "fast" now holds the min.
}

TEST(WatermarkTrackerTest, AllowedLatenessSubtracts) {
  WatermarkTracker tracker(/*allowed_lateness_micros=*/50);
  tracker.Observe("a", 100);
  EXPECT_EQ(tracker.low_watermark(), 50);
  EXPECT_EQ(tracker.frontier(), 100);
  EXPECT_EQ(tracker.lag_micros(), 50);
}

TEST(WatermarkTrackerTest, PunctuationAdvancesWithoutPayload) {
  WatermarkTracker tracker;
  tracker.Observe("a", 100);
  tracker.Observe("b", 100);
  EXPECT_EQ(tracker.Punctuate("a", 500), 100);  // b still at 100.
  EXPECT_EQ(tracker.Punctuate("b", 500), 500);
}

TEST(WatermarkTrackerTest, ForgetSourceReleasesTheMerge) {
  WatermarkTracker tracker;
  tracker.Observe("alive", 1000);
  tracker.Observe("dead", 10);
  EXPECT_EQ(tracker.low_watermark(), 10);
  tracker.ForgetSource("dead");
  EXPECT_EQ(tracker.low_watermark(), 1000);
  EXPECT_EQ(tracker.num_sources(), 1u);
  // The frontier is history and survives.
  EXPECT_EQ(tracker.frontier(), 1000);
  // Forgetting the last source resets the merge but not the frontier.
  tracker.ForgetSource("alive");
  EXPECT_EQ(tracker.low_watermark(), WatermarkTracker::kUnset);
  EXPECT_EQ(tracker.frontier(), 1000);
}

TEST(WatermarkTrackerTest, HugeLatenessSaturatesInsteadOfUnderflowing) {
  WatermarkTracker tracker(INT64_MAX);
  tracker.Observe("a", 0);
  EXPECT_LT(tracker.low_watermark(), 0);
  EXPECT_GT(tracker.low_watermark(), WatermarkTracker::kUnset);
}

TEST(WatermarkTrackerTest, EnumNames) {
  EXPECT_EQ(ConsistencyLevelName(ConsistencyLevel::kFast), "fast");
  EXPECT_EQ(ConsistencyLevelName(ConsistencyLevel::kSpeculative),
            "speculative");
  EXPECT_EQ(ConsistencyLevelName(ConsistencyLevel::kCorrect), "correct");
  EXPECT_EQ(ResultKindName(ResultKind::kInsert), "insert");
  EXPECT_EQ(ResultKindName(ResultKind::kRetract), "retract");
  EXPECT_EQ(ResultKindName(ResultKind::kFinal), "final");
}

}  // namespace
}  // namespace edadb
