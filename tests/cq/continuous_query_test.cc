#include "cq/continuous_query.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr AlertsSchema() {
  return Schema::Make({
      {"alert_id", ValueType::kInt64, false},
      {"level", ValueType::kInt64, false},
  });
}

Record Alert(int64_t id, int64_t level) {
  return Record(AlertsSchema(), {Value::Int64(id), Value::Int64(level)});
}

class ContinuousQueryTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ASSERT_TRUE(db_->CreateTable("alerts", AlertsSchema()).ok());
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(ContinuousQueryTest, FirstPollPrimesWithoutEvents) {
  ASSERT_OK(db_->Insert("alerts", Alert(1, 5)).status());
  std::vector<RowChange> changes;
  ContinuousQueryWatcher watcher(
      db_.get(), QueryBuilder("alerts").Build(), {"alert_id"},
      [&](const RowChange& change) { changes.push_back(change); });
  EXPECT_EQ(*watcher.Poll(), 0u);  // Baseline, no events.
  EXPECT_TRUE(changes.empty());
  EXPECT_EQ(watcher.current().rows.size(), 1u);
}

TEST_F(ContinuousQueryTest, DetectsInsertUpdateDelete) {
  std::vector<std::string> log;
  ContinuousQueryWatcher watcher(
      db_.get(), QueryBuilder("alerts").Build(), {"alert_id"},
      [&](const RowChange& change) {
        log.push_back(std::string(RowChangeKindToString(change.kind)));
      });
  ASSERT_OK(watcher.Poll().status());
  const RowId row = *db_->Insert("alerts", Alert(1, 5));
  EXPECT_EQ(*watcher.Poll(), 1u);
  ASSERT_OK(db_->UpdateRow("alerts", row, Alert(1, 9)));
  EXPECT_EQ(*watcher.Poll(), 1u);
  ASSERT_OK(db_->DeleteRow("alerts", row));
  EXPECT_EQ(*watcher.Poll(), 1u);
  EXPECT_EQ(log, (std::vector<std::string>{"ADDED", "MODIFIED", "REMOVED"}));
}

TEST_F(ContinuousQueryTest, FilteredQueryOnlySeesMatchingChanges) {
  // Watching "level >= 5": a row crossing the threshold appears as an
  // ADD; dropping below, as a REMOVE — the tutorial's "change of the
  // result set is perceived as an event".
  std::vector<std::string> log;
  Query query = QueryBuilder("alerts").Where("level >= 5").Build();
  ContinuousQueryWatcher watcher(
      db_.get(), std::move(query), {"alert_id"},
      [&](const RowChange& change) {
        log.push_back(std::string(RowChangeKindToString(change.kind)));
      });
  ASSERT_OK(watcher.Poll().status());
  const RowId row = *db_->Insert("alerts", Alert(1, 2));  // Below: no event.
  EXPECT_EQ(*watcher.Poll(), 0u);
  ASSERT_OK(db_->UpdateRow("alerts", row, Alert(1, 7)));  // Crosses up.
  EXPECT_EQ(*watcher.Poll(), 1u);
  ASSERT_OK(db_->UpdateRow("alerts", row, Alert(1, 3)));  // Crosses down.
  EXPECT_EQ(*watcher.Poll(), 1u);
  EXPECT_EQ(log, (std::vector<std::string>{"ADDED", "REMOVED"}));
}

TEST_F(ContinuousQueryTest, NoChangesNoEvents) {
  ContinuousQueryWatcher watcher(
      db_.get(), QueryBuilder("alerts").Build(), {"alert_id"},
      [](const RowChange&) { FAIL() << "unexpected change"; });
  ASSERT_OK(watcher.Poll().status());
  EXPECT_EQ(*watcher.Poll(), 0u);
  EXPECT_EQ(*watcher.Poll(), 0u);
  EXPECT_EQ(watcher.polls(), 3u);
}

TEST_F(ContinuousQueryTest, AggregateQueryDiffsAsModification) {
  // Watching an aggregate: COUNT changes surface as kModified of the
  // single aggregate row (keyed on nothing -> whole row identity would
  // be add/remove; use empty group key via a constant key column).
  Query query = QueryBuilder("alerts").Count("n").Build();
  std::vector<RowChange> changes;
  ContinuousQueryWatcher watcher(
      db_.get(), std::move(query), {},
      [&](const RowChange& change) { changes.push_back(change); });
  ASSERT_OK(watcher.Poll().status());
  ASSERT_OK(db_->Insert("alerts", Alert(1, 1)).status());
  EXPECT_EQ(*watcher.Poll(), 2u);  // Old count row removed, new added.
}

TEST_F(ContinuousQueryTest, QueryErrorPropagates) {
  ContinuousQueryWatcher watcher(
      db_.get(), QueryBuilder("no_such_table").Build(), {},
      [](const RowChange&) {});
  EXPECT_TRUE(watcher.Poll().status().IsNotFound());
}

}  // namespace
}  // namespace edadb
