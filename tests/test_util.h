#ifndef EDADB_TESTS_TEST_UTIL_H_
#define EDADB_TESTS_TEST_UTIL_H_

#include <cstdlib>
#include <filesystem>
#include <string>

#include "gtest/gtest.h"

#include "common/result.h"
#include "common/status.h"

namespace edadb {

/// Creates a unique temp directory for one test and removes it on
/// destruction.
class TempDir {
 public:
  TempDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "edadb_test_XXXXXX")
                           .string();
    char* made = mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path_ = tmpl;
  }

  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace edadb

/// Gtest glue: assert an edadb::Status / Result is OK with a useful
/// message on failure.
#define ASSERT_OK(expr)                                     \
  do {                                                      \
    const auto& _s = (expr);                                \
    ASSERT_TRUE(_s.ok()) << "status: " << StatusOf(_s);     \
  } while (false)

#define EXPECT_OK(expr)                                     \
  do {                                                      \
    const auto& _s = (expr);                                \
    EXPECT_TRUE(_s.ok()) << "status: " << StatusOf(_s);     \
  } while (false)

namespace edadb {
inline const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}
}  // namespace edadb

#endif  // EDADB_TESTS_TEST_UTIL_H_
