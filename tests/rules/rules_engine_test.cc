#include "rules/rules_engine.h"

#include <map>

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class MapRow : public RowAccessor {
 public:
  std::map<std::string, Value> values;
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values.find(std::string(name));
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

class RulesEngineTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    engine_ = *RulesEngine::Attach(db_.get());
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<RulesEngine> engine_;
};

TEST_F(RulesEngineTest, AddEvaluateRemove) {
  ASSERT_OK(engine_->AddRule("hot", "temp > 30", "alert"));
  EXPECT_EQ(engine_->num_rules(), 1u);
  EXPECT_TRUE(engine_->AddRule("hot", "temp > 40", "x").IsAlreadyExists());
  MapRow event;
  event.values["temp"] = Value::Double(35.0);
  EXPECT_EQ(*engine_->Evaluate(event), (std::vector<std::string>{"hot"}));
  event.values["temp"] = Value::Double(25.0);
  EXPECT_TRUE(engine_->Evaluate(event)->empty());
  ASSERT_OK(engine_->RemoveRule("hot"));
  EXPECT_TRUE(engine_->RemoveRule("hot").IsNotFound());
  EXPECT_EQ(engine_->num_rules(), 0u);
}

TEST_F(RulesEngineTest, InvalidConditionRejectedWithoutSideEffects) {
  EXPECT_FALSE(engine_->AddRule("bad", "syntax >>>", "x").ok());
  EXPECT_EQ(engine_->num_rules(), 0u);
  EXPECT_TRUE(engine_->ListRules().empty());
}

TEST_F(RulesEngineTest, HandlersDispatchByActionPriorityOrder) {
  std::vector<std::string> calls;
  engine_->RegisterActionHandler(
      "page", [&](const Rule& rule, const RowAccessor&) {
        calls.push_back("page:" + rule.id);
      });
  engine_->RegisterActionHandler(
      "log", [&](const Rule& rule, const RowAccessor&) {
        calls.push_back("log:" + rule.id);
      });
  engine_->RegisterDefaultHandler(
      [&](const Rule& rule, const RowAccessor&) {
        calls.push_back("default:" + rule.id);
      });
  ASSERT_OK(engine_->AddRule("low", "x > 0", "log", /*priority=*/1));
  ASSERT_OK(engine_->AddRule("high", "x > 0", "page", /*priority=*/9));
  ASSERT_OK(engine_->AddRule("other", "x > 0", "unknown_action", 5));
  MapRow event;
  event.values["x"] = Value::Int64(1);
  const auto matched = *engine_->Evaluate(event);
  EXPECT_EQ(matched,
            (std::vector<std::string>{"high", "other", "low"}));
  EXPECT_EQ(calls, (std::vector<std::string>{"page:high", "default:other",
                                             "log:low"}));
}

TEST_F(RulesEngineTest, EnableDisable) {
  ASSERT_OK(engine_->AddRule("r", "x = 1", "a"));
  MapRow event;
  event.values["x"] = Value::Int64(1);
  EXPECT_EQ(engine_->Evaluate(event)->size(), 1u);
  ASSERT_OK(engine_->SetRuleEnabled("r", false));
  EXPECT_TRUE(engine_->Evaluate(event)->empty());
  ASSERT_OK(engine_->SetRuleEnabled("r", true));
  EXPECT_EQ(engine_->Evaluate(event)->size(), 1u);
  EXPECT_TRUE(engine_->SetRuleEnabled("ghost", true).IsNotFound());
}

TEST_F(RulesEngineTest, FindRuleReturnsCopy) {
  ASSERT_OK(engine_->AddRule("r", "x = 1", "route", 3));
  auto rule = engine_->FindRule("r");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->action, "route");
  EXPECT_EQ(rule->priority, 3);
  EXPECT_FALSE(engine_->FindRule("ghost").has_value());
}

TEST_F(RulesEngineTest, RulesPersistAcrossRestart) {
  ASSERT_OK(engine_->AddRule("keeper", "severity >= 5", "alert", 2));
  ASSERT_OK(engine_->AddRule("sleeper", "x = 1", "log"));
  ASSERT_OK(engine_->SetRuleEnabled("sleeper", false));
  engine_.reset();
  db_.reset();

  DatabaseOptions options;
  options.dir = dir_.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  db_ = *Database::Open(std::move(options));
  engine_ = *RulesEngine::Attach(db_.get());
  EXPECT_EQ(engine_->num_rules(), 2u);
  auto keeper = engine_->FindRule("keeper");
  ASSERT_TRUE(keeper.has_value());
  EXPECT_EQ(keeper->action, "alert");
  EXPECT_EQ(keeper->priority, 2);
  // Disabled state persisted too.
  MapRow event;
  event.values["x"] = Value::Int64(1);
  event.values["severity"] = Value::Int64(9);
  EXPECT_EQ(*engine_->Evaluate(event),
            (std::vector<std::string>{"keeper"}));
}

TEST_F(RulesEngineTest, NaiveMatcherVariantWorks) {
  auto naive_engine =
      *RulesEngine::Attach(db_.get(), RulesEngine::MatcherKind::kNaive);
  // The __rules table already exists (from SetUp's engine); both engines
  // share persisted rules.
  ASSERT_OK(naive_engine->AddRule("r", "y < 0", "a"));
  MapRow event;
  event.values["y"] = Value::Int64(-1);
  EXPECT_EQ(naive_engine->Evaluate(event)->size(), 1u);
}

}  // namespace
}  // namespace edadb
