#include "rules/interval_index.h"

#include <limits>
#include <set>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::set<intptr_t> StabSet(const IntervalIndex& index, double v) {
  std::set<intptr_t> tags;
  index.Stab(v, [&](void* tag) {
    tags.insert(reinterpret_cast<intptr_t>(tag));
  });
  return tags;
}

void* Tag(intptr_t id) { return reinterpret_cast<void*>(id); }

TEST(IntervalIndexTest, EmptyIndex) {
  IntervalIndex index;
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(StabSet(index, 0).empty());
  EXPECT_FALSE(index.Remove(0, 1, Tag(1)));
}

TEST(IntervalIndexTest, SingleIntervalBounds) {
  IntervalIndex index;
  index.Insert({10, true, 20, true, Tag(1)});
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(StabSet(index, 9.99).empty());
  EXPECT_EQ(StabSet(index, 10), std::set<intptr_t>{1});
  EXPECT_EQ(StabSet(index, 15), std::set<intptr_t>{1});
  EXPECT_EQ(StabSet(index, 20), std::set<intptr_t>{1});
  EXPECT_TRUE(StabSet(index, 20.01).empty());
}

TEST(IntervalIndexTest, ExclusiveBounds) {
  IntervalIndex index;
  index.Insert({10, false, 20, false, Tag(1)});
  EXPECT_TRUE(StabSet(index, 10).empty());
  EXPECT_EQ(StabSet(index, 10.01), std::set<intptr_t>{1});
  EXPECT_TRUE(StabSet(index, 20).empty());
}

TEST(IntervalIndexTest, HalfOpenToInfinity) {
  IntervalIndex index;
  index.Insert({5, true, kInf, true, Tag(1)});   // x >= 5.
  index.Insert({-kInf, true, 5, false, Tag(2)}); // x < 5.
  EXPECT_EQ(StabSet(index, 4.9), std::set<intptr_t>{2});
  EXPECT_EQ(StabSet(index, 5), std::set<intptr_t>{1});
  EXPECT_EQ(StabSet(index, 1e12), std::set<intptr_t>{1});
  EXPECT_EQ(StabSet(index, -1e12), std::set<intptr_t>{2});
}

TEST(IntervalIndexTest, OverlappingIntervals) {
  IntervalIndex index;
  index.Insert({0, true, 10, true, Tag(1)});
  index.Insert({5, true, 15, true, Tag(2)});
  index.Insert({8, true, 9, true, Tag(3)});
  EXPECT_EQ(StabSet(index, 3), (std::set<intptr_t>{1}));
  EXPECT_EQ(StabSet(index, 7), (std::set<intptr_t>{1, 2}));
  EXPECT_EQ(StabSet(index, 8.5), (std::set<intptr_t>{1, 2, 3}));
  EXPECT_EQ(StabSet(index, 12), (std::set<intptr_t>{2}));
}

TEST(IntervalIndexTest, RemoveSpecificEntry) {
  IntervalIndex index;
  index.Insert({0, true, 10, true, Tag(1)});
  index.Insert({0, true, 10, true, Tag(2)});  // Same bounds, other tag.
  EXPECT_TRUE(index.Remove(0, 10, Tag(1)));
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(StabSet(index, 5), std::set<intptr_t>{2});
  EXPECT_FALSE(index.Remove(0, 10, Tag(1)));  // Already gone.
  EXPECT_TRUE(index.Remove(0, 10, Tag(2)));
  EXPECT_TRUE(index.empty());
}

TEST(IntervalIndexTest, DepthStaysLogarithmicOnRandomInput) {
  IntervalIndex index;
  Random rng(12);
  for (int i = 0; i < 10000; ++i) {
    const double lo = rng.UniformDouble(0, 1000);
    index.Insert({lo, true, lo + rng.UniformDouble(0, 50), true, Tag(i)});
  }
  EXPECT_EQ(index.size(), 10000u);
  // Random centers: depth should be far below linear.
  EXPECT_LT(index.depth(), 60);
}

/// Property: the tree agrees with brute force under random
/// insert/remove/stab workloads.
TEST(IntervalIndexProperty, AgreesWithBruteForce) {
  Random rng(20070614);
  IntervalIndex index;
  struct Ref {
    IntervalIndex::Entry entry;
    intptr_t id;
  };
  std::vector<Ref> reference;
  intptr_t next_id = 1;

  for (int step = 0; step < 5000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 4 || reference.empty()) {
      IntervalIndex::Entry entry;
      entry.lo = rng.UniformDouble(-100, 100);
      entry.hi = entry.lo + rng.UniformDouble(0, 40);
      entry.lo_inclusive = rng.OneIn(2);
      entry.hi_inclusive = rng.OneIn(2);
      entry.tag = Tag(next_id);
      index.Insert(entry);
      reference.push_back({entry, next_id});
      ++next_id;
    } else if (action < 6) {
      const size_t victim = rng.Uniform(reference.size());
      const Ref ref = reference[victim];
      EXPECT_TRUE(index.Remove(ref.entry.lo, ref.entry.hi, Tag(ref.id)));
      reference.erase(reference.begin() + static_cast<long>(victim));
    } else {
      const double v = rng.UniformDouble(-120, 120);
      std::set<intptr_t> expected;
      for (const Ref& ref : reference) {
        if (ref.entry.Contains(v)) expected.insert(ref.id);
      }
      ASSERT_EQ(StabSet(index, v), expected) << "step " << step;
    }
    ASSERT_EQ(index.size(), reference.size());
  }
}

}  // namespace
}  // namespace edadb
