// Property test: the IndexedMatcher and the NaiveMatcher must agree on
// every event for every rule set — including under churn (interleaved
// adds/removes). This is the correctness contract behind the E4/E5
// performance claims.

#include <map>
#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "gtest/gtest.h"
#include "rules/indexed_matcher.h"
#include "rules/matcher.h"

namespace edadb {
namespace {

class MapRow : public RowAccessor {
 public:
  std::map<std::string, Value> values;
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values.find(std::string(name));
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

const char* const kAttrs[] = {"a", "b", "c", "d", "s"};
const char* const kStrings[] = {"x", "y", "z"};

/// Random conjunct over one attribute. Mixes indexable and residual
/// shapes.
std::string RandomConjunct(Random* rng) {
  const std::string attr = kAttrs[rng->Uniform(4)];  // Numeric attrs.
  switch (rng->Uniform(8)) {
    case 0:
      return attr + " = " + std::to_string(rng->UniformInt(0, 9));
    case 1:
      return attr + " > " + std::to_string(rng->UniformInt(0, 9));
    case 2:
      return attr + " <= " + std::to_string(rng->UniformInt(0, 9));
    case 3:
      return attr + " BETWEEN " + std::to_string(rng->UniformInt(0, 5)) +
             " AND " + std::to_string(rng->UniformInt(5, 10));
    case 4:
      return attr + " IN (" + std::to_string(rng->UniformInt(0, 9)) + ", " +
             std::to_string(rng->UniformInt(0, 9)) + ")";
    case 5:
      return std::string("s = '") + kStrings[rng->Uniform(3)] + "'";
    case 6:  // Residual: OR inside.
      return "(" + attr + " = " + std::to_string(rng->UniformInt(0, 9)) +
             " OR s = '" + kStrings[rng->Uniform(3)] + "')";
    default:  // Residual: inequality.
      return attr + " != " + std::to_string(rng->UniformInt(0, 9));
  }
}

std::string RandomCondition(Random* rng) {
  const size_t conjuncts = rng->Uniform(3) + 1;
  std::vector<std::string> parts;
  for (size_t i = 0; i < conjuncts; ++i) parts.push_back(RandomConjunct(rng));
  return Join(parts, " AND ");
}

MapRow RandomEvent(Random* rng) {
  MapRow event;
  for (int i = 0; i < 4; ++i) {
    if (rng->OneIn(5)) continue;  // Attribute sometimes absent.
    if (rng->OneIn(4)) {
      event.values[kAttrs[i]] =
          Value::Double(static_cast<double>(rng->UniformInt(0, 20)) / 2);
    } else {
      event.values[kAttrs[i]] = Value::Int64(rng->UniformInt(0, 10));
    }
  }
  if (!rng->OneIn(4)) {
    event.values["s"] = Value::String(kStrings[rng->Uniform(3)]);
  }
  return event;
}

std::set<std::string> MatchSet(RuleMatcher* matcher,
                               const RowAccessor& event) {
  std::vector<const Rule*> matched;
  matcher->Match(event, &matched);
  std::set<std::string> ids;
  for (const Rule* rule : matched) ids.insert(rule->id);
  return ids;
}

TEST(MatcherEquivalenceProperty, StaticRuleSets) {
  Random rng(1169);  // Paper's first page number.
  for (int trial = 0; trial < 20; ++trial) {
    NaiveMatcher naive;
    IndexedMatcher indexed;
    const int num_rules = 50;
    for (int i = 0; i < num_rules; ++i) {
      const std::string condition = RandomCondition(&rng);
      Rule rule;
      rule.id = "r" + std::to_string(i);
      rule.condition = *Predicate::Compile(condition);
      ASSERT_TRUE(naive.AddRule(rule).ok());
      ASSERT_TRUE(indexed.AddRule(rule).ok());
    }
    for (int e = 0; e < 100; ++e) {
      MapRow event = RandomEvent(&rng);
      const auto expected = MatchSet(&naive, event);
      const auto actual = MatchSet(&indexed, event);
      if (actual != expected) {
        std::string detail = "event:";
        for (const auto& [k, v] : event.values) {
          detail += " " + k + "=" + v.ToString();
        }
        detail += "\ndiffering rules:";
        for (const auto& id : actual) {
          if (expected.count(id) == 0) {
            detail += "\n  indexed-only " + id + ": " +
                      naive.GetRule(id)->condition.source();
          }
        }
        for (const auto& id : expected) {
          if (actual.count(id) == 0) {
            detail += "\n  naive-only " + id + ": " +
                      naive.GetRule(id)->condition.source();
          }
        }
        FAIL() << "trial " << trial << " event " << e << "\n" << detail;
      }
    }
  }
}

TEST(MatcherEquivalenceProperty, UnderChurn) {
  Random rng(1170);  // Paper's second page number.
  NaiveMatcher naive;
  IndexedMatcher indexed;
  std::set<std::string> live_ids;
  int next_id = 0;

  for (int step = 0; step < 2000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 3 || live_ids.empty()) {
      // Add.
      const std::string id = "r" + std::to_string(next_id++);
      Rule rule;
      rule.id = id;
      rule.condition = *Predicate::Compile(RandomCondition(&rng));
      ASSERT_TRUE(naive.AddRule(rule).ok());
      ASSERT_TRUE(indexed.AddRule(rule).ok());
      live_ids.insert(id);
    } else if (action < 5) {
      // Remove a random live rule.
      auto it = live_ids.begin();
      std::advance(it, rng.Uniform(live_ids.size()));
      ASSERT_TRUE(naive.RemoveRule(*it).ok());
      ASSERT_TRUE(indexed.RemoveRule(*it).ok());
      live_ids.erase(it);
    } else {
      // Match.
      MapRow event = RandomEvent(&rng);
      const auto expected = MatchSet(&naive, event);
      const auto actual = MatchSet(&indexed, event);
      ASSERT_EQ(actual, expected)
          << "step " << step << " with " << live_ids.size() << " rules";
    }
    ASSERT_EQ(naive.size(), indexed.size());
  }
}

}  // namespace
}  // namespace edadb
