// The event-time wiring into the rules service (DESIGN.md §15): window
// revisions and pattern matches flow through StreamRuleBridge as flat
// events, and the revision kind is queryable — a rule can react
// specifically to a retraction ("a result we already acted on was
// wrong").
#include "rules/stream_bridge.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "cq/pattern.h"
#include "cq/window.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr TickSchema() {
  return Schema::Make({
      {"kind", ValueType::kString, false},
      {"value", ValueType::kDouble, false},
  });
}

Record Tick(const std::string& kind, double value) {
  return Record(TickSchema(), {Value::String(kind), Value::Double(value)});
}

class StreamBridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    engine_ = *RulesEngine::Attach(db_.get());
    engine_->RegisterDefaultHandler(
        [this](const Rule& rule, const RowAccessor&) {
          fired_.push_back(rule.id);
        });
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<RulesEngine> engine_;
  std::vector<std::string> fired_;
};

TEST_F(StreamBridgeTest, WindowRetractionFiresRule) {
  ASSERT_OK(engine_->AddRule("stale_result", "kind = 'retract'", "alert"));
  ASSERT_OK(engine_->AddRule("big_window", "kind = 'final' AND n >= 2",
                             "log"));
  StreamRuleBridge bridge(engine_.get());

  WindowAggregatorOptions options;
  options.window_size_micros = 100;
  options.aggregates = {{Aggregate::Func::kCount, "", "n"},
                        {Aggregate::Func::kSum, "value", "total"}};
  options.consistency = ConsistencyLevel::kSpeculative;
  options.allowed_lateness_micros = 1000;
  WindowedAggregator agg(options, bridge.WindowCallback());

  ASSERT_OK(agg.Push(Tick("ORDER", 10), 10));
  // Frontier passes [0, 100): speculative insert for that window.
  ASSERT_OK(agg.Push(Tick("ORDER", 30), 150));
  // Straggler revises the already-published window: retract + insert.
  ASSERT_OK(agg.Push(Tick("ORDER", 20), 20));
  ASSERT_OK(agg.Flush());

  EXPECT_EQ(agg.retractions_emitted(), 1u);
  EXPECT_EQ(bridge.retractions_forwarded(), 1u);
  EXPECT_EQ(bridge.dispatch_errors(), 0u);
  // The retraction matched its rule exactly once; the final [0, 100)
  // revision (2 rows) matched the threshold rule.
  EXPECT_EQ(std::count(fired_.begin(), fired_.end(), "stale_result"), 1);
  EXPECT_GE(std::count(fired_.begin(), fired_.end(), "big_window"), 1);
}

TEST_F(StreamBridgeTest, WindowResultExposesAggregateAliases) {
  ASSERT_OK(engine_->AddRule("hot", "total > 50 AND kind = 'final'",
                             "alert"));
  StreamRuleBridge bridge(engine_.get());

  WindowAggregatorOptions options;
  options.window_size_micros = 100;
  options.aggregates = {{Aggregate::Func::kSum, "value", "total"}};
  WindowedAggregator agg(options, bridge.WindowCallback());

  ASSERT_OK(agg.Push(Tick("A", 40), 10));
  ASSERT_OK(agg.Push(Tick("A", 30), 20));
  ASSERT_OK(agg.Push(Tick("A", 5), 150));
  ASSERT_OK(agg.Flush());

  EXPECT_EQ(fired_, (std::vector<std::string>{"hot"}));
  EXPECT_EQ(bridge.forwarded(), 2u);
}

TEST_F(StreamBridgeTest, PatternAbsenceRetractionFiresRule) {
  ASSERT_OK(engine_->AddRule(
      "revoked_clean",
      "kind = 'retract' AND pattern = 'paid_clean'", "alert"));
  StreamRuleBridge bridge(engine_.get());

  PatternSpec spec;
  spec.name = "paid_clean";
  PatternStep order;
  order.name = "order";
  order.condition = *Predicate::Compile("kind = 'ORDER'");
  PatternStep no_fail;
  no_fail.name = "no_fail";
  no_fail.condition = *Predicate::Compile("kind = 'FAIL'");
  no_fail.negated = true;
  spec.steps = {order, no_fail};
  spec.within_micros = 1000;
  spec.consistency = ConsistencyLevel::kSpeculative;
  spec.allowed_lateness_micros = 500;
  auto matcher = PatternMatcher::Create(spec, bridge.PatternCallback());
  ASSERT_OK(matcher.status());

  ASSERT_OK((*matcher)->Push(Tick("ORDER", 1), 100));
  // Frontier passes the 1100 deadline: speculative "no failure" match.
  ASSERT_OK((*matcher)->Push(Tick("NOISE", 0), 1200));
  // A straggler failure inside the lateness allowance refutes it.
  ASSERT_OK((*matcher)->Push(Tick("FAIL", 0), 800));
  ASSERT_OK((*matcher)->Flush());

  EXPECT_EQ((*matcher)->retractions_emitted(), 1u);
  EXPECT_EQ(bridge.retractions_forwarded(), 1u);
  EXPECT_EQ(fired_, (std::vector<std::string>{"revoked_clean"}));
}

TEST_F(StreamBridgeTest, OnWindowResultReturnsMatchedIds) {
  ASSERT_OK(engine_->AddRule("r1", "rows > 5", "a"));
  StreamRuleBridge bridge(engine_.get());
  WindowResult result;
  result.window_start = 0;
  result.window_end = 100;
  result.rows = 9;
  result.kind = ResultKind::kFinal;
  auto matched = bridge.OnWindowResult(result);
  ASSERT_OK(matched.status());
  EXPECT_EQ(*matched, (std::vector<std::string>{"r1"}));
  EXPECT_EQ(bridge.forwarded(), 1u);
  EXPECT_EQ(bridge.retractions_forwarded(), 0u);
}

}  // namespace
}  // namespace edadb
