#include <map>

#include "gtest/gtest.h"
#include "rules/indexed_matcher.h"
#include "rules/matcher.h"

namespace edadb {
namespace {

class MapRow : public RowAccessor {
 public:
  std::map<std::string, Value> values;
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values.find(std::string(name));
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

Rule MakeRule(const std::string& id, const std::string& condition,
              int64_t priority = 0) {
  Rule rule;
  rule.id = id;
  rule.condition = *Predicate::Compile(condition);
  rule.priority = priority;
  return rule;
}

std::vector<std::string> MatchIds(RuleMatcher* matcher,
                                  const RowAccessor& event) {
  std::vector<const Rule*> matched;
  matcher->Match(event, &matched);
  std::vector<std::string> ids;
  for (const Rule* rule : matched) ids.push_back(rule->id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

template <typename T>
class MatcherTest : public testing::Test {
 protected:
  T matcher_;
};

using MatcherTypes = testing::Types<NaiveMatcher, IndexedMatcher>;
TYPED_TEST_SUITE(MatcherTest, MatcherTypes);

TYPED_TEST(MatcherTest, AddRemoveLifecycle) {
  EXPECT_EQ(this->matcher_.size(), 0u);
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("r1", "x = 1")).ok());
  EXPECT_TRUE(
      this->matcher_.AddRule(MakeRule("r1", "x = 2")).IsAlreadyExists());
  EXPECT_EQ(this->matcher_.size(), 1u);
  EXPECT_NE(this->matcher_.GetRule("r1"), nullptr);
  EXPECT_EQ(this->matcher_.GetRule("ghost"), nullptr);
  ASSERT_TRUE(this->matcher_.RemoveRule("r1").ok());
  EXPECT_TRUE(this->matcher_.RemoveRule("r1").IsNotFound());
  EXPECT_EQ(this->matcher_.size(), 0u);
}

TYPED_TEST(MatcherTest, RejectsInvalidRules) {
  Rule nameless;
  nameless.condition = *Predicate::Compile("TRUE");
  EXPECT_TRUE(this->matcher_.AddRule(nameless).IsInvalidArgument());
  Rule no_condition;
  no_condition.id = "x";
  EXPECT_TRUE(this->matcher_.AddRule(no_condition).IsInvalidArgument());
}

TYPED_TEST(MatcherTest, EqualityMatching) {
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("east", "region = 'east'")).ok());
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("west", "region = 'west'")).ok());
  MapRow event;
  event.values["region"] = Value::String("east");
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"east"}));
}

TYPED_TEST(MatcherTest, ConjunctionRequiresAllParts) {
  ASSERT_TRUE(this->matcher_
                  .AddRule(MakeRule(
                      "both", "region = 'east' AND severity >= 5"))
                  .ok());
  MapRow event;
  event.values["region"] = Value::String("east");
  event.values["severity"] = Value::Int64(3);
  EXPECT_TRUE(MatchIds(&this->matcher_, event).empty());
  event.values["severity"] = Value::Int64(7);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"both"}));
}

TYPED_TEST(MatcherTest, RangeMatching) {
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("hot", "temp > 30")).ok());
  ASSERT_TRUE(
      this->matcher_.AddRule(MakeRule("mild", "temp BETWEEN 15 AND 30")).ok());
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("cold", "temp < 15")).ok());
  MapRow event;
  event.values["temp"] = Value::Double(22.0);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"mild"}));
  event.values["temp"] = Value::Double(30.0);  // Boundary: BETWEEN incl.
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"mild"}));
  event.values["temp"] = Value::Double(30.5);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"hot"}));
}

TYPED_TEST(MatcherTest, InListMatching) {
  ASSERT_TRUE(this->matcher_
                  .AddRule(MakeRule("coast", "state IN ('CA', 'OR', 'WA')"))
                  .ok());
  MapRow event;
  event.values["state"] = Value::String("OR");
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"coast"}));
  event.values["state"] = Value::String("TX");
  EXPECT_TRUE(MatchIds(&this->matcher_, event).empty());
}

TYPED_TEST(MatcherTest, ResidualPredicates) {
  ASSERT_TRUE(this->matcher_
                  .AddRule(MakeRule("complex",
                                    "kind = 'alert' AND (msg LIKE '%leak%' "
                                    "OR severity > 8)"))
                  .ok());
  MapRow event;
  event.values["kind"] = Value::String("alert");
  event.values["msg"] = Value::String("gas leak detected");
  event.values["severity"] = Value::Int64(3);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"complex"}));
  event.values["msg"] = Value::String("all clear");
  EXPECT_TRUE(MatchIds(&this->matcher_, event).empty());
  event.values["severity"] = Value::Int64(9);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"complex"}));
}

TYPED_TEST(MatcherTest, MissingAttributeMeansNoMatch) {
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("r", "x = 1")).ok());
  MapRow empty;
  EXPECT_TRUE(MatchIds(&this->matcher_, empty).empty());
}

TYPED_TEST(MatcherTest, DisabledRulesNeverMatch) {
  Rule rule = MakeRule("off", "TRUE");
  rule.enabled = false;
  ASSERT_TRUE(this->matcher_.AddRule(std::move(rule)).ok());
  MapRow event;
  EXPECT_TRUE(MatchIds(&this->matcher_, event).empty());
}

TYPED_TEST(MatcherTest, PureScanRules) {
  // No indexable conjunct at all: OR at the top.
  ASSERT_TRUE(this->matcher_
                  .AddRule(MakeRule("either", "a = 1 OR b = 2"))
                  .ok());
  MapRow event;
  event.values["b"] = Value::Int64(2);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"either"}));
}

TYPED_TEST(MatcherTest, RemovalStopsMatching) {
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("r1", "x = 1")).ok());
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("r2", "x > 0")).ok());
  ASSERT_TRUE(this->matcher_.AddRule(MakeRule("r3", "x = 1 OR y = 1")).ok());
  MapRow event;
  event.values["x"] = Value::Int64(1);
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"r1", "r2", "r3"}));
  ASSERT_TRUE(this->matcher_.RemoveRule("r1").ok());
  ASSERT_TRUE(this->matcher_.RemoveRule("r3").ok());
  EXPECT_EQ(MatchIds(&this->matcher_, event),
            (std::vector<std::string>{"r2"}));
}

TEST(IndexedMatcherTest, StatsReflectDecomposition) {
  IndexedMatcher matcher;
  ASSERT_TRUE(matcher.AddRule(MakeRule("eq", "a = 1 AND b = 2")).ok());
  ASSERT_TRUE(matcher.AddRule(MakeRule("range", "c > 5")).ok());
  ASSERT_TRUE(matcher.AddRule(MakeRule("in", "d IN (1, 2, 3)")).ok());
  ASSERT_TRUE(matcher.AddRule(MakeRule("scan", "a = 1 OR b = 2")).ok());
  const IndexedMatcher::Stats stats = matcher.GetStats();
  EXPECT_EQ(stats.total_rules, 4u);
  // Single-access-predicate: "eq" registers ONE of its two equality
  // conjuncts; "in" registers its 3 members (one conjunct).
  EXPECT_EQ(stats.eq_entries, 4u);
  EXPECT_EQ(stats.range_entries, 1u);
  EXPECT_EQ(stats.scan_rules, 1u);
  ASSERT_TRUE(matcher.RemoveRule("in").ok());
  EXPECT_EQ(matcher.GetStats().eq_entries, 1u);
}

TEST(IndexedMatcherTest, NumericCrossTypeEquality) {
  IndexedMatcher matcher;
  ASSERT_TRUE(matcher.AddRule(MakeRule("r", "price = 10")).ok());
  MapRow event;
  event.values["price"] = Value::Double(10.0);  // Double vs int literal.
  std::vector<const Rule*> matched;
  matcher.Match(event, &matched);
  EXPECT_EQ(matched.size(), 1u);
}

TEST(IndexedMatcherTest, ExclusiveRangeBoundaries) {
  IndexedMatcher matcher;
  ASSERT_TRUE(matcher.AddRule(MakeRule("gt", "x > 10")).ok());
  ASSERT_TRUE(matcher.AddRule(MakeRule("ge", "x >= 10")).ok());
  ASSERT_TRUE(matcher.AddRule(MakeRule("lt", "x < 10")).ok());
  ASSERT_TRUE(matcher.AddRule(MakeRule("le", "x <= 10")).ok());
  MapRow event;
  event.values["x"] = Value::Int64(10);
  EXPECT_EQ(MatchIds(&matcher, event),
            (std::vector<std::string>{"ge", "le"}));
}

}  // namespace
}  // namespace edadb
