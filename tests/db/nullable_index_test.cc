// Correctness of indexes over nullable columns: NULLs are not indexed
// (they can never satisfy an indexable comparison), and the planner
// must still answer IS NULL / OR-shaped predicates correctly via scan.

#include "db/database.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class NullableIndexTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    schema_ = Schema::Make({
        {"id", ValueType::kInt64, false},
        {"score", ValueType::kInt64, true},  // Nullable + indexed.
    });
    ASSERT_TRUE(db_->CreateTable("t", schema_).ok());
    ASSERT_TRUE(db_->CreateIndex("t", "score", false).ok());
    Insert(1, Value::Int64(10));
    Insert(2, Value::Null());
    Insert(3, Value::Int64(20));
    Insert(4, Value::Null());
    Insert(5, Value::Int64(10));
  }

  void Insert(int64_t id, Value score) {
    ASSERT_TRUE(db_->Insert("t", Record(schema_, {Value::Int64(id),
                                                  std::move(score)}))
                    .ok());
  }

  size_t Count(const std::string& where) {
    auto result = db_->Execute(QueryBuilder("t").Where(where).Build());
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->rows.size() : 0;
  }

  TempDir dir_;
  SchemaPtr schema_;
  std::unique_ptr<Database> db_;
};

TEST_F(NullableIndexTest, NullsExcludedFromIndexEntries) {
  const BTreeIndex* index = (*db_->GetTable("t"))->GetIndex("score");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), 3u);  // Only the non-NULL scores.
}

TEST_F(NullableIndexTest, IndexScanNeverReturnsNullRows) {
  EXPECT_EQ(Count("score = 10"), 2u);
  EXPECT_EQ(Count("score > 5"), 3u);
  EXPECT_EQ(Count("score < 100"), 3u);  // NULLs never compare.
}

TEST_F(NullableIndexTest, IsNullAnsweredByScan) {
  EXPECT_EQ(Count("score IS NULL"), 2u);
  EXPECT_EQ(Count("score IS NOT NULL"), 3u);
  // The planner must not have used the index for IS NULL.
  auto plan = *db_->Explain(
      QueryBuilder("t").Where("score IS NULL").Build());
  EXPECT_NE(plan.find("full scan"), std::string::npos);
}

TEST_F(NullableIndexTest, OrWithNullBranchUsesScan) {
  EXPECT_EQ(Count("score = 10 OR score IS NULL"), 4u);
}

TEST_F(NullableIndexTest, UpdatesBetweenNullAndValueMaintainIndex) {
  // id=2: NULL -> 30.
  ASSERT_TRUE(db_->UpdateWhere("t", *Predicate::Compile("id = 2"),
                               [](Record* row) {
                                 return row->Set("score", Value::Int64(30));
                               })
                  .ok());
  // id=1: 10 -> NULL.
  ASSERT_TRUE(db_->UpdateWhere("t", *Predicate::Compile("id = 1"),
                               [](Record* row) {
                                 return row->Set("score", Value::Null());
                               })
                  .ok());
  const BTreeIndex* index = (*db_->GetTable("t"))->GetIndex("score");
  EXPECT_EQ(index->size(), 3u);
  EXPECT_EQ(Count("score = 30"), 1u);
  EXPECT_EQ(Count("score = 10"), 1u);
  EXPECT_EQ(Count("score IS NULL"), 2u);
}

TEST_F(NullableIndexTest, UniqueIndexAllowsManyNulls) {
  ASSERT_TRUE(db_->CreateTable(
                     "u", Schema::Make({{"k", ValueType::kInt64, true}}))
                  .ok());
  ASSERT_TRUE(db_->CreateIndex("u", "k", /*unique=*/true).ok());
  SchemaPtr u_schema = (*db_->GetTable("u"))->schema();
  // SQL-standard-ish: NULL does not participate in uniqueness.
  EXPECT_TRUE(db_->Insert("u", Record(u_schema, {Value::Null()})).ok());
  EXPECT_TRUE(db_->Insert("u", Record(u_schema, {Value::Null()})).ok());
  EXPECT_TRUE(db_->Insert("u", Record(u_schema, {Value::Int64(1)})).ok());
  EXPECT_TRUE(db_->Insert("u", Record(u_schema, {Value::Int64(1)}))
                  .status()
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace edadb
