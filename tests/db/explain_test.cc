#include "db/database.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class ExplainTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ASSERT_TRUE(db_->CreateTable(
                       "t", Schema::Make({{"a", ValueType::kInt64, false},
                                          {"b", ValueType::kString, true}}))
                    .ok());
    ASSERT_TRUE(db_->CreateIndex("t", "a", false).ok());
    for (int i = 0; i < 7; ++i) {
      ASSERT_TRUE(db_->Insert("t", Record(db_->GetTable("t").value()->schema(),
                                          {Value::Int64(i),
                                           Value::String("x")}))
                      .ok());
    }
  }

  std::string Explain(const std::string& where) {
    QueryBuilder builder("t");
    if (!where.empty()) builder.Where(where);
    auto result = db_->Explain(builder.Build());
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? *result : "";
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(ExplainTest, FullScanWithoutWhere) {
  EXPECT_EQ(Explain(""), "full scan of t (7 rows)");
}

TEST_F(ExplainTest, FullScanWithUnindexablePredicate) {
  EXPECT_EQ(Explain("b LIKE 'x%'"), "full scan of t (7 rows) + filter");
}

TEST_F(ExplainTest, EqualityUsesIndex) {
  EXPECT_EQ(Explain("a = 3"), "index scan on t.a [3, 3]");
}

TEST_F(ExplainTest, RangeBoundsRendered) {
  EXPECT_EQ(Explain("a > 2"), "index scan on t.a (2, +inf)");
  EXPECT_EQ(Explain("a <= 5"), "index scan on t.a (-inf, 5]");
  EXPECT_EQ(Explain("a BETWEEN 1 AND 4"), "index scan on t.a [1, 4]");
}

TEST_F(ExplainTest, ResidualNoted) {
  EXPECT_EQ(Explain("a = 3 AND b = 'x'"),
            "index scan on t.a [3, 3] + residual filter");
}

TEST_F(ExplainTest, UnindexedColumnFallsBackToScan) {
  EXPECT_EQ(Explain("b = 'x'"), "full scan of t (7 rows) + filter");
}

TEST_F(ExplainTest, ErrorsPropagate) {
  Query ghost = QueryBuilder("ghost").Build();
  EXPECT_TRUE(db_->Explain(ghost).status().IsNotFound());
}

}  // namespace
}  // namespace edadb
