#include "db/resultset_diff.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

SchemaPtr S() {
  return Schema::Make({
      {"id", ValueType::kInt64, false},
      {"status", ValueType::kString, true},
  });
}

Record Row(int64_t id, const std::string& status) {
  return Record(S(), {Value::Int64(id), Value::String(status)});
}

QueryResult Make(std::vector<Record> rows) {
  QueryResult result;
  result.schema = S();
  result.rows = std::move(rows);
  return result;
}

TEST(ResultSetDiffTest, EmptyToEmpty) {
  auto changes = *DiffResultSets(Make({}), Make({}), {"id"});
  EXPECT_TRUE(changes.empty());
}

TEST(ResultSetDiffTest, AddsAndRemoves) {
  auto prev = Make({Row(1, "open"), Row(2, "open")});
  auto cur = Make({Row(2, "open"), Row(3, "open")});
  auto changes = *DiffResultSets(prev, cur, {"id"});
  ASSERT_EQ(changes.size(), 2u);
  // Order: removals (by key) then adds.
  EXPECT_EQ(changes[0].kind, RowChangeKind::kRemoved);
  EXPECT_EQ(changes[0].before->Get("id")->int64_value(), 1);
  EXPECT_FALSE(changes[0].after.has_value());
  EXPECT_EQ(changes[1].kind, RowChangeKind::kAdded);
  EXPECT_EQ(changes[1].after->Get("id")->int64_value(), 3);
}

TEST(ResultSetDiffTest, ModificationsNeedKeyColumns) {
  auto prev = Make({Row(1, "open")});
  auto cur = Make({Row(1, "closed")});
  auto keyed = *DiffResultSets(prev, cur, {"id"});
  ASSERT_EQ(keyed.size(), 1u);
  EXPECT_EQ(keyed[0].kind, RowChangeKind::kModified);
  EXPECT_EQ(keyed[0].before->Get("status")->string_value(), "open");
  EXPECT_EQ(keyed[0].after->Get("status")->string_value(), "closed");

  // Whole-row identity sees remove + add instead.
  auto unkeyed = *DiffResultSets(prev, cur, {});
  ASSERT_EQ(unkeyed.size(), 2u);
}

TEST(ResultSetDiffTest, UnchangedRowsProduceNothing) {
  auto prev = Make({Row(1, "open"), Row(2, "x")});
  auto cur = Make({Row(2, "x"), Row(1, "open")});  // Reordered only.
  EXPECT_TRUE(DiffResultSets(prev, cur, {"id"})->empty());
  EXPECT_TRUE(DiffResultSets(prev, cur, {})->empty());
}

TEST(ResultSetDiffTest, DuplicateKeysRejected) {
  auto dup = Make({Row(1, "a"), Row(1, "b")});
  auto ok = Make({Row(1, "a")});
  EXPECT_TRUE(
      DiffResultSets(dup, ok, {"id"}).status().IsInvalidArgument());
  EXPECT_TRUE(
      DiffResultSets(ok, dup, {"id"}).status().IsInvalidArgument());
}

TEST(ResultSetDiffTest, MissingKeyColumnErrors) {
  auto prev = Make({Row(1, "a")});
  EXPECT_TRUE(
      DiffResultSets(prev, prev, {"nope"}).status().IsNotFound());
}

TEST(ResultSetDiffTest, CompositeKeys) {
  SchemaPtr schema = Schema::Make({
      {"a", ValueType::kInt64, false},
      {"b", ValueType::kInt64, false},
      {"v", ValueType::kString, true},
  });
  auto make = [&](int64_t a, int64_t b, const std::string& v) {
    return Record(schema,
                  {Value::Int64(a), Value::Int64(b), Value::String(v)});
  };
  QueryResult prev;
  prev.schema = schema;
  prev.rows = {make(1, 1, "x"), make(1, 2, "y")};
  QueryResult cur;
  cur.schema = schema;
  cur.rows = {make(1, 1, "x"), make(1, 2, "z")};
  auto changes = *DiffResultSets(prev, cur, {"a", "b"});
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, RowChangeKind::kModified);
  EXPECT_EQ(changes[0].after->Get("v")->string_value(), "z");
}

TEST(ResultSetDiffTest, ToStringSmoke) {
  RowChange change;
  change.kind = RowChangeKind::kAdded;
  change.after = Row(1, "new");
  EXPECT_NE(change.ToString().find("ADDED"), std::string::npos);
}

}  // namespace
}  // namespace edadb
