// Parameterized durability sweep: every WAL sync policy × checkpointing
// × workload mix must recover to the identical logical state.

#include <tuple>

#include "db/database.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr KvSchema() {
  return Schema::Make({
      {"k", ValueType::kInt64, false},
      {"v", ValueType::kString, true},
  });
}

Record Kv(int64_t k, const std::string& v) {
  return Record(KvSchema(), {Value::Int64(k), Value::String(v)});
}

struct DurabilityCase {
  WalSyncPolicy sync;
  bool checkpoint_midway;
  bool use_transactions;
};

std::string CaseName(const testing::TestParamInfo<DurabilityCase>& info) {
  std::string name;
  switch (info.param.sync) {
    case WalSyncPolicy::kNever: name = "SyncNever"; break;
    case WalSyncPolicy::kOnCommit: name = "SyncOnCommit"; break;
    case WalSyncPolicy::kEveryAppend: name = "SyncEveryAppend"; break;
  }
  name += info.param.checkpoint_midway ? "_Ckpt" : "_NoCkpt";
  name += info.param.use_transactions ? "_Txn" : "_AutoCommit";
  return name;
}

class DurabilityParamTest : public testing::TestWithParam<DurabilityCase> {
};

TEST_P(DurabilityParamTest, WorkloadSurvivesReopen) {
  const DurabilityCase& param = GetParam();
  TempDir dir;
  auto open = [&]() {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = param.sync;
    return *Database::Open(std::move(options));
  };

  constexpr int kRows = 200;
  {
    auto db = open();
    ASSERT_TRUE(db->CreateTable("kv", KvSchema()).ok());
    ASSERT_TRUE(db->CreateIndex("kv", "k", /*unique=*/true).ok());
    std::vector<RowId> ids;
    if (param.use_transactions) {
      // Batches of 20 rows per transaction.
      for (int batch = 0; batch < kRows / 20; ++batch) {
        auto txn = db->BeginTransaction();
        for (int i = 0; i < 20; ++i) {
          const int64_t k = batch * 20 + i;
          ids.push_back(
              *txn->Insert("kv", Kv(k, "v" + std::to_string(k))));
        }
        ASSERT_TRUE(txn->Commit().ok());
      }
    } else {
      for (int64_t k = 0; k < kRows; ++k) {
        ids.push_back(*db->Insert("kv", Kv(k, "v" + std::to_string(k))));
      }
    }
    if (param.checkpoint_midway) {
      ASSERT_TRUE(db->Checkpoint(db->wal_end_lsn()).ok());
    }
    // Post-(possible-)checkpoint mutations: updates and deletes.
    for (int64_t k = 0; k < kRows; k += 4) {
      ASSERT_TRUE(
          db->UpdateRow("kv", ids[static_cast<size_t>(k)],
                        Kv(k, "updated" + std::to_string(k)))
              .ok());
    }
    for (int64_t k = 1; k < kRows; k += 10) {
      ASSERT_TRUE(db->DeleteRow("kv", ids[static_cast<size_t>(k)]).ok());
    }
  }

  auto db = open();
  EXPECT_EQ(*db->CountRows("kv"), static_cast<size_t>(kRows - kRows / 10));
  // Spot-check logical content via the unique index.
  const Table* table = *db->GetTable("kv");
  const BTreeIndex* index = table->GetIndex("k");
  ASSERT_NE(index, nullptr);
  for (int64_t k = 0; k < kRows; ++k) {
    const auto rows = index->Lookup(Value::Int64(k));
    const bool deleted = k % 10 == 1;
    ASSERT_EQ(rows.size(), deleted ? 0u : 1u) << "k=" << k;
    if (!deleted) {
      const Record row = *table->GetRow(rows[0]);
      const std::string expected =
          k % 4 == 0 ? "updated" + std::to_string(k)
                     : "v" + std::to_string(k);
      EXPECT_EQ(row.Get("v")->string_value(), expected);
    }
  }
  // And the database still accepts writes.
  EXPECT_TRUE(db->Insert("kv", Kv(100000, "post-recovery")).ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DurabilityParamTest,
    testing::Values(
        DurabilityCase{WalSyncPolicy::kNever, false, false},
        DurabilityCase{WalSyncPolicy::kNever, true, false},
        DurabilityCase{WalSyncPolicy::kNever, true, true},
        DurabilityCase{WalSyncPolicy::kOnCommit, false, false},
        DurabilityCase{WalSyncPolicy::kOnCommit, false, true},
        DurabilityCase{WalSyncPolicy::kOnCommit, true, true},
        DurabilityCase{WalSyncPolicy::kEveryAppend, false, false},
        DurabilityCase{WalSyncPolicy::kEveryAppend, true, true}),
    CaseName);

}  // namespace
}  // namespace edadb
