// Regression: CreateIndex used to build the in-memory index BEFORE its
// WAL record was durable. A failed append/sync then left a live index
// the planner would happily use — which silently vanished on reopen.
// The fix rolls the in-memory index back when logging fails, keeping
// memory and disk consistent. Exercised via injected WAL faults.

#include <memory>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/crash_harness.h"

namespace fp = edadb::failpoint;
using edadb::Database;
using edadb::DatabaseOptions;
using edadb::QueryBuilder;
using edadb::Record;
using edadb::Schema;
using edadb::SchemaPtr;
using edadb::TempDir;
using edadb::Value;
using edadb::ValueType;
using edadb::WalSyncPolicy;
using edadb::testing::ArmError;
using edadb::testing::FailpointGuard;

namespace {

std::unique_ptr<Database> OpenDb(const std::string& dir) {
  DatabaseOptions options;
  options.dir = dir;
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = Database::Open(std::move(options));
  EXPECT_OK(db.status());
  return *std::move(db);
}

SchemaPtr MakeSchema() {
  return Schema::Make({{"id", ValueType::kInt64, false},
                       {"score", ValueType::kInt64, false}});
}

void Populate(Database* db, const SchemaPtr& schema) {
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_OK(db->Insert("t", Record(schema, {Value::Int64(i),
                                              Value::Int64(i * 10)}))
                  .status());
  }
}

void RunCreateIndexFailure(const char* failed_site) {
  FailpointGuard guard;
  TempDir dir;
  SchemaPtr schema = MakeSchema();
  {
    auto db = OpenDb(dir.path());
    ASSERT_OK(db->CreateTable("t", schema));
    Populate(db.get(), schema);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());

    ArmError(failed_site);
    const edadb::Status s = db->CreateIndex("t", "score", false);
    fp::DisarmAll();
    ASSERT_FALSE(s.ok()) << "injected fault at " << failed_site
                         << " did not surface";

    // The in-memory index must be gone — memory matches disk.
    auto table = db->GetTable("t");
    ASSERT_OK(table.status());
    EXPECT_FALSE((*table)->HasIndex("score"))
        << "failed CreateIndex left a live in-memory index";

    // The planner agrees, and the table is still fully usable.
    auto query = QueryBuilder("t").Where("score = 50").Build();
    auto plan = db->Explain(query);
    ASSERT_OK(plan.status());
    EXPECT_EQ(plan->find("index"), std::string::npos) << *plan;
    auto rows = db->Execute(query);
    ASSERT_OK(rows.status());

    // Retrying after the fault clears must succeed and index for real.
    ASSERT_OK(db->CreateIndex("t", "score", false));
    EXPECT_TRUE((*db->GetTable("t"))->HasIndex("score"));
  }
  // And the retried index is durable across recovery.
  auto db = OpenDb(dir.path());
  auto table = db->GetTable("t");
  ASSERT_OK(table.status());
  EXPECT_TRUE((*table)->HasIndex("score"))
      << "successfully created index lost on reopen";
}

TEST(IndexRecoveryTest, CreateIndexRollsBackWhenWalAppendFails) {
  RunCreateIndexFailure("wal.append.before");
}

TEST(IndexRecoveryTest, CreateIndexRollsBackWhenWalSyncFails) {
  RunCreateIndexFailure("wal.sync");
}

}  // namespace
