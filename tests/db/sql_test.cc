#include "db/sql.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class SqlTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
  }

  SqlResult Exec(const std::string& sql) {
    auto result = ExecuteSql(db_.get(), sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? *std::move(result) : SqlResult{};
  }

  Status ExecError(const std::string& sql) {
    auto result = ExecuteSql(db_.get(), sql);
    EXPECT_FALSE(result.ok()) << sql << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(SqlTest, CreateTableAndDescribe) {
  Exec("CREATE TABLE orders (id INT64 NOT NULL, customer STRING, "
       "amount DOUBLE, placed TIMESTAMP)");
  Table* table = *db_->GetTable("orders");
  EXPECT_EQ(table->schema()->num_fields(), 4u);
  EXPECT_FALSE(table->schema()->field(0).nullable);
  EXPECT_TRUE(table->schema()->field(1).nullable);
  EXPECT_EQ(table->schema()->field(3).type, ValueType::kTimestamp);
}

TEST_F(SqlTest, TypeSynonyms) {
  Exec("CREATE TABLE t (a INTEGER, b INT, c REAL, d FLOAT, e TEXT, "
       "f VARCHAR, g BOOLEAN)");
  Table* table = *db_->GetTable("t");
  EXPECT_EQ(table->schema()->field(0).type, ValueType::kInt64);
  EXPECT_EQ(table->schema()->field(2).type, ValueType::kDouble);
  EXPECT_EQ(table->schema()->field(4).type, ValueType::kString);
  EXPECT_EQ(table->schema()->field(6).type, ValueType::kBool);
}

TEST_F(SqlTest, KeywordsCaseInsensitive) {
  Exec("create table t (n int)");
  Exec("insert into t values (1)");
  auto result = Exec("select * from t");
  EXPECT_EQ(result.result.rows.size(), 1u);
}

TEST_F(SqlTest, InsertAndSelectStar) {
  Exec("CREATE TABLE t (id INT64 NOT NULL, name STRING)");
  const SqlResult inserted =
      Exec("INSERT INTO t VALUES (1, 'alice'), (2, 'bob')");
  EXPECT_EQ(inserted.kind, SqlResult::Kind::kInsert);
  EXPECT_EQ(inserted.rows_affected, 2u);
  const SqlResult selected = Exec("SELECT * FROM t ORDER BY id");
  ASSERT_EQ(selected.result.rows.size(), 2u);
  EXPECT_EQ(selected.result.rows[0].Get("name")->string_value(), "alice");
}

TEST_F(SqlTest, InsertColumnListAndDefaults) {
  Exec("CREATE TABLE t (id INT64 NOT NULL, name STRING, note STRING)");
  Exec("INSERT INTO t (name, id) VALUES ('carol', 3)");
  auto rows = Exec("SELECT * FROM t").result.rows;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("id")->int64_value(), 3);
  EXPECT_EQ(rows[0].Get("name")->string_value(), "carol");
  EXPECT_TRUE(rows[0].Get("note")->is_null());  // Unlisted -> NULL.
}

TEST_F(SqlTest, InsertCoercesIntLiteralsIntoDoubleAndTimestamp) {
  Exec("CREATE TABLE t (amount DOUBLE, at TIMESTAMP)");
  Exec("INSERT INTO t VALUES (5, 1700000000)");
  auto rows = Exec("SELECT * FROM t").result.rows;
  EXPECT_EQ(rows[0].Get("amount")->double_value(), 5.0);
  EXPECT_EQ(rows[0].Get("at")->timestamp_value(), 1700000000);
}

TEST_F(SqlTest, InsertConstantExpressions) {
  Exec("CREATE TABLE t (n INT64, s STRING)");
  Exec("INSERT INTO t VALUES (2 + 3 * 4, UPPER('ab' + 'cd'))");
  auto rows = Exec("SELECT * FROM t").result.rows;
  EXPECT_EQ(rows[0].Get("n")->int64_value(), 14);
  EXPECT_EQ(rows[0].Get("s")->string_value(), "ABCD");
}

TEST_F(SqlTest, InsertIsAtomicAcrossTuples) {
  Exec("CREATE TABLE t (n INT64 NOT NULL)");
  // Second tuple violates NOT NULL; nothing must land.
  EXPECT_FALSE(ExecError("INSERT INTO t VALUES (1), (NULL)").ok());
  EXPECT_EQ(*db_->CountRows("t"), 0u);
}

TEST_F(SqlTest, SelectProjectionWhereOrderLimit) {
  Exec("CREATE TABLE t (id INT64 NOT NULL, region STRING, amount DOUBLE)");
  Exec("INSERT INTO t VALUES (1, 'east', 10.0), (2, 'west', 30.0), "
       "(3, 'east', 20.0), (4, 'east', 5.0)");
  const SqlResult result = Exec(
      "SELECT id, amount FROM t WHERE region = 'east' AND amount > 6 "
      "ORDER BY amount DESC LIMIT 1");
  ASSERT_EQ(result.result.rows.size(), 1u);
  EXPECT_EQ(result.result.rows[0].Get("id")->int64_value(), 3);
  EXPECT_EQ(result.result.schema->num_fields(), 2u);
}

TEST_F(SqlTest, AggregatesWithGroupBy) {
  Exec("CREATE TABLE t (region STRING, amount DOUBLE)");
  Exec("INSERT INTO t VALUES ('east', 10.0), ('west', 30.0), "
       "('east', 20.0)");
  const SqlResult result = Exec(
      "SELECT region, COUNT(*), SUM(amount) AS total FROM t "
      "GROUP BY region ORDER BY region");
  ASSERT_EQ(result.result.rows.size(), 2u);
  EXPECT_EQ(result.result.rows[0].Get("region")->string_value(), "east");
  EXPECT_EQ(result.result.rows[0].Get("count")->int64_value(), 2);
  EXPECT_EQ(result.result.rows[0].Get("total")->double_value(), 30.0);
}

TEST_F(SqlTest, AggregatesWithoutGroupBy) {
  Exec("CREATE TABLE t (v DOUBLE)");
  Exec("INSERT INTO t VALUES (1.0), (2.0), (3.0)");
  const SqlResult result =
      Exec("SELECT COUNT(*), AVG(v), MIN(v), MAX(v) FROM t");
  ASSERT_EQ(result.result.rows.size(), 1u);
  EXPECT_EQ(result.result.rows[0].Get("count")->int64_value(), 3);
  EXPECT_EQ(result.result.rows[0].Get("avg_v")->double_value(), 2.0);
}

TEST_F(SqlTest, NonGroupedColumnWithAggregateRejected) {
  Exec("CREATE TABLE t (region STRING, amount DOUBLE)");
  EXPECT_TRUE(
      ExecError("SELECT region, COUNT(*) FROM t").IsInvalidArgument());
}

TEST_F(SqlTest, UpdateWithRowExpressions) {
  Exec("CREATE TABLE t (id INT64 NOT NULL, amount DOUBLE)");
  Exec("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)");
  const SqlResult updated = Exec(
      "UPDATE t SET amount = amount * 2 + 1 WHERE amount >= 20");
  EXPECT_EQ(updated.kind, SqlResult::Kind::kUpdate);
  EXPECT_EQ(updated.rows_affected, 2u);
  auto rows = Exec("SELECT amount FROM t ORDER BY id").result.rows;
  EXPECT_EQ(rows[0].Get("amount")->double_value(), 10.0);
  EXPECT_EQ(rows[1].Get("amount")->double_value(), 41.0);
  EXPECT_EQ(rows[2].Get("amount")->double_value(), 61.0);
}

TEST_F(SqlTest, UpdateMultipleAssignmentsUsePreUpdateValues) {
  Exec("CREATE TABLE t (a INT64, b INT64)");
  Exec("INSERT INTO t VALUES (1, 100)");
  // Both right-hand sides see the ORIGINAL row.
  Exec("UPDATE t SET a = b, b = a");
  auto rows = Exec("SELECT * FROM t").result.rows;
  EXPECT_EQ(rows[0].Get("a")->int64_value(), 100);
  EXPECT_EQ(rows[0].Get("b")->int64_value(), 1);
}

TEST_F(SqlTest, DeleteWithAndWithoutWhere) {
  Exec("CREATE TABLE t (n INT64)");
  Exec("INSERT INTO t VALUES (1), (2), (3), (4)");
  EXPECT_EQ(Exec("DELETE FROM t WHERE n % 2 = 0").rows_affected, 2u);
  EXPECT_EQ(*db_->CountRows("t"), 2u);
  EXPECT_EQ(Exec("DELETE FROM t").rows_affected, 2u);
  EXPECT_EQ(*db_->CountRows("t"), 0u);
}

TEST_F(SqlTest, CreateIndexSpeedsNothingButWorks) {
  Exec("CREATE TABLE t (k STRING, v INT64)");
  Exec("CREATE UNIQUE INDEX ON t (k)");
  Exec("INSERT INTO t VALUES ('a', 1)");
  EXPECT_TRUE(
      ExecError("INSERT INTO t VALUES ('a', 2)").IsAlreadyExists());
  Exec("CREATE INDEX ON t (v)");
  EXPECT_NE((*db_->GetTable("t"))->GetIndex("v"), nullptr);
}

TEST_F(SqlTest, DropTable) {
  Exec("CREATE TABLE doomed (n INT64)");
  Exec("DROP TABLE doomed");
  EXPECT_TRUE(db_->GetTable("doomed").status().IsNotFound());
  EXPECT_TRUE(ExecError("DROP TABLE doomed").IsNotFound());
}

TEST_F(SqlTest, ComplexWhereUsesFullExpressionGrammar) {
  Exec("CREATE TABLE t (name STRING, v INT64)");
  Exec("INSERT INTO t VALUES ('alpha', 1), ('beta', 5), ('gamma', 9)");
  auto rows = Exec("SELECT name FROM t WHERE (v BETWEEN 2 AND 10 AND "
                   "name LIKE '%a%') OR name IN ('alpha') ORDER BY name")
                  .result.rows;
  ASSERT_EQ(rows.size(), 3u);
}

TEST_F(SqlTest, SyntaxErrorsAreInvalidArgument) {
  EXPECT_TRUE(ExecError("").IsInvalidArgument());
  EXPECT_TRUE(ExecError("SELEKT * FROM t").IsInvalidArgument());
  EXPECT_TRUE(ExecError("SELECT FROM t").IsInvalidArgument());
  Exec("CREATE TABLE t (n INT64)");
  EXPECT_TRUE(ExecError("SELECT * FROM t WHERE").IsInvalidArgument());
  EXPECT_TRUE(ExecError("SELECT * FROM t LIMIT x").IsInvalidArgument());
  EXPECT_TRUE(ExecError("INSERT INTO t VALUES 1").IsInvalidArgument());
  EXPECT_TRUE(ExecError("SELECT * FROM t extra junk").IsInvalidArgument());
  EXPECT_TRUE(ExecError("CREATE TABLE bad (n UNICORN)")
                  .IsInvalidArgument());
}

TEST_F(SqlTest, UnknownObjectsAreNotFound) {
  EXPECT_TRUE(ExecError("SELECT * FROM ghost").IsNotFound());
  Exec("CREATE TABLE t (n INT64)");
  EXPECT_TRUE(ExecError("INSERT INTO t (missing) VALUES (1)").IsNotFound());
  EXPECT_TRUE(
      ExecError("UPDATE t SET missing = 1").IsNotFound());
}

TEST_F(SqlTest, InsertValuesCannotReferenceColumns) {
  Exec("CREATE TABLE t (n INT64)");
  EXPECT_FALSE(ExecuteSql(db_.get(), "INSERT INTO t VALUES (n + 1)").ok());
}

TEST_F(SqlTest, EndToEndSqlOnlySession) {
  // A whole session through SQL alone: the surface a downstream user
  // would script against.
  Exec("CREATE TABLE sensors (name STRING NOT NULL, zone STRING, "
       "temp DOUBLE)");
  Exec("CREATE UNIQUE INDEX ON sensors (name)");
  Exec("INSERT INTO sensors (name, zone, temp) VALUES "
       "('s1', 'north', 20.5), ('s2', 'north', 21.0), "
       "('s3', 'south', 35.5), ('s4', 'south', 19.0)");
  Exec("UPDATE sensors SET temp = temp + 0.5 WHERE zone = 'north'");
  Exec("DELETE FROM sensors WHERE temp < 20");
  const SqlResult report = Exec(
      "SELECT zone, COUNT(*), MAX(temp) AS hottest FROM sensors "
      "GROUP BY zone ORDER BY zone");
  ASSERT_EQ(report.result.rows.size(), 2u);
  EXPECT_EQ(report.result.rows[0].Get("zone")->string_value(), "north");
  EXPECT_EQ(report.result.rows[0].Get("count")->int64_value(), 2);
  EXPECT_EQ(report.result.rows[1].Get("hottest")->double_value(), 35.5);
}

}  // namespace
}  // namespace edadb
