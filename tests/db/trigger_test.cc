#include <vector>

#include "db/database.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr ReadingsSchema() {
  return Schema::Make({
      {"sensor", ValueType::kString, false},
      {"temp", ValueType::kDouble, true},
  });
}

class TriggerTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ASSERT_TRUE(db_->CreateTable("readings", ReadingsSchema()).ok());
  }

  Record Reading(const std::string& sensor, double temp) {
    return *RecordBuilder(ReadingsSchema())
                .SetString("sensor", sensor)
                .SetDouble("temp", temp)
                .Build();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(TriggerTest, AfterInsertFiresWithNewRow) {
  std::vector<std::string> fired;
  TriggerDef def;
  def.name = "t1";
  def.table = "readings";
  def.timing = TriggerTiming::kAfter;
  def.ops = kDmlInsert;
  def.action = [&](const TriggerEvent& event) {
    EXPECT_EQ(event.op, kDmlInsert);
    EXPECT_EQ(event.table_name, "readings");
    EXPECT_NE(event.new_row, nullptr);
    EXPECT_EQ(event.old_row, nullptr);
    fired.push_back(event.new_row->Get("sensor")->string_value());
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  ASSERT_OK(db_->Insert("readings", Reading("s1", 20)).status());
  ASSERT_OK(db_->Insert("readings", Reading("s2", 21)).status());
  EXPECT_EQ(fired, (std::vector<std::string>{"s1", "s2"}));
}

TEST_F(TriggerTest, WhenPredicateFilters) {
  int fired = 0;
  TriggerDef def;
  def.name = "hot_only";
  def.table = "readings";
  def.ops = kDmlInsert;
  def.when = *Predicate::Compile("temp > 30");
  def.action = [&](const TriggerEvent&) {
    ++fired;
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  ASSERT_OK(db_->Insert("readings", Reading("s", 25)).status());
  ASSERT_OK(db_->Insert("readings", Reading("s", 35)).status());
  ASSERT_OK(db_->Insert("readings", Reading("s", 30)).status());
  EXPECT_EQ(fired, 1);
}

TEST_F(TriggerTest, BeforeInsertCanRewriteRow) {
  TriggerDef def;
  def.name = "clamp";
  def.table = "readings";
  def.timing = TriggerTiming::kBefore;
  def.ops = kDmlInsert;
  def.action = [](const TriggerEvent& event) {
    const double temp = event.new_row->Get("temp")->double_value();
    if (temp > 100) {
      return event.new_row->Set("temp", Value::Double(100.0));
    }
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  const RowId id = *db_->Insert("readings", Reading("s", 250));
  EXPECT_EQ(db_->GetRow("readings", id)->Get("temp")->double_value(), 100.0);
}

TEST_F(TriggerTest, BeforeTriggerCanVeto) {
  TriggerDef def;
  def.name = "no_negative";
  def.table = "readings";
  def.timing = TriggerTiming::kBefore;
  def.ops = kDmlInsert;
  def.when = *Predicate::Compile("temp < 0");
  def.action = [](const TriggerEvent&) {
    return Status::InvalidArgument("negative temperature");
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  EXPECT_TRUE(db_->Insert("readings", Reading("s", -5)).status().IsAborted());
  EXPECT_EQ(*db_->CountRows("readings"), 0u);
  ASSERT_OK(db_->Insert("readings", Reading("s", 5)).status());
  EXPECT_EQ(*db_->CountRows("readings"), 1u);
}

TEST_F(TriggerTest, UpdateTriggerSeesOldAndNew) {
  double old_temp = 0;
  double new_temp = 0;
  TriggerDef def;
  def.name = "watch_updates";
  def.table = "readings";
  def.ops = kDmlUpdate;
  def.action = [&](const TriggerEvent& event) {
    old_temp = event.old_row->Get("temp")->double_value();
    new_temp = event.new_row->Get("temp")->double_value();
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  const RowId id = *db_->Insert("readings", Reading("s", 20));
  ASSERT_OK(db_->UpdateRow("readings", id, Reading("s", 30)));
  EXPECT_EQ(old_temp, 20.0);
  EXPECT_EQ(new_temp, 30.0);
}

TEST_F(TriggerTest, WhenSeesOldAndNewPrefixes) {
  int fired = 0;
  TriggerDef def;
  def.name = "rising_fast";
  def.table = "readings";
  def.ops = kDmlUpdate;
  // Fires only when temp rose by more than 10 degrees.
  def.when = *Predicate::Compile("new.temp - old.temp > 10");
  def.action = [&](const TriggerEvent&) {
    ++fired;
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  const RowId id = *db_->Insert("readings", Reading("s", 20));
  ASSERT_OK(db_->UpdateRow("readings", id, Reading("s", 25)));  // +5: no.
  ASSERT_OK(db_->UpdateRow("readings", id, Reading("s", 40)));  // +15: yes.
  EXPECT_EQ(fired, 1);
}

TEST_F(TriggerTest, DeleteTriggerSeesOldRow) {
  std::string deleted_sensor;
  TriggerDef def;
  def.name = "on_delete";
  def.table = "readings";
  def.ops = kDmlDelete;
  def.when = *Predicate::Compile("sensor = 's1'");  // Unprefixed = old row.
  def.action = [&](const TriggerEvent& event) {
    deleted_sensor = event.old_row->Get("sensor")->string_value();
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  const RowId id1 = *db_->Insert("readings", Reading("s1", 1));
  const RowId id2 = *db_->Insert("readings", Reading("s2", 2));
  ASSERT_OK(db_->DeleteRow("readings", id2));
  EXPECT_EQ(deleted_sensor, "");
  ASSERT_OK(db_->DeleteRow("readings", id1));
  EXPECT_EQ(deleted_sensor, "s1");
}

TEST_F(TriggerTest, DisableAndDrop) {
  int fired = 0;
  TriggerDef def;
  def.name = "counter";
  def.table = "readings";
  def.ops = kDmlInsert;
  def.action = [&](const TriggerEvent&) {
    ++fired;
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  ASSERT_OK(db_->Insert("readings", Reading("s", 1)).status());
  ASSERT_OK(db_->SetTriggerEnabled("counter", false));
  ASSERT_OK(db_->Insert("readings", Reading("s", 2)).status());
  ASSERT_OK(db_->SetTriggerEnabled("counter", true));
  ASSERT_OK(db_->Insert("readings", Reading("s", 3)).status());
  EXPECT_EQ(fired, 2);
  ASSERT_OK(db_->DropTrigger("counter"));
  ASSERT_OK(db_->Insert("readings", Reading("s", 4)).status());
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(db_->DropTrigger("counter").IsNotFound());
}

TEST_F(TriggerTest, TriggerAdminValidation) {
  TriggerDef nameless;
  nameless.table = "readings";
  EXPECT_TRUE(db_->CreateTrigger(nameless).IsInvalidArgument());
  TriggerDef no_table;
  no_table.name = "x";
  no_table.table = "nope";
  EXPECT_TRUE(db_->CreateTrigger(no_table).IsNotFound());
  TriggerDef no_ops;
  no_ops.name = "x";
  no_ops.table = "readings";
  no_ops.ops = 0;
  EXPECT_TRUE(db_->CreateTrigger(no_ops).IsInvalidArgument());
  EXPECT_TRUE(db_->SetTriggerEnabled("ghost", true).IsNotFound());
}

TEST_F(TriggerTest, TriggerActionsCanCallBackIntoDatabase) {
  // Audit pattern: AFTER trigger inserts into an audit table.
  ASSERT_TRUE(db_->CreateTable(
                     "audit", Schema::Make({{"note", ValueType::kString,
                                             false}}))
                  .ok());
  TriggerDef def;
  def.name = "audit_inserts";
  def.table = "readings";
  def.ops = kDmlInsert;
  def.action = [&](const TriggerEvent& event) {
    Record note = *RecordBuilder(db_->GetTable("audit").value()->schema())
                       .SetString("note",
                                  "insert into " + event.table_name)
                       .Build();
    return db_->Insert("audit", std::move(note)).status();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  ASSERT_OK(db_->Insert("readings", Reading("s", 1)).status());
  ASSERT_OK(db_->Insert("readings", Reading("s", 2)).status());
  EXPECT_EQ(*db_->CountRows("audit"), 2u);
}

TEST_F(TriggerTest, DropTableDropsItsTriggers) {
  TriggerDef def;
  def.name = "doomed";
  def.table = "readings";
  def.ops = kDmlInsert;
  def.action = [](const TriggerEvent&) { return Status::OK(); };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  ASSERT_OK(db_->DropTable("readings"));
  EXPECT_TRUE(db_->ListTriggers().empty());
}

}  // namespace
}  // namespace edadb
