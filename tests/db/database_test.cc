#include "db/database.h"

#include "expr/parser.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr OrdersSchema() {
  return Schema::Make({
      {"order_id", ValueType::kInt64, /*nullable=*/false},
      {"customer", ValueType::kString, true},
      {"amount", ValueType::kDouble, true},
      {"region", ValueType::kString, true},
  });
}

class DatabaseTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ASSERT_TRUE(db_->CreateTable("orders", OrdersSchema()).ok());
  }

  Record MakeOrder(int64_t id, const std::string& customer, double amount,
                   const std::string& region = "east") {
    return *RecordBuilder(OrdersSchema())
                .SetInt64("order_id", id)
                .SetString("customer", customer)
                .SetDouble("amount", amount)
                .SetString("region", region)
                .Build();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(DatabaseTest, CreateTableRejectsDuplicatesAndEmpty) {
  EXPECT_TRUE(
      db_->CreateTable("orders", OrdersSchema()).status().IsAlreadyExists());
  EXPECT_TRUE(db_->CreateTable("empty", Schema::Make({}))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(DatabaseTest, ListAndGetTables) {
  EXPECT_EQ(db_->ListTables(), (std::vector<std::string>{"orders"}));
  EXPECT_TRUE(db_->GetTable("orders").ok());
  EXPECT_TRUE(db_->GetTable("nope").status().IsNotFound());
  Table* table = *db_->GetTable("orders");
  EXPECT_EQ(db_->GetTableById(table->id()), table);
  EXPECT_EQ(db_->GetTableById(999), nullptr);
}

TEST_F(DatabaseTest, InsertAndGetRow) {
  const RowId id = *db_->Insert("orders", MakeOrder(1, "alice", 10.5));
  EXPECT_GT(id, 0u);
  Record row = *db_->GetRow("orders", id);
  EXPECT_EQ(row.Get("customer")->string_value(), "alice");
  EXPECT_EQ(row.Get("amount")->double_value(), 10.5);
  EXPECT_EQ(*db_->CountRows("orders"), 1u);
}

TEST_F(DatabaseTest, InsertValidatesSchema) {
  // NULL into NOT NULL order_id.
  Record bad(OrdersSchema(), {Value::Null(), Value::Null(), Value::Null(),
                              Value::Null()});
  EXPECT_TRUE(db_->Insert("orders", bad).status().IsInvalidArgument());
  EXPECT_TRUE(
      db_->Insert("no_such_table", MakeOrder(1, "x", 1)).status().IsNotFound());
}

TEST_F(DatabaseTest, UpdateAndDeleteRow) {
  const RowId id = *db_->Insert("orders", MakeOrder(1, "alice", 10.5));
  Record updated = MakeOrder(1, "alice", 99.0);
  ASSERT_OK(db_->UpdateRow("orders", id, updated));
  EXPECT_EQ(db_->GetRow("orders", id)->Get("amount")->double_value(), 99.0);
  ASSERT_OK(db_->DeleteRow("orders", id));
  EXPECT_TRUE(db_->GetRow("orders", id).status().IsNotFound());
  EXPECT_TRUE(db_->DeleteRow("orders", id).IsNotFound());
}

TEST_F(DatabaseTest, UpdateWhereAndDeleteWhere) {
  for (int i = 1; i <= 10; ++i) {
    ASSERT_OK(db_->Insert("orders",
                          MakeOrder(i, "c" + std::to_string(i), i * 10.0,
                                    i % 2 == 0 ? "east" : "west")));
  }
  auto east = *Predicate::Compile("region = 'east'");
  const size_t updated = *db_->UpdateWhere(
      "orders", east, [](Record* row) {
        return row->Set("amount", Value::Double(0.0));
      });
  EXPECT_EQ(updated, 5u);
  auto zeroed = *Predicate::Compile("amount = 0.0");
  EXPECT_EQ(*db_->DeleteWhere("orders", zeroed), 5u);
  EXPECT_EQ(*db_->CountRows("orders"), 5u);
}

TEST_F(DatabaseTest, UniqueIndexEnforced) {
  ASSERT_OK(db_->CreateIndex("orders", "order_id", /*unique=*/true));
  ASSERT_OK(db_->Insert("orders", MakeOrder(7, "a", 1)).status());
  EXPECT_TRUE(
      db_->Insert("orders", MakeOrder(7, "b", 2)).status().IsAlreadyExists());
  // Different key is fine.
  ASSERT_OK(db_->Insert("orders", MakeOrder(8, "b", 2)).status());
  // Updating into a conflict is rejected.
  const RowId id8 = *db_->GetTable("orders").value()->GetIndex("order_id")
                         ->Lookup(Value::Int64(8))
                         .begin();
  EXPECT_TRUE(db_->UpdateRow("orders", id8, MakeOrder(7, "b", 2))
                  .IsAlreadyExists());
}

TEST_F(DatabaseTest, DropTableRemovesEverything) {
  ASSERT_OK(db_->Insert("orders", MakeOrder(1, "a", 1)).status());
  ASSERT_OK(db_->DropTable("orders"));
  EXPECT_TRUE(db_->GetTable("orders").status().IsNotFound());
  EXPECT_TRUE(db_->DropTable("orders").IsNotFound());
  // Recreate works.
  ASSERT_OK(db_->CreateTable("orders", OrdersSchema()).status());
  EXPECT_EQ(*db_->CountRows("orders"), 0u);
}

TEST_F(DatabaseTest, QueryFullScanWithFilter) {
  for (int i = 1; i <= 20; ++i) {
    ASSERT_OK(db_->Insert("orders", MakeOrder(i, "c", i * 1.0,
                                              i <= 5 ? "west" : "east")));
  }
  Query query = QueryBuilder("orders").Where("region = 'west'").Build();
  QueryResult result = *db_->Execute(query);
  EXPECT_EQ(result.rows.size(), 5u);
}

TEST_F(DatabaseTest, QueryUsesIndexAndMatchesScanResults) {
  ASSERT_OK(db_->CreateIndex("orders", "amount", false));
  for (int i = 1; i <= 100; ++i) {
    ASSERT_OK(db_->Insert(
        "orders", MakeOrder(i, "c", static_cast<double>(i % 10))));
  }
  Query query =
      QueryBuilder("orders").Where("amount >= 3.0 AND amount < 5.0").Build();
  QueryResult with_index = *db_->Execute(query);
  EXPECT_EQ(with_index.rows.size(), 20u);
  // Sanity: same query against an unindexed copy of the predicate on a
  // column without an index gives the same rows.
  Query scan_query =
      QueryBuilder("orders").Where("amount + 0.0 >= 3.0 AND amount < 5.0")
          .Build();
  QueryResult without_index = *db_->Execute(scan_query);
  EXPECT_EQ(without_index.rows.size(), with_index.rows.size());
}

TEST_F(DatabaseTest, QueryProjectionAndOrderAndLimit) {
  for (int i = 1; i <= 5; ++i) {
    ASSERT_OK(db_->Insert("orders", MakeOrder(i, "c" + std::to_string(i),
                                              6.0 - i)));
  }
  Query query = QueryBuilder("orders")
                    .Select({"order_id", "amount"})
                    .OrderByDesc("amount")
                    .Limit(3)
                    .Build();
  QueryResult result = *db_->Execute(query);
  ASSERT_EQ(result.rows.size(), 3u);
  EXPECT_EQ(result.schema->num_fields(), 2u);
  EXPECT_EQ(result.rows[0].Get("order_id")->int64_value(), 1);
  EXPECT_EQ(result.rows[1].Get("order_id")->int64_value(), 2);
  EXPECT_EQ(result.rows[2].Get("order_id")->int64_value(), 3);
}

TEST_F(DatabaseTest, QueryUnknownColumnsError) {
  Query bad_select = QueryBuilder("orders").Select({"nope"}).Build();
  EXPECT_TRUE(db_->Execute(bad_select).status().IsNotFound());
  Query bad_where = QueryBuilder("orders").Where("nope = 1").Build();
  EXPECT_TRUE(db_->Execute(bad_where).status().IsNotFound());
  Query bad_order = QueryBuilder("orders").OrderByAsc("nope").Build();
  ASSERT_OK(db_->Insert("orders", MakeOrder(1, "a", 1)).status());
  EXPECT_TRUE(db_->Execute(bad_order).status().IsNotFound());
}

TEST_F(DatabaseTest, QueryBuildErrorSurfaces) {
  Query bad = QueryBuilder("orders").Where("syntax >>> error").Build();
  EXPECT_FALSE(db_->Execute(bad).ok());
}

TEST_F(DatabaseTest, AggregatesWithoutGroupBy) {
  for (int i = 1; i <= 4; ++i) {
    ASSERT_OK(db_->Insert("orders", MakeOrder(i, "c", i * 1.0)));
  }
  Query query = QueryBuilder("orders")
                    .Count("n")
                    .Sum("amount", "total")
                    .Avg("amount", "mean")
                    .Min("amount", "lo")
                    .Max("amount", "hi")
                    .Build();
  QueryResult result = *db_->Execute(query);
  ASSERT_EQ(result.rows.size(), 1u);
  const Record& row = result.rows[0];
  EXPECT_EQ(row.Get("n")->int64_value(), 4);
  EXPECT_EQ(row.Get("total")->double_value(), 10.0);
  EXPECT_EQ(row.Get("mean")->double_value(), 2.5);
  EXPECT_EQ(row.Get("lo")->double_value(), 1.0);
  EXPECT_EQ(row.Get("hi")->double_value(), 4.0);
}

TEST_F(DatabaseTest, AggregatesEmptyInputStillOneRow) {
  Query query = QueryBuilder("orders").Count("n").Sum("amount").Build();
  QueryResult result = *db_->Execute(query);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].Get("n")->int64_value(), 0);
  EXPECT_TRUE(result.rows[0].Get("sum_amount")->is_null());
}

TEST_F(DatabaseTest, GroupByAggregates) {
  for (int i = 1; i <= 9; ++i) {
    ASSERT_OK(db_->Insert("orders",
                          MakeOrder(i, "c", i * 1.0,
                                    i % 3 == 0 ? "north" : "south")));
  }
  Query query = QueryBuilder("orders")
                    .GroupBy({"region"})
                    .Count("n")
                    .Sum("amount", "total")
                    .OrderByAsc("region")
                    .Build();
  QueryResult result = *db_->Execute(query);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].Get("region")->string_value(), "north");
  EXPECT_EQ(result.rows[0].Get("n")->int64_value(), 3);
  EXPECT_EQ(result.rows[0].Get("total")->double_value(), 18.0);
  EXPECT_EQ(result.rows[1].Get("region")->string_value(), "south");
  EXPECT_EQ(result.rows[1].Get("n")->int64_value(), 6);
}

TEST_F(DatabaseTest, GroupByWithoutAggregatesRejected) {
  Query query = QueryBuilder("orders").GroupBy({"region"}).Build();
  EXPECT_TRUE(db_->Execute(query).status().IsInvalidArgument());
}

TEST_F(DatabaseTest, CreateIndexOnMissingColumnFails) {
  EXPECT_TRUE(db_->CreateIndex("orders", "nope", false).IsNotFound());
  EXPECT_TRUE(db_->CreateIndex("nope", "region", false).IsNotFound());
}

TEST_F(DatabaseTest, IndexBackfillsExistingRows) {
  for (int i = 1; i <= 10; ++i) {
    ASSERT_OK(db_->Insert("orders", MakeOrder(i, "c", 5.0)));
  }
  ASSERT_OK(db_->CreateIndex("orders", "amount", false));
  const BTreeIndex* index = db_->GetTable("orders").value()->GetIndex("amount");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Lookup(Value::Double(5.0)).size(), 10u);
}

}  // namespace
}  // namespace edadb
