// Property: query results must be identical with and without secondary
// indexes — the planner's index-scan path and the full-scan path are
// interchangeable for correctness.

#include <set>

#include "common/random.h"
#include "common/string_util.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

SchemaPtr DataSchema() {
  return Schema::Make({
      {"a", ValueType::kInt64, false},
      {"b", ValueType::kDouble, false},
      {"s", ValueType::kString, false},
  });
}

std::string RandomPredicate(Random* rng) {
  switch (rng->Uniform(6)) {
    case 0:
      return StringPrintf("a = %lld",
                          static_cast<long long>(rng->UniformInt(0, 50)));
    case 1:
      return StringPrintf("a > %lld",
                          static_cast<long long>(rng->UniformInt(0, 50)));
    case 2:
      return StringPrintf("a BETWEEN %lld AND %lld",
                          static_cast<long long>(rng->UniformInt(0, 25)),
                          static_cast<long long>(rng->UniformInt(25, 50)));
    case 3:
      return StringPrintf("b <= %lld.5",
                          static_cast<long long>(rng->UniformInt(0, 20)));
    case 4:
      return StringPrintf("s = 's%lld'",
                          static_cast<long long>(rng->UniformInt(0, 9)));
    default:
      return StringPrintf(
          "a >= %lld AND b < %lld.0 AND s != 's3'",
          static_cast<long long>(rng->UniformInt(0, 40)),
          static_cast<long long>(rng->UniformInt(5, 20)));
  }
}

std::multiset<std::string> Render(const QueryResult& result) {
  std::multiset<std::string> rows;
  for (const Record& row : result.rows) rows.insert(row.ToString());
  return rows;
}

TEST(PlannerProperty, IndexScanEqualsFullScan) {
  TempDir indexed_dir;
  TempDir plain_dir;
  DatabaseOptions options1;
  options1.dir = indexed_dir.path();
  options1.wal_sync_policy = WalSyncPolicy::kNever;
  auto indexed = *Database::Open(std::move(options1));
  DatabaseOptions options2;
  options2.dir = plain_dir.path();
  options2.wal_sync_policy = WalSyncPolicy::kNever;
  auto plain = *Database::Open(std::move(options2));

  ASSERT_TRUE(indexed->CreateTable("t", DataSchema()).ok());
  ASSERT_TRUE(plain->CreateTable("t", DataSchema()).ok());
  ASSERT_TRUE(indexed->CreateIndex("t", "a", false).ok());
  ASSERT_TRUE(indexed->CreateIndex("t", "b", false).ok());
  ASSERT_TRUE(indexed->CreateIndex("t", "s", false).ok());

  testing::SeededRng rng(/*stream=*/0);
  for (int i = 0; i < 800; ++i) {
    Record row(DataSchema(),
               {Value::Int64(rng.UniformInt(0, 50)),
                Value::Double(static_cast<double>(rng.UniformInt(0, 40)) / 2),
                Value::String("s" + std::to_string(rng.Uniform(10)))});
    ASSERT_TRUE(indexed->Insert("t", row).ok());
    ASSERT_TRUE(plain->Insert("t", row).ok());
  }

  for (int trial = 0; trial < 200; ++trial) {
    const std::string predicate = RandomPredicate(&rng);
    Query query = QueryBuilder("t").Where(predicate).Build();
    auto with_index = indexed->Execute(query);
    auto without_index = plain->Execute(query);
    ASSERT_TRUE(with_index.ok()) << predicate;
    ASSERT_TRUE(without_index.ok()) << predicate;
    ASSERT_EQ(Render(*with_index), Render(*without_index))
        << "predicate: " << predicate;
  }
}

TEST(PlannerProperty, IndexSurvivesUpdatesAndDeletes) {
  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  ASSERT_TRUE(db->CreateTable("t", DataSchema()).ok());
  ASSERT_TRUE(db->CreateIndex("t", "a", false).ok());

  testing::SeededRng rng(/*stream=*/1);
  std::vector<RowId> live;
  for (int step = 0; step < 3000; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 5 || live.empty()) {
      Record row(DataSchema(),
                 {Value::Int64(rng.UniformInt(0, 30)),
                  Value::Double(1.0), Value::String("x")});
      live.push_back(*db->Insert("t", std::move(row)));
    } else if (action < 8) {
      const size_t victim = rng.Uniform(live.size());
      Record row(DataSchema(),
                 {Value::Int64(rng.UniformInt(0, 30)),
                  Value::Double(2.0), Value::String("y")});
      ASSERT_TRUE(db->UpdateRow("t", live[victim], std::move(row)).ok());
    } else {
      const size_t victim = rng.Uniform(live.size());
      ASSERT_TRUE(db->DeleteRow("t", live[victim]).ok());
      live.erase(live.begin() + static_cast<long>(victim));
    }
  }
  // Every indexed lookup must agree with a scan-side count.
  for (int64_t key = 0; key <= 30; ++key) {
    Query query = QueryBuilder("t")
                      .Where(StringPrintf("a = %lld",
                                          static_cast<long long>(key)))
                      .Build();
    const size_t via_planner = db->Execute(query)->rows.size();
    size_t via_scan = 0;
    (*db->GetTable("t"))->ScanRows([&](RowId, const Record& row) {
      if (row.Get("a")->int64_value() == key) ++via_scan;
      return true;
    });
    ASSERT_EQ(via_planner, via_scan) << "key=" << key;
  }
}

}  // namespace
}  // namespace edadb
