#include "db/database.h"

#include "db/snapshot.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr AccountsSchema() {
  return Schema::Make({
      {"name", ValueType::kString, false},
      {"balance", ValueType::kInt64, false},
  });
}

Record Account(const std::string& name, int64_t balance) {
  return *RecordBuilder(AccountsSchema())
              .SetString("name", name)
              .SetInt64("balance", balance)
              .Build();
}

DatabaseOptions Opts(const std::string& dir) {
  DatabaseOptions options;
  options.dir = dir;
  options.wal_sync_policy = WalSyncPolicy::kNever;
  return options;
}

TEST(TransactionTest, CommitAppliesAllOps) {
  TempDir dir;
  auto db = *Database::Open(Opts(dir.path()));
  ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
  auto txn = db->BeginTransaction();
  const RowId a = *txn->Insert("accounts", Account("a", 100));
  const RowId b = *txn->Insert("accounts", Account("b", 200));
  EXPECT_EQ(txn->num_pending(), 2u);
  // Not visible before commit.
  EXPECT_EQ(*db->CountRows("accounts"), 0u);
  ASSERT_OK(txn->Commit());
  EXPECT_EQ(*db->CountRows("accounts"), 2u);
  EXPECT_EQ(db->GetRow("accounts", a)->Get("name")->string_value(), "a");
  EXPECT_EQ(db->GetRow("accounts", b)->Get("name")->string_value(), "b");
}

TEST(TransactionTest, RollbackDiscards) {
  TempDir dir;
  auto db = *Database::Open(Opts(dir.path()));
  ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
  auto txn = db->BeginTransaction();
  ASSERT_OK(txn->Insert("accounts", Account("ghost", 1)).status());
  ASSERT_OK(txn->Rollback());
  EXPECT_EQ(*db->CountRows("accounts"), 0u);
  EXPECT_TRUE(txn->Commit().IsFailedPrecondition());
}

TEST(TransactionTest, DestructorRollsBack) {
  TempDir dir;
  auto db = *Database::Open(Opts(dir.path()));
  ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
  {
    auto txn = db->BeginTransaction();
    ASSERT_OK(txn->Insert("accounts", Account("ghost", 1)).status());
  }
  EXPECT_EQ(*db->CountRows("accounts"), 0u);
}

TEST(TransactionTest, MixedOpsInOneTransaction) {
  TempDir dir;
  auto db = *Database::Open(Opts(dir.path()));
  ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
  const RowId a = *db->Insert("accounts", Account("a", 100));
  const RowId b = *db->Insert("accounts", Account("b", 200));
  auto txn = db->BeginTransaction();
  ASSERT_OK(txn->UpdateRow("accounts", a, Account("a", 50)));
  ASSERT_OK(txn->DeleteRow("accounts", b));
  ASSERT_OK(txn->Insert("accounts", Account("c", 300)).status());
  ASSERT_OK(txn->Commit());
  EXPECT_EQ(db->GetRow("accounts", a)->Get("balance")->int64_value(), 50);
  EXPECT_TRUE(db->GetRow("accounts", b).status().IsNotFound());
  EXPECT_EQ(*db->CountRows("accounts"), 2u);
}

TEST(TransactionTest, AfterTriggersFireAtCommitOnly) {
  TempDir dir;
  auto db = *Database::Open(Opts(dir.path()));
  ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
  int fired = 0;
  TriggerDef def;
  def.name = "after";
  def.table = "accounts";
  def.ops = kDmlInsert;
  def.action = [&](const TriggerEvent&) {
    ++fired;
    return Status::OK();
  };
  ASSERT_OK(db->CreateTrigger(std::move(def)));
  auto txn = db->BeginTransaction();
  ASSERT_OK(txn->Insert("accounts", Account("a", 1)).status());
  ASSERT_OK(txn->Insert("accounts", Account("b", 2)).status());
  EXPECT_EQ(fired, 0);  // Buffered, not committed.
  ASSERT_OK(txn->Commit());
  EXPECT_EQ(fired, 2);
}

TEST(TransactionTest, IntraTxnUniqueViolationRejectsWholeTxn) {
  TempDir dir;
  auto db = *Database::Open(Opts(dir.path()));
  ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
  ASSERT_OK(db->CreateIndex("accounts", "name", /*unique=*/true));
  auto txn = db->BeginTransaction();
  ASSERT_OK(txn->Insert("accounts", Account("dup", 1)).status());
  ASSERT_OK(txn->Insert("accounts", Account("dup", 2)).status());
  EXPECT_TRUE(txn->Commit().IsAlreadyExists());
  EXPECT_EQ(*db->CountRows("accounts"), 0u);  // Nothing applied.
}

TEST(RecoveryTest, ReopenReplaysCommittedWork) {
  TempDir dir;
  RowId a;
  {
    auto db = *Database::Open(Opts(dir.path()));
    ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
    ASSERT_OK(db->CreateIndex("accounts", "name", true));
    a = *db->Insert("accounts", Account("alice", 500));
    ASSERT_OK(db->Insert("accounts", Account("bob", 300)).status());
    ASSERT_OK(db->UpdateRow("accounts", a, Account("alice", 600)));
  }
  auto db = *Database::Open(Opts(dir.path()));
  EXPECT_EQ(*db->CountRows("accounts"), 2u);
  EXPECT_EQ(db->GetRow("accounts", a)->Get("balance")->int64_value(), 600);
  // Index was rebuilt (via the logged create-index record).
  const Table* table = *db->GetTable("accounts");
  const BTreeIndex* index = table->GetIndex("name");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->Lookup(Value::String("alice")).size(), 1u);
  // Unique constraint still enforced post-recovery.
  EXPECT_TRUE(
      db->Insert("accounts", Account("alice", 1)).status().IsAlreadyExists());
}

TEST(RecoveryTest, DroppedTableStaysDropped) {
  TempDir dir;
  {
    auto db = *Database::Open(Opts(dir.path()));
    ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
    ASSERT_OK(db->Insert("accounts", Account("a", 1)).status());
    ASSERT_OK(db->DropTable("accounts"));
  }
  auto db = *Database::Open(Opts(dir.path()));
  EXPECT_TRUE(db->GetTable("accounts").status().IsNotFound());
}

TEST(RecoveryTest, CheckpointThenReplayTail) {
  TempDir dir;
  {
    auto db = *Database::Open(Opts(dir.path()));
    ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(
          db->Insert("accounts", Account("u" + std::to_string(i), i))
              .status());
    }
    ASSERT_OK(db->Checkpoint(db->wal_end_lsn()));
    // Post-checkpoint work must come from WAL replay.
    for (int i = 50; i < 60; ++i) {
      ASSERT_OK(
          db->Insert("accounts", Account("u" + std::to_string(i), i))
              .status());
    }
  }
  auto db = *Database::Open(Opts(dir.path()));
  EXPECT_EQ(*db->CountRows("accounts"), 60u);
}

TEST(RecoveryTest, CheckpointPreservesIndexDefsAndRowIds) {
  TempDir dir;
  RowId last;
  {
    auto db = *Database::Open(Opts(dir.path()));
    ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
    ASSERT_OK(db->CreateIndex("accounts", "balance", false));
    last = *db->Insert("accounts", Account("x", 42));
    ASSERT_OK(db->Checkpoint(db->wal_end_lsn()));
  }
  auto db = *Database::Open(Opts(dir.path()));
  const Table* table = *db->GetTable("accounts");
  EXPECT_NE(table->GetIndex("balance"), nullptr);
  EXPECT_EQ(table->GetIndex("balance")->Lookup(Value::Int64(42)).size(), 1u);
  // Row id allocation continues, never reuses.
  const RowId next = *db->Insert("accounts", Account("y", 1));
  EXPECT_GT(next, last);
}

TEST(RecoveryTest, RepeatedCheckpointAndReopenCycles) {
  TempDir dir;
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto db = *Database::Open(Opts(dir.path()));
    if (cycle == 0) {
      ASSERT_TRUE(db->CreateTable("accounts", AccountsSchema()).ok());
    }
    EXPECT_EQ(*db->CountRows("accounts"),
              static_cast<size_t>(cycle * 10));
    for (int i = 0; i < 10; ++i) {
      ASSERT_OK(db->Insert("accounts",
                           Account("c" + std::to_string(cycle) + "-" +
                                       std::to_string(i),
                                   i))
                    .status());
    }
    if (cycle % 2 == 0) {
      ASSERT_OK(db->Checkpoint(db->wal_end_lsn()));
    }
  }
  auto db = *Database::Open(Opts(dir.path()));
  EXPECT_EQ(*db->CountRows("accounts"), 40u);
}

TEST(SnapshotCodecTest, RoundTrip) {
  Snapshot snap;
  snap.next_table_id = 7;
  snap.next_txn_id = 99;
  TableSnapshot t;
  t.id = 3;
  t.name = "things";
  t.fields = {{"k", ValueType::kString, false}};
  t.next_row_id = 12;
  t.indexes = {{"k", true}};
  t.rows = {{1, "row-one"}, {5, std::string("\x00\x01", 2)}};
  snap.tables.push_back(std::move(t));

  const std::string encoded = EncodeSnapshot(snap);
  auto decoded = DecodeSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->next_table_id, 7u);
  EXPECT_EQ(decoded->next_txn_id, 99u);
  ASSERT_EQ(decoded->tables.size(), 1u);
  EXPECT_EQ(decoded->tables[0].name, "things");
  EXPECT_EQ(decoded->tables[0].rows[1].second, std::string("\x00\x01", 2));
  EXPECT_TRUE(decoded->tables[0].indexes[0].unique);
}

TEST(SnapshotCodecTest, CorruptionDetected) {
  Snapshot snap;
  std::string encoded = EncodeSnapshot(snap);
  std::string flipped = encoded;
  flipped[2] ^= 0x01;
  EXPECT_TRUE(DecodeSnapshot(flipped).status().IsCorruption());
  EXPECT_TRUE(DecodeSnapshot(encoded.substr(0, 3)).status().IsCorruption());
}

TEST(SnapshotCodecTest, CheckpointMetaRoundTrip) {
  CheckpointMeta meta;
  meta.snapshot_file = "snapshot-000042.ckpt";
  meta.replay_from_lsn = 123456;
  auto decoded = DecodeCheckpointMeta(EncodeCheckpointMeta(meta));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->snapshot_file, meta.snapshot_file);
  EXPECT_EQ(decoded->replay_from_lsn, meta.replay_from_lsn);
}

}  // namespace
}  // namespace edadb
