#include "common/clock.h"

#include <map>
#include <type_traits>

#include "gtest/gtest.h"

namespace edadb {
namespace {

// The negative side of the domain-split contract (mixing wall and
// steady must not compile) lives in tests/compile/clock_domain_probe.cc
// behind the WILL_FAIL clock_domain_probe_* ctest entries. This file
// checks the positive algebra.

TEST(ClockDomainTest, FromMicrosRoundTrips) {
  const WallMicros w = WallMicros::FromMicros(1234);
  const SteadyMicros s = SteadyMicros::FromMicros(-77);
  EXPECT_EQ(w.micros(), 1234);
  EXPECT_EQ(s.micros(), -77);
  EXPECT_EQ(WallMicros().micros(), 0);  // Default = unset sentinel.
}

TEST(ClockDomainTest, SameDomainComparisons) {
  const SteadyMicros a = SteadyMicros::FromMicros(10);
  const SteadyMicros b = SteadyMicros::FromMicros(20);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(a <= b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(b >= a);
  EXPECT_TRUE(a != b);
  EXPECT_TRUE(a == SteadyMicros::FromMicros(10));
}

TEST(ClockDomainTest, PointPlusDurationIsPoint) {
  const WallMicros t = WallMicros::FromMicros(100);
  EXPECT_EQ((t + 50).micros(), 150);
  EXPECT_EQ((50 + t).micros(), 150);
  EXPECT_EQ((t - 30).micros(), 70);
  WallMicros u = t;
  u += 11;
  EXPECT_EQ(u.micros(), 111);
}

TEST(ClockDomainTest, PointMinusPointIsDuration) {
  const SteadyMicros a = SteadyMicros::FromMicros(500);
  const SteadyMicros b = SteadyMicros::FromMicros(180);
  const TimestampMicros d = a - b;
  static_assert(std::is_same_v<decltype(a - b), TimestampMicros>,
                "same-domain difference must be a raw duration");
  EXPECT_EQ(d, 320);
}

TEST(ClockDomainTest, WallSpanCrossesToSteadyAsDuration) {
  // The sanctioned recovery idiom: remaining wall span re-anchored on
  // the steady clock (RebuildRuntimeLocked).
  const WallMicros wall_now = WallMicros::FromMicros(1000);
  const WallMicros locked_until = WallMicros::FromMicros(1750);
  const SteadyMicros steady_now = SteadyMicros::FromMicros(42);
  const SteadyMicros deadline = steady_now + (locked_until - wall_now);
  EXPECT_EQ(deadline.micros(), 42 + 750);
}

TEST(ClockDomainTest, OrderedContainersWork) {
  std::map<SteadyMicros, int> delayed;
  delayed[SteadyMicros::FromMicros(30)] = 3;
  delayed[SteadyMicros::FromMicros(10)] = 1;
  delayed[SteadyMicros::FromMicros(20)] = 2;
  EXPECT_EQ(delayed.begin()->second, 1);
  EXPECT_EQ(delayed.rbegin()->second, 3);
}

TEST(ClockDomainTest, ClockTypedNowMatchesRawPrimitives) {
  SimulatedClock clock(5000);
  EXPECT_EQ(clock.WallNow().micros(), clock.NowMicros());
  clock.AdvanceMicros(250);
  EXPECT_EQ(clock.WallNow().micros(), 5250);
  // Steady side is hybrid (manual + host elapsed): typed and raw reads
  // agree up to the real time between the two calls.
  const SteadyMicros s = clock.SteadyNow();
  EXPECT_GE(clock.SteadyNowMicros(), s.micros());
}

TEST(ClockDomainTest, WallStepMovesWallNotSteady) {
  SimulatedClock clock(0);
  const SteadyMicros before = clock.SteadyNow();
  clock.SetMicros(365LL * 24 * kMicrosPerHour);  // +1 year wall step.
  EXPECT_EQ(clock.WallNow().micros(), 365LL * 24 * kMicrosPerHour);
  const SteadyMicros after = clock.SteadyNow();
  // Only host time elapsed between the reads; the step added nothing.
  EXPECT_LT(after - before, kMicrosPerSecond);
}

}  // namespace
}  // namespace edadb
