// Tests for the annotated mutex wrappers and the debug lock-rank
// registry. The death tests enable the registry explicitly so they pass
// in both Debug and Release builds.

#include "common/mutex.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace edadb {
namespace {

class LockGraphTest : public testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = lock_graph::IsEnabled();
    lock_graph::ResetForTesting();
    lock_graph::Enable(true);
  }
  void TearDown() override {
    lock_graph::ResetForTesting();
    lock_graph::Enable(was_enabled_);
  }
  bool was_enabled_ = false;
};

TEST_F(LockGraphTest, ConsistentOrderIsAccepted) {
  Mutex a("order_test::a");
  Mutex b("order_test::b");
  for (int i = 0; i < 3; ++i) {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
}

TEST_F(LockGraphTest, RecursiveMutexReentryIsAccepted) {
  RecursiveMutex m("order_test::recursive");
  RecursiveMutexLock outer(&m);
  RecursiveMutexLock inner(&m);
}

using LockGraphDeathTest = LockGraphTest;

TEST_F(LockGraphDeathTest, InversionAborts) {
  Mutex a("inversion_test::a");
  Mutex b("inversion_test::b");
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  EXPECT_DEATH(
      {
        MutexLock lb(&b);
        MutexLock la(&a);
      },
      "lock-order inversion");
}

TEST_F(LockGraphDeathTest, SelfDeadlockAborts) {
  Mutex m("self_deadlock_test::m");
  EXPECT_DEATH(
      {
        m.Lock();
        m.Lock();
      },
      "self-deadlock");
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex m;
  m.Lock();
  std::thread other([&] { EXPECT_FALSE(m.TryLock()); });
  other.join();
  m.Unlock();
  ASSERT_TRUE(m.TryLock());
  m.Unlock();
}

TEST(MutexTest, CondVarSignalsWaiters) {
  Mutex m("condvar_test::m");
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&m);
    while (!ready) cv.Wait(&m);
  });
  {
    MutexLock lock(&m);
    ready = true;
  }
  cv.SignalAll();
  waiter.join();
}

TEST(MutexTest, CondVarWaitForMicrosTimesOut) {
  Mutex m;
  MutexLock lock(&m);
  CondVar cv;
  EXPECT_FALSE(cv.WaitForMicros(&m, 1000));
}

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex m("contention_test::m");
  int64_t counter = 0;  // Deliberately non-atomic; mu_ is the guard.
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&m);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kIncrements);
}

}  // namespace
}  // namespace edadb
