#include "common/clock.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(ClockTest, SystemClockAdvances) {
  SystemClock* clock = SystemClock::Default();
  const TimestampMicros a = clock->NowMicros();
  const TimestampMicros b = clock->NowMicros();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 1577836800LL * kMicrosPerSecond);  // After 2020.
}

TEST(ClockTest, SimulatedClockIsManual) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(500);
  EXPECT_EQ(clock.NowMicros(), 1500);
  clock.SetMicros(42);
  EXPECT_EQ(clock.NowMicros(), 42);
}

TEST(ClockTest, FormatTimestampEpoch) {
  EXPECT_EQ(FormatTimestamp(0), "1970-01-01 00:00:00.000000");
  EXPECT_EQ(FormatTimestamp(1), "1970-01-01 00:00:00.000001");
  EXPECT_EQ(FormatTimestamp(61 * kMicrosPerSecond + 250000),
            "1970-01-01 00:01:01.250000");
}

TEST(ClockTest, UnitConstants) {
  EXPECT_EQ(kMicrosPerSecond, 1000000);
  EXPECT_EQ(kMicrosPerMinute, 60 * kMicrosPerSecond);
  EXPECT_EQ(kMicrosPerHour, 3600LL * kMicrosPerSecond);
}

}  // namespace
}  // namespace edadb
