#include "common/metrics.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace metrics {
namespace {

/// Restores the global enabled flag (tests flip it to probe both modes).
class MetricsEnabledGuard {
 public:
  MetricsEnabledGuard() : was_(Enabled()) {}
  ~MetricsEnabledGuard() { SetEnabled(was_); }

 private:
  const bool was_;
};

TEST(CounterTest, AddAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.ResetForTesting();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(-5);
  EXPECT_EQ(gauge.Value(), -5);
}

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds exactly 0; bucket i>0 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  // Values beyond the last bucket clamp into it.
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX),
            HistogramSnapshot::kNumBuckets - 1);
}

TEST(HistogramTest, BucketIndexAndUpperBoundAgree) {
  // Property: for every bucket below the clamping one, the upper bound
  // itself lands in the bucket and upper+1 lands in the next.
  for (size_t i = 0; i + 1 < HistogramSnapshot::kNumBuckets; ++i) {
    const uint64_t upper = Histogram::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(upper), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(upper + 1), i + 1) << "bucket " << i;
  }
}

TEST(HistogramTest, RecordAndSnapshot) {
  MetricsEnabledGuard guard;
  SetEnabled(true);
  Histogram hist;
  hist.Record(0);
  hist.Record(1);
  hist.Record(100);
  HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 101u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_EQ(snap.buckets[0], 1u);
  hist.ResetForTesting();
  snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.max, 0u);
}

TEST(HistogramTest, RecordIsNoOpWhenDisabled) {
  MetricsEnabledGuard guard;
  Histogram hist;
  SetEnabled(false);
  hist.Record(7);
  EXPECT_EQ(hist.Snapshot().count, 0u);
  SetEnabled(true);
  hist.Record(7);
  EXPECT_EQ(hist.Snapshot().count, 1u);
}

TEST(HistogramTest, PercentileExactWithinOneBucket) {
  MetricsEnabledGuard guard;
  SetEnabled(true);
  Histogram hist;
  // 100 samples of value 5 (bucket [4,8), upper bound 7, max 5): every
  // percentile reports min(bound, max) = 5.
  for (int i = 0; i < 100; ++i) hist.Record(5);
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.Percentile(0.0), 5.0);
  EXPECT_EQ(snap.Percentile(0.5), 5.0);
  EXPECT_EQ(snap.Percentile(1.0), 5.0);
}

TEST(HistogramTest, PercentileEmptyIsZero) {
  const HistogramSnapshot empty;
  EXPECT_EQ(empty.Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentileOrderAndBoundsProperty) {
  MetricsEnabledGuard guard;
  SetEnabled(true);
  testing::SeededRng rng(/*stream=*/71);
  for (int round = 0; round < 20; ++round) {
    Histogram hist;
    uint64_t true_max = 0;
    const int n = 1 + static_cast<int>(rng.Uniform(400));
    for (int i = 0; i < n; ++i) {
      // Spread over many buckets: random bit width, then random value.
      const uint64_t value = rng.Next() >> rng.Uniform(64);
      hist.Record(value);
      true_max = std::max(true_max, value);
    }
    const HistogramSnapshot snap = hist.Snapshot();
    ASSERT_EQ(snap.count, static_cast<uint64_t>(n));
    EXPECT_EQ(snap.max, true_max);
    // Quantiles are monotone and never exceed the observed max.
    double prev = 0;
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
      const double v = snap.Percentile(q);
      EXPECT_GE(v, prev) << "q=" << q;
      EXPECT_LE(v, static_cast<double>(true_max)) << "q=" << q;
      prev = v;
    }
    // Log-bucketing: the pN estimate is exact to within one power of
    // two, so p100 is at least half the true max.
    EXPECT_GE(snap.Percentile(1.0) * 2 + 1, static_cast<double>(true_max));
  }
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  MetricsEnabledGuard guard;
  SetEnabled(true);
  testing::SeededRng rng(/*stream=*/72);
  Histogram a;
  Histogram b;
  Histogram combined;
  for (int i = 0; i < 300; ++i) {
    const uint64_t value = rng.Next() >> rng.Uniform(64);
    (i % 2 == 0 ? a : b).Record(value);
    combined.Record(value);
  }
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const HistogramSnapshot expected = combined.Snapshot();
  EXPECT_EQ(merged.count, expected.count);
  EXPECT_EQ(merged.sum, expected.sum);
  EXPECT_EQ(merged.max, expected.max);
  EXPECT_EQ(merged.buckets, expected.buckets);
  for (double q : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(merged.Percentile(q), expected.Percentile(q)) << "q=" << q;
  }
}

TEST(LatencyScopeTest, RecordsElapsedWhenEnabled) {
  MetricsEnabledGuard guard;
  SetEnabled(true);
  Histogram hist;
  { LatencyScope scope(&hist); }
  EXPECT_EQ(hist.Snapshot().count, 1u);
  { LatencyScope scope(nullptr); }  // Null histogram: safe no-op.
}

TEST(LatencyScopeTest, NoOpWhenDisabled) {
  MetricsEnabledGuard guard;
  SetEnabled(false);
  Histogram hist;
  { LatencyScope scope(&hist); }
  // The *enabled* flag at construction wins: flipping mid-scope must
  // not record into a histogram the scope never armed.
  SetEnabled(false);
  Histogram late;
  {
    LatencyScope scope(&late);
    SetEnabled(true);
  }
  EXPECT_EQ(hist.Snapshot().count, 0u);
  EXPECT_EQ(late.Snapshot().count, 0u);
}

TEST(RegistryTest, LookupsAreStableAndShared) {
  Registry registry;
  Counter* counter = registry.GetCounter("test.counter");
  EXPECT_EQ(registry.GetCounter("test.counter"), counter);
  EXPECT_NE(registry.GetCounter("test.other"), counter);
  Gauge* gauge = registry.GetGauge("test.gauge");
  EXPECT_EQ(registry.GetGauge("test.gauge"), gauge);
  Histogram* hist = registry.GetHistogram("test.hist");
  EXPECT_EQ(registry.GetHistogram("test.hist"), hist);
  // Same name, different kinds: distinct instruments (kind-scoped maps).
  EXPECT_NE(static_cast<void*>(registry.GetCounter("test.dual")),
            static_cast<void*>(registry.GetGauge("test.dual")));
}

TEST(RegistryTest, DefaultIsSingleton) {
  EXPECT_EQ(Registry::Default(), Registry::Default());
}

TEST(RegistryTest, SnapshotSortedAndComplete) {
  MetricsEnabledGuard guard;
  SetEnabled(true);
  Registry registry;
  registry.GetCounter("b.counter")->Add(2);
  registry.GetGauge("a.gauge")->Set(-7);
  registry.GetHistogram("c.hist")->Record(16);
  const std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.gauge");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[0].value, -7);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].kind, MetricKind::kCounter);
  EXPECT_EQ(snap[1].value, 2);
  EXPECT_EQ(snap[2].name, "c.hist");
  EXPECT_EQ(snap[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].count, 1u);
  EXPECT_EQ(snap[2].max, 16u);
}

TEST(RegistryTest, CollectorsContributeAndAggregate) {
  Registry registry;
  registry.GetCounter("dup.metric")->Add(5);
  auto emit = [](std::vector<MetricSnapshot>* out) {
    MetricSnapshot ms;
    ms.name = "dup.metric";
    ms.kind = MetricKind::kCounter;
    ms.value = 10;
    out->push_back(ms);
    ms.name = "collector.only";
    ms.value = 1;
    out->push_back(ms);
  };
  CallbackHandle handle = registry.RegisterCollector(emit);
  std::vector<MetricSnapshot> snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "collector.only");
  // Scalar collision: owned 5 + collected 10.
  EXPECT_EQ(snap[1].name, "dup.metric");
  EXPECT_EQ(snap[1].value, 15);

  handle.Unregister();
  snap = registry.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "dup.metric");
  EXPECT_EQ(snap[0].value, 5);
}

TEST(RegistryTest, CollectorHandleUnregistersOnDestruction) {
  Registry registry;
  {
    CallbackHandle handle =
        registry.RegisterCollector([](std::vector<MetricSnapshot>* out) {
          MetricSnapshot ms;
          ms.name = "scoped.metric";
          out->push_back(ms);
        });
    EXPECT_EQ(registry.Snapshot().size(), 1u);
  }
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(RegistryTest, CollectorHandleMoves) {
  Registry registry;
  CallbackHandle a =
      registry.RegisterCollector([](std::vector<MetricSnapshot>* out) {
        MetricSnapshot ms;
        ms.name = "moved.metric";
        out->push_back(ms);
      });
  CallbackHandle b = std::move(a);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
  CallbackHandle c;
  c = std::move(b);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
  c.Unregister();
  c.Unregister();  // Idempotent.
  EXPECT_TRUE(registry.Snapshot().empty());
}

TEST(RegistryTest, ResetForTestingZeroesButKeepsPointers) {
  Registry registry;
  Counter* counter = registry.GetCounter("reset.counter");
  counter->Add(9);
  registry.GetHistogram("reset.hist")->Record(4);
  registry.ResetForTesting();
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("reset.counter"), counter);
  EXPECT_EQ(registry.GetHistogram("reset.hist")->Snapshot().count, 0u);
}

/// Dumps must be well-formed whether collection is on or off: the gate
/// in scripts/check.sh re-runs this suite with EDADB_METRICS=0.
class DumpFormatTest : public ::testing::TestWithParam<bool> {};

TEST_P(DumpFormatTest, TextAndJsonWellFormed) {
  MetricsEnabledGuard guard;
  SetEnabled(GetParam());
  Registry registry;
  registry.GetCounter("fmt.counter")->Add(3);
  registry.GetHistogram("fmt.hist")->Record(1000);

  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("fmt.counter counter 3"), std::string::npos);
  EXPECT_NE(text.find("fmt.hist histogram count="), std::string::npos);

  const std::string json = registry.DumpJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\": \"fmt.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"histogram\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

INSTANTIATE_TEST_SUITE_P(EnabledAndDisabled, DumpFormatTest,
                         ::testing::Bool());

TEST(MetricKindTest, Names) {
  EXPECT_EQ(MetricKindToString(MetricKind::kCounter), "counter");
  EXPECT_EQ(MetricKindToString(MetricKind::kGauge), "gauge");
  EXPECT_EQ(MetricKindToString(MetricKind::kHistogram), "histogram");
}

}  // namespace
}  // namespace metrics
}  // namespace edadb
