#include "common/random.h"

#include <cmath>
#include <map>
#include <vector>

#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Random c(124);
  bool any_diff = false;
  Random a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Random rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, NormalMomentsRoughlyStandard) {
  Random rng(10);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RandomTest, NormalWithParameters) {
  Random rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(100.0, 5.0);
  EXPECT_NEAR(sum / n, 100.0, 0.3);
}

TEST(RandomTest, ZipfIsSkewedTowardLowRanks) {
  Random rng(12);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const uint64_t rank = rng.Zipf(1000, 0.9);
    ASSERT_LT(rank, 1000u);
    counts[rank]++;
  }
  // Rank 0 should dominate any mid-pack rank by a wide margin.
  EXPECT_GT(counts[0], 20 * (counts[500] + 1));
}

TEST(RandomTest, OneInProbability) {
  Random rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.OneIn(10)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(RandomTest, NextStringLengthAndAlphabet) {
  Random rng(14);
  const std::string s = rng.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace edadb
