#include "common/status.h"

#include "common/result.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Aborted("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string moved = *std::move(r);
  EXPECT_EQ(moved, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  EDADB_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> ChainedMacro(int x) {
  EDADB_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(-1).status().IsInvalidArgument());
  EXPECT_EQ(*DoubleIfPositive(4), 8);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  EXPECT_EQ(*ChainedMacro(4), 9);
  EXPECT_TRUE(ChainedMacro(-2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace edadb
