#include "common/string_util.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("wal-0001.log", "wal-"));
  EXPECT_FALSE(StartsWith("wa", "wal-"));
  EXPECT_TRUE(EndsWith("wal-0001.log", ".log"));
  EXPECT_FALSE(EndsWith("wal-0001.lo", ".log"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("  \t "), "");
  EXPECT_EQ(Trim("no-space"), "no-space");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
}

TEST(StringUtilTest, LikeMatchBasics) {
  EXPECT_TRUE(LikeMatch("hello", "hello"));
  EXPECT_FALSE(LikeMatch("hello", "hellO"));  // Case-sensitive.
  EXPECT_TRUE(LikeMatch("hello", "h%"));
  EXPECT_TRUE(LikeMatch("hello", "%o"));
  EXPECT_TRUE(LikeMatch("hello", "%ell%"));
  EXPECT_TRUE(LikeMatch("hello", "h_llo"));
  EXPECT_FALSE(LikeMatch("hello", "h_llx"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
}

TEST(StringUtilTest, LikeMatchBacktracking) {
  // Requires backtracking over the first '%'.
  EXPECT_TRUE(LikeMatch("aXbXc", "%X_"));
  EXPECT_TRUE(LikeMatch("mississippi", "%ss%pp%"));
  EXPECT_FALSE(LikeMatch("mississippi", "%ss%xx%"));
}

TEST(StringUtilTest, GlobMatch) {
  EXPECT_TRUE(GlobMatch("sensors/temp/3", "sensors/*"));
  EXPECT_TRUE(GlobMatch("sensors/temp/3", "sensors/*/?"));
  EXPECT_FALSE(GlobMatch("sensors/temp/31", "sensors/temp/?"));
  EXPECT_TRUE(GlobMatch("anything", "*"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%s", ""), "");
  EXPECT_EQ(StringPrintf("%05.1f", 3.25), "003.2");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(3u * 1024 * 1024), "3.0 MB");
}

}  // namespace
}  // namespace edadb
