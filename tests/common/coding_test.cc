#include "common/coding.h"

#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed32(&buf, UINT32_MAX);
  std::string_view in = buf;
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xdeadbeef);
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, UINT32_MAX);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, UINT64_MAX);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  std::string_view in = buf;
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, UINT64_MAX);
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789abcdefULL);
}

TEST(CodingTest, VarintBoundaries) {
  const std::vector<uint64_t> cases = {
      0, 1, 127, 128, 16383, 16384, (1ULL << 32) - 1, 1ULL << 32,
      UINT64_MAX};
  for (const uint64_t value : cases) {
    std::string buf;
    PutVarint64(&buf, value);
    std::string_view in = buf;
    uint64_t decoded;
    ASSERT_TRUE(GetVarint64(&in, &decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(in.empty());
  }
}

TEST(CodingTest, VarintSizes) {
  std::string one_byte;
  PutVarint64(&one_byte, 127);
  EXPECT_EQ(one_byte.size(), 1u);
  std::string two_bytes;
  PutVarint64(&two_bytes, 128);
  EXPECT_EQ(two_bytes.size(), 2u);
  std::string ten_bytes;
  PutVarint64(&ten_bytes, UINT64_MAX);
  EXPECT_EQ(ten_bytes.size(), 10u);
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  std::string_view in = buf;
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string binary("\x00\x01\xff", 3);
  PutLengthPrefixed(&buf, binary);
  std::string_view in = buf;
  std::string_view piece;
  ASSERT_TRUE(GetLengthPrefixed(&in, &piece));
  EXPECT_EQ(piece, "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &piece));
  EXPECT_EQ(piece, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &piece));
  EXPECT_EQ(piece, binary);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedTruncatedBodyFails) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  std::string_view in(buf.data(), buf.size() - 3);
  std::string_view piece;
  EXPECT_FALSE(GetLengthPrefixed(&in, &piece));
}

TEST(CodingTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (const int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                          std::numeric_limits<int64_t>::min(),
                          std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(CodingTest, SignedVarintRoundTrip) {
  for (const int64_t value :
       {int64_t{0}, int64_t{-1}, int64_t{63}, int64_t{-64}, int64_t{1000000},
        int64_t{-1000000}, std::numeric_limits<int64_t>::min(),
        std::numeric_limits<int64_t>::max()}) {
    std::string buf;
    PutVarsint64(&buf, value);
    std::string_view in = buf;
    int64_t decoded;
    ASSERT_TRUE(GetVarsint64(&in, &decoded));
    EXPECT_EQ(decoded, value);
  }
}

TEST(CodingTest, DoubleRoundTripIncludingSpecials) {
  for (const double value :
       {0.0, -0.0, 1.5, -3.25, 1e300, -1e-300,
        std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::denorm_min()}) {
    std::string buf;
    PutDouble(&buf, value);
    std::string_view in = buf;
    double decoded;
    ASSERT_TRUE(GetDouble(&in, &decoded));
    EXPECT_EQ(std::memcmp(&decoded, &value, sizeof(double)), 0);
  }
}

TEST(CodingTest, RandomizedMixedRoundTrip) {
  Random rng(20260707);
  for (int iter = 0; iter < 200; ++iter) {
    std::string buf;
    std::vector<uint64_t> varints;
    std::vector<std::string> strings;
    const int n = static_cast<int>(rng.Uniform(20)) + 1;
    for (int i = 0; i < n; ++i) {
      const uint64_t v = rng.Next() >> rng.Uniform(64);
      varints.push_back(v);
      PutVarint64(&buf, v);
      std::string s = rng.NextString(rng.Uniform(50));
      PutLengthPrefixed(&buf, s);
      strings.push_back(std::move(s));
    }
    std::string_view in = buf;
    for (int i = 0; i < n; ++i) {
      uint64_t v;
      std::string_view s;
      ASSERT_TRUE(GetVarint64(&in, &v));
      ASSERT_TRUE(GetLengthPrefixed(&in, &s));
      EXPECT_EQ(v, varints[static_cast<size_t>(i)]);
      EXPECT_EQ(s, strings[static_cast<size_t>(i)]);
    }
    EXPECT_TRUE(in.empty());
  }
}

}  // namespace
}  // namespace edadb
