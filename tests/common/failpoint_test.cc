#include "common/failpoint.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "testing/crash_harness.h"

namespace fp = edadb::failpoint;
using edadb::Result;
using edadb::Status;
using edadb::testing::ArmCrash;
using edadb::testing::ArmError;
using edadb::testing::FailpointGuard;
using edadb::testing::SimulatedCrash;

namespace {

Status GuardedOp() {
  FAILPOINT("test.op");
  return Status::OK();
}

Result<int> GuardedValue() {
  FAILPOINT("test.value");
  return 42;
}

TEST(FailpointTest, UnarmedSiteIsANoop) {
  FailpointGuard guard;
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(42, *GuardedValue());
}

TEST(FailpointTest, InjectedStatusBecomesReturnValue) {
  FailpointGuard guard;
  ArmError("test.op", Status::Corruption("boom"));
  const Status s = GuardedOp();
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ("boom", s.message());
  // max_fires=1: the next call sails through.
  EXPECT_TRUE(GuardedOp().ok());
}

TEST(FailpointTest, InjectionWorksInResultReturningFunctions) {
  FailpointGuard guard;
  ArmError("test.value");
  const Result<int> r = GuardedValue();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
  EXPECT_EQ(42, *GuardedValue());
}

TEST(FailpointTest, SkipDelaysFirstFires) {
  FailpointGuard guard;
  ArmError("test.op", Status::IOError("late"), /*skip=*/2);
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_FALSE(GuardedOp().ok());  // Third hit fires.
  EXPECT_TRUE(GuardedOp().ok());   // max_fires=1 exhausted.
}

TEST(FailpointTest, MaxFiresBoundsInjections) {
  FailpointGuard guard;
  ArmError("test.op", Status::IOError("x"), /*skip=*/0, /*max_fires=*/3);
  int failures = 0;
  for (int i = 0; i < 10; ++i) {
    if (!GuardedOp().ok()) ++failures;
  }
  EXPECT_EQ(3, failures);
}

TEST(FailpointTest, ProbabilityIsDeterministicUnderSeed) {
  FailpointGuard guard;
  const auto run = [] {
    fp::SetSeed(12345);
    fp::Action action;
    action.probability = 0.5;
    action.max_fires = -1;
    fp::Arm("test.op", action);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(!GuardedOp().ok());
    fp::Disarm("test.op");
    return fired;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);
  const int fires = static_cast<int>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires, 50);
  EXPECT_LT(fires, 150);
}

TEST(FailpointTest, CrashInvokesHandler) {
  FailpointGuard guard;
  ArmCrash("test.op");
  bool crashed = false;
  try {
    EDADB_IGNORE_STATUS(GuardedOp(),
                        "the armed crash action throws before returning");
  } catch (const SimulatedCrash& crash) {
    crashed = true;
    EXPECT_EQ("test.op", crash.site);
  }
  EXPECT_TRUE(crashed);
}

TEST(FailpointTest, DelayFiresWithoutFailing) {
  FailpointGuard guard;
  fp::Action action;
  action.kind = fp::ActionKind::kDelay;
  action.arg = 100;  // 100us: just prove the path runs.
  fp::Arm("test.op", action);
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(1u, fp::HitCount("test.op"));
}

TEST(FailpointTest, HitCountsTrackSitesWhileAnythingIsArmed) {
  FailpointGuard guard;
  // Arming an unrelated site still counts hits on this one, which is
  // how the torture harness validates its site list against reality.
  ArmError("test.unrelated");
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(2u, fp::HitCount("test.op"));
}

TEST(FailpointTest, DisarmAllRestoresTheFastPath) {
  FailpointGuard guard;
  ArmError("test.op");
  ArmError("test.value");
  EXPECT_EQ(2u, fp::ArmedSites().size());
  fp::DisarmAll();
  EXPECT_TRUE(fp::ArmedSites().empty());
  EXPECT_FALSE(fp::internal::AnyArmed());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST(FailpointTest, RearmingReplacesActionAndResetsCounters) {
  FailpointGuard guard;
  ArmError("test.op", Status::IOError("a"), /*skip=*/5);
  EXPECT_TRUE(GuardedOp().ok());
  ArmError("test.op", Status::Aborted("b"), /*skip=*/0);
  const Status s = GuardedOp();
  EXPECT_TRUE(s.IsAborted());
}

}  // namespace
