// Compiled with EDADB_FAILPOINT_DISABLE (see tests/CMakeLists.txt):
// proves the release-build contract that FAILPOINT compiles to nothing.
// The macro gate must report disabled, and a FAILPOINT-bearing function
// must never consult the registry — even with its site armed.
#define EDADB_FAILPOINT_DISABLE 1

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include "common/status.h"

static_assert(EDADB_FAILPOINTS_ENABLED == 0,
              "EDADB_FAILPOINT_DISABLE must force the no-op expansion");

namespace fp = edadb::failpoint;
using edadb::Status;

namespace {

Status GuardedOp() {
  FAILPOINT("disabled.op");
  FAILPOINT_HIT("disabled.hit");
  return Status::OK();
}

TEST(FailpointDisabledTest, ArmedSiteNeverFiresOrCounts) {
  fp::ResetHitCounts();
  fp::Action action;
  action.status = Status::IOError("must never appear");
  fp::Arm("disabled.op", action);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(GuardedOp().ok());
  }
  // The disabled expansion never reaches Fire(), so nothing is counted.
  EXPECT_EQ(0u, fp::HitCount("disabled.op"));
  EXPECT_EQ(0u, fp::HitCount("disabled.hit"));
  fp::DisarmAll();
}

}  // namespace
