#include "common/crc32.h"

#include <string>

#include "gtest/gtest.h"

namespace edadb {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xe3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8a9136aau);
}

TEST(Crc32Test, ExtendMatchesWholeBuffer) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t a = Crc32cExtend(Crc32c(data.substr(0, split)),
                                    data.substr(split));
    EXPECT_EQ(a, Crc32c(data)) << "split=" << split;
  }
}

TEST(Crc32Test, DifferentInputsDiffer) {
  EXPECT_NE(Crc32c("a"), Crc32c("b"));
  EXPECT_NE(Crc32c("ab"), Crc32c("ba"));
  EXPECT_NE(Crc32c(std::string("\0", 1)), Crc32c(std::string("\0\0", 2)));
}

TEST(Crc32Test, MaskUnmaskRoundTrip) {
  for (const uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu,
                             Crc32c("payload")}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);  // Masking must change the value.
  }
}

}  // namespace
}  // namespace edadb
