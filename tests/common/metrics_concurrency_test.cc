// Concurrency stress for the metrics layer; a TSan target (check.sh
// stage 6 runs ctest -R 'concurrency|integration' on the TSan build).
// Writers hammer shared instruments while snapshotters dump the
// registry and collector churn races registration against invocation.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "gtest/gtest.h"
#include "testing/sleep.h"

namespace edadb {
namespace metrics {
namespace {

TEST(MetricsConcurrencyTest, CountersAreLinearizableUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 50000;
  Counter counter;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.Add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsConcurrencyTest, HistogramCountSumConsistentAfterJoin) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 20000;
  Histogram hist;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        hist.Record(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const HistogramSnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count,
            static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += static_cast<uint64_t>(t) * kRecordsPerThread;
  }
  EXPECT_EQ(snap.sum, expected_sum);
  EXPECT_EQ(snap.max, static_cast<uint64_t>(kThreads - 1));
  SetEnabled(was_enabled);
}

TEST(MetricsConcurrencyTest, WritersRaceSnapshottersAndDumps) {
  const bool was_enabled = Enabled();
  SetEnabled(true);
  Registry registry;
  Counter* counter = registry.GetCounter("stress.counter");
  Histogram* hist = registry.GetHistogram("stress.hist");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        hist->Record(i++ & 0xFFF);
        // Lookups race instrument creation by other threads too.
        registry.GetGauge("stress.gauge")->Set(static_cast<int64_t>(i));
      }
    });
  }
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::vector<MetricSnapshot> snap = registry.Snapshot();
        EXPECT_FALSE(snap.empty());
        EXPECT_FALSE(registry.DumpText().empty());
        EXPECT_FALSE(registry.DumpJson().empty());
      }
    });
  }
  testing::SleepForMillis(200);
  stop.store(true);
  for (auto& thread : writers) thread.join();
  for (auto& thread : readers) thread.join();
  EXPECT_GT(counter->Value(), 0u);
  SetEnabled(was_enabled);
}

TEST(MetricsConcurrencyTest, CollectorChurnRacesSnapshot) {
  Registry registry;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> invocations{0};

  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      CallbackHandle handle =
          registry.RegisterCollector([&](std::vector<MetricSnapshot>* out) {
            invocations.fetch_add(1, std::memory_order_relaxed);
            MetricSnapshot ms;
            ms.name = "churn.metric";
            ms.kind = MetricKind::kGauge;
            ms.value = 1;
            out->push_back(ms);
          });
      // Handle destruction must serialize with any in-flight call: the
      // counter bump above never touches a dead frame.
    }
  });
  std::thread snapshotter([&] {
    uint64_t rows = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      rows += registry.Snapshot().size();
    }
    EXPECT_LE(rows, invocations.load());
  });
  testing::SleepForMillis(200);
  stop.store(true);
  churn.join();
  snapshotter.join();
  // Post-churn the registry is collector-free and still serviceable.
  EXPECT_TRUE(registry.Snapshot().empty());
}

}  // namespace
}  // namespace metrics
}  // namespace edadb
