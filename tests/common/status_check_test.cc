// Tests for the EDADB_CHECK_STATUS unchecked-Status detector: a
// non-OK Status (or Result) destroyed without anyone examining its
// outcome aborts the process, naming the factory call site that
// created the error. The detector changes Status's layout, so the
// whole build opts in via -DEDADB_CHECK_STATUS=ON; in ordinary builds
// every test here skips.
#include "common/status.h"

#include <utility>

#include "common/macros.h"
#include "common/result.h"
#include "gtest/gtest.h"

namespace edadb {
namespace {

#ifdef EDADB_CHECK_STATUS

// The abort message must carry the site that *created* the error
// (this file, via the defaulted std::source_location factory
// parameter), not the site that dropped it — the creator is what the
// engineer greps for.
TEST(StatusCheckDeathTest, DroppedErrorAbortsNamingOriginSite) {
  EXPECT_DEATH(
      {
        [[maybe_unused]] Status dropped = Status::IOError("boom");
      },
      "destroyed without being examined.*IOError: boom.*created at "
      ".*status_check_test\\.cc");
}

TEST(StatusCheckDeathTest, OverwritingUnexaminedErrorAborts) {
  EXPECT_DEATH(
      {
        Status s = Status::NotFound("first outcome");
        s = Status::OK();  // clobbers an outcome nobody looked at
      },
      "destroyed without being examined.*NotFound: first outcome");
}

// A copy of an error starts unexamined even when the original was
// examined: propagation hands the obligation to the new holder (this
// is what keeps EDADB_RETURN_IF_ERROR's internal ok() check from
// laundering the caller's responsibility).
TEST(StatusCheckDeathTest, CopyOfExaminedErrorMustBeExaminedAgain) {
  EXPECT_DEATH(
      {
        Status original = Status::Aborted("shared outcome");
        EXPECT_FALSE(original.ok());  // original is now examined
        [[maybe_unused]] Status copy = original;
      },
      "destroyed without being examined.*Aborted: shared outcome");
}

TEST(StatusCheckDeathTest, DroppedErrorResultAborts) {
  EXPECT_DEATH(
      {
        [[maybe_unused]] Result<int> r = Status::Corruption("bad page");
      },
      "destroyed without being examined.*Corruption: bad page.*created at "
      ".*status_check_test\\.cc");
}

TEST(StatusCheckTest, ExaminedErrorDestroysQuietly) {
  Status s = Status::IOError("looked at");
  EXPECT_FALSE(s.ok());
}

TEST(StatusCheckTest, OkStatusNeedsNoExamination) {
  {
    [[maybe_unused]] Status ok_status = Status::OK();
  }
  SUCCEED();
}

TEST(StatusCheckTest, PredicatesCodeAndEqualityCountAsExamination) {
  Status a = Status::NotFound("x");
  EXPECT_TRUE(a.IsNotFound());
  Status b = Status::Internal("y");
  EXPECT_EQ(b.code(), StatusCode::kInternal);
  Status c = Status::TimedOut("z");
  EXPECT_EQ(c, Status::TimedOut("z"));
}

TEST(StatusCheckTest, MoveTransfersObligationToDestination) {
  Status source = Status::TimedOut("moved outcome");
  Status dest = std::move(source);
  EXPECT_TRUE(dest.IsTimedOut());
  // `source` is moved-from and counts as examined; only `dest` owed a
  // check, and the predicate above discharged it.
}

TEST(StatusCheckTest, UncheckedPayloadIsBornAcknowledged) {
  {
    // Payload carriers (failpoint::Action's default injected error)
    // destroy and overwrite these freely.
    Status payload =
        Status::UncheckedPayload(StatusCode::kIOError, "payload default");
    payload = Status::OK();  // overwrite enforcement must pass too
  }
  SUCCEED();
}

TEST(StatusCheckDeathTest, CopyOfUncheckedPayloadIsReobligated) {
  EXPECT_DEATH(
      {
        Status payload =
            Status::UncheckedPayload(StatusCode::kIOError, "armed payload");
        [[maybe_unused]] Status copy = payload;  // ordinary copy: owes a check
      },
      "destroyed without being examined.*IOError: armed payload");
}

TEST(StatusCheckTest, IgnoreStatusMacroDischargesObligation) {
  EDADB_IGNORE_STATUS(Status::NotSupported("deliberately dropped"),
                      "this test exercises the acknowledged-drop path");
  SUCCEED();
}

TEST(StatusCheckTest, ReturnIfErrorPropagationSatisfiesDetectorWhenHandled) {
  auto fails = []() -> Status {
    EDADB_RETURN_IF_ERROR(Status::OutOfRange("inner failure"));
    return Status::OK();
  };
  const Status s = fails();
  EXPECT_TRUE(s.IsOutOfRange());
}

TEST(StatusCheckTest, ExaminedResultDestroysQuietly) {
  Result<int> r = Status::FailedPrecondition("checked");
  EXPECT_FALSE(r.ok());
  Result<int> v = 7;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
}

#else  // !EDADB_CHECK_STATUS

TEST(StatusCheckTest, DetectorDisabledInThisBuild) {
  GTEST_SKIP() << "Rebuild with -DEDADB_CHECK_STATUS=ON to exercise the "
                  "unchecked-Status detector.";
}

#endif  // EDADB_CHECK_STATUS

}  // namespace
}  // namespace edadb
