// Cross-feature seams: the SQL layer, triggers, queues and the journal
// are all views of one engine, so they must observe each other.

#include "core/audit.h"
#include "db/sql.h"
#include "gtest/gtest.h"
#include "journal/journal_miner.h"
#include "mq/queue_manager.h"
#include "rules/rules_engine.h"
#include "test_util.h"

namespace edadb {
namespace {

class CrossFeatureTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(CrossFeatureTest, SqlDmlFiresTriggers) {
  ASSERT_TRUE(ExecuteSql(db_.get(), "CREATE TABLE t (n INT64)").ok());
  std::vector<std::string> fired;
  TriggerDef def;
  def.name = "watch";
  def.table = "t";
  def.ops = kDmlInsert | kDmlUpdate | kDmlDelete;
  def.action = [&](const TriggerEvent& event) {
    fired.push_back(std::string(DmlOpToString(event.op)));
    return Status::OK();
  };
  ASSERT_OK(db_->CreateTrigger(std::move(def)));
  ASSERT_TRUE(ExecuteSql(db_.get(), "INSERT INTO t VALUES (1), (2)").ok());
  ASSERT_TRUE(ExecuteSql(db_.get(), "UPDATE t SET n = n + 1").ok());
  ASSERT_TRUE(ExecuteSql(db_.get(), "DELETE FROM t WHERE n = 2").ok());
  EXPECT_EQ(fired, (std::vector<std::string>{"INSERT", "INSERT", "UPDATE",
                                             "UPDATE", "DELETE"}));
}

TEST_F(CrossFeatureTest, SqlBeforeTriggerVetoAbortsStatement) {
  ASSERT_TRUE(ExecuteSql(db_.get(), "CREATE TABLE t (n INT64)").ok());
  TriggerDef veto;
  veto.name = "no_negatives";
  veto.table = "t";
  veto.timing = TriggerTiming::kBefore;
  veto.ops = kDmlInsert;
  veto.when = *Predicate::Compile("n < 0");
  veto.action = [](const TriggerEvent&) {
    return Status::InvalidArgument("negative");
  };
  ASSERT_OK(db_->CreateTrigger(std::move(veto)));
  EXPECT_FALSE(ExecuteSql(db_.get(), "INSERT INTO t VALUES (1), (-2)").ok());
  // Whole statement (one transaction) rolled back.
  EXPECT_EQ(*db_->CountRows("t"), 0u);
}

TEST_F(CrossFeatureTest, JournalMinesQueueTablesForAuditing) {
  // §2.2.b operational characteristics "auditing, tracking": because
  // queues are tables, the journal sees every enqueue as ordinary
  // committed inserts.
  auto queues = *QueueManager::Attach(db_.get());
  ASSERT_OK(queues->CreateQueue("orders"));
  JournalMinerOptions options;
  options.tables.insert("__q_orders_msgs");
  JournalMiner miner(db_.get(), options);
  EnqueueRequest request;
  request.payload = "order #1";
  ASSERT_OK(queues->Enqueue("orders", request).status());
  std::vector<ChangeEvent> changes;
  ASSERT_OK(miner.Poll([&](const ChangeEvent& change) {
    changes.push_back(change);
  }).status());
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].op, LogRecordType::kInsert);
  EXPECT_EQ(changes[0].after->Get("payload")->string_value(), "order #1");
}

TEST_F(CrossFeatureTest, SqlCanQueryRulesAndAuditTables) {
  // The "everything is a table" dividend: system state is queryable
  // with the same SQL surface.
  auto engine = *RulesEngine::Attach(db_.get());
  ASSERT_OK(engine->AddRule("r1", "x > 1", "alert", 5));
  ASSERT_OK(engine->AddRule("r2", "y > 2", "log", 1));
  auto rules = ExecuteSql(
      db_.get(),
      "SELECT rule_id, priority FROM __rules ORDER BY priority DESC");
  ASSERT_TRUE(rules.ok()) << rules.status();
  ASSERT_EQ(rules->result.rows.size(), 2u);
  EXPECT_EQ(rules->result.rows[0].Get("rule_id")->string_value(), "r1");

  auto audit = *AuditLog::Attach(db_.get());
  ASSERT_OK(audit->Append("op", "rule.add", "r1"));
  auto entries = ExecuteSql(
      db_.get(), "SELECT COUNT(*) AS n FROM __audit WHERE actor = 'op'");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->result.rows[0].Get("n")->int64_value(), 1);
}

TEST_F(CrossFeatureTest, BrowseShowsDequeueOrderWithoutConsuming) {
  auto queues = *QueueManager::Attach(db_.get());
  ASSERT_OK(queues->CreateQueue("q"));
  EnqueueRequest low;
  low.payload = "low";
  low.priority = 1;
  EnqueueRequest high;
  high.payload = "high";
  high.priority = 9;
  ASSERT_OK(queues->Enqueue("q", low).status());
  ASSERT_OK(queues->Enqueue("q", high).status());
  std::vector<std::string> seen;
  ASSERT_OK(queues->Browse("q", "", [&](const Message& message) {
    seen.push_back(message.payload);
    return true;
  }));
  EXPECT_EQ(seen, (std::vector<std::string>{"high", "low"}));
  // Nothing was consumed or locked.
  EXPECT_EQ(*queues->Depth("q", ""), 2u);
  DequeueRequest dq;
  EXPECT_EQ((*queues->Dequeue("q", dq))->payload, "high");
}

}  // namespace
}  // namespace edadb
