// Crash-recovery torture harness (the tentpole of the failpoint layer).
//
// Each schedule runs a randomized workload of inserts, multi-op
// transactions, enqueues, dequeues, acks, nacks and checkpoints against
// a real Database + QueueManager with ONE failpoint armed to simulate a
// process crash. The "kill" is a SimulatedCrash exception thrown by the
// test crash handler: it unwinds out of the library (which never
// catches), the rig drops the Database with no shutdown sync, and the
// on-disk state is frozen exactly as it was at the failpoint. The rig
// then reopens the database — running real WAL recovery and queue
// runtime rebuild — and checks the durability contract:
//
//   1. committed transactions survive, in full;
//   2. uncommitted / in-flight transactions vanish atomically;
//   3. acked messages are never redelivered;
//   4. confirmed-enqueued, never-acked messages are redelivered
//      at-least-once;
//   5. depth accounting is conserved: after a full drain no message or
//      delivery rows are left behind (this is what catches the
//      orphaned-message-row bug in the ack path).
//
// Everything derives from EDADB_TEST_SEED, so any failure reproduces
// byte-for-byte from the seed printed on exit.

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/clock.h"
#include "common/failpoint.h"
#include "db/database.h"
#include "mq/queue_manager.h"
#include "test_util.h"
#include "testing/crash_harness.h"
#include "testing/seeded_rng.h"
#include "value/record.h"
#include "value/schema.h"

namespace fp = edadb::failpoint;
using edadb::Database;
using edadb::DatabaseOptions;
using edadb::DequeueRequest;
using edadb::EnqueueRequest;
using edadb::kMicrosPerHour;
using edadb::kMicrosPerSecond;
using edadb::QueueCreateOptions;
using edadb::QueueManager;
using edadb::Random;
using edadb::Record;
using edadb::RecordBuilder;
using edadb::RowId;
using edadb::Schema;
using edadb::SchemaPtr;
using edadb::SimulatedClock;
using edadb::Table;
using edadb::TempDir;
using edadb::ValueType;
using edadb::WalSyncPolicy;
using edadb::testing::ArmCrash;
using edadb::testing::FailpointGuard;
using edadb::testing::SimulatedCrash;
using edadb::testing::TestSeed;

namespace {

constexpr int64_t kVisibilityMicros = 30 * kMicrosPerSecond;

// Every site the torture sweep kills the process at, spanning the wal,
// db and mq layers of the durable path.
constexpr const char* kCrashSites[] = {
    "wal.append.before",
    "wal.append.torn",
    "wal.append.after",
    "wal.sync",
    "wal.roll",
    "db.commit.before_wal",
    "db.commit.after_ops",
    "db.commit.before_sync",
    "db.commit.after_sync",
    "db.checkpoint.before_snapshot",
    "db.checkpoint.before_meta",
    "wal.group_commit.leader",
    "mq.enqueue.before_commit",
    "mq.enqueue_batch.mid",
    "mq.dequeue.before_lock_persist",
    "mq.ack.before_finish",
    "mq.finish.after_dlv_delete",
    "mq.nack.before_persist",
};
constexpr size_t kNumCrashSites = sizeof(kCrashSites) / sizeof(kCrashSites[0]);

/// What the workload believes about durable state. Operations move ids
/// from "uncertain" to "confirmed" only when the library reports
/// success; anything in flight when the crash hits stays uncertain, and
/// recovery may legitimately resolve it either way.
struct Oracle {
  std::set<int64_t> committed_tags;
  std::set<int64_t> uncertain_tags;
  std::map<int64_t, int> tag_rows;  // Rows per tag (1 or 3).

  std::set<int64_t> enq_confirmed;
  std::set<int64_t> enq_uncertain;
  std::set<int64_t> ack_confirmed;
  std::set<int64_t> ack_uncertain;
  /// Batches whose EnqueueBatch did not report success: recovery must
  /// resolve each one all-or-none (its ids are also in enq_uncertain).
  std::vector<std::vector<int64_t>> enq_uncertain_batches;
};

int64_t TagOf(const Record& record) {
  auto v = record.Get("tag");
  if (!v.ok()) return -1;
  auto i = v->AsInt64();
  return i.ok() ? *i : -1;
}

/// One database-under-torture: temp dir, simulated clock, reopenable
/// Database + QueueManager.
class TortureRig {
 public:
  TortureRig() = default;

  void Init() {
    Reopen();
    ASSERT_TRUE(db_ != nullptr);
    if (!db_->GetTable("events").ok()) {
      ASSERT_OK(db_->CreateTable(
                       "events",
                       Schema::Make({{"tag", ValueType::kInt64, false}}))
                    .status());
      QueueCreateOptions qopts;
      qopts.max_deliveries = 1000000;  // Keep the DLQ out of the picture.
      qopts.visibility_timeout_micros = kVisibilityMicros;
      ASSERT_OK(queues_->CreateQueue("q", qopts));
    }
  }

  /// The simulated process restart: drops both objects with no shutdown
  /// handshake and runs real recovery.
  void Reopen() {
    queues_.reset();
    db_.reset();
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.wal_segment_size_bytes = 4096;  // Small: exercise rolls.
    options.clock = &clock_;
    auto db = Database::Open(std::move(options));
    ASSERT_OK(db.status());
    db_ = *std::move(db);
    auto queues = QueueManager::Attach(db_.get());
    ASSERT_OK(queues.status());
    queues_ = *std::move(queues);
  }

  /// Runs `ops` random operations; returns true if a simulated crash
  /// cut the workload short.
  bool RunWorkload(Random* rng, int ops, Oracle* oracle) {
    try {
      for (int i = 0; i < ops; ++i) DoOneOp(rng, oracle);
    } catch (const SimulatedCrash&) {
      return true;
    }
    return false;
  }

  /// Full invariant check. Call with every failpoint disarmed, after
  /// Reopen().
  void VerifyInvariants(const Oracle& oracle) {
    // --- Database: durability + atomicity -----------------------------
    auto events = db_->GetTable("events");
    ASSERT_OK(events.status());
    std::map<int64_t, int> present;
    (*events)->ScanRows([&](RowId, const Record& record) {
      ++present[TagOf(record)];
      return true;
    });
    for (const int64_t tag : oracle.committed_tags) {
      auto it = present.find(tag);
      ASSERT_TRUE(it != present.end())
          << "committed tag " << tag << " lost by recovery";
      EXPECT_EQ(oracle.tag_rows.at(tag), it->second)
          << "committed tag " << tag << " partially recovered";
    }
    for (const auto& [tag, count] : present) {
      EXPECT_TRUE(oracle.committed_tags.count(tag) > 0 ||
                  oracle.uncertain_tags.count(tag) > 0)
          << "phantom tag " << tag << " appeared after recovery";
      EXPECT_EQ(oracle.tag_rows.at(tag), count)
          << "tag " << tag << " violates transaction atomicity";
    }

    // --- Queue: conservation before the drain -------------------------
    // Single consumer group, so every live message row must have
    // exactly one delivery row. An orphaned message row (ack crashed
    // between its two deletes) would break this — the reattach GC must
    // have cleaned it up.
    auto msg_rows = db_->CountRows("__q_q_msgs");
    auto dlv_rows = db_->CountRows("__q_q_dlv");
    ASSERT_OK(msg_rows.status());
    ASSERT_OK(dlv_rows.status());
    EXPECT_EQ(*msg_rows, *dlv_rows)
        << "message/delivery row mismatch after recovery";

    // --- Queue: drain and check delivery guarantees -------------------
    std::set<int64_t> drained;
    DequeueRequest dq;
    bool drained_everything = false;
    for (int round = 0; round < 100000; ++round) {
      auto m = queues_->Dequeue("q", dq);
      ASSERT_OK(m.status());
      if (m->has_value()) {
        const int64_t mid = std::stoll((*m)->payload);
        EXPECT_EQ(0u, drained.count(mid))
            << "message " << mid << " delivered twice within the drain";
        drained.insert(mid);
        ASSERT_OK(queues_->Ack("q", "", (*m)->id));
        continue;
      }
      auto remaining = db_->CountRows("__q_q_dlv");
      ASSERT_OK(remaining.status());
      if (*remaining == 0) {
        drained_everything = true;
        break;
      }
      // Locked or delayed survivors: jump past the visibility timeout.
      clock_.AdvanceMicros(kVisibilityMicros + kMicrosPerSecond);
    }
    ASSERT_TRUE(drained_everything) << "queue never fully drained";

    EXPECT_EQ(static_cast<size_t>(*dlv_rows), drained.size())
        << "drain did not conserve queue depth";
    auto final_msgs = db_->CountRows("__q_q_msgs");
    ASSERT_OK(final_msgs.status());
    EXPECT_EQ(0u, *final_msgs) << "message rows leaked after full drain";
    auto depth = queues_->Depth("q", "");
    ASSERT_OK(depth.status());
    EXPECT_EQ(0u, *depth);

    for (const int64_t mid : oracle.ack_confirmed) {
      EXPECT_EQ(0u, drained.count(mid))
          << "acked message " << mid << " was redelivered";
    }
    for (const int64_t mid : oracle.enq_confirmed) {
      if (oracle.ack_confirmed.count(mid) > 0 ||
          oracle.ack_uncertain.count(mid) > 0) {
        continue;
      }
      EXPECT_EQ(1u, drained.count(mid))
          << "unacked message " << mid << " was lost (at-least-once)";
    }
    for (const int64_t mid : drained) {
      EXPECT_TRUE(oracle.enq_confirmed.count(mid) > 0 ||
                  oracle.enq_uncertain.count(mid) > 0)
          << "phantom message " << mid << " appeared after recovery";
    }

    // --- Queue: batch atomicity ---------------------------------------
    // A batch whose EnqueueBatch never returned success is one
    // transaction: after recovery either every message surfaced in the
    // drain or none did.
    for (const std::vector<int64_t>& batch : oracle.enq_uncertain_batches) {
      size_t batch_present = 0;
      for (const int64_t mid : batch) batch_present += drained.count(mid);
      EXPECT_TRUE(batch_present == 0 || batch_present == batch.size())
          << "crash mid-batch left a partial batch: " << batch_present
          << " of " << batch.size() << " messages recovered";
    }
    drained_count_ = drained.size();
  }

  /// Compact schedule outcome for determinism checks.
  std::string Summary(const Oracle& oracle, bool crashed) const {
    std::ostringstream os;
    os << "crashed=" << crashed << " committed=" << oracle.committed_tags.size()
       << " uncertain=" << oracle.uncertain_tags.size()
       << " enq=" << oracle.enq_confirmed.size()
       << " acked=" << oracle.ack_confirmed.size()
       << " drained=" << drained_count_;
    return os.str();
  }

  Database* db() { return db_.get(); }
  QueueManager* queues() { return queues_.get(); }

 private:
  void DoOneOp(Random* rng, Oracle* oracle) {
    const uint64_t kind = rng->Uniform(14);
    if (kind < 3) {
      InsertOne(oracle);
    } else if (kind < 5) {
      InsertTxn(oracle);
    } else if (kind < 7) {
      EnqueueOne(oracle);
    } else if (kind < 9) {
      EnqueueBatchOp(rng, oracle);
    } else if (kind < 12) {
      DequeueOne(rng, oracle);
    } else {
      EDADB_IGNORE_STATUS(
          db_->Checkpoint(db_->wal_end_lsn()),
          "checkpoint may fail under the armed fault; recovery invariants "
          "are asserted after the schedule");
    }
  }

  void InsertOne(Oracle* oracle) {
    const int64_t tag = next_tag_++;
    oracle->tag_rows[tag] = 1;
    oracle->uncertain_tags.insert(tag);
    auto table = db_->GetTable("events");
    if (!table.ok()) return;
    auto row = RecordBuilder((*table)->schema()).SetInt64("tag", tag).Build();
    if (!row.ok()) return;
    if (db_->Insert("events", *std::move(row)).ok()) {
      oracle->uncertain_tags.erase(tag);
      oracle->committed_tags.insert(tag);
    }
  }

  void InsertTxn(Oracle* oracle) {
    const int64_t tag = next_tag_++;
    oracle->tag_rows[tag] = 3;
    oracle->uncertain_tags.insert(tag);
    auto table = db_->GetTable("events");
    if (!table.ok()) return;
    auto txn = db_->BeginTransaction();
    for (int i = 0; i < 3; ++i) {
      auto row =
          RecordBuilder((*table)->schema()).SetInt64("tag", tag).Build();
      if (!row.ok() || !txn->Insert("events", *std::move(row)).ok()) return;
    }
    if (txn->Commit().ok()) {
      oracle->uncertain_tags.erase(tag);
      oracle->committed_tags.insert(tag);
    }
  }

  void EnqueueOne(Oracle* oracle) {
    const int64_t mid = next_msg_++;
    oracle->enq_uncertain.insert(mid);
    EnqueueRequest request;
    request.payload = std::to_string(mid);
    if (queues_->Enqueue("q", request).ok()) {
      oracle->enq_uncertain.erase(mid);
      oracle->enq_confirmed.insert(mid);
    }
  }

  void EnqueueBatchOp(Random* rng, Oracle* oracle) {
    const size_t n = 2 + rng->Uniform(3);
    std::vector<int64_t> mids;
    std::vector<EnqueueRequest> requests;
    for (size_t i = 0; i < n; ++i) {
      const int64_t mid = next_msg_++;
      mids.push_back(mid);
      oracle->enq_uncertain.insert(mid);
      EnqueueRequest request;
      request.payload = std::to_string(mid);
      requests.push_back(std::move(request));
    }
    if (queues_->EnqueueBatch("q", requests).ok()) {
      for (const int64_t mid : mids) {
        oracle->enq_uncertain.erase(mid);
        oracle->enq_confirmed.insert(mid);
      }
    } else {
      // Crash or injected error mid-batch: the ids stay individually
      // uncertain AND the batch must resolve atomically (checked in
      // VerifyInvariants). These ids never return to the workload, so
      // none can be acked/dequeued before the crash.
      oracle->enq_uncertain_batches.push_back(std::move(mids));
    }
  }

  void DequeueOne(Random* rng, Oracle* oracle) {
    DequeueRequest dq;
    auto m = queues_->Dequeue("q", dq);
    if (!m.ok() || !m->has_value()) return;
    const int64_t mid = std::stoll((*m)->payload);
    const uint64_t then = rng->Uniform(3);
    if (then == 0) {
      oracle->ack_uncertain.insert(mid);
      if (queues_->Ack("q", "", (*m)->id).ok()) {
        oracle->ack_uncertain.erase(mid);
        oracle->ack_confirmed.insert(mid);
      }
    } else if (then == 1) {
      EDADB_IGNORE_STATUS(
          queues_->Nack("q", "", (*m)->id),
          "nack may fail under the armed fault; redelivery invariants are "
          "asserted after the schedule");
    }
    // else: consumer "walks away" holding the lock; the visibility
    // timeout must eventually redeliver.
  }

  TempDir dir_;
  SimulatedClock clock_{kMicrosPerHour};
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  int64_t next_tag_ = 1;
  int64_t next_msg_ = 1;
  size_t drained_count_ = 0;
};

/// Runs one complete schedule: fresh database, one armed crash site,
/// randomized workload, recovery, invariant check. Returns a summary
/// string and sets *crashed.
std::string RunSchedule(uint64_t schedule_id, const char* site, uint64_t skip,
                        int64_t torn_arg, int workload_ops, bool* crashed) {
  TortureRig rig;
  rig.Init();
  if (::testing::Test::HasFatalFailure()) return "init-failed";

  fp::DisarmAll();
  ArmCrash(site, skip, torn_arg);
  Random rng(TestSeed() ^ (0xC0FFEE + schedule_id * 0x9E3779B97F4A7C15ULL));
  Oracle oracle;
  *crashed = rig.RunWorkload(&rng, workload_ops, &oracle);
  fp::DisarmAll();

  // Restart regardless: recovery must be a no-op after a clean run.
  rig.Reopen();
  if (::testing::Test::HasFatalFailure()) return "reopen-failed";
  rig.VerifyInvariants(oracle);
  return rig.Summary(oracle, *crashed);
}

int ScheduleCount() {
  const char* env = std::getenv("EDADB_TORTURE_SCHEDULES");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 210;
}

// Deterministic sweep: kill the database at every site, at the first
// and at a later hit, with a workload big enough to reach each layer.
TEST(TortureTest, CrashSweepOverEverySite) {
  FailpointGuard guard;
  std::set<std::string> crashed_sites;
  uint64_t schedule_id = 0;
  for (size_t s = 0; s < kNumCrashSites; ++s) {
    for (const uint64_t skip : {0u, 3u}) {
      bool crashed = false;
      RunSchedule(schedule_id++, kCrashSites[s], skip, /*torn_arg=*/5,
                  /*workload_ops=*/30, &crashed);
      if (HasFatalFailure()) {
        FAIL() << "sweep died at site " << kCrashSites[s] << " skip "
               << skip;
      }
      if (crashed) crashed_sites.insert(kCrashSites[s]);
    }
  }
  // The acceptance bar: crashes actually happened across >= 8 distinct
  // sites spanning wal/db/mq (a site a workload never reaches cannot
  // crash it — but most must).
  EXPECT_GE(crashed_sites.size(), 8u)
      << "sweep reached too few sites; workload mix is too narrow";
  int wal = 0, db = 0, mq = 0;
  for (const std::string& site : crashed_sites) {
    if (site.rfind("wal.", 0) == 0) ++wal;
    if (site.rfind("db.", 0) == 0) ++db;
    if (site.rfind("mq.", 0) == 0) ++mq;
  }
  EXPECT_GT(wal, 0);
  EXPECT_GT(db, 0);
  EXPECT_GT(mq, 0);
}

// The 200+ randomized schedules: site, hit index, torn-write length and
// workload all drawn from the one seeded stream.
TEST(TortureTest, RandomizedCrashRecoverySchedules) {
  FailpointGuard guard;
  const int schedules = ScheduleCount();
  Random rng(TestSeed() ^ 0x7062747572655F31ULL);
  int crashes = 0;
  std::set<std::string> crashed_sites;
  for (int i = 0; i < schedules; ++i) {
    const char* site = kCrashSites[rng.Uniform(kNumCrashSites)];
    const uint64_t skip = rng.Uniform(10);
    const int64_t torn_arg = static_cast<int64_t>(rng.Uniform(24));
    const int ops = 10 + static_cast<int>(rng.Uniform(15));
    bool crashed = false;
    RunSchedule(1000 + i, site, skip, torn_arg, ops, &crashed);
    if (HasFatalFailure()) {
      FAIL() << "schedule " << i << " (site " << site << ", skip " << skip
             << ") failed; EDADB_TEST_SEED=" << TestSeed();
    }
    if (crashed) {
      ++crashes;
      crashed_sites.insert(site);
    }
  }
  // Most schedules should actually die mid-workload; all must recover.
  EXPECT_GT(crashes, schedules / 4);
  // Site coverage is a property of the full run; a bounded pass
  // (EDADB_TORTURE_SCHEDULES < 100, e.g. the check.sh ASan stage)
  // can't visit every site.
  if (schedules >= 100) {
    EXPECT_GE(crashed_sites.size(), 8u);
  }
}

// Same schedule id -> byte-identical outcome: the whole harness replays
// from the seed.
TEST(TortureTest, SchedulesAreDeterministic) {
  FailpointGuard guard;
  for (const uint64_t id : {7u, 8u}) {
    bool crashed_a = false, crashed_b = false;
    const std::string a =
        RunSchedule(5000 + id, kCrashSites[id % kNumCrashSites], 2, 9, 24,
                    &crashed_a);
    ASSERT_FALSE(HasFatalFailure());
    const std::string b =
        RunSchedule(5000 + id, kCrashSites[id % kNumCrashSites], 2, 9, 24,
                    &crashed_b);
    ASSERT_FALSE(HasFatalFailure());
    EXPECT_EQ(a, b) << "schedule " << id << " is not deterministic";
    EXPECT_EQ(crashed_a, crashed_b);
  }
}

}  // namespace
