// Property: the batch APIs are OBSERVABLY EQUIVALENT to the per-item
// loops they replace. Two identical stacks are driven with the same
// randomized inputs — one through Enqueue/Publish/Ingest loops, one
// through EnqueueBatch/PublishBatch/IngestBatch — and must end in the
// same state: same queue contents and message ids, same rule-match
// sequence, same per-subscriber delivery order, same drain order.
// (The one intended difference: within an ingest batch, every bus
// delivery happens before any rule routing, so cross-channel
// interleaving is not compared — per-channel sequences are.)

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/processor.h"
#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "pubsub/broker.h"
#include "test_util.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

// ---------------------------------------------------------------------
// Queue level: EnqueueBatch vs Enqueue loop, DequeueBatch vs Dequeue
// loop, byte-identical state.

struct QueueStack {
  TempDir dir;
  SimulatedClock clock;
  std::unique_ptr<Database> db;
  std::unique_ptr<QueueManager> queues;

  QueueStack() {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock;
    clock.SetMicros(kMicrosPerHour);
    db = *Database::Open(std::move(options));
    queues = *QueueManager::Attach(db.get());
  }
};

EnqueueRequest RandomRequest(Random* rng) {
  EnqueueRequest request;
  request.payload = rng->NextString(1 + rng->Uniform(40));
  request.priority = rng->UniformInt(0, 3);
  request.correlation_id = std::to_string(rng->Uniform(1000));
  if (rng->Uniform(2) == 0) {
    request.attributes = {{"severity", Value::Int64(rng->UniformInt(0, 9))}};
  }
  return request;
}

struct BrowseRow {
  MessageId id;
  std::string payload;
  int64_t priority;
  std::string correlation_id;

  bool operator==(const BrowseRow& other) const {
    return id == other.id && payload == other.payload &&
           priority == other.priority &&
           correlation_id == other.correlation_id;
  }
};

std::vector<BrowseRow> BrowseAll(QueueManager* queues,
                                 const std::string& queue) {
  std::vector<BrowseRow> rows;
  EXPECT_OK(queues->Browse(queue, "", [&](const Message& message) {
    rows.push_back(BrowseRow{message.id, message.payload, message.priority,
                             message.correlation_id});
    return true;
  }));
  return rows;
}

TEST(BatchEquivalenceTest, EnqueueBatchMatchesEnqueueLoop) {
  testing::SeededRng rng(/*stream=*/10);
  QueueStack loop_stack, batch_stack;
  ASSERT_OK(loop_stack.queues->CreateQueue("q"));
  ASSERT_OK(batch_stack.queues->CreateQueue("q"));

  for (int round = 0; round < 20; ++round) {
    const size_t batch = 1 + rng.Uniform(8);
    std::vector<EnqueueRequest> requests;
    for (size_t i = 0; i < batch; ++i) {
      requests.push_back(RandomRequest(&rng));
    }

    std::vector<MessageId> loop_ids;
    for (const EnqueueRequest& request : requests) {
      loop_ids.push_back(*loop_stack.queues->Enqueue("q", request));
    }
    const std::vector<MessageId> batch_ids =
        *batch_stack.queues->EnqueueBatch("q", requests);
    EXPECT_EQ(loop_ids, batch_ids) << "round " << round;
  }
  EXPECT_EQ(BrowseAll(loop_stack.queues.get(), "q"),
            BrowseAll(batch_stack.queues.get(), "q"));
}

TEST(BatchEquivalenceTest, DequeueBatchMatchesDequeueLoop) {
  testing::SeededRng rng(/*stream=*/11);
  QueueStack loop_stack, batch_stack;
  ASSERT_OK(loop_stack.queues->CreateQueue("q"));
  ASSERT_OK(batch_stack.queues->CreateQueue("q"));
  std::vector<EnqueueRequest> requests;
  for (int i = 0; i < 50; ++i) requests.push_back(RandomRequest(&rng));
  ASSERT_OK(loop_stack.queues->EnqueueBatch("q", requests).status());
  ASSERT_OK(batch_stack.queues->EnqueueBatch("q", requests).status());

  std::vector<std::string> loop_drained, batch_drained;
  while (true) {
    auto message = loop_stack.queues->Dequeue("q", DequeueRequest{});
    ASSERT_OK(message.status());
    if (!message->has_value()) break;
    loop_drained.push_back((*message)->payload);
    ASSERT_OK(loop_stack.queues->Ack("q", "", (*message)->id));
  }
  while (true) {
    auto messages =
        batch_stack.queues->DequeueBatch("q", DequeueRequest{}, 7);
    ASSERT_OK(messages.status());
    if (messages->empty()) break;
    for (const Message& message : *messages) {
      batch_drained.push_back(message.payload);
      ASSERT_OK(batch_stack.queues->Ack("q", "", message.id));
    }
  }
  EXPECT_EQ(loop_drained.size(), 50u);
  EXPECT_EQ(loop_drained, batch_drained);
}

// ---------------------------------------------------------------------
// Pipeline level: Ingest loop vs IngestBatch through a full processor
// (bus + rules + queue routing).

struct PipelineStack {
  TempDir dir;
  SimulatedClock clock;
  std::unique_ptr<EventProcessor> processor;
  std::vector<std::string> bus_types;       // Bus delivery sequence.
  std::vector<std::string> matched_rules;   // Rule dispatch sequence.

  PipelineStack() {
    clock.SetMicros(kMicrosPerHour);
    EventProcessorOptions options;
    options.data_dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock;
    processor = *EventProcessor::Open(std::move(options));
    EXPECT_OK(processor->queues()->CreateQueue("alerts"));
    EXPECT_OK(processor->rules()->AddRule("critical", "severity >= 7",
                                          "queue:alerts", /*priority=*/2));
    EXPECT_OK(processor->rules()->AddRule("watch", "severity >= 4",
                                          "tag-only", /*priority=*/1));
    processor->rules()->RegisterDefaultHandler(
        [this](const Rule& rule, const RowAccessor&) {
          matched_rules.push_back(rule.id);
        });
    EXPECT_OK(processor->bus()
                  ->Subscribe([this](const Event& event) {
                    bus_types.push_back(event.type);
                  })
                  .status());
  }

  std::vector<std::string> DrainAlerts() {
    std::vector<std::string> payloads;
    while (true) {
      auto message =
          processor->queues()->Dequeue("alerts", DequeueRequest{});
      EXPECT_OK(message.status());
      if (!message.ok() || !message->has_value()) break;
      payloads.push_back((*message)->payload);
      EXPECT_OK(processor->queues()->Ack("alerts", "", (*message)->id));
    }
    return payloads;
  }
};

Event RandomEvent(Random* rng, uint64_t id) {
  Event event;
  event.id = id;  // Explicit: the global id counter is process-wide.
  event.type = "type" + std::to_string(rng->Uniform(3));
  event.source = "src" + std::to_string(rng->Uniform(5));
  event.payload = rng->NextString(1 + rng->Uniform(30));
  event.Set("severity", Value::Int64(rng->UniformInt(0, 9)));
  return event;
}

TEST(BatchEquivalenceTest, IngestBatchMatchesIngestLoop) {
  testing::SeededRng rng(/*stream=*/12);
  PipelineStack loop_stack, batch_stack;
  uint64_t next_id = 1;
  for (int round = 0; round < 15; ++round) {
    const size_t batch = 1 + rng.Uniform(6);
    std::vector<Event> events;
    for (size_t i = 0; i < batch; ++i) {
      events.push_back(RandomEvent(&rng, next_id++));
    }
    for (const Event& event : events) {
      ASSERT_OK(loop_stack.processor->Ingest(event));
    }
    ASSERT_OK(batch_stack.processor->IngestBatch(std::move(events)));
  }

  EXPECT_EQ(loop_stack.bus_types, batch_stack.bus_types);
  EXPECT_EQ(loop_stack.matched_rules, batch_stack.matched_rules);
  EXPECT_EQ(loop_stack.DrainAlerts(), batch_stack.DrainAlerts());

  const auto loop_stats = loop_stack.processor->GetStats();
  const auto batch_stats = batch_stack.processor->GetStats();
  EXPECT_EQ(loop_stats.ingested, batch_stats.ingested);
  EXPECT_EQ(loop_stats.rules_matched, batch_stats.rules_matched);
  EXPECT_EQ(loop_stats.routed_to_queues, batch_stats.routed_to_queues);
}

// ---------------------------------------------------------------------
// Pubsub level: the live ring path vs the durable queue path. A ring
// subscriber that never falls behind must observe the EXACT event
// sequence the durable-queue subscriber acks — same events, same order
// — for both single-shot Publish and PublishBatch (DESIGN.md §13: the
// ring trades durability for latency, never ordering or content).

struct BrokerStack {
  TempDir dir;
  std::unique_ptr<Database> db;
  std::unique_ptr<QueueManager> queues;
  std::unique_ptr<Broker> broker;

  BrokerStack() {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db = *Database::Open(std::move(options));
    queues = *QueueManager::Attach(db.get());
    // Ample ring: the live subscriber must never be lapped here.
    broker = *Broker::Attach(db.get(), queues.get(),
                             {.capacity = 1024, .slot_bytes = 1024});
  }
};

Publication RandomPublication(Random* rng, bool jobs_topic) {
  Publication pub;
  pub.topic = jobs_topic ? "jobs" : "noise/" + std::to_string(rng->Uniform(3));
  pub.payload = rng->NextString(1 + rng->Uniform(40));
  pub.attributes = {{"severity", Value::Int64(rng->UniformInt(0, 9))}};
  return pub;
}

std::string PubKey(const Publication& pub) {
  std::string encoded;
  EncodePublication(pub, &encoded);
  return encoded;
}

void RunRingVsDurableEquivalence(bool use_batch, uint64_t stream) {
  testing::SeededRng rng(stream);
  BrokerStack stack;

  SubscriptionSpec durable;
  durable.subscriber = "durable-jobs";
  durable.topic_pattern = "jobs";
  durable.durable = true;
  const std::string durable_id = *stack.broker->Subscribe(std::move(durable));

  auto live = stack.broker->SubscribeLive(
      {.subscriber = "live-jobs", .topic_pattern = "jobs", .content_filter = ""});
  ASSERT_OK(live.status());

  std::vector<std::string> published_jobs;  // Ground-truth order.
  for (int round = 0; round < 20; ++round) {
    const size_t batch = 1 + rng.Uniform(6);
    std::vector<Publication> pubs;
    for (size_t i = 0; i < batch; ++i) {
      pubs.push_back(RandomPublication(&rng, rng.Uniform(2) == 0));
    }
    for (const Publication& pub : pubs) {
      if (pub.topic == "jobs") published_jobs.push_back(PubKey(pub));
    }
    if (use_batch) {
      ASSERT_OK(stack.broker->PublishBatch(pubs).status());
    } else {
      for (const Publication& pub : pubs) {
        ASSERT_OK(stack.broker->Publish(pub).status());
      }
    }
  }

  // Live side: drain the ring (never behind: capacity >> published).
  std::vector<std::string> live_seen;
  std::vector<std::pair<uint64_t, Publication>> got;
  while ((*live)->Poll(64, &got) > 0) {
    for (auto& [seq, pub] : got) live_seen.push_back(PubKey(pub));
    got.clear();
  }
  EXPECT_EQ((*live)->missed(), 0u);
  EXPECT_EQ((*live)->lag(), 0u);

  // Durable side: fetch-and-ack to exhaustion.
  std::vector<std::string> durable_acked;
  while (true) {
    auto fetched = stack.broker->Fetch(durable_id);
    ASSERT_OK(fetched.status());
    if (!fetched->has_value()) break;
    durable_acked.push_back(PubKey(**fetched));
  }

  EXPECT_EQ(live_seen, durable_acked);
  EXPECT_EQ(live_seen, published_jobs);
}

TEST(BatchEquivalenceTest, RingSubscriberMatchesDurableAcksSingleShot) {
  RunRingVsDurableEquivalence(/*use_batch=*/false, /*stream=*/13);
}

TEST(BatchEquivalenceTest, RingSubscriberMatchesDurableAcksBatch) {
  RunRingVsDurableEquivalence(/*use_batch=*/true, /*stream=*/14);
}

}  // namespace
}  // namespace edadb
