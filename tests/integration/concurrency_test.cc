// Concurrency stress: the documented model is one writer lock for DML,
// shared locks for reads, and thread-safe facades above. These tests
// hammer that contract from several threads and then verify global
// invariants.

#include <atomic>
#include <thread>

#include "core/event_bus.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "rules/rules_engine.h"
#include "test_util.h"
#include "testing/sleep.h"

namespace edadb {
namespace {

SchemaPtr CounterSchema() {
  return Schema::Make({
      {"writer", ValueType::kInt64, false},
      {"seq", ValueType::kInt64, false},
  });
}

TEST(ConcurrencyTest, ParallelWritersAndReadersAndCheckpoints) {
  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  ASSERT_TRUE(db->CreateTable("events", CounterSchema()).ok());
  ASSERT_TRUE(db->CreateIndex("events", "writer", false).ok());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 300;
  std::atomic<bool> stop_readers{false};
  std::atomic<int> read_errors{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        Record row(CounterSchema(),
                   {Value::Int64(w), Value::Int64(i)});
        ASSERT_TRUE(db->Insert("events", std::move(row)).ok());
      }
    });
  }
  // Two readers running aggregate queries concurrently.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      while (!stop_readers.load()) {
        Query query = QueryBuilder("events")
                          .GroupBy({"writer"})
                          .Count("n")
                          .Build();
        auto result = db->Execute(query);
        if (!result.ok()) {
          read_errors.fetch_add(1);
          return;
        }
        // Partial counts are fine; they must never exceed the maximum.
        for (const Record& row : result->rows) {
          if (row.Get("n")->int64_value() > kPerWriter) {
            read_errors.fetch_add(1);
            return;
          }
        }
        std::this_thread::yield();
      }
    });
  }
  // A checkpointer racing with everything.
  threads.emplace_back([&] {
    for (int c = 0; c < 5; ++c) {
      ASSERT_TRUE(db->Checkpoint(0).ok());
      testing::SleepForMillis(2);
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[static_cast<size_t>(w)].join();
  stop_readers.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_EQ(*db->CountRows("events"),
            static_cast<size_t>(kWriters * kPerWriter));
  // Index agrees with the heap for every writer.
  const Table* table = *db->GetTable("events");
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(table->GetIndex("writer")->Lookup(Value::Int64(w)).size(),
              static_cast<size_t>(kPerWriter));
  }
}

TEST(ConcurrencyTest, RecoveryAfterConcurrentWorkload) {
  TempDir dir;
  {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto db = *Database::Open(std::move(options));
    ASSERT_TRUE(db->CreateTable("events", CounterSchema()).ok());
    std::vector<std::thread> writers;
    for (int w = 0; w < 3; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < 200; ++i) {
          auto txn = db->BeginTransaction();
          for (int j = 0; j < 2; ++j) {
            ASSERT_TRUE(
                txn->Insert("events", Record(CounterSchema(),
                                             {Value::Int64(w),
                                              Value::Int64(i * 2 + j)}))
                    .ok());
          }
          ASSERT_TRUE(txn->Commit().ok());
        }
      });
    }
    for (auto& t : writers) t.join();
  }
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  EXPECT_EQ(*db->CountRows("events"), 1200u);
}

TEST(ConcurrencyTest, RulesEngineConcurrentEvaluateAndMutate) {
  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  auto engine = *RulesEngine::Attach(db.get());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    ->AddRule("seed" + std::to_string(i),
                              "x = " + std::to_string(i), "a")
                    .ok());
  }

  class IntRow : public RowAccessor {
   public:
    explicit IntRow(int64_t x) : x_(x) {}
    std::optional<Value> GetAttribute(std::string_view name) const override {
      if (name == "x") return Value::Int64(x_);
      return std::nullopt;
    }

   private:
    int64_t x_;
  };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> evaluations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      uint64_t seed = static_cast<uint64_t>(t) + 1;
      while (!stop.load()) {
        seed = seed * 6364136223846793005ULL + 1;
        IntRow row(static_cast<int64_t>(seed % 50));
        ASSERT_TRUE(engine->Evaluate(row).ok());
        evaluations.fetch_add(1);
      }
    });
  }
  // Wait for evaluation to actually start (on one core the churn loop
  // below could otherwise finish before any evaluator thread runs).
  while (evaluations.load() == 0) {
    std::this_thread::yield();
  }
  // Churn rules while evaluation is in flight.
  for (int i = 0; i < 100; ++i) {
    const std::string id = "churn" + std::to_string(i);
    ASSERT_TRUE(
        engine->AddRule(id, "x = " + std::to_string(i % 50), "b").ok());
    if (i >= 10) {
      ASSERT_TRUE(
          engine->RemoveRule("churn" + std::to_string(i - 10)).ok());
    }
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(evaluations.load(), 0u);
  EXPECT_EQ(engine->num_rules(), 50u + 10u);
}

TEST(ConcurrencyTest, EventBusConcurrentPublishers) {
  EventBus bus;
  std::atomic<uint64_t> received{0};
  ASSERT_TRUE(bus.Subscribe([&](const Event&) {
    received.fetch_add(1);
  }).ok());
  std::vector<std::thread> publishers;
  for (int p = 0; p < 4; ++p) {
    publishers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        Event event;
        event.type = "x";
        bus.Publish(event);
      }
    });
  }
  for (auto& t : publishers) t.join();
  EXPECT_EQ(received.load(), 2000u);
}

}  // namespace
}  // namespace edadb
