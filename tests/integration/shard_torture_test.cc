// Multi-shard crash-recovery torture: the sharded delivery core under
// the same kill-anywhere discipline as the single-domain torture_test,
// plus the two windows that only exist with shards:
//
//   - one shard's WAL dies mid-group-commit while the other shards'
//     pipelines are untouched (recovery replays each stream
//     independently);
//   - the cross-shard handoff crashes between the destination commit
//     and the source ack ("mq.propagate.handoff"), or before the
//     destination commit ("mq.handoff.before_commit").
//
// Invariants after recovery:
//
//   1. per-shard depth conservation: on every shard, message rows ==
//      delivery rows for each of its queues (single consumer group);
//   2. messages acked on the destination are never redelivered;
//   3. handed-off messages are exactly-once-visible: after the
//      propagator re-drains the source, every confirmed source message
//      surfaces on the destination exactly once — the handoff is
//      at-least-once transport with an idempotence ledger, so the
//      crash window replays into a no-op, not a duplicate.
//
// Everything derives from EDADB_TEST_SEED; EDADB_TORTURE_SCHEDULES
// bounds the randomized count.

#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

#include "common/clock.h"
#include "common/failpoint.h"
#include "db/database.h"
#include "mq/propagation.h"
#include "mq/queue_manager.h"
#include "mq/shard_router.h"
#include "test_util.h"
#include "testing/crash_harness.h"
#include "testing/seeded_rng.h"

namespace fp = edadb::failpoint;
using edadb::Database;
using edadb::DatabaseOptions;
using edadb::DequeueRequest;
using edadb::EnqueueRequest;
using edadb::kMicrosPerHour;
using edadb::kMicrosPerSecond;
using edadb::PropagationRule;
using edadb::Propagator;
using edadb::QueueCreateOptions;
using edadb::Random;
using edadb::ShardRouter;
using edadb::SimulatedClock;
using edadb::TempDir;
using edadb::WalSyncPolicy;
using edadb::testing::ArmCrash;
using edadb::testing::FailpointGuard;
using edadb::testing::SimulatedCrash;
using edadb::testing::TestSeed;

namespace {

constexpr size_t kShards = 4;
constexpr int64_t kVisibilityMicros = 30 * kMicrosPerSecond;

// Kill sites spanning one shard's WAL/commit pipeline (whichever shard
// happens to be executing when the site fires) and the cross-shard
// handoff protocol's two windows.
constexpr const char* kCrashSites[] = {
    "wal.append.before",
    "wal.append.torn",
    "wal.sync",
    "wal.group_commit.leader",
    "db.commit.after_ops",
    "db.commit.before_sync",
    "db.commit.after_sync",
    "mq.enqueue.before_commit",
    "mq.enqueue_batch.mid",
    "mq.dequeue.before_lock_persist",
    "mq.ack.before_finish",
    "mq.handoff.before_commit",
    "mq.propagate.handoff",
};
constexpr size_t kNumCrashSites = sizeof(kCrashSites) / sizeof(kCrashSites[0]);

struct Oracle {
  std::set<int64_t> enq_confirmed;   // Enqueued on source, reported OK.
  std::set<int64_t> enq_uncertain;   // Enqueue in flight at the crash.
  std::set<int64_t> ack_confirmed;   // Acked on destination, reported OK.
  std::set<int64_t> ack_uncertain;
  std::vector<std::vector<int64_t>> enq_uncertain_batches;
};

/// Sharded rig: primary database + 4-shard router + propagator with one
/// cross-shard rule source -> destination.
class ShardTortureRig {
 public:
  void Init(WalSyncPolicy sync_policy) {
    sync_policy_ = sync_policy;
    Reopen();
    ASSERT_TRUE(router_ != nullptr);
    // Source and destination pinned to DIFFERENT shards so every
    // forward is a cross-shard handoff.
    src_ = NameOnShard(1, "src");
    dst_ = NameOnShard(2, "dst");
    QueueCreateOptions qopts;
    qopts.max_deliveries = 1000000;  // Keep the DLQ out of the picture.
    qopts.visibility_timeout_micros = kVisibilityMicros;
    ASSERT_OK(router_->CreateQueue(src_, qopts));
    ASSERT_OK(router_->CreateQueue(dst_, qopts));
    WireRule();
  }

  /// Simulated process restart: drop everything with no shutdown
  /// handshake, reopen the primary, and let ShardRouter::Open replay
  /// every shard's WAL stream independently.
  void Reopen() {
    propagator_.reset();
    router_.reset();
    db_.reset();
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = sync_policy_;
    options.wal_segment_size_bytes = 4096;  // Small: exercise rolls.
    options.clock = &clock_;
    auto db = Database::Open(std::move(options));
    ASSERT_OK(db.status());
    db_ = *std::move(db);
    auto router = ShardRouter::Open(db_.get(), kShards);
    ASSERT_OK(router.status());
    router_ = *std::move(router);
    if (!src_.empty()) WireRule();
  }

  bool RunWorkload(Random* rng, int ops, Oracle* oracle) {
    try {
      for (int i = 0; i < ops; ++i) DoOneOp(rng, oracle);
    } catch (const SimulatedCrash&) {
      return true;
    }
    return false;
  }

  /// Full invariant check; call after Reopen() with failpoints disarmed.
  void VerifyInvariants(const Oracle& oracle) {
    // --- 1. Per-shard depth conservation ------------------------------
    for (const std::string& queue : {src_, dst_}) {
      Database* shard_db = router_->shard_db(router_->ShardOf(queue));
      auto msgs = shard_db->CountRows("__q_" + queue + "_msgs");
      auto dlvs = shard_db->CountRows("__q_" + queue + "_dlv");
      ASSERT_OK(msgs.status());
      ASSERT_OK(dlvs.status());
      EXPECT_EQ(*msgs, *dlvs)
          << "shard " << router_->ShardOf(queue) << " queue '" << queue
          << "' lost depth conservation after recovery";
    }

    // --- Re-drain the source through the handoff path -----------------
    // The propagator retries whatever the crash left behind; the dedup
    // ledger must turn replays of already-committed handoffs into
    // no-ops.
    Database* src_db = router_->shard_db(router_->ShardOf(src_));
    for (int round = 0; round < 100000; ++round) {
      auto n = propagator_->RunOnce();
      ASSERT_OK(n.status());
      auto left = src_db->CountRows("__q_" + src_ + "_msgs");
      ASSERT_OK(left.status());
      if (*left == 0) break;
      // Locked survivors (the crashed propagator held the lock): jump
      // past the visibility timeout so they redeliver.
      clock_.AdvanceMicros(kVisibilityMicros + kMicrosPerSecond);
    }
    auto src_left = src_db->CountRows("__q_" + src_ + "_msgs");
    ASSERT_OK(src_left.status());
    ASSERT_EQ(0u, *src_left) << "source never fully propagated";

    // --- 2 + 3. Drain the destination: exactly-once visibility --------
    std::set<int64_t> drained;
    DequeueRequest dq;
    bool drained_everything = false;
    for (int round = 0; round < 100000; ++round) {
      auto m = router_->Dequeue(dst_, dq);
      ASSERT_OK(m.status());
      if (m->has_value()) {
        const int64_t mid = std::stoll((*m)->payload);
        EXPECT_EQ(0u, drained.count(mid))
            << "message " << mid << " delivered twice from the destination";
        drained.insert(mid);
        ASSERT_OK(router_->Ack(dst_, "", (*m)->id));
        continue;
      }
      Database* dst_db = router_->shard_db(router_->ShardOf(dst_));
      auto remaining = dst_db->CountRows("__q_" + dst_ + "_dlv");
      ASSERT_OK(remaining.status());
      if (*remaining == 0) {
        drained_everything = true;
        break;
      }
      clock_.AdvanceMicros(kVisibilityMicros + kMicrosPerSecond);
    }
    ASSERT_TRUE(drained_everything) << "destination never fully drained";

    for (const int64_t mid : oracle.ack_confirmed) {
      EXPECT_EQ(0u, drained.count(mid))
          << "acked message " << mid << " was redelivered";
    }
    for (const int64_t mid : oracle.enq_confirmed) {
      if (oracle.ack_confirmed.count(mid) > 0 ||
          oracle.ack_uncertain.count(mid) > 0) {
        continue;
      }
      EXPECT_EQ(1u, drained.count(mid))
          << "handed-off message " << mid
          << " was not exactly-once-visible after recovery";
    }
    for (const int64_t mid : drained) {
      EXPECT_TRUE(oracle.enq_confirmed.count(mid) > 0 ||
                  oracle.enq_uncertain.count(mid) > 0)
          << "phantom message " << mid << " appeared after recovery";
    }
    for (const std::vector<int64_t>& batch : oracle.enq_uncertain_batches) {
      size_t present = 0;
      std::set<int64_t> batch_acked;
      for (const int64_t mid : batch) {
        present += drained.count(mid);
        if (oracle.ack_confirmed.count(mid) > 0 ||
            oracle.ack_uncertain.count(mid) > 0) {
          batch_acked.insert(mid);
        }
      }
      if (!batch_acked.empty()) continue;  // Consumed pre-crash: moot.
      EXPECT_TRUE(present == 0 || present == batch.size())
          << "crash mid-batch left a partial batch on the far side: "
          << present << " of " << batch.size();
    }
    drained_count_ = drained.size();
  }

  std::string Summary(const Oracle& oracle, bool crashed) const {
    std::ostringstream os;
    os << "crashed=" << crashed << " enq=" << oracle.enq_confirmed.size()
       << " uncertain=" << oracle.enq_uncertain.size()
       << " acked=" << oracle.ack_confirmed.size()
       << " drained=" << drained_count_;
    return os.str();
  }

 private:
  std::string NameOnShard(size_t shard, const std::string& stem) {
    for (int i = 0; i < 4096; ++i) {
      const std::string name = stem + std::to_string(i);
      if (router_->HashShard(name) == shard) return name;
    }
    ADD_FAILURE() << "no name hashing to shard " << shard;
    return "";
  }

  void WireRule() {
    propagator_ = std::make_unique<Propagator>(router_.get());
    PropagationRule rule;
    rule.name = "handoff";
    rule.source_queue = src_;
    rule.destination_queue = dst_;
    ASSERT_OK(propagator_->AddRule(std::move(rule)));
  }

  void DoOneOp(Random* rng, Oracle* oracle) {
    const uint64_t kind = rng->Uniform(10);
    if (kind < 3) {
      EnqueueOne(oracle);
    } else if (kind < 4) {
      EnqueueBatchOp(rng, oracle);
    } else if (kind < 7) {
      // The cross-shard handoff path; an injected error leaves the
      // message nacked on the source, a crash unwinds to the schedule.
      EDADB_IGNORE_STATUS(propagator_->RunOnce().status(),
                          "propagation may fail under the armed fault; "
                          "handoff invariants are asserted after recovery");
    } else {
      DequeueDst(rng, oracle);
    }
  }

  void EnqueueOne(Oracle* oracle) {
    const int64_t mid = next_msg_++;
    oracle->enq_uncertain.insert(mid);
    EnqueueRequest request;
    request.payload = std::to_string(mid);
    if (router_->Enqueue(src_, request).ok()) {
      oracle->enq_uncertain.erase(mid);
      oracle->enq_confirmed.insert(mid);
    }
  }

  void EnqueueBatchOp(Random* rng, Oracle* oracle) {
    const size_t n = 2 + rng->Uniform(3);
    std::vector<int64_t> mids;
    std::vector<EnqueueRequest> requests;
    for (size_t i = 0; i < n; ++i) {
      const int64_t mid = next_msg_++;
      mids.push_back(mid);
      oracle->enq_uncertain.insert(mid);
      EnqueueRequest request;
      request.payload = std::to_string(mid);
      requests.push_back(std::move(request));
    }
    if (router_->EnqueueBatch(src_, requests).ok()) {
      for (const int64_t mid : mids) {
        oracle->enq_uncertain.erase(mid);
        oracle->enq_confirmed.insert(mid);
      }
    } else {
      oracle->enq_uncertain_batches.push_back(std::move(mids));
    }
  }

  void DequeueDst(Random* rng, Oracle* oracle) {
    DequeueRequest dq;
    auto m = router_->Dequeue(dst_, dq);
    if (!m.ok() || !m->has_value()) return;
    const int64_t mid = std::stoll((*m)->payload);
    const uint64_t then = rng->Uniform(3);
    if (then == 0) {
      oracle->ack_uncertain.insert(mid);
      if (router_->Ack(dst_, "", (*m)->id).ok()) {
        oracle->ack_uncertain.erase(mid);
        oracle->ack_confirmed.insert(mid);
      }
    } else if (then == 1) {
      EDADB_IGNORE_STATUS(router_->Nack(dst_, "", (*m)->id),
                          "nack may fail under the armed fault; redelivery "
                          "invariants are asserted after recovery");
    }
    // else: walk away holding the lock; the visibility timeout
    // redelivers.
  }

  TempDir dir_;
  SimulatedClock clock_{kMicrosPerHour};
  WalSyncPolicy sync_policy_ = WalSyncPolicy::kNever;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<Propagator> propagator_;
  std::string src_;
  std::string dst_;
  int64_t next_msg_ = 1;
  size_t drained_count_ = 0;
};

std::string RunSchedule(uint64_t schedule_id, const char* site, uint64_t skip,
                        int64_t torn_arg, int workload_ops,
                        WalSyncPolicy sync_policy, bool* crashed) {
  ShardTortureRig rig;
  rig.Init(sync_policy);
  if (::testing::Test::HasFatalFailure()) return "init-failed";

  fp::DisarmAll();
  ArmCrash(site, skip, torn_arg);
  Random rng(TestSeed() ^ (0x53484152D0ULL + schedule_id * 0x9E3779B97F4A7C15ULL));
  Oracle oracle;
  *crashed = rig.RunWorkload(&rng, workload_ops, &oracle);
  fp::DisarmAll();

  rig.Reopen();
  if (::testing::Test::HasFatalFailure()) return "reopen-failed";
  rig.VerifyInvariants(oracle);
  return rig.Summary(oracle, *crashed);
}

int ScheduleCount() {
  const char* env = std::getenv("EDADB_TORTURE_SCHEDULES");
  if (env != nullptr && *env != '\0') {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 120;
}

// Deterministic sweep over the shard-specific windows, with real group
// commits (kOnCommit): one shard's WAL dies mid-group-commit, and the
// handoff dies on both sides of the destination commit.
TEST(ShardTortureTest, CrashSweepOverHandoffAndGroupCommit) {
  FailpointGuard guard;
  const char* sites[] = {
      "wal.group_commit.leader", "db.commit.before_sync",
      "db.commit.after_sync",    "mq.handoff.before_commit",
      "mq.propagate.handoff",
  };
  std::set<std::string> crashed_sites;
  uint64_t schedule_id = 0;
  for (const char* site : sites) {
    for (const uint64_t skip : {0u, 2u}) {
      bool crashed = false;
      RunSchedule(schedule_id++, site, skip, /*torn_arg=*/5,
                  /*workload_ops=*/24, WalSyncPolicy::kOnCommit, &crashed);
      if (HasFatalFailure()) {
        FAIL() << "sweep died at site " << site << " skip " << skip;
      }
      if (crashed) crashed_sites.insert(site);
    }
  }
  // Both handoff windows must actually have been hit: the workload
  // always crosses shards, so a sweep that never reached them means the
  // failpoints moved.
  EXPECT_EQ(1u, crashed_sites.count("mq.handoff.before_commit"));
  EXPECT_EQ(1u, crashed_sites.count("mq.propagate.handoff"));
  EXPECT_GE(crashed_sites.size(), 4u);
}

// Randomized schedules across every site (fast path: no real syncs).
TEST(ShardTortureTest, RandomizedMultiShardCrashSchedules) {
  FailpointGuard guard;
  const int schedules = ScheduleCount();
  Random rng(TestSeed() ^ 0x73686172645F7478ULL);
  int crashes = 0;
  for (int i = 0; i < schedules; ++i) {
    const char* site = kCrashSites[rng.Uniform(kNumCrashSites)];
    const uint64_t skip = rng.Uniform(8);
    const int64_t torn_arg = static_cast<int64_t>(rng.Uniform(24));
    const int ops = 12 + static_cast<int>(rng.Uniform(14));
    bool crashed = false;
    RunSchedule(1000 + i, site, skip, torn_arg, ops,
                WalSyncPolicy::kNever, &crashed);
    if (HasFatalFailure()) {
      FAIL() << "schedule " << i << " (site " << site << ", skip " << skip
             << ") failed; EDADB_TEST_SEED=" << TestSeed();
    }
    if (crashed) ++crashes;
  }
  EXPECT_GT(crashes, schedules / 5);
}

// Same schedule id -> byte-identical outcome.
TEST(ShardTortureTest, SchedulesAreDeterministic) {
  FailpointGuard guard;
  for (const uint64_t id : {3u, 11u}) {
    bool crashed_a = false, crashed_b = false;
    const std::string a =
        RunSchedule(5000 + id, kCrashSites[id % kNumCrashSites], 1, 9, 20,
                    WalSyncPolicy::kNever, &crashed_a);
    ASSERT_FALSE(HasFatalFailure());
    const std::string b =
        RunSchedule(5000 + id, kCrashSites[id % kNumCrashSites], 1, 9, 20,
                    WalSyncPolicy::kNever, &crashed_b);
    ASSERT_FALSE(HasFatalFailure());
    EXPECT_EQ(a, b) << "schedule " << id << " is not deterministic";
    EXPECT_EQ(crashed_a, crashed_b);
  }
}

}  // namespace
