// Per-shard observability end to end: each delivery shard exports
// shard.<i>.* instruments into the process metrics registry, the
// registry is mirrored into `__metrics`, and a continuous query can
// watch ONE shard's depth gauge — the sharded deployment is balanced
// and alerted on with the system's own event machinery.
#include "core/metrics_table.h"
#include "core/processor.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class ShardMetricsTest : public ::testing::Test {
 protected:
  std::unique_ptr<EventProcessor> OpenProcessor(int shards) {
    EventProcessorOptions options;
    options.data_dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.metrics_refresh_interval_micros = 0;  // Refresh every pump.
    options.shards = shards;
    return *EventProcessor::Open(std::move(options));
  }

  static std::vector<Record> RowsNamed(Database* db,
                                       const std::string& name) {
    QueryResult result = *db->Execute(
        QueryBuilder(MetricsTable::kTableName)
            .Where("name = '" + name + "'")
            .Build());
    return std::move(result.rows);
  }

  /// A queue name hashing to `shard`, created on the router.
  static std::string CreateQueueOnShard(ShardRouter* router, size_t shard,
                                        const std::string& stem) {
    for (int i = 0; i < 4096; ++i) {
      const std::string name = stem + std::to_string(i);
      if (router->HashShard(name) == shard) {
        EXPECT_TRUE(router->CreateQueue(name).ok());
        return name;
      }
    }
    ADD_FAILURE() << "no name hashing to shard " << shard;
    return "";
  }

  static EnqueueRequest Req(const std::string& payload) {
    EnqueueRequest request;
    request.payload = payload;
    return request;
  }

  TempDir dir_;
};

TEST_F(ShardMetricsTest, PerShardInstrumentsAreMirroredIntoMetricsTable) {
  auto processor = OpenProcessor(/*shards=*/4);
  ASSERT_EQ(processor->queues()->num_shards(), 4u);
  const std::string queue =
      CreateQueueOnShard(processor->queues(), 2, "load");
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(processor->queues()->Enqueue(queue, Req("m")).status());
  }
  ASSERT_OK(processor->PumpOnce().status());

  // The owning shard's gauges and counters are ordinary queryable rows.
  const auto depth = RowsNamed(processor->db(), "shard.2.depth");
  ASSERT_EQ(depth.size(), 1u);
  EXPECT_EQ((*depth[0].Get("value")).int64_value(), 3);
  EXPECT_EQ((*depth[0].Get("kind")).string_value(), "gauge");
  const auto enqueues = RowsNamed(processor->db(), "shard.2.enqueues");
  ASSERT_EQ(enqueues.size(), 1u);
  EXPECT_GE((*enqueues[0].Get("value")).int64_value(), 3);

  // Idle shards report their (zero) depth too — the load picture is
  // complete, not just where traffic went.
  for (const char* name : {"shard.0.depth", "shard.1.depth",
                           "shard.3.depth"}) {
    const auto rows = RowsNamed(processor->db(), name);
    ASSERT_EQ(rows.size(), 1u) << name;
    EXPECT_EQ((*rows[0].Get("value")).int64_value(), 0) << name;
  }
}

TEST_F(ShardMetricsTest, ContinuousQueryWatchesOneShardsDepthGauge) {
  auto processor = OpenProcessor(/*shards=*/4);
  ASSERT_OK(processor->queues()->CreateQueue("ops"));
  // Watch a shard OTHER than the one holding "ops", so routing the
  // alert does not perturb the watched gauge.
  const size_t watched =
      (processor->queues()->ShardOf("ops") + 1) % 4;
  const std::string gauge = "shard." + std::to_string(watched) + ".depth";
  ASSERT_OK(processor->AttachQueryCapture(
      QueryBuilder(MetricsTable::kTableName)
          .Where("name = '" + gauge + "' AND value >= 2")
          .Build(),
      {"name"}, "shard_backlog"));
  ASSERT_OK(processor->rules()->AddRule(
      "shard-backlog", "event_type = 'shard_backlog' AND value >= 2",
      "queue:ops"));

  const std::string queue =
      CreateQueueOnShard(processor->queues(), watched, "burst");

  // One message: below the threshold, nothing fires.
  ASSERT_OK(processor->queues()->Enqueue(queue, Req("one")).status());
  ASSERT_OK(processor->PumpOnce().status());
  EXPECT_EQ(*processor->queues()->Depth("ops", ""), 0u);

  // Second message crosses it: the refresh inside the same pump makes
  // the gauge row visible to the query source, and the rule routes.
  ASSERT_OK(processor->queues()->Enqueue(queue, Req("two")).status());
  ASSERT_OK(processor->PumpOnce().status());
  DequeueRequest dq;
  auto alert = *processor->queues()->Dequeue("ops", dq);
  ASSERT_TRUE(alert.has_value());
  auto attr = [&](const std::string& key) -> const Value* {
    for (const auto& [k, v] : alert->attributes) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(attr("name"), nullptr);
  EXPECT_EQ(attr("name")->string_value(), gauge);
  ASSERT_NE(attr("value"), nullptr);
  EXPECT_GE(attr("value")->int64_value(), 2);
}

}  // namespace
}  // namespace edadb
