// The `__metrics` system table end to end: the registry mirrored into
// ordinary rows, queryable with the same ad-hoc machinery as user data,
// and — the point of storing health as data — watchable by a
// query-capture source so a rule fires when a metric crosses a
// threshold (DESIGN.md §11).
#include "core/metrics_table.h"

#include "core/processor.h"
#include "cq/window.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

Event SensorEvent(int64_t severity) {
  Event event;
  event.type = "sensor";
  event.Set("severity", Value::Int64(severity));
  return event;
}

class MetricsTableTest : public testing::Test {
 protected:
  std::unique_ptr<EventProcessor> OpenProcessor() {
    EventProcessorOptions options;
    options.data_dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.metrics_refresh_interval_micros = 0;  // Refresh every pump.
    return *EventProcessor::Open(std::move(options));
  }

  /// Rows of `__metrics` whose name column equals `name`.
  static std::vector<Record> RowsNamed(Database* db,
                                       const std::string& name) {
    QueryResult result = *db->Execute(
        QueryBuilder(MetricsTable::kTableName)
            .Where("name = '" + name + "'")
            .Build());
    return std::move(result.rows);
  }

  TempDir dir_;
};

TEST_F(MetricsTableTest, RegistryIsQueryableAsOrdinaryRows) {
  auto processor = OpenProcessor();
  ASSERT_OK(processor->Ingest(SensorEvent(3)));
  ASSERT_OK(processor->Ingest(SensorEvent(4)));
  ASSERT_OK(processor->PumpOnce().status());

  // Plain ad-hoc queries work against system health.
  QueryResult counters = *processor->db()->Execute(
      QueryBuilder(MetricsTable::kTableName)
          .Where("kind = 'counter'")
          .Build());
  EXPECT_FALSE(counters.rows.empty());
  for (const Record& row : counters.rows) {
    EXPECT_FALSE((*row.Get("name")).string_value().empty());
    EXPECT_EQ((*row.Get("kind")).string_value(), "counter");
  }

  // The processor's own counters are among them, with live values.
  const auto ingested = RowsNamed(processor->db(), "core.ingested");
  ASSERT_EQ(ingested.size(), 1u);
  EXPECT_GE((*ingested[0].Get("value")).int64_value(), 2);
}

TEST_F(MetricsTableTest, RefreshUpdatesRowsInPlace) {
  auto processor = OpenProcessor();
  ASSERT_OK(processor->Ingest(SensorEvent(1)));
  ASSERT_OK(processor->PumpOnce().status());
  ASSERT_EQ(RowsNamed(processor->db(), "core.ingested").size(), 1u);
  const int64_t before =
      (*RowsNamed(processor->db(), "core.ingested")[0].Get("value"))
          .int64_value();

  // More activity + more refreshes: the unique-name row is updated in
  // place, never duplicated.
  ASSERT_OK(processor->Ingest(SensorEvent(2)));
  ASSERT_OK(processor->PumpOnce().status());
  ASSERT_OK(processor->PumpOnce().status());
  const auto rows = RowsNamed(processor->db(), "core.ingested");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT((*rows[0].Get("value")).int64_value(), before);
}

TEST_F(MetricsTableTest, ReattachAdoptsPersistedRows) {
  {
    auto processor = OpenProcessor();
    ASSERT_OK(processor->Ingest(SensorEvent(1)));
    ASSERT_OK(processor->PumpOnce().status());
    ASSERT_FALSE(RowsNamed(processor->db(), "core.ingested").empty());
  }
  // A new incarnation adopts the persisted rows: the first refresh
  // updates them in place instead of tripping the unique name index.
  auto processor = OpenProcessor();
  ASSERT_OK(processor->PumpOnce().status());
  ASSERT_OK(processor->PumpOnce().status());
  EXPECT_EQ(RowsNamed(processor->db(), "core.ingested").size(), 1u);
}

// The headline behavior: a continuous query over `__metrics` turns a
// metric threshold crossing into an event, and a rule routes it — the
// system observes itself with its own event machinery.
TEST_F(MetricsTableTest, ContinuousQueryOnMetricsFiresRule) {
  auto processor = OpenProcessor();
  ASSERT_OK(processor->queues()->CreateQueue("ops"));
  ASSERT_OK(processor->AttachQueryCapture(
      QueryBuilder(MetricsTable::kTableName)
          .Where("name = 'core.ingested' AND value >= 3")
          .Build(),
      {"name"}, "metric_alert"));
  ASSERT_OK(processor->rules()->AddRule(
      "ingest-backlog", "event_type = 'metric_alert' AND value >= 3",
      "queue:ops"));

  // Below threshold: the watched result set stays empty.
  ASSERT_OK(processor->Ingest(SensorEvent(1)));
  ASSERT_OK(processor->Ingest(SensorEvent(2)));
  ASSERT_OK(processor->PumpOnce().status());
  EXPECT_EQ(*processor->queues()->Depth("ops", ""), 0u);

  // Crossing it: refresh runs before the query-source poll within the
  // same pump, so the alert fires on this tick.
  ASSERT_OK(processor->Ingest(SensorEvent(3)));
  ASSERT_OK(processor->PumpOnce().status());
  DequeueRequest dq;
  auto alert = *processor->queues()->Dequeue("ops", dq);
  ASSERT_TRUE(alert.has_value());

  // The routed message carries the metric row as attributes.
  auto attr = [&](const std::string& key) -> const Value* {
    for (const auto& [k, v] : alert->attributes) {
      if (k == key) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(attr("name"), nullptr);
  EXPECT_EQ(attr("name")->string_value(), "core.ingested");
  ASSERT_NE(attr("value"), nullptr);
  EXPECT_GE(attr("value")->int64_value(), 3);
  ASSERT_NE(attr("matched_rule"), nullptr);
  EXPECT_EQ(attr("matched_rule")->string_value(), "ingest-backlog");
}

// The event-time counters (DESIGN.md §15) surface through the same
// table: speculative revisions, retractions and dropped stragglers are
// queryable health like everything else.
TEST_F(MetricsTableTest, EventTimeCountersLandInMetricsTable) {
  const SchemaPtr schema = Schema::Make({{"v", ValueType::kInt64, false}});
  WindowAggregatorOptions options;
  options.window_size_micros = 100;
  options.aggregates = {{Aggregate::Func::kCount, "", "n"}};
  options.consistency = ConsistencyLevel::kSpeculative;
  options.allowed_lateness_micros = 1000;
  WindowedAggregator agg(options, [](const WindowResult&) {});
  ASSERT_OK(agg.Push(Record(schema, {Value::Int64(1)}), 10));
  // Frontier passes [0, 100): speculative insert.
  ASSERT_OK(agg.Push(Record(schema, {Value::Int64(2)}), 150));
  // Straggler revises the published window: retract + insert.
  ASSERT_OK(agg.Push(Record(schema, {Value::Int64(3)}), 20));
  // Straggler beyond the lateness allowance: dropped + counted.
  ASSERT_OK(agg.Push(Record(schema, {Value::Int64(4)}), 5000));
  ASSERT_OK(agg.Push(Record(schema, {Value::Int64(5)}), 10));
  ASSERT_OK(agg.Flush());
  ASSERT_GE(agg.retractions_emitted(), 1u);
  ASSERT_GE(agg.late_dropped(), 1u);

  auto processor = OpenProcessor();
  ASSERT_OK(processor->PumpOnce().status());
  for (const char* name :
       {"cq.late_dropped", "cq.retractions_emitted",
        "cq.speculative_emitted", "cq.windows_finalized"}) {
    const auto rows = RowsNamed(processor->db(), name);
    ASSERT_EQ(rows.size(), 1u) << name;
    EXPECT_GE((*rows[0].Get("value")).int64_value(), 1) << name;
  }
}

}  // namespace
}  // namespace edadb
