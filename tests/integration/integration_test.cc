// Cross-module integration tests: the full event-driven stack assembled
// the way the examples and the paper's use cases assemble it, including
// restart/recovery of every persistent artifact, torn-WAL crash
// injection, and a multi-threaded produce/consume smoke test.

#include <atomic>
#include <thread>

#include "core/processor.h"
#include "core/sources.h"
#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "storage/file.h"
#include "test_util.h"

namespace edadb {
namespace {

Event SensorEvent(int64_t severity, const std::string& region = "east") {
  Event event;
  event.type = "sensor";
  event.Set("severity", Value::Int64(severity));
  event.Set("region", Value::String(region));
  return event;
}

TEST(IntegrationTest, FullStackSurvivesRestart) {
  TempDir dir;
  std::string sub_id;
  {
    EventProcessorOptions options;
    options.data_dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto processor = *EventProcessor::Open(std::move(options));
    // Persisted artifacts of every kind.
    ASSERT_OK(processor->queues()->CreateQueue("alerts"));
    ASSERT_OK(processor->rules()->AddRule("crit", "severity >= 7",
                                          "queue:alerts"));
    SubscriptionSpec spec;
    spec.subscriber = "dash";
    spec.topic_pattern = "feed";
    spec.durable = true;
    sub_id = *processor->broker()->Subscribe(std::move(spec));
    // Work in flight: one staged alert, one buffered publication.
    ASSERT_OK(processor->Ingest(SensorEvent(9)));
    Publication pub;
    pub.topic = "feed";
    pub.payload = "pre-restart";
    ASSERT_OK(processor->broker()->Publish(pub).status());
  }

  // "Restart the application."
  EventProcessorOptions options;
  options.data_dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto processor = *EventProcessor::Open(std::move(options));

  // The staged alert survived.
  DequeueRequest dq;
  auto staged = *processor->queues()->Dequeue("alerts", dq);
  ASSERT_TRUE(staged.has_value());
  ASSERT_OK(processor->queues()->Ack("alerts", "", staged->id));

  // The rule still fires on new events.
  ASSERT_OK(processor->Ingest(SensorEvent(8)));
  EXPECT_TRUE(processor->queues()->Dequeue("alerts", dq)->has_value());

  // The durable subscription survived with its backlog, and still
  // receives new publications.
  auto buffered = *processor->broker()->Fetch(sub_id);
  ASSERT_TRUE(buffered.has_value());
  EXPECT_EQ(buffered->payload, "pre-restart");
  Publication pub;
  pub.topic = "feed";
  pub.payload = "post-restart";
  ASSERT_OK(processor->broker()->Publish(pub).status());
  EXPECT_EQ((*processor->broker()->Fetch(sub_id))->payload, "post-restart");
}

TEST(IntegrationTest, TornWalTailLosesOnlyUncommittedSuffix) {
  TempDir dir;
  SchemaPtr schema = Schema::Make({{"n", ValueType::kInt64, false}});
  std::string wal_dir;
  {
    DatabaseOptions options;
    options.dir = dir.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    auto db = *Database::Open(std::move(options));
    ASSERT_TRUE(db->CreateTable("t", schema).ok());
    for (int64_t i = 0; i < 50; ++i) {
      ASSERT_OK(db->Insert("t", Record(schema, {Value::Int64(i)})).status());
    }
    wal_dir = db->wal_dir();
  }
  // Crash injection: rip bytes off the newest WAL segment, landing
  // mid-record.
  Lsn newest = 0;
  const auto names = *ListDir(wal_dir);
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start != kInvalidLsn && start >= newest) newest = start;
  }
  const std::string segment = wal_dir + "/" + WalSegmentName(newest);
  std::string bytes = *ReadFileToString(segment);
  ASSERT_GT(bytes.size(), 40u);
  bytes.resize(bytes.size() - 37);  // Arbitrary odd cut.
  ASSERT_OK(WriteStringToFile(segment, bytes, false));

  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  // A committed prefix survived; the torn suffix (and any transaction
  // it belonged to) is gone. Contents must be a clean prefix 0..k-1.
  const size_t rows = *db->CountRows("t");
  EXPECT_GT(rows, 0u);
  EXPECT_LT(rows, 50u);
  size_t expected = 0;
  (*db->GetTable("t"))->ScanRows([&](RowId, const Record& record) {
    EXPECT_EQ(record.value(0).int64_value(),
              static_cast<int64_t>(expected));
    ++expected;
    return true;
  });
  EXPECT_EQ(expected, rows);
  // The database accepts new writes after repair.
  ASSERT_OK(db->Insert("t", Record(schema, {Value::Int64(999)})).status());
}

TEST(IntegrationTest, CorruptCheckpointMetaFailsLoudly) {
  TempDir dir;
  {
    DatabaseOptions options;
    options.dir = dir.path();
    auto db = *Database::Open(std::move(options));
    ASSERT_TRUE(db->CreateTable("t", Schema::Make({{"n", ValueType::kInt64,
                                                    false}}))
                    .ok());
    ASSERT_OK(db->Checkpoint(db->wal_end_lsn()));
  }
  const std::string meta = dir.path() + "/CHECKPOINT";
  std::string bytes = *ReadFileToString(meta);
  bytes[1] ^= 0x20;
  ASSERT_OK(WriteStringToFile(meta, bytes, false));
  DatabaseOptions options;
  options.dir = dir.path();
  auto reopened = Database::Open(std::move(options));
  // Corruption is surfaced, never silently ignored.
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST(IntegrationTest, ConcurrentProducersAndConsumers) {
  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  auto queues = *QueueManager::Attach(db.get());
  ASSERT_OK(queues->CreateQueue("work"));

  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 200;
  std::atomic<int> consumed{0};
  std::atomic<bool> done_producing{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EnqueueRequest request;
        request.payload = std::to_string(p) + ":" + std::to_string(i);
        ASSERT_TRUE(queues->Enqueue("work", request).ok());
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      DequeueRequest dq;
      for (;;) {
        auto message = queues->Dequeue("work", dq);
        ASSERT_TRUE(message.ok());
        if (message->has_value()) {
          ASSERT_TRUE(queues->Ack("work", "", (*message)->id).ok());
          consumed.fetch_add(1);
        } else if (done_producing.load() &&
                   consumed.load() >= kProducers * kPerProducer) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<size_t>(p)].join();
  done_producing.store(true);
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  EXPECT_EQ(*queues->Depth("work", ""), 0u);
  // Exactly-once: message table fully drained.
  EXPECT_EQ((*db->GetTable("__q_work_msgs"))->num_rows(), 0u);
}

TEST(IntegrationTest, TriggerToRulesToResponderChain) {
  // The ChemSecure shape as a test: table insert -> trigger -> rules ->
  // responder queue, all through public APIs.
  TempDir dir;
  EventProcessorOptions options;
  options.data_dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto processor = *EventProcessor::Open(std::move(options));
  Database* db = processor->db();

  SchemaPtr schema = Schema::Make({
      {"tank", ValueType::kString, false},
      {"ppm", ValueType::kDouble, false},
      {"region", ValueType::kString, false},
  });
  ASSERT_TRUE(db->CreateTable("tanks", schema).ok());
  auto source = *TriggerEventSource::Create(
      db, [&](const Event& event) { ASSERT_OK(processor->Ingest(event)); },
      "tanks", "cap", "tank_reading");
  Responder crew;
  crew.id = "crew";
  crew.roles = {"hazmat"};
  crew.region = "east";
  ASSERT_OK(processor->responders()->RegisterResponder(crew));
  ASSERT_OK(processor->rules()->AddRule(
      "leak", "event_type = 'tank_reading' AND ppm > 400",
      "respond:hazmat"));

  ASSERT_OK(db->Insert("tanks", Record(schema, {Value::String("a"),
                                                Value::Double(100),
                                                Value::String("east")}))
                .status());
  ASSERT_OK(db->Insert("tanks", Record(schema, {Value::String("b"),
                                                Value::Double(900),
                                                Value::String("east")}))
                .status());
  DequeueRequest dq;
  auto notified = *processor->queues()->Dequeue("__responder_crew", dq);
  ASSERT_TRUE(notified.has_value());
  bool found_tank = false;
  for (const auto& [name, value] : notified->attributes) {
    if (name == "tank") {
      found_tank = true;
      EXPECT_EQ(value.string_value(), "b");
    }
  }
  EXPECT_TRUE(found_tank);
  EXPECT_FALSE(
      processor->queues()->Dequeue("__responder_crew", dq)->has_value());
}

}  // namespace
}  // namespace edadb
