// Robustness fuzzing: arbitrary byte strings and token recombinations
// fed to the lexer, expression parser and SQL layer must yield clean
// Status errors (or valid parses) — never crashes, hangs or UB. These
// run as ordinary deterministic tests seeded from fixed RNGs.

#include <string>

#include "common/random.h"
#include "db/sql.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/seeded_rng.h"

namespace edadb {
namespace {

TEST(ExprFuzzTest, RandomBytesNeverCrashLexerOrParser) {
  testing::SeededRng rng(/*stream=*/0);
  for (int iter = 0; iter < 3000; ++iter) {
    const size_t len = rng.Uniform(40);
    std::string input;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.Uniform(96) + 32));  // ASCII.
    }
    auto result = ParseExpression(input);
    if (result.ok()) {
      // Valid parses must round-trip.
      auto reparsed = ParseExpression((*result)->ToString());
      EXPECT_TRUE(reparsed.ok()) << input;
    }
  }
}

TEST(ExprFuzzTest, TokenSoupNeverCrashesParser) {
  // Recombine plausible tokens: exercises deep grammar paths rather
  // than lexer rejections.
  const char* const kTokens[] = {
      "a", "b", "(", ")", ",", "+", "-", "*", "/", "%", "=", "!=", "<",
      "<=", ">", ">=", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS",
      "NULL", "TRUE", "FALSE", "1", "2.5", "'s'", "ABS", "COALESCE"};
  testing::SeededRng rng(/*stream=*/1);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string input;
    const size_t count = rng.Uniform(15) + 1;
    for (size_t i = 0; i < count; ++i) {
      input += kTokens[rng.Uniform(std::size(kTokens))];
      input += " ";
    }
    auto result = ParseExpression(input);
    if (result.ok()) {
      auto reparsed = ParseExpression((*result)->ToString());
      ASSERT_TRUE(reparsed.ok()) << input;
      EXPECT_EQ((*reparsed)->ToString(), (*result)->ToString()) << input;
    }
  }
}

TEST(ExprFuzzTest, DeeplyNestedParensParseOrFailCleanly) {
  std::string deep(2000, '(');
  deep += "1";
  deep += std::string(2000, ')');
  auto result = ParseExpression(deep);
  // Either a clean parse or a clean error; the point is no crash.
  if (result.ok()) {
    EXPECT_EQ((*result)->ToString(), "1");
  }
}

TEST(SqlFuzzTest, StatementSoupNeverCrashes) {
  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  ASSERT_TRUE(
      ExecuteSql(db.get(), "CREATE TABLE t (a INT64, s STRING)").ok());
  ASSERT_TRUE(
      ExecuteSql(db.get(), "INSERT INTO t VALUES (1, 'x')").ok());

  const char* const kTokens[] = {
      "SELECT", "INSERT", "UPDATE", "DELETE", "CREATE", "DROP", "TABLE",
      "INDEX",  "UNIQUE", "INTO",   "VALUES", "FROM",   "WHERE",  "SET",
      "GROUP",  "BY",     "ORDER",  "LIMIT",  "AS",     "COUNT",  "SUM",
      "t",      "a",      "s",      "*",      "(",      ")",      ",",
      "=",      "1",      "'x'",    "AND",    "NOT",    "NULL",   "ASC",
      "DESC"};
  testing::SeededRng rng(/*stream=*/2);
  int parsed_ok = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    std::string sql;
    const size_t count = rng.Uniform(12) + 1;
    for (size_t i = 0; i < count; ++i) {
      sql += kTokens[rng.Uniform(std::size(kTokens))];
      sql += " ";
    }
    auto result = ExecuteSql(db.get(), sql);
    if (result.ok()) ++parsed_ok;
  }
  // Soup is almost always rejected; the property under test is that
  // rejection is always a clean Status (we got here without crashing).
  (void)parsed_ok;
  // The database must still be fully functional afterwards.
  auto check = ExecuteSql(db.get(), "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(check.ok());
}

TEST(SqlFuzzTest, MutatedValidStatementsFailCleanly) {
  TempDir dir;
  DatabaseOptions options;
  options.dir = dir.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  auto db = *Database::Open(std::move(options));
  ASSERT_TRUE(
      ExecuteSql(db.get(), "CREATE TABLE t (a INT64, s STRING)").ok());
  const std::string base =
      "SELECT a, COUNT(*) FROM t WHERE a BETWEEN 1 AND 9 GROUP BY a "
      "ORDER BY a DESC LIMIT 5";
  testing::SeededRng rng(/*stream=*/3);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = base;
    // Delete, duplicate or flip a random span.
    const size_t at = rng.Uniform(mutated.size());
    switch (rng.Uniform(3)) {
      case 0:
        mutated.erase(at, rng.Uniform(5) + 1);
        break;
      case 1:
        mutated.insert(at, mutated.substr(at, rng.Uniform(5) + 1));
        break;
      default:
        mutated[at] = static_cast<char>(rng.Uniform(96) + 32);
        break;
    }
    EDADB_IGNORE_STATUS(ExecuteSql(db.get(), mutated),
                        "fuzz input may legitimately fail; it must not crash");
  }
}

}  // namespace
}  // namespace edadb
