// Property test: for randomly generated expression trees,
// parse(print(tree)) prints identically and evaluates identically on
// random rows — i.e. ToString() is a faithful, parseable rendering.

#include <map>
#include <memory>

#include "common/random.h"
#include "expr/parser.h"
#include "gtest/gtest.h"
#include "testing/seeded_rng.h"
#include "value/record.h"

namespace edadb {
namespace {

class MapRow : public RowAccessor {
 public:
  std::map<std::string, Value> values;
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values.find(std::string(name));
    if (it == values.end()) return std::nullopt;
    return it->second;
  }
};

const char* const kColumns[] = {"a", "b", "c", "s"};

ExprPtr RandomLiteral(Random* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return std::make_shared<LiteralExpr>(Value::Int64(
          rng->UniformInt(-100, 100)));
    case 1:
      return std::make_shared<LiteralExpr>(
          Value::Double(static_cast<double>(rng->UniformInt(-50, 50)) / 4));
    case 2:
      return std::make_shared<LiteralExpr>(Value::Bool(rng->OneIn(2)));
    case 3:
      return std::make_shared<LiteralExpr>(
          Value::String(rng->NextString(3)));
    default:
      return std::make_shared<LiteralExpr>(Value::Null());
  }
}

ExprPtr RandomExpr(Random* rng, int depth) {
  if (depth <= 0 || rng->OneIn(3)) {
    if (rng->OneIn(2)) return RandomLiteral(rng);
    return std::make_shared<ColumnExpr>(
        kColumns[rng->Uniform(std::size(kColumns))]);
  }
  switch (rng->Uniform(8)) {
    case 0: {
      constexpr BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                   BinaryOp::kMul, BinaryOp::kDiv,
                                   BinaryOp::kMod};
      return std::make_shared<BinaryExpr>(kOps[rng->Uniform(5)],
                                          RandomExpr(rng, depth - 1),
                                          RandomExpr(rng, depth - 1));
    }
    case 1: {
      constexpr BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                   BinaryOp::kLt, BinaryOp::kLe,
                                   BinaryOp::kGt, BinaryOp::kGe};
      return std::make_shared<BinaryExpr>(kOps[rng->Uniform(6)],
                                          RandomExpr(rng, depth - 1),
                                          RandomExpr(rng, depth - 1));
    }
    case 2: {
      const BinaryOp op = rng->OneIn(2) ? BinaryOp::kAnd : BinaryOp::kOr;
      return std::make_shared<BinaryExpr>(op, RandomExpr(rng, depth - 1),
                                          RandomExpr(rng, depth - 1));
    }
    case 3: {
      UnaryOp op = rng->OneIn(2) ? UnaryOp::kNot : UnaryOp::kNegate;
      ExprPtr operand = RandomExpr(rng, depth - 1);
      // The parser folds -literal into a literal; generating the
      // unfolded form would trivially break print/parse stability.
      if (op == UnaryOp::kNegate && operand->kind() == ExprKind::kLiteral) {
        op = UnaryOp::kNot;
      }
      return std::make_shared<UnaryExpr>(op, std::move(operand));
    }
    case 4: {
      std::vector<ExprPtr> list;
      const size_t n = rng->Uniform(3) + 1;
      for (size_t i = 0; i < n; ++i) list.push_back(RandomLiteral(rng));
      return std::make_shared<InExpr>(RandomExpr(rng, depth - 1),
                                      std::move(list), rng->OneIn(2));
    }
    case 5:
      return std::make_shared<BetweenExpr>(
          RandomExpr(rng, depth - 1), RandomLiteral(rng),
          RandomLiteral(rng), rng->OneIn(2));
    case 6:
      return std::make_shared<IsNullExpr>(RandomExpr(rng, depth - 1),
                                          rng->OneIn(2));
    default:
      return std::make_shared<FunctionExpr>(
          "COALESCE", std::vector<ExprPtr>{RandomExpr(rng, depth - 1),
                                           RandomLiteral(rng)});
  }
}

MapRow RandomRow(Random* rng) {
  MapRow row;
  for (const char* col : kColumns) {
    switch (rng->Uniform(5)) {
      case 0:
        row.values[col] = Value::Int64(rng->UniformInt(-100, 100));
        break;
      case 1:
        row.values[col] =
            Value::Double(static_cast<double>(rng->UniformInt(-50, 50)) / 4);
        break;
      case 2:
        row.values[col] = Value::Bool(rng->OneIn(2));
        break;
      case 3:
        row.values[col] = Value::String(rng->NextString(3));
        break;
      default:
        break;  // Attribute absent.
    }
  }
  return row;
}

std::string DescribeOutcome(const Result<Value>& r) {
  if (!r.ok()) return "ERROR";  // Error identity, not message equality.
  return r->ToString();
}

TEST(ExprRoundTripProperty, PrintParsePrintIsStable) {
  testing::SeededRng rng(/*stream=*/0);
  for (int iter = 0; iter < 1000; ++iter) {
    ExprPtr tree = RandomExpr(&rng, 4);
    const std::string printed = tree->ToString();
    auto reparsed = ParseExpression(printed);
    ASSERT_TRUE(reparsed.ok())
        << "iteration " << iter << ": " << printed << " -> "
        << reparsed.status();
    EXPECT_EQ((*reparsed)->ToString(), printed) << "iteration " << iter;
  }
}

TEST(ExprRoundTripProperty, ReparsedTreeEvaluatesIdentically) {
  testing::SeededRng rng(/*stream=*/1);
  int evaluated = 0;
  for (int iter = 0; iter < 500; ++iter) {
    ExprPtr tree = RandomExpr(&rng, 3);
    auto reparsed = ParseExpression(tree->ToString());
    ASSERT_TRUE(reparsed.ok()) << tree->ToString();
    for (int r = 0; r < 5; ++r) {
      MapRow row = RandomRow(&rng);
      EvalContext ctx(&row);
      const auto a = tree->Evaluate(ctx);
      const auto b = (*reparsed)->Evaluate(ctx);
      ASSERT_EQ(DescribeOutcome(a), DescribeOutcome(b))
          << tree->ToString();
      if (a.ok()) ++evaluated;
    }
  }
  // Sanity: the generator must produce plenty of evaluable expressions.
  EXPECT_GT(evaluated, 500);
}

}  // namespace
}  // namespace edadb
