#include "expr/parser.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

std::string Reprint(const std::string& source) {
  auto expr = ParseExpression(source);
  EXPECT_TRUE(expr.ok()) << source << " -> " << expr.status();
  return expr.ok() ? (*expr)->ToString() : "<error>";
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(Reprint("42"), "42");
  EXPECT_EQ(Reprint("3.5"), "3.5");
  EXPECT_EQ(Reprint("'text'"), "'text'");
  EXPECT_EQ(Reprint("TRUE"), "TRUE");
  EXPECT_EQ(Reprint("false"), "FALSE");
  EXPECT_EQ(Reprint("NULL"), "NULL");
}

TEST(ParserTest, NegativeLiteralsFold) {
  EXPECT_EQ(Reprint("-5"), "-5");
  EXPECT_EQ(Reprint("-2.5"), "-2.5");
  // Double negation folds twice.
  EXPECT_EQ(Reprint("--5"), "5");
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  EXPECT_EQ(Reprint("1 + 2 * 3"), "(1 + (2 * 3))");
  EXPECT_EQ(Reprint("(1 + 2) * 3"), "((1 + 2) * 3)");
  EXPECT_EQ(Reprint("1 - 2 - 3"), "((1 - 2) - 3)");  // Left assoc.
}

TEST(ParserTest, PrecedenceComparisonOverAnd) {
  EXPECT_EQ(Reprint("a > 1 AND b < 2"), "((a > 1) AND (b < 2))");
}

TEST(ParserTest, PrecedenceAndOverOr) {
  EXPECT_EQ(Reprint("a OR b AND c"), "(a OR (b AND c))");
  EXPECT_EQ(Reprint("(a OR b) AND c"), "((a OR b) AND c)");
}

TEST(ParserTest, NotBindsTighterThanAnd) {
  EXPECT_EQ(Reprint("NOT a AND b"), "((NOT (a)) AND b)");
}

TEST(ParserTest, InList) {
  EXPECT_EQ(Reprint("x IN (1, 2, 3)"), "x IN (1, 2, 3)");
  EXPECT_EQ(Reprint("x NOT IN ('a')"), "x NOT IN ('a')");
}

TEST(ParserTest, EmptyInListRejected) {
  EXPECT_FALSE(ParseExpression("x IN ()").ok());
}

TEST(ParserTest, Between) {
  EXPECT_EQ(Reprint("x BETWEEN 1 AND 10"), "x BETWEEN 1 AND 10");
  EXPECT_EQ(Reprint("x NOT BETWEEN 1 AND 10"), "x NOT BETWEEN 1 AND 10");
  // The AND inside BETWEEN must not be parsed as logical AND.
  EXPECT_EQ(Reprint("x BETWEEN 1 AND 10 AND y = 2"),
            "((x BETWEEN 1 AND 10) AND (y = 2))");
}

TEST(ParserTest, Like) {
  EXPECT_EQ(Reprint("name LIKE 'a%'"), "name LIKE 'a%'");
  EXPECT_EQ(Reprint("name NOT LIKE '_b'"), "name NOT LIKE '_b'");
}

TEST(ParserTest, IsNull) {
  EXPECT_EQ(Reprint("x IS NULL"), "x IS NULL");
  EXPECT_EQ(Reprint("x IS NOT NULL"), "x IS NOT NULL");
}

TEST(ParserTest, FunctionCalls) {
  EXPECT_EQ(Reprint("ABS(x)"), "ABS(x)");
  EXPECT_EQ(Reprint("COALESCE(a, b, 0)"), "COALESCE(a, b, 0)");
  EXPECT_EQ(Reprint("NOW()"), "NOW()");
}

TEST(ParserTest, UnknownFunctionRejected) {
  auto result = ParseExpression("FROBNICATE(x)");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ParserTest, ComplexNesting) {
  EXPECT_EQ(
      Reprint("(severity >= 3 OR kind = 'leak') AND region IN ('e','w') "
              "AND NOT resolved"),
      "((((severity >= 3) OR (kind = 'leak')) AND (region IN ('e', 'w'))) "
      "AND (NOT (resolved)))");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("a +").ok());
  EXPECT_FALSE(ParseExpression("(a").ok());
  EXPECT_FALSE(ParseExpression("a b").ok());
  EXPECT_FALSE(ParseExpression("a = = b").ok());
  EXPECT_FALSE(ParseExpression("x NOT 5").ok());
  EXPECT_FALSE(ParseExpression("x IS 5").ok());
  EXPECT_FALSE(ParseExpression("BETWEEN 1 AND 2").ok());
}

TEST(ParserTest, ErrorsMentionPosition) {
  auto result = ParseExpression("a +");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("position"), std::string::npos);
}

TEST(ParserTest, CollectColumns) {
  auto expr = *ParseExpression("a > 1 AND b IN (c, 2) AND ABS(d) < e + a");
  std::set<std::string> columns;
  expr->CollectColumns(&columns);
  EXPECT_EQ(columns, (std::set<std::string>{"a", "b", "c", "d", "e"}));
}

}  // namespace
}  // namespace edadb
