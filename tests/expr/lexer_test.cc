#include "expr/lexer.h"

#include "gtest/gtest.h"

namespace edadb {
namespace {

std::vector<TokenKind> Kinds(const std::string& source) {
  auto tokens = Tokenize(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(Kinds("   \t\n"), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  EXPECT_EQ(Kinds("and AND AnD"),
            (std::vector<TokenKind>{TokenKind::kAnd, TokenKind::kAnd,
                                    TokenKind::kAnd, TokenKind::kEnd}));
  EXPECT_EQ(Kinds("not in between like is null true false or"),
            (std::vector<TokenKind>{
                TokenKind::kNot, TokenKind::kIn, TokenKind::kBetween,
                TokenKind::kLike, TokenKind::kIs, TokenKind::kNull,
                TokenKind::kTrue, TokenKind::kFalse, TokenKind::kOr,
                TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersKeepCaseAndAllowDots) {
  auto tokens = *Tokenize("Price old.temp _x a1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].text, "Price");
  EXPECT_EQ(tokens[1].text, "old.temp");
  EXPECT_EQ(tokens[2].text, "_x");
  EXPECT_EQ(tokens[3].text, "a1");
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = *Tokenize("0 42 9999999999");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 9999999999LL);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = *Tokenize("3.14 .5 1e3 2.5e-2 7E+2");
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tokens[static_cast<size_t>(i)].kind,
              TokenKind::kDoubleLiteral)
        << i;
  }
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 3.14);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 0.5);
  EXPECT_DOUBLE_EQ(tokens[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 700.0);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = *Tokenize("'hello' '' 'it''s'");
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "");
  EXPECT_EQ(tokens[2].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("'trailing quote''").ok());
}

TEST(LexerTest, Operators) {
  EXPECT_EQ(Kinds("= != <> < <= > >= + - * / % ( ) ,"),
            (std::vector<TokenKind>{
                TokenKind::kEq, TokenKind::kNe, TokenKind::kNe,
                TokenKind::kLt, TokenKind::kLe, TokenKind::kGt,
                TokenKind::kGe, TokenKind::kPlus, TokenKind::kMinus,
                TokenKind::kStar, TokenKind::kSlash, TokenKind::kPercent,
                TokenKind::kLParen, TokenKind::kRParen, TokenKind::kComma,
                TokenKind::kEnd}));
}

TEST(LexerTest, NoSpacesNeeded) {
  EXPECT_EQ(Kinds("a>=3"),
            (std::vector<TokenKind>{TokenKind::kIdentifier, TokenKind::kGe,
                                    TokenKind::kIntLiteral,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());  // Bare '!' without '='.
  EXPECT_FALSE(Tokenize("#").ok());
}

TEST(LexerTest, PositionsPointIntoSource) {
  auto tokens = *Tokenize("ab >= 12");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
  EXPECT_EQ(tokens[2].position, 6u);
}

}  // namespace
}  // namespace edadb
