#include <map>

#include "expr/parser.h"
#include "expr/predicate.h"
#include "gtest/gtest.h"
#include "value/record.h"

namespace edadb {
namespace {

/// Simple map-backed row for evaluator tests.
class MapRow : public RowAccessor {
 public:
  MapRow& Set(const std::string& name, Value v) {
    values_[name] = std::move(v);
    return *this;
  }
  std::optional<Value> GetAttribute(std::string_view name) const override {
    auto it = values_.find(std::string(name));
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::map<std::string, Value> values_;
};

Value Eval(const std::string& source, const RowAccessor* row = nullptr) {
  auto expr = ParseExpression(source);
  EXPECT_TRUE(expr.ok()) << source << ": " << expr.status();
  EvalContext ctx(row);
  auto result = (*expr)->Evaluate(ctx);
  EXPECT_TRUE(result.ok()) << source << ": " << result.status();
  return result.ok() ? *result : Value::Null();
}

Status EvalError(const std::string& source,
                 const RowAccessor* row = nullptr) {
  auto expr = ParseExpression(source);
  EXPECT_TRUE(expr.ok()) << source;
  EvalContext ctx(row);
  auto result = (*expr)->Evaluate(ctx);
  EXPECT_FALSE(result.ok()) << source << " unexpectedly gave "
                            << (result.ok() ? result->ToString() : "");
  return result.ok() ? Status::OK() : result.status();
}

TEST(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2"), Value::Int64(3));
  EXPECT_EQ(Eval("7 - 10"), Value::Int64(-3));
  EXPECT_EQ(Eval("6 * 7"), Value::Int64(42));
  EXPECT_EQ(Eval("7 / 2"), Value::Int64(3));  // Integer division.
  EXPECT_EQ(Eval("7.0 / 2"), Value::Double(3.5));
  EXPECT_EQ(Eval("7 % 3"), Value::Int64(1));
  EXPECT_EQ(Eval("2 + 3 * 4"), Value::Int64(14));
}

TEST(EvalTest, StringConcatViaPlus) {
  EXPECT_EQ(Eval("'foo' + 'bar'"), Value::String("foobar"));
}

TEST(EvalTest, DivisionByZeroIsError) {
  EXPECT_FALSE(EvalError("1 / 0").ok());
  EXPECT_FALSE(EvalError("1.5 / 0.0").ok());
  EXPECT_FALSE(EvalError("1 % 0").ok());
}

TEST(EvalTest, ArithmeticTypeErrors) {
  EXPECT_FALSE(EvalError("'a' - 1").ok());
  EXPECT_FALSE(EvalError("TRUE * 2").ok());
}

TEST(EvalTest, Comparisons) {
  EXPECT_EQ(Eval("1 < 2"), Value::Bool(true));
  EXPECT_EQ(Eval("2 <= 2"), Value::Bool(true));
  EXPECT_EQ(Eval("3 > 4"), Value::Bool(false));
  EXPECT_EQ(Eval("1 = 1.0"), Value::Bool(true));
  EXPECT_EQ(Eval("1 != 2"), Value::Bool(true));
  EXPECT_EQ(Eval("'abc' < 'abd'"), Value::Bool(true));
}

TEST(EvalTest, ComparisonTypeMismatchIsError) {
  EXPECT_FALSE(EvalError("'1' = 1").ok());
  EXPECT_FALSE(EvalError("TRUE > 0").ok());
}

TEST(EvalTest, NullPropagationThroughArithmeticAndComparison) {
  EXPECT_TRUE(Eval("NULL + 1").is_null());
  EXPECT_TRUE(Eval("NULL = NULL").is_null());
  EXPECT_TRUE(Eval("1 < NULL").is_null());
  EXPECT_TRUE(Eval("-(NULL)").is_null());
}

TEST(EvalTest, KleeneAnd) {
  EXPECT_EQ(Eval("TRUE AND TRUE"), Value::Bool(true));
  EXPECT_EQ(Eval("TRUE AND FALSE"), Value::Bool(false));
  EXPECT_EQ(Eval("FALSE AND NULL"), Value::Bool(false));  // F dominates.
  EXPECT_EQ(Eval("NULL AND FALSE"), Value::Bool(false));
  EXPECT_TRUE(Eval("TRUE AND NULL").is_null());
  EXPECT_TRUE(Eval("NULL AND NULL").is_null());
}

TEST(EvalTest, KleeneOr) {
  EXPECT_EQ(Eval("FALSE OR FALSE"), Value::Bool(false));
  EXPECT_EQ(Eval("TRUE OR NULL"), Value::Bool(true));  // T dominates.
  EXPECT_EQ(Eval("NULL OR TRUE"), Value::Bool(true));
  EXPECT_TRUE(Eval("FALSE OR NULL").is_null());
}

TEST(EvalTest, AndShortCircuitSkipsErrors) {
  // The right side would error, but FALSE AND short-circuits.
  EXPECT_EQ(Eval("FALSE AND (1 / 0 > 0)"), Value::Bool(false));
  EXPECT_EQ(Eval("TRUE OR (1 / 0 > 0)"), Value::Bool(true));
}

TEST(EvalTest, NotSemantics) {
  EXPECT_EQ(Eval("NOT TRUE"), Value::Bool(false));
  EXPECT_EQ(Eval("NOT FALSE"), Value::Bool(true));
  EXPECT_TRUE(Eval("NOT NULL").is_null());
}

TEST(EvalTest, InSemantics) {
  EXPECT_EQ(Eval("2 IN (1, 2, 3)"), Value::Bool(true));
  EXPECT_EQ(Eval("4 IN (1, 2, 3)"), Value::Bool(false));
  EXPECT_EQ(Eval("4 NOT IN (1, 2, 3)"), Value::Bool(true));
  // SQL: no match but NULL in the list -> NULL.
  EXPECT_TRUE(Eval("4 IN (1, NULL)").is_null());
  EXPECT_EQ(Eval("1 IN (1, NULL)"), Value::Bool(true));
  EXPECT_TRUE(Eval("NULL IN (1)").is_null());
  // Mixed types: incompatible members simply don't match.
  EXPECT_EQ(Eval("'a' IN (1, 'a')"), Value::Bool(true));
  EXPECT_EQ(Eval("2 IN ('a', 'b')"), Value::Bool(false));
}

TEST(EvalTest, BetweenSemantics) {
  EXPECT_EQ(Eval("5 BETWEEN 1 AND 10"), Value::Bool(true));
  EXPECT_EQ(Eval("1 BETWEEN 1 AND 10"), Value::Bool(true));  // Inclusive.
  EXPECT_EQ(Eval("10 BETWEEN 1 AND 10"), Value::Bool(true));
  EXPECT_EQ(Eval("0 BETWEEN 1 AND 10"), Value::Bool(false));
  EXPECT_EQ(Eval("0 NOT BETWEEN 1 AND 10"), Value::Bool(true));
  EXPECT_TRUE(Eval("5 BETWEEN NULL AND 10").is_null());
}

TEST(EvalTest, LikeSemantics) {
  EXPECT_EQ(Eval("'hello' LIKE 'h%'"), Value::Bool(true));
  EXPECT_EQ(Eval("'hello' LIKE 'h_llo'"), Value::Bool(true));
  EXPECT_EQ(Eval("'hello' NOT LIKE 'x%'"), Value::Bool(true));
  EXPECT_TRUE(Eval("NULL LIKE 'x'").is_null());
  EXPECT_FALSE(EvalError("5 LIKE '5'").ok());
}

TEST(EvalTest, IsNullSemantics) {
  EXPECT_EQ(Eval("NULL IS NULL"), Value::Bool(true));
  EXPECT_EQ(Eval("1 IS NULL"), Value::Bool(false));
  EXPECT_EQ(Eval("1 IS NOT NULL"), Value::Bool(true));
}

TEST(EvalTest, ColumnResolution) {
  MapRow row;
  row.Set("price", Value::Double(99.5)).Set("symbol", Value::String("ACME"));
  EXPECT_EQ(Eval("price > 50", &row), Value::Bool(true));
  EXPECT_EQ(Eval("symbol = 'ACME'", &row), Value::Bool(true));
}

TEST(EvalTest, MissingAttributeIsNullByDefault) {
  MapRow row;
  EXPECT_TRUE(Eval("nonexistent", &row).is_null());
  EXPECT_TRUE(Eval("nonexistent > 5", &row).is_null());
}

TEST(EvalTest, MissingAttributeStrictModeErrors) {
  MapRow row;
  auto expr = *ParseExpression("nonexistent > 5");
  EvalContext ctx(&row);
  ctx.missing_attribute_is_null = false;
  EXPECT_TRUE(expr->Evaluate(ctx).status().IsNotFound());
}

TEST(EvalTest, NoRowBoundIsError) {
  auto expr = *ParseExpression("x + 1");
  EvalContext ctx;
  EXPECT_TRUE(expr->Evaluate(ctx).status().IsFailedPrecondition());
}

TEST(EvalTest, Functions) {
  EXPECT_EQ(Eval("ABS(-4)"), Value::Int64(4));
  EXPECT_EQ(Eval("ABS(-4.5)"), Value::Double(4.5));
  EXPECT_EQ(Eval("ROUND(2.6)"), Value::Double(3.0));
  EXPECT_EQ(Eval("ROUND(2.345, 2)"), Value::Double(2.35));
  EXPECT_EQ(Eval("FLOOR(2.9)"), Value::Double(2.0));
  EXPECT_EQ(Eval("CEIL(2.1)"), Value::Double(3.0));
  EXPECT_EQ(Eval("SQRT(9)"), Value::Double(3.0));
  EXPECT_EQ(Eval("LENGTH('abc')"), Value::Int64(3));
  EXPECT_EQ(Eval("LOWER('AbC')"), Value::String("abc"));
  EXPECT_EQ(Eval("UPPER('AbC')"), Value::String("ABC"));
  EXPECT_EQ(Eval("SUBSTR('hello', 2)"), Value::String("ello"));
  EXPECT_EQ(Eval("SUBSTR('hello', 2, 3)"), Value::String("ell"));
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 7)"), Value::Int64(7));
  EXPECT_TRUE(Eval("COALESCE(NULL)").is_null());
  EXPECT_EQ(Eval("GREATEST(3, 9, 1)"), Value::Int64(9));
  EXPECT_EQ(Eval("LEAST(3, 9, 1)"), Value::Int64(1));
}

TEST(EvalTest, FunctionNullPropagation) {
  EXPECT_TRUE(Eval("ABS(NULL)").is_null());
  EXPECT_TRUE(Eval("LENGTH(NULL)").is_null());
  EXPECT_TRUE(Eval("GREATEST(1, NULL)").is_null());
}

TEST(EvalTest, FunctionErrors) {
  EXPECT_FALSE(EvalError("SQRT(-1)").ok());
  EXPECT_FALSE(EvalError("LENGTH(5)").ok());
  auto bad_arity = ParseExpression("ABS(1, 2)");
  ASSERT_TRUE(bad_arity.ok());  // Parses; arity checked at eval.
  EvalContext ctx;
  EXPECT_TRUE((*bad_arity)->Evaluate(ctx).status().IsInvalidArgument());
}

TEST(EvalTest, NowUsesInjectedClock) {
  SimulatedClock clock(5 * kMicrosPerSecond);
  auto expr = *ParseExpression("NOW()");
  EvalContext ctx;
  ctx.clock = &clock;
  auto result = *expr->Evaluate(ctx);
  EXPECT_EQ(result.timestamp_value(), 5 * kMicrosPerSecond);
}

TEST(PredicateTest, CompileAndMatch) {
  auto pred = *Predicate::Compile("severity >= 3 AND region = 'east'");
  MapRow hit;
  hit.Set("severity", Value::Int64(5)).Set("region", Value::String("east"));
  MapRow miss;
  miss.Set("severity", Value::Int64(1)).Set("region", Value::String("east"));
  EXPECT_TRUE(*pred.Matches(hit));
  EXPECT_FALSE(*pred.Matches(miss));
  EXPECT_EQ(pred.source(), "severity >= 3 AND region = 'east'");
}

TEST(PredicateTest, NullMeansNoMatch) {
  auto pred = *Predicate::Compile("x > 5");
  MapRow row;  // x missing -> NULL -> no match.
  EXPECT_FALSE(*pred.Matches(row));
}

TEST(PredicateTest, MatchesOrFalseSwallowsTypeErrors) {
  auto pred = *Predicate::Compile("x > 5");
  MapRow row;
  row.Set("x", Value::String("not a number"));
  EXPECT_FALSE(pred.Matches(row).ok());
  EXPECT_FALSE(pred.MatchesOrFalse(row));
}

TEST(PredicateTest, InvalidPredicateReports) {
  EXPECT_FALSE(Predicate::Compile("x >").ok());
  Predicate empty;
  MapRow row;
  EXPECT_TRUE(empty.Matches(row).status().IsFailedPrecondition());
}

TEST(PredicateTest, ReferencedColumns) {
  auto pred = *Predicate::Compile("a = 1 AND b IN (2, c)");
  EXPECT_EQ(pred.ReferencedColumns(),
            (std::set<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace edadb
