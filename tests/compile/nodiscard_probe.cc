// Negative-compile probe: this translation unit drops a Status and a
// Result<T> on the floor and MUST NOT build under -Werror=unused-result.
// It is excluded from the default build; the `nodiscard_probe` ctest
// entry (WILL_FAIL) drives a compile of just this target and passes
// only when the compiler rejects it. If this file ever compiles, the
// [[nodiscard]] discipline on Status/Result has regressed.
#include "common/result.h"
#include "common/status.h"

namespace {

edadb::Result<int> MakeValue() { return 42; }

}  // namespace

int main() {
  edadb::Status::IOError("dropped on purpose");  // expect: error, nodiscard
  MakeValue();                                   // expect: error, nodiscard
  return 0;
}
