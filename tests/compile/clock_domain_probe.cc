// Negative-compile probes: each EDADB_PROBE_* section mixes the wall
// and steady clock domains in a way the WallMicros/SteadyMicros strong
// types MUST reject. The clock_domain_probe_* ctest entries (WILL_FAIL)
// each compile this file with one probe macro defined and pass only
// when the compiler refuses. If any section ever compiles, the
// domain-split enforcement in common/clock.h has regressed.
//
// A build with no probe macro defined (the default target, still
// EXCLUDE_FROM_ALL) is valid C++, so the file itself stays parseable by
// tooling.
#include "common/clock.h"

int main() {
  const edadb::WallMicros wall = edadb::WallMicros::FromMicros(100);
  const edadb::SteadyMicros steady = edadb::SteadyMicros::FromMicros(100);

#if defined(EDADB_PROBE_COMPARE)
  // Cross-domain comparison: wall vs steady points are not ordered.
  return wall < steady ? 1 : 0;  // expect: error, no matching operator<
#elif defined(EDADB_PROBE_DIFF)
  // Cross-domain difference: no span exists between different domains.
  return static_cast<int>(wall - steady);  // expect: error
#elif defined(EDADB_PROBE_ADD)
  // Adding two time points is meaningless in any domain combination.
  return static_cast<int>((wall + steady).micros());  // expect: error
#elif defined(EDADB_PROBE_IMPLICIT)
  // Raw micros must pass the explicit FromMicros() gate.
  const edadb::SteadyMicros smuggled = 12345;  // expect: error
  return static_cast<int>(smuggled.micros());
#elif defined(EDADB_PROBE_ASSIGN)
  // Assigning across domains re-tags a point without a conversion.
  edadb::SteadyMicros deadline;
  deadline = wall;  // expect: error
  return static_cast<int>(deadline.micros());
#else
  return wall.micros() == 100 && steady.micros() == 100 ? 0 : 1;
#endif
}
