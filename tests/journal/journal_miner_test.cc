#include "journal/journal_miner.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

SchemaPtr ItemsSchema() {
  return Schema::Make({
      {"name", ValueType::kString, false},
      {"qty", ValueType::kInt64, true},
  });
}

Record Item(const std::string& name, int64_t qty) {
  return *RecordBuilder(ItemsSchema())
              .SetString("name", name)
              .SetInt64("qty", qty)
              .Build();
}

class JournalMinerTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    ASSERT_TRUE(db_->CreateTable("items", ItemsSchema()).ok());
  }

  std::vector<ChangeEvent> Drain(JournalMiner* miner) {
    std::vector<ChangeEvent> events;
    auto polled = miner->Poll(
        [&](const ChangeEvent& event) { events.push_back(event); });
    EXPECT_TRUE(polled.ok()) << polled.status();
    return events;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(JournalMinerTest, MinesCommittedInserts) {
  JournalMiner miner(db_.get(), {});
  const RowId a = *db_->Insert("items", Item("bolt", 10));
  const RowId b = *db_->Insert("items", Item("nut", 20));
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].op, LogRecordType::kInsert);
  EXPECT_EQ(events[0].table_name, "items");
  EXPECT_EQ(events[0].row_id, a);
  ASSERT_TRUE(events[0].after.has_value());
  EXPECT_EQ(events[0].after->Get("name")->string_value(), "bolt");
  EXPECT_FALSE(events[0].before.has_value());
  EXPECT_EQ(events[1].row_id, b);
}

TEST_F(JournalMinerTest, MinesUpdatesWithBothImages) {
  JournalMiner miner(db_.get(), {});
  const RowId id = *db_->Insert("items", Item("bolt", 10));
  ASSERT_OK(db_->UpdateRow("items", id, Item("bolt", 99)));
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].op, LogRecordType::kUpdate);
  EXPECT_EQ(events[1].before->Get("qty")->int64_value(), 10);
  EXPECT_EQ(events[1].after->Get("qty")->int64_value(), 99);
}

TEST_F(JournalMinerTest, MinesDeletesWithOldImage) {
  JournalMiner miner(db_.get(), {});
  const RowId id = *db_->Insert("items", Item("bolt", 10));
  ASSERT_OK(db_->DeleteRow("items", id));
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].op, LogRecordType::kDelete);
  EXPECT_EQ(events[1].before->Get("name")->string_value(), "bolt");
  EXPECT_FALSE(events[1].after.has_value());
}

TEST_F(JournalMinerTest, TransactionDeliveredAtomicallyInCommitOrder) {
  JournalMiner miner(db_.get(), {});
  auto txn = db_->BeginTransaction();
  ASSERT_OK(txn->Insert("items", Item("a", 1)).status());
  ASSERT_OK(txn->Insert("items", Item("b", 2)).status());
  // Nothing visible before commit.
  EXPECT_TRUE(Drain(&miner).empty());
  ASSERT_OK(txn->Commit());
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].after->Get("name")->string_value(), "a");
  EXPECT_EQ(events[1].after->Get("name")->string_value(), "b");
  EXPECT_EQ(events[0].txn_id, events[1].txn_id);
}

TEST_F(JournalMinerTest, RolledBackTransactionInvisible) {
  JournalMiner miner(db_.get(), {});
  {
    auto txn = db_->BeginTransaction();
    ASSERT_OK(txn->Insert("items", Item("ghost", 1)).status());
    ASSERT_OK(txn->Rollback());
  }
  ASSERT_OK(db_->Insert("items", Item("real", 2)).status());
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].after->Get("name")->string_value(), "real");
}

TEST_F(JournalMinerTest, TableFilter) {
  ASSERT_TRUE(db_->CreateTable("other", ItemsSchema()).ok());
  JournalMinerOptions options;
  options.tables.insert("items");
  JournalMiner miner(db_.get(), options);
  ASSERT_OK(db_->Insert("items", Item("keep", 1)).status());
  ASSERT_OK(db_->Insert("other", Item("skip", 2)).status());
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].table_name, "items");
}

TEST_F(JournalMinerTest, IncludeDdlSurfacesCreateDrop) {
  JournalMinerOptions options;
  options.include_ddl = true;
  JournalMiner miner(db_.get(), options);
  ASSERT_TRUE(db_->CreateTable("newborn", ItemsSchema()).ok());
  ASSERT_OK(db_->DropTable("newborn"));
  auto events = Drain(&miner);
  // The CREATE of "items" (from SetUp) is also in the log.
  ASSERT_GE(events.size(), 3u);
  EXPECT_EQ(events[events.size() - 2].op, LogRecordType::kCreateTable);
  EXPECT_EQ(events[events.size() - 2].table_name, "newborn");
  EXPECT_EQ(events.back().op, LogRecordType::kDropTable);
}

TEST_F(JournalMinerTest, WatermarkResumesExactlyAfterConsumed) {
  JournalMiner first(db_.get(), {});
  ASSERT_OK(db_->Insert("items", Item("one", 1)).status());
  ASSERT_OK(db_->Insert("items", Item("two", 2)).status());
  EXPECT_EQ(Drain(&first).size(), 2u);
  const Lsn watermark = first.watermark();

  ASSERT_OK(db_->Insert("items", Item("three", 3)).status());
  // A brand-new miner restarted from the watermark only sees "three".
  JournalMiner resumed(db_.get(), {}, watermark);
  auto events = Drain(&resumed);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].after->Get("name")->string_value(), "three");
}

TEST_F(JournalMinerTest, RepeatedPollsAreIncremental) {
  JournalMiner miner(db_.get(), {});
  EXPECT_TRUE(Drain(&miner).empty());
  ASSERT_OK(db_->Insert("items", Item("x", 1)).status());
  EXPECT_EQ(Drain(&miner).size(), 1u);
  EXPECT_TRUE(Drain(&miner).empty());  // No duplicates.
  ASSERT_OK(db_->Insert("items", Item("y", 2)).status());
  ASSERT_OK(db_->Insert("items", Item("z", 3)).status());
  EXPECT_EQ(Drain(&miner).size(), 2u);
}

TEST_F(JournalMinerTest, MiningSurvivesCheckpointRetention) {
  JournalMiner miner(db_.get(), {});
  ASSERT_OK(db_->Insert("items", Item("pre", 1)).status());
  EXPECT_EQ(Drain(&miner).size(), 1u);
  // Checkpoint retaining the miner's watermark: segments it still needs
  // are preserved.
  ASSERT_OK(db_->Checkpoint(miner.watermark()));
  ASSERT_OK(db_->Insert("items", Item("post", 2)).status());
  auto events = Drain(&miner);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].after->Get("name")->string_value(), "post");
}

}  // namespace
}  // namespace edadb
