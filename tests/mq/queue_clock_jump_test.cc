// Clock-domain regression tests for the delivery path: visibility and
// redelivery deadlines live in the STEADY domain, so wall-clock jumps
// (NTP step, operator adjustment — SimulatedClock::SetMicros) must
// neither trigger premature redelivery nor strand delayed messages.
// Only elapsed steady time (AdvanceMicros) matures deadlines.
#include "mq/queue_manager.h"

#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class QueueClockJumpTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    clock_.SetMicros(kMicrosPerHour);  // Away from zero.
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
  }

  EnqueueRequest Req(const std::string& payload) {
    EnqueueRequest request;
    request.payload = payload;
    return request;
  }

  TempDir dir_;
  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
};

// The historical bug: locked_until was compared against wall time, so a
// forward wall jump (here: +1 day) released every in-flight lock and
// redelivered messages still being processed by their first consumer.
TEST_F(QueueClockJumpTest, ForwardWallJumpDoesNotRedeliverLockedMessage) {
  QueueCreateOptions options;
  options.visibility_timeout_micros = 10 * kMicrosPerSecond;
  ASSERT_OK(queues_->CreateQueue("q", options));
  ASSERT_OK(queues_->Enqueue("q", Req("in flight")).status());
  DequeueRequest dq;
  auto first = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->delivery_count, 1);

  // Wall leaps a day ahead; zero steady time has elapsed.
  clock_.SetMicros(clock_.NowMicros() + 24 * kMicrosPerHour);
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value())
      << "wall jump released a visibility lock";

  // Real (steady) elapsed time still matures the lock.
  clock_.AdvanceMicros(11 * kMicrosPerSecond);
  auto second = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->delivery_count, 2);
}

// A backward wall step must not freeze redelivery: the steady deadline
// matures after the configured elapsed time regardless of wall time.
TEST_F(QueueClockJumpTest, BackwardWallJumpDoesNotStallRedelivery) {
  QueueCreateOptions options;
  options.visibility_timeout_micros = 5 * kMicrosPerSecond;
  ASSERT_OK(queues_->CreateQueue("q", options));
  ASSERT_OK(queues_->Enqueue("q", Req("x")).status());
  DequeueRequest dq;
  ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());

  clock_.SetMicros(clock_.NowMicros() - 30 * kMicrosPerMinute);
  clock_.AdvanceMicros(6 * kMicrosPerSecond);
  auto again = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(again.has_value()) << "backward wall jump stalled redelivery";
  EXPECT_EQ(again->payload, "x");
  EXPECT_EQ(again->delivery_count, 2);
}

// Same for nack redelivery delays: scheduled in the steady domain.
TEST_F(QueueClockJumpTest, NackDelayUnaffectedByWallJumps) {
  ASSERT_OK(queues_->CreateQueue("q"));
  const MessageId id = *queues_->Enqueue("q", Req("retry later"));
  DequeueRequest dq;
  ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());
  ASSERT_OK(queues_->Nack("q", "", id, /*redeliver_delay_micros=*/
                          5 * kMicrosPerSecond));

  // Forward wall jump: the delay has not elapsed in steady time.
  clock_.SetMicros(clock_.NowMicros() + 24 * kMicrosPerHour);
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value())
      << "wall jump matured a nack redelivery delay";

  clock_.AdvanceMicros(6 * kMicrosPerSecond);
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->delivery_count, 2);
}

// Delayed enqueues (delay_micros) also mature on elapsed steady time,
// whatever the wall clock does in between.
TEST_F(QueueClockJumpTest, DelayedMessageMaturesOnSteadyTimeOnly) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest request = Req("scheduled");
  request.delay_micros = 10 * kMicrosPerSecond;
  ASSERT_OK(queues_->Enqueue("q", request).status());
  DequeueRequest dq;

  // Forward wall jump alone must not make it visible early...
  clock_.SetMicros(clock_.NowMicros() + 24 * kMicrosPerHour);
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value())
      << "wall jump matured an enqueue delay";
  EXPECT_EQ(*queues_->Depth("q", ""), 0u);

  // ...and a backward jump must not push visibility out.
  clock_.SetMicros(clock_.NowMicros() - 48 * kMicrosPerHour);
  clock_.AdvanceMicros(11 * kMicrosPerSecond);
  EXPECT_EQ(*queues_->Depth("q", ""), 1u);
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "scheduled");
}

// Wall time is still authoritative for DATA: TTL expiry is an absolute
// wall deadline, so a forward wall jump DOES expire messages.
TEST_F(QueueClockJumpTest, TtlExpiryFollowsWallTime) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest request = Req("short lived");
  request.ttl_micros = 5 * kMicrosPerSecond;
  ASSERT_OK(queues_->Enqueue("q", request).status());

  clock_.SetMicros(clock_.NowMicros() + 10 * kMicrosPerSecond);
  EXPECT_EQ(*queues_->PurgeExpired("q"), 1u);
  DequeueRequest dq;
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
}

}  // namespace
}  // namespace edadb
