// EnqueueBatch / DequeueBatch coverage: id assignment, all-or-nothing
// atomicity, max_messages bounds, and equivalence with the single-shot
// wrappers.

#include "mq/queue_manager.h"

#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/crash_harness.h"

namespace edadb {
namespace {

class QueueBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    clock_.SetMicros(kMicrosPerHour);
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    ASSERT_OK(queues_->CreateQueue("q"));
  }

  static EnqueueRequest Req(const std::string& payload,
                            int64_t priority = 0) {
    EnqueueRequest request;
    request.payload = payload;
    request.priority = priority;
    return request;
  }

  std::vector<std::string> Drain(size_t max) {
    std::vector<std::string> payloads;
    auto messages = queues_->DequeueBatch("q", DequeueRequest{}, max);
    EXPECT_OK(messages.status());
    if (!messages.ok()) return payloads;
    for (const Message& message : *messages) {
      payloads.push_back(message.payload);
      EXPECT_OK(queues_->Ack("q", "", message.id));
    }
    return payloads;
  }

  TempDir dir_;
  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
};

TEST_F(QueueBatchTest, EnqueueBatchReturnsIdsInRequestOrder) {
  const std::vector<MessageId> ids = *queues_->EnqueueBatch(
      "q", {Req("a"), Req("b"), Req("c")});
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_LT(ids[0], ids[1]);
  EXPECT_LT(ids[1], ids[2]);
  EXPECT_EQ(Drain(10), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(QueueBatchTest, EmptyBatchValidatesQueueName) {
  EXPECT_EQ(queues_->EnqueueBatch("q", {})->size(), 0u);
  EXPECT_TRUE(queues_->EnqueueBatch("missing", {}).status().IsNotFound());
  EXPECT_TRUE(
      queues_->EnqueueBatch("missing", {Req("x")}).status().IsNotFound());
}

TEST_F(QueueBatchTest, WrapperAndBatchInterleaveCleanly) {
  ASSERT_OK(queues_->Enqueue("q", Req("one")).status());
  ASSERT_OK(queues_->EnqueueBatch("q", {Req("two"), Req("three")}).status());
  ASSERT_OK(queues_->Enqueue("q", Req("four")).status());
  EXPECT_EQ(Drain(10),
            (std::vector<std::string>{"one", "two", "three", "four"}));
}

TEST_F(QueueBatchTest, DequeueBatchHonorsMaxMessages) {
  ASSERT_OK(queues_->EnqueueBatch(
      "q", {Req("a"), Req("b"), Req("c"), Req("d")}).status());
  EXPECT_EQ(queues_->DequeueBatch("q", DequeueRequest{}, 0)->size(), 0u);
  EXPECT_EQ(Drain(3), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Drain(3), (std::vector<std::string>{"d"}));
  EXPECT_EQ(Drain(3), std::vector<std::string>{});
}

TEST_F(QueueBatchTest, DequeueBatchRespectsPriorityOrder) {
  ASSERT_OK(queues_->EnqueueBatch(
      "q", {Req("low", 1), Req("high", 9), Req("mid", 5)}).status());
  EXPECT_EQ(Drain(10), (std::vector<std::string>{"high", "mid", "low"}));
}

#ifdef EDADB_FAILPOINTS_ENABLED
TEST_F(QueueBatchTest, MidBatchErrorRollsBackWholeBatch) {
  ASSERT_OK(queues_->Enqueue("q", Req("survivor")).status());
  {
    // Fail between message 2 and 3: nothing from the batch may land.
    testing::FailpointGuard guard;
    testing::ArmError("mq.enqueue_batch.mid", Status::IOError("injected"),
                      /*skip=*/1);
    EXPECT_FALSE(queues_->EnqueueBatch(
        "q", {Req("b1"), Req("b2"), Req("b3")}).ok());
  }
  EXPECT_EQ(Drain(10), (std::vector<std::string>{"survivor"}));
  // The queue still works after the rollback.
  ASSERT_OK(queues_->EnqueueBatch("q", {Req("after")}).status());
  EXPECT_EQ(Drain(10), (std::vector<std::string>{"after"}));
}
#endif  // EDADB_FAILPOINTS_ENABLED

}  // namespace
}  // namespace edadb
