// Runtime-rebuild edge cases: locked, delayed and partially-acked
// delivery state must survive a QueueManager re-attach (the state lives
// in tables; the in-memory dequeue index is reconstructed).

#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "test_util.h"

namespace edadb {
namespace {

class QueueReattachTest : public testing::Test {
 protected:
  void SetUp() override { Reopen(); }

  void Reopen() {
    queues_.reset();
    db_.reset();
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
  }

  EnqueueRequest Req(const std::string& payload) {
    EnqueueRequest request;
    request.payload = payload;
    return request;
  }

  TempDir dir_;
  SimulatedClock clock_{kMicrosPerHour};
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
};

TEST_F(QueueReattachTest, LockedMessageStaysInvisibleUntilTimeout) {
  QueueCreateOptions options;
  options.visibility_timeout_micros = 60 * kMicrosPerSecond;
  ASSERT_OK(queues_->CreateQueue("q", options));
  ASSERT_OK(queues_->Enqueue("q", Req("inflight")).status());
  DequeueRequest dq;
  ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());

  // Consumer "crashes" holding the lock; the manager restarts.
  Reopen();
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());  // Still locked.
  clock_.AdvanceMicros(61 * kMicrosPerSecond);
  auto redelivered = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(redelivered.has_value());
  EXPECT_EQ(redelivered->payload, "inflight");
  EXPECT_EQ(redelivered->delivery_count, 2);  // Count survived too.
}

TEST_F(QueueReattachTest, DelayedMessageMaturesAfterRestart) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest request = Req("later");
  request.delay_micros = 30 * kMicrosPerSecond;
  ASSERT_OK(queues_->Enqueue("q", request).status());
  Reopen();
  DequeueRequest dq;
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  clock_.AdvanceMicros(31 * kMicrosPerSecond);
  EXPECT_TRUE(queues_->Dequeue("q", dq)->has_value());
}

TEST_F(QueueReattachTest, PartialGroupAcksSurvive) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->AddConsumerGroup("q", "g1"));
  ASSERT_OK(queues_->AddConsumerGroup("q", "g2"));
  const MessageId id = *queues_->Enqueue("q", Req("shared"));
  DequeueRequest g1;
  g1.group = "g1";
  ASSERT_TRUE((*queues_->Dequeue("q", g1)).has_value());
  ASSERT_OK(queues_->Ack("q", "g1", id));

  Reopen();
  // g1's ack is durable: nothing left for it.
  EXPECT_FALSE(queues_->Dequeue("q", g1)->has_value());
  // g2 still has its copy; acking it garbage-collects the message.
  DequeueRequest g2;
  g2.group = "g2";
  auto msg = *queues_->Dequeue("q", g2);
  ASSERT_TRUE(msg.has_value());
  ASSERT_OK(queues_->Ack("q", "g2", id));
  EXPECT_TRUE(queues_->Peek("q", id).status().IsNotFound());
}

TEST_F(QueueReattachTest, QueueOptionsAndGroupsReload) {
  QueueCreateOptions options;
  options.max_deliveries = 2;
  options.visibility_timeout_micros = kMicrosPerSecond;
  options.dead_letter_queue = "dlq";
  ASSERT_OK(queues_->CreateQueue("dlq"));
  ASSERT_OK(queues_->CreateQueue("q", options));
  ASSERT_OK(queues_->AddConsumerGroup("q", "workers"));
  Reopen();
  EXPECT_EQ(*queues_->ListConsumerGroups("q"),
            (std::vector<std::string>{"workers"}));
  // Dead-letter policy survived: exhaust deliveries post-restart.
  ASSERT_OK(queues_->Enqueue("q", Req("poison")).status());
  DequeueRequest dq;
  dq.group = "workers";
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());
    clock_.AdvanceMicros(2 * kMicrosPerSecond);
  }
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  DequeueRequest dlq_req;
  EXPECT_TRUE(queues_->Dequeue("dlq", dlq_req)->has_value());
}

TEST_F(QueueReattachTest, CheckpointThenReattach) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->Enqueue("q", Req("before ckpt")).status());
  ASSERT_OK(db_->Checkpoint(db_->wal_end_lsn()));
  ASSERT_OK(queues_->Enqueue("q", Req("after ckpt")).status());
  Reopen();
  DequeueRequest dq;
  EXPECT_EQ((*queues_->Dequeue("q", dq))->payload, "before ckpt");
  EXPECT_EQ((*queues_->Dequeue("q", dq))->payload, "after ckpt");
}

}  // namespace
}  // namespace edadb
