#include "mq/dispatcher.h"

#include <atomic>

#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/sleep.h"

namespace edadb {
namespace {

class DispatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    dispatcher_ = std::make_unique<QueueDispatcher>(queues_.get());
    ASSERT_TRUE(queues_->CreateQueue("work").ok());
  }

  Status Enqueue(const std::string& payload, int64_t severity = 5) {
    EnqueueRequest request;
    request.payload = payload;
    request.attributes = {{"severity", Value::Int64(severity)}};
    return queues_->Enqueue("work", request).status();
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<QueueDispatcher> dispatcher_;
};

TEST_F(DispatcherTest, ActivatesHandlerAndAcks) {
  std::vector<std::string> handled;
  QueueDispatcher::Binding binding;
  binding.queue = "work";
  binding.handler = [&](const Message& message) {
    handled.push_back(message.payload);
    return Status::OK();
  };
  ASSERT_OK(dispatcher_->Bind(std::move(binding)));
  ASSERT_OK(Enqueue("m1"));
  ASSERT_OK(Enqueue("m2"));
  EXPECT_EQ(*dispatcher_->PumpOnce(), 2u);
  EXPECT_EQ(handled, (std::vector<std::string>{"m1", "m2"}));
  // Consumed: nothing remains.
  EXPECT_EQ(*queues_->Depth("work", ""), 0u);
  EXPECT_EQ((*dispatcher_->GetStats("work", "")).handled, 2u);
  EXPECT_EQ(*dispatcher_->PumpOnce(), 0u);
}

TEST_F(DispatcherTest, HandlerFailureNacksForRedelivery) {
  int attempts = 0;
  QueueDispatcher::Binding binding;
  binding.queue = "work";
  binding.handler = [&](const Message&) {
    ++attempts;
    return attempts < 3 ? Status::TimedOut("downstream down")
                        : Status::OK();
  };
  ASSERT_OK(dispatcher_->Bind(std::move(binding)));
  ASSERT_OK(Enqueue("retry me"));
  EXPECT_EQ(*dispatcher_->PumpOnce(), 0u);  // Fail 1 -> nack.
  EXPECT_EQ(*dispatcher_->PumpOnce(), 0u);  // Fail 2 -> nack.
  EXPECT_EQ(*dispatcher_->PumpOnce(), 1u);  // Third attempt succeeds.
  EXPECT_EQ(attempts, 3);
  const auto stats = *dispatcher_->GetStats("work", "");
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.handled, 1u);
}

TEST_F(DispatcherTest, SelectorRoutesSubsets) {
  std::vector<std::string> critical;
  QueueDispatcher::Binding binding;
  binding.queue = "work";
  binding.selector = *Predicate::Compile("severity >= 7");
  binding.handler = [&](const Message& message) {
    critical.push_back(message.payload);
    return Status::OK();
  };
  ASSERT_OK(dispatcher_->Bind(std::move(binding)));
  ASSERT_OK(Enqueue("low", 2));
  ASSERT_OK(Enqueue("high", 9));
  EXPECT_EQ(*dispatcher_->PumpOnce(), 1u);
  EXPECT_EQ(critical, (std::vector<std::string>{"high"}));
  // The low-severity message is untouched for other consumers.
  EXPECT_EQ(*queues_->Depth("work", ""), 1u);
}

TEST_F(DispatcherTest, BindValidation) {
  QueueDispatcher::Binding no_handler;
  no_handler.queue = "work";
  EXPECT_TRUE(dispatcher_->Bind(no_handler).IsInvalidArgument());
  QueueDispatcher::Binding ghost;
  ghost.queue = "ghost";
  ghost.handler = [](const Message&) { return Status::OK(); };
  EXPECT_TRUE(dispatcher_->Bind(ghost).IsNotFound());
  QueueDispatcher::Binding ok;
  ok.queue = "work";
  ok.handler = [](const Message&) { return Status::OK(); };
  ASSERT_OK(dispatcher_->Bind(ok));
  EXPECT_TRUE(dispatcher_->Bind(ok).IsAlreadyExists());
  ASSERT_OK(dispatcher_->Unbind("work", ""));
  EXPECT_TRUE(dispatcher_->Unbind("work", "").IsNotFound());
}

TEST_F(DispatcherTest, PerGroupBindings) {
  ASSERT_OK(queues_->AddConsumerGroup("work", "billing"));
  ASSERT_OK(queues_->AddConsumerGroup("work", "audit"));
  std::atomic<int> billing{0};
  std::atomic<int> auditing{0};
  QueueDispatcher::Binding b1;
  b1.queue = "work";
  b1.group = "billing";
  b1.handler = [&](const Message&) {
    ++billing;
    return Status::OK();
  };
  QueueDispatcher::Binding b2;
  b2.queue = "work";
  b2.group = "audit";
  b2.handler = [&](const Message&) {
    ++auditing;
    return Status::OK();
  };
  ASSERT_OK(dispatcher_->Bind(std::move(b1)));
  ASSERT_OK(dispatcher_->Bind(std::move(b2)));
  ASSERT_OK(Enqueue("shared"));
  EXPECT_EQ(*dispatcher_->PumpOnce(), 2u);  // One activation per group.
  EXPECT_EQ(billing.load(), 1);
  EXPECT_EQ(auditing.load(), 1);
}

// Cold-start latency: the background thread blocks on the queue
// manager's activity signal, so the first message after an idle period
// is handled in wake-up time, not after the idle re-poll interval. With
// a 2s idle wait, a polling loop would take ~2s; the CV wakeup path
// must come in far under that.
TEST_F(DispatcherTest, IdleWakeupBeatsPollInterval) {
  std::atomic<int> handled{0};
  QueueDispatcher::Binding binding;
  binding.queue = "work";
  binding.handler = [&](const Message&) {
    handled.fetch_add(1);
    return Status::OK();
  };
  ASSERT_OK(dispatcher_->Bind(std::move(binding)));
  ASSERT_OK(dispatcher_->Start(/*idle_wait_micros=*/2 * kMicrosPerSecond));
  // Let the worker finish its first empty pump and park on the signal.
  testing::YieldBriefly(50);

  const auto enqueued_at = std::chrono::steady_clock::now();
  ASSERT_OK(Enqueue("wake up"));
  while (handled.load() < 1 &&
         std::chrono::steady_clock::now() - enqueued_at <
             std::chrono::seconds(10)) {
    testing::SleepForMillis(1);
  }
  const auto latency = std::chrono::steady_clock::now() - enqueued_at;
  dispatcher_->Stop();
  ASSERT_EQ(handled.load(), 1);
  // Generous CI margin, but still far below the 2s idle re-poll bound.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(latency)
                .count(),
            1000)
      << "dispatcher appears to be polling, not waking on arrivals";
}

TEST_F(DispatcherTest, BackgroundActivation) {
  std::atomic<int> handled{0};
  QueueDispatcher::Binding binding;
  binding.queue = "work";
  binding.handler = [&](const Message&) {
    handled.fetch_add(1);
    return Status::OK();
  };
  ASSERT_OK(dispatcher_->Bind(std::move(binding)));
  ASSERT_OK(dispatcher_->Start(kMicrosPerMilli));
  EXPECT_TRUE(dispatcher_->Start().IsFailedPrecondition());
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(Enqueue("bg" + std::to_string(i)));
  }
  // The background thread drains within a generous deadline.
  for (int spin = 0; spin < 2000 && handled.load() < 10; ++spin) {
    testing::SleepForMillis(1);
  }
  dispatcher_->Stop();
  dispatcher_->Stop();  // Idempotent.
  EXPECT_EQ(handled.load(), 10);
}

}  // namespace
}  // namespace edadb
