#include "mq/queue_manager.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "gtest/gtest.h"
#include "test_util.h"
#include "testing/sleep.h"

namespace edadb {
namespace {

class QueueTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    clock_.SetMicros(kMicrosPerHour);  // Away from zero.
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
  }

  EnqueueRequest Req(const std::string& payload, int64_t priority = 0) {
    EnqueueRequest request;
    request.payload = payload;
    request.priority = priority;
    return request;
  }

  TempDir dir_;
  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
};

TEST_F(QueueTest, CreateListDrop) {
  ASSERT_OK(queues_->CreateQueue("orders"));
  EXPECT_TRUE(queues_->HasQueue("orders"));
  EXPECT_TRUE(queues_->CreateQueue("orders").IsAlreadyExists());
  EXPECT_EQ(queues_->ListQueues(), (std::vector<std::string>{"orders"}));
  ASSERT_OK(queues_->DropQueue("orders"));
  EXPECT_FALSE(queues_->HasQueue("orders"));
  EXPECT_TRUE(queues_->DropQueue("orders").IsNotFound());
  EXPECT_TRUE(queues_->CreateQueue("").IsInvalidArgument());
}

// Regression: DropQueue used to discard the trigger-drop Status with a
// (void) cast. It must tolerate a trigger that is already gone
// (NotFound — e.g. half-completed earlier drop) but still succeed in
// removing the queue, leaving the name free for re-creation.
TEST_F(QueueTest, DropQueueToleratesAlreadyMissingTrigger) {
  ASSERT_OK(queues_->CreateQueue("orders"));
  // Remove one of the queue's maintenance triggers out from under it.
  ASSERT_OK(db_->DropTrigger("__qt_orders_msgs"));
  ASSERT_OK(queues_->DropQueue("orders"));
  EXPECT_FALSE(queues_->HasQueue("orders"));
  ASSERT_OK(queues_->CreateQueue("orders"));
  ASSERT_OK(queues_->Enqueue("orders", Req("still works")).status());
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("orders", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "still works");
}

TEST_F(QueueTest, FifoWithinSamePriority) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->Enqueue("q", Req("first")).status());
  ASSERT_OK(queues_->Enqueue("q", Req("second")).status());
  DequeueRequest dq;
  auto m1 = *queues_->Dequeue("q", dq);
  auto m2 = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  EXPECT_EQ(m1->payload, "first");
  EXPECT_EQ(m2->payload, "second");
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
}

TEST_F(QueueTest, PriorityOrdering) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->Enqueue("q", Req("low", 1)).status());
  ASSERT_OK(queues_->Enqueue("q", Req("high", 9)).status());
  ASSERT_OK(queues_->Enqueue("q", Req("mid", 5)).status());
  DequeueRequest dq;
  EXPECT_EQ((*queues_->Dequeue("q", dq))->payload, "high");
  EXPECT_EQ((*queues_->Dequeue("q", dq))->payload, "mid");
  EXPECT_EQ((*queues_->Dequeue("q", dq))->payload, "low");
}

TEST_F(QueueTest, AckRemovesMessage) {
  ASSERT_OK(queues_->CreateQueue("q"));
  const MessageId id = *queues_->Enqueue("q", Req("x"));
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  ASSERT_OK(queues_->Ack("q", "", id));
  // Message row is gone.
  EXPECT_TRUE(queues_->Peek("q", id).status().IsNotFound());
  EXPECT_TRUE(queues_->Ack("q", "", id).IsNotFound());
}

TEST_F(QueueTest, VisibilityTimeoutRedelivers) {
  QueueCreateOptions options;
  options.visibility_timeout_micros = 10 * kMicrosPerSecond;
  ASSERT_OK(queues_->CreateQueue("q", options));
  ASSERT_OK(queues_->Enqueue("q", Req("x")).status());
  DequeueRequest dq;
  auto first = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->delivery_count, 1);
  // Locked: no redelivery yet.
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  // After the visibility timeout it returns.
  clock_.AdvanceMicros(11 * kMicrosPerSecond);
  auto second = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->payload, "x");
  EXPECT_EQ(second->delivery_count, 2);
}

TEST_F(QueueTest, NackMakesAvailableAgain) {
  ASSERT_OK(queues_->CreateQueue("q"));
  const MessageId id = *queues_->Enqueue("q", Req("retry me"));
  DequeueRequest dq;
  ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());
  ASSERT_OK(queues_->Nack("q", "", id));
  auto again = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->delivery_count, 2);
}

TEST_F(QueueTest, NackWithDelayDefersRedelivery) {
  ASSERT_OK(queues_->CreateQueue("q"));
  const MessageId id = *queues_->Enqueue("q", Req("later"));
  DequeueRequest dq;
  ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());
  ASSERT_OK(queues_->Nack("q", "", id, 5 * kMicrosPerSecond));
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  clock_.AdvanceMicros(6 * kMicrosPerSecond);
  EXPECT_TRUE(queues_->Dequeue("q", dq)->has_value());
}

TEST_F(QueueTest, DelayedEnqueueInvisibleUntilDue) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest request = Req("scheduled");
  request.delay_micros = 30 * kMicrosPerSecond;
  ASSERT_OK(queues_->Enqueue("q", request).status());
  DequeueRequest dq;
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  EXPECT_EQ(*queues_->Depth("q", ""), 0u);
  clock_.AdvanceMicros(31 * kMicrosPerSecond);
  EXPECT_EQ(*queues_->Depth("q", ""), 1u);
  EXPECT_TRUE(queues_->Dequeue("q", dq)->has_value());
}

TEST_F(QueueTest, SelectorFiltersByAttributes) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest east = Req("east order");
  east.attributes = {{"region", Value::String("east")},
                     {"severity", Value::Int64(2)}};
  EnqueueRequest west = Req("west order");
  west.attributes = {{"region", Value::String("west")},
                     {"severity", Value::Int64(8)}};
  ASSERT_OK(queues_->Enqueue("q", east).status());
  ASSERT_OK(queues_->Enqueue("q", west).status());
  DequeueRequest dq;
  dq.selector = *Predicate::Compile("region = 'west' AND severity > 5");
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "west order");
  // Nothing else matches; the east message stays queued for others.
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  DequeueRequest all;
  EXPECT_TRUE(queues_->Dequeue("q", all)->has_value());
}

TEST_F(QueueTest, SelectorSeesBuiltinAttributes) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest request = Req("prio", 7);
  request.correlation_id = "corr-1";
  ASSERT_OK(queues_->Enqueue("q", request).status());
  DequeueRequest dq;
  dq.selector =
      *Predicate::Compile("priority = 7 AND correlation_id = 'corr-1'");
  EXPECT_TRUE(queues_->Dequeue("q", dq)->has_value());
}

TEST_F(QueueTest, ConsumerGroupsEachGetACopy) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->AddConsumerGroup("q", "billing"));
  ASSERT_OK(queues_->AddConsumerGroup("q", "audit"));
  const MessageId id = *queues_->Enqueue("q", Req("shared"));
  DequeueRequest billing;
  billing.group = "billing";
  DequeueRequest audit;
  audit.group = "audit";
  auto m1 = *queues_->Dequeue("q", billing);
  auto m2 = *queues_->Dequeue("q", audit);
  ASSERT_TRUE(m1.has_value() && m2.has_value());
  ASSERT_OK(queues_->Ack("q", "billing", id));
  // Still present until every group acks.
  EXPECT_TRUE(queues_->Peek("q", id).ok());
  ASSERT_OK(queues_->Ack("q", "audit", id));
  EXPECT_TRUE(queues_->Peek("q", id).status().IsNotFound());
}

TEST_F(QueueTest, UnknownGroupRejected) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->AddConsumerGroup("q", "g1"));
  // Once explicit groups exist, the implicit "" group is gone.
  DequeueRequest dq;
  EXPECT_TRUE(queues_->Dequeue("q", dq).status().IsNotFound());
  DequeueRequest other;
  other.group = "ghost";
  EXPECT_TRUE(queues_->Dequeue("q", other).status().IsNotFound());
}

TEST_F(QueueTest, MaxDeliveriesDeadLetters) {
  ASSERT_OK(queues_->CreateQueue("dlq"));
  QueueCreateOptions options;
  options.max_deliveries = 2;
  options.visibility_timeout_micros = kMicrosPerSecond;
  options.dead_letter_queue = "dlq";
  ASSERT_OK(queues_->CreateQueue("q", options));
  ASSERT_OK(queues_->Enqueue("q", Req("poison")).status());
  DequeueRequest dq;
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto msg = *queues_->Dequeue("q", dq);
    ASSERT_TRUE(msg.has_value()) << attempt;
    clock_.AdvanceMicros(2 * kMicrosPerSecond);  // Let the lock lapse.
  }
  // Third attempt dead-letters instead of delivering.
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  auto dead = *queues_->Dequeue("dlq", dq);
  ASSERT_TRUE(dead.has_value());
  EXPECT_EQ(dead->payload, "poison");
  bool has_reason = false;
  for (const auto& [name, value] : dead->attributes) {
    if (name == "dlq_reason") {
      has_reason = true;
      EXPECT_EQ(value.string_value(), "max_deliveries");
    }
  }
  EXPECT_TRUE(has_reason);
}

TEST_F(QueueTest, TtlExpiryPurges) {
  ASSERT_OK(queues_->CreateQueue("dlq"));
  QueueCreateOptions options;
  options.dead_letter_queue = "dlq";
  ASSERT_OK(queues_->CreateQueue("q", options));
  EnqueueRequest request = Req("short lived");
  request.ttl_micros = 5 * kMicrosPerSecond;
  ASSERT_OK(queues_->Enqueue("q", request).status());
  clock_.AdvanceMicros(10 * kMicrosPerSecond);
  EXPECT_EQ(*queues_->PurgeExpired("q"), 1u);
  DequeueRequest dq;
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  EXPECT_TRUE(queues_->Dequeue("dlq", dq)->has_value());
}

TEST_F(QueueTest, ExpiredMessageSkippedAtDequeue) {
  ASSERT_OK(queues_->CreateQueue("q"));
  EnqueueRequest dying = Req("dying");
  dying.ttl_micros = kMicrosPerSecond;
  ASSERT_OK(queues_->Enqueue("q", dying).status());
  ASSERT_OK(queues_->Enqueue("q", Req("alive")).status());
  clock_.AdvanceMicros(2 * kMicrosPerSecond);
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "alive");
}

TEST_F(QueueTest, TransactionalEnqueueVisibleAtCommit) {
  ASSERT_OK(queues_->CreateQueue("q"));
  auto txn = db_->BeginTransaction();
  ASSERT_OK(queues_->EnqueueInTransaction(txn.get(), "q", Req("tx")).status());
  DequeueRequest dq;
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  ASSERT_OK(txn->Commit());
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "tx");
}

TEST_F(QueueTest, TransactionalEnqueueRollbackDiscards) {
  ASSERT_OK(queues_->CreateQueue("q"));
  {
    auto txn = db_->BeginTransaction();
    ASSERT_OK(
        queues_->EnqueueInTransaction(txn.get(), "q", Req("never")).status());
    ASSERT_OK(txn->Rollback());
  }
  DequeueRequest dq;
  EXPECT_FALSE(queues_->Dequeue("q", dq)->has_value());
  EXPECT_EQ(*queues_->Depth("q", ""), 0u);
}

TEST_F(QueueTest, MessagesSurviveReattach) {
  ASSERT_OK(queues_->CreateQueue("persist"));
  ASSERT_OK(queues_->Enqueue("persist", Req("durable", 3)).status());
  queues_.reset();
  db_.reset();

  DatabaseOptions options;
  options.dir = dir_.path();
  options.wal_sync_policy = WalSyncPolicy::kNever;
  options.clock = &clock_;
  db_ = *Database::Open(std::move(options));
  queues_ = *QueueManager::Attach(db_.get());
  EXPECT_TRUE(queues_->HasQueue("persist"));
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("persist", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "durable");
  EXPECT_EQ(msg->priority, 3);
}

TEST_F(QueueTest, DepthCountsReadyOnly) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->Enqueue("q", Req("a")).status());
  ASSERT_OK(queues_->Enqueue("q", Req("b")).status());
  EXPECT_EQ(*queues_->Depth("q", ""), 2u);
  DequeueRequest dq;
  ASSERT_TRUE((*queues_->Dequeue("q", dq)).has_value());
  EXPECT_EQ(*queues_->Depth("q", ""), 1u);  // One locked, one ready.
}

TEST_F(QueueTest, DequeueWaitTimesOutEmpty) {
  ASSERT_OK(queues_->CreateQueue("q"));
  DequeueRequest dq;
  auto msg = *queues_->DequeueWait("q", dq, 20 * kMicrosPerMilli);
  EXPECT_FALSE(msg.has_value());
}

TEST_F(QueueTest, DequeueWaitReturnsImmediatelyWhenAvailable) {
  ASSERT_OK(queues_->CreateQueue("q"));
  ASSERT_OK(queues_->Enqueue("q", Req("ready")).status());
  DequeueRequest dq;
  auto msg = *queues_->DequeueWait("q", dq, 10 * kMicrosPerSecond);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "ready");
}

TEST_F(QueueTest, DequeueWaitZeroTimeoutIsASinglePoll) {
  ASSERT_OK(queues_->CreateQueue("q"));
  DequeueRequest dq;
  // Empty queue: must return immediately, not block.
  const auto start = std::chrono::steady_clock::now();
  auto empty = *queues_->DequeueWait("q", dq, 0);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(empty.has_value());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  // Message available: zero timeout still delivers it.
  ASSERT_OK(queues_->Enqueue("q", Req("instant")).status());
  auto msg = *queues_->DequeueWait("q", dq, 0);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "instant");
}

TEST_F(QueueTest, DequeueWaitNegativeTimeoutIsASinglePoll) {
  ASSERT_OK(queues_->CreateQueue("q"));
  DequeueRequest dq;
  // Negative timeouts clamp to the zero-timeout single-poll contract;
  // they must never underflow into a huge unsigned wait.
  const auto start = std::chrono::steady_clock::now();
  auto empty = *queues_->DequeueWait("q", dq, -5 * kMicrosPerSecond);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(empty.has_value());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  ASSERT_OK(queues_->Enqueue("q", Req("instant")).status());
  auto msg = *queues_->DequeueWait("q", dq, -1);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "instant");
}

TEST_F(QueueTest, DequeueWaitUnderContentionDeliversExactlyOnce) {
  ASSERT_OK(queues_->CreateQueue("q"));
  std::atomic<int> winners{0};
  std::atomic<int> timeouts{0};
  auto waiter = [&] {
    DequeueRequest dq;
    auto msg = queues_->DequeueWait("q", dq, 300 * kMicrosPerMilli);
    ASSERT_OK(msg.status());
    if (msg->has_value()) {
      EXPECT_EQ((*msg)->payload, "contested");
      winners.fetch_add(1);
    } else {
      timeouts.fetch_add(1);
    }
  };
  std::thread a(waiter);
  std::thread b(waiter);
  std::thread c(waiter);
  ASSERT_OK(queues_->Enqueue("q", Req("contested")).status());
  a.join();
  b.join();
  c.join();
  // One message, three waiters: exactly one wins, the rest time out
  // rather than double-delivering or hanging.
  EXPECT_EQ(winners.load(), 1);
  EXPECT_EQ(timeouts.load(), 2);
}

TEST_F(QueueTest, ShutdownWakesBlockedWaitersBeforeDestruction) {
  ASSERT_OK(queues_->CreateQueue("q"));
  std::atomic<bool> aborted{false};
  std::thread blocked([&] {
    DequeueRequest dq;
    // Far longer than the test: only Shutdown() can end this wait.
    auto msg = queues_->DequeueWait("q", dq, 60 * kMicrosPerSecond);
    aborted.store(msg.status().IsAborted());
  });
  // Give the waiter a moment to actually block, then pull the plug.
  testing::YieldBriefly(50);
  queues_->Shutdown();
  blocked.join();
  EXPECT_TRUE(aborted.load());

  // After shutdown: waits fail fast...
  DequeueRequest dq;
  EXPECT_TRUE(queues_->DequeueWait("q", dq, 0).status().IsAborted());
  EXPECT_TRUE(
      queues_->DequeueWait("q", dq, kMicrosPerSecond).status().IsAborted());
  // ...but non-blocking operations still work (drain-then-destroy).
  ASSERT_OK(queues_->Enqueue("q", Req("late")).status());
  auto msg = *queues_->Dequeue("q", dq);
  ASSERT_TRUE(msg.has_value());
  // And destruction with no waiters left is safe.
  queues_.reset();
}

}  // namespace
}  // namespace edadb
