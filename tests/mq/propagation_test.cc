#include "mq/propagation.h"

#include "common/failpoint.h"
#include "mq/queue_manager.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace edadb {
namespace {

class PropagationTest : public testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    clock_.SetMicros(kMicrosPerHour);
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
    propagator_ = std::make_unique<Propagator>(queues_.get());
    ASSERT_TRUE(queues_->CreateQueue("source").ok());
    ASSERT_TRUE(queues_->CreateQueue("dest").ok());
  }

  EnqueueRequest Req(const std::string& payload, int64_t severity = 5) {
    EnqueueRequest request;
    request.payload = payload;
    request.attributes = {{"severity", Value::Int64(severity)}};
    return request;
  }

  TempDir dir_;
  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  std::unique_ptr<Propagator> propagator_;
};

TEST_F(PropagationTest, ForwardsBetweenQueues) {
  PropagationRule rule;
  rule.name = "fwd";
  rule.source_queue = "source";
  rule.destination_queue = "dest";
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("m1")).status());
  ASSERT_OK(queues_->Enqueue("source", Req("m2")).status());
  EXPECT_EQ(*propagator_->RunOnce(), 2u);
  DequeueRequest dq;
  EXPECT_EQ((*queues_->Dequeue("dest", dq))->payload, "m1");
  EXPECT_EQ((*queues_->Dequeue("dest", dq))->payload, "m2");
  EXPECT_FALSE(queues_->Dequeue("source", dq)->has_value());
  auto stats = *propagator_->GetStats("fwd");
  EXPECT_EQ(stats.forwarded, 2u);
}

TEST_F(PropagationTest, FilterDropsNonCritical) {
  PropagationRule rule;
  rule.name = "critical_only";
  rule.source_queue = "source";
  rule.destination_queue = "dest";
  rule.filter = *Predicate::Compile("severity >= 7");
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("noise", 2)).status());
  ASSERT_OK(queues_->Enqueue("source", Req("alert", 9)).status());
  EXPECT_EQ(*propagator_->RunOnce(), 1u);
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("dest", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "alert");
  auto stats = *propagator_->GetStats("critical_only");
  EXPECT_EQ(stats.dropped, 1u);
}

TEST_F(PropagationTest, TransformRewritesMessages) {
  PropagationRule rule;
  rule.name = "xform";
  rule.source_queue = "source";
  rule.destination_queue = "dest";
  rule.transform = [](const Message& message) {
    EnqueueRequest out;
    out.payload = "wrapped(" + message.payload + ")";
    out.priority = 9;
    return out;
  };
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("inner")).status());
  EXPECT_EQ(*propagator_->RunOnce(), 1u);
  DequeueRequest dq;
  auto msg = *queues_->Dequeue("dest", dq);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "wrapped(inner)");
  EXPECT_EQ(msg->priority, 9);
}

TEST_F(PropagationTest, DeliversToExternalService) {
  SimulatedExternalService service("gateway", {}, &clock_);
  PropagationRule rule;
  rule.name = "to_gateway";
  rule.source_queue = "source";
  rule.external = &service;
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("hello")).status());
  EXPECT_EQ(*propagator_->RunOnce(), 1u);
  EXPECT_EQ(service.delivered_count(), 1u);
  ASSERT_EQ(service.delivered().size(), 1u);
  EXPECT_EQ(service.delivered()[0].payload, "hello");
}

TEST_F(PropagationTest, ExternalFailureNacksAndRetries) {
  SimulatedExternalService::Options fail_options;
  fail_options.failure_probability = 1.0;
  SimulatedExternalService flaky("flaky", fail_options, &clock_);
  PropagationRule rule;
  rule.name = "to_flaky";
  rule.source_queue = "source";
  rule.external = &flaky;
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("stubborn")).status());
  EXPECT_EQ(*propagator_->RunOnce(), 0u);
  EXPECT_EQ((*propagator_->GetStats("to_flaky")).failed, 1u);
  // Message is redeliverable: still in the source queue after unlock.
  clock_.AdvanceMicros(31 * kMicrosPerSecond);
  EXPECT_EQ(*queues_->Depth("source", ""), 1u);
}

TEST_F(PropagationTest, MultiHopChain) {
  ASSERT_TRUE(queues_->CreateQueue("middle").ok());
  PropagationRule hop1;
  hop1.name = "hop1";
  hop1.source_queue = "source";
  hop1.destination_queue = "middle";
  PropagationRule hop2;
  hop2.name = "hop2";
  hop2.source_queue = "middle";
  hop2.destination_queue = "dest";
  ASSERT_OK(propagator_->AddRule(std::move(hop1)));
  ASSERT_OK(propagator_->AddRule(std::move(hop2)));
  ASSERT_OK(queues_->Enqueue("source", Req("traveler")).status());
  // Rules run alphabetically; one RunOnce can move through both hops.
  ASSERT_OK(propagator_->RunOnce().status());
  ASSERT_OK(propagator_->RunOnce().status());
  DequeueRequest dq;
  EXPECT_TRUE(queues_->Dequeue("dest", dq)->has_value());
}

TEST_F(PropagationTest, RuleValidation) {
  PropagationRule no_dest;
  no_dest.name = "bad";
  no_dest.source_queue = "source";
  EXPECT_TRUE(propagator_->AddRule(no_dest).IsInvalidArgument());

  SimulatedExternalService service("svc", {}, &clock_);
  PropagationRule both;
  both.name = "bad2";
  both.source_queue = "source";
  both.destination_queue = "dest";
  both.external = &service;
  EXPECT_TRUE(propagator_->AddRule(both).IsInvalidArgument());

  PropagationRule missing_source;
  missing_source.name = "bad3";
  missing_source.source_queue = "ghost";
  missing_source.destination_queue = "dest";
  EXPECT_TRUE(propagator_->AddRule(missing_source).IsNotFound());

  EXPECT_TRUE(propagator_->RemoveRule("ghost").IsNotFound());
}

TEST_F(PropagationTest, DedicatedConsumerGroupLeavesDefaultAlone) {
  // Propagation through its own group: a direct consumer of the default
  // group still sees the message... (source has explicit groups now, so
  // default "" is replaced; use another explicit group).
  ASSERT_OK(queues_->AddConsumerGroup("source", "app"));
  PropagationRule rule;
  rule.name = "fwd";
  rule.source_queue = "source";
  rule.source_group = "mirror";
  rule.destination_queue = "dest";
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("both")).status());
  EXPECT_EQ(*propagator_->RunOnce(), 1u);
  // The "app" group still has its copy.
  DequeueRequest app;
  app.group = "app";
  EXPECT_TRUE(queues_->Dequeue("source", app)->has_value());
}

TEST_F(PropagationTest, InjectedExternalFaultNacksWithoutTouchingService) {
  SimulatedExternalService service("gateway", {}, &clock_);
  PropagationRule rule;
  rule.name = "to_gateway";
  rule.source_queue = "source";
  rule.external = &service;
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("fragile")).status());

  // "mq.propagate.deliver" models the external endpoint dying (network
  // error / timeout) before the request reaches it.
  failpoint::Action fault;
  fault.max_fires = 1;
  failpoint::Arm("mq.propagate.deliver", fault);
  EXPECT_EQ(*propagator_->RunOnce(), 0u);
  failpoint::DisarmAll();

  // The failure never reached the simulated service, and the message
  // was nacked, not lost.
  EXPECT_EQ(service.delivered_count(), 0u);
  EXPECT_EQ((*propagator_->GetStats("to_gateway")).failed, 1u);

  // After the fault clears and the lock expires, delivery succeeds.
  clock_.AdvanceMicros(31 * kMicrosPerSecond);
  EXPECT_EQ(*propagator_->RunOnce(), 1u);
  ASSERT_EQ(service.delivered().size(), 1u);
  EXPECT_EQ(service.delivered()[0].payload, "fragile");
}

TEST_F(PropagationTest, InjectedExternalTimeoutUsesTimedOutStatus) {
  SimulatedExternalService service("gateway", {}, &clock_);
  PropagationRule rule;
  rule.name = "to_gateway";
  rule.source_queue = "source";
  rule.external = &service;
  ASSERT_OK(propagator_->AddRule(std::move(rule)));
  ASSERT_OK(queues_->Enqueue("source", Req("slow")).status());

  // An OK status in the armed action selects the injected-timeout
  // flavor (the site substitutes TimedOut for "no response").
  failpoint::Action fault;
  fault.status = Status::OK();
  fault.max_fires = 1;
  failpoint::Arm("mq.propagate.deliver", fault);
  EXPECT_EQ(*propagator_->RunOnce(), 0u);
  failpoint::DisarmAll();
  EXPECT_EQ(service.delivered_count(), 0u);
  EXPECT_EQ((*propagator_->GetStats("to_gateway")).failed, 1u);
}

}  // namespace
}  // namespace edadb
