// Crash-window regressions for the queue persistence path, driven by
// failpoints. The headline bug: FinishDelivery deletes the delivery row
// and the message row in two separate auto-commit transactions, so a
// crash between them used to strand a fully-acked message body on disk
// forever. Reattach now garbage-collects such orphans.

#include <memory>
#include <string>
#include <utility>

#include "common/clock.h"
#include "common/failpoint.h"
#include "db/database.h"
#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "test_util.h"
#include "testing/crash_harness.h"

namespace fp = edadb::failpoint;
using edadb::Database;
using edadb::DatabaseOptions;
using edadb::DequeueRequest;
using edadb::EnqueueRequest;
using edadb::kMicrosPerHour;
using edadb::kMicrosPerSecond;
using edadb::QueueManager;
using edadb::SimulatedClock;
using edadb::TempDir;
using edadb::WalSyncPolicy;
using edadb::testing::ArmCrash;
using edadb::testing::FailpointGuard;
using edadb::testing::SimulatedCrash;

namespace {

class QueueCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Reopen();
    ASSERT_OK(queues_->CreateQueue("q"));
  }

  void Reopen() {
    queues_.reset();
    db_.reset();
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    auto db = Database::Open(std::move(options));
    ASSERT_OK(db.status());
    db_ = *std::move(db);
    auto queues = QueueManager::Attach(db_.get());
    ASSERT_OK(queues.status());
    queues_ = *std::move(queues);
  }

  EnqueueRequest Req(const std::string& payload) {
    EnqueueRequest request;
    request.payload = payload;
    return request;
  }

  /// Runs `op`, expecting the armed failpoint to kill it; disarms and
  /// "restarts the process".
  template <typename Op>
  void CrashDuring(Op op) {
    bool crashed = false;
    try {
      op();
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << "armed failpoint never fired";
    fp::DisarmAll();
    Reopen();
  }

  size_t MsgRows() { return *db_->CountRows("__q_q_msgs"); }
  size_t DlvRows() { return *db_->CountRows("__q_q_dlv"); }

  FailpointGuard guard_;
  TempDir dir_;
  SimulatedClock clock_{kMicrosPerHour};
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
  DequeueRequest dq_;
};

TEST_F(QueueCrashTest, AckCrashBetweenDeletesIsRepairedOnReattach) {
  ASSERT_OK(queues_->Enqueue("q", Req("acked")).status());
  auto msg = *queues_->Dequeue("q", dq_);
  ASSERT_TRUE(msg.has_value());

  ArmCrash("mq.finish.after_dlv_delete");
  CrashDuring([&] {
    EDADB_IGNORE_STATUS(queues_->Ack("q", "", msg->id),
                        "the armed crash fires before Ack returns");
  });

  // The delivery row died before the crash; reattach must have GC'd the
  // orphaned message body rather than leaking it forever.
  EXPECT_EQ(0u, DlvRows());
  EXPECT_EQ(0u, MsgRows()) << "orphaned message row leaked";
  EXPECT_EQ(0u, *queues_->Depth("q", ""));

  // And the acked message is never redelivered, even after timeouts.
  clock_.AdvanceMicros(120 * kMicrosPerSecond);
  EXPECT_FALSE(queues_->Dequeue("q", dq_)->has_value());
}

TEST_F(QueueCrashTest, DequeueCrashBeforeLockPersistRedeliversFresh) {
  ASSERT_OK(queues_->Enqueue("q", Req("unlucky")).status());
  ArmCrash("mq.dequeue.before_lock_persist");
  CrashDuring([&] {
    EDADB_IGNORE_STATUS(queues_->Dequeue("q", dq_),
                        "the armed crash fires before Dequeue returns");
  });

  // The lock was never persisted, so recovery sees a ready message and
  // the aborted delivery attempt does not count.
  auto msg = *queues_->Dequeue("q", dq_);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->payload, "unlucky");
  EXPECT_EQ(msg->delivery_count, 1);
}

TEST_F(QueueCrashTest, EnqueueCrashBeforeCommitLeavesNoGhost) {
  ArmCrash("mq.enqueue.before_commit");
  CrashDuring([&] {
    EDADB_IGNORE_STATUS(queues_->Enqueue("q", Req("ghost")),
                        "the armed crash fires before Enqueue returns");
  });

  EXPECT_EQ(0u, MsgRows());
  EXPECT_EQ(0u, DlvRows());
  EXPECT_EQ(0u, *queues_->Depth("q", ""));
  EXPECT_FALSE(queues_->Dequeue("q", dq_)->has_value());
}

TEST_F(QueueCrashTest, NackCrashBeforePersistKeepsMessageDeliverable) {
  ASSERT_OK(queues_->Enqueue("q", Req("retry me")).status());
  auto msg = *queues_->Dequeue("q", dq_);
  ASSERT_TRUE(msg.has_value());

  ArmCrash("mq.nack.before_persist");
  CrashDuring([&] {
    EDADB_IGNORE_STATUS(queues_->Nack("q", "", msg->id),
                        "the armed crash fires before Nack returns");
  });

  // The nack never landed: the dequeue lock still holds...
  EXPECT_FALSE(queues_->Dequeue("q", dq_)->has_value());
  // ...until the visibility timeout redelivers, at-least-once intact.
  clock_.AdvanceMicros(31 * kMicrosPerSecond);
  auto redelivered = *queues_->Dequeue("q", dq_);
  ASSERT_TRUE(redelivered.has_value());
  EXPECT_EQ(redelivered->payload, "retry me");
  EXPECT_EQ(redelivered->delivery_count, 2);
}

}  // namespace
