#include "mq/shard_router.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "storage/file.h"
#include "test_util.h"
#include "testing/sleep.h"

namespace edadb {
namespace {

class ShardRouterTest : public ::testing::Test {
 protected:
  void OpenRouter(size_t shards) {
    router_.reset();
    db_.reset();
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    db_ = *Database::Open(std::move(options));
    router_ = *ShardRouter::Open(db_.get(), shards);
  }

  /// A queue name that hashes to `shard` under the current router.
  std::string NameOnShard(size_t shard, const std::string& stem = "q") {
    for (int i = 0; i < 4096; ++i) {
      const std::string name = stem + std::to_string(i);
      if (router_->HashShard(name) == shard) return name;
    }
    ADD_FAILURE() << "no name hashing to shard " << shard;
    return "";
  }

  EnqueueRequest Req(const std::string& payload) {
    EnqueueRequest request;
    request.payload = payload;
    return request;
  }

  TempDir dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ShardRouter> router_;
};

TEST_F(ShardRouterTest, RoutingIsDeterministicAndSpreads) {
  OpenRouter(4);
  std::set<size_t> used;
  for (int i = 0; i < 32; ++i) {
    const std::string name = "queue" + std::to_string(i);
    const size_t before = router_->ShardOf(name);
    ASSERT_OK(router_->CreateQueue(name));
    EXPECT_EQ(router_->ShardOf(name), before) << name;
    EXPECT_EQ(router_->ShardOf(name), router_->HashShard(name)) << name;
    used.insert(router_->ShardOf(name));
  }
  // CRC32c over 32 names lands on more than one of 4 shards.
  EXPECT_GE(used.size(), 2u);
  EXPECT_EQ(router_->ListQueues().size(), 32u);
}

TEST_F(ShardRouterTest, TaggedIdsRoundTripThroughAckAndPeek) {
  OpenRouter(4);
  const std::string queue = NameOnShard(2);
  ASSERT_OK(router_->CreateQueue(queue));
  const MessageId id = *router_->Enqueue(queue, Req("hello"));
  // The id names its shard in the top bits.
  EXPECT_EQ(id >> ShardRouter::kShardTagShift, 3u);  // shard + 1
  EXPECT_EQ(*router_->Depth(queue, ""), 1u);

  // Peek accepts the tagged id and returns it tagged.
  Message peeked = *router_->Peek(queue, id);
  EXPECT_EQ(peeked.id, id);
  EXPECT_EQ(peeked.payload, "hello");
  // ...and also accepts the raw shard-local id (dispatcher handlers).
  const MessageId raw =
      id & ((MessageId{1} << ShardRouter::kShardTagShift) - 1);
  EXPECT_EQ((*router_->Peek(queue, raw)).id, id);

  // An id tagged for another shard is rejected, not misapplied.
  const MessageId foreign =
      (MessageId{1} << ShardRouter::kShardTagShift) | raw;
  EXPECT_TRUE(router_->Ack(queue, "", foreign).IsInvalidArgument());

  DequeueRequest dq;
  std::optional<Message> got = *router_->Dequeue(queue, dq);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->id, id);
  ASSERT_OK(router_->Ack(queue, "", got->id));
  EXPECT_EQ(*router_->Depth(queue, ""), 0u);
}

TEST_F(ShardRouterTest, SingleShardIsTransparentPassthrough) {
  OpenRouter(1);
  ASSERT_OK(router_->CreateQueue("only"));
  // Ids are the shard-local row ids, untagged: same dense sequence an
  // unsharded QueueManager hands out.
  EXPECT_EQ(*router_->Enqueue("only", Req("a")), 1u);
  EXPECT_EQ(*router_->Enqueue("only", Req("b")), 2u);
  // No secondary shard directories, no per-shard WAL tree.
  EXPECT_FALSE(FileExists(dir_.path() + "/shard-1"));
  EXPECT_FALSE(FileExists(dir_.path() + "/wal/shard-1"));
  EXPECT_EQ(router_->num_shards(), 1u);
}

TEST_F(ShardRouterTest, PlacementSurvivesReattachEvenWithChangedShardCount) {
  OpenRouter(4);
  std::vector<std::pair<std::string, size_t>> placed;
  for (size_t shard = 0; shard < 4; ++shard) {
    const std::string name = NameOnShard(shard, "s" + std::to_string(shard));
    ASSERT_OK(router_->CreateQueue(name));
    ASSERT_OK(router_->Enqueue(name, Req("pinned")).status());
    placed.emplace_back(name, shard);
  }
  router_->Shutdown();

  // Reopen asking for FEWER shards: every queue keeps its shard (the
  // on-disk shard set wins over the requested count) and its messages.
  OpenRouter(2);
  EXPECT_EQ(router_->num_shards(), 4u);
  for (const auto& [name, shard] : placed) {
    EXPECT_TRUE(router_->HasQueue(name)) << name;
    EXPECT_EQ(router_->ShardOf(name), shard) << name;
    EXPECT_EQ(*router_->Depth(name, ""), 1u) << name;
  }
  router_->Shutdown();

  // Reopen asking for MORE shards: existing placement still sticks.
  OpenRouter(8);
  EXPECT_EQ(router_->num_shards(), 8u);
  for (const auto& [name, shard] : placed) {
    EXPECT_EQ(router_->ShardOf(name), shard) << name;
  }
}

TEST_F(ShardRouterTest, EnqueueDedupConsumesKeyExactlyOnce) {
  OpenRouter(4);
  const std::string queue = NameOnShard(1);
  ASSERT_OK(router_->CreateQueue(queue));
  auto first = *router_->EnqueueDedup(queue, Req("once"), "rule\x01""42");
  ASSERT_TRUE(first.has_value());
  // Retrying the same key (the crashed-sender path) delivers nothing.
  auto second = *router_->EnqueueDedup(queue, Req("once"), "rule\x01""42");
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(*router_->Depth(queue, ""), 1u);
  // A different key is an independent delivery.
  auto third = *router_->EnqueueDedup(queue, Req("other"), "rule\x01""43");
  EXPECT_TRUE(third.has_value());
  EXPECT_EQ(*router_->Depth(queue, ""), 2u);
}

TEST_F(ShardRouterTest, QueueIsCoLocatedWithItsDeadLetterQueue) {
  OpenRouter(4);
  ASSERT_OK(router_->CreateQueue("graveyard"));
  const size_t dlq_shard = router_->ShardOf("graveyard");
  // Pick a work queue that would NOT hash to the dead-letter shard, so
  // co-location is observable.
  std::string work;
  for (int i = 0; i < 4096 && work.empty(); ++i) {
    const std::string name = "work" + std::to_string(i);
    if (router_->HashShard(name) != dlq_shard) work = name;
  }
  ASSERT_FALSE(work.empty());
  QueueCreateOptions options;
  options.max_deliveries = 1;
  options.dead_letter_queue = "graveyard";
  ASSERT_OK(router_->CreateQueue(work, options));
  EXPECT_EQ(router_->ShardOf(work), dlq_shard);

  // Dead-lettering actually lands in the co-located queue.
  ASSERT_OK(router_->Enqueue(work, Req("poison")).status());
  DequeueRequest dq;
  std::optional<Message> msg = *router_->Dequeue(work, dq);
  ASSERT_TRUE(msg.has_value());
  ASSERT_OK(router_->Nack(work, "", msg->id));
  EXPECT_EQ(*router_->Depth("graveyard", ""), 1u);
}

TEST_F(ShardRouterTest, BrowseReportsRouterTaggedIds) {
  OpenRouter(4);
  const std::string queue = NameOnShard(3);
  ASSERT_OK(router_->CreateQueue(queue));
  std::vector<MessageId> enqueued;
  for (int i = 0; i < 3; ++i) {
    enqueued.push_back(*router_->Enqueue(queue, Req("m" + std::to_string(i))));
  }
  std::vector<MessageId> browsed;
  ASSERT_OK(router_->Browse(queue, "", [&](const Message& message) {
    browsed.push_back(message.id);
    return true;
  }));
  EXPECT_EQ(browsed, enqueued);
}

TEST_F(ShardRouterTest, BatchEnqueueTagsEveryId) {
  OpenRouter(4);
  const std::string queue = NameOnShard(0);
  ASSERT_OK(router_->CreateQueue(queue));
  std::vector<EnqueueRequest> batch = {Req("a"), Req("b"), Req("c")};
  std::vector<MessageId> ids = *router_->EnqueueBatch(queue, batch);
  ASSERT_EQ(ids.size(), 3u);
  for (const MessageId id : ids) {
    EXPECT_EQ(id >> ShardRouter::kShardTagShift, 1u);  // shard 0 + 1
  }
  DequeueRequest dq;
  std::vector<Message> out = *router_->DequeueBatch(queue, dq, 8);
  ASSERT_EQ(out.size(), 3u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, ids[i]);
    ASSERT_OK(router_->Ack(queue, "", out[i].id));
  }
}

TEST_F(ShardRouterTest, ShardsHaveIndependentWalStreams) {
  OpenRouter(4);
  // One queue per shard, a message on each: every secondary shard's
  // WAL stream exists and is non-trivial, and they are distinct trees.
  for (size_t shard = 1; shard < 4; ++shard) {
    const std::string name = NameOnShard(shard, "w" + std::to_string(shard));
    ASSERT_OK(router_->CreateQueue(name));
    ASSERT_OK(router_->Enqueue(name, Req("walled")).status());
    EXPECT_TRUE(FileExists(dir_.path() + "/wal/shard-" +
                           std::to_string(shard)))
        << shard;
    const auto segments =
        ListDir(dir_.path() + "/wal/shard-" + std::to_string(shard));
    ASSERT_OK(segments.status());
    EXPECT_FALSE(segments->empty()) << shard;
  }
}

TEST_F(ShardRouterTest, DispatcherWakeupsAreShardLocal) {
  OpenRouter(4);
  const std::string busy = NameOnShard(1, "busy");
  const std::string idle = NameOnShard(2, "idle");
  ASSERT_OK(router_->CreateQueue(busy));
  ASSERT_OK(router_->CreateQueue(idle));

  ShardedDispatcher dispatcher(router_.get());
  QueueDispatcher::Binding busy_binding;
  busy_binding.queue = busy;
  busy_binding.handler = [](const Message&) { return Status::OK(); };
  ASSERT_OK(dispatcher.Bind(std::move(busy_binding)));
  QueueDispatcher::Binding idle_binding;
  idle_binding.queue = idle;
  idle_binding.handler = [](const Message&) { return Status::OK(); };
  ASSERT_OK(dispatcher.Bind(std::move(idle_binding)));

  // Long idle fallback: workers only move on real activity signals.
  ASSERT_OK(dispatcher.Start(/*idle_wait_micros=*/30 * kMicrosPerSecond));
  // Let every worker finish its first (empty) pump and park.
  testing::SleepForMillis(50);
  std::vector<uint64_t> parked_wakeups;
  for (size_t i = 0; i < dispatcher.num_shards(); ++i) {
    parked_wakeups.push_back(dispatcher.shard(i)->wakeups());
  }

  ASSERT_OK(router_->Enqueue(busy, Req("wake shard 1 only")).status());
  // Wait for the busy shard's worker to handle the message.
  for (int i = 0; i < 1000; ++i) {
    const auto stats = dispatcher.GetStats(busy, "");
    if (stats.ok() && stats->handled >= 1) break;
    testing::SleepForMillis(5);
  }
  EXPECT_EQ((*dispatcher.GetStats(busy, "")).handled, 1u);

  // The owning shard woke; every other shard's counter stayed flat.
  const size_t owner = router_->ShardOf(busy);
  EXPECT_GT(dispatcher.shard(owner)->wakeups(), parked_wakeups[owner]);
  for (size_t i = 0; i < dispatcher.num_shards(); ++i) {
    if (i == owner) continue;
    EXPECT_EQ(dispatcher.shard(i)->wakeups(), parked_wakeups[i])
        << "shard " << i << " was woken by another shard's enqueue";
  }
  dispatcher.Stop();
}

}  // namespace
}  // namespace edadb
