// Parameterized delivery-invariant sweep: for every combination of
// consumer-group count, priority usage and delay usage, a drained queue
// must deliver every message exactly once per group, in priority order
// within availability, and end fully garbage-collected.

#include <set>
#include <tuple>

#include "common/random.h"
#include "gtest/gtest.h"
#include "mq/queue_manager.h"
#include "test_util.h"

namespace edadb {
namespace {

// (num_groups [0 = implicit default], use_priorities, use_delays)
using QueueCase = std::tuple<int, bool, bool>;

std::string CaseName(const testing::TestParamInfo<QueueCase>& info) {
  const auto& [groups, priorities, delays] = info.param;
  return "Groups" + std::to_string(groups) +
         (priorities ? "_Prio" : "_NoPrio") +
         (delays ? "_Delays" : "_NoDelays");
}

class QueueParamTest : public testing::TestWithParam<QueueCase> {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.dir = dir_.path();
    options.wal_sync_policy = WalSyncPolicy::kNever;
    options.clock = &clock_;
    clock_.SetMicros(kMicrosPerHour);
    db_ = *Database::Open(std::move(options));
    queues_ = *QueueManager::Attach(db_.get());
  }

  TempDir dir_;
  SimulatedClock clock_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<QueueManager> queues_;
};

TEST_P(QueueParamTest, ExactlyOncePerGroupAndFullyDrained) {
  const auto& [num_groups, use_priorities, use_delays] = GetParam();
  ASSERT_OK(queues_->CreateQueue("q"));
  std::vector<std::string> groups;
  if (num_groups == 0) {
    groups.push_back("");
  } else {
    for (int g = 0; g < num_groups; ++g) {
      groups.push_back("g" + std::to_string(g));
      ASSERT_OK(queues_->AddConsumerGroup("q", groups.back()));
    }
  }

  constexpr int kMessages = 60;
  Random rng(7);
  std::set<std::string> payloads;
  for (int i = 0; i < kMessages; ++i) {
    EnqueueRequest request;
    request.payload = "m" + std::to_string(i);
    payloads.insert(request.payload);
    if (use_priorities) request.priority = rng.UniformInt(0, 4);
    if (use_delays && rng.OneIn(3)) {
      request.delay_micros =
          static_cast<TimestampMicros>(rng.Uniform(5)) * kMicrosPerSecond;
    }
    ASSERT_OK(queues_->Enqueue("q", request).status());
  }
  // Let every delay mature.
  clock_.AdvanceMicros(10 * kMicrosPerSecond);

  for (const std::string& group : groups) {
    std::set<std::string> received;
    int64_t last_priority = INT64_MAX;
    DequeueRequest dq;
    dq.group = group;
    for (;;) {
      auto message = queues_->Dequeue("q", dq);
      ASSERT_TRUE(message.ok()) << message.status();
      if (!message->has_value()) break;
      // Exactly-once per group.
      ASSERT_TRUE(received.insert((*message)->payload).second)
          << "duplicate " << (*message)->payload << " for group '"
          << group << "'";
      // Priority order holds once everything is visible.
      ASSERT_LE((*message)->priority, last_priority);
      last_priority = (*message)->priority;
      ASSERT_OK(queues_->Ack("q", group, (*message)->id));
    }
    EXPECT_EQ(received, payloads) << "group '" << group << "'";
  }

  // Every group acked everything: full garbage collection.
  const Table* msgs = *db_->GetTable("__q_q_msgs");
  const Table* dlv = *db_->GetTable("__q_q_dlv");
  EXPECT_EQ(msgs->num_rows(), 0u);
  EXPECT_EQ(dlv->num_rows(), 0u);
  for (const std::string& group : groups) {
    EXPECT_EQ(*queues_->Depth("q", group), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DeliveryMatrix, QueueParamTest,
    testing::Combine(testing::Values(0, 1, 3, 8),
                     testing::Bool(),   // Priorities.
                     testing::Bool()),  // Delays.
    CaseName);

}  // namespace
}  // namespace edadb
