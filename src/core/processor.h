#ifndef EDADB_CORE_PROCESSOR_H_
#define EDADB_CORE_PROCESSOR_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/audit.h"
#include "core/metrics_table.h"
#include "core/event.h"
#include "core/event_bus.h"
#include "core/sources.h"
#include "core/responder.h"
#include "core/virt.h"
#include "db/database.h"
#include "mq/propagation.h"
#include "mq/shard_router.h"
#include "pubsub/broker.h"
#include "rules/rules_engine.h"

namespace edadb {

struct EventProcessorOptions {
  std::string data_dir;
  WalSyncPolicy wal_sync_policy = WalSyncPolicy::kOnCommit;
  RulesEngine::MatcherKind matcher_kind = RulesEngine::MatcherKind::kIndexed;
  Clock* clock = nullptr;
  /// Record routing decisions in the __audit table ("operational
  /// characteristics: security, auditing, tracking"). One extra insert
  /// per routed event; off by default.
  bool audit_routing = false;
  /// How often PumpOnce() mirrors the metrics registry into the
  /// `__metrics` table (steady-clock throttled). 0 = every pump (tests);
  /// negative = never.
  TimestampMicros metrics_refresh_interval_micros = kMicrosPerSecond;
  /// Number of delivery-core shards: each shard owns its own WAL
  /// stream, commit pipeline, queue lock domain and dispatcher pool,
  /// with queue names hash-routed across them. 0 (the default) = one
  /// shard per hardware thread; 1 = the classic single-domain layout
  /// (same on-disk format and ids as before sharding existed).
  int shards = 0;
};

/// The assembled event-driven application stack: one database under a
/// queue manager, rules engine, pub/sub broker, propagator, VIRT filter
/// and responder registry — the tutorial's claim that "commercial
/// databases with their complementary enterprise software stacks provide
/// all, or almost all, the components required for event-driven
/// applications", in one object.
///
/// Standard wiring: Ingest() publishes an event on the bus; the rules
/// engine evaluates every bus event; matched rules route by action tag:
///   "queue:<name>"  — stage the event on a queue
///   "topic:<name>"  — publish on the broker under that topic
///   "respond:<role>[:<capability>]" — dispatch via the responder
///                     registry
///   anything else   — dispatched to handlers registered on rules()
/// Consumers then drain queues / subscriptions, optionally behind
/// virt() gating.
class EventProcessor {
 public:
  EDADB_NODISCARD static Result<std::unique_ptr<EventProcessor>> Open(
      EventProcessorOptions options);

  ~EventProcessor();

  EventProcessor(const EventProcessor&) = delete;
  EventProcessor& operator=(const EventProcessor&) = delete;

  /// Normalizes (id/timestamp) and runs the event through the pipeline.
  /// Thin wrapper over a one-event IngestBatch (single code path).
  EDADB_NODISCARD Status Ingest(Event event);

  /// Batch ingest: normalizes every event, publishes the whole batch on
  /// the bus with one subscriber snapshot, evaluates all events against
  /// the rule set in one matcher pass, then routes matched actions per
  /// event in order. Routing side effects (queue enqueues, topic
  /// publishes) keep per-event transactions — a poisoned event fails
  /// alone — but concurrent batches share WAL fdatasyncs via group
  /// commit. Within a batch, every bus delivery happens before any rule
  /// routing (per-channel order is unchanged from the per-event loop).
  EDADB_NODISCARD Status IngestBatch(std::vector<Event> events);

  /// One scheduler tick: polls attached journal/query capture sources,
  /// pumps queue propagation and dispatcher bindings once. Returns
  /// events captured + messages moved + handled. Call from the
  /// application's periodic loop (or use dispatcher()->Start() for a
  /// background thread).
  EDADB_NODISCARD Result<size_t> PumpOnce();

  // -------------------------------------------------------------------
  // Capture attachment (§2.2.a): adapters owned by the processor whose
  // events feed Ingest().

  /// Synchronous capture: committed changes of `table` become events of
  /// `event_type` immediately.
  EDADB_NODISCARD Status AttachTriggerCapture(const std::string& table,
                              const std::string& event_type);

  /// Asynchronous capture via the journal; drained by PumpOnce().
  EDADB_NODISCARD Status AttachJournalCapture(const std::string& table,
                              const std::string& event_type);

  /// Result-set-diff capture; re-evaluated by PumpOnce().
  EDADB_NODISCARD Status AttachQueryCapture(Query query,
                            std::vector<std::string> key_columns,
                            const std::string& event_type);

  Database* db() { return db_.get(); }
  ShardRouter* queues() { return queues_.get(); }
  RulesEngine* rules() { return rules_.get(); }
  Broker* broker() { return broker_.get(); }
  Propagator* propagator() { return propagator_.get(); }
  EventBus* bus() { return &bus_; }
  VirtFilter* virt() { return virt_.get(); }
  ResponderRegistry* responders() { return responders_.get(); }
  AuditLog* audit() { return audit_.get(); }
  ShardedDispatcher* dispatcher() { return dispatcher_.get(); }
  MetricsTable* metrics_table() { return metrics_table_.get(); }
  Clock* clock() { return clock_; }

  struct Stats {  // lint:allow(adhoc-stats): per-instance counts, also exported as core.* metrics
    uint64_t ingested = 0;
    uint64_t rules_matched = 0;
    uint64_t routed_to_queues = 0;
    uint64_t routed_to_topics = 0;
    uint64_t dispatched_to_responders = 0;
    /// Events delivered by a capture source (trigger/journal/query)
    /// whose Ingest() failed, e.g. a rule condition errored. The event
    /// is lost to routing; the failure is logged and counted here so
    /// it is observable instead of silently dropped.
    uint64_t ingest_failures = 0;
  };
  Stats GetStats() const;

 private:
  explicit EventProcessor(EventProcessorOptions options);

  EDADB_NODISCARD Status Wire();
  void RouteAction(const Rule& rule, const Event& event);
  /// Capture-source callback: Ingest() with failures logged + counted
  /// (sources deliver on a void callback, so there is no caller to
  /// propagate to).
  void IngestFromSource(const Event& event);

  EventProcessorOptions options_;
  Clock* clock_ = nullptr;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ShardRouter> queues_;
  std::unique_ptr<RulesEngine> rules_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Propagator> propagator_;
  std::unique_ptr<VirtFilter> virt_;
  std::unique_ptr<ResponderRegistry> responders_;
  std::unique_ptr<AuditLog> audit_;
  std::unique_ptr<MetricsTable> metrics_table_;
  std::unique_ptr<ShardedDispatcher> dispatcher_;
  EventBus bus_;
  std::vector<std::unique_ptr<TriggerEventSource>> trigger_sources_;
  std::vector<std::unique_ptr<JournalEventSource>> journal_sources_;
  std::vector<std::unique_ptr<QueryEventSource>> query_sources_;

  /// Instance-owned counters (GetStats stays per-processor); the
  /// collector below also exports them process-wide as core.*.
  metrics::Counter ingested_;
  metrics::Counter rules_matched_;
  metrics::Counter routed_to_queues_;
  metrics::Counter routed_to_topics_;
  metrics::Counter dispatched_to_responders_;
  metrics::Counter ingest_failures_;

  /// Throttles __metrics refreshes inside PumpOnce (steady domain).
  std::atomic<TimestampMicros> last_metrics_refresh_steady_{0};

  /// LAST member: destroyed first, so an in-flight collector reading
  /// the counters above finishes before they are torn down.
  metrics::CallbackHandle metrics_collector_;
};

}  // namespace edadb

#endif  // EDADB_CORE_PROCESSOR_H_
