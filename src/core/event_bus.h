#ifndef EDADB_CORE_EVENT_BUS_H_
#define EDADB_CORE_EVENT_BUS_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/event.h"
#include "expr/predicate.h"

namespace edadb {

/// In-process fanout glue between capture adapters and evaluators.
/// (Cross-process distribution goes through mq/pubsub; this bus is the
/// cheap intra-application wire.) Thread-safe; handlers run on the
/// publishing thread.
class EventBus {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Returns a subscription handle. `filter` (optional expression over
  /// EventView attributes) drops non-matching events before the handler.
  EDADB_NODISCARD Result<uint64_t> Subscribe(Handler handler,
                             std::optional<std::string> filter_source =
                                 std::nullopt);

  EDADB_NODISCARD Status Unsubscribe(uint64_t handle);

  /// Delivers to every matching subscriber; returns how many saw it.
  /// Thin wrapper over a one-event PublishBatch (single code path).
  size_t Publish(const Event& event);

  /// Delivers each event (in order) to every matching subscriber with
  /// ONE subscriber snapshot — one lock round-trip — for the whole
  /// batch. Returns total (event, subscriber) deliveries. Subscribers
  /// added or removed by a handler mid-batch take effect on the next
  /// publish, not on the remaining events of this batch.
  size_t PublishBatch(const std::vector<Event>& events);

  size_t num_subscribers() const;

  uint64_t published_count() const { return published_; }

 private:
  struct Sub {
    Handler handler;
    std::optional<Predicate> filter;
  };

  /// Shared implementation behind Publish/PublishBatch (pointer + count
  /// so the single-event wrapper needs no copy; C++17 has no std::span).
  size_t PublishSpan(const Event* events, size_t count);

  mutable Mutex mu_{"EventBus::mu_"};
  /// shared_ptr so publishers can snapshot subscriptions by reference:
  /// mu_ is held only to copy N pointers, never while evaluating
  /// filters or running handlers (which may re-enter the bus).
  std::map<uint64_t, std::shared_ptr<const Sub>> subs_ EDADB_GUARDED_BY(mu_);
  uint64_t next_handle_ EDADB_GUARDED_BY(mu_) = 1;
  std::atomic<uint64_t> published_{0};
};

}  // namespace edadb

#endif  // EDADB_CORE_EVENT_BUS_H_
