#include "core/monitor.h"

namespace edadb {

ExpectationMonitor::ExpectationMonitor(
    ModelFactory factory, DeviationDetector::Options detector_options,
    AlertCallback on_alert)
    : factory_(std::move(factory)),
      detector_options_(detector_options),
      on_alert_(std::move(on_alert)) {}

Result<DetectionResult> ExpectationMonitor::Process(
    const std::string& entity, TimestampMicros ts, double value) {
  DetectionResult result;
  {
    MutexLock lock(&mu_);
    auto it = detectors_.find(entity);
    if (it == detectors_.end()) {
      std::unique_ptr<Forecaster> model = factory_();
      if (model == nullptr) {
        return Status::Internal("model factory returned null");
      }
      it = detectors_
               .emplace(entity, std::make_unique<DeviationDetector>(
                                    std::move(model), detector_options_))
               .first;
    }
    result = it->second->Process(ts, value);
    if (result.is_anomaly) ++alerts_;
  }
  if (result.is_anomaly && on_alert_ != nullptr) {
    on_alert_(entity, ts, value, result);
  }
  return result;
}

Status ExpectationMonitor::ResetEntity(const std::string& entity) {
  MutexLock lock(&mu_);
  if (detectors_.erase(entity) == 0) {
    return Status::NotFound("entity '" + entity + "'");
  }
  return Status::OK();
}

size_t ExpectationMonitor::num_entities() const {
  MutexLock lock(&mu_);
  return detectors_.size();
}

uint64_t ExpectationMonitor::alerts_raised() const {
  MutexLock lock(&mu_);
  return alerts_;
}

}  // namespace edadb
