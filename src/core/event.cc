#include "core/event.h"

#include "common/string_util.h"

namespace edadb {

std::optional<Value> Event::Get(std::string_view name) const {
  for (const auto& [attr_name, value] : attributes) {
    if (attr_name == name) return value;
  }
  return std::nullopt;
}

void Event::Set(std::string_view name, Value value) {
  for (auto& [attr_name, existing] : attributes) {
    if (attr_name == name) {
      existing = std::move(value);
      return;
    }
  }
  attributes.emplace_back(std::string(name), std::move(value));
}

std::string Event::ToString() const {
  std::string out = StringPrintf("Event{#%llu %s from %s @%s",
                                 static_cast<unsigned long long>(id),
                                 type.c_str(), source.c_str(),
                                 FormatTimestamp(timestamp).c_str());
  for (const auto& [name, value] : attributes) {
    out += " " + name + "=" + value.ToString();
  }
  if (!payload.empty()) out += " payload='" + payload + "'";
  out += "}";
  return out;
}

uint64_t NextEventId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace edadb
