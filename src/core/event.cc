#include "core/event.h"

#include <atomic>

#include "common/string_util.h"

namespace edadb {

std::optional<Value> Event::Get(std::string_view name) const {
  for (const auto& [attr_name, value] : attributes) {
    if (attr_name == name) return value;
  }
  return std::nullopt;
}

void Event::Set(std::string_view name, Value value) {
  for (auto& [attr_name, existing] : attributes) {
    if (attr_name == name) {
      existing = std::move(value);
      return;
    }
  }
  attributes.emplace_back(std::string(name), std::move(value));
}

std::string Event::ToString() const {
  std::string out = StringPrintf("Event{#%llu %s from %s @%s",
                                 static_cast<unsigned long long>(id),
                                 type.c_str(), source.c_str(),
                                 FormatTimestamp(timestamp).c_str());
  for (const auto& [name, value] : attributes) {
    out += " " + name + "=" + value.ToString();
  }
  if (!payload.empty()) out += " payload='" + payload + "'";
  out += "}";
  return out;
}

namespace {

/// Striped id allocation: one cache-line-padded counter per slot,
/// threads pinned to a slot on first use. No counter is shared across
/// more threads than hash onto its slot, so the hot path never bounces
/// one global cache line between every ingesting thread. Ids carry the
/// slot in the top bits — (slot << 48) | count — making them unique
/// across slots; slot 0 (every single-threaded process) yields the
/// same dense 1, 2, 3... sequence as the old global counter.
constexpr uint64_t kIdSlotShift = 48;
constexpr uint32_t kIdSlots = 16;

struct alignas(64) IdSlot {
  std::atomic<uint64_t> next_id{1};
};

IdSlot g_id_slots[kIdSlots];
std::atomic<uint32_t> g_id_slot_rr{0};

}  // namespace

uint64_t NextEventId() {
  // Cold per thread: round-robin slot assignment at first use.
  thread_local const uint32_t slot =
      g_id_slot_rr.fetch_add(1, std::memory_order_relaxed) % kIdSlots;
  const uint64_t count =
      g_id_slots[slot].next_id.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<uint64_t>(slot) << kIdSlotShift) | count;
}

}  // namespace edadb
