#include "core/processor.h"

#include <algorithm>
#include <thread>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace edadb {

EventProcessor::EventProcessor(EventProcessorOptions options)
    : options_(std::move(options)) {}

EventProcessor::~EventProcessor() = default;

Result<std::unique_ptr<EventProcessor>> EventProcessor::Open(
    EventProcessorOptions options) {
  auto processor =
      std::unique_ptr<EventProcessor>(new EventProcessor(std::move(options)));
  DatabaseOptions db_options;
  db_options.dir = processor->options_.data_dir;
  db_options.wal_sync_policy = processor->options_.wal_sync_policy;
  db_options.clock = processor->options_.clock;
  EDADB_ASSIGN_OR_RETURN(processor->db_, Database::Open(db_options));
  processor->clock_ = processor->db_->clock();
  if (processor->options_.shards < 0) {
    return Status::InvalidArgument("shards must be >= 0");
  }
  const size_t shards =
      processor->options_.shards > 0
          ? static_cast<size_t>(processor->options_.shards)
          : std::max<size_t>(1, std::thread::hardware_concurrency());
  EDADB_ASSIGN_OR_RETURN(processor->queues_,
                         ShardRouter::Open(processor->db_.get(), shards));
  EDADB_ASSIGN_OR_RETURN(
      processor->rules_,
      RulesEngine::Attach(processor->db_.get(),
                          processor->options_.matcher_kind));
  EDADB_ASSIGN_OR_RETURN(
      processor->broker_,
      Broker::Attach(processor->db_.get(), processor->queues_.get()));
  processor->propagator_ =
      std::make_unique<Propagator>(processor->queues_.get());
  processor->virt_ = std::make_unique<VirtFilter>(processor->clock_);
  processor->responders_ =
      std::make_unique<ResponderRegistry>(processor->queues_.get());
  EDADB_ASSIGN_OR_RETURN(processor->audit_,
                         AuditLog::Attach(processor->db_.get()));
  EDADB_ASSIGN_OR_RETURN(processor->metrics_table_,
                         MetricsTable::Attach(processor->db_.get()));
  processor->dispatcher_ =
      std::make_unique<ShardedDispatcher>(processor->queues_.get());
  EDADB_RETURN_IF_ERROR(processor->Wire());
  // Export the instance counters process-wide (multiple processors sum).
  EventProcessor* raw = processor.get();
  processor->metrics_collector_ =
      metrics::Registry::Default()->RegisterCollector(
          [raw](std::vector<metrics::MetricSnapshot>* out) {
            const auto emit = [out](const char* name, uint64_t value) {
              metrics::MetricSnapshot ms;
              ms.name = name;
              ms.kind = metrics::MetricKind::kCounter;
              ms.value = static_cast<int64_t>(value);
              out->push_back(std::move(ms));
            };
            emit("core.ingested", raw->ingested_.Value());
            emit("core.rules_matched", raw->rules_matched_.Value());
            emit("core.routed_to_queues", raw->routed_to_queues_.Value());
            emit("core.routed_to_topics", raw->routed_to_topics_.Value());
            emit("core.dispatched_to_responders",
                 raw->dispatched_to_responders_.Value());
            emit("core.ingest_failures", raw->ingest_failures_.Value());
          });
  return processor;
}

Status EventProcessor::Wire() {
  // Rule actions with routing prefixes are handled by the processor;
  // other actions fall through to handlers the application registers.
  rules_->RegisterDefaultHandler(
      [this](const Rule& rule, const RowAccessor& /*event_view*/) {
        // Routing needs the full Event, which the bus subscription below
        // carries; this default handler only counts unrouted matches.
        (void)rule;
      });
  return Status::OK();
}

void EventProcessor::RouteAction(const Rule& rule, const Event& event) {
  const std::string& action = rule.action;
  if (StartsWith(action, "queue:")) {
    const std::string queue = action.substr(6);
    EnqueueRequest request;
    request.payload = event.payload;
    request.attributes = event.attributes;
    request.attributes.emplace_back("event_type", Value::String(event.type));
    request.attributes.emplace_back("event_source",
                                    Value::String(event.source));
    request.attributes.emplace_back("matched_rule",
                                    Value::String(rule.id));
    request.correlation_id = std::to_string(event.id);
    if (!queues_->HasQueue(queue)) {
      const Status s = queues_->CreateQueue(queue);
      if (!s.ok() && !s.IsAlreadyExists()) {
        EDADB_LOG(Warn) << "route to queue '" << queue << "' failed: " << s;
        return;
      }
    }
    const auto enqueued = queues_->Enqueue(queue, request);
    if (enqueued.ok()) {
      routed_to_queues_.Add(1);
      if (options_.audit_routing) {
        EDADB_IGNORE_STATUS(
            audit_->Append("processor", "route.queue", queue,
                           "rule=" + rule.id + " event=" +
                               std::to_string(event.id)),
            "audit trail is best-effort; the routing itself succeeded");
      }
    } else {
      EDADB_LOG(Warn) << "enqueue to '" << queue
                      << "' failed: " << enqueued.status();
    }
    return;
  }
  if (StartsWith(action, "topic:")) {
    Publication pub;
    pub.topic = action.substr(6);
    pub.attributes = event.attributes;
    pub.attributes.emplace_back("event_type", Value::String(event.type));
    pub.payload = event.payload;
    const auto published = broker_->Publish(pub);
    if (published.ok()) {
      routed_to_topics_.Add(1);
      if (options_.audit_routing) {
        EDADB_IGNORE_STATUS(
            audit_->Append("processor", "route.topic", pub.topic,
                           "rule=" + rule.id + " event=" +
                               std::to_string(event.id)),
            "audit trail is best-effort; the routing itself succeeded");
      }
    } else {
      EDADB_LOG(Warn) << "publish to '" << pub.topic
                      << "' failed: " << published.status();
    }
    return;
  }
  if (StartsWith(action, "respond:")) {
    const std::vector<std::string> parts = Split(action.substr(8), ':');
    ResponseCriteria criteria;
    if (!parts.empty()) criteria.required_role = parts[0];
    if (parts.size() > 1) criteria.required_capability = parts[1];
    if (auto region = event.Get("region");
        region.has_value() && region->type() == ValueType::kString) {
      criteria.region = region->string_value();
    }
    const auto dispatched = responders_->Dispatch(event, criteria);
    if (dispatched.ok()) {
      dispatched_to_responders_.Add(dispatched->size());
      if (options_.audit_routing) {
        for (const std::string& responder : *dispatched) {
          EDADB_IGNORE_STATUS(
              audit_->Append("processor", "route.respond", responder,
                             "rule=" + rule.id + " event=" +
                                 std::to_string(event.id)),
              "audit trail is best-effort; the dispatch itself succeeded");
        }
      }
    } else {
      EDADB_LOG(Warn) << "responder dispatch for rule '" << rule.id
                      << "' failed: " << dispatched.status();
    }
    return;
  }
  // Plain action tags are dispatched through the rules engine's handler
  // registry during Evaluate(); nothing further to do here.
}

Status EventProcessor::Ingest(Event event) {
  std::vector<Event> batch;
  batch.push_back(std::move(event));
  return IngestBatch(std::move(batch));
}

Status EventProcessor::IngestBatch(std::vector<Event> events) {
  if (events.empty()) return Status::OK();
  FAILPOINT("core.ingest");
  for (Event& event : events) {
    if (event.id == 0) event.id = NextEventId();
    if (event.timestamp == 0) event.timestamp = clock_->NowMicros();
  }
  ingested_.Add(events.size());

  // Let bus subscribers (windows, monitors, application code) see the
  // whole batch under one subscriber snapshot.
  bus_.PublishBatch(events);

  // Evaluate critical conditions (handlers registered on rules() fire
  // inside EvaluateBatch), then interpret routing action tags per event.
  std::vector<EventView> views;
  views.reserve(events.size());
  for (const Event& event : events) views.emplace_back(event);
  std::vector<const RowAccessor*> accessors;
  accessors.reserve(events.size());
  for (const EventView& view : views) accessors.push_back(&view);
  EDADB_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> matched,
                         rules_->EvaluateBatch(accessors));
  for (size_t i = 0; i < events.size(); ++i) {
    rules_matched_.Add(matched[i].size());
    for (const std::string& rule_id : matched[i]) {
      std::optional<Rule> rule = rules_->FindRule(rule_id);
      if (rule.has_value() && !rule->action.empty()) {
        RouteAction(*rule, events[i]);
      }
    }
  }
  return Status::OK();
}

void EventProcessor::IngestFromSource(const Event& event) {
  const Status s = Ingest(event);
  if (!s.ok()) {
    ingest_failures_.Add(1);
    EDADB_LOG(Warn) << "capture-source ingest of event type '" << event.type
                    << "' failed: " << s;
  }
}

Result<size_t> EventProcessor::PumpOnce() {
  size_t total = 0;
  // Mirror the registry into __metrics BEFORE the query-source polls,
  // so a capture source watching __metrics sees this tick's values in
  // the same pump (no one-tick lag for continuous queries on health).
  if (options_.metrics_refresh_interval_micros >= 0) {
    // Steady-domain throttle (the atomic stores raw micros; the typed
    // points keep the arithmetic in one domain).
    const SteadyMicros steady_now = clock_->SteadyNow();
    const SteadyMicros last = SteadyMicros::FromMicros(
        last_metrics_refresh_steady_.load(std::memory_order_relaxed));
    if (last.micros() == 0 ||
        steady_now - last >= options_.metrics_refresh_interval_micros) {
      last_metrics_refresh_steady_.store(steady_now.micros(),
                                         std::memory_order_relaxed);
      EDADB_RETURN_IF_ERROR(metrics_table_->Refresh().status());
    }
  }
  for (const auto& source : journal_sources_) {
    EDADB_ASSIGN_OR_RETURN(size_t captured, source->Poll());
    total += captured;
  }
  for (const auto& source : query_sources_) {
    EDADB_ASSIGN_OR_RETURN(size_t captured, source->Poll());
    total += captured;
  }
  EDADB_ASSIGN_OR_RETURN(size_t propagated, propagator_->RunOnce());
  EDADB_ASSIGN_OR_RETURN(size_t dispatched, dispatcher_->PumpOnce());
  return total + propagated + dispatched;
}

Status EventProcessor::AttachTriggerCapture(const std::string& table,
                                            const std::string& event_type) {
  EDADB_ASSIGN_OR_RETURN(
      auto source,
      TriggerEventSource::Create(
          db_.get(), [this](const Event& event) { IngestFromSource(event); },
          table, "__capture_" + table, event_type));
  trigger_sources_.push_back(std::move(source));
  return Status::OK();
}

Status EventProcessor::AttachJournalCapture(const std::string& table,
                                            const std::string& event_type) {
  EDADB_RETURN_IF_ERROR(db_->GetTable(table).status());
  journal_sources_.push_back(std::make_unique<JournalEventSource>(
      db_.get(), [this](const Event& event) { IngestFromSource(event); }, table,
      event_type, db_->wal_end_lsn()));
  return Status::OK();
}

Status EventProcessor::AttachQueryCapture(
    Query query, std::vector<std::string> key_columns,
    const std::string& event_type) {
  EDADB_RETURN_IF_ERROR(db_->GetTable(query.table).status());
  query_sources_.push_back(std::make_unique<QueryEventSource>(
      db_.get(), [this](const Event& event) { IngestFromSource(event); },
      std::move(query), std::move(key_columns), event_type));
  // Prime the baseline so pre-existing rows are not reported as changes.
  return query_sources_.back()->Poll().status();
}

EventProcessor::Stats EventProcessor::GetStats() const {
  Stats stats;
  stats.ingested = ingested_.Value();
  stats.rules_matched = rules_matched_.Value();
  stats.routed_to_queues = routed_to_queues_.Value();
  stats.routed_to_topics = routed_to_topics_.Value();
  stats.dispatched_to_responders = dispatched_to_responders_.Value();
  stats.ingest_failures = ingest_failures_.Value();
  return stats;
}

}  // namespace edadb
