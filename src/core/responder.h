#ifndef EDADB_CORE_RESPONDER_H_
#define EDADB_CORE_RESPONDER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/event.h"
#include "mq/queue_service.h"

namespace edadb {

/// A party who can act on alerts. The ChemSecure and SensorNet use
/// cases (§2.2.e.iii/iv) both reduce to: "any threat has to be known to
/// the people who are AUTHORIZED and ABLE to respond most efficiently"
/// — plus availability. This registry models exactly those three
/// dimensions.
struct Responder {
  std::string id;
  /// Authorization: clearance roles, e.g. {"hazmat", "supervisor"}.
  std::set<std::string> roles;
  /// Ability: skills/equipment, e.g. {"chemical", "fire"}.
  std::set<std::string> capabilities;
  /// Location tag for proximity routing, e.g. "zone-3".
  std::string region;
  bool available = true;
  /// Staging queue the responder's device drains.
  std::string queue;
};

/// What an incident needs.
struct ResponseCriteria {
  std::string required_role;        // Empty = no authorization gate.
  std::string required_capability;  // Empty = no ability gate.
  std::string region;               // Prefer same region; empty = any.
  size_t max_responders = 1;        // Notify at most this many.
};

/// Routes events to the most appropriate responders' queues.
/// Thread-safe.
class ResponderRegistry {
 public:
  /// `queues` must outlive the registry. A responder's queue is created
  /// on registration if missing.
  explicit ResponderRegistry(QueueService* queues) : queues_(queues) {}

  EDADB_NODISCARD Status RegisterResponder(Responder responder);
  EDADB_NODISCARD Status UnregisterResponder(const std::string& id);
  EDADB_NODISCARD Status SetAvailable(const std::string& id, bool available);
  size_t num_responders() const;

  /// Responders satisfying the criteria: authorized (role), able
  /// (capability), available, sorted same-region first then by id.
  /// Truncated to max_responders.
  std::vector<Responder> FindResponders(
      const ResponseCriteria& criteria) const;

  /// Delivers `event` to each selected responder's queue; returns the
  /// ids notified. NotFound when nobody qualifies — the caller decides
  /// whether that escalates.
  EDADB_NODISCARD Result<std::vector<std::string>> Dispatch(const Event& event,
                                            const ResponseCriteria& criteria);

 private:
  QueueService* const queues_;
  mutable Mutex mu_{"ResponderRegistry::mu_"};
  std::map<std::string, Responder> responders_ EDADB_GUARDED_BY(mu_);
};

}  // namespace edadb

#endif  // EDADB_CORE_RESPONDER_H_
