#ifndef EDADB_CORE_SOURCES_H_
#define EDADB_CORE_SOURCES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/event.h"
#include "cq/continuous_query.h"
#include "db/database.h"
#include "journal/journal_miner.h"
#include "common/macros.h"

namespace edadb {

/// The three database capture paths of §2.2.a, plus external push, all
/// normalized into Events handed to an EventSink — typically
/// EventProcessor::Ingest or EventBus::Publish. bench_capture (E1)
/// drives the three against the same writes and measures throughput and
/// staleness.

/// Where captured events go.
using EventSink = std::function<void(const Event&)>;

/// §2.2.a.i — synchronous capture via an AFTER trigger. Zero staleness;
/// capture work runs inside the writer's commit path.
class TriggerEventSource {
 public:
  /// Registers an AFTER trigger named `trigger_name` on `table`; every
  /// committed change becomes an Event of type `event_type` on `bus`
  /// with the new (or, for deletes, old) row's fields as attributes.
  EDADB_NODISCARD static Result<std::unique_ptr<TriggerEventSource>> Create(
      Database* db, EventSink sink, const std::string& table,
      const std::string& trigger_name, const std::string& event_type);

  ~TriggerEventSource();

  uint64_t captured() const { return captured_; }

 private:
  TriggerEventSource(Database* db, std::string trigger_name)
      : db_(db), trigger_name_(std::move(trigger_name)) {}

  Database* db_;
  std::string trigger_name_;
  uint64_t captured_ = 0;
};

/// §2.2.a.ii — asynchronous capture by mining the journal. Never slows
/// writers; staleness is the poll interval.
class JournalEventSource {
 public:
  JournalEventSource(Database* db, EventSink sink, const std::string& table,
                     const std::string& event_type, Lsn start_lsn = 0);

  /// Pumps newly committed changes into the sink; returns events emitted.
  EDADB_NODISCARD Result<size_t> Poll();

  Lsn watermark() const { return miner_.watermark(); }
  uint64_t captured() const { return captured_; }

 private:
  Clock* clock_;
  EventSink sink_;
  std::string event_type_;
  JournalMiner miner_;
  uint64_t captured_ = 0;
};

/// §2.2.a.iii — capture via continuous query: result-set change is the
/// event. Most decoupled, most expensive per poll (re-evaluation).
class QueryEventSource {
 public:
  QueryEventSource(Database* db, EventSink sink, Query query,
                   std::vector<std::string> key_columns,
                   const std::string& event_type);

  EDADB_NODISCARD Result<size_t> Poll();

  uint64_t captured() const { return captured_; }

 private:
  std::unique_ptr<ContinuousQueryWatcher> watcher_;
  uint64_t captured_ = 0;
};

/// Foreign systems deliver straight onto the bus ("acquisition of
/// streams of data by push").
class PushEventSource {
 public:
  PushEventSource(EventSink sink, std::string source_name)
      : sink_(std::move(sink)), source_name_(std::move(source_name)) {}

  /// Stamps id/source/timestamp (when unset) and publishes.
  void Push(Event event, Clock* clock = nullptr);

  uint64_t captured() const { return captured_; }

 private:
  EventSink sink_;
  std::string source_name_;
  uint64_t captured_ = 0;
};

/// Shared helper: flattens a Record into event attributes.
void RecordToAttributes(const Record& record, AttributeList* out);

}  // namespace edadb

#endif  // EDADB_CORE_SOURCES_H_
