#ifndef EDADB_CORE_MONITOR_H_
#define EDADB_CORE_MONITOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "analytics/detector.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"

namespace edadb {

/// Management by exception over a population of entities (tutorial
/// Part 1.f: "specifying expected behavior by models; identifying when
/// reality deviates from expectation; updating models"). Each entity
/// (meter, stock symbol, sensor) gets its own expectation model, lazily
/// created from the factory; deviations invoke the alert callback.
/// Thread-safe.
class ExpectationMonitor {
 public:
  using ModelFactory = std::function<std::unique_ptr<Forecaster>()>;
  using AlertCallback = std::function<void(
      const std::string& entity, TimestampMicros ts, double value,
      const DetectionResult& result)>;

  ExpectationMonitor(ModelFactory factory,
                     DeviationDetector::Options detector_options,
                     AlertCallback on_alert);

  /// Scores one observation for `entity` (creating its model on first
  /// sight) and fires the alert callback on anomalies.
  EDADB_NODISCARD Result<DetectionResult> Process(const std::string& entity,
                                  TimestampMicros ts, double value);

  /// Drops an entity's model (e.g. after reconfiguration) so it relearns.
  EDADB_NODISCARD Status ResetEntity(const std::string& entity);

  size_t num_entities() const;
  uint64_t alerts_raised() const;

 private:
  const ModelFactory factory_;
  const DeviationDetector::Options detector_options_;
  const AlertCallback on_alert_;
  mutable Mutex mu_{"ExpectationMonitor::mu_"};
  std::map<std::string, std::unique_ptr<DeviationDetector>> detectors_
      EDADB_GUARDED_BY(mu_);
  uint64_t alerts_ EDADB_GUARDED_BY(mu_) = 0;
};

}  // namespace edadb

#endif  // EDADB_CORE_MONITOR_H_
