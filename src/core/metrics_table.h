#ifndef EDADB_CORE_METRICS_TABLE_H_
#define EDADB_CORE_METRICS_TABLE_H_

#include <map>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "db/database.h"

namespace edadb {

/// Mirrors the process metrics registry into the `__metrics` system
/// table (one row per metric), following the `__audit` pattern: system
/// state stored as ordinary data, so the database's own machinery —
/// ad-hoc queries, query-capture sources, continuous queries, rules —
/// applies to the system's health. A rule like
///   name = 'mq.queue.work.depth' AND value >= 1000
/// attached via AttachQueryCapture on `__metrics` turns a backlog into
/// an event (DESIGN.md §11).
///
/// Refresh() is a diff: only metrics whose values changed since the
/// last refresh touch the table, so query-capture sources see real
/// deltas rather than a full rewrite per tick.
///
/// Thread-safe.
class MetricsTable {
 public:
  static constexpr char kTableName[] = "__metrics";

  /// Creates/attaches the `__metrics` table. `db` and `registry` must
  /// outlive the object; `registry` defaults to the process registry.
  EDADB_NODISCARD static Result<std::unique_ptr<MetricsTable>> Attach(
      Database* db, metrics::Registry* registry = nullptr);

  /// Snapshots the registry and reconciles the table: upserts changed
  /// metrics, deletes rows for metrics gone from the snapshot (e.g. a
  /// dropped queue's gauges). Returns the number of rows written.
  EDADB_NODISCARD Result<size_t> Refresh();

 private:
  MetricsTable(Database* db, metrics::Registry* registry)
      : db_(db), registry_(registry) {}

  struct CachedRow {
    RowId row_id = 0;
    metrics::MetricSnapshot last;
  };

  Database* const db_;
  metrics::Registry* const registry_;
  mutable Mutex mu_{"MetricsTable::mu_"};
  std::map<std::string, CachedRow> rows_ EDADB_GUARDED_BY(mu_);
};

}  // namespace edadb

#endif  // EDADB_CORE_METRICS_TABLE_H_
