#ifndef EDADB_CORE_EVENT_H_
#define EDADB_CORE_EVENT_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/clock.h"
#include "value/record.h"
#include "value/row_codec.h"

namespace edadb {

/// The unit of the event-driven architecture: a typed, timestamped,
/// attributed observation from somewhere in the environment. Everything
/// the capture layer produces (trigger firings, mined journal changes,
/// query-diff changes, foreign pushes) normalizes to this.
struct Event {
  uint64_t id = 0;
  /// Category, e.g. "meter_reading", "order", "hazmat_alert".
  std::string type;
  /// Producer identity, e.g. "sensor-17", "table:orders".
  std::string source;
  TimestampMicros timestamp = 0;
  AttributeList attributes;
  std::string payload;

  /// Convenience accessors over `attributes`.
  std::optional<Value> Get(std::string_view name) const;
  void Set(std::string_view name, Value value);

  std::string ToString() const;
};

/// Exposes an event to predicates/rules: reserved names `event_type`,
/// `source`, `timestamp`, plus every attribute by name.
class EventView : public RowAccessor {
 public:
  explicit EventView(const Event& event) : event_(event) {}

  std::optional<Value> GetAttribute(std::string_view name) const override {
    if (name == "event_type") return Value::String(event_.type);
    if (name == "source") return Value::String(event_.source);
    if (name == "timestamp") return Value::Timestamp(event_.timestamp);
    return event_.Get(name);
  }

 private:
  const Event& event_;
};

/// Process-wide event id allocation (capture adapters stamp ids so
/// downstream audit trails can refer to events). Striped: threads draw
/// from per-slot counters and ids embed the slot in their top bits, so
/// allocation never contends on one global atomic; ids are unique but
/// only ordered within a thread's slot.
uint64_t NextEventId();

}  // namespace edadb

#endif  // EDADB_CORE_EVENT_H_
