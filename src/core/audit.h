#ifndef EDADB_CORE_AUDIT_H_
#define EDADB_CORE_AUDIT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "db/database.h"

namespace edadb {

/// The tutorial's recurring "operational characteristics: security,
/// auditing, tracking" (§2.2.b/c/d.iii.1): an append-only audit trail
/// stored in the database itself, so audit entries share the data's
/// durability, recovery and query capabilities — and are themselves
/// minable from the journal.
///
/// Thread-safe (delegates to Database locking).
class AuditLog {
 public:
  /// Creates/attaches the `__audit` table. `db` must outlive the log.
  EDADB_NODISCARD static Result<std::unique_ptr<AuditLog>> Attach(Database* db);

  struct Entry {
    TimestampMicros timestamp = 0;
    std::string actor;   // "rules-engine", "operator:alice", ...
    std::string action;  // "rule.add", "queue.dequeue", "dispatch", ...
    std::string object;  // Rule id, queue name, event id, ...
    std::string detail;  // Free-form context.
  };

  /// Appends one entry (timestamped from the database clock).
  EDADB_NODISCARD Status Append(const std::string& actor, const std::string& action,
                const std::string& object, const std::string& detail = "");

  /// Entries matching an optional filter over (actor, action, object,
  /// detail, timestamp), newest first, up to `limit`.
  EDADB_NODISCARD Result<std::vector<Entry>> Query(const std::string& filter_source = "",
                                   size_t limit = 100) const;

  EDADB_NODISCARD Result<size_t> count() const;

 private:
  explicit AuditLog(Database* db) : db_(db) {}

  Database* db_;
};

}  // namespace edadb

#endif  // EDADB_CORE_AUDIT_H_
