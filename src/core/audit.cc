#include "core/audit.h"

namespace edadb {

namespace {

constexpr char kAuditTable[] = "__audit";

SchemaPtr AuditSchema() {
  return Schema::Make({
      {"ts", ValueType::kTimestamp, /*nullable=*/false},
      {"actor", ValueType::kString, false},
      {"action", ValueType::kString, false},
      {"object", ValueType::kString, true},
      {"detail", ValueType::kString, true},
  });
}

std::string GetString(const Record& row, std::string_view field) {
  auto v = row.Get(field);
  return v.ok() && v->type() == ValueType::kString ? v->string_value()
                                                   : std::string();
}

}  // namespace

Result<std::unique_ptr<AuditLog>> AuditLog::Attach(Database* db) {
  if (!db->GetTable(kAuditTable).ok()) {
    EDADB_RETURN_IF_ERROR(db->CreateTable(kAuditTable, AuditSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kAuditTable, "action", false));
  }
  return std::unique_ptr<AuditLog>(new AuditLog(db));
}

Status AuditLog::Append(const std::string& actor, const std::string& action,
                        const std::string& object,
                        const std::string& detail) {
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kAuditTable));
  Record row = *RecordBuilder(table->schema())
                    .SetTimestamp("ts", db_->clock()->NowMicros())
                    .SetString("actor", actor)
                    .SetString("action", action)
                    .SetString("object", object)
                    .SetString("detail", detail)
                    .Build();
  return db_->Insert(kAuditTable, std::move(row)).status();
}

Result<std::vector<AuditLog::Entry>> AuditLog::Query(
    const std::string& filter_source, size_t limit) const {
  QueryBuilder builder{std::string(kAuditTable)};
  builder.OrderByDesc("ts").Limit(limit);
  if (!filter_source.empty()) builder.Where(filter_source);
  EDADB_ASSIGN_OR_RETURN(QueryResult result,
                         db_->Execute(builder.Build()));
  std::vector<Entry> entries;
  entries.reserve(result.rows.size());
  for (const Record& row : result.rows) {
    Entry entry;
    auto ts = row.Get("ts");
    if (ts.ok() && !ts->is_null()) entry.timestamp = ts->timestamp_value();
    entry.actor = GetString(row, "actor");
    entry.action = GetString(row, "action");
    entry.object = GetString(row, "object");
    entry.detail = GetString(row, "detail");
    entries.push_back(std::move(entry));
  }
  return entries;
}

Result<size_t> AuditLog::count() const {
  return db_->CountRows(kAuditTable);
}

}  // namespace edadb
