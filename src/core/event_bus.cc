#include "core/event_bus.h"

namespace edadb {

Result<uint64_t> EventBus::Subscribe(
    Handler handler, std::optional<std::string> filter_source) {
  Sub sub;
  sub.handler = std::move(handler);
  if (filter_source.has_value()) {
    EDADB_ASSIGN_OR_RETURN(Predicate filter,
                           Predicate::Compile(*filter_source));
    sub.filter = std::move(filter);
  }
  MutexLock lock(&mu_);
  const uint64_t handle = next_handle_++;
  subs_.emplace(handle, std::move(sub));
  return handle;
}

Status EventBus::Unsubscribe(uint64_t handle) {
  MutexLock lock(&mu_);
  if (subs_.erase(handle) == 0) {
    return Status::NotFound("no subscription " + std::to_string(handle));
  }
  return Status::OK();
}

size_t EventBus::Publish(const Event& event) {
  published_.fetch_add(1, std::memory_order_relaxed);
  // Snapshot handlers so subscribers may (un)subscribe from callbacks.
  std::vector<Sub> targets;
  {
    MutexLock lock(&mu_);
    targets.reserve(subs_.size());
    EventView view(event);
    for (const auto& [handle, sub] : subs_) {
      if (sub.filter.has_value() && !sub.filter->MatchesOrFalse(view)) {
        continue;
      }
      targets.push_back(sub);
    }
  }
  for (const Sub& sub : targets) {
    sub.handler(event);
  }
  return targets.size();
}

size_t EventBus::num_subscribers() const {
  MutexLock lock(&mu_);
  return subs_.size();
}

}  // namespace edadb
