#include "core/event_bus.h"

namespace edadb {

Result<uint64_t> EventBus::Subscribe(
    Handler handler, std::optional<std::string> filter_source) {
  Sub sub;
  sub.handler = std::move(handler);
  if (filter_source.has_value()) {
    EDADB_ASSIGN_OR_RETURN(Predicate filter,
                           Predicate::Compile(*filter_source));
    sub.filter = std::move(filter);
  }
  MutexLock lock(&mu_);
  const uint64_t handle = next_handle_++;
  subs_.emplace(handle, std::make_shared<const Sub>(std::move(sub)));
  return handle;
}

Status EventBus::Unsubscribe(uint64_t handle) {
  MutexLock lock(&mu_);
  if (subs_.erase(handle) == 0) {
    return Status::NotFound("no subscription " + std::to_string(handle));
  }
  return Status::OK();
}

size_t EventBus::Publish(const Event& event) {
  return PublishSpan(&event, 1);
}

size_t EventBus::PublishBatch(const std::vector<Event>& events) {
  return PublishSpan(events.data(), events.size());
}

size_t EventBus::PublishSpan(const Event* events, size_t count) {
  if (count == 0) return 0;
  published_.fetch_add(count, std::memory_order_relaxed);
  // One subscription snapshot for the whole batch. Refs, not copies:
  // filters evaluate and handlers run OUTSIDE mu_, so a slow filter or
  // re-entrant handler (subscribe/unsubscribe/publish from a callback)
  // never blocks other publishers. Predicate evaluation is const and
  // stateless, so sharing the Sub across threads is safe.
  std::vector<std::shared_ptr<const Sub>> snapshot;
  {
    MutexLock lock(&mu_);
    snapshot.reserve(subs_.size());
    for (const auto& [handle, sub] : subs_) snapshot.push_back(sub);
  }
  size_t delivered = 0;
  for (size_t i = 0; i < count; ++i) {
    const Event& event = events[i];
    EventView view(event);
    for (const std::shared_ptr<const Sub>& sub : snapshot) {
      if (sub->filter.has_value() && !sub->filter->MatchesOrFalse(view)) {
        continue;
      }
      sub->handler(event);
      ++delivered;
    }
  }
  return delivered;
}

size_t EventBus::num_subscribers() const {
  MutexLock lock(&mu_);
  return subs_.size();
}

}  // namespace edadb
