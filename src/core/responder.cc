#include "core/responder.h"

#include <algorithm>

namespace edadb {

Status ResponderRegistry::RegisterResponder(Responder responder) {
  if (responder.id.empty()) {
    return Status::InvalidArgument("responder needs an id");
  }
  if (responder.queue.empty()) {
    responder.queue = "__responder_" + responder.id;
  }
  if (!queues_->HasQueue(responder.queue)) {
    EDADB_RETURN_IF_ERROR(queues_->CreateQueue(responder.queue));
  }
  MutexLock lock(&mu_);
  const std::string id = responder.id;
  auto [it, inserted] = responders_.emplace(id, std::move(responder));
  if (!inserted) {
    return Status::AlreadyExists("responder '" + id + "' already registered");
  }
  return Status::OK();
}

Status ResponderRegistry::UnregisterResponder(const std::string& id) {
  MutexLock lock(&mu_);
  if (responders_.erase(id) == 0) {
    return Status::NotFound("responder '" + id + "'");
  }
  return Status::OK();
}

Status ResponderRegistry::SetAvailable(const std::string& id,
                                       bool available) {
  MutexLock lock(&mu_);
  auto it = responders_.find(id);
  if (it == responders_.end()) {
    return Status::NotFound("responder '" + id + "'");
  }
  it->second.available = available;
  return Status::OK();
}

size_t ResponderRegistry::num_responders() const {
  MutexLock lock(&mu_);
  return responders_.size();
}

std::vector<Responder> ResponderRegistry::FindResponders(
    const ResponseCriteria& criteria) const {
  std::vector<Responder> matched;
  {
    MutexLock lock(&mu_);
    for (const auto& [id, responder] : responders_) {
      if (!responder.available) continue;
      if (!criteria.required_role.empty() &&
          responder.roles.count(criteria.required_role) == 0) {
        continue;  // Not authorized.
      }
      if (!criteria.required_capability.empty() &&
          responder.capabilities.count(criteria.required_capability) == 0) {
        continue;  // Not able.
      }
      matched.push_back(responder);
    }
  }
  // Most efficient first: same region, then stable by id.
  std::stable_sort(matched.begin(), matched.end(),
                   [&](const Responder& a, const Responder& b) {
                     const bool a_near =
                         !criteria.region.empty() && a.region == criteria.region;
                     const bool b_near =
                         !criteria.region.empty() && b.region == criteria.region;
                     if (a_near != b_near) return a_near;
                     return a.id < b.id;
                   });
  if (matched.size() > criteria.max_responders) {
    matched.resize(criteria.max_responders);
  }
  return matched;
}

Result<std::vector<std::string>> ResponderRegistry::Dispatch(
    const Event& event, const ResponseCriteria& criteria) {
  const std::vector<Responder> selected = FindResponders(criteria);
  if (selected.empty()) {
    return Status::NotFound(
        "no authorized, available and able responder for event " +
        std::to_string(event.id));
  }
  std::vector<std::string> notified;
  notified.reserve(selected.size());
  for (const Responder& responder : selected) {
    EnqueueRequest request;
    request.payload = event.payload;
    request.attributes = event.attributes;
    request.attributes.emplace_back("event_type", Value::String(event.type));
    request.attributes.emplace_back("event_source",
                                    Value::String(event.source));
    request.attributes.emplace_back(
        "event_id", Value::Int64(static_cast<int64_t>(event.id)));
    request.correlation_id = std::to_string(event.id);
    EDADB_RETURN_IF_ERROR(
        queues_->Enqueue(responder.queue, request).status());
    notified.push_back(responder.id);
  }
  return notified;
}

}  // namespace edadb
