#include "core/virt.h"

#include <algorithm>

namespace edadb {

namespace {

double DefaultScore(const Event& event) {
  if (auto v = event.Get("value_score"); v.has_value()) {
    auto d = v->AsDouble();
    if (d.ok()) return std::clamp(*d, 0.0, 1.0);
  }
  if (auto v = event.Get("severity"); v.has_value()) {
    auto d = v->AsDouble();
    if (d.ok()) return std::clamp(*d / 10.0, 0.0, 1.0);
  }
  return 0.5;
}

}  // namespace

std::string_view VirtFilter::VerdictToString(Verdict verdict) {
  switch (verdict) {
    case Verdict::kDeliver: return "DELIVER";
    case Verdict::kNotRelevant: return "NOT_RELEVANT";
    case Verdict::kBelowValue: return "BELOW_VALUE";
    case Verdict::kDuplicate: return "DUPLICATE";
    case Verdict::kRateLimited: return "RATE_LIMITED";
  }
  return "?";
}

std::string VirtFilter::DedupKey(const Event& event) {
  if (auto v = event.Get("dedup_key"); v.has_value()) {
    if (v->type() == ValueType::kString) return v->string_value();
    return v->ToString();
  }
  return event.type + "|" + event.source;
}

VirtFilter::VirtFilter(Clock* clock, Scorer scorer)
    : clock_(clock != nullptr ? clock : SystemClock::Default()),
      scorer_(scorer != nullptr ? std::move(scorer) : DefaultScore) {}

Status VirtFilter::RegisterConsumer(const std::string& consumer_id,
                                    ConsumerOptions options) {
  MutexLock lock(&mu_);
  if (consumers_.count(consumer_id) > 0) {
    return Status::AlreadyExists("consumer '" + consumer_id +
                                 "' already registered");
  }
  ConsumerState state;
  state.options = std::move(options);
  state.tokens = state.options.rate_burst;
  state.last_refill = clock_->SteadyNow();
  consumers_.emplace(consumer_id, std::move(state));
  return Status::OK();
}

Status VirtFilter::UnregisterConsumer(const std::string& consumer_id) {
  MutexLock lock(&mu_);
  if (consumers_.erase(consumer_id) == 0) {
    return Status::NotFound("consumer '" + consumer_id + "'");
  }
  return Status::OK();
}

std::vector<std::string> VirtFilter::ListConsumers() const {
  MutexLock lock(&mu_);
  std::vector<std::string> ids;
  ids.reserve(consumers_.size());
  for (const auto& [id, state] : consumers_) ids.push_back(id);
  return ids;
}

Result<VirtFilter::Decision> VirtFilter::Evaluate(
    const std::string& consumer_id, const Event& event) {
  MutexLock lock(&mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) {
    return Status::NotFound("consumer '" + consumer_id + "'");
  }
  ConsumerState& state = it->second;
  Decision decision;
  decision.value_score = scorer_(event);

  // Gate 1: relevance.
  if (state.options.interest.has_value()) {
    EventView view(event);
    if (!state.options.interest->MatchesOrFalse(view)) {
      decision.verdict = Verdict::kNotRelevant;
      ++state.stats.not_relevant;
      return decision;
    }
  }
  // Gate 2: value.
  if (decision.value_score < state.options.min_value_score) {
    decision.verdict = Verdict::kBelowValue;
    ++state.stats.below_value;
    return decision;
  }
  // Dedup windows and token-bucket refill measure elapsed spans, not
  // calendar time: steady domain, so wall steps cannot flood the bucket
  // (step forward) or freeze it and extend suppression (step back).
  const SteadyMicros now = clock_->SteadyNow();
  // Gate 3: novelty. (The key is recorded only on actual delivery, so a
  // rate-limited event does not start a suppression window.)
  std::optional<std::string> dedup_key;
  if (state.options.dedup_window_micros > 0) {
    dedup_key = DedupKey(event);
    auto recent_it = state.recent.find(*dedup_key);
    if (recent_it != state.recent.end() &&
        now - recent_it->second < state.options.dedup_window_micros) {
      decision.verdict = Verdict::kDuplicate;
      ++state.stats.duplicate;
      return decision;
    }
  }
  // Gate 4: rate.
  if (state.options.rate_limit_per_second > 0) {
    const double elapsed_seconds =
        static_cast<double>(now - state.last_refill) /
        static_cast<double>(kMicrosPerSecond);
    state.tokens = std::min(
        state.options.rate_burst,
        state.tokens + elapsed_seconds * state.options.rate_limit_per_second);
    state.last_refill = now;
    if (state.tokens < 1.0) {
      decision.verdict = Verdict::kRateLimited;
      ++state.stats.rate_limited;
      return decision;
    }
    state.tokens -= 1.0;
  }
  if (dedup_key.has_value()) {
    // Opportunistic cleanup keeps the map bounded under many keys.
    if (state.recent.size() > 4096) {
      for (auto r = state.recent.begin(); r != state.recent.end();) {
        if (now - r->second >= state.options.dedup_window_micros) {
          r = state.recent.erase(r);
        } else {
          ++r;
        }
      }
    }
    state.recent[*dedup_key] = now;
  }
  decision.verdict = Verdict::kDeliver;
  ++state.stats.delivered;
  return decision;
}

Result<VirtFilter::ConsumerStats> VirtFilter::GetStats(
    const std::string& consumer_id) const {
  MutexLock lock(&mu_);
  auto it = consumers_.find(consumer_id);
  if (it == consumers_.end()) {
    return Status::NotFound("consumer '" + consumer_id + "'");
  }
  return it->second.stats;
}

}  // namespace edadb
