#include "core/metrics_table.h"

namespace edadb {

namespace {

SchemaPtr MetricsSchema() {
  return Schema::Make({
      {"name", ValueType::kString, /*nullable=*/false},
      {"kind", ValueType::kString, false},
      {"value", ValueType::kInt64, false},
      {"count", ValueType::kInt64, false},
      {"sum", ValueType::kInt64, false},
      {"p50", ValueType::kDouble, false},
      {"p95", ValueType::kDouble, false},
      {"p99", ValueType::kDouble, false},
      {"max", ValueType::kInt64, false},
      {"updated_at", ValueType::kTimestamp, false},
  });
}

std::string KindName(metrics::MetricKind kind) {
  switch (kind) {
    case metrics::MetricKind::kCounter: return "counter";
    case metrics::MetricKind::kGauge: return "gauge";
    case metrics::MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// Value equality for the diff; `name` doubles as the "ever written"
/// flag (rows adopted from a previous process carry an empty name and
/// therefore always refresh once).
bool SameValue(const metrics::MetricSnapshot& a,
               const metrics::MetricSnapshot& b) {
  return a.name == b.name && a.kind == b.kind && a.value == b.value &&
         a.count == b.count && a.sum == b.sum && a.max == b.max &&
         a.p50 == b.p50 && a.p95 == b.p95 && a.p99 == b.p99;
}

Result<Record> BuildRow(const SchemaPtr& schema,
                        const metrics::MetricSnapshot& ms,
                        TimestampMicros now) {
  return RecordBuilder(schema)
      .SetString("name", ms.name)
      .SetString("kind", KindName(ms.kind))
      .SetInt64("value", ms.value)
      .SetInt64("count", static_cast<int64_t>(ms.count))
      .SetInt64("sum", static_cast<int64_t>(ms.sum))
      .SetDouble("p50", ms.p50)
      .SetDouble("p95", ms.p95)
      .SetDouble("p99", ms.p99)
      .SetInt64("max", static_cast<int64_t>(ms.max))
      .SetTimestamp("updated_at", now)
      .Build();
}

}  // namespace

Result<std::unique_ptr<MetricsTable>> MetricsTable::Attach(
    Database* db, metrics::Registry* registry) {
  if (registry == nullptr) registry = metrics::Registry::Default();
  if (!db->GetTable(kTableName).ok()) {
    EDADB_RETURN_IF_ERROR(db->CreateTable(kTableName, MetricsSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kTableName, "name", true));
  }
  auto table = std::unique_ptr<MetricsTable>(new MetricsTable(db, registry));
  // Adopt rows from a previous incarnation: remember their row ids so
  // the first Refresh() updates in place instead of violating the
  // unique name index with a duplicate insert.
  EDADB_ASSIGN_OR_RETURN(Table * t, db->GetTable(kTableName));
  MutexLock lock(&table->mu_);
  t->ScanRows([&](RowId row_id, const Record& row) {
    auto name = row.Get("name");
    if (name.ok() && name->type() == ValueType::kString) {
      CachedRow cached;
      cached.row_id = row_id;
      // cached.last.name stays empty -> first refresh rewrites the row.
      table->rows_[name->string_value()] = std::move(cached);
    }
    return true;
  });
  return table;
}

Result<size_t> MetricsTable::Refresh() {
  // Snapshot outside mu_: collectors take component locks, and nothing
  // below depends on snapshot/refresh atomicity.
  std::vector<metrics::MetricSnapshot> snapshot = registry_->Snapshot();
  EDADB_ASSIGN_OR_RETURN(Table * t, db_->GetTable(kTableName));
  const TimestampMicros now = db_->clock()->NowMicros();
  MutexLock lock(&mu_);
  size_t written = 0;
  std::map<std::string, CachedRow> next;
  for (metrics::MetricSnapshot& ms : snapshot) {
    auto it = rows_.find(ms.name);
    if (it != rows_.end() && SameValue(it->second.last, ms)) {
      next[ms.name] = std::move(it->second);
      rows_.erase(it);
      continue;
    }
    EDADB_ASSIGN_OR_RETURN(Record row, BuildRow(t->schema(), ms, now));
    CachedRow cached;
    if (it != rows_.end()) {
      cached.row_id = it->second.row_id;
      EDADB_RETURN_IF_ERROR(
          db_->UpdateRow(kTableName, cached.row_id, std::move(row)));
      rows_.erase(it);
    } else {
      EDADB_ASSIGN_OR_RETURN(cached.row_id,
                             db_->Insert(kTableName, std::move(row)));
    }
    ++written;
    cached.last = std::move(ms);
    next[cached.last.name] = std::move(cached);
  }
  // Whatever is left in rows_ vanished from the registry (e.g. a
  // dropped queue's gauges): remove the stale rows.
  for (const auto& [name, cached] : rows_) {
    EDADB_RETURN_IF_ERROR(db_->DeleteRow(kTableName, cached.row_id));
    ++written;
  }
  rows_ = std::move(next);
  return written;
}

}  // namespace edadb
