#ifndef EDADB_CORE_VIRT_H_
#define EDADB_CORE_VIRT_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "core/event.h"
#include "expr/predicate.h"

namespace edadb {

/// VIRT — "Valuable Information at the Right Time" (Hayes-Roth, quoted
/// in the tutorial's overview). The filter decides, per consumer,
/// whether an event is worth interrupting them for; everything else is
/// the information overload the paper says must be filtered out.
///
/// An event is delivered to a consumer iff it passes four gates:
///   1. relevance  — the consumer's interest predicate matches;
///   2. value      — the value score clears the consumer's threshold;
///   3. novelty    — no duplicate (same dedup key) was delivered to this
///                   consumer within the dedup window;
///   4. rate       — the consumer's token bucket has capacity.
/// bench_virt (E9) measures the suppression each gate contributes.
class VirtFilter {
 public:
  struct ConsumerOptions {
    /// Deliver only events whose value score is >= this (0..1 scale).
    double min_value_score = 0.0;
    /// Events with the same dedup key within this window are duplicates.
    TimestampMicros dedup_window_micros = 0;  // 0 = no dedup.
    /// Token bucket: sustained deliveries/sec (<= 0 = unlimited)...
    double rate_limit_per_second = 0;
    /// ...with this burst capacity.
    double rate_burst = 10;
    /// Relevance predicate over EventView; absent = everything relevant.
    std::optional<Predicate> interest;
  };

  enum class Verdict {
    kDeliver,
    kNotRelevant,
    kBelowValue,
    kDuplicate,
    kRateLimited,
  };

  struct Decision {
    Verdict verdict = Verdict::kDeliver;
    double value_score = 0;
  };

  struct ConsumerStats {  // lint:allow(adhoc-stats): per-consumer suppression breakdown, queried by key
    uint64_t delivered = 0;
    uint64_t not_relevant = 0;
    uint64_t below_value = 0;
    uint64_t duplicate = 0;
    uint64_t rate_limited = 0;

    uint64_t suppressed() const {
      return not_relevant + below_value + duplicate + rate_limited;
    }
  };

  /// Value scoring: maps an event to [0, 1]. The default uses the
  /// `value_score` attribute when present, else `severity` (assumed
  /// 0-10) / 10, else 0.5.
  using Scorer = std::function<double(const Event&)>;

  explicit VirtFilter(Clock* clock, Scorer scorer = nullptr);

  EDADB_NODISCARD Status RegisterConsumer(const std::string& consumer_id,
                          ConsumerOptions options);
  EDADB_NODISCARD Status UnregisterConsumer(const std::string& consumer_id);
  std::vector<std::string> ListConsumers() const;

  /// Decides (and records) whether `event` should reach `consumer_id`.
  EDADB_NODISCARD Result<Decision> Evaluate(const std::string& consumer_id,
                            const Event& event);

  EDADB_NODISCARD Result<ConsumerStats> GetStats(const std::string& consumer_id) const;

  static std::string_view VerdictToString(Verdict verdict);

  /// The default dedup identity: the `dedup_key` attribute when present,
  /// else type + source.
  static std::string DedupKey(const Event& event);

 private:
  struct ConsumerState {
    ConsumerOptions options;
    ConsumerStats stats;
    /// Token bucket. Refill bookkeeping is STEADY-domain: both the
    /// bucket and the dedup window measure elapsed spans over in-memory
    /// state, so a wall-clock step must not flood or starve them (the
    /// original wall-domain version was the first real bug the
    /// clock-domain analysis surfaced; tests/core/virt_clock_jump_test).
    double tokens = 0;
    SteadyMicros last_refill;
    /// dedup key -> last delivery time (steady).
    std::map<std::string, SteadyMicros> recent;
  };

  Clock* const clock_;
  const Scorer scorer_;
  mutable Mutex mu_{"VirtFilter::mu_"};
  std::map<std::string, ConsumerState> consumers_ EDADB_GUARDED_BY(mu_);
};

}  // namespace edadb

#endif  // EDADB_CORE_VIRT_H_
