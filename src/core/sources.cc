#include "core/sources.h"

namespace edadb {

void RecordToAttributes(const Record& record, AttributeList* out) {
  if (record.schema() == nullptr) return;
  out->reserve(out->size() + record.num_values());
  for (size_t i = 0; i < record.num_values(); ++i) {
    out->emplace_back(record.schema()->field(i).name, record.value(i));
  }
}

// ---------------------------------------------------------------------------
// TriggerEventSource

Result<std::unique_ptr<TriggerEventSource>> TriggerEventSource::Create(
    Database* db, EventSink sink, const std::string& table,
    const std::string& trigger_name, const std::string& event_type) {
  auto source = std::unique_ptr<TriggerEventSource>(
      new TriggerEventSource(db, trigger_name));
  TriggerEventSource* raw = source.get();
  TriggerDef def;
  def.name = trigger_name;
  def.table = table;
  def.timing = TriggerTiming::kAfter;
  def.ops = kDmlInsert | kDmlUpdate | kDmlDelete;
  def.action = [raw, sink = std::move(sink),
                event_type](const TriggerEvent& trigger_event) {
    Event event;
    event.id = NextEventId();
    event.type = event_type;
    event.source = "trigger:" + trigger_event.table_name;
    event.timestamp = trigger_event.timestamp;
    event.Set("op", Value::String(std::string(
                        DmlOpToString(trigger_event.op))));
    event.Set("row_id",
              Value::Int64(static_cast<int64_t>(trigger_event.row_id)));
    const Record* row = trigger_event.op == kDmlDelete
                            ? trigger_event.old_row
                            : trigger_event.new_row;
    if (row != nullptr) RecordToAttributes(*row, &event.attributes);
    ++raw->captured_;
    sink(event);
    return Status::OK();
  };
  EDADB_RETURN_IF_ERROR(db->CreateTrigger(std::move(def)));
  return source;
}

TriggerEventSource::~TriggerEventSource() {
  EDADB_IGNORE_STATUS(db_->DropTrigger(trigger_name_),
                      "destructor cleanup; the trigger may already be gone "
                      "when the database shut down first");
}

// ---------------------------------------------------------------------------
// JournalEventSource

JournalEventSource::JournalEventSource(Database* db, EventSink sink,
                                       const std::string& table,
                                       const std::string& event_type,
                                       Lsn start_lsn)
    : clock_(db->clock()),
      sink_(std::move(sink)),
      event_type_(event_type),
      miner_(db,
             [&table] {
               JournalMinerOptions options;
               if (!table.empty()) options.tables.insert(table);
               return options;
             }(),
             start_lsn) {}

Result<size_t> JournalEventSource::Poll() {
  return miner_.Poll([this](const ChangeEvent& change) {
    Event event;
    event.id = NextEventId();
    event.type = event_type_;
    event.source = "journal:" + change.table_name;
    event.timestamp = clock_->NowMicros();
    event.Set("op",
              Value::String(std::string(LogRecordTypeToString(change.op))));
    event.Set("row_id", Value::Int64(static_cast<int64_t>(change.row_id)));
    event.Set("lsn", Value::Int64(static_cast<int64_t>(change.lsn)));
    const std::optional<Record>& row =
        change.op == LogRecordType::kDelete ? change.before : change.after;
    if (row.has_value()) RecordToAttributes(*row, &event.attributes);
    ++captured_;
    sink_(event);
  });
}

// ---------------------------------------------------------------------------
// QueryEventSource

QueryEventSource::QueryEventSource(Database* db, EventSink sink, Query query,
                                   std::vector<std::string> key_columns,
                                   const std::string& event_type) {
  Clock* clock = db->clock();
  watcher_ = std::make_unique<ContinuousQueryWatcher>(
      db, std::move(query), std::move(key_columns),
      [this, sink = std::move(sink), event_type,
       clock](const RowChange& change) {
        Event event;
        event.id = NextEventId();
        event.type = event_type;
        event.source = "query";
        event.timestamp = clock->NowMicros();
        event.Set("op", Value::String(std::string(
                            RowChangeKindToString(change.kind))));
        const std::optional<Record>& row =
            change.kind == RowChangeKind::kRemoved ? change.before
                                                   : change.after;
        if (row.has_value()) RecordToAttributes(*row, &event.attributes);
        ++captured_;
        sink(event);
      });
}

Result<size_t> QueryEventSource::Poll() { return watcher_->Poll(); }

// ---------------------------------------------------------------------------
// PushEventSource

void PushEventSource::Push(Event event, Clock* clock) {
  if (event.id == 0) event.id = NextEventId();
  if (event.source.empty()) event.source = source_name_;
  if (event.timestamp == 0) {
    Clock* c = clock != nullptr ? clock : SystemClock::Default();
    event.timestamp = c->NowMicros();
  }
  ++captured_;
  sink_(event);
}

}  // namespace edadb
