#ifndef EDADB_STORAGE_BTREE_H_
#define EDADB_STORAGE_BTREE_H_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "storage/log_record.h"
#include "value/value.h"

namespace edadb {

/// In-memory B+tree from Value keys to row-id postings, ordered by
/// Value::CompareTotalOrder. Backs table secondary indexes (point and
/// range lookups for queries, triggers and queue selectors).
///
/// Deletions remove entries but do not rebalance; pages may run sparse
/// under heavy delete workloads, which is an accepted trade-off for an
/// in-memory index rebuilt on recovery.
///
/// Thread-compatible: external synchronization (the owning Database's
/// lock) is required for writes concurrent with reads.
class BTreeIndex {
 public:
  /// `unique` enforces at most one row per key.
  explicit BTreeIndex(bool unique);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  /// Adds (key, row). AlreadyExists when a unique index already holds a
  /// different row under `key`; inserting the same (key, row) twice is
  /// idempotent.
  EDADB_NODISCARD Status Insert(const Value& key, RowId row);

  /// Removes (key, row); returns true when it was present.
  bool Erase(const Value& key, RowId row);

  /// All rows filed under `key`.
  std::vector<RowId> Lookup(const Value& key) const;

  /// Visits entries with lo <= key <= hi in key order (open bound when
  /// nullopt, exclusivity per the flags). Return false from `fn` to stop.
  void Scan(const std::optional<Value>& lo, bool lo_inclusive,
            const std::optional<Value>& hi, bool hi_inclusive,
            const std::function<bool(const Value& key, RowId row)>& fn) const;

  /// Number of (key, row) entries.
  size_t size() const { return size_; }
  bool unique() const { return unique_; }

  /// Tree height (1 = a single leaf); exposed for tests.
  int height() const;

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertRecursive(Node* node, const Value& key, RowId row,
                              Status* status);

  std::unique_ptr<Node> root_;
  bool unique_;
  size_t size_ = 0;
};

}  // namespace edadb

#endif  // EDADB_STORAGE_BTREE_H_
