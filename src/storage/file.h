#ifndef EDADB_STORAGE_FILE_H_
#define EDADB_STORAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace edadb {

/// Append-only file handle used by the write-ahead log and checkpoints.
/// Not thread-safe; callers serialize.
class WritableFile {
 public:
  /// Opens for appending, creating the file if needed.
  EDADB_NODISCARD static Result<std::unique_ptr<WritableFile>> Open(const std::string& path);

  ~WritableFile();

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  EDADB_NODISCARD Status Append(std::string_view data);

  /// Durability barrier (fdatasync).
  EDADB_NODISCARD Status Sync();

  EDADB_NODISCARD Status Close();

  /// Shrinks the file to `size` bytes (used to drop a torn WAL tail).
  EDADB_NODISCARD Status Truncate(uint64_t size);

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(std::string path, int fd, uint64_t size)
      : path_(std::move(path)), fd_(fd), size_(size) {}

  std::string path_;
  int fd_;
  uint64_t size_;
};

/// Positional (pread) reader; safe to use while a WritableFile appends to
/// the same path, which is how the journal miner tails the live WAL.
class RandomAccessFile {
 public:
  EDADB_NODISCARD static Result<std::unique_ptr<RandomAccessFile>> Open(
      const std::string& path);

  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads up to `n` bytes at `offset` into `out` (resized to the bytes
  /// actually read; short reads at EOF are not errors).
  EDADB_NODISCARD Status Read(uint64_t offset, size_t n, std::string* out) const;

  /// Current file size (re-stat'ed, so it observes concurrent appends).
  EDADB_NODISCARD Result<uint64_t> Size() const;

  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(std::string path, int fd)
      : path_(std::move(path)), fd_(fd) {}

  std::string path_;
  int fd_;
};

/// Small filesystem helpers (wrappers over std::filesystem that return
/// Status instead of throwing).
EDADB_NODISCARD Status CreateDirIfMissing(const std::string& dir);
EDADB_NODISCARD Status RemoveFile(const std::string& path);
EDADB_NODISCARD Result<std::vector<std::string>> ListDir(const std::string& dir);
bool FileExists(const std::string& path);
EDADB_NODISCARD Result<std::string> ReadFileToString(const std::string& path);
EDADB_NODISCARD Status WriteStringToFile(const std::string& path, std::string_view data,
                         bool sync);

}  // namespace edadb

#endif  // EDADB_STORAGE_FILE_H_
