#include "storage/heap.h"

namespace edadb {

RowId TableHeap::Insert(std::string row_bytes) {
  const RowId id = next_row_id_++;
  rows_.emplace(id, std::move(row_bytes));
  return id;
}

Status TableHeap::InsertWithId(RowId id, std::string row_bytes) {
  auto [it, inserted] = rows_.emplace(id, std::move(row_bytes));
  if (!inserted) {
    return Status::AlreadyExists("row id " + std::to_string(id) +
                                 " already present");
  }
  if (id >= next_row_id_) next_row_id_ = id + 1;
  return Status::OK();
}

const std::string* TableHeap::Get(RowId id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

Status TableHeap::Update(RowId id, std::string row_bytes) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("row id " + std::to_string(id));
  }
  it->second = std::move(row_bytes);
  return Status::OK();
}

Status TableHeap::Delete(RowId id) {
  if (rows_.erase(id) == 0) {
    return Status::NotFound("row id " + std::to_string(id));
  }
  return Status::OK();
}

void TableHeap::Scan(
    const std::function<bool(RowId, const std::string&)>& fn) const {
  for (const auto& [id, bytes] : rows_) {
    if (!fn(id, bytes)) return;
  }
}

}  // namespace edadb
