#include "storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace edadb {

namespace {

metrics::Counter* AppendRecordsCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("wal.append.records");
  return c;
}

metrics::Counter* AppendBytesCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("wal.append.bytes");
  return c;
}

metrics::Histogram* AppendLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("wal.append.latency_us");
  return h;
}

metrics::Histogram* SyncLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("wal.sync.latency_us");
  return h;
}

metrics::Histogram* GroupCommitBytes() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("wal.group_commit.bytes");
  return h;
}

/// Builds the on-disk framing for one record.
std::string FrameRecord(uint8_t type, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  const uint32_t crc = MaskCrc(Crc32c(body));
  std::string frame;
  frame.reserve(kWalHeaderSize + payload.size());
  PutFixed32(&frame, crc);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(body);
  return frame;
}

enum class ParseResult { kOk, kIncomplete, kCorrupt };

/// Parses one framed record from `data` at `offset`.
ParseResult ParseRecord(std::string_view data, size_t offset, uint8_t* type,
                        std::string* payload, size_t* record_size) {
  if (offset + kWalHeaderSize > data.size()) return ParseResult::kIncomplete;
  std::string_view header = data.substr(offset, kWalHeaderSize);
  uint32_t stored_crc, len;
  GetFixed32(&header, &stored_crc);
  GetFixed32(&header, &len);
  if (offset + kWalHeaderSize + len > data.size()) {
    return ParseResult::kIncomplete;
  }
  const std::string_view body = data.substr(offset + 8, 1 + len);
  if (MaskCrc(Crc32c(body)) != stored_crc) return ParseResult::kCorrupt;
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body.substr(1));
  *record_size = kWalHeaderSize + len;
  return ParseResult::kOk;
}

}  // namespace

Lsn ParseWalSegmentName(std::string_view name) {
  if (!StartsWith(name, "wal-") || !EndsWith(name, ".log")) {
    return kInvalidLsn;
  }
  const std::string digits(name.substr(4, name.size() - 8));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return kInvalidLsn;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::string WalSegmentName(Lsn start_lsn) {
  return StringPrintf("wal-%020" PRIu64 ".log", start_lsn);
}

// ---------------------------------------------------------------------------
// WalWriter

Result<std::unique_ptr<WalWriter>> WalWriter::Open(WalOptions options) {
  EDADB_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(std::move(options)));

  // Registered before either return path below; both accessors are
  // plain atomics / own their locks, so the collector is safe whenever
  // a snapshot fires. Process-wide metric: multiple writers sum.
  WalWriter* raw = writer.get();
  writer->metrics_collector_ = metrics::Registry::Default()->RegisterCollector(
      [raw](std::vector<metrics::MetricSnapshot>* out) {
        metrics::MetricSnapshot lag;
        lag.name = "wal.durable_lag_bytes";
        lag.kind = metrics::MetricKind::kGauge;
        lag.value = static_cast<int64_t>(raw->next_lsn() - raw->durable_lsn());
        out->push_back(std::move(lag));
      });

  EDADB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         ListDir(writer->options_.dir));
  Lsn last_start = kInvalidLsn;
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start == kInvalidLsn) continue;
    if (last_start == kInvalidLsn || start > last_start) last_start = start;
  }

  // Open is single-threaded (no concurrent appender can exist yet); the
  // locks are taken only to satisfy the guarded-member annotations.
  if (last_start == kInvalidLsn) {
    MutexLock lock(&writer->wal_mu_);
    EDADB_RETURN_IF_ERROR(writer->OpenNewSegment(0));
    return writer;
  }

  // Validate the newest segment and truncate any torn tail.
  const std::string path =
      writer->options_.dir + "/" + WalSegmentName(last_start);
  EDADB_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  size_t valid = 0;
  while (valid < data.size()) {
    uint8_t type;
    std::string payload;
    size_t record_size;
    const ParseResult pr =
        ParseRecord(data, valid, &type, &payload, &record_size);
    if (pr != ParseResult::kOk) break;
    valid += record_size;
  }
  {
    MutexLock lock(&writer->wal_mu_);
    EDADB_ASSIGN_OR_RETURN(writer->current_, WritableFile::Open(path));
    if (valid < data.size()) {
      EDADB_RETURN_IF_ERROR(writer->current_->Truncate(valid));
    }
    writer->current_segment_start_ = last_start;
    writer->next_lsn_.store(last_start + valid, std::memory_order_release);
  }
  {
    // Everything that survived recovery is on stable media.
    MutexLock lock(&writer->sync_mu_);
    writer->durable_lsn_ = last_start + valid;
  }
  return writer;
}

Status WalWriter::OpenNewSegment(Lsn start_lsn) {
  FAILPOINT("wal.roll");
  if (current_ != nullptr) {
    EDADB_RETURN_IF_ERROR(current_->Sync());
    EDADB_RETURN_IF_ERROR(current_->Close());
  }
  const std::string path = options_.dir + "/" + WalSegmentName(start_lsn);
  EDADB_ASSIGN_OR_RETURN(current_, WritableFile::Open(path));
  current_segment_start_ = start_lsn;
  next_lsn_.store(start_lsn, std::memory_order_release);
  return Status::OK();
}

Result<Lsn> WalWriter::Append(uint8_t type, std::string_view payload) {
  const std::vector<WalRecordRef> one = {{type, payload}};
  EDADB_ASSIGN_OR_RETURN(const WalBatchResult batch, AppendBatch(one));
  return batch.first_lsn;
}

Result<WalBatchResult> WalWriter::AppendBatch(
    const std::vector<WalRecordRef>& records) {
  metrics::LatencyScope latency(AppendLatency());
  WalBatchResult result;
  {
    MutexLock lock(&wal_mu_);
    if (current_ == nullptr) {
      return Status::FailedPrecondition("WAL writer is closed");
    }
    FAILPOINT("wal.append.before");
    result.first_lsn = next_lsn_.load(std::memory_order_acquire);
    result.end_lsn = result.first_lsn;
    if (records.empty()) return result;

    // Frame the whole batch into one buffer so the file sees one
    // write(2) per segment touched; `tail` tracks the LSN the buffered
    // bytes extend to, and next_lsn_ only advances when they land.
    std::string buffer;
    Lsn tail = result.first_lsn;
    for (const WalRecordRef& record : records) {
      if (tail - current_segment_start_ >= options_.segment_size_bytes) {
        if (!buffer.empty()) {
          EDADB_RETURN_IF_ERROR(current_->Append(buffer));
          next_lsn_.store(tail, std::memory_order_release);
          dirty_ = true;
          buffer.clear();
        }
        EDADB_RETURN_IF_ERROR(OpenNewSegment(tail));
      }
      const std::string frame = FrameRecord(record.type, record.payload);
#if EDADB_FAILPOINTS_ENABLED
      // Torn write: persist only the first `arg` bytes of this frame —
      // the on-disk shape a power cut mid-write leaves behind — then
      // fail or "die". Custom site because the prefix (and every frame
      // before it in the batch) must land before Crash().
      if (failpoint::internal::AnyArmed()) {
        const failpoint::FireResult fp = failpoint::Fire("wal.append.torn");
        if (fp.fired) {
          if (!buffer.empty()) {
            EDADB_RETURN_IF_ERROR(current_->Append(buffer));
            next_lsn_.store(tail, std::memory_order_release);
            dirty_ = true;
          }
          const size_t torn =
              std::min(static_cast<size_t>(fp.arg), frame.size());
          EDADB_RETURN_IF_ERROR(
              current_->Append(std::string_view(frame).substr(0, torn)));
          if (fp.kind == failpoint::ActionKind::kCrash) {
            failpoint::Crash("wal.append.torn");
          }
          return fp.status.ok() ? Status::IOError("injected torn WAL append")
                                : fp.status;
        }
      }
#endif
      buffer.append(frame);
      tail += frame.size();
    }
    if (!buffer.empty()) {
      EDADB_RETURN_IF_ERROR(current_->Append(buffer));
      next_lsn_.store(tail, std::memory_order_release);
      dirty_ = true;
    }
    result.end_lsn = tail;
    AppendRecordsCounter()->Add(records.size());
    AppendBytesCounter()->Add(tail - result.first_lsn);
    FAILPOINT("wal.append.after");
  }
  // Outside wal_mu_: SyncTo's leader re-acquires it for the fdatasync.
  if (options_.sync_policy == WalSyncPolicy::kEveryAppend) {
    EDADB_RETURN_IF_ERROR(SyncTo(result.end_lsn));
  }
  return result;
}

Status WalWriter::Sync() {
  return SyncTo(next_lsn_.load(std::memory_order_acquire));
}

Status WalWriter::SyncTo(Lsn target) {
  // Fires regardless of sync policy, in the calling thread (not just
  // the elected leader): an injected failure models the device dying,
  // which no policy can mask.
  FAILPOINT("wal.sync");
  if (options_.sync_policy == WalSyncPolicy::kNever) {
    // No durability promised; the barrier degenerates to the failpoint
    // below so torture schedules reach the leader site under kNever.
    FAILPOINT("wal.group_commit.leader");
    return Status::OK();
  }
  for (;;) {
    {
      MutexLock lock(&sync_mu_);
      if (durable_lsn_ >= target) return Status::OK();
      if (sync_in_flight_) {
        // Follower: an elected leader is syncing. Its fdatasync may
        // already cover `target` (it snapshots next_lsn_ after taking
        // wal_mu_); re-check durable_lsn_ when it finishes.
        sync_cv_.Wait(&sync_mu_);
        continue;
      }
      sync_in_flight_ = true;  // This thread is the leader.
    }

#if EDADB_FAILPOINTS_ENABLED
    // Leader boundary. Custom site (not FAILPOINT) because a crash or
    // injected error must first hand leadership back and wake the
    // followers — otherwise they would wait forever on a dead leader.
    if (failpoint::internal::AnyArmed()) {
      const failpoint::FireResult fp =
          failpoint::Fire("wal.group_commit.leader");
      if (fp.fired &&
          (fp.kind == failpoint::ActionKind::kCrash || !fp.status.ok())) {
        {
          MutexLock lock(&sync_mu_);
          sync_in_flight_ = false;
        }
        sync_cv_.SignalAll();
        if (fp.kind == failpoint::ActionKind::kCrash) {
          failpoint::Crash("wal.group_commit.leader");
        }
        return fp.status;
      }
      // Fired with an OK status (or a delay): fall through to the real
      // sync below.
    }
#endif

    // Leader: sync everything appended so far — including records from
    // committers that arrived after this one (their sync then returns
    // without touching the file).
    Status sync_status;
    Lsn synced_end = 0;
    {
      MutexLock lock(&wal_mu_);
      synced_end = next_lsn_.load(std::memory_order_acquire);
      if (current_ == nullptr) {
        sync_status = Status::FailedPrecondition("WAL writer is closed");
      } else if (dirty_) {
        metrics::LatencyScope sync_latency(SyncLatency());
        sync_status = current_->Sync();
        if (sync_status.ok()) dirty_ = false;
      }
    }
    {
      MutexLock lock(&sync_mu_);
      sync_in_flight_ = false;
      // On failure the watermark stays put: every waiter re-elects
      // itself leader and retries (or propagates the error).
      if (sync_status.ok() && synced_end > durable_lsn_) {
        // How many bytes this one fdatasync made durable — the group
        // commit batching factor.
        GroupCommitBytes()->Record(synced_end - durable_lsn_);
        durable_lsn_ = synced_end;
      }
    }
    sync_cv_.SignalAll();
    EDADB_RETURN_IF_ERROR(sync_status);
    if (synced_end >= target) return Status::OK();
  }
}

Lsn WalWriter::durable_lsn() const {
  if (options_.sync_policy == WalSyncPolicy::kNever) {
    return next_lsn_.load(std::memory_order_acquire);
  }
  MutexLock lock(&sync_mu_);
  return durable_lsn_;
}

Status WalWriter::TruncateBefore(Lsn lsn) {
  FAILPOINT("wal.truncate_before");
  Lsn live_segment_start;
  {
    MutexLock lock(&wal_mu_);
    live_segment_start = current_segment_start_;
  }
  EDADB_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(options_.dir));
  std::vector<Lsn> starts;
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start != kInvalidLsn) starts.push_back(start);
  }
  std::sort(starts.begin(), starts.end());
  // A segment [start_i, start_{i+1}) may be deleted when its end <= lsn.
  for (size_t i = 0; i + 1 < starts.size(); ++i) {
    if (starts[i + 1] <= lsn && starts[i] != live_segment_start) {
      EDADB_RETURN_IF_ERROR(
          RemoveFile(options_.dir + "/" + WalSegmentName(starts[i])));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// WalCursor

WalCursor::WalCursor(std::string dir, Lsn start_lsn)
    : dir_(std::move(dir)), lsn_(start_lsn) {}

Status WalCursor::RefreshSegments() {
  EDADB_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  segments_.clear();
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start != kInvalidLsn) segments_.emplace(start, dir_ + "/" + name);
  }
  return Status::OK();
}

Result<bool> WalCursor::PositionFile() {
  if (file_ != nullptr && file_start_ != kInvalidLsn) {
    // Still inside the current segment?
    auto next = segments_.upper_bound(file_start_);
    const bool in_current =
        lsn_ >= file_start_ &&
        (next == segments_.end() || lsn_ < next->first);
    if (in_current) return true;
  }
  EDADB_RETURN_IF_ERROR(RefreshSegments());
  // Find the segment with the greatest start <= lsn_.
  auto it = segments_.upper_bound(lsn_);
  if (it == segments_.begin()) return false;
  --it;
  // Verify lsn_ falls before the next segment start (if any).
  auto next = std::next(it);
  if (next != segments_.end() && lsn_ >= next->first) {
    return Status::Corruption(
        StringPrintf("WAL cursor lsn %" PRIu64 " falls in a segment gap",
                     lsn_));
  }
  if (file_ == nullptr || file_start_ != it->first) {
    EDADB_ASSIGN_OR_RETURN(file_, RandomAccessFile::Open(it->second));
    file_start_ = it->first;
  }
  return true;
}

Result<bool> WalCursor::Next(WalEntry* out) {
  for (;;) {
    EDADB_ASSIGN_OR_RETURN(bool positioned, PositionFile());
    if (!positioned) return false;

    const uint64_t offset = lsn_ - file_start_;
    std::string header;
    EDADB_RETURN_IF_ERROR(file_->Read(offset, kWalHeaderSize, &header));
    if (header.size() < kWalHeaderSize) {
      // At (or past) the end of this segment. If a following segment
      // starts exactly at the segment's end and we've consumed this one
      // fully, roll forward; otherwise we are caught up.
      EDADB_RETURN_IF_ERROR(RefreshSegments());
      auto next = segments_.upper_bound(file_start_);
      if (next != segments_.end() && header.empty() && lsn_ == next->first) {
        file_.reset();
        file_start_ = kInvalidLsn;
        continue;
      }
      return false;
    }
    std::string_view hv = header;
    uint32_t stored_crc, len;
    GetFixed32(&hv, &stored_crc);
    GetFixed32(&hv, &len);
    std::string body;
    EDADB_RETURN_IF_ERROR(file_->Read(offset + 8, 1 + len, &body));
    if (body.size() < 1 + len) {
      // Record still being appended by the writer.
      return false;
    }
    if (MaskCrc(Crc32c(body)) != stored_crc) {
      // Torn tail of the live segment is retried later; anything else is
      // real corruption.
      EDADB_RETURN_IF_ERROR(RefreshSegments());
      const bool is_last_segment =
          !segments_.empty() && file_start_ == segments_.rbegin()->first;
      if (is_last_segment) return false;
      return Status::Corruption(
          StringPrintf("bad WAL record crc at lsn %" PRIu64, lsn_));
    }
    out->lsn = lsn_;
    out->type = static_cast<uint8_t>(body[0]);
    out->payload = body.substr(1);
    lsn_ += kWalHeaderSize + len;
    return true;
  }
}

}  // namespace edadb
