#include "storage/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/string_util.h"

namespace edadb {

namespace {

/// Builds the on-disk framing for one record.
std::string FrameRecord(uint8_t type, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  const uint32_t crc = MaskCrc(Crc32c(body));
  std::string frame;
  frame.reserve(kWalHeaderSize + payload.size());
  PutFixed32(&frame, crc);
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(body);
  return frame;
}

enum class ParseResult { kOk, kIncomplete, kCorrupt };

/// Parses one framed record from `data` at `offset`.
ParseResult ParseRecord(std::string_view data, size_t offset, uint8_t* type,
                        std::string* payload, size_t* record_size) {
  if (offset + kWalHeaderSize > data.size()) return ParseResult::kIncomplete;
  std::string_view header = data.substr(offset, kWalHeaderSize);
  uint32_t stored_crc, len;
  GetFixed32(&header, &stored_crc);
  GetFixed32(&header, &len);
  if (offset + kWalHeaderSize + len > data.size()) {
    return ParseResult::kIncomplete;
  }
  const std::string_view body = data.substr(offset + 8, 1 + len);
  if (MaskCrc(Crc32c(body)) != stored_crc) return ParseResult::kCorrupt;
  *type = static_cast<uint8_t>(body[0]);
  payload->assign(body.substr(1));
  *record_size = kWalHeaderSize + len;
  return ParseResult::kOk;
}

}  // namespace

Lsn ParseWalSegmentName(std::string_view name) {
  if (!StartsWith(name, "wal-") || !EndsWith(name, ".log")) {
    return kInvalidLsn;
  }
  const std::string digits(name.substr(4, name.size() - 8));
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return kInvalidLsn;
  }
  return std::strtoull(digits.c_str(), nullptr, 10);
}

std::string WalSegmentName(Lsn start_lsn) {
  return StringPrintf("wal-%020" PRIu64 ".log", start_lsn);
}

// ---------------------------------------------------------------------------
// WalWriter

Result<std::unique_ptr<WalWriter>> WalWriter::Open(WalOptions options) {
  EDADB_RETURN_IF_ERROR(CreateDirIfMissing(options.dir));
  auto writer = std::unique_ptr<WalWriter>(new WalWriter(std::move(options)));

  EDADB_ASSIGN_OR_RETURN(std::vector<std::string> names,
                         ListDir(writer->options_.dir));
  Lsn last_start = kInvalidLsn;
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start == kInvalidLsn) continue;
    if (last_start == kInvalidLsn || start > last_start) last_start = start;
  }

  if (last_start == kInvalidLsn) {
    EDADB_RETURN_IF_ERROR(writer->OpenNewSegment(0));
    return writer;
  }

  // Validate the newest segment and truncate any torn tail.
  const std::string path =
      writer->options_.dir + "/" + WalSegmentName(last_start);
  EDADB_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  size_t valid = 0;
  while (valid < data.size()) {
    uint8_t type;
    std::string payload;
    size_t record_size;
    const ParseResult pr =
        ParseRecord(data, valid, &type, &payload, &record_size);
    if (pr != ParseResult::kOk) break;
    valid += record_size;
  }
  EDADB_ASSIGN_OR_RETURN(writer->current_, WritableFile::Open(path));
  if (valid < data.size()) {
    EDADB_RETURN_IF_ERROR(writer->current_->Truncate(valid));
  }
  writer->current_segment_start_ = last_start;
  writer->next_lsn_ = last_start + valid;
  return writer;
}

Status WalWriter::OpenNewSegment(Lsn start_lsn) {
  FAILPOINT("wal.roll");
  if (current_ != nullptr) {
    EDADB_RETURN_IF_ERROR(current_->Sync());
    EDADB_RETURN_IF_ERROR(current_->Close());
  }
  const std::string path = options_.dir + "/" + WalSegmentName(start_lsn);
  EDADB_ASSIGN_OR_RETURN(current_, WritableFile::Open(path));
  current_segment_start_ = start_lsn;
  next_lsn_ = start_lsn;
  return Status::OK();
}

Result<Lsn> WalWriter::Append(uint8_t type, std::string_view payload) {
  if (current_ == nullptr) {
    return Status::FailedPrecondition("WAL writer is closed");
  }
  FAILPOINT("wal.append.before");
  if (next_lsn_ - current_segment_start_ >= options_.segment_size_bytes) {
    EDADB_RETURN_IF_ERROR(OpenNewSegment(next_lsn_));
  }
  const Lsn lsn = next_lsn_;
  const std::string frame = FrameRecord(type, payload);
#if EDADB_FAILPOINTS_ENABLED
  // Torn write: persist only the first `arg` bytes of the frame — the
  // on-disk shape a power cut mid-write leaves behind — then fail or
  // "die". Custom site because the prefix must land before Crash().
  if (failpoint::internal::AnyArmed()) {
    const failpoint::FireResult fp = failpoint::Fire("wal.append.torn");
    if (fp.fired) {
      const size_t torn = std::min(static_cast<size_t>(fp.arg), frame.size());
      EDADB_RETURN_IF_ERROR(
          current_->Append(std::string_view(frame).substr(0, torn)));
      if (fp.kind == failpoint::ActionKind::kCrash) {
        failpoint::Crash("wal.append.torn");
      }
      return fp.status.ok() ? Status::IOError("injected torn WAL append")
                            : fp.status;
    }
  }
#endif
  EDADB_RETURN_IF_ERROR(current_->Append(frame));
  next_lsn_ += frame.size();
  dirty_ = true;
  FAILPOINT("wal.append.after");
  if (options_.sync_policy == WalSyncPolicy::kEveryAppend) {
    EDADB_RETURN_IF_ERROR(Sync());
  }
  return lsn;
}

Status WalWriter::Sync() {
  // Fires regardless of sync policy: an injected failure models the
  // device dying, which no policy can mask.
  FAILPOINT("wal.sync");
  if (options_.sync_policy == WalSyncPolicy::kNever || !dirty_) {
    dirty_ = false;
    return Status::OK();
  }
  dirty_ = false;
  return current_->Sync();
}

Status WalWriter::TruncateBefore(Lsn lsn) {
  FAILPOINT("wal.truncate_before");
  EDADB_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(options_.dir));
  std::vector<Lsn> starts;
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start != kInvalidLsn) starts.push_back(start);
  }
  std::sort(starts.begin(), starts.end());
  // A segment [start_i, start_{i+1}) may be deleted when its end <= lsn.
  for (size_t i = 0; i + 1 < starts.size(); ++i) {
    if (starts[i + 1] <= lsn && starts[i] != current_segment_start_) {
      EDADB_RETURN_IF_ERROR(
          RemoveFile(options_.dir + "/" + WalSegmentName(starts[i])));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// WalCursor

WalCursor::WalCursor(std::string dir, Lsn start_lsn)
    : dir_(std::move(dir)), lsn_(start_lsn) {}

Status WalCursor::RefreshSegments() {
  EDADB_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  segments_.clear();
  for (const std::string& name : names) {
    const Lsn start = ParseWalSegmentName(name);
    if (start != kInvalidLsn) segments_.emplace(start, dir_ + "/" + name);
  }
  return Status::OK();
}

Result<bool> WalCursor::PositionFile() {
  if (file_ != nullptr && file_start_ != kInvalidLsn) {
    // Still inside the current segment?
    auto next = segments_.upper_bound(file_start_);
    const bool in_current =
        lsn_ >= file_start_ &&
        (next == segments_.end() || lsn_ < next->first);
    if (in_current) return true;
  }
  EDADB_RETURN_IF_ERROR(RefreshSegments());
  // Find the segment with the greatest start <= lsn_.
  auto it = segments_.upper_bound(lsn_);
  if (it == segments_.begin()) return false;
  --it;
  // Verify lsn_ falls before the next segment start (if any).
  auto next = std::next(it);
  if (next != segments_.end() && lsn_ >= next->first) {
    return Status::Corruption(
        StringPrintf("WAL cursor lsn %" PRIu64 " falls in a segment gap",
                     lsn_));
  }
  if (file_ == nullptr || file_start_ != it->first) {
    EDADB_ASSIGN_OR_RETURN(file_, RandomAccessFile::Open(it->second));
    file_start_ = it->first;
  }
  return true;
}

Result<bool> WalCursor::Next(WalEntry* out) {
  for (;;) {
    EDADB_ASSIGN_OR_RETURN(bool positioned, PositionFile());
    if (!positioned) return false;

    const uint64_t offset = lsn_ - file_start_;
    std::string header;
    EDADB_RETURN_IF_ERROR(file_->Read(offset, kWalHeaderSize, &header));
    if (header.size() < kWalHeaderSize) {
      // At (or past) the end of this segment. If a following segment
      // starts exactly at the segment's end and we've consumed this one
      // fully, roll forward; otherwise we are caught up.
      EDADB_RETURN_IF_ERROR(RefreshSegments());
      auto next = segments_.upper_bound(file_start_);
      if (next != segments_.end() && header.empty() && lsn_ == next->first) {
        file_.reset();
        file_start_ = kInvalidLsn;
        continue;
      }
      return false;
    }
    std::string_view hv = header;
    uint32_t stored_crc, len;
    GetFixed32(&hv, &stored_crc);
    GetFixed32(&hv, &len);
    std::string body;
    EDADB_RETURN_IF_ERROR(file_->Read(offset + 8, 1 + len, &body));
    if (body.size() < 1 + len) {
      // Record still being appended by the writer.
      return false;
    }
    if (MaskCrc(Crc32c(body)) != stored_crc) {
      // Torn tail of the live segment is retried later; anything else is
      // real corruption.
      EDADB_RETURN_IF_ERROR(RefreshSegments());
      const bool is_last_segment =
          !segments_.empty() && file_start_ == segments_.rbegin()->first;
      if (is_last_segment) return false;
      return Status::Corruption(
          StringPrintf("bad WAL record crc at lsn %" PRIu64, lsn_));
    }
    out->lsn = lsn_;
    out->type = static_cast<uint8_t>(body[0]);
    out->payload = body.substr(1);
    lsn_ += kWalHeaderSize + len;
    return true;
  }
}

}  // namespace edadb
