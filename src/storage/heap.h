#ifndef EDADB_STORAGE_HEAP_H_
#define EDADB_STORAGE_HEAP_H_

#include <functional>
#include <map>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "storage/log_record.h"

namespace edadb {

/// In-memory table heap: row-id → encoded row bytes. Row ids are
/// monotonically assigned and never reused, so journal records and queue
/// message ids stay unambiguous. Durability comes from the WAL +
/// checkpoints, not from the heap itself.
class TableHeap {
 public:
  TableHeap() = default;

  TableHeap(const TableHeap&) = delete;
  TableHeap& operator=(const TableHeap&) = delete;

  /// Inserts a row under a fresh id.
  RowId Insert(std::string row_bytes);

  /// Reserves and returns a fresh row id without inserting (transactions
  /// assign ids at operation time but apply at commit).
  RowId AllocateRowId() { return next_row_id_++; }

  /// Inserts under a caller-chosen id (recovery replay). Advances the
  /// id allocator past `id`.
  EDADB_NODISCARD Status InsertWithId(RowId id, std::string row_bytes);

  /// Borrowed pointer to the row bytes, or nullptr when absent.
  const std::string* Get(RowId id) const;

  EDADB_NODISCARD Status Update(RowId id, std::string row_bytes);
  EDADB_NODISCARD Status Delete(RowId id);

  /// Visits live rows in id order; return false to stop.
  void Scan(const std::function<bool(RowId, const std::string&)>& fn) const;

  size_t size() const { return rows_.size(); }
  RowId next_row_id() const { return next_row_id_; }
  void set_next_row_id(RowId id) { next_row_id_ = id; }

 private:
  std::map<RowId, std::string> rows_;
  RowId next_row_id_ = 1;
};

}  // namespace edadb

#endif  // EDADB_STORAGE_HEAP_H_
