#include "storage/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/failpoint.h"

namespace edadb {

namespace {
Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}
}  // namespace

Result<std::unique_ptr<WritableFile>> WritableFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = ErrnoStatus("fstat " + path);
    ::close(fd);
    return s;
  }
  return std::unique_ptr<WritableFile>(
      new WritableFile(path, fd, static_cast<uint64_t>(st.st_size)));
}

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WritableFile::Append(std::string_view data) {
  std::string_view to_write = data;
  bool injected = false;
  Status injected_status;
  bool injected_crash = false;
#if EDADB_FAILPOINTS_ENABLED
  // Short write: only the first `arg` bytes reach the file before the
  // "device" fails — the prefix is persisted first so recovery sees it.
  if (failpoint::internal::AnyArmed()) {
    const failpoint::FireResult fp = failpoint::Fire("file.append.short");
    if (fp.fired) {
      injected = true;
      injected_crash = (fp.kind == failpoint::ActionKind::kCrash);
      injected_status = fp.status.ok()
                            ? Status::IOError("injected short write")
                            : fp.status;
      to_write = data.substr(
          0, std::min(static_cast<size_t>(fp.arg), data.size()));
    }
  }
#endif
  const char* p = to_write.data();
  size_t remaining = to_write.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write " + path_);
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  size_ += to_write.size();
  if (injected) {
    if (injected_crash) failpoint::Crash("file.append.short");
    return injected_status;
  }
  return Status::OK();
}

Status WritableFile::Sync() {
  FAILPOINT("file.sync");
  if (::fdatasync(fd_) != 0) return ErrnoStatus("fdatasync " + path_);
  return Status::OK();
}

Status WritableFile::Close() {
  if (fd_ >= 0) {
    if (::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close " + path_);
    }
    fd_ = -1;
  }
  return Status::OK();
}

Status WritableFile::Truncate(uint64_t size) {
  FAILPOINT("file.truncate");
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("ftruncate " + path_);
  }
  // O_APPEND writes always go to the (new) end; track it.
  size_ = size;
  return Status::OK();
}

Result<std::unique_ptr<RandomAccessFile>> RandomAccessFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open " + path);
  return std::unique_ptr<RandomAccessFile>(new RandomAccessFile(path, fd));
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status RandomAccessFile::Read(uint64_t offset, size_t n,
                              std::string* out) const {
  out->resize(n);
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::pread(fd_, out->data() + done, n - done,
                              static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("pread " + path_);
    }
    if (r == 0) break;  // EOF.
    done += static_cast<size_t>(r);
  }
  out->resize(done);
  return Status::OK();
}

Result<uint64_t> RandomAccessFile::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return ErrnoStatus("fstat " + path_);
  return static_cast<uint64_t>(st.st_size);
}

Status CreateDirIfMissing(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IOError("mkdir " + dir + ": " + ec.message());
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::remove(path, ec) || ec) {
    return Status::IOError("remove " + path +
                           (ec ? ": " + ec.message() : ": not found"));
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> names;
  for (auto it = std::filesystem::directory_iterator(dir, ec);
       !ec && it != std::filesystem::directory_iterator(); it.increment(ec)) {
    names.push_back(it->path().filename().string());
  }
  if (ec) return Status::IOError("listdir " + dir + ": " + ec.message());
  return names;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec) && !ec;
}

Result<std::string> ReadFileToString(const std::string& path) {
  EDADB_ASSIGN_OR_RETURN(auto file, RandomAccessFile::Open(path));
  EDADB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string out;
  EDADB_RETURN_IF_ERROR(file->Read(0, size, &out));
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data,
                         bool sync) {
  // Write to a temp file and rename for atomicity.
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open " + tmp);
    const char* p = data.data();
    size_t remaining = data.size();
    while (remaining > 0) {
      const ssize_t n = ::write(fd, p, remaining);
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status s = ErrnoStatus("write " + tmp);
        ::close(fd);
        return s;
      }
      p += n;
      remaining -= static_cast<size_t>(n);
    }
    if (sync && ::fdatasync(fd) != 0) {
      const Status s = ErrnoStatus("fdatasync " + tmp);
      ::close(fd);
      return s;
    }
    if (::close(fd) != 0) return ErrnoStatus("close " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename " + tmp + ": " + ec.message());
  return Status::OK();
}

}  // namespace edadb
