#include "storage/log_record.h"

#include "common/coding.h"

namespace edadb {

std::string_view LogRecordTypeToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBeginTxn: return "BEGIN";
    case LogRecordType::kCommitTxn: return "COMMIT";
    case LogRecordType::kAbortTxn: return "ABORT";
    case LogRecordType::kInsert: return "INSERT";
    case LogRecordType::kUpdate: return "UPDATE";
    case LogRecordType::kDelete: return "DELETE";
    case LogRecordType::kCreateTable: return "CREATE_TABLE";
    case LogRecordType::kDropTable: return "DROP_TABLE";
    case LogRecordType::kCheckpoint: return "CHECKPOINT";
    case LogRecordType::kCreateIndex: return "CREATE_INDEX";
  }
  return "?";
}

void EncodeSchemaFields(const std::vector<Field>& fields, std::string* dst) {
  PutVarint32(dst, static_cast<uint32_t>(fields.size()));
  for (const Field& f : fields) {
    PutLengthPrefixed(dst, f.name);
    dst->push_back(static_cast<char>(f.type));
    dst->push_back(f.nullable ? 1 : 0);
  }
}

Result<std::vector<Field>> DecodeSchemaFields(std::string_view* input) {
  uint32_t count;
  if (!GetVarint32(input, &count)) {
    return Status::Corruption("schema: truncated field count");
  }
  std::vector<Field> fields;
  fields.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    if (!GetLengthPrefixed(input, &name) || input->size() < 2) {
      return Status::Corruption("schema: truncated field");
    }
    const auto type = static_cast<ValueType>((*input)[0]);
    const bool nullable = (*input)[1] != 0;
    input->remove_prefix(2);
    fields.emplace_back(std::string(name), type, nullable);
  }
  return fields;
}

std::string LogRecord::EncodePayload() const {
  std::string out;
  switch (type) {
    case LogRecordType::kBeginTxn:
    case LogRecordType::kCommitTxn:
    case LogRecordType::kAbortTxn:
      PutVarint64(&out, txn_id);
      break;
    case LogRecordType::kInsert:
      PutVarint64(&out, txn_id);
      PutVarint32(&out, table_id);
      PutVarint64(&out, row_id);
      PutLengthPrefixed(&out, new_row);
      break;
    case LogRecordType::kUpdate:
      PutVarint64(&out, txn_id);
      PutVarint32(&out, table_id);
      PutVarint64(&out, row_id);
      PutLengthPrefixed(&out, old_row);
      PutLengthPrefixed(&out, new_row);
      break;
    case LogRecordType::kDelete:
      PutVarint64(&out, txn_id);
      PutVarint32(&out, table_id);
      PutVarint64(&out, row_id);
      PutLengthPrefixed(&out, old_row);
      break;
    case LogRecordType::kCreateTable:
      PutVarint32(&out, table_id);
      PutLengthPrefixed(&out, table_name);
      EncodeSchemaFields(schema_fields, &out);
      break;
    case LogRecordType::kDropTable:
      PutVarint32(&out, table_id);
      PutLengthPrefixed(&out, table_name);
      break;
    case LogRecordType::kCheckpoint:
      PutVarint64(&out, checkpoint_lsn);
      PutLengthPrefixed(&out, snapshot_file);
      break;
    case LogRecordType::kCreateIndex:
      PutVarint32(&out, table_id);
      PutLengthPrefixed(&out, index_column);
      out.push_back(index_unique ? 1 : 0);
      break;
  }
  return out;
}

Result<LogRecord> LogRecord::Decode(uint8_t type, std::string_view payload) {
  LogRecord rec;
  rec.type = static_cast<LogRecordType>(type);
  auto corrupt = [&](const char* what) {
    return Status::Corruption(std::string("log record: truncated ") + what);
  };
  std::string_view in = payload;
  std::string_view piece;
  switch (rec.type) {
    case LogRecordType::kBeginTxn:
    case LogRecordType::kCommitTxn:
    case LogRecordType::kAbortTxn:
      if (!GetVarint64(&in, &rec.txn_id)) return corrupt("txn id");
      break;
    case LogRecordType::kInsert:
      if (!GetVarint64(&in, &rec.txn_id) ||
          !GetVarint32(&in, &rec.table_id) ||
          !GetVarint64(&in, &rec.row_id) || !GetLengthPrefixed(&in, &piece)) {
        return corrupt("insert");
      }
      rec.new_row = std::string(piece);
      break;
    case LogRecordType::kUpdate: {
      std::string_view old_piece, new_piece;
      if (!GetVarint64(&in, &rec.txn_id) ||
          !GetVarint32(&in, &rec.table_id) ||
          !GetVarint64(&in, &rec.row_id) ||
          !GetLengthPrefixed(&in, &old_piece) ||
          !GetLengthPrefixed(&in, &new_piece)) {
        return corrupt("update");
      }
      rec.old_row = std::string(old_piece);
      rec.new_row = std::string(new_piece);
      break;
    }
    case LogRecordType::kDelete:
      if (!GetVarint64(&in, &rec.txn_id) ||
          !GetVarint32(&in, &rec.table_id) ||
          !GetVarint64(&in, &rec.row_id) || !GetLengthPrefixed(&in, &piece)) {
        return corrupt("delete");
      }
      rec.old_row = std::string(piece);
      break;
    case LogRecordType::kCreateTable: {
      if (!GetVarint32(&in, &rec.table_id) || !GetLengthPrefixed(&in, &piece)) {
        return corrupt("create table");
      }
      rec.table_name = std::string(piece);
      EDADB_ASSIGN_OR_RETURN(rec.schema_fields, DecodeSchemaFields(&in));
      break;
    }
    case LogRecordType::kDropTable:
      if (!GetVarint32(&in, &rec.table_id) || !GetLengthPrefixed(&in, &piece)) {
        return corrupt("drop table");
      }
      rec.table_name = std::string(piece);
      break;
    case LogRecordType::kCheckpoint:
      if (!GetVarint64(&in, &rec.checkpoint_lsn) ||
          !GetLengthPrefixed(&in, &piece)) {
        return corrupt("checkpoint");
      }
      rec.snapshot_file = std::string(piece);
      break;
    case LogRecordType::kCreateIndex:
      if (!GetVarint32(&in, &rec.table_id) ||
          !GetLengthPrefixed(&in, &piece) || in.size() < 1) {
        return corrupt("create index");
      }
      rec.index_column = std::string(piece);
      rec.index_unique = in[0] != 0;
      in.remove_prefix(1);
      break;
    default:
      return Status::Corruption("unknown log record type " +
                                std::to_string(type));
  }
  if (!in.empty()) return corrupt("trailing bytes");
  return rec;
}

}  // namespace edadb
