#ifndef EDADB_STORAGE_LOG_RECORD_H_
#define EDADB_STORAGE_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "value/schema.h"

namespace edadb {

using TxnId = uint64_t;
using TableId = uint32_t;
using RowId = uint64_t;

constexpr TxnId kInvalidTxnId = 0;

/// WAL record types written by the database layer. These are the
/// "journal" the tutorial's §2.2.a.ii mines for events.
enum class LogRecordType : uint8_t {
  kBeginTxn = 1,
  kCommitTxn = 2,
  kAbortTxn = 3,
  kInsert = 4,
  kUpdate = 5,
  kDelete = 6,
  kCreateTable = 7,
  kDropTable = 8,
  kCheckpoint = 9,
  kCreateIndex = 10,
};

std::string_view LogRecordTypeToString(LogRecordType type);

/// A decoded WAL record. Which fields are meaningful depends on `type`:
///   Begin/Commit/Abort: txn_id
///   Insert:             txn_id, table_id, row_id, new_row
///   Update:             txn_id, table_id, row_id, old_row, new_row
///   Delete:             txn_id, table_id, row_id, old_row
///   CreateTable:        table_id, table_name, schema_fields
///   DropTable:          table_id, table_name
///   CreateIndex:        table_id, index_column, index_unique
///   Checkpoint:         checkpoint_lsn (start LSN for replay),
///                       snapshot_file
struct LogRecord {
  LogRecordType type = LogRecordType::kBeginTxn;
  TxnId txn_id = kInvalidTxnId;
  TableId table_id = 0;
  RowId row_id = 0;
  std::string old_row;  // Encoded with EncodeRow.
  std::string new_row;
  std::string table_name;
  std::vector<Field> schema_fields;
  uint64_t checkpoint_lsn = 0;
  std::string snapshot_file;
  std::string index_column;
  bool index_unique = false;

  /// Serializes the payload (the WAL frame's type byte carries `type`).
  std::string EncodePayload() const;

  /// Inverse of EncodePayload.
  EDADB_NODISCARD static Result<LogRecord> Decode(uint8_t type, std::string_view payload);
};

/// Schema field list codec shared with checkpoints.
void EncodeSchemaFields(const std::vector<Field>& fields, std::string* dst);
EDADB_NODISCARD Result<std::vector<Field>> DecodeSchemaFields(std::string_view* input);

}  // namespace edadb

#endif  // EDADB_STORAGE_LOG_RECORD_H_
