#ifndef EDADB_STORAGE_WAL_H_
#define EDADB_STORAGE_WAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "storage/file.h"

namespace edadb {

/// Log sequence number: the global byte offset of a record across all
/// WAL segments. LSN space is contiguous — each segment file is named
/// wal-<start_lsn>.log and the next segment starts where the previous
/// ended — so any LSN identifies both a segment and an offset within it.
using Lsn = uint64_t;

constexpr Lsn kInvalidLsn = UINT64_MAX;

/// When the log forces data to stable media. The tutorial's "operational
/// characteristics: recoverability, availability, transactional support"
/// trade against throughput here; bench_storage (E3) measures it.
enum class WalSyncPolicy {
  kNever,        // OS page cache only; fastest, loses tail on crash.
  kOnCommit,     // fdatasync on every commit barrier (Sync() call).
  kEveryAppend,  // fdatasync on every record; slowest, strongest.
};

struct WalOptions {
  std::string dir;
  uint64_t segment_size_bytes = 16 * 1024 * 1024;
  WalSyncPolicy sync_policy = WalSyncPolicy::kOnCommit;
};

/// One decoded WAL record.
struct WalEntry {
  Lsn lsn = kInvalidLsn;
  uint8_t type = 0;
  std::string payload;
};

/// One record to append, by reference. The payload must stay alive for
/// the duration of the AppendBatch call (the batch is framed into one
/// contiguous write buffer before anything hits the file).
struct WalRecordRef {
  uint8_t type = 0;
  std::string_view payload;
};

/// Where a batch landed in LSN space: records occupy [first_lsn,
/// end_lsn). Pass `end_lsn` to SyncTo() to make the batch durable.
struct WalBatchResult {
  Lsn first_lsn = kInvalidLsn;
  Lsn end_lsn = kInvalidLsn;
};

/// Appender. On open it scans the newest segment, drops any torn tail
/// (CRC or length mismatch) and resumes appending after the last valid
/// record.
///
/// Thread-safe: appends serialize on wal_mu_; durability requests go
/// through a leader/follower group-commit protocol on sync_mu_ — the
/// first committer to arrive becomes the leader and its one fdatasync
/// covers every record appended before it, so N concurrent committers
/// pay ~1 fdatasync instead of N (DESIGN.md §10).
class WalWriter {
 public:
  EDADB_NODISCARD static Result<std::unique_ptr<WalWriter>> Open(WalOptions options);

  /// Appends one record, returns its LSN. Thin wrapper over a
  /// one-record AppendBatch (single code path).
  EDADB_NODISCARD Result<Lsn> Append(uint8_t type, std::string_view payload);

  /// Appends `records` as one contiguous file write (one lock
  /// round-trip, one write(2) per segment touched). Rolls to a new
  /// segment between records when the current one is full, so records
  /// never span segments. Under kEveryAppend the batch is synced once,
  /// after the last record.
  EDADB_NODISCARD Result<WalBatchResult> AppendBatch(
      const std::vector<WalRecordRef>& records);

  /// Durability barrier per the sync policy (no-op under kNever).
  /// Equivalent to SyncTo(next_lsn()).
  EDADB_NODISCARD Status Sync();

  /// Group-commit barrier: returns once every byte below `target` is
  /// durable (per the sync policy). Concurrent callers elect a leader;
  /// followers whose target an in-flight fdatasync already covers just
  /// wait for it. If a leader's sync fails, the durable watermark does
  /// not advance and each waiter retries as its own leader.
  EDADB_NODISCARD Status SyncTo(Lsn target);

  /// LSN the next Append will return.
  Lsn next_lsn() const { return next_lsn_.load(std::memory_order_acquire); }

  /// Everything below this LSN has been fdatasync'ed (trivially equals
  /// next_lsn() under kNever, where durability is not promised).
  Lsn durable_lsn() const;

  /// Deletes whole segments that end at or before `lsn`. Used after
  /// checkpoints, bounded by journal-miner retention.
  EDADB_NODISCARD Status TruncateBefore(Lsn lsn);

  const WalOptions& options() const { return options_; }

 private:
  explicit WalWriter(WalOptions options) : options_(std::move(options)) {}

  EDADB_NODISCARD Status OpenNewSegment(Lsn start_lsn) EDADB_REQUIRES(wal_mu_);

  const WalOptions options_;

  /// Serializes appends and segment rolls. Held by the group-commit
  /// leader across its fdatasync, which stalls appends for that window
  /// but lets more followers pile onto the next sync — the batching
  /// effect group commit wants. Never nested with sync_mu_.
  Mutex wal_mu_{"WalWriter::wal_mu_"};
  std::unique_ptr<WritableFile> current_ EDADB_GUARDED_BY(wal_mu_);
  Lsn current_segment_start_ EDADB_GUARDED_BY(wal_mu_) = 0;
  bool dirty_ EDADB_GUARDED_BY(wal_mu_) = false;  // Appends since last Sync.

  /// Advanced only under wal_mu_; atomic so next_lsn() stays lock-free
  /// for readers (the journal miner polls it).
  std::atomic<Lsn> next_lsn_{0};

  /// Group-commit state. sync_mu_ only guards the rendezvous; the
  /// fdatasync itself runs under wal_mu_ with sync_mu_ released.
  mutable Mutex sync_mu_{"WalWriter::sync_mu_"};
  CondVar sync_cv_;
  Lsn durable_lsn_ EDADB_GUARDED_BY(sync_mu_) = 0;
  bool sync_in_flight_ EDADB_GUARDED_BY(sync_mu_) = false;

  /// Emits wal.durable_lag_bytes on registry snapshots. LAST member:
  /// destroyed first, so an in-flight collector reading next_lsn_ /
  /// sync_mu_ finishes before the rest of the writer is torn down.
  metrics::CallbackHandle metrics_collector_;
};

/// Forward cursor over the log, usable while a writer appends (the
/// journal miner tails the live WAL with one of these). Next() returns
/// false when it has caught up with the durable end of the log; call it
/// again later to see newer records.
class WalCursor {
 public:
  /// `start_lsn` = where to begin (0 for the whole log, or a saved
  /// watermark).
  WalCursor(std::string dir, Lsn start_lsn);

  /// Reads the next record into `out`. Returns true on success, false
  /// when caught up. Corruption mid-log is an error; an incomplete
  /// record at the very tail is treated as "caught up" (it is still
  /// being written).
  EDADB_NODISCARD Result<bool> Next(WalEntry* out);

  Lsn position() const { return lsn_; }

 private:
  /// Re-scans the directory for segment files.
  EDADB_NODISCARD Status RefreshSegments();

  /// Ensures file_ is the segment containing lsn_; returns false if no
  /// such segment exists yet.
  EDADB_NODISCARD Result<bool> PositionFile();

  std::string dir_;
  Lsn lsn_;
  std::map<Lsn, std::string> segments_;  // start_lsn -> path
  std::unique_ptr<RandomAccessFile> file_;
  Lsn file_start_ = kInvalidLsn;
};

/// Parses "wal-<start>.log"; returns kInvalidLsn for other names.
Lsn ParseWalSegmentName(std::string_view name);
std::string WalSegmentName(Lsn start_lsn);

/// On-disk record framing: crc(4) | payload_len(4) | type(1) | payload.
constexpr size_t kWalHeaderSize = 9;

}  // namespace edadb

#endif  // EDADB_STORAGE_WAL_H_
