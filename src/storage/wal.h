#ifndef EDADB_STORAGE_WAL_H_
#define EDADB_STORAGE_WAL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "storage/file.h"

namespace edadb {

/// Log sequence number: the global byte offset of a record across all
/// WAL segments. LSN space is contiguous — each segment file is named
/// wal-<start_lsn>.log and the next segment starts where the previous
/// ended — so any LSN identifies both a segment and an offset within it.
using Lsn = uint64_t;

constexpr Lsn kInvalidLsn = UINT64_MAX;

/// When the log forces data to stable media. The tutorial's "operational
/// characteristics: recoverability, availability, transactional support"
/// trade against throughput here; bench_storage (E3) measures it.
enum class WalSyncPolicy {
  kNever,        // OS page cache only; fastest, loses tail on crash.
  kOnCommit,     // fdatasync on every commit barrier (Sync() call).
  kEveryAppend,  // fdatasync on every record; slowest, strongest.
};

struct WalOptions {
  std::string dir;
  uint64_t segment_size_bytes = 16 * 1024 * 1024;
  WalSyncPolicy sync_policy = WalSyncPolicy::kOnCommit;
};

/// One decoded WAL record.
struct WalEntry {
  Lsn lsn = kInvalidLsn;
  uint8_t type = 0;
  std::string payload;
};

/// Appender. On open it scans the newest segment, drops any torn tail
/// (CRC or length mismatch) and resumes appending after the last valid
/// record. Thread-compatible: callers (the Database write path)
/// serialize externally.
class WalWriter {
 public:
  EDADB_NODISCARD static Result<std::unique_ptr<WalWriter>> Open(WalOptions options);

  /// Appends one record, returns its LSN. Rolls to a new segment first
  /// when the current one is full, so records never span segments.
  EDADB_NODISCARD Result<Lsn> Append(uint8_t type, std::string_view payload);

  /// Durability barrier per the sync policy (no-op under kNever).
  EDADB_NODISCARD Status Sync();

  /// LSN the next Append will return.
  Lsn next_lsn() const { return next_lsn_; }

  /// Deletes whole segments that end at or before `lsn`. Used after
  /// checkpoints, bounded by journal-miner retention.
  EDADB_NODISCARD Status TruncateBefore(Lsn lsn);

  const WalOptions& options() const { return options_; }

 private:
  explicit WalWriter(WalOptions options) : options_(std::move(options)) {}

  EDADB_NODISCARD Status OpenNewSegment(Lsn start_lsn);

  WalOptions options_;
  std::unique_ptr<WritableFile> current_;
  Lsn current_segment_start_ = 0;
  Lsn next_lsn_ = 0;
  bool dirty_ = false;  // Appends since last Sync.
};

/// Forward cursor over the log, usable while a writer appends (the
/// journal miner tails the live WAL with one of these). Next() returns
/// false when it has caught up with the durable end of the log; call it
/// again later to see newer records.
class WalCursor {
 public:
  /// `start_lsn` = where to begin (0 for the whole log, or a saved
  /// watermark).
  WalCursor(std::string dir, Lsn start_lsn);

  /// Reads the next record into `out`. Returns true on success, false
  /// when caught up. Corruption mid-log is an error; an incomplete
  /// record at the very tail is treated as "caught up" (it is still
  /// being written).
  EDADB_NODISCARD Result<bool> Next(WalEntry* out);

  Lsn position() const { return lsn_; }

 private:
  /// Re-scans the directory for segment files.
  EDADB_NODISCARD Status RefreshSegments();

  /// Ensures file_ is the segment containing lsn_; returns false if no
  /// such segment exists yet.
  EDADB_NODISCARD Result<bool> PositionFile();

  std::string dir_;
  Lsn lsn_;
  std::map<Lsn, std::string> segments_;  // start_lsn -> path
  std::unique_ptr<RandomAccessFile> file_;
  Lsn file_start_ = kInvalidLsn;
};

/// Parses "wal-<start>.log"; returns kInvalidLsn for other names.
Lsn ParseWalSegmentName(std::string_view name);
std::string WalSegmentName(Lsn start_lsn);

/// On-disk record framing: crc(4) | payload_len(4) | type(1) | payload.
constexpr size_t kWalHeaderSize = 9;

}  // namespace edadb

#endif  // EDADB_STORAGE_WAL_H_
