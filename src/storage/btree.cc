#include "storage/btree.h"

#include <algorithm>
#include <cassert>

namespace edadb {

namespace {
/// Maximum keys per node before a split. 64 keeps nodes cache-friendly
/// without deep trees.
constexpr size_t kMaxKeys = 64;
}  // namespace

struct BTreeIndex::Node {
  bool leaf;
  std::vector<Value> keys;
  // Internal nodes: children.size() == keys.size() + 1.
  std::vector<std::unique_ptr<Node>> children;
  // Leaf nodes: postings[i] are the rows under keys[i].
  std::vector<std::vector<RowId>> postings;
  Node* next = nullptr;  // Leaf chain for range scans.

  explicit Node(bool is_leaf) : leaf(is_leaf) {}

  /// Index of the first key >= `key` (lower bound).
  size_t LowerBound(const Value& key) const {
    size_t lo = 0;
    size_t hi = keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (Value::CompareTotalOrder(keys[mid], key) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  /// Child to descend into for `key` (internal nodes). Keys equal to a
  /// separator go right, matching how splits copy the first right key up.
  size_t ChildIndex(const Value& key) const {
    size_t lo = 0;
    size_t hi = keys.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (Value::CompareTotalOrder(key, keys[mid]) < 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
};

struct BTreeIndex::SplitResult {
  bool split = false;
  Value separator;
  std::unique_ptr<Node> right;
};

BTreeIndex::BTreeIndex(bool unique)
    : root_(std::make_unique<Node>(/*is_leaf=*/true)), unique_(unique) {}

BTreeIndex::~BTreeIndex() = default;

BTreeIndex::SplitResult BTreeIndex::InsertRecursive(Node* node,
                                                    const Value& key,
                                                    RowId row,
                                                    Status* status) {
  SplitResult result;
  if (node->leaf) {
    const size_t pos = node->LowerBound(key);
    const bool key_exists =
        pos < node->keys.size() &&
        Value::CompareTotalOrder(node->keys[pos], key) == 0;
    if (key_exists) {
      auto& posting = node->postings[pos];
      if (std::find(posting.begin(), posting.end(), row) != posting.end()) {
        return result;  // Idempotent re-insert.
      }
      if (unique_) {
        *status = Status::AlreadyExists("unique index violation for key " +
                                        key.ToString());
        return result;
      }
      posting.push_back(row);
      ++size_;
      return result;
    }
    node->keys.insert(node->keys.begin() + pos, key);
    node->postings.insert(node->postings.begin() + pos, {row});
    ++size_;
  } else {
    const size_t child_idx = node->ChildIndex(key);
    SplitResult child_split =
        InsertRecursive(node->children[child_idx].get(), key, row, status);
    if (child_split.split) {
      node->keys.insert(node->keys.begin() + child_idx,
                        std::move(child_split.separator));
      node->children.insert(node->children.begin() + child_idx + 1,
                            std::move(child_split.right));
    }
  }

  if (node->keys.size() <= kMaxKeys) return result;

  // Split this node.
  const size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>(node->leaf);
  if (node->leaf) {
    // Copy-up: the first right key becomes the separator and stays in
    // the right leaf.
    result.separator = node->keys[mid];
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid),
                       std::make_move_iterator(node->keys.end()));
    right->postings.assign(
        std::make_move_iterator(node->postings.begin() + mid),
        std::make_move_iterator(node->postings.end()));
    node->keys.resize(mid);
    node->postings.resize(mid);
    right->next = node->next;
    node->next = right.get();
  } else {
    // Push-up: the middle key moves to the parent.
    result.separator = std::move(node->keys[mid]);
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                       std::make_move_iterator(node->keys.end()));
    right->children.assign(
        std::make_move_iterator(node->children.begin() + mid + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
  }
  result.split = true;
  result.right = std::move(right);
  return result;
}

Status BTreeIndex::Insert(const Value& key, RowId row) {
  Status status;
  SplitResult split = InsertRecursive(root_.get(), key, row, &status);
  if (!status.ok()) return status;
  if (split.split) {
    auto new_root = std::make_unique<Node>(/*is_leaf=*/false);
    new_root->keys.push_back(std::move(split.separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
  }
  return Status::OK();
}

bool BTreeIndex::Erase(const Value& key, RowId row) {
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[node->ChildIndex(key)].get();
  }
  const size_t pos = node->LowerBound(key);
  if (pos >= node->keys.size() ||
      Value::CompareTotalOrder(node->keys[pos], key) != 0) {
    return false;
  }
  auto& posting = node->postings[pos];
  auto it = std::find(posting.begin(), posting.end(), row);
  if (it == posting.end()) return false;
  posting.erase(it);
  --size_;
  if (posting.empty()) {
    node->keys.erase(node->keys.begin() + pos);
    node->postings.erase(node->postings.begin() + pos);
  }
  return true;
}

std::vector<RowId> BTreeIndex::Lookup(const Value& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[node->ChildIndex(key)].get();
  }
  const size_t pos = node->LowerBound(key);
  if (pos >= node->keys.size() ||
      Value::CompareTotalOrder(node->keys[pos], key) != 0) {
    return {};
  }
  return node->postings[pos];
}

void BTreeIndex::Scan(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive,
    const std::function<bool(const Value& key, RowId row)>& fn) const {
  const Node* node = root_.get();
  if (lo.has_value()) {
    while (!node->leaf) {
      node = node->children[node->ChildIndex(*lo)].get();
    }
  } else {
    while (!node->leaf) {
      node = node->children.front().get();
    }
  }
  size_t pos = lo.has_value() ? node->LowerBound(*lo) : 0;
  while (node != nullptr) {
    for (; pos < node->keys.size(); ++pos) {
      const Value& key = node->keys[pos];
      if (lo.has_value()) {
        const int c = Value::CompareTotalOrder(key, *lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        const int c = Value::CompareTotalOrder(key, *hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      for (const RowId row : node->postings[pos]) {
        if (!fn(key, row)) return;
      }
    }
    node = node->next;
    pos = 0;
  }
}

int BTreeIndex::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

}  // namespace edadb
