#ifndef EDADB_CQ_CONTINUOUS_QUERY_H_
#define EDADB_CQ_CONTINUOUS_QUERY_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "db/database.h"
#include "db/resultset_diff.h"

namespace edadb {

/// §2.2.a.iii "capturing events using queries": re-evaluates a query
/// against the live database and perceives result-set changes as events.
/// With key columns, modifications are distinguished from add/remove —
/// the "current and previous states" form of the tutorial's pattern
/// events.
///
/// Driving model: the owner calls Poll() on its own schedule (the
/// capture staleness that bench_capture measures is exactly this poll
/// interval).
class ContinuousQueryWatcher {
 public:
  using ChangeCallback = std::function<void(const RowChange&)>;

  /// `db` must outlive the watcher. `key_columns` identify rows across
  /// evaluations (empty = whole-row identity).
  ContinuousQueryWatcher(const Database* db, Query query,
                         std::vector<std::string> key_columns,
                         ChangeCallback callback);

  /// Re-runs the query, diffs against the previous result, invokes the
  /// callback per change. Returns the number of changes.
  EDADB_NODISCARD Result<size_t> Poll();

  /// The most recent materialization (empty before the first Poll).
  const QueryResult& current() const { return current_; }

  uint64_t polls() const { return polls_; }

 private:
  const Database* db_;
  Query query_;
  std::vector<std::string> key_columns_;
  ChangeCallback callback_;
  QueryResult current_;
  bool primed_ = false;
  uint64_t polls_ = 0;
};

}  // namespace edadb

#endif  // EDADB_CQ_CONTINUOUS_QUERY_H_
