#include "cq/watermark.h"

#include <algorithm>

namespace edadb {

std::string_view ConsistencyLevelName(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kFast:
      return "fast";
    case ConsistencyLevel::kSpeculative:
      return "speculative";
    case ConsistencyLevel::kCorrect:
      return "correct";
  }
  return "unknown";
}

std::string_view ResultKindName(ResultKind kind) {
  switch (kind) {
    case ResultKind::kInsert:
      return "insert";
    case ResultKind::kRetract:
      return "retract";
    case ResultKind::kFinal:
      return "final";
  }
  return "unknown";
}

TimestampMicros WatermarkTracker::Advance(std::string_view source,
                                          TimestampMicros mark) {
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    it = sources_.emplace(std::string(source), mark).first;
    // A new source can only lower the min.
    min_source_ = min_source_ == kUnset ? mark : std::min(min_source_, mark);
  } else if (mark > it->second) {
    const bool held_min = it->second == min_source_;
    it->second = mark;
    if (held_min) {
      // The previous min holder moved: recompute. Source counts are
      // small (feeds, not keys), so a linear pass is fine.
      min_source_ = mark;
      for (const auto& [name, wm] : sources_) {
        min_source_ = std::min(min_source_, wm);
      }
    }
  }
  frontier_ = std::max(frontier_, mark);
  return low_watermark();
}

TimestampMicros WatermarkTracker::Observe(std::string_view source,
                                          TimestampMicros ts) {
  return Advance(source, ts);
}

TimestampMicros WatermarkTracker::Punctuate(std::string_view source,
                                            TimestampMicros mark) {
  return Advance(source, mark);
}

void WatermarkTracker::ForgetSource(std::string_view source) {
  auto it = sources_.find(source);
  if (it == sources_.end()) return;
  const bool held_min = it->second == min_source_;
  sources_.erase(it);
  if (sources_.empty()) {
    // The frontier is history (events did happen); only the merge
    // resets. A later new source re-establishes the min.
    min_source_ = kUnset;
    return;
  }
  if (held_min) {
    min_source_ = sources_.begin()->second;
    for (const auto& [name, wm] : sources_) {
      min_source_ = std::min(min_source_, wm);
    }
  }
}

TimestampMicros WatermarkTracker::low_watermark() const {
  if (min_source_ == kUnset) return kUnset;
  // Saturate instead of underflowing for huge lateness allowances.
  if (min_source_ < INT64_MIN + allowed_lateness_) return INT64_MIN + 1;
  return min_source_ - allowed_lateness_;
}

TimestampMicros WatermarkTracker::lag_micros() const {
  const TimestampMicros low = low_watermark();
  if (low == kUnset || frontier_ == kUnset) return 0;
  return frontier_ > low ? frontier_ - low : 0;
}

TimestampMicros WatermarkTracker::source_watermark(
    std::string_view source) const {
  auto it = sources_.find(source);
  return it == sources_.end() ? kUnset : it->second;
}

}  // namespace edadb
