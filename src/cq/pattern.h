#ifndef EDADB_CQ_PATTERN_H_
#define EDADB_CQ_PATTERN_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "expr/predicate.h"
#include "value/record.h"

namespace edadb {

/// One step of a sequence pattern.
struct PatternStep {
  std::string name;
  /// Condition an event must satisfy to take this step. For negated
  /// steps, the condition that must NOT occur.
  Predicate condition;
  /// NOT step: the pattern fails (the partial match dies) if a matching
  /// event arrives before the next positive step matches. A negated step
  /// cannot be first or last.
  bool negated = false;
  /// Kleene-plus: one or more consecutive matching events fold into this
  /// step (greedy: every matching event extends it).
  bool one_or_more = false;
};

/// SEQ(a, b, ...) WITHIN t [PARTITION BY key] — the CEP primitive
/// "occurrence of a specified pattern is an event" (§2.2.a.iii.2),
/// implemented as an NFA over partial-match runs with
/// skip-till-next-match semantics: each run waits at its next step and
/// ignores non-matching events; every event matching step 0 may open a
/// new run (bounded by max_active_runs).
struct PatternSpec {
  std::string name;
  std::vector<PatternStep> steps;
  /// The whole sequence must complete within this span of event time.
  TimestampMicros within_micros = kMicrosPerHour;
  /// Partition attribute: runs are tracked per distinct value (e.g. per
  /// stock symbol, per sensor). Empty = one global partition.
  std::string partition_by;
  /// Cap on concurrent partial matches per partition.
  size_t max_active_runs = 1024;
};

/// A completed match: the events bound to each (positive) step.
struct PatternMatch {
  std::string pattern;
  Value partition_key;
  TimestampMicros start_ts = 0;
  TimestampMicros end_ts = 0;
  /// step name -> events folded into that step (singular unless
  /// one_or_more).
  std::vector<std::pair<std::string, std::vector<Record>>> bindings;

  std::string ToString() const;
};

class PatternMatcher {
 public:
  using MatchCallback = std::function<void(const PatternMatch&)>;

  /// Validates the spec (at least one positive step; negations not at
  /// the edges).
  EDADB_NODISCARD static Result<std::unique_ptr<PatternMatcher>> Create(
      PatternSpec spec, MatchCallback callback);

  /// Feeds one event (event time must be non-decreasing per partition).
  EDADB_NODISCARD Status Push(const Record& event, TimestampMicros ts);

  /// Partial matches currently alive (all partitions).
  size_t active_runs() const;

  uint64_t matches_emitted() const { return matches_emitted_; }

 private:
  PatternMatcher(PatternSpec spec, MatchCallback callback);

  /// Positive step positions with their guarding negations.
  struct Position {
    size_t step_index;                 // Into spec_.steps.
    std::vector<size_t> guard_steps;   // Negated steps before this one.
  };

  struct Run {
    size_t position = 0;  // Next Position to satisfy.
    TimestampMicros start_ts = 0;
    /// Events bound per positive position.
    std::vector<std::vector<Record>> bound;
    bool kleene_open = false;  // Last matched position accepts more.
  };

  void EmitMatch(const Value& partition_key, const Run& run,
                 TimestampMicros end_ts);

  PatternSpec spec_;
  MatchCallback callback_;
  std::vector<Position> positions_;
  /// Encoded partition key -> (display key, active runs).
  std::map<std::string, std::pair<Value, std::deque<Run>>> partitions_;
  uint64_t matches_emitted_ = 0;
};

}  // namespace edadb

#endif  // EDADB_CQ_PATTERN_H_
