#ifndef EDADB_CQ_PATTERN_H_
#define EDADB_CQ_PATTERN_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "cq/watermark.h"
#include "expr/predicate.h"
#include "value/record.h"

namespace edadb {

/// One step of a sequence pattern.
struct PatternStep {
  std::string name;
  /// Condition an event must satisfy to take this step. For negated
  /// steps, the condition that must NOT occur.
  Predicate condition;
  /// NOT step: the pattern fails (the partial match dies) if a matching
  /// event arrives before the next positive step matches. A negated
  /// step cannot be first. A TRAILING negated step is an absence
  /// operator: the match emits only when the event-time watermark
  /// passes start + within with no such event observed ("A then
  /// absence-of-C within T" — negation needs watermarks to close).
  bool negated = false;
  /// Kleene-plus: one or more consecutive matching events fold into this
  /// step (greedy: every matching event extends it).
  bool one_or_more = false;
};

/// SEQ(a, b, ...) WITHIN t [PARTITION BY key] — the CEP primitive
/// "occurrence of a specified pattern is an event" (§2.2.a.iii.2),
/// implemented as an NFA over partial-match runs with
/// skip-till-next-match semantics: each run waits at its next step and
/// ignores non-matching events; every event matching step 0 may open a
/// new run (bounded by max_active_runs).
struct PatternSpec {
  std::string name;
  std::vector<PatternStep> steps;
  /// The whole sequence must complete within this span of event time.
  TimestampMicros within_micros = kMicrosPerHour;
  /// Partition attribute: runs are tracked per distinct value (e.g. per
  /// stock symbol, per sensor). Empty = one global partition.
  std::string partition_by;
  /// Cap on concurrent partial matches per partition.
  size_t max_active_runs = 1024;
  /// Event-time consistency (DESIGN.md §15):
  ///   kFast        process events in arrival order, close absence
  ///                deadlines at the frontier — the pre-event-time
  ///                behaviour, and the default;
  ///   kCorrect     reorder events in a watermark-drained buffer and
  ///                process them in timestamp order, close deadlines at
  ///                the low watermark: exact NFA semantics under
  ///                disorder, delayed by the lateness allowance;
  ///   kSpeculative process in arrival order, but emit absence matches
  ///                speculatively (kInsert) when the frontier passes
  ///                the deadline, retract (kRetract) if a straggler
  ///                inside the lateness allowance turns out to be the
  ///                forbidden event, and seal (kFinal) at the low
  ///                watermark. Positive sequence matches are
  ///                append-only and always kFinal.
  ConsistencyLevel consistency = ConsistencyLevel::kFast;
  TimestampMicros allowed_lateness_micros = 0;
};

/// A completed match: the events bound to each (positive) step.
struct PatternMatch {
  std::string pattern;
  Value partition_key;
  TimestampMicros start_ts = 0;
  TimestampMicros end_ts = 0;
  /// kFinal for ordinary sequence matches; speculative absence matches
  /// emit kInsert first and kRetract if later refuted (cq/watermark.h).
  ResultKind kind = ResultKind::kFinal;
  /// step name -> events folded into that step (singular unless
  /// one_or_more).
  std::vector<std::pair<std::string, std::vector<Record>>> bindings;

  std::string ToString() const;
};

class PatternMatcher {
 public:
  using MatchCallback = std::function<void(const PatternMatch&)>;

  /// Validates the spec (at least one positive step; negations not at
  /// the edges).
  EDADB_NODISCARD static Result<std::unique_ptr<PatternMatcher>> Create(
      PatternSpec spec, MatchCallback callback);

  /// Feeds one event from the anonymous source. Event time may arrive
  /// out of order; see PatternSpec::consistency for the semantics.
  EDADB_NODISCARD Status Push(const Record& event, TimestampMicros ts);

  /// Feeds one event tagged with its producing source (per-source
  /// watermarks merge into the global low watermark).
  EDADB_NODISCARD Status Push(const Record& event, TimestampMicros ts,
                              std::string_view source);

  /// Punctuation: `source` promises no events with ts < mark. Closes
  /// absence deadlines the advanced watermark confirms.
  EDADB_NODISCARD Status Punctuate(std::string_view source,
                                   TimestampMicros mark);

  /// End of stream: drains the reorder buffer and confirms every
  /// pending absence.
  EDADB_NODISCARD Status Flush();

  /// Partial matches currently alive (all partitions).
  size_t active_runs() const;
  /// Completed sequences waiting for their absence deadline to close.
  size_t pending_absences() const;

  uint64_t matches_emitted() const { return matches_emitted_; }
  uint64_t retractions_emitted() const { return retractions_emitted_; }
  uint64_t late_dropped() const { return late_dropped_; }
  const WatermarkTracker& watermarks() const { return tracker_; }

 private:
  PatternMatcher(PatternSpec spec, MatchCallback callback);

  /// Positive step positions with their guarding negations.
  struct Position {
    size_t step_index;                 // Into spec_.steps.
    std::vector<size_t> guard_steps;   // Negated steps before this one.
  };

  struct Run {
    size_t position = 0;  // Next Position to satisfy.
    TimestampMicros start_ts = 0;
    /// Events bound per positive position.
    std::vector<std::vector<Record>> bound;
    bool kleene_open = false;  // Last matched position accepts more.
  };

  /// A completed positive sequence holding its trailing-absence
  /// interval open until the watermark passes `deadline`.
  struct Pending {
    Run run;
    TimestampMicros armed_ts = 0;   // When the last positive step matched.
    TimestampMicros deadline = 0;   // start_ts + within.
    bool inserted = false;          // Speculative kInsert already emitted.
  };

  struct Partition {
    Value key;
    std::deque<Run> runs;
    std::deque<Pending> pending;
  };

  void EmitMatch(const Value& partition_key, const Run& run,
                 TimestampMicros end_ts, ResultKind kind);

  /// The NFA transition for one event, in processing order.
  void ProcessEvent(const Record& event, TimestampMicros ts);
  /// The watermark that closes absence deadlines / rejects stragglers.
  TimestampMicros CloseWatermark() const;
  /// Processes reorder-buffered events the low watermark released.
  void DrainReorder();
  /// Expires dead runs and closes/speculates absence deadlines.
  void AdvanceWatermarks();

  PatternSpec spec_;
  MatchCallback callback_;
  std::vector<Position> positions_;
  /// Trailing negated steps: the absence guards of the whole pattern.
  std::vector<size_t> absence_guards_;
  /// Encoded partition key -> partition state.
  std::map<std::string, Partition> partitions_;
  WatermarkTracker tracker_;
  /// kCorrect only: events buffered until the low watermark releases
  /// them in timestamp order.
  std::multimap<TimestampMicros, Record> reorder_;
  uint64_t matches_emitted_ = 0;
  uint64_t retractions_emitted_ = 0;
  uint64_t late_dropped_ = 0;
};

}  // namespace edadb

#endif  // EDADB_CQ_PATTERN_H_
