#include "cq/continuous_query.h"

namespace edadb {

ContinuousQueryWatcher::ContinuousQueryWatcher(
    const Database* db, Query query, std::vector<std::string> key_columns,
    ChangeCallback callback)
    : db_(db),
      query_(std::move(query)),
      key_columns_(std::move(key_columns)),
      callback_(std::move(callback)) {}

Result<size_t> ContinuousQueryWatcher::Poll() {
  ++polls_;
  EDADB_ASSIGN_OR_RETURN(QueryResult next, db_->Execute(query_));
  if (!primed_) {
    // The first evaluation primes the baseline: existing rows are not
    // events (the subscriber asked to be told about *changes*).
    current_ = std::move(next);
    primed_ = true;
    return size_t{0};
  }
  EDADB_ASSIGN_OR_RETURN(std::vector<RowChange> changes,
                         DiffResultSets(current_, next, key_columns_));
  current_ = std::move(next);
  for (const RowChange& change : changes) {
    callback_(change);
  }
  return changes.size();
}

}  // namespace edadb
