#include "cq/join.h"

#include "common/metrics.h"

namespace edadb {

// ---------------------------------------------------------------------------
// StreamTableJoin

Result<std::unique_ptr<StreamTableJoin>> StreamTableJoin::Create(
    Database* db, SchemaPtr stream_schema, Options options,
    OutputCallback callback) {
  if (stream_schema == nullptr ||
      stream_schema->FieldIndex(options.stream_key) < 0) {
    return Status::InvalidArgument("stream key '" + options.stream_key +
                                   "' not in stream schema");
  }
  EDADB_ASSIGN_OR_RETURN(Table * table, db->GetTable(options.table));
  if (table->schema()->FieldIndex(options.table_key) < 0) {
    return Status::NotFound("no column '" + options.table_key +
                            "' in table " + options.table);
  }
  auto join = std::unique_ptr<StreamTableJoin>(
      new StreamTableJoin(db, std::move(stream_schema), std::move(options),
                          std::move(callback)));
  // Output schema: stream fields, then table fields (qualified on
  // collision). Table columns are nullable in the output (outer join).
  std::vector<Field> fields = join->stream_schema_->fields();
  for (const Field& field : table->schema()->fields()) {
    std::string name = field.name;
    if (join->stream_schema_->HasField(name)) {
      name = join->options_.table + "." + name;
    }
    fields.emplace_back(std::move(name), field.type, /*nullable=*/true);
  }
  join->output_schema_ = Schema::Make(std::move(fields));
  return join;
}

Record StreamTableJoin::Merge(const Record& event,
                              const Record* table_row) const {
  std::vector<Value> values;
  values.reserve(output_schema_->num_fields());
  for (size_t i = 0; i < event.num_values(); ++i) {
    values.push_back(event.value(i));
  }
  const size_t table_fields =
      output_schema_->num_fields() - event.num_values();
  for (size_t i = 0; i < table_fields; ++i) {
    values.push_back(table_row != nullptr ? table_row->value(i)
                                          : Value::Null());
  }
  return Record(output_schema_, std::move(values));
}

Status StreamTableJoin::Push(const Record& event) {
  EDADB_ASSIGN_OR_RETURN(Value key, event.Get(options_.stream_key));
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(options_.table));

  std::vector<Record> matches;
  if (!key.is_null()) {
    if (const BTreeIndex* index = table->GetIndex(options_.table_key);
        index != nullptr) {
      for (const RowId row_id : index->Lookup(key)) {
        auto row = table->GetRow(row_id);
        if (row.ok()) matches.push_back(*std::move(row));
      }
    } else {
      table->ScanRows([&](RowId, const Record& row) {
        auto v = row.Get(options_.table_key);
        if (v.ok()) {
          auto cmp = Value::Compare(*v, key);
          if (cmp.ok() && *cmp == 0) matches.push_back(row);
        }
        return true;
      });
    }
  }

  if (matches.empty()) {
    if (options_.left_outer) {
      ++emitted_;
      callback_(Merge(event, nullptr));
    }
    return Status::OK();
  }
  for (const Record& row : matches) {
    ++emitted_;
    callback_(Merge(event, &row));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IntervalJoin

namespace {

metrics::Counter* JoinLateDroppedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.join_late_dropped");
  return c;
}

}  // namespace

IntervalJoin::IntervalJoin(Options options, OutputCallback callback)
    : options_(std::move(options)),
      callback_(std::move(callback)),
      tracker_(options_.consistency == ConsistencyLevel::kFast
                   ? 0
                   : options_.allowed_lateness_micros) {}

TimestampMicros IntervalJoin::EvictionWatermark() const {
  if (options_.consistency == ConsistencyLevel::kFast) {
    return tracker_.frontier();
  }
  // A join has exactly two sides; until both have reported (event or
  // punctuation) the merge would be one-sided and could evict buffers
  // the silent side still needs.
  if (tracker_.num_sources() < 2) return WatermarkTracker::kUnset;
  return tracker_.low_watermark();
}

void IntervalJoin::Evict(Side* side) {
  const TimestampMicros wm = EvictionWatermark();
  if (wm == WatermarkTracker::kUnset) return;
  const TimestampMicros horizon = wm - options_.window_micros;
  // The heap pops the globally oldest buffered entry no matter the
  // arrival order; a multimap erase keeps the per-key buffer exact.
  while (!side->expiry.empty() && side->expiry.top().first < horizon) {
    const auto [ts, key] = side->expiry.top();
    side->expiry.pop();
    auto it = side->by_key.find(key);
    if (it == side->by_key.end()) continue;
    auto entry = it->second.find(ts);
    if (entry == it->second.end()) continue;
    it->second.erase(entry);
    --side->buffered;
    if (it->second.empty()) side->by_key.erase(it);
  }
}

Status IntervalJoin::Push(bool left, const Record& event,
                          TimestampMicros ts) {
  const std::string& key_column =
      left ? options_.left_key : options_.right_key;
  EDADB_ASSIGN_OR_RETURN(Value key, event.Get(key_column));
  tracker_.Observe(left ? "left" : "right", ts);
  Evict(&left_);
  Evict(&right_);
  if (key.is_null()) return Status::OK();  // NULL keys never join.
  std::string key_bytes;
  key.EncodeTo(&key_bytes);

  // Pair with the other side's live buffer: the [ts - window,
  // ts + window] slice of the key's time-sorted entries.
  Side& other = left ? right_ : left_;
  auto it = other.by_key.find(key_bytes);
  if (it != other.by_key.end()) {
    const auto lo = it->second.lower_bound(ts - options_.window_micros);
    const auto hi = it->second.upper_bound(ts + options_.window_micros);
    for (auto candidate = lo; candidate != hi; ++candidate) {
      ++emitted_;
      if (left) {
        callback_(event, candidate->second,
                  std::max(ts, candidate->first));
      } else {
        callback_(candidate->second, event,
                  std::max(ts, candidate->first));
      }
    }
  }
  // Buffer for future arrivals of the other side — unless the event is
  // already behind the eviction horizon (it paired with what survived;
  // buffering it would be popped straight back out).
  const TimestampMicros wm = EvictionWatermark();
  if (wm != WatermarkTracker::kUnset &&
      ts < wm - options_.window_micros) {
    ++late_dropped_;
    JoinLateDroppedCounter()->Add();
    return Status::OK();
  }
  Side& mine = left ? left_ : right_;
  mine.by_key[key_bytes].emplace(ts, event);
  mine.expiry.emplace(ts, key_bytes);
  ++mine.buffered;
  return Status::OK();
}

Status IntervalJoin::PushLeft(const Record& event, TimestampMicros ts) {
  return Push(true, event, ts);
}

Status IntervalJoin::PushRight(const Record& event, TimestampMicros ts) {
  return Push(false, event, ts);
}

void IntervalJoin::PunctuateLeft(TimestampMicros mark) {
  tracker_.Punctuate("left", mark);
  Evict(&left_);
  Evict(&right_);
}

void IntervalJoin::PunctuateRight(TimestampMicros mark) {
  tracker_.Punctuate("right", mark);
  Evict(&left_);
  Evict(&right_);
}

}  // namespace edadb
