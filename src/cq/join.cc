#include "cq/join.h"

namespace edadb {

// ---------------------------------------------------------------------------
// StreamTableJoin

Result<std::unique_ptr<StreamTableJoin>> StreamTableJoin::Create(
    Database* db, SchemaPtr stream_schema, Options options,
    OutputCallback callback) {
  if (stream_schema == nullptr ||
      stream_schema->FieldIndex(options.stream_key) < 0) {
    return Status::InvalidArgument("stream key '" + options.stream_key +
                                   "' not in stream schema");
  }
  EDADB_ASSIGN_OR_RETURN(Table * table, db->GetTable(options.table));
  if (table->schema()->FieldIndex(options.table_key) < 0) {
    return Status::NotFound("no column '" + options.table_key +
                            "' in table " + options.table);
  }
  auto join = std::unique_ptr<StreamTableJoin>(
      new StreamTableJoin(db, std::move(stream_schema), std::move(options),
                          std::move(callback)));
  // Output schema: stream fields, then table fields (qualified on
  // collision). Table columns are nullable in the output (outer join).
  std::vector<Field> fields = join->stream_schema_->fields();
  for (const Field& field : table->schema()->fields()) {
    std::string name = field.name;
    if (join->stream_schema_->HasField(name)) {
      name = join->options_.table + "." + name;
    }
    fields.emplace_back(std::move(name), field.type, /*nullable=*/true);
  }
  join->output_schema_ = Schema::Make(std::move(fields));
  return join;
}

Record StreamTableJoin::Merge(const Record& event,
                              const Record* table_row) const {
  std::vector<Value> values;
  values.reserve(output_schema_->num_fields());
  for (size_t i = 0; i < event.num_values(); ++i) {
    values.push_back(event.value(i));
  }
  const size_t table_fields =
      output_schema_->num_fields() - event.num_values();
  for (size_t i = 0; i < table_fields; ++i) {
    values.push_back(table_row != nullptr ? table_row->value(i)
                                          : Value::Null());
  }
  return Record(output_schema_, std::move(values));
}

Status StreamTableJoin::Push(const Record& event) {
  EDADB_ASSIGN_OR_RETURN(Value key, event.Get(options_.stream_key));
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(options_.table));

  std::vector<Record> matches;
  if (!key.is_null()) {
    if (const BTreeIndex* index = table->GetIndex(options_.table_key);
        index != nullptr) {
      for (const RowId row_id : index->Lookup(key)) {
        auto row = table->GetRow(row_id);
        if (row.ok()) matches.push_back(*std::move(row));
      }
    } else {
      table->ScanRows([&](RowId, const Record& row) {
        auto v = row.Get(options_.table_key);
        if (v.ok()) {
          auto cmp = Value::Compare(*v, key);
          if (cmp.ok() && *cmp == 0) matches.push_back(row);
        }
        return true;
      });
    }
  }

  if (matches.empty()) {
    if (options_.left_outer) {
      ++emitted_;
      callback_(Merge(event, nullptr));
    }
    return Status::OK();
  }
  for (const Record& row : matches) {
    ++emitted_;
    callback_(Merge(event, &row));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// StreamStreamJoin

StreamStreamJoin::StreamStreamJoin(Options options, OutputCallback callback)
    : options_(std::move(options)), callback_(std::move(callback)) {}

void StreamStreamJoin::Evict(Side* side) {
  const TimestampMicros horizon = watermark_ - options_.window_micros;
  while (!side->order.empty() && side->order.front().first < horizon) {
    const std::string& key = side->order.front().second;
    auto it = side->by_key.find(key);
    if (it != side->by_key.end()) {
      // Per-key deques are also in arrival order, so the global front
      // matches this key's front.
      it->second.pop_front();
      --side->buffered;
      if (it->second.empty()) side->by_key.erase(it);
    }
    side->order.pop_front();
  }
}

Status StreamStreamJoin::Push(bool left, const Record& event,
                              TimestampMicros ts) {
  const std::string& key_column =
      left ? options_.left_key : options_.right_key;
  EDADB_ASSIGN_OR_RETURN(Value key, event.Get(key_column));
  if (ts > watermark_) {
    watermark_ = ts;
    Evict(&left_);
    Evict(&right_);
  }
  if (key.is_null()) return Status::OK();  // NULL keys never join.
  std::string key_bytes;
  key.EncodeTo(&key_bytes);

  // Pair with the other side's live buffer.
  Side& other = left ? right_ : left_;
  auto it = other.by_key.find(key_bytes);
  if (it != other.by_key.end()) {
    for (const Buffered& candidate : it->second) {
      if (ts - candidate.ts > options_.window_micros ||
          candidate.ts - ts > options_.window_micros) {
        continue;
      }
      ++emitted_;
      if (left) {
        callback_(event, candidate.event, std::max(ts, candidate.ts));
      } else {
        callback_(candidate.event, event, std::max(ts, candidate.ts));
      }
    }
  }
  // Buffer for future arrivals of the other side.
  Side& mine = left ? left_ : right_;
  mine.by_key[key_bytes].push_back({event, ts});
  mine.order.emplace_back(ts, key_bytes);
  ++mine.buffered;
  return Status::OK();
}

Status StreamStreamJoin::PushLeft(const Record& event, TimestampMicros ts) {
  return Push(true, event, ts);
}

Status StreamStreamJoin::PushRight(const Record& event, TimestampMicros ts) {
  return Push(false, event, ts);
}

}  // namespace edadb
