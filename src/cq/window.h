#ifndef EDADB_CQ_WINDOW_H_
#define EDADB_CQ_WINDOW_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "db/query.h"
#include "value/record.h"

namespace edadb {

/// Incremental statistics over a time-width sliding window: O(1)
/// amortized Add/evict including min/max (monotonic deques). Timestamps
/// must be non-decreasing. This is the workhorse under continuous
/// aggregation queries and the expectation models in core/.
class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(TimestampMicros width_micros)
      : width_(width_micros) {}

  /// Adds an observation and evicts everything older than
  /// ts - width. `ts` must be >= the last Add's ts.
  void Add(TimestampMicros ts, double value);

  /// Drops observations with timestamp <= `ts`.
  void EvictBefore(TimestampMicros ts);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Population variance over the window.
  double variance() const;
  double stddev() const;
  double min() const;  // Requires !empty().
  double max() const;  // Requires !empty().

 private:
  TimestampMicros width_;
  std::deque<std::pair<TimestampMicros, double>> values_;
  std::deque<std::pair<TimestampMicros, double>> min_deque_;  // Increasing.
  std::deque<std::pair<TimestampMicros, double>> max_deque_;  // Decreasing.
  double sum_ = 0;
  double sum_squares_ = 0;
};

/// Streaming accumulator for one Aggregate spec (shared by the
/// time-window and session-window aggregators).
struct AggAccumulator {
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool all_int = true;
  Value min_value;
  Value max_value;
  bool has_extreme = false;

  void Add(const Value& v);
  Value Finish(const Aggregate& agg, int64_t rows) const;
};

/// One emitted window.
struct WindowResult {
  TimestampMicros window_start = 0;
  TimestampMicros window_end = 0;
  Value key;        // Null when un-keyed.
  int64_t rows = 0; // Input rows in the window (for this key).
  /// (alias, value) per requested aggregate, in request order.
  std::vector<std::pair<std::string, Value>> aggregates;

  std::string ToString() const;
};

/// Event-time window aggregation — the "continuous query" core
/// (§2.2.c.i.3). Tumbling (slide == size) and sliding (slide < size)
/// windows, optionally partitioned by a key column. Windows close when
/// the watermark (max event time seen minus allowed lateness) passes
/// their end; late events beyond that are counted in `late_dropped`.
struct WindowAggregatorOptions {
  TimestampMicros window_size_micros = kMicrosPerSecond;
  /// Must divide evenly into practical use; slide == 0 means tumbling
  /// (slide = size).
  TimestampMicros slide_micros = 0;
  std::string key_column;  // Empty = single global group.
  std::vector<Aggregate> aggregates;
  TimestampMicros allowed_lateness_micros = 0;
  /// Ablation (bench_cq): true buffers raw events per window and
  /// recomputes aggregates at close, instead of incremental
  /// accumulation.
  bool recompute_at_close = false;
};

class WindowedAggregator {
 public:
  using ResultCallback = std::function<void(const WindowResult&)>;

  WindowedAggregator(WindowAggregatorOptions options,
                     ResultCallback callback);

  /// Feeds one event. Emits every window whose end passed the watermark.
  EDADB_NODISCARD Status Push(const Record& row, TimestampMicros ts);

  /// Closes and emits all open windows (end of stream).
  EDADB_NODISCARD Status Flush();

  uint64_t late_dropped() const { return late_dropped_; }
  size_t open_windows() const;

 private:
  struct Group {
    Value key;
    int64_t rows = 0;
    std::vector<AggAccumulator> accs;
    std::vector<Record> buffered;  // recompute_at_close only.
  };

  /// Open windows: window_start -> (encoded key -> group).
  using WindowMap = std::map<TimestampMicros, std::map<std::string, Group>>;

  EDADB_NODISCARD Status AddToWindow(TimestampMicros window_start, const Record& row,
                     TimestampMicros ts);
  EDADB_NODISCARD Status EmitWindow(TimestampMicros window_start);
  EDADB_NODISCARD Status EmitDueWindows();

  WindowAggregatorOptions options_;
  ResultCallback callback_;
  WindowMap windows_;
  TimestampMicros watermark_ = INT64_MIN;
  uint64_t late_dropped_ = 0;
};

/// Session windows: a key's events belong to one session while the gap
/// between consecutive events stays within `gap_micros`; a longer quiet
/// period closes the session. Sessions also close when the global
/// watermark (max event time seen) passes last_event + gap, and on
/// Flush(). The emitted WindowResult spans [first_event, last_event +
/// gap).
struct SessionAggregatorOptions {
  TimestampMicros gap_micros = kMicrosPerMinute;
  std::string key_column;  // Empty = one global session track.
  std::vector<Aggregate> aggregates;
};

class SessionAggregator {
 public:
  using ResultCallback = std::function<void(const WindowResult&)>;

  SessionAggregator(SessionAggregatorOptions options,
                    ResultCallback callback);

  /// Feeds one event; event time must be globally non-decreasing.
  EDADB_NODISCARD Status Push(const Record& row, TimestampMicros ts);

  /// Closes and emits every open session.
  EDADB_NODISCARD Status Flush();

  size_t open_sessions() const { return sessions_.size(); }

 private:
  struct Session {
    Value key;
    TimestampMicros start_ts = 0;
    TimestampMicros last_ts = 0;
    int64_t rows = 0;
    std::vector<AggAccumulator> accs;
  };

  void Emit(const Session& session);
  void CloseIdleSessions(TimestampMicros watermark);

  SessionAggregatorOptions options_;
  ResultCallback callback_;
  std::map<std::string, Session> sessions_;  // Encoded key -> session.
};

}  // namespace edadb

#endif  // EDADB_CQ_WINDOW_H_
