#ifndef EDADB_CQ_WINDOW_H_
#define EDADB_CQ_WINDOW_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "cq/watermark.h"
#include "db/query.h"
#include "value/record.h"

namespace edadb {

/// Incremental statistics over a time-width sliding window: O(1)
/// amortized Add/evict including min/max (monotonic deques) on the
/// in-order fast path. Out-of-order timestamps are handled (sorted
/// insert + deque rebuild, O(n) for that Add) and counted; timestamps
/// older than the already-evicted horizon are dropped and counted.
/// This is the workhorse under continuous aggregation queries and the
/// expectation models in core/.
class SlidingWindowStats {
 public:
  explicit SlidingWindowStats(TimestampMicros width_micros)
      : width_(width_micros) {}

  /// Adds an observation and evicts everything older than
  /// max_ts - width. Timestamps may arrive out of order; an
  /// observation older than anything retained is dropped (see
  /// late_dropped()).
  void Add(TimestampMicros ts, double value);

  /// Drops observations with timestamp <= `ts`.
  void EvictBefore(TimestampMicros ts);

  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Population variance over the window.
  double variance() const;
  double stddev() const;
  double min() const;  // Requires !empty().
  double max() const;  // Requires !empty().

  /// Adds that arrived with a timestamp below the current max (and were
  /// inserted into their sorted position).
  uint64_t out_of_order() const { return out_of_order_; }
  /// Adds too old to retain: at or below the eviction horizon already
  /// applied (their window has been evicted; resurrecting it would
  /// silently corrupt sums).
  uint64_t late_dropped() const { return late_dropped_; }

 private:
  void RebuildExtremeDeques();

  TimestampMicros width_;
  std::deque<std::pair<TimestampMicros, double>> values_;  // ts-sorted.
  std::deque<std::pair<TimestampMicros, double>> min_deque_;  // Increasing.
  std::deque<std::pair<TimestampMicros, double>> max_deque_;  // Decreasing.
  double sum_ = 0;
  double sum_squares_ = 0;
  /// Highest eviction horizon applied so far: everything <= this is gone.
  TimestampMicros evicted_through_ = INT64_MIN;
  uint64_t out_of_order_ = 0;
  uint64_t late_dropped_ = 0;
};

/// Streaming accumulator for one Aggregate spec (shared by the
/// time-window and session-window aggregators).
struct AggAccumulator {
  int64_t count = 0;
  int64_t int_sum = 0;
  double double_sum = 0;
  bool all_int = true;
  Value min_value;
  Value max_value;
  bool has_extreme = false;

  void Add(const Value& v);
  Value Finish(const Aggregate& agg, int64_t rows) const;
};

/// One emitted window revision. `kind` is the CEDR-style revision
/// protocol (cq/watermark.h): speculative levels emit kInsert early,
/// kRetract + kInsert when a straggler revises the window, and kFinal
/// when the low watermark seals it; fast/correct levels emit kFinal
/// only. `revision` counts revisions per (window, key): a kRetract
/// carries the revision it withdraws; the paired kInsert carries the
/// next.
struct WindowResult {
  TimestampMicros window_start = 0;
  TimestampMicros window_end = 0;
  Value key;        // Null when un-keyed.
  int64_t rows = 0; // Input rows in the window (for this key).
  ResultKind kind = ResultKind::kFinal;
  int64_t revision = 0;
  /// (alias, value) per requested aggregate, in request order.
  std::vector<std::pair<std::string, Value>> aggregates;

  std::string ToString() const;
};

/// Event-time window aggregation — the "continuous query" core
/// (§2.2.c.i.3). Tumbling (slide == size) and sliding (slide < size)
/// windows, optionally partitioned by a key column.
///
/// Event-time consistency (DESIGN.md §15): per-source watermarks merge
/// into a global low watermark (frontier minus allowed lateness).
/// Windows close when the close watermark passes their end; events
/// older than the close watermark are dropped into `late_dropped`.
/// The close watermark per consistency level:
///   kFast        the frontier — no lateness wait, stragglers dropped;
///   kCorrect     the low watermark — delayed, stragglers within the
///                allowance silently merge before emission (the
///                pre-event-time behaviour, and the default);
///   kSpeculative the low watermark for closing, but windows emit a
///                speculative kInsert as soon as the frontier passes
///                their end, revise via kRetract + kInsert when a
///                straggler lands in an emitted window, and seal with
///                kFinal at the low watermark.
struct WindowAggregatorOptions {
  TimestampMicros window_size_micros = kMicrosPerSecond;
  /// Must divide evenly into practical use; slide == 0 means tumbling
  /// (slide = size).
  TimestampMicros slide_micros = 0;
  std::string key_column;  // Empty = single global group.
  std::vector<Aggregate> aggregates;
  TimestampMicros allowed_lateness_micros = 0;
  ConsistencyLevel consistency = ConsistencyLevel::kCorrect;
  /// Ablation (bench_cq): true buffers raw events per window and
  /// recomputes aggregates at close, instead of incremental
  /// accumulation.
  bool recompute_at_close = false;
};

class WindowedAggregator {
 public:
  using ResultCallback = std::function<void(const WindowResult&)>;

  WindowedAggregator(WindowAggregatorOptions options,
                     ResultCallback callback);

  /// Feeds one event from the anonymous source. Emits every window the
  /// advancing watermark closes (plus speculative revisions).
  EDADB_NODISCARD Status Push(const Record& row, TimestampMicros ts);

  /// Feeds one event tagged with its producing source; each source
  /// advances its own watermark and the global low watermark is their
  /// merge, so one slow feed delays closes instead of losing data.
  EDADB_NODISCARD Status Push(const Record& row, TimestampMicros ts,
                              std::string_view source);

  /// Punctuation from `source`: no events with ts < mark will follow.
  /// Advances watermarks and emits/finalizes due windows.
  EDADB_NODISCARD Status Punctuate(std::string_view source,
                                   TimestampMicros mark);

  /// Closes and emits all open windows as kFinal (end of stream).
  EDADB_NODISCARD Status Flush();

  uint64_t late_dropped() const { return late_dropped_; }
  uint64_t retractions_emitted() const { return retractions_emitted_; }
  uint64_t speculative_emitted() const { return speculative_emitted_; }
  size_t open_windows() const;
  const WatermarkTracker& watermarks() const { return tracker_; }

 private:
  struct Group {
    Value key;
    int64_t rows = 0;
    std::vector<AggAccumulator> accs;
    std::vector<Record> buffered;  // recompute_at_close only.
    /// Speculative protocol state: has this (window, key) been emitted,
    /// at which revision, and with which aggregate values (so a
    /// straggler can retract exactly what was published).
    bool emitted = false;
    int64_t revision = 0;
    int64_t emitted_rows = 0;
    std::vector<std::pair<std::string, Value>> emitted_aggregates;
  };

  /// Open windows: window_start -> (encoded key -> group).
  using WindowMap = std::map<TimestampMicros, std::map<std::string, Group>>;

  /// The watermark that closes windows / rejects stragglers for the
  /// configured consistency level.
  TimestampMicros CloseWatermark() const;

  EDADB_NODISCARD Status AddToWindow(TimestampMicros window_start,
                                     const Record& row, TimestampMicros ts,
                                     TimestampMicros frontier_before);
  EDADB_NODISCARD Status BuildResult(TimestampMicros window_start,
                                     Group* group, ResultKind kind,
                                     WindowResult* out);
  /// Emits kInsert (or kRetract of the prior revision + kInsert) for
  /// one group of a window the frontier already passed.
  EDADB_NODISCARD Status EmitRevision(TimestampMicros window_start,
                                      Group* group);
  EDADB_NODISCARD Status FinalizeWindow(TimestampMicros window_start);
  /// Finalizes windows behind the close watermark; under kSpeculative
  /// also speculatively emits windows the frontier newly passed.
  EDADB_NODISCARD Status AdvanceWatermarks();

  WindowAggregatorOptions options_;
  ResultCallback callback_;
  WindowMap windows_;
  WatermarkTracker tracker_;
  uint64_t late_dropped_ = 0;
  uint64_t retractions_emitted_ = 0;
  uint64_t speculative_emitted_ = 0;
};

/// Session windows: a key's events belong to one session while the gap
/// between consecutive events stays within `gap_micros`; a longer quiet
/// period closes the session. Sessions also close when the global
/// watermark (max event time seen) passes last_event + gap, and on
/// Flush(). The emitted WindowResult spans [first_event, last_event +
/// gap).
struct SessionAggregatorOptions {
  TimestampMicros gap_micros = kMicrosPerMinute;
  std::string key_column;  // Empty = one global session track.
  std::vector<Aggregate> aggregates;
};

class SessionAggregator {
 public:
  using ResultCallback = std::function<void(const WindowResult&)>;

  SessionAggregator(SessionAggregatorOptions options,
                    ResultCallback callback);

  /// Feeds one event; event time must be globally non-decreasing.
  EDADB_NODISCARD Status Push(const Record& row, TimestampMicros ts);

  /// Closes and emits every open session.
  EDADB_NODISCARD Status Flush();

  size_t open_sessions() const { return sessions_.size(); }

 private:
  struct Session {
    Value key;
    TimestampMicros start_ts = 0;
    TimestampMicros last_ts = 0;
    int64_t rows = 0;
    std::vector<AggAccumulator> accs;
  };

  void Emit(const Session& session);
  void CloseIdleSessions(TimestampMicros watermark);

  SessionAggregatorOptions options_;
  ResultCallback callback_;
  std::map<std::string, Session> sessions_;  // Encoded key -> session.
};

}  // namespace edadb

#endif  // EDADB_CQ_WINDOW_H_
