#ifndef EDADB_CQ_WATERMARK_H_
#define EDADB_CQ_WATERMARK_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/macros.h"

namespace edadb {

/// How eagerly an event-time operator trades output latency for
/// correctness under late/out-of-order input — the user-selectable
/// consistency level of Barga et al., "Consistent Streaming Through
/// Time" (CEDR), collapsed to the three regimes the paper's workloads
/// need:
///
///   kFast        Emit as soon as the event-time frontier (max event
///                time observed) passes a window/deadline; events later
///                than that are dropped (and counted). Lowest latency,
///                bounded memory, possibly wrong on stragglers.
///   kSpeculative Emit early like kFast, but keep state for the allowed
///                lateness: a straggler revising an already-emitted
///                result issues a retraction (kRetract of the stale
///                result, then kInsert of the revision); when the low
///                watermark confirms no more stragglers, a kFinal seals
///                the result.
///   kCorrect     Emit nothing until the low watermark (frontier minus
///                allowed lateness) guarantees the result can no longer
///                change; every emission is kFinal. Highest latency,
///                never retracts.
enum class ConsistencyLevel { kFast, kSpeculative, kCorrect };

std::string_view ConsistencyLevelName(ConsistencyLevel level);

/// Revision protocol for speculative event-time output. Downstream
/// applies emissions as: kInsert sets the value for its (window, key),
/// kRetract removes the exact previously-inserted value, kFinal sets
/// the value and marks it immutable. Applying a stream of emissions in
/// order therefore converges to the batch (fully-ordered) answer —
/// tests/cq/retraction_property_test.cc holds this as an invariant.
enum class ResultKind { kInsert, kRetract, kFinal };

std::string_view ResultKindName(ResultKind kind);

/// Merges per-source event-time progress into one global low watermark.
///
/// Each source's watermark is the max event time it has presented (or
/// explicitly promised via Punctuate). The global low watermark is the
/// minimum across sources minus the allowed lateness: a promise that no
/// source will present an event older than it (operators drop and count
/// anything older). The frontier is the max event time seen anywhere —
/// what speculative output races ahead to.
///
/// A source exists from its first Observe/Punctuate; until then it does
/// not hold the merge back (a silent feed that never appeared cannot
/// stall everyone — use Punctuate to advance an idle-but-known source,
/// or ForgetSource to drop a disconnected one).
///
/// Not thread-safe; owned by a single operator like the rest of cq/.
class WatermarkTracker {
 public:
  /// Low watermark / frontier value before any event was observed.
  static constexpr TimestampMicros kUnset = INT64_MIN;

  explicit WatermarkTracker(TimestampMicros allowed_lateness_micros = 0)
      : allowed_lateness_(allowed_lateness_micros) {}

  /// Records an event at `ts` from `source` and returns the (possibly
  /// advanced) global low watermark. Source watermarks are monotone:
  /// an out-of-order ts never moves one backwards.
  TimestampMicros Observe(std::string_view source, TimestampMicros ts);

  /// Explicit punctuation: `source` promises it will not present events
  /// with ts < `mark` again (§2.2's sensor feeds emit these at batch
  /// boundaries). Equivalent to observing an event at `mark` without
  /// any payload. Returns the global low watermark.
  TimestampMicros Punctuate(std::string_view source, TimestampMicros mark);

  /// Removes `source` from the merge (disconnected feed) so it no
  /// longer holds the low watermark back.
  void ForgetSource(std::string_view source);

  /// min over per-source watermarks, minus allowed lateness. kUnset
  /// until the first Observe/Punctuate.
  TimestampMicros low_watermark() const;

  /// Max event time observed across all sources; kUnset until the
  /// first Observe/Punctuate.
  TimestampMicros frontier() const { return frontier_; }

  /// How far the low watermark trails the frontier (0 when unset):
  /// the skew between the fastest and slowest source plus the lateness
  /// allowance — the `cq.watermark_lag_us` signal.
  TimestampMicros lag_micros() const;

  /// The per-source watermark, or kUnset for an unknown source.
  TimestampMicros source_watermark(std::string_view source) const;

  size_t num_sources() const { return sources_.size(); }

 private:
  TimestampMicros Advance(std::string_view source, TimestampMicros mark);

  const TimestampMicros allowed_lateness_;
  std::map<std::string, TimestampMicros, std::less<>> sources_;
  /// Cached min over sources_ (without the lateness subtraction).
  TimestampMicros min_source_ = kUnset;
  TimestampMicros frontier_ = kUnset;
};

}  // namespace edadb

#endif  // EDADB_CQ_WATERMARK_H_
