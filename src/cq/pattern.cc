#include "cq/pattern.h"

#include "common/metrics.h"
#include "common/string_util.h"

namespace edadb {

namespace {

metrics::Counter* PatternLateDroppedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.pattern_late_dropped");
  return c;
}

metrics::Counter* PatternRetractionsCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.retractions_emitted");
  return c;
}

}  // namespace

std::string PatternMatch::ToString() const {
  std::string out = "Match{" + pattern;
  if (!partition_key.is_null()) out += " key=" + partition_key.ToString();
  out += StringPrintf(" [%lld..%lld]", static_cast<long long>(start_ts),
                      static_cast<long long>(end_ts));
  if (kind != ResultKind::kFinal) {
    out += " " + std::string(ResultKindName(kind));
  }
  for (const auto& [step, events] : bindings) {
    out += " " + step + ":" + std::to_string(events.size());
  }
  out += "}";
  return out;
}

PatternMatcher::PatternMatcher(PatternSpec spec, MatchCallback callback)
    : spec_(std::move(spec)),
      callback_(std::move(callback)),
      tracker_(spec_.consistency == ConsistencyLevel::kFast
                   ? 0
                   : spec_.allowed_lateness_micros) {}

Result<std::unique_ptr<PatternMatcher>> PatternMatcher::Create(
    PatternSpec spec, MatchCallback callback) {
  if (spec.steps.empty()) {
    return Status::InvalidArgument("pattern needs at least one step");
  }
  if (spec.steps.front().negated) {
    return Status::InvalidArgument(
        "a pattern cannot start with a negated step");
  }
  if (spec.within_micros <= 0) {
    return Status::InvalidArgument("WITHIN must be positive");
  }
  bool any_positive = false;
  for (const PatternStep& step : spec.steps) {
    if (!step.condition.valid()) {
      return Status::InvalidArgument("step '" + step.name +
                                     "' has no compiled condition");
    }
    if (step.negated && step.one_or_more) {
      return Status::InvalidArgument("a step cannot be both NOT and +");
    }
    any_positive |= !step.negated;
  }
  if (!any_positive) {
    return Status::InvalidArgument("pattern needs a positive step");
  }
  auto matcher = std::unique_ptr<PatternMatcher>(
      new PatternMatcher(std::move(spec), std::move(callback)));
  // Compile positions: positive steps with the negations guarding the
  // wait for them. Negations after the last positive step become the
  // pattern's absence guards: the whole match holds its WITHIN interval
  // open and emits only when the watermark confirms no such event.
  std::vector<size_t> pending_guards;
  for (size_t i = 0; i < matcher->spec_.steps.size(); ++i) {
    if (matcher->spec_.steps[i].negated) {
      pending_guards.push_back(i);
    } else {
      matcher->positions_.push_back({i, pending_guards});
      pending_guards.clear();
    }
  }
  matcher->absence_guards_ = std::move(pending_guards);
  return matcher;
}

void PatternMatcher::EmitMatch(const Value& partition_key, const Run& run,
                               TimestampMicros end_ts, ResultKind kind) {
  PatternMatch match;
  match.pattern = spec_.name;
  match.partition_key = partition_key;
  match.start_ts = run.start_ts;
  match.end_ts = end_ts;
  match.kind = kind;
  for (size_t p = 0; p < positions_.size(); ++p) {
    match.bindings.emplace_back(spec_.steps[positions_[p].step_index].name,
                                run.bound[p]);
  }
  if (kind == ResultKind::kRetract) {
    ++retractions_emitted_;
    PatternRetractionsCounter()->Add();
  } else {
    ++matches_emitted_;
  }
  callback_(match);
}

TimestampMicros PatternMatcher::CloseWatermark() const {
  return spec_.consistency == ConsistencyLevel::kFast
             ? tracker_.frontier()
             : tracker_.low_watermark();
}

void PatternMatcher::ProcessEvent(const Record& event, TimestampMicros ts) {
  Value partition_key;
  std::string partition_bytes;
  if (!spec_.partition_by.empty()) {
    auto key = event.GetAttribute(spec_.partition_by);
    partition_key = key.has_value() ? *key : Value::Null();
    partition_key.EncodeTo(&partition_bytes);
  }
  Partition& partition = partitions_[partition_bytes];
  partition.key = partition_key;
  std::deque<Run>& runs = partition.runs;

  // Absence guards: an event matching one inside a pending interval
  // refutes that match. A speculative kInsert already out gets its
  // kRetract here.
  if (!absence_guards_.empty() && !partition.pending.empty()) {
    bool is_guard = false;
    for (const size_t guard : absence_guards_) {
      if (spec_.steps[guard].condition.MatchesOrFalse(event)) {
        is_guard = true;
        break;
      }
    }
    if (is_guard) {
      for (auto it = partition.pending.begin();
           it != partition.pending.end();) {
        if (ts >= it->armed_ts && ts <= it->deadline) {
          if (it->inserted) {
            EmitMatch(partition.key, it->run, it->deadline,
                      ResultKind::kRetract);
          }
          it = partition.pending.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  const bool starts_run =
      spec_.steps[positions_.front().step_index].condition.MatchesOrFalse(
          event);

  std::deque<Run> next_runs;
  for (Run& run : runs) {
    // Expire runs that cannot complete within the window.
    if (ts - run.start_ts > spec_.within_micros) continue;

    if (run.position >= positions_.size()) continue;  // Shouldn't happen.
    const Position& pos = positions_[run.position];

    // Guards: a negated condition observed while waiting kills the run.
    bool killed = false;
    for (const size_t guard : pos.guard_steps) {
      if (spec_.steps[guard].condition.MatchesOrFalse(event)) {
        killed = true;
        break;
      }
    }
    if (killed) continue;

    // Reluctant Kleene: advancing to the next position wins over
    // extending the open Kleene step, so runs can never wedge on events
    // that satisfy both conditions.
    if (spec_.steps[pos.step_index].condition.MatchesOrFalse(event)) {
      run.bound[run.position].push_back(event);
      run.kleene_open = spec_.steps[pos.step_index].one_or_more;
      run.position += 1;
      if (run.position == positions_.size()) {
        // Positive part complete (a trailing Kleene step emits on its
        // first event rather than flooding a match per extension).
        if (absence_guards_.empty()) {
          EmitMatch(partition.key, run, ts, ResultKind::kFinal);
        } else {
          const TimestampMicros deadline =
              run.start_ts + spec_.within_micros;
          partition.pending.push_back({std::move(run), ts, deadline, false});
        }
        continue;  // Run consumed.
      }
      next_runs.push_back(std::move(run));
      continue;
    }
    if (run.kleene_open) {
      const size_t prev_step = positions_[run.position - 1].step_index;
      if (spec_.steps[prev_step].condition.MatchesOrFalse(event)) {
        run.bound[run.position - 1].push_back(event);
        next_runs.push_back(std::move(run));
        continue;
      }
    }
    // Skip-till-next-match: irrelevant events are ignored.
    next_runs.push_back(std::move(run));
  }

  if (starts_run && next_runs.size() < spec_.max_active_runs) {
    Run run;
    run.start_ts = ts;
    run.bound.resize(positions_.size());
    run.bound[0].push_back(event);
    run.kleene_open = spec_.steps[positions_.front().step_index].one_or_more;
    run.position = 1;
    if (run.position == positions_.size()) {
      if (absence_guards_.empty()) {
        EmitMatch(partition.key, run, ts, ResultKind::kFinal);
      } else {
        const TimestampMicros deadline = run.start_ts + spec_.within_micros;
        partition.pending.push_back({std::move(run), ts, deadline, false});
      }
    } else {
      next_runs.push_back(std::move(run));
    }
  }

  runs = std::move(next_runs);
}

void PatternMatcher::DrainReorder() {
  const TimestampMicros low = tracker_.low_watermark();
  if (low == WatermarkTracker::kUnset) return;
  while (!reorder_.empty() && reorder_.begin()->first <= low) {
    auto node = reorder_.extract(reorder_.begin());
    ProcessEvent(node.mapped(), node.key());
  }
}

void PatternMatcher::AdvanceWatermarks() {
  const TimestampMicros close = CloseWatermark();
  const TimestampMicros frontier = tracker_.frontier();
  for (auto& [bytes, partition] : partitions_) {
    if (close != WatermarkTracker::kUnset) {
      // A run whose window closed before the watermark can never
      // complete: any completing event would be rejected as late.
      std::deque<Run>& runs = partition.runs;
      for (auto it = runs.begin(); it != runs.end();) {
        it = it->start_ts + spec_.within_micros < close ? runs.erase(it)
                                                        : it + 1;
      }
    }
    for (auto it = partition.pending.begin();
         it != partition.pending.end();) {
      if (spec_.consistency == ConsistencyLevel::kSpeculative &&
          !it->inserted && frontier != WatermarkTracker::kUnset &&
          frontier > it->deadline) {
        EmitMatch(partition.key, it->run, it->deadline, ResultKind::kInsert);
        it->inserted = true;
      }
      if (close != WatermarkTracker::kUnset && close > it->deadline) {
        EmitMatch(partition.key, it->run, it->deadline, ResultKind::kFinal);
        it = partition.pending.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Status PatternMatcher::Push(const Record& event, TimestampMicros ts) {
  return Push(event, ts, "");
}

Status PatternMatcher::Push(const Record& event, TimestampMicros ts,
                            std::string_view source) {
  const TimestampMicros close_before = CloseWatermark();
  if (close_before != WatermarkTracker::kUnset && ts < close_before) {
    ++late_dropped_;
    PatternLateDroppedCounter()->Add();
    return Status::OK();
  }
  tracker_.Observe(source, ts);
  if (spec_.consistency == ConsistencyLevel::kCorrect) {
    reorder_.emplace(ts, event);
    DrainReorder();
  } else {
    ProcessEvent(event, ts);
  }
  AdvanceWatermarks();
  return Status::OK();
}

Status PatternMatcher::Punctuate(std::string_view source,
                                 TimestampMicros mark) {
  tracker_.Punctuate(source, mark);
  if (spec_.consistency == ConsistencyLevel::kCorrect) DrainReorder();
  AdvanceWatermarks();
  return Status::OK();
}

Status PatternMatcher::Flush() {
  // Drain everything still reordered, in timestamp order, regardless of
  // the watermark (end of stream: nothing else is coming).
  while (!reorder_.empty()) {
    auto node = reorder_.extract(reorder_.begin());
    ProcessEvent(node.mapped(), node.key());
  }
  for (auto& [bytes, partition] : partitions_) {
    for (Pending& pending : partition.pending) {
      EmitMatch(partition.key, pending.run, pending.deadline,
                ResultKind::kFinal);
    }
    partition.pending.clear();
    partition.runs.clear();
  }
  return Status::OK();
}

size_t PatternMatcher::active_runs() const {
  size_t total = 0;
  for (const auto& [key, partition] : partitions_) {
    total += partition.runs.size();
  }
  return total;
}

size_t PatternMatcher::pending_absences() const {
  size_t total = 0;
  for (const auto& [key, partition] : partitions_) {
    total += partition.pending.size();
  }
  return total;
}

}  // namespace edadb
