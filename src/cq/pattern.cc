#include "cq/pattern.h"

#include "common/string_util.h"

namespace edadb {

std::string PatternMatch::ToString() const {
  std::string out = "Match{" + pattern;
  if (!partition_key.is_null()) out += " key=" + partition_key.ToString();
  out += StringPrintf(" [%lld..%lld]", static_cast<long long>(start_ts),
                      static_cast<long long>(end_ts));
  for (const auto& [step, events] : bindings) {
    out += " " + step + ":" + std::to_string(events.size());
  }
  out += "}";
  return out;
}

PatternMatcher::PatternMatcher(PatternSpec spec, MatchCallback callback)
    : spec_(std::move(spec)), callback_(std::move(callback)) {}

Result<std::unique_ptr<PatternMatcher>> PatternMatcher::Create(
    PatternSpec spec, MatchCallback callback) {
  if (spec.steps.empty()) {
    return Status::InvalidArgument("pattern needs at least one step");
  }
  if (spec.steps.front().negated || spec.steps.back().negated) {
    return Status::InvalidArgument(
        "negated steps must be between positive steps");
  }
  if (spec.within_micros <= 0) {
    return Status::InvalidArgument("WITHIN must be positive");
  }
  for (const PatternStep& step : spec.steps) {
    if (!step.condition.valid()) {
      return Status::InvalidArgument("step '" + step.name +
                                     "' has no compiled condition");
    }
    if (step.negated && step.one_or_more) {
      return Status::InvalidArgument("a step cannot be both NOT and +");
    }
  }
  auto matcher = std::unique_ptr<PatternMatcher>(
      new PatternMatcher(std::move(spec), std::move(callback)));
  // Compile positions: positive steps with the negations guarding the
  // wait for them.
  std::vector<size_t> pending_guards;
  for (size_t i = 0; i < matcher->spec_.steps.size(); ++i) {
    if (matcher->spec_.steps[i].negated) {
      pending_guards.push_back(i);
    } else {
      matcher->positions_.push_back({i, pending_guards});
      pending_guards.clear();
    }
  }
  return matcher;
}

void PatternMatcher::EmitMatch(const Value& partition_key, const Run& run,
                               TimestampMicros end_ts) {
  PatternMatch match;
  match.pattern = spec_.name;
  match.partition_key = partition_key;
  match.start_ts = run.start_ts;
  match.end_ts = end_ts;
  for (size_t p = 0; p < positions_.size(); ++p) {
    match.bindings.emplace_back(spec_.steps[positions_[p].step_index].name,
                                run.bound[p]);
  }
  ++matches_emitted_;
  callback_(match);
}

Status PatternMatcher::Push(const Record& event, TimestampMicros ts) {
  Value partition_key;
  std::string partition_bytes;
  if (!spec_.partition_by.empty()) {
    auto key = event.GetAttribute(spec_.partition_by);
    partition_key = key.has_value() ? *key : Value::Null();
    partition_key.EncodeTo(&partition_bytes);
  }
  auto& [display_key, runs] = partitions_[partition_bytes];
  display_key = partition_key;

  const bool starts_run =
      spec_.steps[positions_.front().step_index].condition.MatchesOrFalse(
          event);

  std::deque<Run> next_runs;
  for (Run& run : runs) {
    // Expire runs that cannot complete within the window.
    if (ts - run.start_ts > spec_.within_micros) continue;

    if (run.position >= positions_.size()) continue;  // Shouldn't happen.
    const Position& pos = positions_[run.position];

    // Guards: a negated condition observed while waiting kills the run.
    bool killed = false;
    for (const size_t guard : pos.guard_steps) {
      if (spec_.steps[guard].condition.MatchesOrFalse(event)) {
        killed = true;
        break;
      }
    }
    if (killed) continue;

    // Reluctant Kleene: advancing to the next position wins over
    // extending the open Kleene step, so runs can never wedge on events
    // that satisfy both conditions.
    if (spec_.steps[pos.step_index].condition.MatchesOrFalse(event)) {
      run.bound[run.position].push_back(event);
      run.kleene_open = spec_.steps[pos.step_index].one_or_more;
      run.position += 1;
      if (run.position == positions_.size()) {
        // Pattern complete (a trailing Kleene step emits on its first
        // event rather than flooding a match per extension).
        EmitMatch(display_key, run, ts);
        continue;  // Run consumed.
      }
      next_runs.push_back(std::move(run));
      continue;
    }
    if (run.kleene_open) {
      const size_t prev_step = positions_[run.position - 1].step_index;
      if (spec_.steps[prev_step].condition.MatchesOrFalse(event)) {
        run.bound[run.position - 1].push_back(event);
        next_runs.push_back(std::move(run));
        continue;
      }
    }
    // Skip-till-next-match: irrelevant events are ignored.
    next_runs.push_back(std::move(run));
  }

  if (starts_run && next_runs.size() < spec_.max_active_runs) {
    Run run;
    run.start_ts = ts;
    run.bound.resize(positions_.size());
    run.bound[0].push_back(event);
    run.kleene_open = spec_.steps[positions_.front().step_index].one_or_more;
    run.position = 1;
    if (run.position == positions_.size()) {
      EmitMatch(display_key, run, ts);
    } else {
      next_runs.push_back(std::move(run));
    }
  }

  runs = std::move(next_runs);
  return Status::OK();
}

size_t PatternMatcher::active_runs() const {
  size_t total = 0;
  for (const auto& [key, partition] : partitions_) {
    total += partition.second.size();
  }
  return total;
}

}  // namespace edadb
