#include "cq/window.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/metrics.h"
#include "common/string_util.h"

namespace edadb {

namespace {

// Event-time consistency counters (DESIGN.md §15), mirrored into the
// __metrics table by MetricsTable like every registry instrument.
metrics::Counter* LateDroppedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.late_dropped");
  return c;
}

metrics::Counter* RetractionsCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.retractions_emitted");
  return c;
}

metrics::Counter* SpeculativeCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.speculative_emitted");
  return c;
}

metrics::Counter* FinalizedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("cq.windows_finalized");
  return c;
}

metrics::Histogram* WatermarkLag() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("cq.watermark_lag_us");
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// SlidingWindowStats

void SlidingWindowStats::RebuildExtremeDeques() {
  min_deque_.clear();
  max_deque_.clear();
  for (const auto& [ts, value] : values_) {
    while (!min_deque_.empty() && min_deque_.back().second >= value) {
      min_deque_.pop_back();
    }
    min_deque_.emplace_back(ts, value);
    while (!max_deque_.empty() && max_deque_.back().second <= value) {
      max_deque_.pop_back();
    }
    max_deque_.emplace_back(ts, value);
  }
}

void SlidingWindowStats::Add(TimestampMicros ts, double value) {
  // A timestamp at or below the applied eviction horizon belongs to a
  // window that is already gone; resurrecting it would corrupt the
  // retained sums, so it is rejected with accounting instead (the
  // Release-mode silent-corruption bug this replaces was a bare assert).
  if (ts <= evicted_through_) {
    ++late_dropped_;
    return;
  }
  if (values_.empty() || ts >= values_.back().first) {
    // In-order fast path: O(1) amortized monotonic-deque maintenance.
    values_.emplace_back(ts, value);
    while (!min_deque_.empty() && min_deque_.back().second >= value) {
      min_deque_.pop_back();
    }
    min_deque_.emplace_back(ts, value);
    while (!max_deque_.empty() && max_deque_.back().second <= value) {
      max_deque_.pop_back();
    }
    max_deque_.emplace_back(ts, value);
  } else {
    // Out-of-order: sorted insert keeps values_ a valid window, then
    // the extreme deques are rebuilt in timestamp order — O(n), paid
    // only by the disordered Add.
    ++out_of_order_;
    auto it = std::upper_bound(
        values_.begin(), values_.end(), ts,
        [](TimestampMicros t, const std::pair<TimestampMicros, double>& p) {
          return t < p.first;
        });
    values_.emplace(it, ts, value);
    RebuildExtremeDeques();
  }
  sum_ += value;
  sum_squares_ += value * value;
  EvictBefore(values_.back().first - width_);
}

void SlidingWindowStats::EvictBefore(TimestampMicros ts) {
  evicted_through_ = std::max(evicted_through_, ts);
  while (!values_.empty() && values_.front().first <= ts) {
    sum_ -= values_.front().second;
    sum_squares_ -= values_.front().second * values_.front().second;
    values_.pop_front();
  }
  while (!min_deque_.empty() && min_deque_.front().first <= ts) {
    min_deque_.pop_front();
  }
  while (!max_deque_.empty() && max_deque_.front().first <= ts) {
    max_deque_.pop_front();
  }
}

double SlidingWindowStats::mean() const {
  return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

double SlidingWindowStats::variance() const {
  if (values_.empty()) return 0.0;
  const double n = static_cast<double>(values_.size());
  const double m = sum_ / n;
  // Guard against catastrophic cancellation producing tiny negatives.
  const double var = sum_squares_ / n - m * m;
  return var > 0.0 ? var : 0.0;
}

double SlidingWindowStats::stddev() const { return std::sqrt(variance()); }

double SlidingWindowStats::min() const {
  assert(!min_deque_.empty());
  return min_deque_.front().second;
}

double SlidingWindowStats::max() const {
  assert(!max_deque_.empty());
  return max_deque_.front().second;
}

// ---------------------------------------------------------------------------
// WindowedAggregator

std::string WindowResult::ToString() const {
  std::string out = StringPrintf(
      "Window[%lld, %lld) key=%s rows=%lld %s/%lld",
      static_cast<long long>(window_start),
      static_cast<long long>(window_end), key.ToString().c_str(),
      static_cast<long long>(rows),
      std::string(ResultKindName(kind)).c_str(),
      static_cast<long long>(revision));
  for (const auto& [alias, value] : aggregates) {
    out += " " + alias + "=" + value.ToString();
  }
  return out;
}

void AggAccumulator::Add(const Value& v) {
  if (v.is_null()) return;
  ++count;
  if (v.type() == ValueType::kInt64) {
    int_sum += v.int64_value();
    double_sum += static_cast<double>(v.int64_value());
  } else {
    auto d = v.AsDouble();
    if (d.ok()) double_sum += *d;
    all_int = false;
  }
  if (!has_extreme) {
    min_value = v;
    max_value = v;
    has_extreme = true;
  } else {
    if (Value::CompareTotalOrder(v, min_value) < 0) min_value = v;
    if (Value::CompareTotalOrder(v, max_value) > 0) max_value = v;
  }
}

Value AggAccumulator::Finish(const Aggregate& agg, int64_t rows) const {
  switch (agg.func) {
    case Aggregate::Func::kCount:
      return Value::Int64(agg.column.empty() ? rows : count);
    case Aggregate::Func::kSum:
      if (count == 0) return Value::Null();
      return all_int ? Value::Int64(int_sum) : Value::Double(double_sum);
    case Aggregate::Func::kAvg:
      if (count == 0) return Value::Null();
      return Value::Double(double_sum / static_cast<double>(count));
    case Aggregate::Func::kMin:
      return has_extreme ? min_value : Value::Null();
    case Aggregate::Func::kMax:
      return has_extreme ? max_value : Value::Null();
  }
  return Value::Null();
}

WindowedAggregator::WindowedAggregator(WindowAggregatorOptions options,
                                       ResultCallback callback)
    : options_(std::move(options)),
      callback_(std::move(callback)),
      tracker_(options_.consistency == ConsistencyLevel::kFast
                   ? 0
                   : options_.allowed_lateness_micros) {
  if (options_.slide_micros <= 0) {
    options_.slide_micros = options_.window_size_micros;
  }
}

TimestampMicros WindowedAggregator::CloseWatermark() const {
  // kFast closes at the frontier (the tracker was built with zero
  // lateness, so its low watermark IS the per-source merge); the other
  // levels wait out the lateness allowance.
  return options_.consistency == ConsistencyLevel::kFast
             ? tracker_.frontier()
             : tracker_.low_watermark();
}

Status WindowedAggregator::AddToWindow(TimestampMicros window_start,
                                       const Record& row, TimestampMicros ts,
                                       TimestampMicros frontier_before) {
  std::string key_bytes;
  Value key;
  if (!options_.key_column.empty()) {
    EDADB_ASSIGN_OR_RETURN(key, row.Get(options_.key_column));
    key.EncodeTo(&key_bytes);
  }
  Group& group = windows_[window_start][key_bytes];
  if (group.rows == 0) {
    group.key = key;
    group.accs.resize(options_.aggregates.size());
  }
  ++group.rows;
  if (options_.recompute_at_close) {
    group.buffered.push_back(row);
  } else {
    for (size_t i = 0; i < options_.aggregates.size(); ++i) {
      const Aggregate& agg = options_.aggregates[i];
      if (agg.func == Aggregate::Func::kCount && agg.column.empty()) continue;
      EDADB_ASSIGN_OR_RETURN(Value v, row.Get(agg.column));
      group.accs[i].Add(v);
    }
  }
  // A straggler landing in a window the frontier had already passed
  // (and which was therefore speculatively emitted, or would have been
  // had this key existed) revises it immediately: retract the stale
  // result, insert the revision.
  (void)ts;
  if (options_.consistency == ConsistencyLevel::kSpeculative &&
      frontier_before != WatermarkTracker::kUnset &&
      window_start + options_.window_size_micros <= frontier_before) {
    EDADB_RETURN_IF_ERROR(EmitRevision(window_start, &group));
  }
  return Status::OK();
}

Status WindowedAggregator::Push(const Record& row, TimestampMicros ts) {
  return Push(row, ts, "");
}

Status WindowedAggregator::Push(const Record& row, TimestampMicros ts,
                                std::string_view source) {
  // An event older than the close watermark belongs to windows whose
  // state is already sealed and gone — drop with accounting. (Events at
  // or ahead of it only touch windows that end strictly after it.)
  const TimestampMicros close_before = CloseWatermark();
  if (close_before != WatermarkTracker::kUnset && ts < close_before) {
    ++late_dropped_;
    LateDroppedCounter()->Add();
    return Status::OK();
  }
  const TimestampMicros frontier_before = tracker_.frontier();
  tracker_.Observe(source, ts);
  // Assign to every window [start, start + size) containing ts, with
  // starts aligned to multiples of slide.
  const TimestampMicros slide = options_.slide_micros;
  const TimestampMicros size = options_.window_size_micros;
  // Highest-aligned start <= ts (floor division toward -inf).
  TimestampMicros start =
      (ts >= 0 ? ts / slide : -((-ts + slide - 1) / slide)) * slide;
  for (; start > ts - size; start -= slide) {
    EDADB_RETURN_IF_ERROR(AddToWindow(start, row, ts, frontier_before));
  }
  EDADB_RETURN_IF_ERROR(AdvanceWatermarks());
  WatermarkLag()->Record(static_cast<uint64_t>(tracker_.lag_micros()));
  return Status::OK();
}

Status WindowedAggregator::Punctuate(std::string_view source,
                                     TimestampMicros mark) {
  tracker_.Punctuate(source, mark);
  return AdvanceWatermarks();
}

Status WindowedAggregator::AdvanceWatermarks() {
  const TimestampMicros close = CloseWatermark();
  if (close != WatermarkTracker::kUnset) {
    while (!windows_.empty()) {
      const TimestampMicros start = windows_.begin()->first;
      if (start + options_.window_size_micros > close) break;
      EDADB_RETURN_IF_ERROR(FinalizeWindow(start));
    }
  }
  if (options_.consistency == ConsistencyLevel::kSpeculative) {
    // Speculative emission for windows the frontier passed but the low
    // watermark has not sealed. The walk revisits the (bounded by
    // lateness / slide) open speculative windows; already-emitted
    // groups are skipped, so re-walks are cheap.
    const TimestampMicros frontier = tracker_.frontier();
    for (auto& [start, groups] : windows_) {
      if (frontier == WatermarkTracker::kUnset ||
          start + options_.window_size_micros > frontier) {
        break;
      }
      for (auto& [key_bytes, group] : groups) {
        if (!group.emitted) {
          EDADB_RETURN_IF_ERROR(EmitRevision(start, &group));
        }
      }
    }
  }
  return Status::OK();
}

Status WindowedAggregator::BuildResult(TimestampMicros window_start,
                                       Group* group, ResultKind kind,
                                       WindowResult* out) {
  if (options_.recompute_at_close) {
    // Ablation path: one full pass over the buffered rows.
    group->accs.assign(options_.aggregates.size(), AggAccumulator());
    for (const Record& row : group->buffered) {
      for (size_t i = 0; i < options_.aggregates.size(); ++i) {
        const Aggregate& agg = options_.aggregates[i];
        if (agg.func == Aggregate::Func::kCount && agg.column.empty()) {
          continue;
        }
        EDADB_ASSIGN_OR_RETURN(Value v, row.Get(agg.column));
        group->accs[i].Add(v);
      }
    }
  }
  out->window_start = window_start;
  out->window_end = window_start + options_.window_size_micros;
  out->key = group->key;
  out->rows = group->rows;
  out->kind = kind;
  out->revision = group->revision;
  out->aggregates.clear();
  out->aggregates.reserve(options_.aggregates.size());
  for (size_t i = 0; i < options_.aggregates.size(); ++i) {
    const Aggregate& agg = options_.aggregates[i];
    out->aggregates.emplace_back(
        agg.alias.empty() ? std::string(Aggregate::FuncName(agg.func))
                          : agg.alias,
        group->accs[i].Finish(agg, group->rows));
  }
  return Status::OK();
}

Status WindowedAggregator::EmitRevision(TimestampMicros window_start,
                                        Group* group) {
  if (group->emitted) {
    WindowResult retract;
    retract.window_start = window_start;
    retract.window_end = window_start + options_.window_size_micros;
    retract.key = group->key;
    retract.rows = group->emitted_rows;
    retract.kind = ResultKind::kRetract;
    retract.revision = group->revision;
    retract.aggregates = group->emitted_aggregates;
    ++retractions_emitted_;
    RetractionsCounter()->Add();
    callback_(retract);
    ++group->revision;
  }
  WindowResult insert;
  EDADB_RETURN_IF_ERROR(
      BuildResult(window_start, group, ResultKind::kInsert, &insert));
  group->emitted = true;
  group->emitted_rows = insert.rows;
  group->emitted_aggregates = insert.aggregates;
  ++speculative_emitted_;
  SpeculativeCounter()->Add();
  callback_(insert);
  return Status::OK();
}

Status WindowedAggregator::FinalizeWindow(TimestampMicros window_start) {
  auto it = windows_.find(window_start);
  if (it == windows_.end()) return Status::OK();
  for (auto& [key_bytes, group] : it->second) {
    WindowResult result;
    EDADB_RETURN_IF_ERROR(
        BuildResult(window_start, &group, ResultKind::kFinal, &result));
    FinalizedCounter()->Add();
    callback_(result);
  }
  windows_.erase(it);
  return Status::OK();
}

Status WindowedAggregator::Flush() {
  while (!windows_.empty()) {
    EDADB_RETURN_IF_ERROR(FinalizeWindow(windows_.begin()->first));
  }
  return Status::OK();
}

size_t WindowedAggregator::open_windows() const { return windows_.size(); }

// ---------------------------------------------------------------------------
// SessionAggregator

SessionAggregator::SessionAggregator(SessionAggregatorOptions options,
                                     ResultCallback callback)
    : options_(std::move(options)), callback_(std::move(callback)) {}

void SessionAggregator::Emit(const Session& session) {
  WindowResult result;
  result.window_start = session.start_ts;
  result.window_end = session.last_ts + options_.gap_micros;
  result.key = session.key;
  result.rows = session.rows;
  result.aggregates.reserve(options_.aggregates.size());
  for (size_t i = 0; i < options_.aggregates.size(); ++i) {
    const Aggregate& agg = options_.aggregates[i];
    result.aggregates.emplace_back(
        agg.alias.empty() ? std::string(Aggregate::FuncName(agg.func))
                          : agg.alias,
        session.accs[i].Finish(agg, session.rows));
  }
  callback_(result);
}

void SessionAggregator::CloseIdleSessions(TimestampMicros watermark) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.last_ts + options_.gap_micros <= watermark) {
      Emit(it->second);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Status SessionAggregator::Push(const Record& row, TimestampMicros ts) {
  CloseIdleSessions(ts);

  std::string key_bytes;
  Value key;
  if (!options_.key_column.empty()) {
    EDADB_ASSIGN_OR_RETURN(key, row.Get(options_.key_column));
    key.EncodeTo(&key_bytes);
  }
  auto [it, fresh] = sessions_.try_emplace(key_bytes);
  Session& session = it->second;
  if (fresh) {
    session.key = key;
    session.start_ts = ts;
    session.accs.resize(options_.aggregates.size());
  }
  session.last_ts = ts;
  ++session.rows;
  for (size_t i = 0; i < options_.aggregates.size(); ++i) {
    const Aggregate& agg = options_.aggregates[i];
    if (agg.func == Aggregate::Func::kCount && agg.column.empty()) continue;
    EDADB_ASSIGN_OR_RETURN(Value v, row.Get(agg.column));
    session.accs[i].Add(v);
  }
  return Status::OK();
}

Status SessionAggregator::Flush() {
  for (auto& [key_bytes, session] : sessions_) {
    Emit(session);
  }
  sessions_.clear();
  return Status::OK();
}

}  // namespace edadb
