#include "cq/window.h"

#include <cassert>
#include <cmath>

#include "common/string_util.h"

namespace edadb {

// ---------------------------------------------------------------------------
// SlidingWindowStats

void SlidingWindowStats::Add(TimestampMicros ts, double value) {
  assert(values_.empty() || ts >= values_.back().first);
  values_.emplace_back(ts, value);
  sum_ += value;
  sum_squares_ += value * value;
  while (!min_deque_.empty() && min_deque_.back().second >= value) {
    min_deque_.pop_back();
  }
  min_deque_.emplace_back(ts, value);
  while (!max_deque_.empty() && max_deque_.back().second <= value) {
    max_deque_.pop_back();
  }
  max_deque_.emplace_back(ts, value);
  EvictBefore(ts - width_);
}

void SlidingWindowStats::EvictBefore(TimestampMicros ts) {
  while (!values_.empty() && values_.front().first <= ts) {
    sum_ -= values_.front().second;
    sum_squares_ -= values_.front().second * values_.front().second;
    values_.pop_front();
  }
  while (!min_deque_.empty() && min_deque_.front().first <= ts) {
    min_deque_.pop_front();
  }
  while (!max_deque_.empty() && max_deque_.front().first <= ts) {
    max_deque_.pop_front();
  }
}

double SlidingWindowStats::mean() const {
  return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
}

double SlidingWindowStats::variance() const {
  if (values_.empty()) return 0.0;
  const double n = static_cast<double>(values_.size());
  const double m = sum_ / n;
  // Guard against catastrophic cancellation producing tiny negatives.
  const double var = sum_squares_ / n - m * m;
  return var > 0.0 ? var : 0.0;
}

double SlidingWindowStats::stddev() const { return std::sqrt(variance()); }

double SlidingWindowStats::min() const {
  assert(!min_deque_.empty());
  return min_deque_.front().second;
}

double SlidingWindowStats::max() const {
  assert(!max_deque_.empty());
  return max_deque_.front().second;
}

// ---------------------------------------------------------------------------
// WindowedAggregator

std::string WindowResult::ToString() const {
  std::string out = StringPrintf(
      "Window[%lld, %lld) key=%s rows=%lld",
      static_cast<long long>(window_start),
      static_cast<long long>(window_end), key.ToString().c_str(),
      static_cast<long long>(rows));
  for (const auto& [alias, value] : aggregates) {
    out += " " + alias + "=" + value.ToString();
  }
  return out;
}

void AggAccumulator::Add(const Value& v) {
  if (v.is_null()) return;
  ++count;
  if (v.type() == ValueType::kInt64) {
    int_sum += v.int64_value();
    double_sum += static_cast<double>(v.int64_value());
  } else {
    auto d = v.AsDouble();
    if (d.ok()) double_sum += *d;
    all_int = false;
  }
  if (!has_extreme) {
    min_value = v;
    max_value = v;
    has_extreme = true;
  } else {
    if (Value::CompareTotalOrder(v, min_value) < 0) min_value = v;
    if (Value::CompareTotalOrder(v, max_value) > 0) max_value = v;
  }
}

Value AggAccumulator::Finish(const Aggregate& agg, int64_t rows) const {
  switch (agg.func) {
    case Aggregate::Func::kCount:
      return Value::Int64(agg.column.empty() ? rows : count);
    case Aggregate::Func::kSum:
      if (count == 0) return Value::Null();
      return all_int ? Value::Int64(int_sum) : Value::Double(double_sum);
    case Aggregate::Func::kAvg:
      if (count == 0) return Value::Null();
      return Value::Double(double_sum / static_cast<double>(count));
    case Aggregate::Func::kMin:
      return has_extreme ? min_value : Value::Null();
    case Aggregate::Func::kMax:
      return has_extreme ? max_value : Value::Null();
  }
  return Value::Null();
}

WindowedAggregator::WindowedAggregator(WindowAggregatorOptions options,
                                       ResultCallback callback)
    : options_(std::move(options)), callback_(std::move(callback)) {
  if (options_.slide_micros <= 0) {
    options_.slide_micros = options_.window_size_micros;
  }
}

Status WindowedAggregator::AddToWindow(TimestampMicros window_start,
                                       const Record& row,
                                       TimestampMicros /*ts*/) {
  std::string key_bytes;
  Value key;
  if (!options_.key_column.empty()) {
    EDADB_ASSIGN_OR_RETURN(key, row.Get(options_.key_column));
    key.EncodeTo(&key_bytes);
  }
  Group& group = windows_[window_start][key_bytes];
  if (group.rows == 0) {
    group.key = key;
    group.accs.resize(options_.aggregates.size());
  }
  ++group.rows;
  if (options_.recompute_at_close) {
    group.buffered.push_back(row);
    return Status::OK();
  }
  for (size_t i = 0; i < options_.aggregates.size(); ++i) {
    const Aggregate& agg = options_.aggregates[i];
    if (agg.func == Aggregate::Func::kCount && agg.column.empty()) continue;
    EDADB_ASSIGN_OR_RETURN(Value v, row.Get(agg.column));
    group.accs[i].Add(v);
  }
  return Status::OK();
}

Status WindowedAggregator::Push(const Record& row, TimestampMicros ts) {
  // An event at ts >= watermark only touches windows that end strictly
  // after the watermark, i.e. windows not yet emitted — so `<` is the
  // exact lateness test.
  if (ts < watermark_) {
    ++late_dropped_;
    return Status::OK();
  }
  // Assign to every window [start, start + size) containing ts, with
  // starts aligned to multiples of slide.
  const TimestampMicros slide = options_.slide_micros;
  const TimestampMicros size = options_.window_size_micros;
  // Highest-aligned start <= ts (floor division toward -inf).
  TimestampMicros start = (ts >= 0 ? ts / slide : -((-ts + slide - 1) / slide)) * slide;
  for (; start > ts - size; start -= slide) {
    EDADB_RETURN_IF_ERROR(AddToWindow(start, row, ts));
  }
  const TimestampMicros new_watermark =
      ts - options_.allowed_lateness_micros;
  if (new_watermark > watermark_) {
    watermark_ = new_watermark;
    EDADB_RETURN_IF_ERROR(EmitDueWindows());
  }
  return Status::OK();
}

Status WindowedAggregator::EmitDueWindows() {
  while (!windows_.empty()) {
    const TimestampMicros start = windows_.begin()->first;
    if (start + options_.window_size_micros > watermark_) break;
    EDADB_RETURN_IF_ERROR(EmitWindow(start));
  }
  return Status::OK();
}

Status WindowedAggregator::EmitWindow(TimestampMicros window_start) {
  auto it = windows_.find(window_start);
  if (it == windows_.end()) return Status::OK();
  for (auto& [key_bytes, group] : it->second) {
    if (options_.recompute_at_close) {
      // Ablation path: one full pass over the buffered rows.
      group.accs.assign(options_.aggregates.size(), AggAccumulator());
      for (const Record& row : group.buffered) {
        for (size_t i = 0; i < options_.aggregates.size(); ++i) {
          const Aggregate& agg = options_.aggregates[i];
          if (agg.func == Aggregate::Func::kCount && agg.column.empty()) {
            continue;
          }
          EDADB_ASSIGN_OR_RETURN(Value v, row.Get(agg.column));
          group.accs[i].Add(v);
        }
      }
    }
    WindowResult result;
    result.window_start = window_start;
    result.window_end = window_start + options_.window_size_micros;
    result.key = group.key;
    result.rows = group.rows;
    result.aggregates.reserve(options_.aggregates.size());
    for (size_t i = 0; i < options_.aggregates.size(); ++i) {
      const Aggregate& agg = options_.aggregates[i];
      result.aggregates.emplace_back(
          agg.alias.empty() ? std::string(Aggregate::FuncName(agg.func))
                            : agg.alias,
          group.accs[i].Finish(agg, group.rows));
    }
    callback_(result);
  }
  windows_.erase(it);
  return Status::OK();
}

Status WindowedAggregator::Flush() {
  while (!windows_.empty()) {
    EDADB_RETURN_IF_ERROR(EmitWindow(windows_.begin()->first));
  }
  return Status::OK();
}

size_t WindowedAggregator::open_windows() const { return windows_.size(); }

// ---------------------------------------------------------------------------
// SessionAggregator

SessionAggregator::SessionAggregator(SessionAggregatorOptions options,
                                     ResultCallback callback)
    : options_(std::move(options)), callback_(std::move(callback)) {}

void SessionAggregator::Emit(const Session& session) {
  WindowResult result;
  result.window_start = session.start_ts;
  result.window_end = session.last_ts + options_.gap_micros;
  result.key = session.key;
  result.rows = session.rows;
  result.aggregates.reserve(options_.aggregates.size());
  for (size_t i = 0; i < options_.aggregates.size(); ++i) {
    const Aggregate& agg = options_.aggregates[i];
    result.aggregates.emplace_back(
        agg.alias.empty() ? std::string(Aggregate::FuncName(agg.func))
                          : agg.alias,
        session.accs[i].Finish(agg, session.rows));
  }
  callback_(result);
}

void SessionAggregator::CloseIdleSessions(TimestampMicros watermark) {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second.last_ts + options_.gap_micros <= watermark) {
      Emit(it->second);
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Status SessionAggregator::Push(const Record& row, TimestampMicros ts) {
  CloseIdleSessions(ts);

  std::string key_bytes;
  Value key;
  if (!options_.key_column.empty()) {
    EDADB_ASSIGN_OR_RETURN(key, row.Get(options_.key_column));
    key.EncodeTo(&key_bytes);
  }
  auto [it, fresh] = sessions_.try_emplace(key_bytes);
  Session& session = it->second;
  if (fresh) {
    session.key = key;
    session.start_ts = ts;
    session.accs.resize(options_.aggregates.size());
  }
  session.last_ts = ts;
  ++session.rows;
  for (size_t i = 0; i < options_.aggregates.size(); ++i) {
    const Aggregate& agg = options_.aggregates[i];
    if (agg.func == Aggregate::Func::kCount && agg.column.empty()) continue;
    EDADB_ASSIGN_OR_RETURN(Value v, row.Get(agg.column));
    session.accs[i].Add(v);
  }
  return Status::OK();
}

Status SessionAggregator::Flush() {
  for (auto& [key_bytes, session] : sessions_) {
    Emit(session);
  }
  sessions_.clear();
  return Status::OK();
}

}  // namespace edadb
