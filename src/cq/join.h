#ifndef EDADB_CQ_JOIN_H_
#define EDADB_CQ_JOIN_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "cq/watermark.h"
#include "db/database.h"
#include "value/record.h"

namespace edadb {

/// Stream-table join (enrichment): each stream event is joined with the
/// current rows of a database table whose `table_key` equals the
/// event's `stream_key` — the standard pattern for decorating events
/// with reference data (sensor → location, account → tier). Uses the
/// table's secondary index on `table_key` when one exists.
///
/// Emits one output per matching row; in left-outer mode an event with
/// no match emits once with NULL table columns. Output schema =
/// stream schema ++ table schema (table columns renamed
/// "<table>.<col>" on name collisions).
class StreamTableJoin {
 public:
  using OutputCallback = std::function<void(const Record&)>;

  struct Options {
    std::string stream_key;
    std::string table;
    std::string table_key;
    bool left_outer = false;
  };

  /// Validates the table and builds the output schema. `db` must
  /// outlive the join. The stream schema is fixed per join instance.
  EDADB_NODISCARD static Result<std::unique_ptr<StreamTableJoin>> Create(
      Database* db, SchemaPtr stream_schema, Options options,
      OutputCallback callback);

  /// Joins one event against the table's current contents.
  EDADB_NODISCARD Status Push(const Record& event);

  const SchemaPtr& output_schema() const { return output_schema_; }
  uint64_t emitted() const { return emitted_; }

 private:
  StreamTableJoin(Database* db, SchemaPtr stream_schema, Options options,
                  OutputCallback callback)
      : db_(db),
        stream_schema_(std::move(stream_schema)),
        options_(std::move(options)),
        callback_(std::move(callback)) {}

  Record Merge(const Record& event, const Record* table_row) const;

  Database* db_;
  SchemaPtr stream_schema_;
  Options options_;
  OutputCallback callback_;
  SchemaPtr output_schema_;
  uint64_t emitted_ = 0;
};

/// Interval stream-stream equi-join: events from the left and right
/// streams pair up when their join keys are equal and their event times
/// are within `window_micros` of each other (|tl - tr| <= window).
/// Each side buffers its recent events per key, sorted by event time,
/// so out-of-order arrivals pair correctly; a min-heap over buffered
/// timestamps evicts expired entries as the watermark advances, so
/// memory is bounded by rate × window even under disorder. (The seed's
/// arrival-order eviction deque let one out-of-order event strand
/// buffered entries forever.)
///
/// The consistency knob picks the eviction watermark:
///   kFast                  the event-time frontier (max ts on either
///                          side) — the pre-event-time behaviour, and
///                          the default. An event later than
///                          frontier - window pairs with what is still
///                          buffered but is not buffered itself
///                          (counted in late_dropped()).
///   kSpeculative/kCorrect  the merged per-side low watermark minus
///                          allowed lateness — one slow side holds
///                          eviction back, so a straggler on it still
///                          finds its partners. Join output is
///                          append-only (a late pairing is a new
///                          result, never a revision), so both levels
///                          evict identically and nothing retracts.
///
/// The canonical CEP use: correlate an order event with its payment
/// event within 5 minutes.
class IntervalJoin {
 public:
  /// Receives (left event, right event, pairing time = max of the two).
  using OutputCallback =
      std::function<void(const Record&, const Record&, TimestampMicros)>;

  struct Options {
    std::string left_key;
    std::string right_key;
    TimestampMicros window_micros = kMicrosPerMinute;
    TimestampMicros allowed_lateness_micros = 0;
    ConsistencyLevel consistency = ConsistencyLevel::kFast;
  };

  IntervalJoin(Options options, OutputCallback callback);

  /// Feeds one event to a side; event time may arrive out of order.
  /// Emits every pairing with buffered events of the other side.
  EDADB_NODISCARD Status PushLeft(const Record& event, TimestampMicros ts);
  EDADB_NODISCARD Status PushRight(const Record& event, TimestampMicros ts);

  /// Punctuation for one side: it promises no events with ts < mark.
  /// Advances the eviction watermark (kSpeculative/kCorrect care).
  void PunctuateLeft(TimestampMicros mark);
  void PunctuateRight(TimestampMicros mark);

  size_t buffered_left() const { return left_.buffered; }
  size_t buffered_right() const { return right_.buffered; }
  uint64_t emitted() const { return emitted_; }
  /// Events too old to buffer (older than watermark - window); they
  /// still paired against the surviving buffer before being dropped.
  uint64_t late_dropped() const { return late_dropped_; }
  const WatermarkTracker& watermarks() const { return tracker_; }

 private:
  struct Side {
    /// Encoded key -> buffered events sorted by event time.
    std::map<std::string, std::multimap<TimestampMicros, Record>> by_key;
    /// Min-heap of (ts, key) mirroring by_key, so eviction pops the
    /// globally oldest entry regardless of arrival order.
    std::priority_queue<std::pair<TimestampMicros, std::string>,
                        std::vector<std::pair<TimestampMicros, std::string>>,
                        std::greater<>>
        expiry;
    size_t buffered = 0;
  };

  /// The watermark whose trailing edge (minus window) evicts buffers.
  TimestampMicros EvictionWatermark() const;

  EDADB_NODISCARD Status Push(bool left, const Record& event, TimestampMicros ts);
  void Evict(Side* side);

  Options options_;
  OutputCallback callback_;
  Side left_;
  Side right_;
  WatermarkTracker tracker_;
  uint64_t emitted_ = 0;
  uint64_t late_dropped_ = 0;
};

}  // namespace edadb

#endif  // EDADB_CQ_JOIN_H_
