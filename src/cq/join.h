#ifndef EDADB_CQ_JOIN_H_
#define EDADB_CQ_JOIN_H_

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "db/database.h"
#include "value/record.h"

namespace edadb {

/// Stream-table join (enrichment): each stream event is joined with the
/// current rows of a database table whose `table_key` equals the
/// event's `stream_key` — the standard pattern for decorating events
/// with reference data (sensor → location, account → tier). Uses the
/// table's secondary index on `table_key` when one exists.
///
/// Emits one output per matching row; in left-outer mode an event with
/// no match emits once with NULL table columns. Output schema =
/// stream schema ++ table schema (table columns renamed
/// "<table>.<col>" on name collisions).
class StreamTableJoin {
 public:
  using OutputCallback = std::function<void(const Record&)>;

  struct Options {
    std::string stream_key;
    std::string table;
    std::string table_key;
    bool left_outer = false;
  };

  /// Validates the table and builds the output schema. `db` must
  /// outlive the join. The stream schema is fixed per join instance.
  EDADB_NODISCARD static Result<std::unique_ptr<StreamTableJoin>> Create(
      Database* db, SchemaPtr stream_schema, Options options,
      OutputCallback callback);

  /// Joins one event against the table's current contents.
  EDADB_NODISCARD Status Push(const Record& event);

  const SchemaPtr& output_schema() const { return output_schema_; }
  uint64_t emitted() const { return emitted_; }

 private:
  StreamTableJoin(Database* db, SchemaPtr stream_schema, Options options,
                  OutputCallback callback)
      : db_(db),
        stream_schema_(std::move(stream_schema)),
        options_(std::move(options)),
        callback_(std::move(callback)) {}

  Record Merge(const Record& event, const Record* table_row) const;

  Database* db_;
  SchemaPtr stream_schema_;
  Options options_;
  OutputCallback callback_;
  SchemaPtr output_schema_;
  uint64_t emitted_ = 0;
};

/// Windowed stream-stream equi-join: events from the left and right
/// streams pair up when their join keys are equal and their event times
/// are within `window_micros` of each other (|tl - tr| <= window).
/// Each side buffers its recent events per key; a global watermark
/// (max event time seen on either side) evicts expired entries, so
/// memory is bounded by rate × window.
///
/// The canonical CEP use: correlate an order event with its payment
/// event within 5 minutes.
class StreamStreamJoin {
 public:
  /// Receives (left event, right event, pairing time = max of the two).
  using OutputCallback =
      std::function<void(const Record&, const Record&, TimestampMicros)>;

  struct Options {
    std::string left_key;
    std::string right_key;
    TimestampMicros window_micros = kMicrosPerMinute;
  };

  StreamStreamJoin(Options options, OutputCallback callback);

  /// Feeds one event to a side; event time must be non-decreasing per
  /// side. Emits every pairing with buffered events of the other side.
  EDADB_NODISCARD Status PushLeft(const Record& event, TimestampMicros ts);
  EDADB_NODISCARD Status PushRight(const Record& event, TimestampMicros ts);

  size_t buffered_left() const { return left_.buffered; }
  size_t buffered_right() const { return right_.buffered; }
  uint64_t emitted() const { return emitted_; }

 private:
  struct Buffered {
    Record event;
    TimestampMicros ts;
  };
  struct Side {
    /// Encoded key -> buffered events in arrival order.
    std::map<std::string, std::deque<Buffered>> by_key;
    /// Global arrival order (ts, key) — fronts are always the oldest,
    /// so eviction is amortized O(1) instead of O(keys) per watermark
    /// advance.
    std::deque<std::pair<TimestampMicros, std::string>> order;
    size_t buffered = 0;
  };

  EDADB_NODISCARD Status Push(bool left, const Record& event, TimestampMicros ts);
  void Evict(Side* side);

  Options options_;
  OutputCallback callback_;
  Side left_;
  Side right_;
  TimestampMicros watermark_ = INT64_MIN;
  uint64_t emitted_ = 0;
};

}  // namespace edadb

#endif  // EDADB_CQ_JOIN_H_
