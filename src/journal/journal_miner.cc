#include "journal/journal_miner.h"

#include "common/string_util.h"
#include "value/row_codec.h"

namespace edadb {

std::string ChangeEvent::ToString() const {
  std::string out(LogRecordTypeToString(op));
  out += " table=" + table_name;
  out += StringPrintf(" row=%llu txn=%llu",
                      static_cast<unsigned long long>(row_id),
                      static_cast<unsigned long long>(txn_id));
  if (before.has_value()) out += " before=" + before->ToString();
  if (after.has_value()) out += " after=" + after->ToString();
  return out;
}

JournalMiner::JournalMiner(const Database* db, JournalMinerOptions options,
                           Lsn start_lsn)
    : db_(db),
      options_(std::move(options)),
      cursor_(db->wal_dir(), start_lsn),
      watermark_(start_lsn) {}

std::optional<ChangeEvent> JournalMiner::ToEvent(const LogRecord& rec,
                                                 Lsn lsn) const {
  const Table* table = db_->GetTableById(rec.table_id);
  if (table == nullptr) return std::nullopt;  // Dropped since.
  if (!options_.tables.empty() &&
      options_.tables.count(table->name()) == 0) {
    return std::nullopt;
  }
  ChangeEvent event;
  event.op = rec.type;
  event.lsn = lsn;
  event.txn_id = rec.txn_id;
  event.table_id = rec.table_id;
  event.table_name = table->name();
  event.row_id = rec.row_id;
  if (!rec.old_row.empty()) {
    auto before = DecodeRow(table->schema(), rec.old_row);
    if (before.ok()) event.before = *std::move(before);
  }
  if (!rec.new_row.empty()) {
    auto after = DecodeRow(table->schema(), rec.new_row);
    if (after.ok()) event.after = *std::move(after);
  }
  return event;
}

Result<size_t> JournalMiner::Poll(
    const std::function<void(const ChangeEvent&)>& callback) {
  size_t delivered = 0;
  WalEntry entry;
  for (;;) {
    EDADB_ASSIGN_OR_RETURN(bool more, cursor_.Next(&entry));
    if (!more) break;
    EDADB_ASSIGN_OR_RETURN(LogRecord rec,
                           LogRecord::Decode(entry.type, entry.payload));
    switch (rec.type) {
      case LogRecordType::kBeginTxn:
        pending_ = PendingTxn{rec.txn_id, entry.lsn, {}};
        break;
      case LogRecordType::kInsert:
      case LogRecordType::kUpdate:
      case LogRecordType::kDelete:
        if (pending_.has_value() && pending_->txn_id == rec.txn_id) {
          pending_->ops.emplace_back(entry.lsn, std::move(rec));
        }
        break;
      case LogRecordType::kCommitTxn:
        if (pending_.has_value() && pending_->txn_id == rec.txn_id) {
          for (const auto& [op_lsn, op] : pending_->ops) {
            std::optional<ChangeEvent> event = ToEvent(op, op_lsn);
            if (event.has_value()) {
              callback(*event);
              ++delivered;
            }
          }
          pending_.reset();
        }
        watermark_ = cursor_.position();
        break;
      case LogRecordType::kAbortTxn:
        if (pending_.has_value() && pending_->txn_id == rec.txn_id) {
          pending_.reset();
        }
        watermark_ = cursor_.position();
        break;
      case LogRecordType::kCreateTable:
      case LogRecordType::kDropTable: {
        if (options_.include_ddl &&
            (options_.tables.empty() ||
             options_.tables.count(rec.table_name) > 0)) {
          ChangeEvent event;
          event.op = rec.type;
          event.lsn = entry.lsn;
          event.table_id = rec.table_id;
          event.table_name = rec.table_name;
          callback(event);
          ++delivered;
        }
        if (!pending_.has_value()) watermark_ = cursor_.position();
        break;
      }
      case LogRecordType::kCreateIndex:
      case LogRecordType::kCheckpoint:
        if (!pending_.has_value()) watermark_ = cursor_.position();
        break;
    }
  }
  // If a transaction is still open at the tail, the watermark stays at
  // its BEGIN so a restart re-reads the whole transaction.
  if (pending_.has_value()) {
    watermark_ = pending_->begin_lsn;
  } else {
    watermark_ = cursor_.position();
  }
  return delivered;
}

}  // namespace edadb
