#ifndef EDADB_JOURNAL_JOURNAL_MINER_H_
#define EDADB_JOURNAL_JOURNAL_MINER_H_

#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "db/database.h"
#include "storage/log_record.h"
#include "storage/wal.h"
#include "value/record.h"

namespace edadb {

/// A committed data change decoded from the journal — the tutorial's
/// §2.2.a.ii "capturing events using journals" (online log mining, as in
/// Oracle LogMiner / CDC). Unlike triggers, mining is asynchronous: it
/// never slows the writing transaction, at the cost of capture staleness
/// (measured by bench_capture, experiment E1).
struct ChangeEvent {
  LogRecordType op = LogRecordType::kInsert;
  Lsn lsn = kInvalidLsn;
  TxnId txn_id = kInvalidTxnId;
  TableId table_id = 0;
  std::string table_name;
  RowId row_id = 0;
  std::optional<Record> before;  // kUpdate / kDelete.
  std::optional<Record> after;   // kInsert / kUpdate.

  std::string ToString() const;
};

struct JournalMinerOptions {
  /// Restrict mining to these tables; empty mines every table.
  std::set<std::string> tables;

  /// Also surface DDL (create/drop table) as ChangeEvents with no rows.
  bool include_ddl = false;
};

/// Tails a Database's WAL and converts committed transactions into
/// ChangeEvents. Only committed work is delivered: operations are
/// buffered per transaction until the commit record is seen; aborted
/// transactions are dropped.
///
/// The miner is restartable: persist watermark() after consuming a batch
/// and pass it back as `start_lsn` to resume exactly after the last
/// fully delivered transaction.
class JournalMiner {
 public:
  /// `db` must outlive the miner. `start_lsn` is a previous watermark
  /// (0 = from the beginning of the retained log).
  JournalMiner(const Database* db, JournalMinerOptions options,
               Lsn start_lsn = 0);

  /// Drains all currently committed changes, invoking `callback` per
  /// event in commit order. Returns the number of events delivered.
  EDADB_NODISCARD Result<size_t> Poll(const std::function<void(const ChangeEvent&)>& callback);

  /// Safe restart position: just past the last fully consumed
  /// transaction.
  Lsn watermark() const { return watermark_; }

 private:
  /// Decodes a DML log record into an event; nullopt when filtered out
  /// or the table no longer exists.
  std::optional<ChangeEvent> ToEvent(const LogRecord& rec, Lsn lsn) const;

  const Database* db_;
  JournalMinerOptions options_;
  WalCursor cursor_;
  Lsn watermark_;

  /// In-flight (uncommitted) transaction buffer: (lsn, record).
  struct PendingTxn {
    TxnId txn_id = kInvalidTxnId;
    Lsn begin_lsn = kInvalidLsn;
    std::vector<std::pair<Lsn, LogRecord>> ops;
  };
  std::optional<PendingTxn> pending_;
};

}  // namespace edadb

#endif  // EDADB_JOURNAL_JOURNAL_MINER_H_
