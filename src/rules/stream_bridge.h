#ifndef EDADB_RULES_STREAM_BRIDGE_H_
#define EDADB_RULES_STREAM_BRIDGE_H_

#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "cq/pattern.h"
#include "cq/window.h"
#include "rules/rules_engine.h"
#include "value/record.h"

namespace edadb {

/// A window revision or pattern match rendered as a flat attribute map,
/// so the rules engine evaluates it like any other event. The revision
/// protocol is first-class data: `kind` is "insert" / "retract" /
/// "final", which lets a rule react specifically to retractions
/// (`kind = 'retract' AND n > 100` — "a result we already acted on was
/// wrong") — the CEDR point that consistency violations are themselves
/// events.
class StreamEventRow : public RowAccessor {
 public:
  /// Attributes: kind, revision, window_start, window_end, rows, key
  /// (when keyed), plus one attribute per aggregate alias.
  static StreamEventRow FromWindowResult(const WindowResult& result);

  /// Attributes: kind, pattern, start_ts, end_ts, key (when
  /// partitioned), plus one "<step>_count" per binding.
  static StreamEventRow FromPatternMatch(const PatternMatch& match);

  std::optional<Value> GetAttribute(std::string_view name) const override;

  void Set(std::string name, Value v) {
    attributes_[std::move(name)] = std::move(v);
  }

 private:
  std::map<std::string, Value, std::less<>> attributes_;
};

/// Forwards event-time operator output into a RulesEngine. Owns
/// nothing; `engine` must outlive the bridge. Counters are maintained
/// by the calling operator thread (cq operators are single-threaded,
/// like the rest of cq/).
class StreamRuleBridge {
 public:
  explicit StreamRuleBridge(RulesEngine* engine) : engine_(engine) {}

  /// Evaluates one window revision; returns matched rule ids.
  EDADB_NODISCARD Result<std::vector<std::string>> OnWindowResult(
      const WindowResult& result);

  /// Evaluates one pattern match/retraction; returns matched rule ids.
  EDADB_NODISCARD Result<std::vector<std::string>> OnPatternMatch(
      const PatternMatch& match);

  /// Adapter for WindowedAggregator: every emission (speculative
  /// inserts and retractions included) flows through the engine.
  /// Callbacks are void, so evaluation failures land in
  /// dispatch_errors() instead of a Status.
  WindowedAggregator::ResultCallback WindowCallback();

  /// Adapter for PatternMatcher, same contract.
  PatternMatcher::MatchCallback PatternCallback();

  uint64_t forwarded() const { return forwarded_; }
  uint64_t retractions_forwarded() const { return retractions_forwarded_; }
  uint64_t dispatch_errors() const { return dispatch_errors_; }

 private:
  RulesEngine* const engine_;
  uint64_t forwarded_ = 0;
  uint64_t retractions_forwarded_ = 0;
  uint64_t dispatch_errors_ = 0;
};

}  // namespace edadb

#endif  // EDADB_RULES_STREAM_BRIDGE_H_
