#ifndef EDADB_RULES_RULES_ENGINE_H_
#define EDADB_RULES_RULES_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "db/database.h"
#include "rules/indexed_matcher.h"
#include "rules/matcher.h"

namespace edadb {

/// The rules service (§2.2.c): rules are stored as data in the `__rules`
/// database table (so they survive restart, are auditable, and can be
/// changed online), compiled into a matcher, and dispatched to named
/// action handlers when events arrive.
///
/// "Rules technologies can be used to evaluate external data; e.g., data
/// can be presented to a rules service and the rules service will
/// identify interested consumers" — Evaluate() is exactly that call.
///
/// Thread-safe.
class RulesEngine {
 public:
  enum class MatcherKind { kNaive, kIndexed };

  /// Loads persisted rules from `db` (creating the `__rules` table on
  /// first use). `db` must outlive the engine.
  EDADB_NODISCARD static Result<std::unique_ptr<RulesEngine>> Attach(
      Database* db, MatcherKind kind = MatcherKind::kIndexed);

  /// Adds a rule (persisted + compiled). `condition_source` is an
  /// expression over event attributes; `action` is the handler tag.
  EDADB_NODISCARD Status AddRule(const std::string& id, std::string_view condition_source,
                 std::string action, int64_t priority = 0);

  EDADB_NODISCARD Status RemoveRule(const std::string& id);
  EDADB_NODISCARD Status SetRuleEnabled(const std::string& id, bool enabled);
  size_t num_rules() const;
  std::vector<std::string> ListRules() const;

  /// Copy of a compiled rule, or nullopt when unknown.
  std::optional<Rule> FindRule(const std::string& id) const;

  /// Called for each matched rule, highest priority first.
  using ActionHandler =
      std::function<void(const Rule& rule, const RowAccessor& event)>;

  /// Registers the handler for rules whose action equals `action`.
  void RegisterActionHandler(const std::string& action,
                             ActionHandler handler);

  /// Handler for matched rules whose action has no registered handler.
  void RegisterDefaultHandler(ActionHandler handler);

  /// Matches `event` against every rule and dispatches handlers.
  /// Returns the ids of matched rules in dispatch order. Thin wrapper
  /// over a one-event EvaluateBatch (single code path).
  EDADB_NODISCARD Result<std::vector<std::string>> Evaluate(const RowAccessor& event);

  /// Batch form: matches every event under ONE engine lock (one matcher
  /// traversal state amortized across the batch), then dispatches
  /// handlers outside the lock in event order. `result[i]` holds the
  /// matched rule ids for `*events[i]` in dispatch order, exactly as
  /// Evaluate would return them.
  EDADB_NODISCARD Result<std::vector<std::vector<std::string>>> EvaluateBatch(
      const std::vector<const RowAccessor*>& events);

 private:
  RulesEngine(Database* db, MatcherKind kind);

  EDADB_NODISCARD Status LoadPersistedRules();
  EDADB_NODISCARD Result<Rule> CompileRule(const std::string& id,
                           std::string_view condition_source,
                           std::string action, int64_t priority,
                           bool enabled) const;

  Database* const db_;
  mutable Mutex mu_{"RulesEngine::mu_"};
  /// The pointer is set once in the constructor; the matcher it points
  /// to is guarded.
  std::unique_ptr<RuleMatcher> matcher_ EDADB_PT_GUARDED_BY(mu_);
  std::map<std::string, ActionHandler> handlers_ EDADB_GUARDED_BY(mu_);
  ActionHandler default_handler_ EDADB_GUARDED_BY(mu_);

  /// Emits rules.matcher.* gauges on registry snapshots. LAST member:
  /// destroyed first, so an in-flight collector taking mu_ finishes
  /// before the matcher is torn down.
  metrics::CallbackHandle metrics_collector_;
};

}  // namespace edadb

#endif  // EDADB_RULES_RULES_ENGINE_H_
