#ifndef EDADB_RULES_INTERVAL_INDEX_H_
#define EDADB_RULES_INTERVAL_INDEX_H_

#include <functional>
#include <memory>
#include <vector>

namespace edadb {

/// Dynamic interval stabbing index (centered interval tree): stores
/// [lo, hi] intervals with open/closed bounds and an opaque tag, and
/// reports every interval containing a query point in
/// O(log n + matches) for non-adversarial inputs.
///
/// Node centers are fixed at insertion time (no rebalancing): with the
/// randomized bounds rule populations produce, depth stays ~log n;
/// adversarially sorted insertions can degrade toward O(n) depth, an
/// accepted trade-off for cheap incremental add/remove (experiment E5).
class IntervalIndex {
 public:
  struct Entry {
    double lo;
    bool lo_inclusive;
    double hi;
    bool hi_inclusive;
    void* tag;

    bool Contains(double v) const {
      if (v < lo || (v == lo && !lo_inclusive)) return false;
      if (v > hi || (v == hi && !hi_inclusive)) return false;
      return true;
    }
  };

  IntervalIndex();
  ~IntervalIndex();

  IntervalIndex(const IntervalIndex&) = delete;
  IntervalIndex& operator=(const IntervalIndex&) = delete;

  /// Requires lo <= hi (callers normalize; +/-infinity endpoints are
  /// fine).
  void Insert(const Entry& entry);

  /// Removes one entry matching (lo, hi, tag); returns false when no
  /// such entry exists.
  bool Remove(double lo, double hi, void* tag);

  /// Invokes `fn(tag)` for every stored interval containing `v`.
  void Stab(double v, const std::function<void(void*)>& fn) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Tree depth, exposed for tests.
  int depth() const;

 private:
  struct Node;

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace edadb

#endif  // EDADB_RULES_INTERVAL_INDEX_H_
