#include "rules/interval_index.h"

#include <algorithm>
#include <cmath>

namespace edadb {

struct IntervalIndex::Node {
  double center;
  /// Intervals containing `center`, kept in two orders for one-sided
  /// walks during stabbing.
  std::vector<Entry> by_lo;  // Ascending lo.
  std::vector<Entry> by_hi;  // Descending hi.
  std::unique_ptr<Node> left;   // Entirely left of center.
  std::unique_ptr<Node> right;  // Entirely right of center.

  explicit Node(double c) : center(c) {}
};

namespace {

/// Picks a finite, stable center for an interval (infinite endpoints
/// collapse to the finite one; fully infinite intervals center at 0).
double CenterOf(const IntervalIndex::Entry& entry) {
  const bool lo_finite = std::isfinite(entry.lo);
  const bool hi_finite = std::isfinite(entry.hi);
  if (lo_finite && hi_finite) return (entry.lo + entry.hi) / 2;
  if (lo_finite) return entry.lo;
  if (hi_finite) return entry.hi;
  return 0;
}

}  // namespace

IntervalIndex::IntervalIndex() = default;
IntervalIndex::~IntervalIndex() = default;

void IntervalIndex::Insert(const Entry& entry) {
  ++size_;
  std::unique_ptr<Node>* slot = &root_;
  for (;;) {
    if (*slot == nullptr) {
      *slot = std::make_unique<Node>(CenterOf(entry));
    }
    Node* node = slot->get();
    if (entry.hi < node->center) {
      slot = &node->left;
      continue;
    }
    if (entry.lo > node->center) {
      slot = &node->right;
      continue;
    }
    // Interval contains the node's center: store here.
    auto lo_pos = std::upper_bound(
        node->by_lo.begin(), node->by_lo.end(), entry.lo,
        [](double v, const Entry& e) { return v < e.lo; });
    node->by_lo.insert(lo_pos, entry);
    auto hi_pos = std::upper_bound(
        node->by_hi.begin(), node->by_hi.end(), entry.hi,
        [](double v, const Entry& e) { return v > e.hi; });
    node->by_hi.insert(hi_pos, entry);
    return;
  }
}

bool IntervalIndex::Remove(double lo, double hi, void* tag) {
  Node* node = root_.get();
  while (node != nullptr) {
    if (hi < node->center) {
      node = node->left.get();
      continue;
    }
    if (lo > node->center) {
      node = node->right.get();
      continue;
    }
    auto matches = [&](const Entry& e) {
      return e.lo == lo && e.hi == hi && e.tag == tag;
    };
    auto lo_it = std::find_if(node->by_lo.begin(), node->by_lo.end(),
                              matches);
    if (lo_it == node->by_lo.end()) return false;
    node->by_lo.erase(lo_it);
    auto hi_it = std::find_if(node->by_hi.begin(), node->by_hi.end(),
                              matches);
    if (hi_it != node->by_hi.end()) node->by_hi.erase(hi_it);
    --size_;
    // Empty nodes are left in place as routing skeletons; with churn the
    // same bounds distribution refills them.
    return true;
  }
  return false;
}

void IntervalIndex::Stab(double v,
                         const std::function<void(void*)>& fn) const {
  const Node* node = root_.get();
  while (node != nullptr) {
    if (v < node->center) {
      // Only intervals whose lo reaches down to v can contain it; by_lo
      // is ascending, so stop at the first lo > v.
      for (const Entry& entry : node->by_lo) {
        if (entry.lo > v) break;
        if (entry.Contains(v)) fn(entry.tag);
      }
      node = node->left.get();
    } else if (v > node->center) {
      for (const Entry& entry : node->by_hi) {
        if (entry.hi < v) break;
        if (entry.Contains(v)) fn(entry.tag);
      }
      node = node->right.get();
    } else {
      // v == center: every interval stored here contains the center;
      // bound inclusivity still filters v == lo/hi edges.
      for (const Entry& entry : node->by_lo) {
        if (entry.Contains(v)) fn(entry.tag);
      }
      return;
    }
  }
}

int IntervalIndex::depth() const {
  // Iterative DFS to avoid recursion on degenerate trees.
  int max_depth = 0;
  std::vector<std::pair<const Node*, int>> stack;
  if (root_ != nullptr) stack.push_back({root_.get(), 1});
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    if (node->left != nullptr) stack.push_back({node->left.get(), d + 1});
    if (node->right != nullptr) stack.push_back({node->right.get(), d + 1});
  }
  return max_depth;
}

}  // namespace edadb
