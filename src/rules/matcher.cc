#include "rules/matcher.h"

namespace edadb {

void RuleMatcher::MatchBatch(const std::vector<const RowAccessor*>& events,
                             std::vector<std::vector<const Rule*>>* out) {
  out->clear();
  out->resize(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    Match(*events[i], &(*out)[i]);
  }
}

Status NaiveMatcher::AddRule(Rule rule) {
  if (rule.id.empty()) return Status::InvalidArgument("rule needs an id");
  if (!rule.condition.valid()) {
    return Status::InvalidArgument("rule '" + rule.id +
                                   "' has no compiled condition");
  }
  const std::string id = rule.id;
  auto [it, inserted] = rules_.emplace(id, std::move(rule));
  if (!inserted) {
    return Status::AlreadyExists("rule '" + id + "' already exists");
  }
  return Status::OK();
}

Status NaiveMatcher::RemoveRule(const std::string& id) {
  if (rules_.erase(id) == 0) return Status::NotFound("rule '" + id + "'");
  return Status::OK();
}

void NaiveMatcher::Match(const RowAccessor& event,
                         std::vector<const Rule*>* out) {
  for (const auto& [id, rule] : rules_) {
    if (!rule.enabled) continue;
    if (rule.condition.MatchesOrFalse(event)) out->push_back(&rule);
  }
}

const Rule* NaiveMatcher::GetRule(const std::string& id) const {
  auto it = rules_.find(id);
  return it == rules_.end() ? nullptr : &it->second;
}

}  // namespace edadb
