#ifndef EDADB_RULES_MATCHER_H_
#define EDADB_RULES_MATCHER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "rules/rule.h"
#include "value/record.h"

namespace edadb {

/// Matches one event against a (possibly very large, possibly churning)
/// rule set, returning every rule whose condition evaluates to TRUE.
/// Implementations: NaiveMatcher (baseline: evaluate everything) and
/// IndexedMatcher (predicate indexing + counting). The two must agree —
/// tests/rules/matcher_equivalence_test.cc enforces it on random rules.
///
/// Matchers are thread-compatible: concurrent Match calls require
/// external synchronization because matching updates internal counters.
class RuleMatcher {
 public:
  virtual ~RuleMatcher() = default;

  EDADB_NODISCARD virtual Status AddRule(Rule rule) = 0;
  EDADB_NODISCARD virtual Status RemoveRule(const std::string& id) = 0;

  /// Appends matching rules to `out` (unspecified order; callers sort by
  /// priority if they care). Disabled rules never match.
  virtual void Match(const RowAccessor& event,
                     std::vector<const Rule*>* out) = 0;

  /// Batch form: `(*out)[i]` receives the matches for `*events[i]`,
  /// exactly as Match would report them. One matcher traversal state is
  /// amortized across the batch where the implementation allows
  /// (IndexedMatcher reuses its candidate scratch). Same
  /// thread-compatibility contract as Match.
  virtual void MatchBatch(const std::vector<const RowAccessor*>& events,
                          std::vector<std::vector<const Rule*>>* out);

  virtual size_t size() const = 0;
  virtual const Rule* GetRule(const std::string& id) const = 0;
};

/// Baseline: O(total rules) per event. This is what the tutorial means
/// by unoptimized evaluation — bench_rules (E4) measures the gap.
class NaiveMatcher : public RuleMatcher {
 public:
  EDADB_NODISCARD Status AddRule(Rule rule) override;
  EDADB_NODISCARD Status RemoveRule(const std::string& id) override;
  void Match(const RowAccessor& event,
             std::vector<const Rule*>* out) override;
  size_t size() const override { return rules_.size(); }
  const Rule* GetRule(const std::string& id) const override;

 private:
  std::map<std::string, Rule> rules_;
};

}  // namespace edadb

#endif  // EDADB_RULES_MATCHER_H_
