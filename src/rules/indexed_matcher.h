#ifndef EDADB_RULES_INDEXED_MATCHER_H_
#define EDADB_RULES_INDEXED_MATCHER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rules/interval_index.h"
#include "rules/matcher.h"
#include "value/value.h"
#include "common/macros.h"

namespace edadb {

/// Predicate-indexed matcher: the tutorial's claim that "the evaluation
/// of internal data can significantly be optimized" (§2.2.c.iii), built
/// the way large publish/subscribe systems index subscriptions
/// (Le Subscribe / Gryphon style counting algorithm):
///
///  1. Each rule's condition is split into top-level AND conjuncts.
///  2. Exactly ONE indexable conjunct — the rule's *access predicate*,
///     picked as the one expected to hit the fewest rules, estimated
///     from current index occupancy — is registered:
///       - `attr = literal` and `attr IN (literals)` in a hash index
///         keyed by (attribute, value);
///       - `attr <cmp> numeric-literal` and `attr BETWEEN a AND b` in a
///         per-attribute centered interval tree (O(log n + hits) point
///         stabs; see rules/interval_index.h).
///     Every other conjunct (including unchosen indexable ones, plus
///     LIKE/OR/functions/...) becomes a residual check for the rule.
///  3. Matching an event probes the hash and interval indexes with the
///     event's own attribute values; each hit nominates a candidate
///     rule whose residuals are then evaluated. Rules with no indexable
///     conjunct at all sit in a scan list (naive evaluation).
///
/// Cost per event is O(event attributes + index hits + residuals of
/// candidate rules) instead of O(total rules): the gap bench_rules (E4)
/// measures. Indexing only the most selective conjunct keeps a
/// low-cardinality conjunct shared by many rules (a region tag, say)
/// from turning every event into O(rules) counter bumps.
/// AddRule/RemoveRule are incremental, which bench_rule_churn (E5)
/// exercises.
class IndexedMatcher : public RuleMatcher {
 public:
  IndexedMatcher() = default;
  ~IndexedMatcher() override;

  IndexedMatcher(const IndexedMatcher&) = delete;
  IndexedMatcher& operator=(const IndexedMatcher&) = delete;

  EDADB_NODISCARD Status AddRule(Rule rule) override;
  EDADB_NODISCARD Status RemoveRule(const std::string& id) override;
  void Match(const RowAccessor& event,
             std::vector<const Rule*>* out) override;
  /// Overridden to reuse the candidate scratch vector across the batch
  /// (one heap allocation instead of N on the ingest hot path).
  void MatchBatch(const std::vector<const RowAccessor*>& events,
                  std::vector<std::vector<const Rule*>>* out) override;
  size_t size() const override { return rules_.size(); }
  const Rule* GetRule(const std::string& id) const override;

  /// Introspection for tests/benches.
  struct Stats {  // lint:allow(adhoc-stats): matcher-shape snapshot, also exported via rules.matcher.* gauges
    size_t eq_entries = 0;
    size_t range_entries = 0;
    size_t scan_rules = 0;   // No indexable conjunct.
    size_t total_rules = 0;
  };
  Stats GetStats() const;

 private:
  struct CompiledRule;

  /// An indexable conjunct found during classification.
  struct Candidate {
    enum class Kind { kEq, kRange };
    Kind kind = Kind::kEq;
    std::string column;
    std::vector<Value> values;      // kEq (IN lists deduped).
    IntervalIndex::Entry entry{};   // kRange.
  };

  struct CompiledRule {
    Rule rule;
    int indexed_conjuncts = 0;
    std::vector<ExprPtr> residuals;
    /// Where this rule registered, for removal.
    std::vector<std::pair<std::string, Value>> eq_registrations;
    struct RangeRegistration {
      std::string column;
      double lo;
      double hi;
    };
    std::vector<RangeRegistration> range_registrations;
    bool in_scan_list = false;
    /// Counting state (epoch-tagged so Match never resets globally).
    uint64_t seen_epoch = 0;
    int count = 0;
  };

  /// Recognizes an indexable conjunct; nullopt when it must be residual.
  static std::optional<Candidate> Classify(const ExprPtr& conjunct);

  /// Expected rules bumped per event by this access predicate (lower is
  /// more selective), from current index occupancy.
  double SelectivityScore(const Candidate& candidate) const;

  void RegisterEq(const std::string& column, const Value& value,
                  CompiledRule* rule);
  void RegisterRange(const std::string& column,
                     const IntervalIndex::Entry& entry, CompiledRule* rule);

  /// Bumps the rule's counter for the current epoch; appends to
  /// `candidates` when all indexed conjuncts are satisfied.
  void Bump(CompiledRule* rule, std::vector<CompiledRule*>* candidates);

  /// One event's match pass; `candidates` is caller-owned scratch
  /// (cleared here) so MatchBatch can reuse it across events.
  void MatchOne(const RowAccessor& event, std::vector<const Rule*>* out,
                std::vector<CompiledRule*>* candidates);

  std::map<std::string, std::unique_ptr<CompiledRule>> rules_;

  /// attribute -> value -> rules with `attr = value` conjuncts.
  std::unordered_map<std::string,
                     std::unordered_map<Value, std::vector<CompiledRule*>,
                                        ValueHash>>
      eq_index_;

  /// attribute -> interval tree of range conjuncts.
  std::unordered_map<std::string, IntervalIndex> range_index_;

  /// Attributes referenced by any index, iterated per event.
  /// (The event is probed per indexed attribute, not per rule.)
  std::vector<CompiledRule*> scan_rules_;

  uint64_t epoch_ = 0;
};

}  // namespace edadb

#endif  // EDADB_RULES_INDEXED_MATCHER_H_
