#include "rules/stream_bridge.h"

namespace edadb {

StreamEventRow StreamEventRow::FromWindowResult(const WindowResult& result) {
  StreamEventRow row;
  row.Set("kind", Value::String(std::string(ResultKindName(result.kind))));
  row.Set("revision", Value::Int64(result.revision));
  row.Set("window_start", Value::Int64(result.window_start));
  row.Set("window_end", Value::Int64(result.window_end));
  row.Set("rows", Value::Int64(result.rows));
  if (!result.key.is_null()) row.Set("key", result.key);
  for (const auto& [alias, value] : result.aggregates) {
    row.Set(alias, value);
  }
  return row;
}

StreamEventRow StreamEventRow::FromPatternMatch(const PatternMatch& match) {
  StreamEventRow row;
  row.Set("kind", Value::String(std::string(ResultKindName(match.kind))));
  row.Set("pattern", Value::String(match.pattern));
  row.Set("start_ts", Value::Int64(match.start_ts));
  row.Set("end_ts", Value::Int64(match.end_ts));
  if (!match.partition_key.is_null()) row.Set("key", match.partition_key);
  for (const auto& [step, events] : match.bindings) {
    row.Set(step + "_count",
            Value::Int64(static_cast<int64_t>(events.size())));
  }
  return row;
}

std::optional<Value> StreamEventRow::GetAttribute(
    std::string_view name) const {
  auto it = attributes_.find(name);
  if (it == attributes_.end()) return std::nullopt;
  return it->second;
}

Result<std::vector<std::string>> StreamRuleBridge::OnWindowResult(
    const WindowResult& result) {
  ++forwarded_;
  if (result.kind == ResultKind::kRetract) ++retractions_forwarded_;
  return engine_->Evaluate(StreamEventRow::FromWindowResult(result));
}

Result<std::vector<std::string>> StreamRuleBridge::OnPatternMatch(
    const PatternMatch& match) {
  ++forwarded_;
  if (match.kind == ResultKind::kRetract) ++retractions_forwarded_;
  return engine_->Evaluate(StreamEventRow::FromPatternMatch(match));
}

WindowedAggregator::ResultCallback StreamRuleBridge::WindowCallback() {
  return [this](const WindowResult& result) {
    if (!OnWindowResult(result).ok()) ++dispatch_errors_;
  };
}

PatternMatcher::MatchCallback StreamRuleBridge::PatternCallback() {
  return [this](const PatternMatch& match) {
    if (!OnPatternMatch(match).ok()) ++dispatch_errors_;
  };
}

}  // namespace edadb
