#ifndef EDADB_RULES_RULE_H_
#define EDADB_RULES_RULE_H_

#include <string>

#include "expr/predicate.h"

namespace edadb {

/// A rule is data (§2.2.c.i.2 "supporting expressions as data"): a
/// boolean condition over event attributes plus a symbolic action the
/// application interprets (route to a queue, notify a consumer, run a
/// handler). Rules live in database tables and are compiled into a
/// matcher at load time.
struct Rule {
  std::string id;
  Predicate condition;
  /// Opaque action tag dispatched by the application (e.g. a handler
  /// name or destination queue).
  std::string action;
  int64_t priority = 0;
  bool enabled = true;
};

}  // namespace edadb

#endif  // EDADB_RULES_RULE_H_
