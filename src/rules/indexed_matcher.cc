#include "rules/indexed_matcher.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace edadb {

namespace {

/// Flattens a top-level AND tree.
void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto& bin = static_cast<const BinaryExpr&>(*expr);
    if (bin.op() == BinaryOp::kAnd) {
      CollectConjuncts(bin.left(), out);
      CollectConjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

/// Numeric value of a literal usable as a range endpoint.
bool LiteralAsDouble(const Expr& expr, double* out) {
  if (expr.kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(expr).value();
  if (!v.is_numeric() && v.type() != ValueType::kTimestamp) return false;
  auto d = v.AsDouble();
  if (!d.ok()) return false;
  *out = *d;
  return true;
}

}  // namespace

IndexedMatcher::~IndexedMatcher() = default;

std::optional<IndexedMatcher::Candidate> IndexedMatcher::Classify(
    const ExprPtr& conjunct) {
  // attr IN (literal, ...): one conjunct, several hash entries. The
  // event carries a single value for the attribute, so at most one
  // entry fires per conjunct. List values are deduped so IN (0, 0)
  // cannot double-bump.
  if (conjunct->kind() == ExprKind::kIn) {
    const auto& in = static_cast<const InExpr&>(*conjunct);
    if (in.negated() || in.operand()->kind() != ExprKind::kColumn) {
      return std::nullopt;
    }
    Candidate candidate;
    candidate.kind = Candidate::Kind::kEq;
    candidate.column = static_cast<const ColumnExpr&>(*in.operand()).name();
    for (const ExprPtr& item : in.list()) {
      if (item->kind() != ExprKind::kLiteral) return std::nullopt;
      const Value& value = static_cast<const LiteralExpr&>(*item).value();
      if (value.is_null()) return std::nullopt;  // Changes 3VL result.
      bool duplicate = false;
      for (const Value& prior : candidate.values) {
        if (prior == value) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) candidate.values.push_back(value);
    }
    return candidate;
  }

  if (conjunct->kind() == ExprKind::kBetween) {
    const auto& between = static_cast<const BetweenExpr&>(*conjunct);
    if (between.negated() ||
        between.operand()->kind() != ExprKind::kColumn) {
      return std::nullopt;
    }
    double lo, hi;
    if (!LiteralAsDouble(*between.low(), &lo) ||
        !LiteralAsDouble(*between.high(), &hi)) {
      return std::nullopt;
    }
    if (lo > hi) return std::nullopt;  // Never matches; keep residual.
    Candidate candidate;
    candidate.kind = Candidate::Kind::kRange;
    candidate.column =
        static_cast<const ColumnExpr&>(*between.operand()).name();
    candidate.entry = {lo, true, hi, true, nullptr};
    return candidate;
  }

  if (conjunct->kind() != ExprKind::kBinary) return std::nullopt;
  const auto& bin = static_cast<const BinaryExpr&>(*conjunct);
  BinaryOp op = bin.op();
  const Expr* col = bin.left().get();
  const Expr* lit = bin.right().get();
  if (col->kind() == ExprKind::kLiteral && lit->kind() == ExprKind::kColumn) {
    std::swap(col, lit);
    switch (op) {
      case BinaryOp::kLt: op = BinaryOp::kGt; break;
      case BinaryOp::kLe: op = BinaryOp::kGe; break;
      case BinaryOp::kGt: op = BinaryOp::kLt; break;
      case BinaryOp::kGe: op = BinaryOp::kLe; break;
      default: break;
    }
  }
  if (col->kind() != ExprKind::kColumn || lit->kind() != ExprKind::kLiteral) {
    return std::nullopt;
  }
  const Value& value = static_cast<const LiteralExpr&>(*lit).value();
  if (value.is_null()) return std::nullopt;

  Candidate candidate;
  candidate.column = static_cast<const ColumnExpr&>(*col).name();
  if (op == BinaryOp::kEq) {
    candidate.kind = Candidate::Kind::kEq;
    candidate.values.push_back(value);
    return candidate;
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double bound;
  if (!LiteralAsDouble(*lit, &bound)) return std::nullopt;
  candidate.kind = Candidate::Kind::kRange;
  candidate.entry = {-kInf, true, kInf, true, nullptr};
  switch (op) {
    case BinaryOp::kLt:
      candidate.entry.hi = bound;
      candidate.entry.hi_inclusive = false;
      break;
    case BinaryOp::kLe:
      candidate.entry.hi = bound;
      break;
    case BinaryOp::kGt:
      candidate.entry.lo = bound;
      candidate.entry.lo_inclusive = false;
      break;
    case BinaryOp::kGe:
      candidate.entry.lo = bound;
      break;
    default:
      return std::nullopt;  // != is a poor access predicate.
  }
  return candidate;
}

double IndexedMatcher::SelectivityScore(const Candidate& candidate) const {
  // Lower is better: the expected number of rules this access predicate
  // bumps per matching event, estimated from current index occupancy.
  if (candidate.kind == Candidate::Kind::kEq) {
    double score = 0;
    auto col_it = eq_index_.find(candidate.column);
    for (const Value& value : candidate.values) {
      if (col_it == eq_index_.end()) continue;
      auto val_it = col_it->second.find(value);
      if (val_it != col_it->second.end()) {
        score += static_cast<double>(val_it->second.size());
      }
    }
    return score;
  }
  // Ranges stab a fraction of the column's intervals; assume a quarter,
  // and add a constant handicap so equality wins ties.
  auto col_it = range_index_.find(candidate.column);
  const double tree =
      col_it == range_index_.end()
          ? 0.0
          : static_cast<double>(col_it->second.size());
  return tree / 4.0 + 4.0;
}

void IndexedMatcher::RegisterEq(const std::string& column, const Value& value,
                                CompiledRule* rule) {
  eq_index_[column][value].push_back(rule);
  rule->eq_registrations.emplace_back(column, value);
}

void IndexedMatcher::RegisterRange(const std::string& column,
                                   const IntervalIndex::Entry& entry,
                                   CompiledRule* rule) {
  range_index_[column].Insert(entry);
  rule->range_registrations.push_back({column, entry.lo, entry.hi});
}

Status IndexedMatcher::AddRule(Rule rule) {
  if (rule.id.empty()) return Status::InvalidArgument("rule needs an id");
  if (!rule.condition.valid()) {
    return Status::InvalidArgument("rule '" + rule.id +
                                   "' has no compiled condition");
  }
  if (rules_.count(rule.id) > 0) {
    return Status::AlreadyExists("rule '" + rule.id + "' already exists");
  }
  auto compiled = std::make_unique<CompiledRule>();
  compiled->rule = std::move(rule);

  // Single-access-predicate design: exactly one indexable conjunct is
  // registered — chosen as the one expected to bump the fewest rules —
  // and every other conjunct is a residual check. Counting over all
  // conjuncts would make one low-selectivity conjunct (e.g. a 4-valued
  // region tag) cost O(rules / 4) bumps per event for the whole set.
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(compiled->rule.condition.expr(), &conjuncts);
  int best = -1;
  std::optional<Candidate> best_candidate;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    std::optional<Candidate> candidate = Classify(conjuncts[i]);
    if (!candidate.has_value()) continue;
    if (!best_candidate.has_value() ||
        SelectivityScore(*candidate) < SelectivityScore(*best_candidate)) {
      best = static_cast<int>(i);
      best_candidate = std::move(candidate);
    }
  }
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (static_cast<int>(i) != best) {
      compiled->residuals.push_back(conjuncts[i]);
    }
  }
  if (best_candidate.has_value()) {
    compiled->indexed_conjuncts = 1;
    if (best_candidate->kind == Candidate::Kind::kEq) {
      for (const Value& value : best_candidate->values) {
        RegisterEq(best_candidate->column, value, compiled.get());
      }
    } else {
      best_candidate->entry.tag = compiled.get();
      RegisterRange(best_candidate->column, best_candidate->entry,
                    compiled.get());
    }
  } else {
    compiled->in_scan_list = true;
    scan_rules_.push_back(compiled.get());
  }
  const std::string id = compiled->rule.id;
  rules_.emplace(id, std::move(compiled));
  return Status::OK();
}

Status IndexedMatcher::RemoveRule(const std::string& id) {
  auto it = rules_.find(id);
  if (it == rules_.end()) return Status::NotFound("rule '" + id + "'");
  CompiledRule* rule = it->second.get();

  for (const auto& [column, value] : rule->eq_registrations) {
    auto col_it = eq_index_.find(column);
    if (col_it == eq_index_.end()) continue;
    auto val_it = col_it->second.find(value);
    if (val_it == col_it->second.end()) continue;
    auto& vec = val_it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), rule), vec.end());
    if (vec.empty()) col_it->second.erase(val_it);
    if (col_it->second.empty()) eq_index_.erase(col_it);
  }
  for (const auto& registration : rule->range_registrations) {
    auto col_it = range_index_.find(registration.column);
    if (col_it == range_index_.end()) continue;
    col_it->second.Remove(registration.lo, registration.hi, rule);
    if (col_it->second.empty()) range_index_.erase(col_it);
  }
  if (rule->in_scan_list) {
    scan_rules_.erase(
        std::remove(scan_rules_.begin(), scan_rules_.end(), rule),
        scan_rules_.end());
  }
  rules_.erase(it);
  return Status::OK();
}

void IndexedMatcher::Bump(CompiledRule* rule,
                          std::vector<CompiledRule*>* candidates) {
  if (rule->seen_epoch != epoch_) {
    rule->seen_epoch = epoch_;
    rule->count = 0;
  }
  rule->count += 1;
  if (rule->count == rule->indexed_conjuncts) {
    candidates->push_back(rule);
  }
}

void IndexedMatcher::Match(const RowAccessor& event,
                           std::vector<const Rule*>* out) {
  std::vector<CompiledRule*> candidates;
  MatchOne(event, out, &candidates);
}

void IndexedMatcher::MatchBatch(const std::vector<const RowAccessor*>& events,
                                std::vector<std::vector<const Rule*>>* out) {
  out->clear();
  out->resize(events.size());
  std::vector<CompiledRule*> candidates;  // Scratch shared by the batch.
  for (size_t i = 0; i < events.size(); ++i) {
    MatchOne(*events[i], &(*out)[i], &candidates);
  }
}

void IndexedMatcher::MatchOne(const RowAccessor& event,
                              std::vector<const Rule*>* out,
                              std::vector<CompiledRule*>* candidates) {
  ++epoch_;
  candidates->clear();

  // Probe the hash index per attribute the index knows about.
  for (const auto& [column, by_value] : eq_index_) {
    std::optional<Value> v = event.GetAttribute(column);
    if (!v.has_value() || v->is_null()) continue;
    auto it = by_value.find(*v);
    if (it == by_value.end()) continue;
    for (CompiledRule* rule : it->second) {
      Bump(rule, candidates);
    }
  }

  // Stab the interval trees.
  for (const auto& [column, intervals] : range_index_) {
    std::optional<Value> v = event.GetAttribute(column);
    if (!v.has_value() || v->is_null()) continue;
    auto d = v->AsDouble();
    if (!d.ok()) continue;
    intervals.Stab(*d, [&](void* tag) {
      Bump(static_cast<CompiledRule*>(tag), candidates);
    });
  }

  // Candidates satisfied every indexed conjunct; check residuals.
  EvalContext ctx(&event);
  for (CompiledRule* rule : *candidates) {
    if (!rule->rule.enabled) continue;
    bool matched = true;
    for (const ExprPtr& residual : rule->residuals) {
      auto ok = residual->Matches(ctx);
      if (!ok.ok() || !*ok) {
        matched = false;
        break;
      }
    }
    if (matched) out->push_back(&rule->rule);
  }

  // Un-indexable rules degrade to direct evaluation.
  for (CompiledRule* rule : scan_rules_) {
    if (!rule->rule.enabled) continue;
    if (rule->rule.condition.MatchesOrFalse(event)) {
      out->push_back(&rule->rule);
    }
  }
}

const Rule* IndexedMatcher::GetRule(const std::string& id) const {
  auto it = rules_.find(id);
  return it == rules_.end() ? nullptr : &it->second->rule;
}

IndexedMatcher::Stats IndexedMatcher::GetStats() const {
  Stats stats;
  for (const auto& [column, by_value] : eq_index_) {
    for (const auto& [value, rules] : by_value) {
      stats.eq_entries += rules.size();
    }
  }
  for (const auto& [column, intervals] : range_index_) {
    stats.range_entries += intervals.size();
  }
  stats.scan_rules = scan_rules_.size();
  stats.total_rules = rules_.size();
  return stats;
}

}  // namespace edadb
