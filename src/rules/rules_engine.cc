#include "rules/rules_engine.h"

#include <algorithm>

namespace edadb {

namespace {

metrics::Counter* EvaluatedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("rules.evaluated");
  return c;
}

metrics::Counter* MatchedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("rules.matched");
  return c;
}

metrics::Histogram* MatchLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("rules.match.latency_us");
  return h;
}

void EmitGauge(std::vector<metrics::MetricSnapshot>* out, std::string name,
               int64_t value) {
  metrics::MetricSnapshot ms;
  ms.name = std::move(name);
  ms.kind = metrics::MetricKind::kGauge;
  ms.value = value;
  out->push_back(std::move(ms));
}

constexpr char kRulesTable[] = "__rules";

SchemaPtr RulesSchema() {
  return Schema::Make({
      {"rule_id", ValueType::kString, /*nullable=*/false},
      {"condition", ValueType::kString, false},
      {"action", ValueType::kString, true},
      {"priority", ValueType::kInt64, false},
      {"enabled", ValueType::kBool, false},
  });
}

}  // namespace

RulesEngine::RulesEngine(Database* db, MatcherKind kind) : db_(db) {
  if (kind == MatcherKind::kNaive) {
    matcher_ = std::make_unique<NaiveMatcher>();
  } else {
    matcher_ = std::make_unique<IndexedMatcher>();
  }
}

Result<std::unique_ptr<RulesEngine>> RulesEngine::Attach(Database* db,
                                                         MatcherKind kind) {
  auto engine = std::unique_ptr<RulesEngine>(new RulesEngine(db, kind));
  if (!db->GetTable(kRulesTable).ok()) {
    EDADB_RETURN_IF_ERROR(db->CreateTable(kRulesTable, RulesSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kRulesTable, "rule_id", true));
  }
  EDADB_RETURN_IF_ERROR(engine->LoadPersistedRules());
  // Matcher shape gauges (index vs scan population). The lambda runs
  // with the registry lock released, so taking mu_ here is safe.
  RulesEngine* raw = engine.get();
  engine->metrics_collector_ = metrics::Registry::Default()->RegisterCollector(
      [raw](std::vector<metrics::MetricSnapshot>* out) {
        MutexLock lock(&raw->mu_);
        auto* indexed = dynamic_cast<IndexedMatcher*>(raw->matcher_.get());
        if (indexed == nullptr) return;  // Naive matcher: nothing to report.
        const IndexedMatcher::Stats stats = indexed->GetStats();
        EmitGauge(out, "rules.matcher.eq_entries",
                  static_cast<int64_t>(stats.eq_entries));
        EmitGauge(out, "rules.matcher.range_entries",
                  static_cast<int64_t>(stats.range_entries));
        EmitGauge(out, "rules.matcher.scan_rules",
                  static_cast<int64_t>(stats.scan_rules));
        EmitGauge(out, "rules.matcher.total_rules",
                  static_cast<int64_t>(stats.total_rules));
      });
  return engine;
}

Result<Rule> RulesEngine::CompileRule(const std::string& id,
                                      std::string_view condition_source,
                                      std::string action, int64_t priority,
                                      bool enabled) const {
  EDADB_ASSIGN_OR_RETURN(Predicate condition,
                         Predicate::Compile(condition_source));
  Rule rule;
  rule.id = id;
  rule.condition = std::move(condition);
  rule.action = std::move(action);
  rule.priority = priority;
  rule.enabled = enabled;
  return rule;
}

Status RulesEngine::LoadPersistedRules() {
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kRulesTable));
  // Compile outside the lock; only the matcher insertions below need it
  // (and the analysis cannot see an enclosing lock inside a lambda).
  std::vector<Rule> compiled;
  Status status;
  table->ScanRows([&](RowId, const Record& row) {
    auto get_string = [&](std::string_view field) {
      auto v = row.Get(field);
      return v.ok() && v->type() == ValueType::kString ? v->string_value()
                                                       : std::string();
    };
    const std::string id = get_string("rule_id");
    auto priority = row.Get("priority");
    auto enabled = row.Get("enabled");
    auto rule = CompileRule(
        id, get_string("condition"), get_string("action"),
        priority.ok() && !priority->is_null() ? priority->int64_value() : 0,
        enabled.ok() && !enabled->is_null() ? enabled->bool_value() : true);
    if (!rule.ok()) {
      status = rule.status();
      return false;
    }
    compiled.push_back(*std::move(rule));
    return true;
  });
  EDADB_RETURN_IF_ERROR(status);
  MutexLock lock(&mu_);
  for (Rule& rule : compiled) {
    EDADB_RETURN_IF_ERROR(matcher_->AddRule(std::move(rule)));
  }
  return Status::OK();
}

Status RulesEngine::AddRule(const std::string& id,
                            std::string_view condition_source,
                            std::string action, int64_t priority) {
  EDADB_ASSIGN_OR_RETURN(
      Rule rule, CompileRule(id, condition_source, action, priority, true));
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kRulesTable));
  Record row = *RecordBuilder(table->schema())
                    .SetString("rule_id", id)
                    .SetString("condition", std::string(condition_source))
                    .SetString("action", rule.action)
                    .SetInt64("priority", priority)
                    .SetBool("enabled", true)
                    .Build();
  {
    MutexLock lock(&mu_);
    EDADB_RETURN_IF_ERROR(matcher_->AddRule(std::move(rule)));
  }
  const auto inserted = db_->Insert(kRulesTable, std::move(row));
  if (!inserted.ok()) {
    MutexLock lock(&mu_);
    EDADB_IGNORE_STATUS(matcher_->RemoveRule(id),
                        "best-effort rollback of the rule added above");
    return inserted.status();
  }
  return Status::OK();
}

Status RulesEngine::RemoveRule(const std::string& id) {
  {
    MutexLock lock(&mu_);
    EDADB_RETURN_IF_ERROR(matcher_->RemoveRule(id));
  }
  EDADB_ASSIGN_OR_RETURN(Predicate match,
                         Predicate::Compile("rule_id = '" + id + "'"));
  return db_->DeleteWhere(kRulesTable, match).status();
}

Status RulesEngine::SetRuleEnabled(const std::string& id, bool enabled) {
  MutexLock lock(&mu_);
  const Rule* existing = matcher_->GetRule(id);
  if (existing == nullptr) return Status::NotFound("rule '" + id + "'");
  if (existing->enabled == enabled) return Status::OK();
  Rule copy = *existing;
  copy.enabled = enabled;
  EDADB_RETURN_IF_ERROR(matcher_->RemoveRule(id));
  EDADB_RETURN_IF_ERROR(matcher_->AddRule(std::move(copy)));
  EDADB_ASSIGN_OR_RETURN(Predicate match,
                         Predicate::Compile("rule_id = '" + id + "'"));
  return db_
      ->UpdateWhere(kRulesTable, match,
                    [enabled](Record* row) {
                      return row->Set("enabled", Value::Bool(enabled));
                    })
      .status();
}

size_t RulesEngine::num_rules() const {
  MutexLock lock(&mu_);
  return matcher_->size();
}

std::vector<std::string> RulesEngine::ListRules() const {
  std::vector<std::string> ids;
  auto table = db_->GetTable(kRulesTable);
  if (!table.ok()) return ids;
  (*table)->ScanRows([&](RowId, const Record& row) {
    auto v = row.Get("rule_id");
    if (v.ok() && v->type() == ValueType::kString) {
      ids.push_back(v->string_value());
    }
    return true;
  });
  return ids;
}

std::optional<Rule> RulesEngine::FindRule(const std::string& id) const {
  MutexLock lock(&mu_);
  const Rule* rule = matcher_->GetRule(id);
  if (rule == nullptr) return std::nullopt;
  return *rule;
}

void RulesEngine::RegisterActionHandler(const std::string& action,
                                        ActionHandler handler) {
  MutexLock lock(&mu_);
  handlers_[action] = std::move(handler);
}

void RulesEngine::RegisterDefaultHandler(ActionHandler handler) {
  MutexLock lock(&mu_);
  default_handler_ = std::move(handler);
}

Result<std::vector<std::string>> RulesEngine::Evaluate(
    const RowAccessor& event) {
  const std::vector<const RowAccessor*> one = {&event};
  EDADB_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> ids,
                         EvaluateBatch(one));
  return std::move(ids.front());
}

Result<std::vector<std::vector<std::string>>> RulesEngine::EvaluateBatch(
    const std::vector<const RowAccessor*>& events) {
  // Per event: the matched rules (copied) and their bound handlers, so
  // dispatch runs outside mu_ — handlers may re-enter the engine
  // (AddRule from a handler) or block without stalling other callers.
  std::vector<std::vector<std::pair<Rule, ActionHandler>>> dispatch;
  dispatch.resize(events.size());
  EvaluatedCounter()->Add(events.size());
  // Scope covers matching only, not handler dispatch — handlers run
  // arbitrary user code and would swamp the match signal.
  {
    metrics::LatencyScope latency(MatchLatency());
    MutexLock lock(&mu_);
    std::vector<std::vector<const Rule*>> matched;
    matcher_->MatchBatch(events, &matched);
    for (size_t i = 0; i < matched.size(); ++i) {
      std::vector<const Rule*>& event_matches = matched[i];
      std::sort(event_matches.begin(), event_matches.end(),
                [](const Rule* a, const Rule* b) {
                  if (a->priority != b->priority) {
                    return a->priority > b->priority;
                  }
                  return a->id < b->id;
                });
      dispatch[i].reserve(event_matches.size());
      for (const Rule* rule : event_matches) {
        auto it = handlers_.find(rule->action);
        ActionHandler handler =
            it != handlers_.end() ? it->second : default_handler_;
        dispatch[i].emplace_back(*rule, std::move(handler));
      }
    }
  }
  std::vector<std::vector<std::string>> ids;
  ids.resize(events.size());
  size_t total_matched = 0;
  for (const auto& event_dispatch : dispatch) {
    total_matched += event_dispatch.size();
  }
  MatchedCounter()->Add(total_matched);
  for (size_t i = 0; i < dispatch.size(); ++i) {
    ids[i].reserve(dispatch[i].size());
    for (auto& [rule, handler] : dispatch[i]) {
      ids[i].push_back(rule.id);
      if (handler != nullptr) handler(rule, *events[i]);
    }
  }
  return ids;
}

}  // namespace edadb
