#ifndef EDADB_PUBSUB_BROKER_H_
#define EDADB_PUBSUB_BROKER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/result.h"
#include "db/database.h"
#include "expr/predicate.h"
#include "mq/queue_service.h"
#include "pubsub/event_ring.h"
#include "rules/indexed_matcher.h"
#include "value/record.h"
#include "value/row_codec.h"

namespace edadb {

/// What publishers send.
struct Publication {
  std::string topic;
  AttributeList attributes;
  std::string payload;
  bool retain = false;  // Keep as the topic's last value (see Subscribe).

  std::string ToString() const;
};

/// Exposes a publication to content filters: `topic` by reserved name,
/// every attribute by its own name.
class PublicationView : public RowAccessor {
 public:
  explicit PublicationView(const Publication& pub) : pub_(pub) {}

  std::optional<Value> GetAttribute(std::string_view name) const override {
    if (name == "topic") return Value::String(pub_.topic);
    for (const auto& [attr_name, value] : pub_.attributes) {
      if (attr_name == name) return value;
    }
    return std::nullopt;
  }

 private:
  const Publication& pub_;
};

/// How a subscriber wants to receive matches.
struct SubscriptionSpec {
  std::string subscriber;  // Identity, e.g. "dispatch-east".
  /// Glob over topics ('*' any run, '?' one char); empty matches all.
  std::string topic_pattern;
  /// Content filter source ("severity >= 3 AND region = 'east'");
  /// empty = no filter. This is the expression-as-data the tutorial
  /// highlights: it is stored in the __subscriptions table.
  std::string content_filter;
  /// Durable subscriptions buffer matches in a per-subscription queue
  /// that survives restart; fetch with Fetch(). Non-durable
  /// subscriptions invoke `handler` inline and lose messages published
  /// while the process is down.
  bool durable = false;
  std::function<void(const Publication&)> handler;  // Non-durable only.
};

/// How a LIVE subscriber attaches to the broadcast ring (the paper's
/// 10k+-subscriber live-feed regime). No durability, no backpressure:
/// the reader polls its cursor at its own pace and misses events it is
/// too slow for — misses are counted, never silent (DESIGN.md §13).
struct LiveSubscriptionSpec {
  std::string subscriber;  // Identity, e.g. "dashboard-7".
  /// Same glob semantics as SubscriptionSpec::topic_pattern; empty
  /// matches all. Filtering happens READER-side at poll time, so
  /// publishers pay O(1) per event regardless of the population.
  std::string topic_pattern;
  /// Content filter source; empty = no filter.
  std::string content_filter;
};

/// A poll-based cursor into the broker's event ring, returned by
/// Broker::SubscribeLive(). Poll() is wait-free and must be called by
/// one thread at a time (each subscriber owns its cursor); the
/// accounting getters are safe from any thread (the metrics collector
/// reads them).
///
/// Accounting: delivered() + filtered() + missed() equals the number of
/// events published since the subscription was created and already
/// observed (cursor position - start); with no filter,
/// delivered() + missed() == published-since-subscribe once drained.
class LiveSubscription {
 public:
  LiveSubscription(const LiveSubscription&) = delete;
  LiveSubscription& operator=(const LiveSubscription&) = delete;

  /// Appends up to `max_events` MATCHING events (as (sequence,
  /// publication) pairs, strictly increasing sequence) to *out and
  /// returns how many were appended. Non-matching events are counted
  /// as filtered; overwritten events as missed.
  EDADB_NODISCARD size_t Poll(
      size_t max_events, std::vector<std::pair<uint64_t, Publication>>* out);

  const std::string& id() const { return id_; }
  const std::string& subscriber() const { return subscriber_; }

  uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  uint64_t filtered() const {
    return filtered_.load(std::memory_order_relaxed);
  }
  uint64_t missed() const { return cursor_.missed(); }
  /// Events published but not yet observed by this subscriber.
  uint64_t lag() const { return cursor_.lag(); }
  uint64_t start_seq() const { return cursor_.start_seq(); }
  uint64_t next_seq() const { return cursor_.next_seq(); }

 private:
  friend class Broker;
  LiveSubscription(std::string id, std::string subscriber,
                   const EventRing* ring, std::optional<Predicate> filter)
      : id_(std::move(id)),
        subscriber_(std::move(subscriber)),
        cursor_(ring),
        filter_(std::move(filter)) {}

  const std::string id_;
  const std::string subscriber_;
  RingCursor cursor_;
  const std::optional<Predicate> filter_;
  std::atomic<uint64_t> delivered_{0};  // Post-filter, returned to caller.
  std::atomic<uint64_t> filtered_{0};   // Observed but not matching.
};

/// Publish/subscribe over database technology (§2.2.c.i):
///   - subscriptions are rows in `__subscriptions` (expressions as
///     data), compiled into an IndexedMatcher so content-based fanout
///     scales like the rules engine rather than O(subscriptions);
///   - durable subscriptions are staging-area queues, inheriting
///     recoverability and transactional delivery;
///   - "subscribe-to-publish": topics can retain their last publication
///     (`Publication::retain`), and a new subscription is immediately
///     served every retained publication it matches — subscribing
///     triggers publication toward the new consumer.
///
/// Thread-safe.
class Broker {
 public:
  /// `db` and `queues` must outlive the broker. Durable subscriptions
  /// persisted by earlier runs are re-attached (their queues already
  /// exist); non-durable ones are gone by design. `ring_options` sizes
  /// the live broadcast ring (volatile by design; live cursors never
  /// survive restart).
  EDADB_NODISCARD static Result<std::unique_ptr<Broker>> Attach(
      Database* db, QueueService* queues, EventRingOptions ring_options = {});

  /// Returns the subscription id.
  EDADB_NODISCARD Result<std::string> Subscribe(SubscriptionSpec spec);

  EDADB_NODISCARD Status Unsubscribe(const std::string& subscription_id);

  /// Attaches a live poll-based cursor to the broadcast ring, starting
  /// at the current head. The returned subscription stays registered
  /// (and visible to the pubsub.ring.* metrics) until UnsubscribeLive;
  /// the shared_ptr keeps it safe to poll even across an unsubscribe
  /// racing on another thread.
  EDADB_NODISCARD Result<std::shared_ptr<LiveSubscription>> SubscribeLive(
      const LiveSubscriptionSpec& spec);

  EDADB_NODISCARD Status UnsubscribeLive(const std::string& id);

  /// The live broadcast ring (every publication flows through it).
  EventRing* ring() const { return ring_.get(); }

  size_t num_live_subscriptions() const;

  /// Delivers `pub` to every matching subscription; returns how many
  /// subscriptions received it. Thin wrapper over a one-publication
  /// PublishBatch (single code path).
  EDADB_NODISCARD Result<size_t> Publish(const Publication& pub);

  /// Batched fan-out: matches every publication under ONE matcher lock,
  /// then groups deliveries per durable subscription so each
  /// subscription queue receives all its matches in one EnqueueBatch —
  /// one transaction and one WAL barrier per (queue, batch) instead of
  /// per (queue, publication). Non-durable handlers are invoked per
  /// publication, in publication order. Returns total (publication,
  /// subscription) deliveries.
  EDADB_NODISCARD Result<size_t> PublishBatch(
      const std::vector<Publication>& pubs);

  /// Pops the next buffered publication of a durable subscription
  /// (nullopt when drained). Delivery is at-least-once; the message is
  /// acked on successful decode.
  EDADB_NODISCARD Result<std::optional<Publication>> Fetch(
      const std::string& subscription_id);

  /// Buffered publications awaiting Fetch (durable subscriptions).
  EDADB_NODISCARD Result<size_t> PendingCount(const std::string& subscription_id) const;

  std::vector<std::string> ListSubscriptions() const;
  size_t num_subscriptions() const;

 private:
  Broker(Database* db, QueueService* queues, EventRingOptions ring_options);

  struct SubscriptionState {
    SubscriptionSpec spec;
    std::string queue;  // Durable only.
    /// Cleared by Unsubscribe BEFORE the map entry goes away: an
    /// in-flight fan-out that snapshotted this subscription re-checks
    /// the flag per delivery, so no NEW handler invocation starts after
    /// Unsubscribe returns — without Unsubscribe ever waiting on a slow
    /// handler.
    std::atomic<bool> alive{true};
  };

  EDADB_NODISCARD Status LoadPersisted();
  EDADB_NODISCARD Status CompileIntoMatcher(const std::string& id,
                            const SubscriptionSpec& spec)
      EDADB_REQUIRES(mu_);
  static std::string SubQueueName(const std::string& id);

  /// Builds the matcher condition: topic pattern + content filter.
  EDADB_NODISCARD static Result<Predicate> BuildCondition(
      std::string_view topic_pattern, std::string_view content_filter);

  EDADB_NODISCARD Status DeliverTo(const SubscriptionState& sub, const Publication& pub);

  /// Invokes a non-durable handler, converting anything it throws into
  /// an error Status so one bad subscriber cannot abort a fan-out.
  EDADB_NODISCARD static Status InvokeHandler(const SubscriptionState& sub,
                                              const Publication& pub);

  /// Shared implementation behind Publish/PublishBatch (pointer + count
  /// so the single-publication wrapper needs no copy).
  EDADB_NODISCARD Result<size_t> PublishSpan(const Publication* pubs, size_t count);

  /// Metrics collector body: per-live-subscriber delivered/missed/lag
  /// gauges plus the subscriber-count gauge (DESIGN.md §13).
  void CollectLiveMetrics(std::vector<metrics::MetricSnapshot>* out) const;

  Database* const db_;
  QueueService* const queues_;

  /// Never held across DeliverTo (handler callbacks / queue enqueues).
  mutable Mutex mu_{"Broker::mu_"};
  IndexedMatcher matcher_ EDADB_GUARDED_BY(mu_);
  std::map<std::string, std::shared_ptr<SubscriptionState>> subscriptions_
      EDADB_GUARDED_BY(mu_);
  uint64_t next_sub_seq_ EDADB_GUARDED_BY(mu_) = 1;

  /// Live fast path. ring_ is created once in the constructor and
  /// internally synchronized; live_mu_ guards only the registry of
  /// cursors (publishes never take it).
  const std::unique_ptr<EventRing> ring_;
  mutable Mutex live_mu_{"Broker::live_mu_"};
  std::map<std::string, std::shared_ptr<LiveSubscription>> live_subs_
      EDADB_GUARDED_BY(live_mu_);
  uint64_t next_live_seq_ EDADB_GUARDED_BY(live_mu_) = 1;
  /// Declared last: unregisters (and waits out any in-flight collector
  /// call) before the fields the collector reads are destroyed.
  metrics::CallbackHandle live_collector_;
};

/// Serializes a publication into a queue message and back.
void PublicationToEnqueueRequest(const Publication& pub,
                                 EnqueueRequest* request);
Publication MessageToPublication(const Message& message);

}  // namespace edadb

#endif  // EDADB_PUBSUB_BROKER_H_
