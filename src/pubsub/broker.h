#ifndef EDADB_PUBSUB_BROKER_H_
#define EDADB_PUBSUB_BROKER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"
#include "db/database.h"
#include "expr/predicate.h"
#include "mq/queue_manager.h"
#include "rules/indexed_matcher.h"
#include "value/record.h"
#include "value/row_codec.h"

namespace edadb {

/// What publishers send.
struct Publication {
  std::string topic;
  AttributeList attributes;
  std::string payload;
  bool retain = false;  // Keep as the topic's last value (see Subscribe).

  std::string ToString() const;
};

/// Exposes a publication to content filters: `topic` by reserved name,
/// every attribute by its own name.
class PublicationView : public RowAccessor {
 public:
  explicit PublicationView(const Publication& pub) : pub_(pub) {}

  std::optional<Value> GetAttribute(std::string_view name) const override {
    if (name == "topic") return Value::String(pub_.topic);
    for (const auto& [attr_name, value] : pub_.attributes) {
      if (attr_name == name) return value;
    }
    return std::nullopt;
  }

 private:
  const Publication& pub_;
};

/// How a subscriber wants to receive matches.
struct SubscriptionSpec {
  std::string subscriber;  // Identity, e.g. "dispatch-east".
  /// Glob over topics ('*' any run, '?' one char); empty matches all.
  std::string topic_pattern;
  /// Content filter source ("severity >= 3 AND region = 'east'");
  /// empty = no filter. This is the expression-as-data the tutorial
  /// highlights: it is stored in the __subscriptions table.
  std::string content_filter;
  /// Durable subscriptions buffer matches in a per-subscription queue
  /// that survives restart; fetch with Fetch(). Non-durable
  /// subscriptions invoke `handler` inline and lose messages published
  /// while the process is down.
  bool durable = false;
  std::function<void(const Publication&)> handler;  // Non-durable only.
};

/// Publish/subscribe over database technology (§2.2.c.i):
///   - subscriptions are rows in `__subscriptions` (expressions as
///     data), compiled into an IndexedMatcher so content-based fanout
///     scales like the rules engine rather than O(subscriptions);
///   - durable subscriptions are staging-area queues, inheriting
///     recoverability and transactional delivery;
///   - "subscribe-to-publish": topics can retain their last publication
///     (`Publication::retain`), and a new subscription is immediately
///     served every retained publication it matches — subscribing
///     triggers publication toward the new consumer.
///
/// Thread-safe.
class Broker {
 public:
  /// `db` and `queues` must outlive the broker. Durable subscriptions
  /// persisted by earlier runs are re-attached (their queues already
  /// exist); non-durable ones are gone by design.
  EDADB_NODISCARD static Result<std::unique_ptr<Broker>> Attach(Database* db,
                                                QueueManager* queues);

  /// Returns the subscription id.
  EDADB_NODISCARD Result<std::string> Subscribe(SubscriptionSpec spec);

  EDADB_NODISCARD Status Unsubscribe(const std::string& subscription_id);

  /// Delivers `pub` to every matching subscription; returns how many
  /// subscriptions received it. Thin wrapper over a one-publication
  /// PublishBatch (single code path).
  EDADB_NODISCARD Result<size_t> Publish(const Publication& pub);

  /// Batched fan-out: matches every publication under ONE matcher lock,
  /// then groups deliveries per durable subscription so each
  /// subscription queue receives all its matches in one EnqueueBatch —
  /// one transaction and one WAL barrier per (queue, batch) instead of
  /// per (queue, publication). Non-durable handlers are invoked per
  /// publication, in publication order. Returns total (publication,
  /// subscription) deliveries.
  EDADB_NODISCARD Result<size_t> PublishBatch(
      const std::vector<Publication>& pubs);

  /// Pops the next buffered publication of a durable subscription
  /// (nullopt when drained). Delivery is at-least-once; the message is
  /// acked on successful decode.
  EDADB_NODISCARD Result<std::optional<Publication>> Fetch(
      const std::string& subscription_id);

  /// Buffered publications awaiting Fetch (durable subscriptions).
  EDADB_NODISCARD Result<size_t> PendingCount(const std::string& subscription_id) const;

  std::vector<std::string> ListSubscriptions() const;
  size_t num_subscriptions() const;

 private:
  Broker(Database* db, QueueManager* queues);

  struct SubscriptionState {
    SubscriptionSpec spec;
    std::string queue;  // Durable only.
  };

  EDADB_NODISCARD Status LoadPersisted();
  EDADB_NODISCARD Status CompileIntoMatcher(const std::string& id,
                            const SubscriptionSpec& spec)
      EDADB_REQUIRES(mu_);
  static std::string SubQueueName(const std::string& id);

  /// Builds the matcher condition: topic pattern + content filter.
  EDADB_NODISCARD static Result<Predicate> BuildCondition(const SubscriptionSpec& spec);

  EDADB_NODISCARD Status DeliverTo(const SubscriptionState& sub, const Publication& pub);

  /// Shared implementation behind Publish/PublishBatch (pointer + count
  /// so the single-publication wrapper needs no copy).
  EDADB_NODISCARD Result<size_t> PublishSpan(const Publication* pubs, size_t count);

  Database* db_;
  QueueManager* queues_;

  /// Never held across DeliverTo (handler callbacks / queue enqueues).
  mutable Mutex mu_{"Broker::mu_"};
  IndexedMatcher matcher_ EDADB_GUARDED_BY(mu_);
  std::map<std::string, SubscriptionState> subscriptions_
      EDADB_GUARDED_BY(mu_);
  uint64_t next_sub_seq_ EDADB_GUARDED_BY(mu_) = 1;
};

/// Serializes a publication into a queue message and back.
void PublicationToEnqueueRequest(const Publication& pub,
                                 EnqueueRequest* request);
Publication MessageToPublication(const Message& message);

}  // namespace edadb

#endif  // EDADB_PUBSUB_BROKER_H_
