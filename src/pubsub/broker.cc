#include "pubsub/broker.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace edadb {

namespace {

metrics::Counter* PublishesCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.publishes");
  return c;
}

metrics::Counter* DeliveriesCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.deliveries");
  return c;
}

metrics::Histogram* PublishLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("pubsub.publish.latency_us");
  return h;
}

constexpr char kSubsTable[] = "__subscriptions";
constexpr char kRetainedTable[] = "__retained";
constexpr char kTopicAttr[] = "__topic";

SchemaPtr SubsSchema() {
  return Schema::Make({
      {"sub_id", ValueType::kString, /*nullable=*/false},
      {"subscriber", ValueType::kString, true},
      {"topic_pattern", ValueType::kString, true},
      {"filter", ValueType::kString, true},
      {"durable", ValueType::kBool, false},
  });
}

SchemaPtr RetainedSchema() {
  return Schema::Make({
      {"topic", ValueType::kString, false},
      {"attrs", ValueType::kString, true},
      {"payload", ValueType::kString, true},
  });
}

std::string EscapeSqlString(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  return out;
}

std::string GetStringField(const Record& row, std::string_view field) {
  auto v = row.Get(field);
  return v.ok() && v->type() == ValueType::kString ? v->string_value()
                                                   : std::string();
}

}  // namespace

std::string Publication::ToString() const {
  std::string out = "Publication{topic=" + topic;
  for (const auto& [name, value] : attributes) {
    out += " " + name + "=" + value.ToString();
  }
  out += " payload='" + payload + "'}";
  return out;
}

void PublicationToEnqueueRequest(const Publication& pub,
                                 EnqueueRequest* request) {
  request->payload = pub.payload;
  request->attributes = pub.attributes;
  request->attributes.emplace_back(kTopicAttr, Value::String(pub.topic));
}

Publication MessageToPublication(const Message& message) {
  Publication pub;
  pub.payload = message.payload;
  for (const auto& [name, value] : message.attributes) {
    if (name == kTopicAttr) {
      if (value.type() == ValueType::kString) pub.topic = value.string_value();
    } else {
      pub.attributes.emplace_back(name, value);
    }
  }
  return pub;
}

Broker::Broker(Database* db, QueueManager* queues)
    : db_(db), queues_(queues) {}

Result<std::unique_ptr<Broker>> Broker::Attach(Database* db,
                                               QueueManager* queues) {
  auto broker = std::unique_ptr<Broker>(new Broker(db, queues));
  if (!db->GetTable(kSubsTable).ok()) {
    EDADB_RETURN_IF_ERROR(db->CreateTable(kSubsTable, SubsSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kSubsTable, "sub_id", true));
  }
  if (!db->GetTable(kRetainedTable).ok()) {
    EDADB_RETURN_IF_ERROR(
        db->CreateTable(kRetainedTable, RetainedSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kRetainedTable, "topic", true));
  }
  EDADB_RETURN_IF_ERROR(broker->LoadPersisted());
  return broker;
}

std::string Broker::SubQueueName(const std::string& id) {
  return "__sub_" + id;
}

Result<Predicate> Broker::BuildCondition(const SubscriptionSpec& spec) {
  std::vector<std::string> clauses;
  if (!spec.topic_pattern.empty()) {
    const bool has_wildcard =
        spec.topic_pattern.find('*') != std::string::npos ||
        spec.topic_pattern.find('?') != std::string::npos;
    if (has_wildcard) {
      std::string like = spec.topic_pattern;
      std::replace(like.begin(), like.end(), '*', '%');
      std::replace(like.begin(), like.end(), '?', '_');
      clauses.push_back("topic LIKE '" + EscapeSqlString(like) + "'");
    } else {
      // Exact topics index as hash-equality conjuncts in the matcher.
      clauses.push_back("topic = '" + EscapeSqlString(spec.topic_pattern) +
                        "'");
    }
  }
  if (!spec.content_filter.empty()) {
    clauses.push_back("(" + spec.content_filter + ")");
  }
  if (clauses.empty()) return Predicate::Compile("TRUE");
  return Predicate::Compile(Join(clauses, " AND "));
}

Status Broker::CompileIntoMatcher(const std::string& id,
                                  const SubscriptionSpec& spec) {
  EDADB_ASSIGN_OR_RETURN(Predicate condition, BuildCondition(spec));
  Rule rule;
  rule.id = id;
  rule.condition = std::move(condition);
  return matcher_.AddRule(std::move(rule));
}

Status Broker::LoadPersisted() {
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kSubsTable));
  // Scan into locals first: guarded members are only touched under the
  // lock below, in this function body, where the analysis can see it.
  std::vector<std::pair<std::string, SubscriptionState>> loaded;
  table->ScanRows([&](RowId, const Record& row) {
    const std::string id = GetStringField(row, "sub_id");
    SubscriptionState state;
    state.spec.subscriber = GetStringField(row, "subscriber");
    state.spec.topic_pattern = GetStringField(row, "topic_pattern");
    state.spec.content_filter = GetStringField(row, "filter");
    auto durable = row.Get("durable");
    state.spec.durable = durable.ok() && !durable->is_null() &&
                         durable->bool_value();
    state.queue = SubQueueName(id);
    loaded.emplace_back(id, std::move(state));
    return true;
  });
  MutexLock lock(&mu_);
  for (auto& [id, state] : loaded) {
    EDADB_RETURN_IF_ERROR(CompileIntoMatcher(id, state.spec));
    // Track the numeric suffix so new ids keep increasing.
    if (StartsWith(id, "sub-")) {
      const uint64_t seq = std::strtoull(id.c_str() + 4, nullptr, 10);
      if (seq >= next_sub_seq_) next_sub_seq_ = seq + 1;
    }
    subscriptions_.emplace(id, std::move(state));
  }
  return Status::OK();
}

Result<std::string> Broker::Subscribe(SubscriptionSpec spec) {
  if (!spec.durable && spec.handler == nullptr) {
    return Status::InvalidArgument(
        "non-durable subscription needs a handler");
  }
  std::string id;
  {
    MutexLock lock(&mu_);
    id = "sub-" + std::to_string(next_sub_seq_++);
    EDADB_RETURN_IF_ERROR(CompileIntoMatcher(id, spec));
  }
  if (spec.durable) {
    // Durable: persist the subscription and its buffer queue.
    const Status queue_status = queues_->CreateQueue(SubQueueName(id));
    if (!queue_status.ok() && !queue_status.IsAlreadyExists()) {
      MutexLock lock(&mu_);
      EDADB_IGNORE_STATUS(matcher_.RemoveRule(id),
                          "best-effort rollback of the rule added above");
      return queue_status;
    }
    EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kSubsTable));
    Record row = *RecordBuilder(table->schema())
                      .SetString("sub_id", id)
                      .SetString("subscriber", spec.subscriber)
                      .SetString("topic_pattern", spec.topic_pattern)
                      .SetString("filter", spec.content_filter)
                      .SetBool("durable", true)
                      .Build();
    const auto inserted = db_->Insert(kSubsTable, std::move(row));
    if (!inserted.ok()) {
      MutexLock lock(&mu_);
      EDADB_IGNORE_STATUS(matcher_.RemoveRule(id),
                          "best-effort rollback of the rule added above");
      return inserted.status();
    }
  }

  SubscriptionState state;
  state.spec = std::move(spec);
  state.queue = SubQueueName(id);

  // Subscribe-to-publish: serve matching retained publications to the
  // newcomer immediately.
  std::vector<Publication> retained_matches;
  {
    EDADB_ASSIGN_OR_RETURN(Predicate condition, BuildCondition(state.spec));
    EDADB_ASSIGN_OR_RETURN(Table * retained, db_->GetTable(kRetainedTable));
    retained->ScanRows([&](RowId, const Record& row) {
      Publication pub;
      pub.topic = GetStringField(row, "topic");
      pub.payload = GetStringField(row, "payload");
      const std::string attrs = GetStringField(row, "attrs");
      if (!attrs.empty()) {
        auto decoded = DecodeAttributes(attrs);
        if (decoded.ok()) pub.attributes = *std::move(decoded);
      }
      PublicationView view(pub);
      if (condition.MatchesOrFalse(view)) {
        retained_matches.push_back(std::move(pub));
      }
      return true;
    });
  }
  for (const Publication& pub : retained_matches) {
    EDADB_RETURN_IF_ERROR(DeliverTo(state, pub));
  }

  MutexLock lock(&mu_);
  subscriptions_.emplace(id, std::move(state));
  return id;
}

Status Broker::Unsubscribe(const std::string& subscription_id) {
  bool durable = false;
  {
    MutexLock lock(&mu_);
    auto it = subscriptions_.find(subscription_id);
    if (it == subscriptions_.end()) {
      return Status::NotFound("subscription '" + subscription_id + "'");
    }
    durable = it->second.spec.durable;
    EDADB_IGNORE_STATUS(matcher_.RemoveRule(subscription_id),
                        "unsubscribe is idempotent; the rule is absent when "
                        "a failed Subscribe already rolled it back");
    subscriptions_.erase(it);
  }
  if (durable) {
    EDADB_ASSIGN_OR_RETURN(
        Predicate match,
        Predicate::Compile("sub_id = '" + subscription_id + "'"));
    EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kSubsTable, match).status());
    const Status drop = queues_->DropQueue(SubQueueName(subscription_id));
    if (!drop.ok() && !drop.IsNotFound()) return drop;
  }
  return Status::OK();
}

Status Broker::DeliverTo(const SubscriptionState& sub,
                         const Publication& pub) {
  if (sub.spec.durable) {
    EnqueueRequest request;
    PublicationToEnqueueRequest(pub, &request);
    return queues_->Enqueue(sub.queue, request).status();
  }
  if (sub.spec.handler != nullptr) sub.spec.handler(pub);
  return Status::OK();
}

Result<size_t> Broker::Publish(const Publication& pub) {
  return PublishSpan(&pub, 1);
}

Result<size_t> Broker::PublishBatch(const std::vector<Publication>& pubs) {
  return PublishSpan(pubs.data(), pubs.size());
}

Result<size_t> Broker::PublishSpan(const Publication* pubs, size_t count) {
  if (count == 0) return static_cast<size_t>(0);
  metrics::LatencyScope latency(PublishLatency());
  PublishesCounter()->Add(count);

  // Retained-value bookkeeping per publication (cold path).
  for (size_t i = 0; i < count; ++i) {
    const Publication& pub = pubs[i];
    if (!pub.retain) continue;
    EDADB_ASSIGN_OR_RETURN(
        Predicate match,
        Predicate::Compile("topic = '" + EscapeSqlString(pub.topic) + "'"));
    EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kRetainedTable, match).status());
    EDADB_ASSIGN_OR_RETURN(Table * retained, db_->GetTable(kRetainedTable));
    std::string attrs;
    EncodeAttributes(pub.attributes, &attrs);
    Record row = *RecordBuilder(retained->schema())
                      .SetString("topic", pub.topic)
                      .SetString("attrs", std::move(attrs))
                      .SetString("payload", pub.payload)
                      .Build();
    EDADB_RETURN_IF_ERROR(db_->Insert(kRetainedTable, std::move(row)).status());
  }

  // Match the whole batch under ONE lock; deliveries happen outside it.
  // Durable targets are grouped by destination queue so each queue gets
  // its matches in one EnqueueBatch (batched fan-out); non-durable
  // handler targets are copied out and invoked in publication order.
  std::map<std::string, std::vector<size_t>> durable_pub_indices;  // By queue.
  std::map<std::string, std::string> durable_subscriber;           // By queue.
  std::vector<std::pair<SubscriptionState, size_t>> inline_targets;
  {
    MutexLock lock(&mu_);
    std::vector<PublicationView> views;
    views.reserve(count);
    for (size_t i = 0; i < count; ++i) views.emplace_back(pubs[i]);
    std::vector<const RowAccessor*> accessors;
    accessors.reserve(count);
    for (const PublicationView& view : views) accessors.push_back(&view);
    std::vector<std::vector<const Rule*>> matched;
    matcher_.MatchBatch(accessors, &matched);
    for (size_t i = 0; i < matched.size(); ++i) {
      for (const Rule* rule : matched[i]) {
        auto it = subscriptions_.find(rule->id);
        if (it == subscriptions_.end()) continue;
        const SubscriptionState& sub = it->second;
        if (sub.spec.durable) {
          durable_pub_indices[sub.queue].push_back(i);
          durable_subscriber[sub.queue] = sub.spec.subscriber;
        } else {
          inline_targets.emplace_back(sub, i);
        }
      }
    }
  }

  size_t delivered = 0;
  for (const auto& [queue, indices] : durable_pub_indices) {
    std::vector<EnqueueRequest> requests(indices.size());
    for (size_t j = 0; j < indices.size(); ++j) {
      PublicationToEnqueueRequest(pubs[indices[j]], &requests[j]);
    }
    const auto enqueued = queues_->EnqueueBatch(queue, requests);
    if (enqueued.ok()) {
      delivered += indices.size();
    } else {
      EDADB_LOG(Warn) << "delivery of " << indices.size()
                      << " publication(s) to subscriber '"
                      << durable_subscriber[queue]
                      << "' failed: " << enqueued.status();
    }
  }
  for (const auto& [sub, index] : inline_targets) {
    const Status s = DeliverTo(sub, pubs[index]);
    if (s.ok()) {
      ++delivered;
    } else {
      EDADB_LOG(Warn) << "delivery to subscriber '" << sub.spec.subscriber
                      << "' failed: " << s;
    }
  }
  DeliveriesCounter()->Add(delivered);
  return delivered;
}

Result<std::optional<Publication>> Broker::Fetch(
    const std::string& subscription_id) {
  {
    MutexLock lock(&mu_);
    auto it = subscriptions_.find(subscription_id);
    if (it == subscriptions_.end()) {
      return Status::NotFound("subscription '" + subscription_id + "'");
    }
    if (!it->second.spec.durable) {
      return Status::FailedPrecondition(
          "subscription '" + subscription_id +
          "' is not durable; messages are delivered to its handler");
    }
  }
  DequeueRequest request;
  EDADB_ASSIGN_OR_RETURN(
      std::optional<Message> message,
      queues_->Dequeue(SubQueueName(subscription_id), request));
  if (!message.has_value()) return std::optional<Publication>();
  EDADB_RETURN_IF_ERROR(
      queues_->Ack(SubQueueName(subscription_id), "", message->id));
  return std::optional<Publication>(MessageToPublication(*message));
}

Result<size_t> Broker::PendingCount(
    const std::string& subscription_id) const {
  {
    MutexLock lock(&mu_);
    if (subscriptions_.count(subscription_id) == 0) {
      return Status::NotFound("subscription '" + subscription_id + "'");
    }
  }
  return queues_->Depth(SubQueueName(subscription_id), "");
}

std::vector<std::string> Broker::ListSubscriptions() const {
  MutexLock lock(&mu_);
  std::vector<std::string> ids;
  ids.reserve(subscriptions_.size());
  for (const auto& [id, state] : subscriptions_) ids.push_back(id);
  return ids;
}

size_t Broker::num_subscriptions() const {
  MutexLock lock(&mu_);
  return subscriptions_.size();
}

}  // namespace edadb
