#include "pubsub/broker.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace edadb {

namespace {

metrics::Counter* PublishesCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.publishes");
  return c;
}

metrics::Counter* DeliveriesCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.deliveries");
  return c;
}

metrics::Histogram* PublishLatency() {
  static metrics::Histogram* const h =
      metrics::Registry::Default()->GetHistogram("pubsub.publish.latency_us");
  return h;
}

metrics::Counter* HandlerErrorsCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.handler_errors");
  return c;
}

metrics::Counter* RingPublishedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.ring.published");
  return c;
}

metrics::Counter* RingDeliveredCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.ring.delivered");
  return c;
}

metrics::Counter* RingMissedCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.ring.missed");
  return c;
}

metrics::Counter* RingFilteredCounter() {
  static metrics::Counter* const c =
      metrics::Registry::Default()->GetCounter("pubsub.ring.filtered");
  return c;
}

constexpr char kSubsTable[] = "__subscriptions";
constexpr char kRetainedTable[] = "__retained";
constexpr char kTopicAttr[] = "__topic";

SchemaPtr SubsSchema() {
  return Schema::Make({
      {"sub_id", ValueType::kString, /*nullable=*/false},
      {"subscriber", ValueType::kString, true},
      {"topic_pattern", ValueType::kString, true},
      {"filter", ValueType::kString, true},
      {"durable", ValueType::kBool, false},
  });
}

SchemaPtr RetainedSchema() {
  return Schema::Make({
      {"topic", ValueType::kString, false},
      {"attrs", ValueType::kString, true},
      {"payload", ValueType::kString, true},
  });
}

std::string EscapeSqlString(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  return out;
}

std::string GetStringField(const Record& row, std::string_view field) {
  auto v = row.Get(field);
  return v.ok() && v->type() == ValueType::kString ? v->string_value()
                                                   : std::string();
}

}  // namespace

std::string Publication::ToString() const {
  std::string out = "Publication{topic=" + topic;
  for (const auto& [name, value] : attributes) {
    out += " " + name + "=" + value.ToString();
  }
  out += " payload='" + payload + "'}";
  return out;
}

void PublicationToEnqueueRequest(const Publication& pub,
                                 EnqueueRequest* request) {
  request->payload = pub.payload;
  request->attributes = pub.attributes;
  request->attributes.emplace_back(kTopicAttr, Value::String(pub.topic));
}

Publication MessageToPublication(const Message& message) {
  Publication pub;
  pub.payload = message.payload;
  for (const auto& [name, value] : message.attributes) {
    if (name == kTopicAttr) {
      if (value.type() == ValueType::kString) pub.topic = value.string_value();
    } else {
      pub.attributes.emplace_back(name, value);
    }
  }
  return pub;
}

Broker::Broker(Database* db, QueueService* queues,
               EventRingOptions ring_options)
    : db_(db),
      queues_(queues),
      ring_(std::make_unique<EventRing>(ring_options)) {}

Result<std::unique_ptr<Broker>> Broker::Attach(Database* db,
                                               QueueService* queues,
                                               EventRingOptions ring_options) {
  auto broker =
      std::unique_ptr<Broker>(new Broker(db, queues, ring_options));
  broker->live_collector_ = metrics::Registry::Default()->RegisterCollector(
      [b = broker.get()](std::vector<metrics::MetricSnapshot>* out) {
        b->CollectLiveMetrics(out);
      });
  if (!db->GetTable(kSubsTable).ok()) {
    EDADB_RETURN_IF_ERROR(db->CreateTable(kSubsTable, SubsSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kSubsTable, "sub_id", true));
  }
  if (!db->GetTable(kRetainedTable).ok()) {
    EDADB_RETURN_IF_ERROR(
        db->CreateTable(kRetainedTable, RetainedSchema()).status());
    EDADB_RETURN_IF_ERROR(db->CreateIndex(kRetainedTable, "topic", true));
  }
  EDADB_RETURN_IF_ERROR(broker->LoadPersisted());
  return broker;
}

std::string Broker::SubQueueName(const std::string& id) {
  return "__sub_" + id;
}

Result<Predicate> Broker::BuildCondition(std::string_view topic_pattern,
                                         std::string_view content_filter) {
  std::vector<std::string> clauses;
  if (!topic_pattern.empty()) {
    const bool has_wildcard =
        topic_pattern.find('*') != std::string_view::npos ||
        topic_pattern.find('?') != std::string_view::npos;
    if (has_wildcard) {
      std::string like(topic_pattern);
      std::replace(like.begin(), like.end(), '*', '%');
      std::replace(like.begin(), like.end(), '?', '_');
      clauses.push_back("topic LIKE '" + EscapeSqlString(like) + "'");
    } else {
      // Exact topics index as hash-equality conjuncts in the matcher.
      clauses.push_back("topic = '" +
                        EscapeSqlString(std::string(topic_pattern)) + "'");
    }
  }
  if (!content_filter.empty()) {
    clauses.push_back("(" + std::string(content_filter) + ")");
  }
  if (clauses.empty()) return Predicate::Compile("TRUE");
  return Predicate::Compile(Join(clauses, " AND "));
}

Status Broker::CompileIntoMatcher(const std::string& id,
                                  const SubscriptionSpec& spec) {
  EDADB_ASSIGN_OR_RETURN(
      Predicate condition,
      BuildCondition(spec.topic_pattern, spec.content_filter));
  Rule rule;
  rule.id = id;
  rule.condition = std::move(condition);
  return matcher_.AddRule(std::move(rule));
}

Status Broker::LoadPersisted() {
  EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kSubsTable));
  // Scan into locals first: guarded members are only touched under the
  // lock below, in this function body, where the analysis can see it.
  std::vector<std::pair<std::string, std::shared_ptr<SubscriptionState>>>
      loaded;
  table->ScanRows([&](RowId, const Record& row) {
    const std::string id = GetStringField(row, "sub_id");
    auto state = std::make_shared<SubscriptionState>();
    state->spec.subscriber = GetStringField(row, "subscriber");
    state->spec.topic_pattern = GetStringField(row, "topic_pattern");
    state->spec.content_filter = GetStringField(row, "filter");
    auto durable = row.Get("durable");
    state->spec.durable = durable.ok() && !durable->is_null() &&
                          durable->bool_value();
    state->queue = SubQueueName(id);
    loaded.emplace_back(id, std::move(state));
    return true;
  });
  MutexLock lock(&mu_);
  for (auto& [id, state] : loaded) {
    EDADB_RETURN_IF_ERROR(CompileIntoMatcher(id, state->spec));
    // Track the numeric suffix so new ids keep increasing.
    if (StartsWith(id, "sub-")) {
      const uint64_t seq = std::strtoull(id.c_str() + 4, nullptr, 10);
      if (seq >= next_sub_seq_) next_sub_seq_ = seq + 1;
    }
    subscriptions_.emplace(id, std::move(state));
  }
  return Status::OK();
}

Result<std::string> Broker::Subscribe(SubscriptionSpec spec) {
  if (!spec.durable && spec.handler == nullptr) {
    return Status::InvalidArgument(
        "non-durable subscription needs a handler");
  }
  std::string id;
  {
    MutexLock lock(&mu_);
    id = "sub-" + std::to_string(next_sub_seq_++);
    EDADB_RETURN_IF_ERROR(CompileIntoMatcher(id, spec));
  }
  if (spec.durable) {
    // Durable: persist the subscription and its buffer queue.
    const Status queue_status = queues_->CreateQueue(SubQueueName(id));
    if (!queue_status.ok() && !queue_status.IsAlreadyExists()) {
      MutexLock lock(&mu_);
      EDADB_IGNORE_STATUS(matcher_.RemoveRule(id),
                          "best-effort rollback of the rule added above");
      return queue_status;
    }
    EDADB_ASSIGN_OR_RETURN(Table * table, db_->GetTable(kSubsTable));
    Record row = *RecordBuilder(table->schema())
                      .SetString("sub_id", id)
                      .SetString("subscriber", spec.subscriber)
                      .SetString("topic_pattern", spec.topic_pattern)
                      .SetString("filter", spec.content_filter)
                      .SetBool("durable", true)
                      .Build();
    const auto inserted = db_->Insert(kSubsTable, std::move(row));
    if (!inserted.ok()) {
      MutexLock lock(&mu_);
      EDADB_IGNORE_STATUS(matcher_.RemoveRule(id),
                          "best-effort rollback of the rule added above");
      return inserted.status();
    }
  }

  auto state = std::make_shared<SubscriptionState>();
  state->spec = std::move(spec);
  state->queue = SubQueueName(id);

  // Subscribe-to-publish: serve matching retained publications to the
  // newcomer immediately.
  std::vector<Publication> retained_matches;
  {
    EDADB_ASSIGN_OR_RETURN(Predicate condition,
                           BuildCondition(state->spec.topic_pattern,
                                          state->spec.content_filter));
    EDADB_ASSIGN_OR_RETURN(Table * retained, db_->GetTable(kRetainedTable));
    retained->ScanRows([&](RowId, const Record& row) {
      Publication pub;
      pub.topic = GetStringField(row, "topic");
      pub.payload = GetStringField(row, "payload");
      const std::string attrs = GetStringField(row, "attrs");
      if (!attrs.empty()) {
        auto decoded = DecodeAttributes(attrs);
        if (decoded.ok()) pub.attributes = *std::move(decoded);
      }
      PublicationView view(pub);
      if (condition.MatchesOrFalse(view)) {
        retained_matches.push_back(std::move(pub));
      }
      return true;
    });
  }
  for (const Publication& pub : retained_matches) {
    EDADB_RETURN_IF_ERROR(DeliverTo(*state, pub));
  }

  MutexLock lock(&mu_);
  subscriptions_.emplace(id, std::move(state));
  return id;
}

Status Broker::Unsubscribe(const std::string& subscription_id) {
  bool durable = false;
  {
    MutexLock lock(&mu_);
    auto it = subscriptions_.find(subscription_id);
    if (it == subscriptions_.end()) {
      return Status::NotFound("subscription '" + subscription_id + "'");
    }
    durable = it->second->spec.durable;
    EDADB_IGNORE_STATUS(matcher_.RemoveRule(subscription_id),
                        "unsubscribe is idempotent; the rule is absent when "
                        "a failed Subscribe already rolled it back");
    // An in-flight fan-out may still hold a snapshot of this state; the
    // cleared flag stops any handler invocation that has not started
    // yet, without Unsubscribe waiting on one that has.
    it->second->alive.store(false, std::memory_order_release);
    subscriptions_.erase(it);
  }
  if (durable) {
    EDADB_ASSIGN_OR_RETURN(
        Predicate match,
        Predicate::Compile("sub_id = '" + subscription_id + "'"));
    EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kSubsTable, match).status());
    const Status drop = queues_->DropQueue(SubQueueName(subscription_id));
    if (!drop.ok() && !drop.IsNotFound()) return drop;
  }
  return Status::OK();
}

Status Broker::DeliverTo(const SubscriptionState& sub,
                         const Publication& pub) {
  if (sub.spec.durable) {
    EnqueueRequest request;
    PublicationToEnqueueRequest(pub, &request);
    return queues_->Enqueue(sub.queue, request).status();
  }
  return InvokeHandler(sub, pub);
}

Status Broker::InvokeHandler(const SubscriptionState& sub,
                             const Publication& pub) {
  if (sub.spec.handler == nullptr) return Status::OK();
  try {
    sub.spec.handler(pub);
  } catch (const std::exception& e) {
    HandlerErrorsCounter()->Add(1);
    return Status::Internal("handler for subscriber '" +
                            sub.spec.subscriber + "' threw: " + e.what());
  } catch (...) {
    HandlerErrorsCounter()->Add(1);
    return Status::Internal("handler for subscriber '" +
                            sub.spec.subscriber +
                            "' threw a non-std::exception");
  }
  return Status::OK();
}

Result<size_t> Broker::Publish(const Publication& pub) {
  return PublishSpan(&pub, 1);
}

Result<size_t> Broker::PublishBatch(const std::vector<Publication>& pubs) {
  return PublishSpan(pubs.data(), pubs.size());
}

Result<size_t> Broker::PublishSpan(const Publication* pubs, size_t count) {
  if (count == 0) return static_cast<size_t>(0);
  metrics::LatencyScope latency(PublishLatency());
  PublishesCounter()->Add(count);

  // Live fast path first: ONE ring write for the whole batch, before
  // any durable bookkeeping, so live readers see events at minimal
  // latency. Publishers pay O(batch) here no matter how many live
  // subscribers are polling.
  ring_->PublishBatch(pubs, count);
  RingPublishedCounter()->Add(count);

  // Retained-value bookkeeping per publication (cold path).
  for (size_t i = 0; i < count; ++i) {
    const Publication& pub = pubs[i];
    if (!pub.retain) continue;
    EDADB_ASSIGN_OR_RETURN(
        Predicate match,
        Predicate::Compile("topic = '" + EscapeSqlString(pub.topic) + "'"));
    EDADB_RETURN_IF_ERROR(db_->DeleteWhere(kRetainedTable, match).status());
    EDADB_ASSIGN_OR_RETURN(Table * retained, db_->GetTable(kRetainedTable));
    std::string attrs;
    EncodeAttributes(pub.attributes, &attrs);
    Record row = *RecordBuilder(retained->schema())
                      .SetString("topic", pub.topic)
                      .SetString("attrs", std::move(attrs))
                      .SetString("payload", pub.payload)
                      .Build();
    EDADB_RETURN_IF_ERROR(db_->Insert(kRetainedTable, std::move(row)).status());
  }

  // Match the whole batch under ONE lock; deliveries happen outside it.
  // Durable targets are grouped by destination queue so each queue gets
  // its matches in one EnqueueBatch (batched fan-out); non-durable
  // handler targets are copied out and invoked in publication order.
  std::map<std::string, std::vector<size_t>> durable_pub_indices;  // By queue.
  std::map<std::string, std::string> durable_subscriber;           // By queue.
  std::vector<std::pair<std::shared_ptr<SubscriptionState>, size_t>>
      inline_targets;
  {
    MutexLock lock(&mu_);
    std::vector<PublicationView> views;
    views.reserve(count);
    for (size_t i = 0; i < count; ++i) views.emplace_back(pubs[i]);
    std::vector<const RowAccessor*> accessors;
    accessors.reserve(count);
    for (const PublicationView& view : views) accessors.push_back(&view);
    std::vector<std::vector<const Rule*>> matched;
    matcher_.MatchBatch(accessors, &matched);
    for (size_t i = 0; i < matched.size(); ++i) {
      for (const Rule* rule : matched[i]) {
        auto it = subscriptions_.find(rule->id);
        if (it == subscriptions_.end()) continue;
        const std::shared_ptr<SubscriptionState>& sub = it->second;
        if (sub->spec.durable) {
          durable_pub_indices[sub->queue].push_back(i);
          durable_subscriber[sub->queue] = sub->spec.subscriber;
        } else {
          inline_targets.emplace_back(sub, i);
        }
      }
    }
  }

  size_t delivered = 0;
  for (const auto& [queue, indices] : durable_pub_indices) {
    std::vector<EnqueueRequest> requests(indices.size());
    for (size_t j = 0; j < indices.size(); ++j) {
      PublicationToEnqueueRequest(pubs[indices[j]], &requests[j]);
    }
    const auto enqueued = queues_->EnqueueBatch(queue, requests);
    if (enqueued.ok()) {
      delivered += indices.size();
    } else {
      EDADB_LOG(Warn) << "delivery of " << indices.size()
                      << " publication(s) to subscriber '"
                      << durable_subscriber[queue]
                      << "' failed: " << enqueued.status();
    }
  }
  for (const auto& [sub, index] : inline_targets) {
    // Re-check per delivery: a concurrent Unsubscribe clears the flag,
    // and no handler invocation STARTS after it returns (one already in
    // flight for an earlier publication may still finish).
    if (!sub->alive.load(std::memory_order_acquire)) continue;
    const Status s = InvokeHandler(*sub, pubs[index]);
    if (s.ok()) {
      ++delivered;
    } else {
      EDADB_LOG(Warn) << "delivery to subscriber '" << sub->spec.subscriber
                      << "' failed: " << s;
    }
  }
  DeliveriesCounter()->Add(delivered);
  return delivered;
}

Result<std::optional<Publication>> Broker::Fetch(
    const std::string& subscription_id) {
  {
    MutexLock lock(&mu_);
    auto it = subscriptions_.find(subscription_id);
    if (it == subscriptions_.end()) {
      return Status::NotFound("subscription '" + subscription_id + "'");
    }
    if (!it->second->spec.durable) {
      return Status::FailedPrecondition(
          "subscription '" + subscription_id +
          "' is not durable; messages are delivered to its handler");
    }
  }
  DequeueRequest request;
  EDADB_ASSIGN_OR_RETURN(
      std::optional<Message> message,
      queues_->Dequeue(SubQueueName(subscription_id), request));
  if (!message.has_value()) return std::optional<Publication>();
  EDADB_RETURN_IF_ERROR(
      queues_->Ack(SubQueueName(subscription_id), "", message->id));
  return std::optional<Publication>(MessageToPublication(*message));
}

Result<size_t> Broker::PendingCount(
    const std::string& subscription_id) const {
  {
    MutexLock lock(&mu_);
    if (subscriptions_.count(subscription_id) == 0) {
      return Status::NotFound("subscription '" + subscription_id + "'");
    }
  }
  return queues_->Depth(SubQueueName(subscription_id), "");
}

std::vector<std::string> Broker::ListSubscriptions() const {
  MutexLock lock(&mu_);
  std::vector<std::string> ids;
  ids.reserve(subscriptions_.size());
  for (const auto& [id, state] : subscriptions_) ids.push_back(id);
  return ids;
}

size_t Broker::num_subscriptions() const {
  MutexLock lock(&mu_);
  return subscriptions_.size();
}

Result<std::shared_ptr<LiveSubscription>> Broker::SubscribeLive(
    const LiveSubscriptionSpec& spec) {
  std::optional<Predicate> filter;
  if (!spec.topic_pattern.empty() || !spec.content_filter.empty()) {
    EDADB_ASSIGN_OR_RETURN(
        Predicate condition,
        BuildCondition(spec.topic_pattern, spec.content_filter));
    filter.emplace(std::move(condition));
  }
  MutexLock lock(&live_mu_);
  std::string id = "live-" + std::to_string(next_live_seq_++);
  auto sub = std::shared_ptr<LiveSubscription>(new LiveSubscription(
      id, spec.subscriber, ring_.get(), std::move(filter)));
  live_subs_.emplace(std::move(id), sub);
  return sub;
}

Status Broker::UnsubscribeLive(const std::string& id) {
  MutexLock lock(&live_mu_);
  if (live_subs_.erase(id) == 0) {
    return Status::NotFound("live subscription '" + id + "'");
  }
  return Status::OK();
}

size_t Broker::num_live_subscriptions() const {
  MutexLock lock(&live_mu_);
  return live_subs_.size();
}

void Broker::CollectLiveMetrics(
    std::vector<metrics::MetricSnapshot>* out) const {
  MutexLock lock(&live_mu_);
  metrics::MetricSnapshot subscribers;
  subscribers.name = "pubsub.ring.subscribers";
  subscribers.kind = metrics::MetricKind::kGauge;
  subscribers.value = static_cast<int64_t>(live_subs_.size());
  out->push_back(std::move(subscribers));
  for (const auto& [id, sub] : live_subs_) {
    const std::string prefix = "pubsub.ring.sub." + sub->subscriber() + ".";
    const auto gauge = [out, &prefix](const char* name, uint64_t v) {
      metrics::MetricSnapshot s;
      s.name = prefix + name;
      s.kind = metrics::MetricKind::kGauge;
      s.value = static_cast<int64_t>(v);
      out->push_back(std::move(s));
    };
    gauge("delivered", sub->delivered());
    gauge("missed", sub->missed());
    gauge("lag", sub->lag());
  }
}

size_t LiveSubscription::Poll(
    size_t max_events, std::vector<std::pair<uint64_t, Publication>>* out) {
  const uint64_t missed_before = cursor_.missed();
  size_t appended = 0;
  uint64_t filtered = 0;
  std::vector<std::pair<uint64_t, Publication>> raw;
  // With a filter, one cursor poll may come back all-filtered; keep
  // refilling until max_events MATCHING events or the stream drains.
  while (appended < max_events) {
    raw.clear();
    if (cursor_.Poll(max_events - appended, &raw) == 0) break;
    for (auto& [seq, pub] : raw) {
      if (filter_.has_value()) {
        PublicationView view(pub);
        if (!filter_->MatchesOrFalse(view)) {
          ++filtered;
          continue;
        }
      }
      out->emplace_back(seq, std::move(pub));
      ++appended;
    }
    if (!filter_.has_value()) break;  // Raw poll already hit the cap.
  }
  delivered_.fetch_add(appended, std::memory_order_relaxed);
  filtered_.fetch_add(filtered, std::memory_order_relaxed);
  RingDeliveredCounter()->Add(appended);
  RingFilteredCounter()->Add(filtered);
  RingMissedCounter()->Add(cursor_.missed() - missed_before);
  return appended;
}

}  // namespace edadb
