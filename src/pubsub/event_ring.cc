#include "pubsub/event_ring.h"

#include <cstring>

#include "common/coding.h"
#include "common/crc32.h"
#include "pubsub/broker.h"
#include "value/row_codec.h"

namespace edadb {

namespace {

/// Stamp protocol per slot (Boehm seqlock, fence-free variant):
///   0                 never written
///   seq + 1           stably holds event `seq`
///   kWritingBit | x   writer mid-overwrite
/// Readers validate `stamp == seq + 1` before AND after copying the
/// slot; any other value means the event was (or is being) overwritten.
constexpr uint64_t kWritingBit = uint64_t{1} << 63;

/// Header word for an encoded publication that does not fit the slot.
constexpr uint64_t kOversizeHeader = ~uint64_t{0};

inline size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Payload word accesses carry the seqlock ordering themselves instead
// of standalone fences (which GCC's TSan cannot model, -Wtsan): every
// payload store is a release — so the writing marker stored before it
// cannot be reordered after it — and every payload load is an acquire —
// so the validation re-read of the stamp cannot be reordered before it.
// On x86 both compile to plain MOVs, same as the fence variant.
inline void StoreWord(uint64_t* p, uint64_t v) {
  std::atomic_ref<uint64_t>(*p).store(v, std::memory_order_release);
}

inline uint64_t LoadWord(uint64_t* p) {
  return std::atomic_ref<uint64_t>(*p).load(std::memory_order_acquire);
}

}  // namespace

void EncodePublication(const Publication& pub, std::string* dst) {
  PutLengthPrefixed(dst, pub.topic);
  PutLengthPrefixed(dst, pub.payload);
  dst->push_back(pub.retain ? '\1' : '\0');
  EncodeAttributes(pub.attributes, dst);
}

Result<Publication> DecodePublication(std::string_view input) {
  Publication pub;
  std::string_view topic, payload;
  if (!GetLengthPrefixed(&input, &topic) ||
      !GetLengthPrefixed(&input, &payload) || input.empty()) {
    return Status::Corruption("truncated publication encoding");
  }
  pub.topic.assign(topic);
  pub.payload.assign(payload);
  pub.retain = input.front() != 0;
  input.remove_prefix(1);
  EDADB_ASSIGN_OR_RETURN(pub.attributes, DecodeAttributes(input));
  return pub;
}

EventRing::EventRing(EventRingOptions options)
    : capacity_(RoundUpPow2(options.capacity == 0 ? 1 : options.capacity)),
      mask_(capacity_ - 1),
      slot_bytes_((options.slot_bytes + 7) / 8 * 8),
      slot_words_(1 + slot_bytes_ / 8),
      stamps_(std::make_unique<uint64_t[]>(capacity_)),
      words_(std::make_unique<uint64_t[]>(capacity_ * slot_words_)) {}

uint64_t EventRing::Publish(const Publication& pub) {
  MutexLock lock(&writer_mu_);
  return PublishLocked(pub);
}

uint64_t EventRing::PublishBatch(const Publication* pubs, size_t count) {
  MutexLock lock(&writer_mu_);
  const uint64_t first = head_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < count; ++i) PublishLocked(pubs[i]);
  return first;
}

uint64_t EventRing::PublishLocked(const Publication& pub) {
  std::string encoded;
  EncodePublication(pub, &encoded);

  const uint64_t seq = head_.load(std::memory_order_relaxed);
  const size_t slot = static_cast<size_t>(seq & mask_);
  uint64_t* base = &words_[slot * slot_words_];

  // Seqlock write: mark the slot unstable, write the payload words
  // (release, see StoreWord), then stamp it stable with a release
  // store. A reader that observes ANY new payload word must also
  // observe the writing marker (or a newer stamp) on its validation
  // re-read.
  std::atomic_ref<uint64_t>(stamps_[slot])
      .store(kWritingBit | (seq + 1), std::memory_order_relaxed);

  if (encoded.size() > slot_bytes_) {
    StoreWord(&base[0], kOversizeHeader);
    oversize_.fetch_add(1, std::memory_order_relaxed);
  } else {
    const uint32_t crc = Crc32c(encoded);
    StoreWord(&base[0],
              (static_cast<uint64_t>(encoded.size()) << 32) | crc);
    const size_t words = (encoded.size() + 7) / 8;
    for (size_t w = 0; w < words; ++w) {
      uint64_t v = 0;
      const size_t off = w * 8;
      const size_t n = encoded.size() - off < 8 ? encoded.size() - off : 8;
      std::memcpy(&v, encoded.data() + off, n);
      StoreWord(&base[1 + w], v);
    }
  }

  std::atomic_ref<uint64_t>(stamps_[slot])
      .store(seq + 1, std::memory_order_release);
  head_.store(seq + 1, std::memory_order_release);
  return seq;
}

RingRead EventRing::Read(uint64_t seq, Publication* out) const {
  if (seq >= head()) return RingRead::kNotReady;
  const size_t slot = static_cast<size_t>(seq & mask_);
  // unique_ptr<T[]>::operator[] hands out mutable element refs through
  // a const owner, which is exactly what atomic_ref loads need.
  uint64_t* base = &words_[slot * slot_words_];

  const uint64_t s1 = std::atomic_ref<uint64_t>(stamps_[slot])
                          .load(std::memory_order_acquire);
  if (s1 != seq + 1) return RingRead::kMissed;

  const uint64_t header = LoadWord(&base[0]);
  std::string encoded;
  bool oversize = header == kOversizeHeader;
  bool bad_header = false;
  if (!oversize) {
    const size_t len = static_cast<size_t>(header >> 32);
    if (len > slot_bytes_) {
      bad_header = true;  // Validate the stamp before calling it torn.
    } else {
      encoded.resize(len);
      const size_t words = (len + 7) / 8;
      for (size_t w = 0; w < words; ++w) {
        const uint64_t v = LoadWord(&base[1 + w]);
        const size_t off = w * 8;
        const size_t n = len - off < 8 ? len - off : 8;
        std::memcpy(encoded.data() + off, &v, n);
      }
    }
  }

  // The acquire payload loads above order this re-read after them; any
  // concurrent overwrite of a word we copied is caught here.
  const uint64_t s2 = std::atomic_ref<uint64_t>(stamps_[slot])
                          .load(std::memory_order_relaxed);
  if (s2 != seq + 1) return RingRead::kMissed;

  // The stamp validated: the copy is guaranteed consistent. Anything
  // wrong with it now is a protocol violation, not a racing writer.
  if (oversize) return RingRead::kOversize;
  if (bad_header) {
    torn_.fetch_add(1, std::memory_order_relaxed);
    return RingRead::kMissed;
  }
  const uint32_t want_crc = static_cast<uint32_t>(header);
  if (Crc32c(encoded) != want_crc) {
    torn_.fetch_add(1, std::memory_order_relaxed);
    return RingRead::kMissed;
  }
  auto decoded = DecodePublication(encoded);
  if (!decoded.ok()) {
    torn_.fetch_add(1, std::memory_order_relaxed);
    return RingRead::kMissed;
  }
  *out = *std::move(decoded);
  return RingRead::kOk;
}

size_t RingCursor::Poll(size_t max_events,
                        std::vector<std::pair<uint64_t, Publication>>* out) {
  uint64_t next = next_seq_.load(std::memory_order_relaxed);
  const uint64_t head = ring_->head();
  const uint64_t cap = ring_->capacity();
  uint64_t missed = 0;
  size_t returned = 0;

  // Bulk fast-forward: events below head - capacity are gone for sure;
  // account them without touching their (recycled) slots.
  if (head > cap && next < head - cap) {
    missed += (head - cap) - next;
    next = head - cap;
  }

  while (next < head && returned < max_events) {
    Publication pub;
    const RingRead r = ring_->Read(next, &pub);
    if (r == RingRead::kOk) {
      out->emplace_back(next, std::move(pub));
      ++returned;
    } else if (r == RingRead::kNotReady) {
      break;  // Unreachable while next < head; bail defensively.
    } else {
      ++missed;  // kMissed or kOversize: counted, never silent.
    }
    ++next;
  }

  next_seq_.store(next, std::memory_order_relaxed);
  delivered_.fetch_add(returned, std::memory_order_relaxed);
  missed_.fetch_add(missed, std::memory_order_relaxed);
  return returned;
}

}  // namespace edadb
