#ifndef EDADB_PUBSUB_EVENT_RING_H_
#define EDADB_PUBSUB_EVENT_RING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/result.h"

namespace edadb {

struct Publication;

/// Bounded broadcast event stream with explicit event-miss semantics
/// (OidaDB's Event Buffer design; DESIGN.md §13).
///
/// The ring is the Broker's FAST path for live subscribers: a fixed
/// number of sequence-numbered slots that the writer overwrites in
/// order, forever. Readers poll at their own pace and never slow the
/// writer down; a reader that falls more than `capacity` events behind
/// does not backpressure anybody — it *misses* the overwritten events,
/// and the miss is counted, never silent. Subscribers that need
/// at-least-once delivery use the durable queue path instead.
///
/// Concurrency model:
///   - Writers are serialized on an internal mutex ("single writer per
///     publisher domain"); a publish is a handful of word stores.
///   - Readers are WAIT-FREE: no locks, no CAS loops, no retries. Each
///     slot carries a seqlock-style stamp; a reader copies the slot and
///     validates the stamp before and after the copy. A stamp mismatch
///     means the writer lapped the reader mid-copy — the event is
///     accounted as missed and the reader moves on.
///   - All slot memory is accessed through std::atomic_ref with the
///     Boehm seqlock protocol (fence-free variant: release payload
///     stores / acquire payload loads), so a torn read can never be
///     *observed* (TSan-clean by construction). Each payload also
///     carries a CRC32C; a stamp-valid copy failing its checksum would
///     indicate a protocol bug and is surfaced via torn_count().
///
/// Slot layout (all uint64 words):
///   word 0   header: (payload length << 32) | CRC32C(payload)
///   word 1.. payload bytes, little-endian packed
/// An encoded publication larger than slot_bytes still consumes a
/// sequence number (the stream never skips); its slot is stamped with
/// an oversize header and every reader accounts it as a miss
/// (oversize_count() attributes the cause).
struct EventRingOptions {
  /// Slot count; rounded up to a power of two. A reader that lags more
  /// than this many events behind the head starts missing.
  size_t capacity = 1024;
  /// Payload capacity per slot in bytes (rounded up to whole words).
  /// Encoded publications above this are oversize (see above).
  size_t slot_bytes = 1024;
};

/// Outcome of reading one sequence number.
enum class RingRead {
  kOk,        // *out holds the event.
  kMissed,    // Overwritten (or being overwritten) before this reader
              // got to it.
  kOversize,  // Published but larger than slot_bytes: a counted miss.
  kNotReady,  // seq >= head(): not published yet.
};

class EventRing {
 public:
  explicit EventRing(EventRingOptions options = {});

  EventRing(const EventRing&) = delete;
  EventRing& operator=(const EventRing&) = delete;

  /// Appends one publication to the stream; returns its sequence
  /// number. Serialized internally; never blocks on readers.
  uint64_t Publish(const Publication& pub);

  /// Appends `count` publications in order under one writer-lock
  /// acquisition; returns the sequence of the FIRST one.
  uint64_t PublishBatch(const Publication* pubs, size_t count);

  /// Reads event `seq` into *out (wait-free; no retry loops).
  RingRead Read(uint64_t seq, Publication* out) const;

  /// Sequence number the next publish will get (== events published).
  uint64_t head() const { return head_.load(std::memory_order_acquire); }

  size_t capacity() const { return capacity_; }
  size_t slot_bytes() const { return slot_bytes_; }

  /// Publications whose encoding exceeded slot_bytes (each one is a
  /// miss for every reader).
  uint64_t oversize_count() const {
    return oversize_.load(std::memory_order_relaxed);
  }

  /// Stamp-valid reads that failed checksum/decode validation. Always 0
  /// unless the seqlock protocol is broken; tests assert on it.
  uint64_t torn_count() const {
    return torn_.load(std::memory_order_relaxed);
  }

 private:
  uint64_t PublishLocked(const Publication& pub) EDADB_REQUIRES(writer_mu_);

  const size_t capacity_;    // Power of two.
  const size_t mask_;        // capacity_ - 1.
  const size_t slot_bytes_;  // Word-aligned payload capacity.
  const size_t slot_words_;  // 1 header word + slot_bytes_ / 8.

  /// Serializes writers; readers never touch it.
  Mutex writer_mu_{"EventRing::writer_mu_"};

  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> oversize_{0};
  mutable std::atomic<uint64_t> torn_{0};

  /// Per-slot seqlock stamps: slot i holds `seq + 1` while it stably
  /// contains event seq, a writing marker mid-overwrite, 0 if never
  /// written. Accessed only through std::atomic_ref (seqlock protocol;
  /// see analyze_suppress.json).
  std::unique_ptr<uint64_t[]> stamps_;
  /// Slot payload words, capacity_ * slot_words_ of them. Same seqlock
  /// protocol as stamps_.
  std::unique_ptr<uint64_t[]> words_;
};

/// One reader's position in the stream, with delivery/miss accounting.
///
/// Poll() must be called from one thread at a time (each subscriber
/// owns its cursor); the counters are atomics so OTHER threads — the
/// metrics collector — may read them concurrently.
class RingCursor {
 public:
  /// Starts at the current head: a new reader sees only events
  /// published after it subscribed.
  explicit RingCursor(const EventRing* ring)
      : ring_(ring), start_seq_(ring->head()), next_seq_(start_seq_) {}

  RingCursor(const RingCursor&) = delete;
  RingCursor& operator=(const RingCursor&) = delete;

  /// Reads up to `max_events` events into *out (appending), advancing
  /// past (and counting) any missed ones. Returns the number of events
  /// appended. Wait-free: bounded by max_events reads plus the
  /// arithmetic fast-forward over bulk-overwritten ranges.
  size_t Poll(size_t max_events,
              std::vector<std::pair<uint64_t, Publication>>* out);

  /// Accounting invariant (the property tests pin it):
  ///   delivered() + missed() == next_seq() - start_seq()
  /// and once the reader drains, next_seq() == ring head.
  uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  uint64_t missed() const { return missed_.load(std::memory_order_relaxed); }
  uint64_t start_seq() const { return start_seq_; }
  uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Events published but not yet observed by this reader.
  uint64_t lag() const {
    const uint64_t head = ring_->head();
    const uint64_t next = next_seq();
    return head > next ? head - next : 0;
  }

 private:
  const EventRing* ring_;
  const uint64_t start_seq_;
  std::atomic<uint64_t> next_seq_;
  std::atomic<uint64_t> delivered_{0};
  std::atomic<uint64_t> missed_{0};
};

/// Publication <-> bytes codec for ring slots (also unit-tested
/// directly): topic, payload, retain flag, attributes.
void EncodePublication(const Publication& pub, std::string* dst);
EDADB_NODISCARD Result<Publication> DecodePublication(std::string_view input);

}  // namespace edadb

#endif  // EDADB_PUBSUB_EVENT_RING_H_
