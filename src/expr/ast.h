#ifndef EDADB_EXPR_AST_H_
#define EDADB_EXPR_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/clock.h"
#include "common/result.h"
#include "value/record.h"
#include "value/value.h"

namespace edadb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Context for expression evaluation: the row being tested plus
/// environment (clock for NOW()).
struct EvalContext {
  const RowAccessor* row = nullptr;
  Clock* clock = nullptr;

  /// When true (default), referencing an attribute the row does not have
  /// yields NULL — the right semantics for rules matched against
  /// heterogeneous event populations. When false it is an error, the
  /// right semantics for queries against fixed schemas.
  bool missing_attribute_is_null = true;

  explicit EvalContext(const RowAccessor* row_in = nullptr)
      : row(row_in) {}
};

enum class ExprKind {
  kLiteral,
  kColumn,
  kUnary,
  kBinary,
  kIn,
  kBetween,
  kLike,
  kIsNull,
  kFunction,
};

enum class UnaryOp { kNot, kNegate };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

std::string_view BinaryOpToString(BinaryOp op);

/// Immutable expression tree node. Nodes are shared (ExprPtr) so parsed
/// rules can be stored, indexed and evaluated concurrently.
///
/// Evaluation follows SQL three-valued logic: comparisons and arithmetic
/// involving NULL yield NULL; AND/OR use Kleene logic; a predicate
/// "matches" a row only when it evaluates to TRUE.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Evaluates against `ctx`. Type errors (e.g. 'a' < 1) are Status
  /// errors, not NULLs.
  EDADB_NODISCARD virtual Result<Value> Evaluate(const EvalContext& ctx) const = 0;

  /// Renders source text that parses back to an equivalent tree.
  virtual std::string ToString() const = 0;

  /// Adds every referenced attribute name to `out`.
  virtual void CollectColumns(std::set<std::string>* out) const = 0;

  /// Convenience: evaluates as a predicate; NULL and FALSE both mean
  /// "no match". Errors propagate.
  EDADB_NODISCARD Result<bool> Matches(const EvalContext& ctx) const;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  ExprKind kind_;
};

/// A constant.
class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  Value value_;
};

/// An attribute/column reference.
class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name)
      : Expr(ExprKind::kColumn), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  std::string name_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

/// `operand [NOT] IN (e1, e2, ...)`.
class InExpr final : public Expr {
 public:
  InExpr(ExprPtr operand, std::vector<ExprPtr> list, bool negated)
      : Expr(ExprKind::kIn),
        operand_(std::move(operand)),
        list_(std::move(list)),
        negated_(negated) {}

  const ExprPtr& operand() const { return operand_; }
  const std::vector<ExprPtr>& list() const { return list_; }
  bool negated() const { return negated_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  ExprPtr operand_;
  std::vector<ExprPtr> list_;
  bool negated_;
};

/// `operand [NOT] BETWEEN low AND high`.
class BetweenExpr final : public Expr {
 public:
  BetweenExpr(ExprPtr operand, ExprPtr low, ExprPtr high, bool negated)
      : Expr(ExprKind::kBetween),
        operand_(std::move(operand)),
        low_(std::move(low)),
        high_(std::move(high)),
        negated_(negated) {}

  const ExprPtr& operand() const { return operand_; }
  const ExprPtr& low() const { return low_; }
  const ExprPtr& high() const { return high_; }
  bool negated() const { return negated_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  ExprPtr operand_;
  ExprPtr low_;
  ExprPtr high_;
  bool negated_;
};

/// `operand [NOT] LIKE pattern` ('%' any run, '_' one char).
class LikeExpr final : public Expr {
 public:
  LikeExpr(ExprPtr operand, ExprPtr pattern, bool negated)
      : Expr(ExprKind::kLike),
        operand_(std::move(operand)),
        pattern_(std::move(pattern)),
        negated_(negated) {}

  const ExprPtr& operand() const { return operand_; }
  const ExprPtr& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  ExprPtr operand_;
  ExprPtr pattern_;
  bool negated_;
};

/// `operand IS [NOT] NULL`.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(ExprKind::kIsNull),
        operand_(std::move(operand)),
        negated_(negated) {}

  const ExprPtr& operand() const { return operand_; }
  bool negated() const { return negated_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  ExprPtr operand_;
  bool negated_;
};

/// A scalar function call; see expr/functions.cc for the registry
/// (ABS, ROUND, FLOOR, CEIL, LENGTH, LOWER, UPPER, SUBSTR, COALESCE,
/// NOW, ...).
class FunctionExpr final : public Expr {
 public:
  FunctionExpr(std::string name, std::vector<ExprPtr> args)
      : Expr(ExprKind::kFunction),
        name_(std::move(name)),
        args_(std::move(args)) {}

  const std::string& name() const { return name_; }
  const std::vector<ExprPtr>& args() const { return args_; }

  EDADB_NODISCARD Result<Value> Evaluate(const EvalContext& ctx) const override;
  std::string ToString() const override;
  void CollectColumns(std::set<std::string>* out) const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

/// True when `name` is a registered scalar function.
bool IsKnownFunction(std::string_view name);

}  // namespace edadb

#endif  // EDADB_EXPR_AST_H_
