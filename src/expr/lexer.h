#ifndef EDADB_EXPR_LEXER_H_
#define EDADB_EXPR_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "expr/token.h"

namespace edadb {

/// Tokenizes an expression source string. Keywords are case-insensitive;
/// identifiers keep their original case. String literals use single
/// quotes with '' as the escape for a quote.
EDADB_NODISCARD Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace edadb

#endif  // EDADB_EXPR_LEXER_H_
