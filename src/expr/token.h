#ifndef EDADB_EXPR_TOKEN_H_
#define EDADB_EXPR_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace edadb {

enum class TokenKind {
  kEnd,
  kIdentifier,   // column / function names
  kIntLiteral,   // 42
  kDoubleLiteral,// 3.14, 1e-3
  kStringLiteral,// 'text' with '' escaping
  // Keywords (case-insensitive in source).
  kAnd, kOr, kNot, kIn, kBetween, kLike, kIs, kNull, kTrue, kFalse,
  // Punctuation / operators.
  kLParen, kRParen, kComma,
  kEq,      // =
  kNe,      // != or <>
  kLt, kLe, kGt, kGe,
  kPlus, kMinus, kStar, kSlash, kPercent,
};

std::string_view TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       // identifier name or decoded string literal
  int64_t int_value = 0;  // for kIntLiteral
  double double_value = 0;// for kDoubleLiteral
  size_t position = 0;    // byte offset in source, for error messages
};

}  // namespace edadb

#endif  // EDADB_EXPR_TOKEN_H_
