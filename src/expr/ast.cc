#include "expr/ast.h"

#include <cmath>

#include "common/string_util.h"

namespace edadb {

std::string_view BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

Result<bool> Expr::Matches(const EvalContext& ctx) const {
  EDADB_ASSIGN_OR_RETURN(Value v, Evaluate(ctx));
  if (v.is_null()) return false;
  return v.AsBool();
}

// ---------------------------------------------------------------------------
// LiteralExpr

Result<Value> LiteralExpr::Evaluate(const EvalContext&) const {
  return value_;
}

std::string LiteralExpr::ToString() const { return value_.ToString(); }

void LiteralExpr::CollectColumns(std::set<std::string>*) const {}

// ---------------------------------------------------------------------------
// ColumnExpr

Result<Value> ColumnExpr::Evaluate(const EvalContext& ctx) const {
  if (ctx.row == nullptr) {
    return Status::FailedPrecondition("no row bound for column '" + name_ +
                                      "'");
  }
  std::optional<Value> v = ctx.row->GetAttribute(name_);
  if (!v.has_value()) {
    if (ctx.missing_attribute_is_null) return Value::Null();
    return Status::NotFound("no attribute named '" + name_ + "'");
  }
  return *std::move(v);
}

std::string ColumnExpr::ToString() const { return name_; }

void ColumnExpr::CollectColumns(std::set<std::string>* out) const {
  out->insert(name_);
}

// ---------------------------------------------------------------------------
// UnaryExpr

Result<Value> UnaryExpr::Evaluate(const EvalContext& ctx) const {
  EDADB_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(ctx));
  if (v.is_null()) return Value::Null();
  switch (op_) {
    case UnaryOp::kNot: {
      EDADB_ASSIGN_OR_RETURN(bool b, v.AsBool());
      return Value::Bool(!b);
    }
    case UnaryOp::kNegate: {
      if (v.type() == ValueType::kInt64) return Value::Int64(-v.int64_value());
      if (v.type() == ValueType::kDouble)
        return Value::Double(-v.double_value());
      return Status::InvalidArgument("cannot negate " +
                                     std::string(ValueTypeToString(v.type())));
    }
  }
  return Status::Internal("unreachable unary op");
}

std::string UnaryExpr::ToString() const {
  if (op_ == UnaryOp::kNot) return "NOT (" + operand_->ToString() + ")";
  return "-(" + operand_->ToString() + ")";
}

void UnaryExpr::CollectColumns(std::set<std::string>* out) const {
  operand_->CollectColumns(out);
}

// ---------------------------------------------------------------------------
// BinaryExpr

namespace {

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

Result<Value> EvaluateArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // String concatenation via '+'.
  if (op == BinaryOp::kAdd && l.type() == ValueType::kString &&
      r.type() == ValueType::kString) {
    return Value::String(l.string_value() + r.string_value());
  }
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::InvalidArgument(
        "arithmetic requires numeric operands, got " +
        std::string(ValueTypeToString(l.type())) + " and " +
        std::string(ValueTypeToString(r.type())));
  }
  const bool both_int =
      l.type() == ValueType::kInt64 && r.type() == ValueType::kInt64;
  if (both_int) {
    const int64_t a = l.int64_value();
    const int64_t b = r.int64_value();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int64(a + b);
      case BinaryOp::kSub: return Value::Int64(a - b);
      case BinaryOp::kMul: return Value::Int64(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int64(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Int64(a % b);
      default:
        break;
    }
  }
  EDADB_ASSIGN_OR_RETURN(double a, l.AsDouble());
  EDADB_ASSIGN_OR_RETURN(double b, r.AsDouble());
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    case BinaryOp::kMod:
      if (b == 0.0) return Status::InvalidArgument("modulo by zero");
      return Value::Double(std::fmod(a, b));
    default:
      break;
  }
  return Status::Internal("unreachable arithmetic op");
}

Result<Value> EvaluateComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  EDADB_ASSIGN_OR_RETURN(int c, Value::Compare(l, r));
  switch (op) {
    case BinaryOp::kEq: return Value::Bool(c == 0);
    case BinaryOp::kNe: return Value::Bool(c != 0);
    case BinaryOp::kLt: return Value::Bool(c < 0);
    case BinaryOp::kLe: return Value::Bool(c <= 0);
    case BinaryOp::kGt: return Value::Bool(c > 0);
    case BinaryOp::kGe: return Value::Bool(c >= 0);
    default:
      break;
  }
  return Status::Internal("unreachable comparison op");
}

/// Kleene three-valued truth for one operand: TRUE / FALSE / NULL.
enum class Truth { kTrue, kFalse, kNull };

Result<Truth> TruthOf(const Value& v) {
  if (v.is_null()) return Truth::kNull;
  EDADB_ASSIGN_OR_RETURN(bool b, v.AsBool());
  return b ? Truth::kTrue : Truth::kFalse;
}

/// Renders a sub-expression in an "additive" grammar position (a binary
/// operator's side, the operand of IN/BETWEEN/LIKE/IS NULL, BETWEEN's
/// bounds). Predicate forms and NOT/negate are not additive, so they
/// need parentheses to parse back to the same tree.
std::string WrapOperand(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
    case ExprKind::kColumn:
    case ExprKind::kFunction:
    case ExprKind::kBinary:  // Always self-parenthesizing.
      return expr->ToString();
    default:
      return "(" + expr->ToString() + ")";
  }
}

}  // namespace

Result<Value> BinaryExpr::Evaluate(const EvalContext& ctx) const {
  // AND/OR short-circuit under Kleene logic.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    EDADB_ASSIGN_OR_RETURN(Value lv, left_->Evaluate(ctx));
    EDADB_ASSIGN_OR_RETURN(Truth lt, TruthOf(lv));
    if (op_ == BinaryOp::kAnd && lt == Truth::kFalse)
      return Value::Bool(false);
    if (op_ == BinaryOp::kOr && lt == Truth::kTrue) return Value::Bool(true);
    EDADB_ASSIGN_OR_RETURN(Value rv, right_->Evaluate(ctx));
    EDADB_ASSIGN_OR_RETURN(Truth rt, TruthOf(rv));
    if (op_ == BinaryOp::kAnd) {
      if (rt == Truth::kFalse) return Value::Bool(false);
      if (lt == Truth::kNull || rt == Truth::kNull) return Value::Null();
      return Value::Bool(true);
    }
    if (rt == Truth::kTrue) return Value::Bool(true);
    if (lt == Truth::kNull || rt == Truth::kNull) return Value::Null();
    return Value::Bool(false);
  }

  EDADB_ASSIGN_OR_RETURN(Value l, left_->Evaluate(ctx));
  EDADB_ASSIGN_OR_RETURN(Value r, right_->Evaluate(ctx));
  if (IsArithmetic(op_)) return EvaluateArithmetic(op_, l, r);
  if (IsComparison(op_)) return EvaluateComparison(op_, l, r);
  return Status::Internal("unreachable binary op");
}

std::string BinaryExpr::ToString() const {
  return "(" + WrapOperand(left_) + " " + std::string(BinaryOpToString(op_)) +
         " " + WrapOperand(right_) + ")";
}

void BinaryExpr::CollectColumns(std::set<std::string>* out) const {
  left_->CollectColumns(out);
  right_->CollectColumns(out);
}

// ---------------------------------------------------------------------------
// InExpr

Result<Value> InExpr::Evaluate(const EvalContext& ctx) const {
  EDADB_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(ctx));
  if (v.is_null()) return Value::Null();
  bool saw_null = false;
  for (const ExprPtr& item : list_) {
    EDADB_ASSIGN_OR_RETURN(Value candidate, item->Evaluate(ctx));
    if (candidate.is_null()) {
      saw_null = true;
      continue;
    }
    auto cmp = Value::Compare(v, candidate);
    // Type-incompatible list members simply don't match (x IN (1, 'a')).
    if (cmp.ok() && *cmp == 0) {
      return Value::Bool(!negated_);
    }
  }
  if (saw_null) return Value::Null();
  return Value::Bool(negated_);
}

std::string InExpr::ToString() const {
  std::string out = WrapOperand(operand_);
  if (negated_) out += " NOT";
  out += " IN (";
  for (size_t i = 0; i < list_.size(); ++i) {
    if (i > 0) out += ", ";
    out += list_[i]->ToString();
  }
  out += ")";
  return out;
}

void InExpr::CollectColumns(std::set<std::string>* out) const {
  operand_->CollectColumns(out);
  for (const ExprPtr& e : list_) e->CollectColumns(out);
}

// ---------------------------------------------------------------------------
// BetweenExpr

Result<Value> BetweenExpr::Evaluate(const EvalContext& ctx) const {
  EDADB_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(ctx));
  EDADB_ASSIGN_OR_RETURN(Value lo, low_->Evaluate(ctx));
  EDADB_ASSIGN_OR_RETURN(Value hi, high_->Evaluate(ctx));
  if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
  EDADB_ASSIGN_OR_RETURN(int clo, Value::Compare(v, lo));
  EDADB_ASSIGN_OR_RETURN(int chi, Value::Compare(v, hi));
  const bool inside = clo >= 0 && chi <= 0;
  return Value::Bool(negated_ ? !inside : inside);
}

std::string BetweenExpr::ToString() const {
  std::string out = WrapOperand(operand_);
  if (negated_) out += " NOT";
  out += " BETWEEN " + WrapOperand(low_) + " AND " + WrapOperand(high_);
  return out;
}

void BetweenExpr::CollectColumns(std::set<std::string>* out) const {
  operand_->CollectColumns(out);
  low_->CollectColumns(out);
  high_->CollectColumns(out);
}

// ---------------------------------------------------------------------------
// LikeExpr

Result<Value> LikeExpr::Evaluate(const EvalContext& ctx) const {
  EDADB_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(ctx));
  EDADB_ASSIGN_OR_RETURN(Value p, pattern_->Evaluate(ctx));
  if (v.is_null() || p.is_null()) return Value::Null();
  if (v.type() != ValueType::kString || p.type() != ValueType::kString) {
    return Status::InvalidArgument("LIKE requires string operands");
  }
  const bool matched = LikeMatch(v.string_value(), p.string_value());
  return Value::Bool(negated_ ? !matched : matched);
}

std::string LikeExpr::ToString() const {
  std::string out = WrapOperand(operand_);
  if (negated_) out += " NOT";
  out += " LIKE " + WrapOperand(pattern_);
  return out;
}

void LikeExpr::CollectColumns(std::set<std::string>* out) const {
  operand_->CollectColumns(out);
  pattern_->CollectColumns(out);
}

// ---------------------------------------------------------------------------
// IsNullExpr

Result<Value> IsNullExpr::Evaluate(const EvalContext& ctx) const {
  EDADB_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(ctx));
  const bool is_null = v.is_null();
  return Value::Bool(negated_ ? !is_null : is_null);
}

std::string IsNullExpr::ToString() const {
  return WrapOperand(operand_) + (negated_ ? " IS NOT NULL" : " IS NULL");
}

void IsNullExpr::CollectColumns(std::set<std::string>* out) const {
  operand_->CollectColumns(out);
}

// ---------------------------------------------------------------------------
// FunctionExpr: see functions.cc for Evaluate and the registry.

std::string FunctionExpr::ToString() const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    out += args_[i]->ToString();
  }
  out += ")";
  return out;
}

void FunctionExpr::CollectColumns(std::set<std::string>* out) const {
  for (const ExprPtr& e : args_) e->CollectColumns(out);
}

}  // namespace edadb
