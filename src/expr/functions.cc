#include <cmath>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "expr/ast.h"

namespace edadb {

namespace {

struct FunctionDef {
  int min_args;
  int max_args;  // -1 means unbounded (COALESCE).
  std::function<Result<Value>(const std::vector<Value>&, const EvalContext&)>
      fn;
};

Result<Value> FnAbs(const std::vector<Value>& args, const EvalContext&) {
  const Value& v = args[0];
  if (v.is_null()) return Value::Null();
  if (v.type() == ValueType::kInt64) {
    return Value::Int64(std::abs(v.int64_value()));
  }
  EDADB_ASSIGN_OR_RETURN(double d, v.AsDouble());
  return Value::Double(std::fabs(d));
}

Result<Value> FnRound(const std::vector<Value>& args, const EvalContext&) {
  if (args[0].is_null()) return Value::Null();
  EDADB_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
  if (args.size() == 2) {
    if (args[1].is_null()) return Value::Null();
    EDADB_ASSIGN_OR_RETURN(int64_t digits, args[1].AsInt64());
    const double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(d * scale) / scale);
  }
  return Value::Double(std::round(d));
}

Result<Value> FnFloor(const std::vector<Value>& args, const EvalContext&) {
  if (args[0].is_null()) return Value::Null();
  EDADB_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
  return Value::Double(std::floor(d));
}

Result<Value> FnCeil(const std::vector<Value>& args, const EvalContext&) {
  if (args[0].is_null()) return Value::Null();
  EDADB_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
  return Value::Double(std::ceil(d));
}

Result<Value> FnSqrt(const std::vector<Value>& args, const EvalContext&) {
  if (args[0].is_null()) return Value::Null();
  EDADB_ASSIGN_OR_RETURN(double d, args[0].AsDouble());
  if (d < 0) return Status::InvalidArgument("SQRT of negative value");
  return Value::Double(std::sqrt(d));
}

Result<Value> FnLength(const std::vector<Value>& args, const EvalContext&) {
  const Value& v = args[0];
  if (v.is_null()) return Value::Null();
  if (v.type() != ValueType::kString) {
    return Status::InvalidArgument("LENGTH requires a string");
  }
  return Value::Int64(static_cast<int64_t>(v.string_value().size()));
}

Result<Value> FnLower(const std::vector<Value>& args, const EvalContext&) {
  const Value& v = args[0];
  if (v.is_null()) return Value::Null();
  if (v.type() != ValueType::kString) {
    return Status::InvalidArgument("LOWER requires a string");
  }
  return Value::String(ToLower(v.string_value()));
}

Result<Value> FnUpper(const std::vector<Value>& args, const EvalContext&) {
  const Value& v = args[0];
  if (v.is_null()) return Value::Null();
  if (v.type() != ValueType::kString) {
    return Status::InvalidArgument("UPPER requires a string");
  }
  return Value::String(ToUpper(v.string_value()));
}

/// SUBSTR(s, start[, len]) with 1-based start, as in SQL.
Result<Value> FnSubstr(const std::vector<Value>& args, const EvalContext&) {
  if (args[0].is_null() || args[1].is_null()) return Value::Null();
  if (args[0].type() != ValueType::kString) {
    return Status::InvalidArgument("SUBSTR requires a string");
  }
  const std::string& s = args[0].string_value();
  EDADB_ASSIGN_OR_RETURN(int64_t start, args[1].AsInt64());
  int64_t len = static_cast<int64_t>(s.size());
  if (args.size() == 3) {
    if (args[2].is_null()) return Value::Null();
    EDADB_ASSIGN_OR_RETURN(len, args[2].AsInt64());
    if (len < 0) return Status::InvalidArgument("SUBSTR length < 0");
  }
  int64_t begin = start >= 1 ? start - 1 : 0;
  if (begin >= static_cast<int64_t>(s.size())) return Value::String("");
  const int64_t avail = static_cast<int64_t>(s.size()) - begin;
  return Value::String(s.substr(static_cast<size_t>(begin),
                                static_cast<size_t>(std::min(len, avail))));
}

Result<Value> FnCoalesce(const std::vector<Value>& args, const EvalContext&) {
  for (const Value& v : args) {
    if (!v.is_null()) return v;
  }
  return Value::Null();
}

Result<Value> FnNow(const std::vector<Value>&, const EvalContext& ctx) {
  Clock* clock = ctx.clock != nullptr ? ctx.clock : SystemClock::Default();
  return Value::Timestamp(clock->NowMicros());
}

Result<Value> FnGreatest(const std::vector<Value>& args, const EvalContext&) {
  Value best = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i].is_null() || best.is_null()) return Value::Null();
    EDADB_ASSIGN_OR_RETURN(int c, Value::Compare(args[i], best));
    if (c > 0) best = args[i];
  }
  return best;
}

Result<Value> FnLeast(const std::vector<Value>& args, const EvalContext&) {
  Value best = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    if (args[i].is_null() || best.is_null()) return Value::Null();
    EDADB_ASSIGN_OR_RETURN(int c, Value::Compare(args[i], best));
    if (c < 0) best = args[i];
  }
  return best;
}

const std::map<std::string, FunctionDef>& Registry() {
  static const auto* registry =
      new std::map<std::string, FunctionDef>{  // lint:allow(raw-new-delete): intentional leak
      {"ABS", {1, 1, FnAbs}},
      {"ROUND", {1, 2, FnRound}},
      {"FLOOR", {1, 1, FnFloor}},
      {"CEIL", {1, 1, FnCeil}},
      {"SQRT", {1, 1, FnSqrt}},
      {"LENGTH", {1, 1, FnLength}},
      {"LOWER", {1, 1, FnLower}},
      {"UPPER", {1, 1, FnUpper}},
      {"SUBSTR", {2, 3, FnSubstr}},
      {"COALESCE", {1, -1, FnCoalesce}},
      {"GREATEST", {1, -1, FnGreatest}},
      {"LEAST", {1, -1, FnLeast}},
      {"NOW", {0, 0, FnNow}},
  };
  return *registry;
}

}  // namespace

bool IsKnownFunction(std::string_view name) {
  return Registry().count(ToUpper(name)) > 0;
}

Result<Value> FunctionExpr::Evaluate(const EvalContext& ctx) const {
  const auto& registry = Registry();
  auto it = registry.find(ToUpper(name_));
  if (it == registry.end()) {
    return Status::NotFound("unknown function '" + name_ + "'");
  }
  const FunctionDef& def = it->second;
  const int argc = static_cast<int>(args_.size());
  if (argc < def.min_args ||
      (def.max_args >= 0 && argc > def.max_args)) {
    return Status::InvalidArgument("wrong argument count for '" + name_ +
                                   "'");
  }
  std::vector<Value> values;
  values.reserve(args_.size());
  for (const ExprPtr& arg : args_) {
    EDADB_ASSIGN_OR_RETURN(Value v, arg->Evaluate(ctx));
    values.push_back(std::move(v));
  }
  return def.fn(values, ctx);
}

}  // namespace edadb
