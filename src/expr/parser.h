#ifndef EDADB_EXPR_PARSER_H_
#define EDADB_EXPR_PARSER_H_

#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "expr/ast.h"
#include "expr/token.h"

namespace edadb {

/// Parses an expression such as
///   "severity >= 3 AND region IN ('east', 'west') AND NOT resolved"
/// into an AST. Grammar (loosely SQL WHERE-clause expressions):
///
///   expr        := or
///   or          := and (OR and)*
///   and         := not (AND not)*
///   not         := NOT not | predicate
///   predicate   := additive [ cmp additive | IS [NOT] NULL
///                           | [NOT] IN '(' expr, ... ')'
///                           | [NOT] BETWEEN additive AND additive
///                           | [NOT] LIKE additive ]
///   additive    := multiplicative (('+'|'-') multiplicative)*
///   multiplicative := unary (('*'|'/'|'%') unary)*
///   unary       := '-' unary | primary
///   primary     := literal | column | function '(' args ')' | '(' expr ')'
EDADB_NODISCARD Result<ExprPtr> ParseExpression(std::string_view source);

/// Parses one expression starting at tokens[*pos], advancing *pos past
/// the consumed tokens and stopping at the first token that cannot
/// extend the expression. Used by the SQL statement parser, whose
/// clauses (WHERE ... ORDER BY ...) embed expressions mid-stream.
EDADB_NODISCARD Result<ExprPtr> ParseExpressionPrefix(const std::vector<Token>& tokens,
                                      size_t* pos);

}  // namespace edadb

#endif  // EDADB_EXPR_PARSER_H_
