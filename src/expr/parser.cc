#include "expr/parser.h"

#include <memory>
#include <utility>
#include <vector>

#include "expr/lexer.h"

namespace edadb {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Parse() {
    EDADB_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    if (Peek().kind != TokenKind::kEnd) {
      return UnexpectedToken("end of expression");
    }
    return expr;
  }

  /// Prefix parse: stops where the grammar stops instead of demanding
  /// end-of-input; reports how many tokens were consumed.
  Result<ExprPtr> ParsePrefix(size_t* consumed) {
    EDADB_ASSIGN_OR_RETURN(ExprPtr expr, ParseOr());
    *consumed = pos_;
    return expr;
  }

 private:
  /// Recursion cap for the descent. Deeply nested input (e.g. thousands
  /// of parens) must fail with InvalidArgument, not overflow the stack —
  /// expressions arrive from untrusted subscription/rule sources.
  static constexpr int kMaxDepth = 256;

  struct DepthGuard {
    explicit DepthGuard(Parser* parser) : parser(parser) { ++parser->depth_; }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };

  Status CheckDepth() const {
    if (depth_ >= kMaxDepth) {
      return Status::InvalidArgument("expression nested too deeply (max " +
                                     std::to_string(kMaxDepth) + " levels)");
    }
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Match(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::OK();
    return Status::InvalidArgument(
        "expected " + std::string(TokenKindToString(kind)) + " but found " +
        std::string(TokenKindToString(Peek().kind)) + " at position " +
        std::to_string(Peek().position));
  }

  Status UnexpectedToken(const std::string& wanted) {
    return Status::InvalidArgument(
        "expected " + wanted + " but found " +
        std::string(TokenKindToString(Peek().kind)) + " at position " +
        std::to_string(Peek().position));
  }

  Result<ExprPtr> ParseOr() {
    EDADB_RETURN_IF_ERROR(CheckDepth());
    DepthGuard guard(this);
    EDADB_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Match(TokenKind::kOr)) {
      EDADB_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_shared<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    EDADB_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (Match(TokenKind::kAnd)) {
      EDADB_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_shared<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (Match(TokenKind::kNot)) {
      EDADB_RETURN_IF_ERROR(CheckDepth());
      DepthGuard guard(this);
      EDADB_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return std::static_pointer_cast<const Expr>(
          std::make_shared<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    EDADB_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    const TokenKind k = Peek().kind;
    BinaryOp cmp;
    bool is_cmp = true;
    switch (k) {
      case TokenKind::kEq: cmp = BinaryOp::kEq; break;
      case TokenKind::kNe: cmp = BinaryOp::kNe; break;
      case TokenKind::kLt: cmp = BinaryOp::kLt; break;
      case TokenKind::kLe: cmp = BinaryOp::kLe; break;
      case TokenKind::kGt: cmp = BinaryOp::kGt; break;
      case TokenKind::kGe: cmp = BinaryOp::kGe; break;
      default: is_cmp = false; break;
    }
    if (is_cmp) {
      Advance();
      EDADB_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return std::static_pointer_cast<const Expr>(std::make_shared<BinaryExpr>(
          cmp, std::move(left), std::move(right)));
    }
    if (Match(TokenKind::kIs)) {
      const bool negated = Match(TokenKind::kNot);
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kNull));
      return std::static_pointer_cast<const Expr>(
          std::make_shared<IsNullExpr>(std::move(left), negated));
    }
    bool negated = false;
    if (Peek().kind == TokenKind::kNot &&
        (tokens_[pos_ + 1].kind == TokenKind::kIn ||
         tokens_[pos_ + 1].kind == TokenKind::kBetween ||
         tokens_[pos_ + 1].kind == TokenKind::kLike)) {
      Advance();
      negated = true;
    }
    if (Match(TokenKind::kIn)) {
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
      std::vector<ExprPtr> list;
      if (Peek().kind != TokenKind::kRParen) {
        for (;;) {
          EDADB_ASSIGN_OR_RETURN(ExprPtr item, ParseOr());
          list.push_back(std::move(item));
          if (!Match(TokenKind::kComma)) break;
        }
      }
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      if (list.empty()) {
        return Status::InvalidArgument("IN list must not be empty");
      }
      return std::static_pointer_cast<const Expr>(std::make_shared<InExpr>(
          std::move(left), std::move(list), negated));
    }
    if (Match(TokenKind::kBetween)) {
      EDADB_ASSIGN_OR_RETURN(ExprPtr low, ParseAdditive());
      EDADB_RETURN_IF_ERROR(Expect(TokenKind::kAnd));
      EDADB_ASSIGN_OR_RETURN(ExprPtr high, ParseAdditive());
      return std::static_pointer_cast<const Expr>(
          std::make_shared<BetweenExpr>(std::move(left), std::move(low),
                                        std::move(high), negated));
    }
    if (Match(TokenKind::kLike)) {
      EDADB_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      return std::static_pointer_cast<const Expr>(std::make_shared<LikeExpr>(
          std::move(left), std::move(pattern), negated));
    }
    if (negated) return UnexpectedToken("IN, BETWEEN or LIKE after NOT");
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    EDADB_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Match(TokenKind::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Match(TokenKind::kMinus)) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      EDADB_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = std::make_shared<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    EDADB_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Match(TokenKind::kStar)) {
        op = BinaryOp::kMul;
      } else if (Match(TokenKind::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Match(TokenKind::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      EDADB_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_shared<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (Match(TokenKind::kMinus)) {
      EDADB_RETURN_IF_ERROR(CheckDepth());
      DepthGuard guard(this);
      EDADB_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold -literal immediately so "-5" is a literal, which matters for
      // the rules indexer's atomic-predicate recognition.
      if (operand->kind() == ExprKind::kLiteral) {
        const Value& v =
            static_cast<const LiteralExpr&>(*operand).value();
        if (v.type() == ValueType::kInt64) {
          return std::static_pointer_cast<const Expr>(
              std::make_shared<LiteralExpr>(Value::Int64(-v.int64_value())));
        }
        if (v.type() == ValueType::kDouble) {
          return std::static_pointer_cast<const Expr>(
              std::make_shared<LiteralExpr>(Value::Double(-v.double_value())));
        }
      }
      return std::static_pointer_cast<const Expr>(
          std::make_shared<UnaryExpr>(UnaryOp::kNegate, std::move(operand)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        Advance();
        return std::static_pointer_cast<const Expr>(
            std::make_shared<LiteralExpr>(Value::Int64(t.int_value)));
      case TokenKind::kDoubleLiteral:
        Advance();
        return std::static_pointer_cast<const Expr>(
            std::make_shared<LiteralExpr>(Value::Double(t.double_value)));
      case TokenKind::kStringLiteral:
        Advance();
        return std::static_pointer_cast<const Expr>(
            std::make_shared<LiteralExpr>(Value::String(t.text)));
      case TokenKind::kTrue:
        Advance();
        return std::static_pointer_cast<const Expr>(
            std::make_shared<LiteralExpr>(Value::Bool(true)));
      case TokenKind::kFalse:
        Advance();
        return std::static_pointer_cast<const Expr>(
            std::make_shared<LiteralExpr>(Value::Bool(false)));
      case TokenKind::kNull:
        Advance();
        return std::static_pointer_cast<const Expr>(
            std::make_shared<LiteralExpr>(Value::Null()));
      case TokenKind::kLParen: {
        Advance();
        EDADB_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return inner;
      }
      case TokenKind::kIdentifier: {
        const std::string name = t.text;
        Advance();
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<ExprPtr> args;
          if (Peek().kind != TokenKind::kRParen) {
            for (;;) {
              EDADB_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr());
              args.push_back(std::move(arg));
              if (!Match(TokenKind::kComma)) break;
            }
          }
          EDADB_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
          if (!IsKnownFunction(name)) {
            return Status::NotFound("unknown function '" + name + "'");
          }
          return std::static_pointer_cast<const Expr>(
              std::make_shared<FunctionExpr>(name, std::move(args)));
        }
        return std::static_pointer_cast<const Expr>(
            std::make_shared<ColumnExpr>(name));
      }
      default:
        return UnexpectedToken("a literal, column or '('");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<ExprPtr> ParseExpression(std::string_view source) {
  EDADB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<ExprPtr> ParseExpressionPrefix(const std::vector<Token>& tokens,
                                      size_t* pos) {
  // Hand the parser the remaining tokens (the terminating kEnd of the
  // statement token stream keeps lookahead safe).
  std::vector<Token> tail(tokens.begin() + static_cast<long>(*pos),
                          tokens.end());
  Parser parser(std::move(tail));
  size_t consumed = 0;
  EDADB_ASSIGN_OR_RETURN(ExprPtr expr, parser.ParsePrefix(&consumed));
  *pos += consumed;
  return expr;
}

}  // namespace edadb
