#include "expr/predicate.h"

namespace edadb {

Result<Predicate> Predicate::Compile(std::string_view source) {
  EDADB_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression(source));
  Predicate p;
  p.expr_ = std::move(expr);
  p.source_ = std::string(source);
  return p;
}

Predicate Predicate::FromExpr(ExprPtr expr) {
  Predicate p;
  p.source_ = expr->ToString();
  p.expr_ = std::move(expr);
  return p;
}

Result<bool> Predicate::Matches(const RowAccessor& row) const {
  if (expr_ == nullptr) {
    return Status::FailedPrecondition("predicate not compiled");
  }
  EvalContext ctx(&row);
  return expr_->Matches(ctx);
}

bool Predicate::MatchesOrFalse(const RowAccessor& row) const {
  auto result = Matches(row);
  return result.ok() && *result;
}

std::set<std::string> Predicate::ReferencedColumns() const {
  std::set<std::string> out;
  if (expr_ != nullptr) expr_->CollectColumns(&out);
  return out;
}

}  // namespace edadb
