#include "expr/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace edadb {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

/// Keyword table; matched case-insensitively.
TokenKind KeywordKind(std::string_view upper) {
  if (upper == "AND") return TokenKind::kAnd;
  if (upper == "OR") return TokenKind::kOr;
  if (upper == "NOT") return TokenKind::kNot;
  if (upper == "IN") return TokenKind::kIn;
  if (upper == "BETWEEN") return TokenKind::kBetween;
  if (upper == "LIKE") return TokenKind::kLike;
  if (upper == "IS") return TokenKind::kIs;
  if (upper == "NULL") return TokenKind::kNull;
  if (upper == "TRUE") return TokenKind::kTrue;
  if (upper == "FALSE") return TokenKind::kFalse;
  return TokenKind::kIdentifier;
}

}  // namespace

std::string_view TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "integer";
    case TokenKind::kDoubleLiteral: return "double";
    case TokenKind::kStringLiteral: return "string";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kIn: return "IN";
    case TokenKind::kBetween: return "BETWEEN";
    case TokenKind::kLike: return "LIKE";
    case TokenKind::kIs: return "IS";
    case TokenKind::kNull: return "NULL";
    case TokenKind::kTrue: return "TRUE";
    case TokenKind::kFalse: return "FALSE";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();

  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " at position " + std::to_string(i));
  };
  auto push = [&](TokenKind kind, size_t pos) {
    Token t;
    t.kind = kind;
    t.position = pos;
    tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      ++i;
      while (i < n && IsIdentCont(source[i])) ++i;
      const std::string_view word = source.substr(start, i - start);
      const TokenKind kind = KeywordKind(ToUpper(word));
      Token t;
      t.kind = kind;
      t.position = start;
      if (kind == TokenKind::kIdentifier) t.text = std::string(word);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      bool is_double = c == '.';  // ".5" style literal.
      ++i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) ++i;
      if (i < n && source[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
          ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (source[exp] == '+' || source[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(source[exp]))) {
          is_double = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i])))
            ++i;
        }
      }
      const std::string text(source.substr(start, i - start));
      Token t;
      t.position = start;
      if (is_double) {
        t.kind = TokenKind::kDoubleLiteral;
        t.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(text.c_str(), &end, 10);
        if (errno != 0) {
          // Integer literal overflow: fall back to double, as SQL does.
          t.kind = TokenKind::kDoubleLiteral;
          t.double_value = std::strtod(text.c_str(), nullptr);
        } else {
          t.kind = TokenKind::kIntLiteral;
          t.int_value = v;
        }
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      std::string text;
      ++i;
      bool closed = false;
      while (i < n) {
        if (source[i] == '\'') {
          if (i + 1 < n && source[i + 1] == '\'') {
            text += '\'';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          text += source[i++];
        }
      }
      if (!closed) return error("unterminated string literal");
      Token t;
      t.kind = TokenKind::kStringLiteral;
      t.text = std::move(text);
      t.position = start;
      tokens.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '%': push(TokenKind::kPercent, start); ++i; break;
      case '=': push(TokenKind::kEq, start); ++i; break;
      case '!':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          return error("unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else if (i + 1 < n && source[i + 1] == '>') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && source[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace edadb
