#ifndef EDADB_EXPR_PREDICATE_H_
#define EDADB_EXPR_PREDICATE_H_

#include <set>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/result.h"
#include "expr/ast.h"
#include "expr/parser.h"

namespace edadb {

/// A compiled boolean predicate: the "expression as data" unit that
/// rules, subscriptions, queue selectors and trigger WHEN clauses store
/// and evaluate. Keeps the original source for round-tripping to tables.
class Predicate {
 public:
  Predicate() = default;

  /// Compiles `source`; fails on syntax errors or unknown functions.
  EDADB_NODISCARD static Result<Predicate> Compile(std::string_view source);

  /// Wraps an already-built AST.
  static Predicate FromExpr(ExprPtr expr);

  bool valid() const { return expr_ != nullptr; }
  const ExprPtr& expr() const { return expr_; }
  const std::string& source() const { return source_; }

  /// True iff the predicate evaluates to TRUE on `row` (NULL and FALSE
  /// both mean no match). Evaluation errors propagate.
  EDADB_NODISCARD Result<bool> Matches(const RowAccessor& row) const;

  /// Like Matches but treats evaluation errors as "no match" — the right
  /// behaviour when scanning heterogeneous event populations where some
  /// events have incompatible attribute types.
  bool MatchesOrFalse(const RowAccessor& row) const;

  /// Attribute names the predicate references.
  std::set<std::string> ReferencedColumns() const;

 private:
  ExprPtr expr_;
  std::string source_;
};

}  // namespace edadb

#endif  // EDADB_EXPR_PREDICATE_H_
