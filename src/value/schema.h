#ifndef EDADB_VALUE_SCHEMA_H_
#define EDADB_VALUE_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "value/value.h"

namespace edadb {

/// A named, typed column in a table or stream schema.
struct Field {
  std::string name;
  ValueType type = ValueType::kNull;
  bool nullable = true;

  Field() = default;
  Field(std::string name_in, ValueType type_in, bool nullable_in = true)
      : name(std::move(name_in)), type(type_in), nullable(nullable_in) {}

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type && a.nullable == b.nullable;
  }
};

/// An ordered list of fields with O(1) name lookup. Schemas are immutable
/// after construction and shared between Records via shared_ptr.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Builds a shared schema. The common way to create one.
  static std::shared_ptr<const Schema> Make(std::vector<Field> fields) {
    return std::make_shared<const Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or -1 when absent.
  int FieldIndex(std::string_view name) const;
  bool HasField(std::string_view name) const {
    return FieldIndex(name) >= 0;
  }
  EDADB_NODISCARD Result<ValueType> FieldType(std::string_view name) const;

  /// "(a INT64, b STRING NOT NULL)".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace edadb

#endif  // EDADB_VALUE_SCHEMA_H_
