#include "value/schema.h"

namespace edadb {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? -1 : it->second;
}

Result<ValueType> Schema::FieldType(std::string_view name) const {
  const int idx = FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound("no field named '" + std::string(name) + "'");
  }
  return fields_[static_cast<size_t>(idx)].type;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += " ";
    out += ValueTypeToString(fields_[i].type);
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

}  // namespace edadb
