#ifndef EDADB_VALUE_ROW_CODEC_H_
#define EDADB_VALUE_ROW_CODEC_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "value/record.h"

namespace edadb {

/// Binary codecs for rows and attribute maps. These are what the storage
/// engine writes into the table heap and the write-ahead log, and what
/// queue messages carry as payloads, so encode→decode must round-trip
/// exactly and decode must reject truncated/garbled input with
/// Corruption.

/// Encodes the record's values (not its schema) as
/// varint(count) ++ value*.
void EncodeRow(const Record& record, std::string* dst);

/// Decodes a row previously written by EncodeRow against `schema`.
EDADB_NODISCARD Result<Record> DecodeRow(SchemaPtr schema, std::string_view input);

/// A schemaless ordered attribute map, as carried by events and queue
/// message headers.
using AttributeList = std::vector<std::pair<std::string, Value>>;

/// varint(count) ++ (length-prefixed name ++ value)*.
void EncodeAttributes(const AttributeList& attributes, std::string* dst);
EDADB_NODISCARD Result<AttributeList> DecodeAttributes(std::string_view input);

}  // namespace edadb

#endif  // EDADB_VALUE_ROW_CODEC_H_
