#ifndef EDADB_VALUE_RECORD_H_
#define EDADB_VALUE_RECORD_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "value/schema.h"
#include "value/value.h"

namespace edadb {

/// Read-only attribute lookup by name. Implemented by Record (schema'd
/// rows) and by core::Event (schemaless attribute maps) so the expression
/// evaluator and rules engine work over both.
class RowAccessor {
 public:
  virtual ~RowAccessor() = default;

  /// The value of attribute `name`, or nullopt when the row has no such
  /// attribute. (A present-but-NULL attribute returns Value::Null().)
  virtual std::optional<Value> GetAttribute(std::string_view name) const = 0;
};

/// A row: a shared schema plus one Value per field.
class Record : public RowAccessor {
 public:
  Record() = default;

  /// Values must match the schema arity; type conformance is checked by
  /// Validate().
  Record(SchemaPtr schema, std::vector<Value> values);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_values() const { return values_.size(); }

  const Value& value(size_t i) const { return values_[i]; }
  void set_value(size_t i, Value v) { values_[i] = std::move(v); }
  const std::vector<Value>& values() const { return values_; }

  /// Field access by name; NotFound for unknown fields.
  EDADB_NODISCARD Result<Value> Get(std::string_view name) const;
  EDADB_NODISCARD Status Set(std::string_view name, Value v);

  std::optional<Value> GetAttribute(std::string_view name) const override;

  /// Checks arity, types (null ↔ nullable, otherwise exact type match).
  EDADB_NODISCARD Status Validate() const;

  /// "{a: 1, b: 'x'}".
  std::string ToString() const;

  friend bool operator==(const Record& a, const Record& b);

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

/// Incremental Record construction by field name.
class RecordBuilder {
 public:
  explicit RecordBuilder(SchemaPtr schema);

  /// Sets field `name`; unknown names are remembered and reported by
  /// Build(). Returns *this for chaining.
  RecordBuilder& Set(std::string_view name, Value v);

  RecordBuilder& SetBool(std::string_view name, bool v) {
    return Set(name, Value::Bool(v));
  }
  RecordBuilder& SetInt64(std::string_view name, int64_t v) {
    return Set(name, Value::Int64(v));
  }
  RecordBuilder& SetDouble(std::string_view name, double v) {
    return Set(name, Value::Double(v));
  }
  RecordBuilder& SetString(std::string_view name, std::string v) {
    return Set(name, Value::String(std::move(v)));
  }
  RecordBuilder& SetTimestamp(std::string_view name, TimestampMicros v) {
    return Set(name, Value::Timestamp(v));
  }

  /// Validates and returns the record. Unset fields are NULL.
  EDADB_NODISCARD Result<Record> Build();

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
  std::string first_unknown_field_;
};

}  // namespace edadb

#endif  // EDADB_VALUE_RECORD_H_
