#include "value/record.h"

#include <cassert>

namespace edadb {

Record::Record(SchemaPtr schema, std::vector<Value> values)
    : schema_(std::move(schema)), values_(std::move(values)) {
  assert(schema_ != nullptr);
  assert(values_.size() == schema_->num_fields());
}

Result<Value> Record::Get(std::string_view name) const {
  if (schema_ == nullptr) return Status::FailedPrecondition("empty record");
  const int idx = schema_->FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound("no field named '" + std::string(name) + "'");
  }
  return values_[static_cast<size_t>(idx)];
}

Status Record::Set(std::string_view name, Value v) {
  if (schema_ == nullptr) return Status::FailedPrecondition("empty record");
  const int idx = schema_->FieldIndex(name);
  if (idx < 0) {
    return Status::NotFound("no field named '" + std::string(name) + "'");
  }
  values_[static_cast<size_t>(idx)] = std::move(v);
  return Status::OK();
}

std::optional<Value> Record::GetAttribute(std::string_view name) const {
  if (schema_ == nullptr) return std::nullopt;
  const int idx = schema_->FieldIndex(name);
  if (idx < 0) return std::nullopt;
  return values_[static_cast<size_t>(idx)];
}

Status Record::Validate() const {
  if (schema_ == nullptr) return Status::FailedPrecondition("empty record");
  if (values_.size() != schema_->num_fields()) {
    return Status::InvalidArgument("record arity mismatch");
  }
  for (size_t i = 0; i < values_.size(); ++i) {
    const Field& f = schema_->field(i);
    const Value& v = values_[i];
    if (v.is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL field '" + f.name +
                                       "'");
      }
      continue;
    }
    if (v.type() != f.type) {
      return Status::InvalidArgument(
          "type mismatch in field '" + f.name + "': expected " +
          std::string(ValueTypeToString(f.type)) + ", got " +
          std::string(ValueTypeToString(v.type())));
    }
  }
  return Status::OK();
}

std::string Record::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_ ? schema_->field(i).name : std::to_string(i);
    out += ": ";
    out += values_[i].ToString();
  }
  out += "}";
  return out;
}

bool operator==(const Record& a, const Record& b) {
  if (a.values_.size() != b.values_.size()) return false;
  for (size_t i = 0; i < a.values_.size(); ++i) {
    if (!(a.values_[i] == b.values_[i])) return false;
  }
  if (a.schema_ && b.schema_) return *a.schema_ == *b.schema_;
  return (a.schema_ == nullptr) == (b.schema_ == nullptr);
}

RecordBuilder::RecordBuilder(SchemaPtr schema)
    : schema_(std::move(schema)) {
  assert(schema_ != nullptr);
  values_.resize(schema_->num_fields());
}

RecordBuilder& RecordBuilder::Set(std::string_view name, Value v) {
  const int idx = schema_->FieldIndex(name);
  if (idx < 0) {
    if (first_unknown_field_.empty()) first_unknown_field_ = std::string(name);
    return *this;
  }
  values_[static_cast<size_t>(idx)] = std::move(v);
  return *this;
}

Result<Record> RecordBuilder::Build() {
  if (!first_unknown_field_.empty()) {
    return Status::NotFound("no field named '" + first_unknown_field_ + "'");
  }
  Record record(schema_, std::move(values_));
  Status s = record.Validate();
  if (!s.ok()) return s;
  return record;
}

}  // namespace edadb
